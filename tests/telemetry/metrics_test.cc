#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/telemetry/json.h"

namespace dcat {
namespace {

TEST(MetricsRegistryTest, CounterFindOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& c = registry.counter("controller.ticks");
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(registry.counter("controller.ticks").value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, ReferencesSurviveLaterRegistrations) {
  MetricsRegistry registry;
  Counter& first = registry.counter("a");
  // Register enough instruments to force rehashing in a flat container.
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i));
  }
  first.Increment();
  EXPECT_EQ(registry.counter("a").value(), 1u);
}

TEST(MetricsRegistryTest, GaugeHoldsLatestValue) {
  MetricsRegistry registry;
  registry.gauge("pool").Set(17.0);
  registry.gauge("pool").Set(3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("pool").value(), 3.0);
}

TEST(HistogramMetricTest, BucketsObservationsByUpperBound) {
  HistogramMetric h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (upper edge inclusive)
  h.Observe(7.0);    // <= 10
  h.Observe(5000.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5008.5);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // three bounds + overflow
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(HistogramMetricTest, MeanIsZeroWhenEmpty) {
  HistogramMetric h({1.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistryTest, RenderTextListsEveryInstrument) {
  // Instruments render grouped by kind (counters, gauges, histograms),
  // name-sorted within each group.
  MetricsRegistry registry;
  registry.counter("z.count").Increment(2);
  registry.counter("a.count").Increment(1);
  registry.gauge("pool.level").Set(1.5);
  registry.histogram("alloc.lat", {10.0}).Observe(4.0);
  const std::string text = registry.RenderText();
  const size_t a = text.find("a.count");
  const size_t z = text.find("z.count");
  const size_t g = text.find("pool.level");
  const size_t h = text.find("alloc.lat");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  ASSERT_NE(g, std::string::npos);
  ASSERT_NE(h, std::string::npos);
  EXPECT_LT(a, z);  // sorted within the counter group
  EXPECT_LT(z, g);  // counters before gauges
  EXPECT_LT(g, h);  // gauges before histograms
  EXPECT_NE(text.find("count=1 mean=4 max=4"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, RenderJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("ticks").Increment(3);
  registry.gauge("pool").Set(11.0);
  registry.histogram("lat", {1.0, 10.0}).Observe(2.0);
  const std::string json = registry.RenderJson();
  // The metrics JSON is nested, so spot-check the serialized fragments
  // rather than using the flat-object parser.
  EXPECT_NE(json.find("\"counters\":{\"ticks\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace dcat
