#include "src/telemetry/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/dcat_controller.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

// --- unit round trips on hand-built events ---

TEST(JsonlTraceWriterTest, TickEventRoundTrips) {
  std::ostringstream out;
  JsonlTraceWriter writer(&out);
  TickEvent event;
  event.tick = 42;
  event.tenant = 7;
  event.category = Category::kReceiver;
  event.ways = 5;
  event.ipc = 0.75;
  event.norm_ipc = 1.2;
  event.llc_miss_rate = 0.31;
  event.phase_changed = true;
  writer.OnTick(event);
  EXPECT_EQ(writer.lines_written(), 1u);

  const auto parsed = ParseTraceLine(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, "tick");
  ASSERT_TRUE(parsed->tick.has_value());
  EXPECT_EQ(parsed->tick->tick, 42u);
  EXPECT_EQ(parsed->tick->tenant, 7u);
  EXPECT_EQ(parsed->tick->category, Category::kReceiver);
  EXPECT_EQ(parsed->tick->ways, 5u);
  EXPECT_DOUBLE_EQ(parsed->tick->ipc, 0.75);
  EXPECT_DOUBLE_EQ(parsed->tick->norm_ipc, 1.2);
  EXPECT_DOUBLE_EQ(parsed->tick->llc_miss_rate, 0.31);
  EXPECT_TRUE(parsed->tick->phase_changed);
}

TEST(JsonlTraceWriterTest, AllocationEventRoundTripsEveryReason) {
  const AllocationReason reasons[] = {
      AllocationReason::kAdmit,          AllocationReason::kEvict,
      AllocationReason::kReclaim,        AllocationReason::kShrinkForReclaim,
      AllocationReason::kGrowFromPool,   AllocationReason::kGrowDenied,
      AllocationReason::kDonate,         AllocationReason::kRebalance,
  };
  for (const AllocationReason reason : reasons) {
    std::ostringstream out;
    JsonlTraceWriter writer(&out);
    AllocationEvent event;
    event.tick = 3;
    event.tenant = 2;
    event.reason = reason;
    event.from_ways = 4;
    event.to_ways = 6;
    writer.OnAllocation(event);
    const auto parsed = ParseTraceLine(out.str());
    ASSERT_TRUE(parsed.has_value()) << AllocationReasonName(reason);
    ASSERT_TRUE(parsed->allocation.has_value());
    EXPECT_EQ(parsed->allocation->reason, reason) << AllocationReasonName(reason);
    EXPECT_EQ(parsed->allocation->from_ways, 4u);
    EXPECT_EQ(parsed->allocation->to_ways, 6u);
  }
}

TEST(JsonlTraceWriterTest, PhaseAndCategoryEventsRoundTrip) {
  std::ostringstream out;
  JsonlTraceWriter writer(&out);
  PhaseChangeEvent phase;
  phase.tick = 9;
  phase.tenant = 1;
  phase.phase_index = 2;
  phase.signature = 0.33;
  phase.known_phase = true;
  writer.OnPhaseChange(phase);
  CategoryChangeEvent cat;
  cat.tick = 9;
  cat.tenant = 1;
  cat.from = Category::kDonor;
  cat.to = Category::kReclaim;
  writer.OnCategoryChange(cat);

  std::istringstream in(out.str());
  const auto records = ReadTrace(in);
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 2u);
  ASSERT_TRUE((*records)[0].phase_change.has_value());
  EXPECT_EQ((*records)[0].phase_change->phase_index, 2u);
  EXPECT_DOUBLE_EQ((*records)[0].phase_change->signature, 0.33);
  EXPECT_TRUE((*records)[0].phase_change->known_phase);
  ASSERT_TRUE((*records)[1].category_change.has_value());
  EXPECT_EQ((*records)[1].category_change->from, Category::kDonor);
  EXPECT_EQ((*records)[1].category_change->to, Category::kReclaim);
}

TEST(ReadTraceTest, ReportsFirstBadLine) {
  std::istringstream in(
      "{\"type\":\"category_change\",\"tick\":1,\"tenant\":1,"
      "\"from\":\"Donor\",\"to\":\"Reclaim\"}\n"
      "not json\n");
  size_t error_line = 0;
  EXPECT_FALSE(ReadTrace(in, &error_line).has_value());
  EXPECT_EQ(error_line, 2u);
}

TEST(ReadTraceTest, RejectsUnknownTypeAndBadEnums) {
  EXPECT_FALSE(ParseTraceLine("{\"type\":\"mystery\",\"tick\":1}").has_value());
  EXPECT_FALSE(ParseTraceLine(
                   "{\"type\":\"allocation\",\"tick\":1,\"tenant\":1,"
                   "\"reason\":\"bogus\",\"from_ways\":1,\"to_ways\":2}")
                   .has_value());
}

TEST(NameMappingTest, CategoryAndReasonNamesAreInvertible) {
  for (const Category c : {Category::kReclaim, Category::kKeeper, Category::kDonor,
                           Category::kReceiver, Category::kStreaming, Category::kUnknown}) {
    const auto back = CategoryFromName(CategoryName(c));
    ASSERT_TRUE(back.has_value()) << CategoryName(c);
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(CategoryFromName("NotACategory").has_value());
  EXPECT_FALSE(AllocationReasonFromName("NotAReason").has_value());
}

// --- end-to-end: scripted phase change through a live controller ---

TEST(TraceRoundTripTest, ScriptedPhaseChangeProducesExpectedEventSequence) {
  FakePqos pqos;
  DcatController controller(&pqos, &pqos, DcatConfig{});
  std::ostringstream out;
  JsonlTraceWriter writer(&out);
  controller.AddEventSink(&writer);

  controller.AddTenant(TenantSpec{.id = 1, .name = "t1", .cores = {0}, .baseline_ways = 3});
  controller.Tick();  // idle interval: tenant contracts as a Donor
  pqos.Feed(/*core=*/0, /*ipc=*/0.05, /*mem_per_ins=*/0.33, /*llc_per_ki=*/300,
            /*miss_rate=*/0.5);
  controller.Tick();  // memory-heavy phase begins: phase change + reclaim

  std::istringstream in(out.str());
  const auto records = ReadTrace(in);
  ASSERT_TRUE(records.has_value());

  bool saw_admit = false;
  bool saw_phase_change = false;
  bool saw_reclaim = false;
  bool saw_category_to_reclaim = false;
  uint64_t ticks = 0;
  for (const TraceEvent& record : *records) {
    if (record.allocation && record.allocation->reason == AllocationReason::kAdmit) {
      saw_admit = true;
    }
    if (record.phase_change) {
      saw_phase_change = true;
      EXPECT_EQ(record.phase_change->tenant, 1u);
      EXPECT_FALSE(record.phase_change->known_phase);  // first time this phase is seen
    }
    if (record.allocation && record.allocation->reason == AllocationReason::kReclaim) {
      saw_reclaim = true;
      EXPECT_EQ(record.allocation->to_ways, 3u);  // back to baseline
    }
    if (record.category_change && record.category_change->to == Category::kReclaim) {
      saw_category_to_reclaim = true;
    }
    if (record.tick) {
      ++ticks;
    }
  }
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_phase_change);
  EXPECT_TRUE(saw_reclaim);
  EXPECT_TRUE(saw_category_to_reclaim);
  EXPECT_EQ(ticks, 2u);  // one tenant, two intervals

  // The same run, replayed through the CSV exporter, matches the
  // controller's own decision log.
  DecisionLog log;
  for (const TraceEvent& record : *records) {
    if (record.tick) {
      log.OnTick(*record.tick);
    }
  }
  EXPECT_EQ(log.ToCsv(), controller.LogToCsv());
}

TEST(DecisionLogTest, CsvHasLegacyHeaderAndRows) {
  DecisionLog log;
  TickEvent event;
  event.tick = 1;
  event.tenant = 4;
  event.category = Category::kKeeper;
  event.ways = 6;
  log.OnTick(event);
  const std::string csv = log.ToCsv();
  EXPECT_EQ(csv.rfind("tick,tenant,category,ways,ipc,norm_ipc,llc_miss_rate,phase_changed", 0),
            0u);
  EXPECT_NE(csv.find("\n1,4,Keeper,6,"), std::string::npos) << csv;
}

}  // namespace
}  // namespace dcat
