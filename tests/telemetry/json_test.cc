#include "src/telemetry/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

namespace dcat {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("tenant-1"), "tenant-1");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, EmitsCompactObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").Value("tick");
  w.Key("tick").Value(static_cast<uint64_t>(7));
  w.Key("ok").Value(true);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"type\":\"tick\",\"tick\":7,\"ok\":true}");
}

TEST(JsonWriterTest, NestsObjectsAndArrays) {
  JsonWriter w;
  w.BeginObject();
  w.Key("buckets").BeginArray();
  w.Value(static_cast<uint64_t>(1));
  w.Value(static_cast<uint64_t>(2));
  w.EndArray();
  w.Key("inner").BeginObject();
  w.Key("x").Value(0.5);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"buckets\":[1,2],\"inner\":{\"x\":0.5}}");
}

TEST(ParseFlatJsonObjectTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").Value("allocation");
  w.Key("tenant").Value(static_cast<uint64_t>(3));
  w.Key("norm_ipc").Value(1.25);
  w.Key("phase_changed").Value(false);
  w.EndObject();

  std::map<std::string, JsonValue> fields;
  ASSERT_TRUE(ParseFlatJsonObject(w.str(), &fields));
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields["type"].kind, JsonValue::Kind::kString);
  EXPECT_EQ(fields["type"].str, "allocation");
  EXPECT_EQ(fields["tenant"].kind, JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(fields["tenant"].num, 3.0);
  EXPECT_DOUBLE_EQ(fields["norm_ipc"].num, 1.25);
  EXPECT_EQ(fields["phase_changed"].kind, JsonValue::Kind::kBool);
  EXPECT_FALSE(fields["phase_changed"].boolean);
}

TEST(ParseFlatJsonObjectTest, RoundTripsDoublesExactly) {
  // %.17g must preserve the bit pattern of awkward doubles.
  const double awkward = 0.1 + 0.2;
  JsonWriter w;
  w.BeginObject();
  w.Key("v").Value(awkward);
  w.EndObject();
  std::map<std::string, JsonValue> fields;
  ASSERT_TRUE(ParseFlatJsonObject(w.str(), &fields));
  EXPECT_EQ(fields["v"].num, awkward);
}

TEST(ParseFlatJsonObjectTest, HandlesEscapesAndWhitespace) {
  std::map<std::string, JsonValue> fields;
  ASSERT_TRUE(ParseFlatJsonObject("  { \"a\\n\" : \"q\\\"uote\" , \"b\": null } ", &fields));
  EXPECT_EQ(fields["a\n"].str, "q\"uote");
  EXPECT_EQ(fields["b"].kind, JsonValue::Kind::kNull);
}

TEST(ParseFlatJsonObjectTest, RejectsMalformedInput) {
  std::map<std::string, JsonValue> fields;
  EXPECT_FALSE(ParseFlatJsonObject("", &fields));
  EXPECT_FALSE(ParseFlatJsonObject("{", &fields));
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":}", &fields));
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1,}", &fields));
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1} trailing", &fields));
  EXPECT_FALSE(ParseFlatJsonObject("[1,2]", &fields));
}

TEST(ParseFlatJsonObjectTest, RejectsNestedContainers) {
  std::map<std::string, JsonValue> fields;
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":{\"b\":1}}", &fields));
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":[1]}", &fields));
}

}  // namespace
}  // namespace dcat
