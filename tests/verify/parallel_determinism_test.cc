// The parallel scenario engine promises byte-identical output regardless
// of thread count: every (seed, policy) run derives all of its state from
// the seed, so running them on a worker pool must produce exactly the
// traces a serial loop produces. This test is the contract's regression
// guard — if anyone threads shared mutable state through RunScenario (a
// global RNG, a shared temp file, a racy log sink), the traces diverge
// here before they diverge in CI fuzz output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/policies/registry.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {

struct RunKey {
  uint64_t seed;
  std::string policy;
};

std::vector<RunKey> Runs() {
  std::vector<RunKey> runs;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    for (const std::string& policy : PolicyRegistry::Global().Names()) {
      runs.push_back({seed, policy});
    }
  }
  return runs;
}

std::string RunTrace(const RunKey& key) {
  RunOptions options;
  options.policy = key.policy;
  options.cycles_per_interval = 2e5;  // small intervals keep the test quick
  options.check_backend_differential = false;
  return RunScenario(RandomScenario(key.seed), options).trace;
}

TEST(ParallelDeterminismTest, PoolTracesMatchSerialTracesByteForByte) {
  const std::vector<RunKey> runs = Runs();

  std::vector<std::string> serial(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    serial[i] = RunTrace(runs[i]);
  }

  std::vector<std::string> parallel(runs.size());
  ThreadPool pool(4);
  pool.ParallelFor(0, runs.size(), [&](size_t i) { parallel[i] = RunTrace(runs[i]); });

  for (size_t i = 0; i < runs.size(); ++i) {
    ASSERT_FALSE(serial[i].empty()) << "run " << i << " produced no trace";
    EXPECT_EQ(serial[i], parallel[i])
        << "seed " << runs[i].seed << " diverged under the pool:\n"
        << DescribeTraceDivergence(serial[i], parallel[i]);
  }
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAreStable) {
  // Two parallel passes over the same runs must agree with each other —
  // catches scheduling-dependent state that a single serial-vs-parallel
  // comparison could miss by luck.
  const std::vector<RunKey> runs = Runs();
  ThreadPool pool(4);

  std::vector<std::string> first(runs.size());
  pool.ParallelFor(0, runs.size(), [&](size_t i) { first[i] = RunTrace(runs[i]); });
  std::vector<std::string> second(runs.size());
  pool.ParallelFor(0, runs.size(), [&](size_t i) { second[i] = RunTrace(runs[i]); });

  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "seed " << runs[i].seed;
  }
}

TEST(ParallelDeterminismTest, BackendDifferentialIsParallelSafe) {
  // The differential check writes fake resctrl trees to temp dirs; those
  // must be unique per run or concurrent runs corrupt each other.
  const std::vector<RunKey> runs = Runs();
  ThreadPool pool(4);
  std::vector<uint8_t> ok(runs.size(), 0);
  pool.ParallelFor(0, runs.size(), [&](size_t i) {
    RunOptions options;
    options.policy = runs[i].policy;
    options.cycles_per_interval = 2e5;
    options.check_backend_differential = true;
    ok[i] = RunScenario(RandomScenario(runs[i].seed), options).ok() ? 1 : 0;
  });
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(ok[i], 1) << "seed " << runs[i].seed << " policy " << runs[i].policy;
  }
}

}  // namespace
}  // namespace dcat
