// Golden-trace regression for the paper's Fig. 10 scenario (one MLR-8M
// receiver among five lookbusy donors): the controller's decision sequence
// — admissions, phase changes, category transitions, allocation moves with
// reasons — must match the checked-in trace event for event.
//
// Only integer/string decision fields are compared, so the golden file is
// robust to float formatting; byte-level determinism of full traces is
// separately proven in scenario_test.cc. Regenerate after an intentional
// controller change with:  dcat_fuzz --write-golden=tests/verify/data/golden_fig10.jsonl
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/telemetry/trace.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {

// One decision event, normalized for comparison.
std::vector<std::string> DecisionEvents(const std::vector<TraceEvent>& events) {
  std::vector<std::string> out;
  for (const TraceEvent& event : events) {
    std::ostringstream line;
    if (event.allocation.has_value()) {
      const AllocationEvent& a = *event.allocation;
      line << "alloc t" << a.tick << " tenant" << a.tenant << " "
           << AllocationReasonName(a.reason) << " " << a.from_ways << "->" << a.to_ways;
    } else if (event.category_change.has_value()) {
      const CategoryChangeEvent& c = *event.category_change;
      line << "category t" << c.tick << " tenant" << c.tenant << " " << CategoryName(c.from)
           << "->" << CategoryName(c.to);
    } else if (event.phase_change.has_value()) {
      // The float signature is excluded on purpose: the decision is the
      // phase transition itself.
      const PhaseChangeEvent& p = *event.phase_change;
      line << "phase t" << p.tick << " tenant" << p.tenant << " phase" << p.phase_index
           << (p.known_phase ? " known" : " new");
    } else {
      continue;  // tick rows carry measurements, not decisions
    }
    out.push_back(line.str());
  }
  return out;
}

TEST(GoldenTraceTest, Fig10DecisionSequenceMatchesGolden) {
  std::ifstream golden_file(GOLDEN_TRACE_PATH);
  ASSERT_TRUE(golden_file) << "missing golden trace at " << GOLDEN_TRACE_PATH;
  const auto golden = ReadTrace(golden_file);
  ASSERT_TRUE(golden.has_value()) << "golden trace is not valid JSONL";

  const ScenarioResult result = RunFig10Golden();
  ASSERT_TRUE(result.ok()) << result.violations.front().invariant << " — "
                           << result.violations.front().detail;
  std::istringstream live_stream(result.trace);
  const auto live = ReadTrace(live_stream);
  ASSERT_TRUE(live.has_value());

  const std::vector<std::string> want = DecisionEvents(*golden);
  const std::vector<std::string> got = DecisionEvents(*live);
  ASSERT_FALSE(want.empty());
  const size_t common = std::min(want.size(), got.size());
  for (size_t i = 0; i < common; ++i) {
    ASSERT_EQ(got[i], want[i])
        << "decision " << i << " diverged from the golden trace; if the change is "
        << "intentional, regenerate with dcat_fuzz --write-golden";
  }
  EXPECT_EQ(got.size(), want.size());
}

// The golden scenario must exercise the paper's headline behaviour: the MLR
// tenant (tenant 1) grows beyond its 3-way contract while donors shrink.
TEST(GoldenTraceTest, Fig10MlrTenantGrowsBeyondContract) {
  std::ifstream golden_file(GOLDEN_TRACE_PATH);
  ASSERT_TRUE(golden_file);
  const auto golden = ReadTrace(golden_file);
  ASSERT_TRUE(golden.has_value());
  uint32_t mlr_peak_ways = 0;
  for (const TraceEvent& event : *golden) {
    if (event.tick.has_value() && event.tick->tenant == 1) {
      mlr_peak_ways = std::max(mlr_peak_ways, event.tick->ways);
    }
  }
  EXPECT_GT(mlr_peak_ways, 3u);
}

}  // namespace
}  // namespace dcat
