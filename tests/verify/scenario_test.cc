// The fuzz harness itself: seed-deterministic scenario expansion, clean
// full-loop runs under both policies, byte-identical trace replay, and
// SimPqos vs fake-resctrl backend agreement.
#include "src/policies/registry.h"
#include "src/verify/scenario.h"

#include <gtest/gtest.h>

#include <string>

namespace dcat {
namespace {

TEST(RandomScenarioTest, SameSeedSameScenario) {
  const Scenario a = RandomScenario(7);
  const Scenario b = RandomScenario(7);
  EXPECT_EQ(a.Describe(), b.Describe());
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.intervals, b.intervals);
  ASSERT_EQ(a.initial.size(), b.initial.size());
  for (size_t i = 0; i < a.initial.size(); ++i) {
    EXPECT_EQ(a.initial[i].workload, b.initial[i].workload);
    EXPECT_EQ(a.initial[i].baseline_ways, b.initial[i].baseline_ways);
  }
}

TEST(RandomScenarioTest, DifferentSeedsDiffer) {
  // Not guaranteed for any single pair; across ten seeds at least two
  // descriptions must differ unless generation is broken.
  bool any_difference = false;
  const std::string first = RandomScenario(0).Describe();
  for (uint64_t seed = 1; seed < 10; ++seed) {
    if (RandomScenario(seed).Describe() != first) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomScenarioTest, GeneratedScenariosRespectAdmissionControl) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const Scenario scenario = RandomScenario(seed);
    const uint32_t total_ways = scenario.machine == "xeon-d" ? 12 : 20;
    uint32_t ways = 0;
    for (const TenantSetup& tenant : scenario.initial) {
      ways += tenant.baseline_ways;
      EXPECT_GE(tenant.baseline_ways, 1u);
    }
    EXPECT_LE(ways, total_ways) << scenario.Describe();
    for (const ChurnEvent& event : scenario.churn) {
      EXPECT_LT(event.interval, scenario.intervals);
    }
  }
}

TEST(ScenarioRunTest, CleanUnderEveryRegisteredPolicy) {
  const Scenario scenario = RandomScenario(3);
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    RunOptions options;
    options.policy = policy;
    options.cycles_per_interval = 1e6;
    const ScenarioResult result = RunScenario(scenario, options);
    EXPECT_TRUE(result.ok()) << "policy " << policy << ": "
                             << result.violations.front().invariant << " — "
                             << result.violations.front().detail;
    EXPECT_EQ(result.ticks, scenario.intervals);
    EXPECT_EQ(result.invariant_violations_total, 0u);
    EXPECT_FALSE(result.trace.empty());
  }
}

TEST(ScenarioRunTest, TraceIsByteIdenticalAcrossRuns) {
  const Scenario scenario = RandomScenario(11);
  RunOptions options;
  options.cycles_per_interval = 1e6;
  std::string detail;
  EXPECT_TRUE(CheckTraceDeterminism(scenario, options, &detail)) << detail;
}

TEST(ScenarioRunTest, BackendsAgreeOnEveryMask) {
  // The differential harness replays every programmed mask through a shadow
  // SimPqos and a fake-tree ResctrlPqos; divergence surfaces as a
  // backend-divergence violation in the result.
  const Scenario scenario = RandomScenario(5);
  RunOptions options;
  options.cycles_per_interval = 1e6;
  options.check_backend_differential = true;
  const ScenarioResult result = RunScenario(scenario, options);
  for (const Violation& violation : result.violations) {
    EXPECT_NE(violation.invariant, kCheckBackendDivergence) << violation.detail;
  }
  EXPECT_TRUE(result.ok());
}

TEST(ScenarioRunTest, DescribeTraceDivergenceFindsFirstDifferingLine) {
  EXPECT_EQ(DescribeTraceDivergence("a\nb\n", "a\nb\n"), "");
  const std::string report = DescribeTraceDivergence("a\nb\nc\n", "a\nX\nc\n");
  EXPECT_NE(report.find("line 2"), std::string::npos);
  const std::string truncated = DescribeTraceDivergence("a\nb\n", "a\n");
  EXPECT_NE(truncated.find("line 2"), std::string::npos);
  EXPECT_NE(truncated.find("<eof>"), std::string::npos);
}

TEST(Fig10ScenarioTest, MatchesThePaperMix) {
  const Scenario scenario = Fig10Scenario();
  ASSERT_EQ(scenario.initial.size(), 6u);  // 1 MLR + 5 lookbusy
  EXPECT_EQ(scenario.initial[0].workload, "mlr:8M");
  for (size_t i = 1; i < scenario.initial.size(); ++i) {
    EXPECT_EQ(scenario.initial[i].workload, "lookbusy");
  }
  EXPECT_TRUE(scenario.churn.empty());
}

}  // namespace
}  // namespace dcat
