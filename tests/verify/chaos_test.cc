// End-to-end chaos regression: RunScenario with fault injection across the
// acceptance fault schedules must hold every invariant, heal out of
// degraded mode within the settle window, and replay deterministically —
// while a fault-free run is byte-identical whatever the chaos fields say.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/policies/registry.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {

std::string Render(const ScenarioResult& result) {
  std::ostringstream out;
  for (const Violation& v : result.violations) {
    out << "tick " << v.tick << " tenant " << v.tenant << " " << v.invariant << ": "
        << v.detail << "\n";
  }
  return out.str();
}

class ChaosProfileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosProfileTest, SeedsRunCleanUnderFaults) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (const std::string& policy : PolicyRegistry::Global().Names()) {
      const Scenario scenario = RandomScenario(seed);
      RunOptions options;
      options.policy = policy;
      options.inject_faults = true;
      options.fault_profile = GetParam();
      options.fault_seed = seed * 977;
      const ScenarioResult result = RunScenario(scenario, options);
      EXPECT_TRUE(result.ok()) << "seed " << seed << " profile " << GetParam() << "\n"
                               << Render(result);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ChaosProfileTest,
                         ::testing::Values("transient", "silent-drift", "counter-garbage",
                                           "persistent-outage", "mixed"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ChaosTest, FaultFreeRunIgnoresChaosFields) {
  // With inject_faults off, the chaos knobs are inert: the trace is
  // byte-identical to a run with default options — the acceptance bar for
  // "faults disabled changes nothing".
  const Scenario scenario = RandomScenario(3);
  const ScenarioResult plain = RunScenario(scenario, RunOptions{});
  RunOptions loaded;
  loaded.fault_seed = 0xdeadbeef;
  loaded.fault_profile = "counter-garbage";
  loaded.settle_intervals = 99;
  const ScenarioResult result = RunScenario(scenario, loaded);
  EXPECT_EQ(result.trace, plain.trace);
}

TEST(ChaosTest, ChaosRunsAreDeterministic) {
  const Scenario scenario = RandomScenario(5);
  RunOptions options;
  options.inject_faults = true;
  options.fault_profile = "mixed";
  options.fault_seed = 123;
  std::string detail;
  EXPECT_TRUE(CheckTraceDeterminism(scenario, options, &detail)) << detail;
}

TEST(ChaosTest, ChaosRunActuallyInjects) {
  // Guard against the harness silently running fault-free: under the mixed
  // profile the trace must differ from the clean run for at least one of a
  // handful of seeds.
  bool diverged = false;
  for (uint64_t seed = 1; seed <= 5 && !diverged; ++seed) {
    const Scenario scenario = RandomScenario(seed);
    RunOptions chaos;
    chaos.inject_faults = true;
    chaos.fault_profile = "mixed";
    chaos.fault_seed = seed;
    diverged = RunScenario(scenario, chaos).trace != RunScenario(scenario, RunOptions{}).trace;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace dcat
