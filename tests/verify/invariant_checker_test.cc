// Proves each invariant FIRES on a purpose-built violating input — a
// checker that cannot fail is no checker — and stays silent on a clean,
// fully-attached controller run.
#include "src/verify/invariant_checker.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/pqos/mask.h"
#include "src/telemetry/metrics.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

TickEvent Row(uint64_t tick, TenantId tenant, uint32_t ways, double norm_ipc = 1.0,
              Category category = Category::kKeeper, bool phase_changed = false) {
  TickEvent row;
  row.tick = tick;
  row.tenant = tenant;
  row.category = category;
  row.ways = ways;
  row.ipc = norm_ipc;  // raw value is not audited; any plausible number works
  row.norm_ipc = norm_ipc;
  row.phase_changed = phase_changed;
  return row;
}

AllocationEvent Alloc(uint64_t tick, TenantId tenant, AllocationReason reason,
                      uint32_t from_ways, uint32_t to_ways) {
  return AllocationEvent{
      .tick = tick, .tenant = tenant, .reason = reason, .from_ways = from_ways,
      .to_ways = to_ways};
}

bool Has(const InvariantChecker& checker, const char* invariant) {
  for (const Violation& violation : checker.violations()) {
    if (violation.invariant == invariant) {
      return true;
    }
  }
  return false;
}

TEST(InvariantCheckerTest, WayConservationFires) {
  InvariantChecker checker(InvariantOptions{.total_ways = 20});
  checker.RegisterTenant(1, 3);
  checker.RegisterTenant(2, 3);
  checker.OnTick(Row(1, 1, 12));
  checker.OnTick(Row(1, 2, 10));  // 22 > 20
  checker.Finish();
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(Has(checker, kInvWayConservation));
}

TEST(InvariantCheckerTest, MinAllocationFiresOnTickRow) {
  InvariantChecker checker(InvariantOptions{});
  checker.RegisterTenant(1, 3);
  checker.OnTick(Row(1, 1, 0));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvMinAllocation));
}

TEST(InvariantCheckerTest, MinAllocationFiresOnAllocationEvent) {
  InvariantChecker checker(InvariantOptions{});
  checker.RegisterTenant(1, 3);
  // A broken allocator "granting" zero ways outside an eviction.
  checker.OnAllocation(Alloc(1, 1, AllocationReason::kDonate, 2, 0));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvMinAllocation));
}

TEST(InvariantCheckerTest, StreamingPinnedFires) {
  InvariantChecker checker(InvariantOptions{});
  checker.RegisterTenant(1, 3);
  checker.OnTick(Row(1, 1, 4, 1.0, Category::kStreaming));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvStreamingPinned));
}

TEST(InvariantCheckerTest, MissingTickRowFires) {
  InvariantChecker checker(InvariantOptions{});
  checker.RegisterTenant(1, 3);
  checker.RegisterTenant(2, 3);
  checker.OnTick(Row(1, 1, 3));
  // Tenant 2 never reports at tick 1; the next tick's row closes the group.
  checker.OnTick(Row(2, 1, 3));
  checker.OnTick(Row(2, 2, 3));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvMissingTick));
}

TEST(InvariantCheckerTest, ReclaimDeadlineFires) {
  InvariantChecker checker(InvariantOptions{.reclaim_deadline_ticks = 3});
  checker.RegisterTenant(1, 4);
  for (uint64_t tick = 1; tick <= 4; ++tick) {
    // Below contract (2 < 4), IPC collapsed, never reclaimed.
    checker.OnTick(Row(tick, 1, 2, 0.5, Category::kDonor));
  }
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvReclaimDeadline));
}

TEST(InvariantCheckerTest, ReclaimWithinDeadlineStaysClean) {
  InvariantChecker checker(InvariantOptions{.reclaim_deadline_ticks = 3});
  checker.RegisterTenant(1, 4);
  checker.OnTick(Row(1, 1, 2, 0.5, Category::kDonor));
  checker.OnTick(Row(2, 1, 2, 0.5, Category::kDonor));
  // The controller reacts: the tenant enters Reclaim on the third tick.
  checker.OnTick(Row(3, 1, 2, 0.5, Category::kReclaim));
  checker.OnTick(Row(4, 1, 4, 1.0, Category::kKeeper));
  checker.Finish();
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

TEST(InvariantCheckerTest, OscillationFires) {
  InvariantChecker checker(
      InvariantOptions{.max_flips_per_window = 4, .flip_window_ticks = 40});
  checker.RegisterTenant(1, 3);
  // donate -> reclaim -> donate ... every reversal after the first donate
  // is a flip; the sixth event is the fifth flip, over the limit of four.
  for (uint64_t tick = 1; tick <= 6; ++tick) {
    const bool donate = (tick % 2) == 1;
    checker.OnAllocation(Alloc(tick, 1,
                               donate ? AllocationReason::kDonate
                                      : AllocationReason::kReclaim,
                               donate ? 3 : 2, donate ? 2 : 3));
  }
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvOscillation));
}

TEST(InvariantCheckerTest, PhaseChangeReclaimsAreNotOscillation) {
  InvariantChecker checker(
      InvariantOptions{.max_flips_per_window = 4, .flip_window_ticks = 40});
  checker.RegisterTenant(1, 3);
  // Phase-change-driven reclaims legitimately follow donations any number
  // of times (§3: the guarantee acts on every phase change).
  for (uint64_t i = 0; i < 12; ++i) {
    const uint64_t tick = 2 * i + 1;
    checker.OnAllocation(Alloc(tick, 1, AllocationReason::kDonate, 3, 2));
    checker.OnPhaseChange(PhaseChangeEvent{.tick = tick + 1, .tenant = 1});
    checker.OnAllocation(Alloc(tick + 1, 1, AllocationReason::kReclaim, 2, 3));
  }
  checker.Finish();
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

TEST(InvariantCheckerTest, AdmissionChurnLifecycleStaysClean) {
  InvariantChecker checker(InvariantOptions{});
  checker.RegisterTenant(1, 3);
  checker.OnTick(Row(1, 1, 3));
  // Tenant 2 arrives between ticks 1 and 2 (the event carries tick 1, the
  // last completed interval) and departs after tick 2.
  checker.OnAllocation(Alloc(1, 2, AllocationReason::kAdmit, 0, 1));
  checker.OnTick(Row(2, 1, 3));
  checker.OnTick(Row(2, 2, 1));
  checker.OnAllocation(Alloc(2, 2, AllocationReason::kEvict, 1, 0));
  checker.OnTick(Row(3, 1, 3));
  checker.Finish();
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

TEST(InvariantCheckerTest, ViolationsBumpMetricsCounter) {
  MetricsRegistry metrics;
  InvariantChecker checker(InvariantOptions{});
  checker.set_metrics(&metrics);
  checker.RegisterTenant(1, 3);
  checker.OnTick(Row(1, 1, 0));  // below the CAT floor
  checker.Finish();
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(metrics.counter("invariant_violations_total").value(),
            checker.violations().size());
  EXPECT_GE(metrics.counter(std::string("invariant_violations.") + kInvMinAllocation)
                .value(),
            1u);
  // `dcatd --metrics` renders this registry: findings are operator-visible.
  EXPECT_NE(metrics.RenderText().find("invariant_violations_total"), std::string::npos);
}

// --- deep checks: controller-state audits through the view seam ---

// ControllerView fake serving snapshots the tests corrupt at will.
class FakeView : public ControllerView {
 public:
  bool HasTenant(TenantId id) const override {
    for (const TenantSnapshot& t : controller.tenants) {
      if (t.id == id) {
        return true;
      }
    }
    return false;
  }
  TenantSnapshot GetTenant(TenantId id) const override {
    for (const TenantSnapshot& t : controller.tenants) {
      if (t.id == id) {
        return t;
      }
    }
    return TenantSnapshot{};
  }
  ControllerSnapshot GetController() const override { return controller; }

  ControllerSnapshot controller;
};

// CatController stub returning arbitrary (even invalid) masks — the point
// is auditing a backend that went wrong.
class ScriptedCat : public CatController {
 public:
  uint32_t NumWays() const override { return 20; }
  uint8_t NumCos() const override { return 16; }
  uint16_t NumCores() const override { return 18; }
  uint64_t WayCapacityBytes() const override { return 2'359'296; }
  PqosStatus SetCosMask(uint8_t cos, uint32_t mask) override {
    masks[cos] = mask;
    return PqosStatus::kOk;
  }
  uint32_t GetCosMask(uint8_t cos) const override {
    const auto it = masks.find(cos);
    return it != masks.end() ? it->second : 0;
  }
  PqosStatus AssociateCore(uint16_t, uint8_t) override { return PqosStatus::kOk; }
  uint8_t GetCoreAssociation(uint16_t) const override { return 0; }

  std::map<uint8_t, uint32_t> masks;
};

TenantSnapshot SnapshotFor(TenantId id, uint8_t cos, uint32_t ways) {
  TenantSnapshot snap;
  snap.id = id;
  snap.cos = cos;
  snap.ways = ways;
  snap.baseline_ways = ways;
  snap.baseline_valid = true;
  return snap;
}

TEST(InvariantCheckerDeepTest, MaskShapeFires) {
  FakeView view;
  ScriptedCat cat;
  view.controller.tick = 1;
  view.controller.tenants = {SnapshotFor(1, 1, 2)};
  cat.masks[1] = MakeWayMask(0, 3);  // 3 ways where the controller claims 2

  InvariantChecker checker(InvariantOptions{});
  checker.AttachView(&view, &cat);
  checker.RegisterTenant(1, 2);
  checker.OnTick(Row(1, 1, 2));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvMaskShape));
}

TEST(InvariantCheckerDeepTest, NonContiguousMaskFires) {
  FakeView view;
  ScriptedCat cat;
  view.controller.tick = 1;
  view.controller.tenants = {SnapshotFor(1, 1, 2)};
  cat.masks[1] = 0b101;  // two ways, but split — illegal for CAT

  InvariantChecker checker(InvariantOptions{});
  checker.AttachView(&view, &cat);
  checker.RegisterTenant(1, 2);
  checker.OnTick(Row(1, 1, 2));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvMaskShape));
}

TEST(InvariantCheckerDeepTest, MaskOverlapFires) {
  FakeView view;
  ScriptedCat cat;
  view.controller.tick = 1;
  view.controller.tenants = {SnapshotFor(1, 1, 2), SnapshotFor(2, 2, 2)};
  cat.masks[1] = MakeWayMask(0, 2);
  cat.masks[2] = MakeWayMask(1, 2);  // shares way 1 with COS 1

  InvariantChecker checker(InvariantOptions{});
  checker.AttachView(&view, &cat);
  checker.RegisterTenant(1, 2);
  checker.RegisterTenant(2, 2);
  checker.OnTick(Row(1, 1, 2));
  checker.OnTick(Row(1, 2, 2));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvMaskOverlap));
}

// Clustering policies intentionally put several tenants on one COS: the
// checker must accept the sharing (no overlap finding, shared ways counted
// once for conservation) while still flagging cross-COS overlap and
// bookkeeping that disagrees with the shared mask.
TEST(InvariantCheckerDeepTest, SharedCosIsNotAnOverlapViolation) {
  FakeView view;
  ScriptedCat cat;
  view.controller.tick = 1;
  // Three tenants on COS 1 at 12 ways each plus one private tenant: the
  // per-row sum (12*3 + 6 = 42) dwarfs the socket, but the distinct-COS
  // footprint (12 + 6 = 18) fits — conservation must use the latter.
  view.controller.tenants = {SnapshotFor(1, 1, 12), SnapshotFor(2, 1, 12),
                             SnapshotFor(3, 1, 12), SnapshotFor(4, 2, 6)};
  cat.masks[1] = MakeWayMask(0, 12);
  cat.masks[2] = MakeWayMask(12, 6);

  InvariantChecker checker(InvariantOptions{.total_ways = 20});
  checker.AttachView(&view, &cat);
  for (TenantId id = 1; id <= 4; ++id) {
    checker.RegisterTenant(id, 1);
    checker.OnTick(Row(1, id, id == 4 ? 6 : 12));
  }
  checker.Finish();
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

TEST(InvariantCheckerDeepTest, SharedCosBookkeepingMismatchStillFires) {
  FakeView view;
  ScriptedCat cat;
  view.controller.tick = 1;
  // Tenant 2 claims 3 ways but shares COS 1, whose mask holds 4: its
  // bookkeeping lies about what it runs on even though the sharing itself
  // is sanctioned.
  view.controller.tenants = {SnapshotFor(1, 1, 4), SnapshotFor(2, 1, 3)};
  cat.masks[1] = MakeWayMask(0, 4);

  InvariantChecker checker(InvariantOptions{.total_ways = 20});
  checker.AttachView(&view, &cat);
  checker.RegisterTenant(1, 1);
  checker.RegisterTenant(2, 1);
  checker.OnTick(Row(1, 1, 4));
  checker.OnTick(Row(1, 2, 3));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvMaskShape));
  EXPECT_FALSE(Has(checker, kInvMaskOverlap));
}

TEST(InvariantCheckerDeepTest, CrossCosOverlapStillFiresAlongsideSharing) {
  FakeView view;
  ScriptedCat cat;
  view.controller.tick = 1;
  // Tenants 1 and 2 legitimately share COS 1; COS 2's mask bleeding into
  // COS 1's ways is the genuine isolation breach and must still be caught.
  view.controller.tenants = {SnapshotFor(1, 1, 4), SnapshotFor(2, 1, 4),
                             SnapshotFor(3, 2, 4)};
  cat.masks[1] = MakeWayMask(0, 4);
  cat.masks[2] = MakeWayMask(2, 4);  // overlaps ways 2-3 of COS 1

  InvariantChecker checker(InvariantOptions{.total_ways = 20});
  checker.AttachView(&view, &cat);
  for (TenantId id = 1; id <= 3; ++id) {
    checker.RegisterTenant(id, 1);
    checker.OnTick(Row(1, id, 4));
  }
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvMaskOverlap));
}

TEST(InvariantCheckerDeepTest, TableEntryOutsideEwmaBoundFires) {
  FakeView view;
  TenantSnapshot snap = SnapshotFor(1, 1, 2);
  snap.table.Record(2, 0.9);
  view.controller.tenants = {snap};
  // tick 0 in the controller snapshot never matches a finalized group, so
  // only the per-row EWMA check is active — exactly what this test targets.

  InvariantChecker checker(InvariantOptions{});
  checker.AttachView(&view, /*cat=*/nullptr);
  checker.RegisterTenant(1, 2);
  checker.OnTick(Row(1, 1, 2));  // caches the 0.9 entry at 2 ways

  // A corrupted update: the entry lands far above the interval's sample of
  // 1.0 — no convex combination of {0.9, 1.0} can reach it.
  view.controller.tenants[0].table.Record(2, 50.0);  // EWMA -> 25.45
  checker.OnTick(Row(2, 1, 2));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvTableConsistency));
}

TEST(InvariantCheckerDeepTest, HonestEwmaUpdateStaysClean) {
  FakeView view;
  TenantSnapshot snap = SnapshotFor(1, 1, 2);
  snap.table.Record(2, 2.0);
  view.controller.tenants = {snap};

  InvariantChecker checker(InvariantOptions{});
  checker.AttachView(&view, /*cat=*/nullptr);
  checker.RegisterTenant(1, 2);
  checker.OnTick(Row(1, 1, 2));

  // Honest alpha-0.5 EWMA toward the 0.5 sample: 2.0 -> 1.25, inside the
  // [0.5, 2.0] interval even though it is far from the sample itself.
  view.controller.tenants[0].table.Record(2, 0.5);
  checker.OnTick(Row(2, 1, 2, 0.5));
  checker.Finish();
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

TEST(InvariantCheckerDeepTest, TableEntryOutOfRangeFires) {
  FakeView view;
  TenantSnapshot snap = SnapshotFor(1, 1, 2);
  snap.table.Record(0, 0.5);    // 0 ways is not grantable
  snap.table.Record(25, -1.0);  // beyond the socket, negative value
  view.controller.tick = 1;
  view.controller.tenants = {snap};

  InvariantChecker checker(InvariantOptions{.total_ways = 20, .min_ways = 1});
  checker.AttachView(&view, /*cat=*/nullptr);
  checker.RegisterTenant(1, 2);
  checker.OnTick(Row(1, 1, 2));
  checker.Finish();
  EXPECT_TRUE(Has(checker, kInvTableConsistency));
}

// A clean, fully-attached controller run must produce zero findings — the
// checker's false-positive contract.
TEST(InvariantCheckerDeepTest, CleanControllerRunStaysClean) {
  FakePqos pqos;
  DcatController controller(&pqos, &pqos, DcatConfig{});
  controller.AddTenant(TenantSpec{.id = 1, .name = "mlr", .cores = {0}, .baseline_ways = 3});
  controller.AddTenant(TenantSpec{.id = 2, .name = "busy", .cores = {1}, .baseline_ways = 3});

  MetricsRegistry metrics;
  InvariantChecker checker(
      InvariantOptions{.total_ways = pqos.NumWays(), .min_ways = DcatConfig{}.min_ways});
  checker.AttachController(&controller, &pqos);
  checker.set_metrics(&metrics);
  checker.RegisterTenant(1, 3);
  checker.RegisterTenant(2, 3);
  controller.AddEventSink(&checker);

  for (int tick = 0; tick < 12; ++tick) {
    pqos.Feed(0, /*ipc=*/0.6, /*mem_per_ins=*/0.33, /*llc_per_ki=*/300, /*miss_rate=*/0.4);
    pqos.Feed(1, /*ipc=*/1.2, /*mem_per_ins=*/0.05, /*llc_per_ki=*/2, /*miss_rate=*/0.1);
    controller.Tick();
  }
  checker.Finish();
  EXPECT_TRUE(checker.ok()) << checker.Report();
  EXPECT_EQ(checker.ticks_checked(), 12u);
  EXPECT_EQ(metrics.counter("invariant_violations_total").value(), 0u);
}

}  // namespace
}  // namespace dcat
