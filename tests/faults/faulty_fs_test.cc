#include "src/faults/faulty_fs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/pqos/file_io.h"

namespace dcat {
namespace {
namespace fs = std::filesystem;

class FaultyFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            (std::string("faulty_fs_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  std::string Node(const std::string& name) const { return (root_ / name).string(); }

  fs::path root_;
  RealFileIo real_;
};

TEST_F(FaultyFsTest, InertPlanForwardsEverything) {
  FaultyFs io(&real_);
  ASSERT_EQ(io.Write(Node("a"), "hello\n"), FileIoStatus::kOk);
  std::string content;
  ASSERT_EQ(io.Read(Node("a"), &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "hello\n");
  EXPECT_EQ(io.injected_total(), 0u);
  EXPECT_EQ(io.stats().forwarded_reads, 1u);
  EXPECT_EQ(io.stats().forwarded_writes, 1u);
}

TEST_F(FaultyFsTest, ScriptedTornWriteLandsAStrictPrefix) {
  FaultyFs io(&real_);
  ASSERT_EQ(io.Write(Node("a"), "0123456789"), FileIoStatus::kOk);
  io.ScriptWriteFault(FileFault::kTornWrite);
  EXPECT_EQ(io.Write(Node("a"), "abcdefgh"), FileIoStatus::kError);
  std::string content;
  ASSERT_EQ(real_.Read(Node("a"), &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "abcd");  // half the content landed despite the error
  EXPECT_EQ(io.stats().torn_writes, 1u);
  EXPECT_EQ(io.stats().injected_write_faults, 1u);
}

TEST_F(FaultyFsTest, ScriptedReadFaultsProduceTheTaxonomy) {
  FaultyFs io(&real_);
  ASSERT_EQ(io.Write(Node("a"), "12345678\n"), FileIoStatus::kOk);
  std::string content;

  io.ScriptReadFault(FileFault::kRetry);
  EXPECT_EQ(io.Read(Node("a"), &content), FileIoStatus::kRetry);

  io.ScriptReadFault(FileFault::kError);
  EXPECT_EQ(io.Read(Node("a"), &content), FileIoStatus::kError);

  io.ScriptReadFault(FileFault::kVanish);
  EXPECT_EQ(io.Read(Node("a"), &content), FileIoStatus::kNotFound);

  io.ScriptReadFault(FileFault::kShortRead);
  ASSERT_EQ(io.Read(Node("a"), &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "1234");  // strict prefix of the real 9 bytes

  io.ScriptReadFault(FileFault::kGarbage);
  ASSERT_EQ(io.Read(Node("a"), &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "0xz!#torn~node");

  io.ScriptReadFault(FileFault::kEmpty);
  ASSERT_EQ(io.Read(Node("a"), &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "");

  EXPECT_EQ(io.stats().injected_read_faults, 6u);
  // The taxonomy never corrupted the underlying file.
  ASSERT_EQ(real_.Read(Node("a"), &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "12345678\n");
}

TEST_F(FaultyFsTest, ScriptedFaultsMatchPathSubstrings) {
  FaultyFs io(&real_);
  ASSERT_EQ(io.Write(Node("schemata"), "x\n"), FileIoStatus::kOk);
  ASSERT_EQ(io.Write(Node("cpus_list"), "y\n"), FileIoStatus::kOk);
  io.ScriptWriteFault(FileFault::kError, 1, "schemata");
  // A non-matching path sails through; the scripted fault stays armed.
  EXPECT_EQ(io.Write(Node("cpus_list"), "z\n"), FileIoStatus::kOk);
  EXPECT_EQ(io.Write(Node("schemata"), "w\n"), FileIoStatus::kError);
  // Consumed: the next matching write is clean.
  EXPECT_EQ(io.Write(Node("schemata"), "w\n"), FileIoStatus::kOk);
}

TEST_F(FaultyFsTest, ScriptedCountArmsMultipleCalls) {
  FaultyFs io(&real_);
  ASSERT_EQ(io.Write(Node("a"), "x\n"), FileIoStatus::kOk);
  io.ScriptReadFault(FileFault::kRetry, 3);
  std::string content;
  EXPECT_EQ(io.Read(Node("a"), &content), FileIoStatus::kRetry);
  EXPECT_EQ(io.Read(Node("a"), &content), FileIoStatus::kRetry);
  EXPECT_EQ(io.Read(Node("a"), &content), FileIoStatus::kRetry);
  EXPECT_EQ(io.Read(Node("a"), &content), FileIoStatus::kOk);
}

TEST_F(FaultyFsTest, DirectoryOpsPassThrough) {
  FaultyFs io(&real_, FaultPlan(7, FsMixedProfile()));
  const std::string dir = (root_ / "sub" / "dir").string();
  EXPECT_EQ(io.CreateDirs(dir), FileIoStatus::kOk);
  EXPECT_TRUE(io.IsDir(dir));
}

// Drives the same op sequence through two decorators and returns the
// per-call statuses, so schedules can be compared for determinism.
std::vector<FileIoStatus> DriveSchedule(FaultyFs* io, const std::string& root) {
  const char* nodes[] = {"schemata", "cpus_list", "dcat_cos3/schemata"};
  std::vector<FileIoStatus> statuses;
  for (int tick = 0; tick < 12; ++tick) {
    io->AdvanceTick();
    for (const char* node : nodes) {
      const std::string path = root + "/" + node;
      statuses.push_back(io->Write(path, "L3:0=ff\n"));
      std::string content;
      statuses.push_back(io->Read(path, &content));
    }
  }
  return statuses;
}

TEST_F(FaultyFsTest, SameSeedReplaysTheSameSchedule) {
  fs::create_directories(root_ / "dcat_cos3");
  const std::string prefix = root_.string() + "/";
  FaultyFs first(&real_, FaultPlan(42, FsMixedProfile()), prefix);
  const std::vector<FileIoStatus> a = DriveSchedule(&first, root_.string());
  FaultyFs second(&real_, FaultPlan(42, FsMixedProfile()), prefix);
  const std::vector<FileIoStatus> b = DriveSchedule(&second, root_.string());
  EXPECT_EQ(a, b);
  EXPECT_GT(first.injected_total(), 0u);
  EXPECT_EQ(first.injected_total(), second.injected_total());
}

TEST_F(FaultyFsTest, ScheduleIsIndependentOfWhereTheTreeLives) {
  // Two trees in different directories: with the root stripped before
  // hashing, both decorators make identical per-node decisions.
  const fs::path other = root_.string() + "_elsewhere";
  fs::create_directories(other / "dcat_cos3");
  fs::create_directories(root_ / "dcat_cos3");
  FaultyFs here(&real_, FaultPlan(42, FsMixedProfile()), root_.string() + "/");
  FaultyFs there(&real_, FaultPlan(42, FsMixedProfile()), other.string() + "/");
  const std::vector<FileIoStatus> a = DriveSchedule(&here, root_.string());
  const std::vector<FileIoStatus> b = DriveSchedule(&there, other.string());
  EXPECT_EQ(a, b);
  fs::remove_all(other);
}

TEST_F(FaultyFsTest, DifferentSeedsDiverge) {
  fs::create_directories(root_ / "dcat_cos3");
  const std::string prefix = root_.string() + "/";
  FaultyFs first(&real_, FaultPlan(1, FsMixedProfile()), prefix);
  const std::vector<FileIoStatus> a = DriveSchedule(&first, root_.string());
  FaultyFs second(&real_, FaultPlan(2, FsMixedProfile()), prefix);
  const std::vector<FileIoStatus> b = DriveSchedule(&second, root_.string());
  EXPECT_NE(a, b);
}

TEST_F(FaultyFsTest, NoFaultsFireAtTickZero) {
  FaultyFs io(&real_, FaultPlan(42, FsMixedProfile()), root_.string() + "/");
  // Before the first AdvanceTick the plan is quiescent: setup traffic
  // (Initialize writing group nodes) always lands cleanly.
  for (int i = 0; i < 50; ++i) {
    const std::string path = Node("node" + std::to_string(i));
    EXPECT_EQ(io.Write(path, "x\n"), FileIoStatus::kOk);
    std::string content;
    EXPECT_EQ(io.Read(path, &content), FileIoStatus::kOk);
  }
  EXPECT_EQ(io.injected_total(), 0u);
}

TEST_F(FaultyFsTest, ActiveTicksBoundsTheFaultWindow) {
  FaultProfile profile = FsMixedProfile();
  profile.active_ticks = 3;
  FaultyFs io(&real_, FaultPlan(42, profile), root_.string() + "/");
  ASSERT_EQ(io.Write(Node("a"), "x\n"), FileIoStatus::kOk);
  for (int tick = 0; tick < 3; ++tick) {
    io.AdvanceTick();
  }
  const uint64_t during = io.injected_total();
  for (int tick = 0; tick < 20; ++tick) {
    io.AdvanceTick();  // past the window: everything forwards
    std::string content;
    EXPECT_NE(io.Read(Node("a"), &content), FileIoStatus::kRetry);
    (void)io.Write(Node("a"), "y\n");
  }
  EXPECT_EQ(io.injected_total(), during);
}

}  // namespace
}  // namespace dcat
