// Controller-level fault tolerance: FaultyPqos scripted over the FakePqos
// backend, asserting the hardened loop's contract — bounded retry absorbs
// transient errors, verify-after-write catches silent drops, reconciliation
// repairs drift, counter anomalies quarantine without perturbing state, and
// repeated hard failures degrade to the static baseline and heal back.
#include <gtest/gtest.h>

#include <bit>
#include <optional>
#include <string>

#include "src/core/dcat_controller.h"
#include "src/faults/faulty_pqos.h"
#include "src/pqos/mask.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

class FaultRecoveryTest : public ::testing::Test {
 protected:
  FaultRecoveryTest() : faulty_(&backend_, &backend_), controller_(&faulty_, &faulty_, DcatConfig{}) {}

  void AddTenant(TenantId id, uint16_t core, uint32_t baseline = 3) {
    ASSERT_EQ(controller_.AddTenant(TenantSpec{.id = id,
                                               .name = "t" + std::to_string(id),
                                               .cores = {core},
                                               .baseline_ways = baseline}),
              AdmitStatus::kOk);
  }

  // One control interval: feed an MLR-ish active interval, advance the
  // fault clock, run the controller.
  void FeedTick(double ipc) {
    backend_.Feed(0, ipc, /*mem_per_ins=*/0.33, /*llc_per_ki=*/300, /*miss_rate=*/0.5,
                  /*instructions=*/5'000'000);
    faulty_.AdvanceTick();
    controller_.Tick();
  }

  uint32_t BackendWays(TenantId id) {
    return static_cast<uint32_t>(std::popcount(backend_.GetCosMask(controller_.Snapshot(id).cos)));
  }

  FakePqos backend_;
  FaultyPqos faulty_;
  DcatController controller_;
};

TEST_F(FaultRecoveryTest, TransientIoErrorAbsorbedByRetry) {
  AddTenant(1, 0);
  // The first mask-changing tick (reclaim 1 -> 3 ways) hits a 2-deep
  // kIoError burst — well inside the retry budget.
  faulty_.ScriptWriteFault(BackendOp::kSetCosMask, WriteFault::kIoError, 2);
  FeedTick(0.05);
  EXPECT_EQ(controller_.TenantWays(1), 3u);
  EXPECT_EQ(BackendWays(1), 3u);  // backend agrees: the write landed
  EXPECT_GE(controller_.metrics().counter("faults.write_recovered").value(), 1u);
  EXPECT_FALSE(controller_.degraded());
}

TEST_F(FaultRecoveryTest, SilentDropCaughtByVerifyAfterWrite) {
  AddTenant(1, 0);
  faulty_.ScriptWriteFault(BackendOp::kSetCosMask, WriteFault::kSilentDrop);
  FeedTick(0.05);
  // The acknowledged-but-dropped write was detected by readback and
  // reissued within the same tick.
  EXPECT_EQ(controller_.TenantWays(1), 3u);
  EXPECT_EQ(BackendWays(1), 3u);
  EXPECT_GE(controller_.metrics().counter("faults.silent_drops_detected").value(), 1u);
}

TEST_F(FaultRecoveryTest, ExternalMaskDriftRepairedByReconcile) {
  AddTenant(1, 0);
  FeedTick(0.05);
  FeedTick(0.05);
  const uint8_t cos = controller_.Snapshot(1).cos;
  // External interference reprograms the COS behind the controller's back.
  ASSERT_EQ(backend_.SetCosMask(cos, MakeWayMask(0, backend_.NumWays())), PqosStatus::kOk);
  FeedTick(0.05);  // start-of-tick reconciliation audits and repairs
  EXPECT_EQ(BackendWays(1), controller_.TenantWays(1));
  EXPECT_GE(controller_.metrics().counter("faults.mask_drift_repaired").value(), 1u);
}

TEST_F(FaultRecoveryTest, ExternalAssociationDriftRepairedByReconcile) {
  AddTenant(1, 0);
  FeedTick(0.05);
  const uint8_t cos = controller_.Snapshot(1).cos;
  ASSERT_EQ(backend_.AssociateCore(0, 7), PqosStatus::kOk);  // hijack the core
  FeedTick(0.05);
  EXPECT_EQ(backend_.GetCoreAssociation(0), cos);
  EXPECT_GE(controller_.metrics().counter("faults.mask_drift_repaired").value(), 1u);
}

TEST_F(FaultRecoveryTest, OrphanedCoreReleaseRetriedUntilDone) {
  AddTenant(1, 0);
  AddTenant(2, 1);
  FeedTick(0.05);
  const uint8_t cos2 = controller_.Snapshot(2).cos;
  ASSERT_NE(cos2, 0);
  // Every attempt of the removal's core release fails: the core is left
  // associated with the dead tenant's COS and parked on the orphan list.
  faulty_.ScriptWriteFault(BackendOp::kAssociateCore, WriteFault::kIoError, 4);
  controller_.RemoveTenant(2);
  EXPECT_EQ(backend_.GetCoreAssociation(1), cos2);
  FeedTick(0.05);  // fault-free reconciliation releases the orphan
  EXPECT_EQ(backend_.GetCoreAssociation(1), 0);
}

TEST_F(FaultRecoveryTest, PersistentOutageDegradesThenHeals) {
  // Ticks 1..5 are a total control-surface outage; from tick 6 the backend
  // is healthy again. The controller must (a) fall back to the static
  // baseline partition after `degraded_after_failures` consecutive failed
  // applies, and (b) re-enter dynamic mode after `degraded_recovery_ticks`
  // clean intervals — the full degraded round trip.
  FaultProfile outage;
  outage.name = "forced-outage";
  outage.outage_rate = 1.0;
  outage.outage_min_ticks = 10;
  outage.outage_max_ticks = 10;
  outage.active_ticks = 5;
  FakePqos backend;
  FaultyPqos faulty(&backend, &backend, FaultPlan(1, outage));
  DcatConfig config;
  // Pin the retry schedule to every-tick attempts: this test scripts exact
  // tick numbers for the degraded round trip, which exponential backoff
  // would stretch.
  config.retry_max_ticks = 1;
  DcatController controller(&faulty, &faulty, config);
  ASSERT_EQ(controller.AddTenant(
                TenantSpec{.id = 1, .name = "t1", .cores = {0}, .baseline_ways = 3}),
            AdmitStatus::kOk);

  auto tick = [&](double ipc) {
    backend.Feed(0, ipc, 0.33, 300, 0.5, 5'000'000);
    faulty.AdvanceTick();
    controller.Tick();
  };

  // The active workload wants its baseline back every tick; every apply
  // fails during the outage, so failures accrue to the threshold.
  for (uint32_t t = 0; t < config.degraded_after_failures; ++t) {
    tick(0.05);
  }
  EXPECT_TRUE(controller.degraded());
  EXPECT_GE(controller.metrics().counter("faults.degraded_entries").value(), 1u);

  tick(0.05);  // ticks 4..5: still in the outage, still degraded
  tick(0.05);
  EXPECT_TRUE(controller.degraded());

  // Ticks 6..7: backend healthy. The degraded loop pins the baseline
  // partition, verifies it, and after two clean intervals exits.
  tick(0.05);
  EXPECT_EQ(controller.TenantWays(1), 3u);  // static baseline applied
  tick(0.05);
  EXPECT_FALSE(controller.degraded());
  EXPECT_GE(controller.metrics().counter("faults.degraded_exits").value(), 1u);

  // Dynamic operation resumes: the cache-hungry tenant grows past its
  // baseline again, and the backend tracks the controller exactly.
  double ipc = 0.05;
  for (int t = 0; t < 4; ++t) {
    ipc *= 1.3;
    tick(ipc);
  }
  EXPECT_GT(controller.TenantWays(1), 3u);
  EXPECT_EQ(static_cast<uint32_t>(std::popcount(backend.GetCosMask(controller.Snapshot(1).cos))),
            controller.TenantWays(1));
}

// --- counter-anomaly quarantine: byte-identity against a clean run ---
//
// A single corrupted read mid-steady-state must leave the tenant's
// performance table (and settled allocation) byte-identical to a fault-free
// run over the same feed sequence: the quarantined interval folds into
// nothing, and the next clean interval's multi-interval delta has the same
// ratios the clean run saw.

struct SteadyOutcome {
  std::string table;
  uint32_t ways = 0;
  Category category = Category::kDonor;
  uint64_t anomalies = 0;
};

SteadyOutcome RunSteady(std::optional<CounterAnomalyKind> kind) {
  FakePqos backend;
  FaultyPqos faulty(&backend, &backend);
  DcatController controller(&faulty, &faulty, DcatConfig{});
  EXPECT_EQ(controller.AddTenant(
                TenantSpec{.id = 1, .name = "t1", .cores = {0}, .baseline_ways = 3}),
            AdmitStatus::kOk);
  auto tick = [&](double ipc) {
    backend.Feed(0, ipc, 0.33, 300, 0.5, 5'000'000);
    faulty.AdvanceTick();
    controller.Tick();
  };
  // Ramp to the settled Keeper state: reclaim, baseline @3, grow to 5,
  // improvement fades, stop.
  tick(0.05);
  tick(0.05);
  tick(0.10);
  tick(0.101);
  // Steady state; the faulted run corrupts exactly one read mid-stream.
  for (int t = 0; t < 8; ++t) {
    if (kind.has_value() && t == 4) {
      faulty.ScriptCounterAnomaly(0, *kind);
    }
    tick(0.101);
  }
  SteadyOutcome out;
  out.table = controller.Snapshot(1).table.ToString();
  out.ways = controller.TenantWays(1);
  out.category = controller.Snapshot(1).category;
  out.anomalies = controller.metrics().counter("faults.counter_anomalies").value();
  return out;
}

class QuarantineByteIdentityTest : public ::testing::TestWithParam<CounterAnomalyKind> {};

TEST_P(QuarantineByteIdentityTest, TableAndAllocationMatchCleanRun) {
  const SteadyOutcome clean = RunSteady(std::nullopt);
  const SteadyOutcome faulted = RunSteady(GetParam());
  ASSERT_EQ(clean.anomalies, 0u);
  ASSERT_EQ(faulted.anomalies, 1u) << "the scripted anomaly must actually quarantine";
  EXPECT_EQ(faulted.table, clean.table);
  EXPECT_EQ(faulted.ways, clean.ways);
  EXPECT_EQ(faulted.category, clean.category);
}

// kWrapped sends cumulative counters backwards (mod 2^24), which the
// controller reports as non-monotonic — the quarantine outcome is what the
// contract specifies, not the label.
INSTANTIATE_TEST_SUITE_P(AnomalyKinds, QuarantineByteIdentityTest,
                         ::testing::Values(CounterAnomalyKind::kWrapped,
                                           CounterAnomalyKind::kFrozen,
                                           CounterAnomalyKind::kGarbage),
                         [](const ::testing::TestParamInfo<CounterAnomalyKind>& info) {
                           return std::string(CounterAnomalyKindName(info.param));
                         });

TEST_F(FaultRecoveryTest, FrozenQuarantineRequiresMbmEvidence) {
  // The frozen classification fires only while the MBM path proves the
  // tenant alive. A genuinely idle interval (no feed, flat MBM) with the
  // same zero counter delta must classify as clean idle, not an anomaly.
  AddTenant(1, 0);
  FeedTick(0.05);
  FeedTick(0.05);
  faulty_.AdvanceTick();
  controller_.Tick();  // unfed interval: zero delta, zero MBM delta
  EXPECT_EQ(controller_.metrics().counter("faults.counter_anomalies").value(), 0u);
  // Same zero counter delta, but now with MBM still flowing: quarantined.
  backend_.Feed(0, 0.05, 0.33, 300, 0.5, 5'000'000);
  FeedTick(0.05);
  faulty_.ScriptCounterAnomaly(0, CounterAnomalyKind::kFrozen);
  FeedTick(0.05);
  EXPECT_EQ(controller_.metrics().counter("faults.counter_anomalies.frozen").value(), 1u);
}

}  // namespace
}  // namespace dcat
