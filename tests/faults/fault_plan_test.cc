#include "src/faults/fault_plan.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcat {
namespace {

TEST(FaultProfileTest, NamedProfilesResolve) {
  for (const char* name :
       {"transient", "silent-drift", "counter-garbage", "persistent-outage", "mixed"}) {
    const auto profile = FaultProfileByName(name);
    ASSERT_TRUE(profile.has_value()) << name;
    EXPECT_EQ(profile->name, name);
  }
  EXPECT_FALSE(FaultProfileByName("").has_value());
  EXPECT_FALSE(FaultProfileByName("chaos-monkey").has_value());
}

TEST(FaultPlanTest, DefaultPlanIsInert) {
  FaultPlan plan;
  for (int tick = 0; tick < 50; ++tick) {
    plan.AdvanceTick();
    EXPECT_FALSE(plan.InOutage());
    for (uint32_t index = 0; index < 8; ++index) {
      EXPECT_EQ(plan.OnWrite(BackendOp::kSetCosMask, index, 0), WriteFault::kNone);
      EXPECT_EQ(plan.OnWrite(BackendOp::kAssociateCore, index, 0), WriteFault::kNone);
      EXPECT_FALSE(plan.OnReadCounters(static_cast<uint16_t>(index)).has_value());
    }
  }
}

TEST(FaultPlanTest, NeverFiresAtTickZero) {
  FaultPlan plan(7, MixedChaosProfile());
  EXPECT_FALSE(plan.Active());
  for (uint32_t index = 0; index < 32; ++index) {
    EXPECT_EQ(plan.OnWrite(BackendOp::kSetCosMask, index, 0), WriteFault::kNone);
    EXPECT_FALSE(plan.OnReadCounters(static_cast<uint16_t>(index)).has_value());
  }
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  FaultPlan a(42, MixedChaosProfile());
  FaultPlan b(42, MixedChaosProfile());
  for (int tick = 0; tick < 100; ++tick) {
    a.AdvanceTick();
    b.AdvanceTick();
    EXPECT_EQ(a.InOutage(), b.InOutage());
    for (uint32_t index = 0; index < 8; ++index) {
      for (uint32_t attempt = 0; attempt < 4; ++attempt) {
        EXPECT_EQ(a.OnWrite(BackendOp::kSetCosMask, index, attempt),
                  b.OnWrite(BackendOp::kSetCosMask, index, attempt));
      }
      EXPECT_EQ(a.OnReadCounters(static_cast<uint16_t>(index)),
                b.OnReadCounters(static_cast<uint16_t>(index)));
    }
  }
}

TEST(FaultPlanTest, DecisionsIndependentOfQueryOrder) {
  // The schedule is a pure function of (tick, op, index, attempt): querying
  // in any order, or repeatedly, yields the same answers — the property
  // byte-identical chaos replays rely on.
  FaultPlan plan(11, MixedChaosProfile());
  plan.AdvanceTick();
  plan.AdvanceTick();
  std::vector<WriteFault> forward;
  for (uint32_t index = 0; index < 16; ++index) {
    forward.push_back(plan.OnWrite(BackendOp::kSetCosMask, index, 0));
  }
  for (uint32_t index = 16; index-- > 0;) {
    EXPECT_EQ(plan.OnWrite(BackendOp::kSetCosMask, index, 0), forward[index]);
    EXPECT_EQ(plan.OnWrite(BackendOp::kSetCosMask, index, 0), forward[index]);
  }
}

TEST(FaultPlanTest, SeedsDecorrelate) {
  FaultPlan a(1, MixedChaosProfile());
  FaultPlan b(2, MixedChaosProfile());
  int differences = 0;
  for (int tick = 0; tick < 200; ++tick) {
    a.AdvanceTick();
    b.AdvanceTick();
    for (uint32_t index = 0; index < 8; ++index) {
      if (a.OnWrite(BackendOp::kSetCosMask, index, 0) !=
          b.OnWrite(BackendOp::kSetCosMask, index, 0)) {
        ++differences;
      }
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultPlanTest, ActiveTicksBoundsTheSchedule) {
  FaultProfile profile = MixedChaosProfile();
  profile.active_ticks = 5;
  FaultPlan plan(3, profile);
  for (int tick = 1; tick <= 30; ++tick) {
    plan.AdvanceTick();
    if (tick > 5) {
      EXPECT_FALSE(plan.Active()) << "tick " << tick;
      EXPECT_FALSE(plan.InOutage());
      for (uint32_t index = 0; index < 16; ++index) {
        EXPECT_EQ(plan.OnWrite(BackendOp::kSetCosMask, index, 0), WriteFault::kNone);
        EXPECT_FALSE(plan.OnReadCounters(static_cast<uint16_t>(index)).has_value());
      }
    }
  }
}

TEST(FaultPlanTest, TransientBurstThenSuccess) {
  // Every afflicted write fails for exactly `transient_burst` attempts and
  // then succeeds — the shape a bounded-retry loop must absorb.
  FaultProfile profile = TransientProfile();
  FaultPlan plan(5, profile);
  int afflicted = 0;
  for (int tick = 0; tick < 100; ++tick) {
    plan.AdvanceTick();
    for (uint32_t index = 0; index < 8; ++index) {
      if (plan.OnWrite(BackendOp::kSetCosMask, index, 0) != WriteFault::kIoError) {
        continue;
      }
      ++afflicted;
      for (uint32_t attempt = 1; attempt < profile.transient_burst; ++attempt) {
        EXPECT_EQ(plan.OnWrite(BackendOp::kSetCosMask, index, attempt), WriteFault::kIoError);
      }
      EXPECT_EQ(plan.OnWrite(BackendOp::kSetCosMask, index, profile.transient_burst),
                WriteFault::kNone);
    }
  }
  EXPECT_GT(afflicted, 0);  // rate 0.15 over 800 draws: astronomically unlikely to miss
}

TEST(FaultPlanTest, OutagesFallWithinConfiguredBounds) {
  const FaultProfile profile = PersistentOutageProfile();
  FaultPlan plan(9, profile);
  int outage_ticks = 0;
  uint32_t current_run = 0;
  std::vector<uint32_t> runs;
  for (int tick = 0; tick < 500; ++tick) {
    plan.AdvanceTick();
    if (plan.InOutage()) {
      ++outage_ticks;
      ++current_run;
      EXPECT_EQ(plan.OnWrite(BackendOp::kSetCosMask, 0, 3), WriteFault::kIoError);
      EXPECT_EQ(plan.OnWrite(BackendOp::kAssociateCore, 4, 0), WriteFault::kIoError);
    } else if (current_run > 0) {
      runs.push_back(current_run);
      current_run = 0;
    }
  }
  EXPECT_GT(outage_ticks, 0);
  EXPECT_LT(outage_ticks, 500);  // rate 0.08: the surface is mostly up
  // Adjacent windows may chain (a new outage can start the tick the
  // previous one ends), so observed runs have no upper bound — but every
  // run is at least one window long.
  for (uint32_t run : runs) {
    EXPECT_GE(run, profile.outage_min_ticks);
  }
}

TEST(FaultPlanTest, CounterAnomaliesStablePerTickAndCore) {
  FaultPlan plan(13, CounterGarbageProfile());
  int fired = 0;
  for (int tick = 0; tick < 200; ++tick) {
    plan.AdvanceTick();
    for (uint16_t core = 0; core < 8; ++core) {
      const auto first = plan.OnReadCounters(core);
      EXPECT_EQ(plan.OnReadCounters(core), first);  // same tick, same answer
      if (first.has_value()) {
        ++fired;
      }
    }
  }
  EXPECT_GT(fired, 0);
}

}  // namespace
}  // namespace dcat
