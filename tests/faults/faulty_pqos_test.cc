#include "src/faults/faulty_pqos.h"

#include <gtest/gtest.h>

#include "src/pqos/mask.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

class FaultyPqosTest : public ::testing::Test {
 protected:
  FaultyPqosTest() : faulty_(&backend_, &backend_) {}

  FakePqos backend_;
  FaultyPqos faulty_;
};

TEST_F(FaultyPqosTest, GeometryPassesThrough) {
  EXPECT_EQ(faulty_.NumWays(), backend_.NumWays());
  EXPECT_EQ(faulty_.NumCos(), backend_.NumCos());
  EXPECT_EQ(faulty_.NumCores(), backend_.NumCores());
  EXPECT_EQ(faulty_.WayCapacityBytes(), backend_.WayCapacityBytes());
}

TEST_F(FaultyPqosTest, InertPlanForwardsEverything) {
  EXPECT_EQ(faulty_.SetCosMask(1, MakeWayMask(0, 4)), PqosStatus::kOk);
  EXPECT_EQ(backend_.GetCosMask(1), MakeWayMask(0, 4));
  EXPECT_EQ(faulty_.AssociateCore(3, 1), PqosStatus::kOk);
  EXPECT_EQ(backend_.GetCoreAssociation(3), 1);
  EXPECT_EQ(faulty_.stats().forwarded_writes, 2u);
  EXPECT_EQ(faulty_.stats().injected_io_errors, 0u);
}

TEST_F(FaultyPqosTest, ScriptedIoErrorNeverTouchesBackend) {
  const uint32_t before = backend_.GetCosMask(1);
  faulty_.ScriptWriteFault(BackendOp::kSetCosMask, WriteFault::kIoError);
  EXPECT_EQ(faulty_.SetCosMask(1, MakeWayMask(0, 4)), PqosStatus::kIoError);
  EXPECT_EQ(backend_.GetCosMask(1), before);
  EXPECT_EQ(faulty_.stats().injected_io_errors, 1u);
  // The script is consumed: the retry succeeds.
  EXPECT_EQ(faulty_.SetCosMask(1, MakeWayMask(0, 4)), PqosStatus::kOk);
  EXPECT_EQ(backend_.GetCosMask(1), MakeWayMask(0, 4));
}

TEST_F(FaultyPqosTest, SilentDropLiesButControlReadsTellTruth) {
  const uint32_t before = backend_.GetCosMask(2);
  faulty_.ScriptWriteFault(BackendOp::kSetCosMask, WriteFault::kSilentDrop);
  // The decorator acknowledges the write...
  EXPECT_EQ(faulty_.SetCosMask(2, MakeWayMask(0, 6)), PqosStatus::kOk);
  // ...but the backend never saw it, and the readback says so — which is
  // exactly how verify-after-write catches the drop.
  EXPECT_EQ(faulty_.GetCosMask(2), before);
  EXPECT_EQ(faulty_.stats().injected_silent_drops, 1u);
}

TEST_F(FaultyPqosTest, ScriptedAssociationFaults) {
  faulty_.ScriptWriteFault(BackendOp::kAssociateCore, WriteFault::kSilentDrop);
  EXPECT_EQ(faulty_.AssociateCore(5, 3), PqosStatus::kOk);
  EXPECT_EQ(faulty_.GetCoreAssociation(5), 0);  // truth: never forwarded
  EXPECT_EQ(faulty_.AssociateCore(5, 3), PqosStatus::kOk);
  EXPECT_EQ(faulty_.GetCoreAssociation(5), 3);
}

TEST_F(FaultyPqosTest, FrozenReplaysLastCleanRead) {
  backend_.Feed(0, 1.0, 0.3, 100, 0.2);
  const PerfCounterBlock first = faulty_.ReadCounters(0);  // clean: snapshotted
  backend_.Feed(0, 1.0, 0.3, 100, 0.2);
  faulty_.ScriptCounterAnomaly(0, CounterAnomalyKind::kFrozen);
  const PerfCounterBlock frozen = faulty_.ReadCounters(0);
  EXPECT_EQ(frozen.retired_instructions, first.retired_instructions);
  EXPECT_EQ(frozen.llc_misses, first.llc_misses);
  // Next read is clean again and sees the advanced counters.
  const PerfCounterBlock thawed = faulty_.ReadCounters(0);
  EXPECT_GT(thawed.retired_instructions, first.retired_instructions);
  EXPECT_EQ(faulty_.stats().injected_counter_anomalies, 1u);
}

TEST_F(FaultyPqosTest, NonMonotonicGoesBackwards) {
  backend_.Feed(0, 1.0, 0.3, 100, 0.2);
  const PerfCounterBlock clean = faulty_.ReadCounters(0);
  faulty_.ScriptCounterAnomaly(0, CounterAnomalyKind::kNonMonotonic);
  const PerfCounterBlock bad = faulty_.ReadCounters(0);
  EXPECT_LT(bad.retired_instructions, clean.retired_instructions);
  EXPECT_LT(bad.llc_references, clean.llc_references);
}

TEST_F(FaultyPqosTest, GarbageIsImplausible) {
  backend_.Feed(0, 1.0, 0.3, 100, 0.2);
  faulty_.ScriptCounterAnomaly(0, CounterAnomalyKind::kGarbage);
  const PerfCounterBlock bad = faulty_.ReadCounters(0);
  EXPECT_GT(bad.llc_misses, bad.llc_references);  // impossible ratio
}

TEST_F(FaultyPqosTest, MonitoringReadsNeverFaultTheMbmPath) {
  // MBM is the independent liveness cross-check: the decorator corrupts
  // per-core perf counters only, never the per-COS MBM bytes.
  faulty_.AssociateCore(0, 2);
  backend_.Feed(0, 1.0, 0.3, 100, 0.5);
  faulty_.ScriptCounterAnomaly(0, CounterAnomalyKind::kFrozen);
  (void)faulty_.ReadCounters(0);
  EXPECT_EQ(faulty_.MemoryBandwidthBytes(2), backend_.MemoryBandwidthBytes(2));
  EXPECT_GT(faulty_.MemoryBandwidthBytes(2), 0u);
}

TEST_F(FaultyPqosTest, PlanDrivenBurstClearsOnRetryWithinTick) {
  // With the transient profile, an afflicted write fails for `burst`
  // attempts and then the decorator forwards it — all within one tick.
  FaultProfile profile = TransientProfile();
  profile.transient_write_rate = 1.0;  // every write afflicted
  FaultyPqos chaotic(&backend_, &backend_, FaultPlan(17, profile));
  chaotic.AdvanceTick();  // tick 1: plan active
  for (uint32_t attempt = 0; attempt < profile.transient_burst; ++attempt) {
    EXPECT_EQ(chaotic.SetCosMask(4, MakeWayMask(0, 5)), PqosStatus::kIoError);
  }
  EXPECT_EQ(chaotic.SetCosMask(4, MakeWayMask(0, 5)), PqosStatus::kOk);
  EXPECT_EQ(backend_.GetCosMask(4), MakeWayMask(0, 5));
}

TEST_F(FaultyPqosTest, AdvanceTickResetsAttemptCounters) {
  FaultProfile profile = TransientProfile();
  profile.transient_write_rate = 1.0;
  FaultyPqos chaotic(&backend_, &backend_, FaultPlan(17, profile));
  chaotic.AdvanceTick();
  for (uint32_t attempt = 0; attempt <= profile.transient_burst; ++attempt) {
    (void)chaotic.SetCosMask(4, MakeWayMask(0, 5));
  }
  chaotic.AdvanceTick();
  // A fresh tick starts a fresh burst for the same (op, index).
  EXPECT_EQ(chaotic.SetCosMask(4, MakeWayMask(0, 6)), PqosStatus::kIoError);
}

}  // namespace
}  // namespace dcat
