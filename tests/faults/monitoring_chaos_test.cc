// Monitoring-plane chaos: failed and torn per-COS MBM/occupancy reads.
// The fault schedule must be a pure function of (seed, tick, cos), the
// perturbations must have exactly the documented shapes (a failed read
// yields 0, a torn read loses its high bits), and the controller must
// ride out a monitoring-chaos run without degrading — monitor faults are
// telemetry noise, never apply failures.
#include <gtest/gtest.h>

#include <bit>
#include <memory>

#include "src/core/dcat_controller.h"
#include "src/faults/fault_plan.h"
#include "src/faults/faulty_pqos.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

TEST(MonitoringChaosTest, ScheduleIsDeterministicPerTickAndCos) {
  FaultPlan a(5, MonitoringChaosProfile());
  FaultPlan b(5, MonitoringChaosProfile());
  bool any_fault = false;
  for (int tick = 0; tick < 100; ++tick) {
    a.AdvanceTick();
    b.AdvanceTick();
    for (uint8_t cos = 0; cos < 8; ++cos) {
      const MonitorFault fault = a.OnMonitorRead(cos);
      // Same (seed, tick, cos) -> same answer, across plans and across
      // repeated reads within the tick.
      EXPECT_EQ(fault, b.OnMonitorRead(cos));
      EXPECT_EQ(fault, a.OnMonitorRead(cos));
      any_fault = any_fault || fault != MonitorFault::kNone;
    }
  }
  EXPECT_TRUE(any_fault) << "the monitoring profile never fired in 100 ticks";
}

TEST(MonitoringChaosTest, FailedReadYieldsZero) {
  FaultProfile profile;
  profile.name = "monitor-error";
  profile.monitor_read_error_rate = 1.0;
  FakePqos backend;
  FaultyPqos faulty(&backend, &backend, FaultPlan(1, profile));
  // ~6.4e12 bytes of MBM traffic on COS 0 — far from zero.
  backend.Feed(0, 1.0, 0.1, 1000, 1.0, 100'000'000'000ULL);
  ASSERT_GT(backend.MemoryBandwidthBytes(0), 0u);
  faulty.AdvanceTick();
  EXPECT_EQ(faulty.MemoryBandwidthBytes(0), 0u);
  EXPECT_GT(faulty.stats().injected_monitor_faults, 0u);
}

TEST(MonitoringChaosTest, TornReadLosesHighBits) {
  FaultProfile profile;
  profile.name = "monitor-torn";
  profile.monitor_torn_read_rate = 1.0;
  FakePqos backend;
  FaultyPqos faulty(&backend, &backend, FaultPlan(1, profile));
  backend.Feed(0, 1.0, 0.1, 1000, 1.0, 100'000'000'000ULL);
  const uint64_t clean = backend.MemoryBandwidthBytes(0);
  ASSERT_GT(clean, 0xffffffffULL) << "need >32 bits of traffic to observe the tear";
  faulty.AdvanceTick();
  EXPECT_EQ(faulty.MemoryBandwidthBytes(0), clean & 0xffffffffULL);
}

TEST(MonitoringChaosTest, NeverFiresBeforeTheFirstTick) {
  // Tick 0 covers initial admission: monitoring reads must pass through
  // clean so baselines are seeded from real data.
  FaultProfile profile;
  profile.name = "monitor-error";
  profile.monitor_read_error_rate = 1.0;
  FakePqos backend;
  FaultyPqos faulty(&backend, &backend, FaultPlan(1, profile));
  backend.Feed(0, 1.0, 0.1, 1000, 1.0, 1'000'000);
  EXPECT_EQ(faulty.MemoryBandwidthBytes(0), backend.MemoryBandwidthBytes(0));
}

TEST(MonitoringChaosTest, ControllerRidesOutMonitoringChaos) {
  // 40 intervals under the named "monitoring" profile: reads fail and
  // tear, but no apply ever fails, so the controller must stay out of
  // degraded mode and the backend must track its allocations exactly.
  FakePqos backend;
  FaultyPqos faulty(&backend, &backend, FaultPlan(7, MonitoringChaosProfile()));
  DcatController controller(&faulty, &faulty, DcatConfig{});
  ASSERT_EQ(controller.AddTenant(
                TenantSpec{.id = 1, .name = "t1", .cores = {0}, .baseline_ways = 3}),
            AdmitStatus::kOk);
  for (int t = 0; t < 40; ++t) {
    backend.Feed(0, 0.05, 0.33, 300, 0.5, 5'000'000);
    faulty.AdvanceTick();
    controller.Tick();
  }
  EXPECT_GT(faulty.stats().injected_monitor_faults, 0u)
      << "the profile must actually exercise the monitoring plane";
  EXPECT_FALSE(controller.degraded());
  EXPECT_EQ(controller.metrics().counter("faults.apply_failures").value(), 0u);
  EXPECT_EQ(controller.TenantWays(1),
            static_cast<uint32_t>(
                std::popcount(backend.GetCosMask(controller.Snapshot(1).cos))));
}

}  // namespace
}  // namespace dcat
