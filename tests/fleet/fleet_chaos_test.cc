// Chaos-composed fleets: FaultyPqos rides a subset of shards
// (chaos_every), and shard isolation means the blast radius is exactly
// those shards — every shard self-heals (invariant-clean), and healthy
// shards produce traces byte-identical to a chaos-free fleet.
#include "src/fleet/fleet.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "src/verify/scenario.h"

namespace dcat {
namespace {

FleetConfig ChaosFleet() {
  FleetConfig config;
  config.hosts = 6;
  config.sockets_per_host = 1;
  config.base_seed = 33;
  config.intervals = 12;
  config.jobs = 2;
  config.chaos_every = 3;  // shards 0 and 3 run under FaultyPqos
  config.chaos_profile = "mixed";
  return config;
}

TEST(FleetChaosTest, FaultedShardsAreExactlyTheScheduledOnes) {
  const FleetResult fleet = RunFleet(ChaosFleet());
  ASSERT_EQ(fleet.shards.size(), 6u);
  for (size_t s = 0; s < fleet.shards.size(); ++s) {
    EXPECT_EQ(fleet.shards[s].faulted, s % 3 == 0) << "shard " << s;
  }
}

TEST(FleetChaosTest, ChaosComposedFleetStaysInvariantClean) {
  const FleetResult fleet = RunFleet(ChaosFleet());
  for (size_t s = 0; s < fleet.shards.size(); ++s) {
    for (const Violation& v : fleet.shards[s].result.violations) {
      ADD_FAILURE() << "shard " << s << " tick " << v.tick << " " << v.invariant << ": "
                    << v.detail;
    }
  }
  EXPECT_TRUE(fleet.ok());
  const auto it = fleet.metrics.counters().find("fleet.violations_total");
  ASSERT_NE(it, fleet.metrics.counters().end());
  EXPECT_EQ(it->second.value(), 0u);
}

TEST(FleetChaosTest, HealthyShardsMatchChaosFreeFleet) {
  const FleetResult chaotic = RunFleet(ChaosFleet());
  FleetConfig calm = ChaosFleet();
  calm.chaos_every = 0;
  const FleetResult baseline = RunFleet(calm);
  ASSERT_EQ(chaotic.shards.size(), baseline.shards.size());
  for (size_t s = 0; s < chaotic.shards.size(); ++s) {
    if (chaotic.shards[s].faulted) {
      continue;  // fault injection legitimately changes these traces
    }
    const std::string diff = DescribeTraceDivergence(baseline.shards[s].result.trace,
                                                     chaotic.shards[s].result.trace);
    EXPECT_TRUE(diff.empty()) << "healthy shard " << s << " perturbed by chaos: " << diff;
  }
}

TEST(FleetChaosTest, ChaosFleetIsJobsIndependent) {
  FleetConfig serial = ChaosFleet();
  serial.jobs = 1;
  FleetConfig sharded = ChaosFleet();
  sharded.jobs = 4;
  EXPECT_EQ(RunFleet(serial).MergedTrace(), RunFleet(sharded).MergedTrace());
}

}  // namespace
}  // namespace dcat
