// Fleet determinism contract (DESIGN.md §16): every shard's decision trace
// is a pure function of (config, shard) — byte-identical between jobs=1
// and jobs=N, equal to a standalone RunScenario of the shard's scenario,
// and merged in shard order so fleet aggregates never depend on the job
// count or scheduling order.
#include "src/fleet/fleet.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "src/verify/scenario.h"

namespace dcat {
namespace {

uint64_t CounterValue(const MetricsRegistry& metrics, const std::string& name) {
  const auto it = metrics.counters().find(name);
  return it == metrics.counters().end() ? 0 : it->second.value();
}

double GaugeValue(const MetricsRegistry& metrics, const std::string& name) {
  const auto it = metrics.gauges().find(name);
  return it == metrics.gauges().end() ? -1.0 : it->second.value();
}

FleetConfig SmallRandomFleet() {
  FleetConfig config;
  config.hosts = 4;
  config.sockets_per_host = 1;
  config.base_seed = 21;
  config.intervals = 12;  // trimmed: the contract is per-line, not per-length
  return config;
}

TEST(FleetDeterminismTest, SerialVsShardedByteIdentical) {
  FleetConfig serial = SmallRandomFleet();
  serial.jobs = 1;
  FleetConfig sharded = SmallRandomFleet();
  sharded.jobs = 4;

  const FleetResult a = RunFleet(serial);
  const FleetResult b = RunFleet(sharded);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t s = 0; s < a.shards.size(); ++s) {
    const std::string diff =
        DescribeTraceDivergence(a.shards[s].result.trace, b.shards[s].result.trace);
    EXPECT_TRUE(diff.empty()) << "shard " << s << ": " << diff;
  }
  EXPECT_EQ(a.MergedTrace(), b.MergedTrace());
  EXPECT_EQ(a.ticks_total, b.ticks_total);
  EXPECT_EQ(a.accesses_total, b.accesses_total);
  EXPECT_EQ(a.violations_total, b.violations_total);
}

TEST(FleetDeterminismTest, ShardMatchesStandaloneRunScenario) {
  FleetConfig config = SmallRandomFleet();
  config.hosts = 2;
  config.jobs = 2;
  const FleetResult fleet = RunFleet(config);
  ASSERT_EQ(fleet.shards.size(), 2u);
  for (uint32_t s = 0; s < 2; ++s) {
    const ScenarioResult standalone =
        RunScenario(FleetShardScenario(config, s), FleetShardRunOptions(config, s));
    EXPECT_EQ(standalone.trace, fleet.shards[s].result.trace) << "shard " << s;
    EXPECT_EQ(standalone.ticks, fleet.shards[s].result.ticks);
  }
}

TEST(FleetDeterminismTest, ShardIndexingIsHostMajor) {
  FleetConfig config;
  config.hosts = 2;
  config.sockets_per_host = 2;
  config.jobs = 2;
  config.intervals = 6;
  config.mix = FleetConfig::Mix::kSteady;
  const FleetResult fleet = RunFleet(config);
  ASSERT_EQ(fleet.shards.size(), 4u);
  const uint32_t hosts[] = {0, 0, 1, 1};
  const uint32_t sockets[] = {0, 1, 0, 1};
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(fleet.shards[s].host, hosts[s]);
    EXPECT_EQ(fleet.shards[s].socket, sockets[s]);
    EXPECT_EQ(fleet.shards[s].seed, config.base_seed + s);
  }
}

TEST(FleetDeterminismTest, MergedTraceTagsEveryLineWithHostAndSocket) {
  FleetConfig config;
  config.hosts = 2;
  config.sockets_per_host = 1;
  config.jobs = 1;
  config.intervals = 6;
  config.mix = FleetConfig::Mix::kSteady;
  const FleetResult fleet = RunFleet(config);
  std::istringstream in(fleet.MergedTrace());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    ++lines;
    EXPECT_EQ(line.rfind("{\"host\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"socket\":"), std::string::npos) << line;
  }
  EXPECT_GT(lines, 0u);
}

TEST(FleetDeterminismTest, AggregatesSumShardsInOrder) {
  FleetConfig config = SmallRandomFleet();
  config.jobs = 2;
  const FleetResult fleet = RunFleet(config);
  EXPECT_DOUBLE_EQ(GaugeValue(fleet.metrics, "fleet.hosts"), 4.0);
  EXPECT_DOUBLE_EQ(GaugeValue(fleet.metrics, "fleet.sockets_per_host"), 1.0);
  EXPECT_DOUBLE_EQ(GaugeValue(fleet.metrics, "fleet.shards"), 4.0);
  uint64_t ticks = 0;
  uint64_t accesses = 0;
  for (const FleetShardReport& shard : fleet.shards) {
    ticks += shard.result.ticks;
    accesses += shard.result.accesses;
  }
  EXPECT_EQ(fleet.ticks_total, ticks);
  EXPECT_EQ(fleet.accesses_total, accesses);
  EXPECT_EQ(CounterValue(fleet.metrics, "fleet.ticks_total"), ticks);
  EXPECT_EQ(CounterValue(fleet.metrics, "fleet.accesses_total"), accesses);
  // Per-shard controller counters are summed under their own names; every
  // shard audits `intervals` ticks, so the shared counter must be the sum.
  uint64_t audits = 0;
  for (const FleetShardReport& shard : fleet.shards) {
    const auto& counters = shard.result.metrics.counters();
    const auto it = counters.find("invariant.audits");
    if (it != counters.end()) {
      audits += it->second.value();
    }
  }
  if (audits > 0) {
    EXPECT_EQ(CounterValue(fleet.metrics, "invariant.audits"), audits);
  }
}

TEST(FleetDeterminismTest, HybridFleetCleanAndJobsIndependent) {
  FleetConfig config;
  config.hosts = 3;
  config.sockets_per_host = 1;
  config.intervals = 10;
  config.mix = FleetConfig::Mix::kSteady;
  config.fidelity.mode = FidelityMode::kHybrid;
  config.fidelity.resample_every = 0;
  config.jobs = 1;
  const FleetResult serial = RunFleet(config);
  config.jobs = 3;
  const FleetResult sharded = RunFleet(config);
  EXPECT_TRUE(serial.ok());
  EXPECT_TRUE(sharded.ok());
  EXPECT_EQ(serial.MergedTrace(), sharded.MergedTrace());
}

}  // namespace
}  // namespace dcat
