// Batched mask programming (CatController::ApplyMaskBatch): backend
// semantics — atomic on SimPqos, validate-all-then-write on ResctrlPqos,
// first-failure prefix on the default per-COS loop — and the controller
// contract that batched and per-COS application produce byte-identical
// decision traces (Fig. 10 golden included) and invariant-clean chaos.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/policies/registry.h"
#include "src/pqos/mask.h"
#include "src/pqos/pqos.h"
#include "src/pqos/resctrl_pqos.h"
#include "src/pqos/sim_pqos.h"
#include "src/sim/socket.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {
namespace fs = std::filesystem;

// --- SimPqos: the batch is atomic -----------------------------------------

TEST(SimPqosBatchTest, ValidBatchAppliesEveryElement) {
  Socket socket(SocketConfig::XeonE5());
  SimPqos pqos(&socket);
  const std::vector<CosMaskUpdate> updates = {
      {.cos = 1, .mask = MakeWayMask(0, 4)},
      {.cos = 2, .mask = MakeWayMask(4, 6)},
      {.cos = 3, .mask = MakeWayMask(10, 2)},
  };
  size_t applied = 0;
  EXPECT_EQ(pqos.ApplyMaskBatch(updates, &applied), PqosStatus::kOk);
  EXPECT_EQ(applied, updates.size());
  for (const CosMaskUpdate& u : updates) {
    EXPECT_EQ(pqos.GetCosMask(u.cos), u.mask);
  }
}

TEST(SimPqosBatchTest, MalformedElementProgramsNothing) {
  Socket socket(SocketConfig::XeonE5());
  SimPqos pqos(&socket);
  const uint32_t before1 = pqos.GetCosMask(1);
  const uint32_t before2 = pqos.GetCosMask(2);
  const std::vector<CosMaskUpdate> updates = {
      {.cos = 1, .mask = MakeWayMask(0, 4)},
      {.cos = 2, .mask = 0b101},  // non-contiguous: hardware would reject it
  };
  size_t applied = 99;
  EXPECT_EQ(pqos.ApplyMaskBatch(updates, &applied), PqosStatus::kInvalidMask);
  EXPECT_EQ(applied, 0u);  // atomic: the valid leading element did not land
  EXPECT_EQ(pqos.GetCosMask(1), before1);
  EXPECT_EQ(pqos.GetCosMask(2), before2);
}

// --- Default implementation: per-COS loop, first failure stops ------------

// Minimal backend that fails SetCosMask for one designated COS; it does NOT
// override ApplyMaskBatch, so this exercises the base-class loop that
// decorators (fault injectors, crash points) inherit.
class FlakyCat : public CatController {
 public:
  explicit FlakyCat(uint8_t failing_cos) : failing_cos_(failing_cos), masks_(16, 0) {}

  uint32_t NumWays() const override { return 20; }
  uint8_t NumCos() const override { return 16; }
  uint16_t NumCores() const override { return 18; }
  uint64_t WayCapacityBytes() const override { return 1ull << 20; }
  PqosStatus SetCosMask(uint8_t cos, uint32_t mask) override {
    ++writes_;
    if (cos == failing_cos_) {
      return PqosStatus::kIoError;
    }
    masks_[cos] = mask;
    return PqosStatus::kOk;
  }
  uint32_t GetCosMask(uint8_t cos) const override { return masks_[cos]; }
  PqosStatus AssociateCore(uint16_t, uint8_t) override { return PqosStatus::kOk; }
  uint8_t GetCoreAssociation(uint16_t) const override { return 0; }

  int writes() const { return writes_; }

 private:
  uint8_t failing_cos_;
  std::vector<uint32_t> masks_;
  int writes_ = 0;
};

TEST(DefaultBatchTest, StopsAtFirstFailureWithLandedPrefix) {
  FlakyCat cat(/*failing_cos=*/3);
  const std::vector<CosMaskUpdate> updates = {
      {.cos = 1, .mask = MakeWayMask(0, 2)},
      {.cos = 2, .mask = MakeWayMask(2, 2)},
      {.cos = 3, .mask = MakeWayMask(4, 2)},
      {.cos = 4, .mask = MakeWayMask(6, 2)},
  };
  size_t applied = 0;
  EXPECT_EQ(cat.ApplyMaskBatch(updates, &applied), PqosStatus::kIoError);
  EXPECT_EQ(applied, 2u);          // the landed prefix
  EXPECT_EQ(cat.writes(), 3);      // element past the failure never attempted
  EXPECT_EQ(cat.GetCosMask(1), MakeWayMask(0, 2));
  EXPECT_EQ(cat.GetCosMask(2), MakeWayMask(2, 2));
  EXPECT_EQ(cat.GetCosMask(4), 0u);
}

TEST(DefaultBatchTest, EmptyBatchIsOk) {
  FlakyCat cat(/*failing_cos=*/1);
  size_t applied = 99;
  EXPECT_EQ(cat.ApplyMaskBatch({}, &applied), PqosStatus::kOk);
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(cat.writes(), 0);
}

// --- ResctrlPqos: validate all, then write --------------------------------

class ResctrlBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            (std::string("resctrl_batch_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "info" / "L3");
    WriteFile(root_ / "info" / "L3" / "cbm_mask", "fffff\n");  // 20 ways
    WriteFile(root_ / "info" / "L3" / "num_closids", "16\n");
    WriteFile(root_ / "schemata", "L3:0=fffff\n");
    WriteFile(root_ / "cpus_list", "0-17\n");
  }

  void TearDown() override { fs::remove_all(root_); }

  static void WriteFile(const fs::path& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }

  static std::string ReadFile(const fs::path& path) {
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  fs::path root_;
};

TEST_F(ResctrlBatchTest, ValidBatchWritesEverySchemata) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  const std::vector<CosMaskUpdate> updates = {
      {.cos = 1, .mask = MakeWayMask(0, 4)},
      {.cos = 2, .mask = MakeWayMask(4, 4)},
  };
  size_t applied = 0;
  EXPECT_EQ(pqos.ApplyMaskBatch(updates, &applied), PqosStatus::kOk);
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(pqos.GetCosMask(1), MakeWayMask(0, 4));
  EXPECT_EQ(pqos.GetCosMask(2), MakeWayMask(4, 4));
  EXPECT_NE(ReadFile(root_ / "dcat_cos1" / "schemata").find("f"), std::string::npos);
}

TEST_F(ResctrlBatchTest, MalformedElementWritesNoFiles) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  const std::string before = ReadFile(root_ / "dcat_cos1" / "schemata");
  const std::vector<CosMaskUpdate> updates = {
      {.cos = 1, .mask = MakeWayMask(0, 4)},
      {.cos = 2, .mask = 0},  // empty mask: invalid everywhere
  };
  size_t applied = 99;
  EXPECT_EQ(pqos.ApplyMaskBatch(updates, &applied), PqosStatus::kInvalidMask);
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos1" / "schemata"), before);
}

TEST_F(ResctrlBatchTest, OutOfRangeCosRejectsWholeBatch) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  const std::vector<CosMaskUpdate> updates = {
      {.cos = 1, .mask = MakeWayMask(0, 4)},
      {.cos = 16, .mask = MakeWayMask(0, 4)},  // num_closids is 16 → max COS 15
  };
  size_t applied = 99;
  EXPECT_EQ(pqos.ApplyMaskBatch(updates, &applied), PqosStatus::kOutOfRange);
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(pqos.GetCosMask(1), MakeWayMask(0, 20));  // untouched full mask
}

// --- Controller contract: batched ≡ per-COS -------------------------------

TEST(BatchTraceTest, BatchedAndPerCosTracesByteIdenticalUnderEveryPolicy) {
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    Scenario scenario = RandomScenario(11);
    scenario.intervals = 12;
    RunOptions options;
    options.policy = policy;
    scenario.dcat.batch_mask_apply = true;
    const ScenarioResult batched = RunScenario(scenario, options);
    scenario.dcat.batch_mask_apply = false;
    const ScenarioResult per_cos = RunScenario(scenario, options);
    const std::string diff = DescribeTraceDivergence(per_cos.trace, batched.trace);
    EXPECT_TRUE(diff.empty()) << "policy " << policy << ": " << diff;
  }
}

TEST(BatchTraceTest, Fig10GoldenUnchangedByBatchToggle) {
  Scenario scenario = Fig10Scenario();
  RunOptions options;
  scenario.dcat.batch_mask_apply = true;
  const ScenarioResult batched = RunScenario(scenario, options);
  scenario.dcat.batch_mask_apply = false;
  const ScenarioResult per_cos = RunScenario(scenario, options);
  const std::string diff = DescribeTraceDivergence(per_cos.trace, batched.trace);
  EXPECT_TRUE(diff.empty()) << diff;
  EXPECT_TRUE(batched.ok());
}

TEST(BatchTraceTest, ChaosRunsInvariantCleanInBothModes) {
  Scenario scenario = RandomScenario(5);
  scenario.intervals = 12;
  RunOptions options;
  options.inject_faults = true;
  options.fault_seed = 77;
  for (const bool batch : {true, false}) {
    scenario.dcat.batch_mask_apply = batch;
    const ScenarioResult result = RunScenario(scenario, options);
    for (const Violation& v : result.violations) {
      ADD_FAILURE() << (batch ? "batched" : "per-cos") << " tick " << v.tick << " "
                    << v.invariant << ": " << v.detail;
    }
  }
}

}  // namespace
}  // namespace dcat
