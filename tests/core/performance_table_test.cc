#include "src/core/performance_table.h"

#include <gtest/gtest.h>

namespace dcat {
namespace {

TEST(PerformanceTableTest, EmptyTable) {
  PerformanceTable t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Get(3).has_value());
  EXPECT_FALSE(t.PreferredWays(0.05).has_value());
  EXPECT_FALSE(t.Improvement(2, 3).has_value());
}

TEST(PerformanceTableTest, RecordAndGet) {
  PerformanceTable t;
  t.Record(3, 1.0);
  ASSERT_TRUE(t.Get(3).has_value());
  EXPECT_DOUBLE_EQ(*t.Get(3), 1.0);
  EXPECT_TRUE(t.Has(3));
  EXPECT_FALSE(t.Has(4));
}

TEST(PerformanceTableTest, RepeatedRecordsBlendWithEwma) {
  PerformanceTable t;
  t.Record(4, 1.0);
  t.Record(4, 2.0);  // EWMA(0.5): 1.5
  EXPECT_DOUBLE_EQ(*t.Get(4), 1.5);
}

TEST(PerformanceTableTest, PaperTableOnePreferredDependsOnThreshold) {
  // Table 1 of the paper marks 6 ways "preferred" (7 and 8 add nothing).
  // PreferredWays(thr) returns the smallest size no later size beats by
  // at least thr: with a 4% threshold that reproduces the paper's mark;
  // with the default 5% it stops one way earlier (5 -> 6 gains only 4%),
  // consistent with a Receiver that would not have taken the 6th way.
  PerformanceTable t;
  t.Record(2, 0.9);
  t.Record(3, 1.0);  // baseline
  t.Record(4, 1.15);
  t.Record(5, 1.25);
  t.Record(6, 1.3);
  t.Record(7, 1.3);
  t.Record(8, 1.3);
  EXPECT_EQ(t.PreferredWays(0.03), 6u);
  EXPECT_EQ(t.PreferredWays(0.05), 5u);
}

TEST(PerformanceTableTest, PreferredOfFlatTableIsSmallest) {
  PerformanceTable t;
  t.Record(2, 1.0);
  t.Record(4, 1.01);
  t.Record(6, 1.02);
  EXPECT_EQ(t.PreferredWays(0.05), 2u);
}

TEST(PerformanceTableTest, PreferredOfMonotonicTableIsLargest) {
  PerformanceTable t;
  t.Record(2, 1.0);
  t.Record(3, 1.2);
  t.Record(4, 1.45);
  EXPECT_EQ(t.PreferredWays(0.05), 4u);
}

TEST(PerformanceTableTest, ImprovementBetweenMeasuredSizes) {
  PerformanceTable t;
  t.Record(3, 1.0);
  t.Record(4, 1.2);
  EXPECT_NEAR(*t.Improvement(3, 4), 0.2, 1e-12);
  EXPECT_NEAR(*t.Improvement(4, 3), -1.0 / 6.0, 1e-12);
  EXPECT_FALSE(t.Improvement(3, 5).has_value());
}

TEST(PerformanceTableTest, EntriesAreSortedByWays) {
  PerformanceTable t;
  t.Record(5, 1.2);
  t.Record(2, 1.0);
  t.Record(9, 1.3);
  const auto entries = t.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 2u);
  EXPECT_EQ(entries[1].first, 5u);
  EXPECT_EQ(entries[2].first, 9u);
}

TEST(PerformanceTableTest, SingleEntryIsItsOwnPreferred) {
  PerformanceTable t;
  t.Record(3, 1.0);
  EXPECT_EQ(t.PreferredWays(0.05), 3u);
}

TEST(PerformanceTableTest, EwmaConvergesTowardRecentObservations) {
  PerformanceTable t;
  t.Record(4, 1.0);
  for (int i = 0; i < 10; ++i) {
    t.Record(4, 2.0);
  }
  EXPECT_NEAR(*t.Get(4), 2.0, 0.01);
}

TEST(PerformanceTableTest, ImprovementWithZeroBaseIsUndefined) {
  PerformanceTable t;
  t.Record(2, 0.0);
  t.Record(3, 1.0);
  EXPECT_FALSE(t.Improvement(2, 3).has_value());
}

TEST(PerformanceTableTest, ClearEmptiesTheTable) {
  PerformanceTable t;
  t.Record(2, 1.0);
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(PerformanceTableTest, ToStringListsEntries) {
  PerformanceTable t;
  t.Record(3, 1.0);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("3:1.000"), std::string::npos);
}

// --- PhaseBook ---

TEST(PhaseBookTest, FindOrCreateReusesMatchingSignature) {
  PhaseBook book(0.10);
  const size_t a = book.FindOrCreate(0.30);
  const size_t b = book.FindOrCreate(0.31);  // within 10%
  EXPECT_EQ(a, b);
  EXPECT_EQ(book.size(), 1u);
}

TEST(PhaseBookTest, DistinctSignaturesGetDistinctRecords) {
  PhaseBook book(0.10);
  const size_t a = book.FindOrCreate(0.30);
  const size_t b = book.FindOrCreate(0.50);
  EXPECT_NE(a, b);
  EXPECT_EQ(book.size(), 2u);
}

TEST(PhaseBookTest, FindWithoutCreate) {
  PhaseBook book(0.10);
  EXPECT_EQ(book.Find(0.30), PhaseBook::kNotFound);
  book.FindOrCreate(0.30);
  EXPECT_NE(book.Find(0.295), PhaseBook::kNotFound);
  EXPECT_EQ(book.Find(0.60), PhaseBook::kNotFound);
}

TEST(PhaseBookTest, RecordsPersistAcrossPhaseSwitches) {
  // The Fig. 12 mechanism: leave a phase, come back, find the table intact.
  PhaseBook book(0.10);
  const size_t mlr = book.FindOrCreate(0.333);
  book.record(mlr).baseline_ipc = 0.05;
  book.record(mlr).baseline_valid = true;
  book.record(mlr).table.Record(8, 2.5);

  book.FindOrCreate(0.0);  // idle phase interlude

  const size_t again = book.FindOrCreate(0.334);
  EXPECT_EQ(again, mlr);
  EXPECT_TRUE(book.record(again).baseline_valid);
  EXPECT_DOUBLE_EQ(*book.record(again).table.Get(8), 2.5);
}

TEST(PhaseBookTest, ZeroSignaturesMatch) {
  PhaseBook book(0.10);
  const size_t a = book.FindOrCreate(0.0);
  EXPECT_EQ(book.FindOrCreate(0.0), a);
}

}  // namespace
}  // namespace dcat
