// Scriptable pqos fake for controller unit tests.
//
// Tests feed per-core counter deltas describing exactly the workload
// behaviour they want the controller to see — IPC, memory intensity, LLC
// reference/miss rates — then call Tick() and assert on the decision.
#ifndef TESTS_CORE_FAKE_PQOS_H_
#define TESTS_CORE_FAKE_PQOS_H_

#include <cstdint>
#include <vector>

#include "src/pqos/mask.h"
#include "src/pqos/pqos.h"

namespace dcat {

class FakePqos : public CatController, public MonitoringProvider {
 public:
  FakePqos(uint32_t num_ways = 20, uint8_t num_cos = 16, uint16_t num_cores = 18)
      : num_ways_(num_ways),
        num_cos_(num_cos),
        num_cores_(num_cores),
        masks_(num_cos, MakeWayMask(0, num_ways)),
        assoc_(num_cores, 0),
        counters_(num_cores),
        mbm_(num_cos, 0) {}

  // --- test scripting ---

  // Advances one core by an interval of synthetic execution.
  //   ipc        -> unhalted cycles = instructions / ipc
  //   mem_per_ins-> l1 references
  //   llc_per_ki -> LLC references per 1000 instructions
  //   miss_rate  -> LLC misses / references
  void Feed(uint16_t core, double ipc, double mem_per_ins, double llc_per_ki, double miss_rate,
            uint64_t instructions = 1'000'000) {
    PerfCounterBlock& c = counters_.at(core);
    c.retired_instructions += instructions;
    c.unhalted_cycles += static_cast<double>(instructions) / (ipc > 0 ? ipc : 1.0);
    c.l1_references += static_cast<uint64_t>(static_cast<double>(instructions) * mem_per_ins);
    const uint64_t refs =
        static_cast<uint64_t>(static_cast<double>(instructions) / 1000.0 * llc_per_ki);
    c.llc_references += refs;
    const uint64_t misses = static_cast<uint64_t>(static_cast<double>(refs) * miss_rate);
    c.llc_misses += misses;
    // MBM mirror: every LLC miss is a 64-byte DRAM transfer charged to the
    // COS the core is associated with at feed time.
    mbm_.at(assoc_.at(core)) += misses * 64;
  }

  // Feeds an idle interval (no retired instructions).
  void FeedIdle(uint16_t core) { (void)core; }

  int set_mask_calls() const { return set_mask_calls_; }

  // --- CatController ---
  uint32_t NumWays() const override { return num_ways_; }
  uint8_t NumCos() const override { return num_cos_; }
  uint16_t NumCores() const override { return num_cores_; }
  uint64_t WayCapacityBytes() const override { return 2'359'296; }  // 2.25 MiB

  PqosStatus SetCosMask(uint8_t cos, uint32_t mask) override {
    if (cos >= num_cos_) {
      return PqosStatus::kOutOfRange;
    }
    if (!IsContiguousMask(mask) || (mask & ~MakeWayMask(0, num_ways_)) != 0) {
      return PqosStatus::kInvalidMask;
    }
    masks_.at(cos) = mask;
    ++set_mask_calls_;
    return PqosStatus::kOk;
  }
  uint32_t GetCosMask(uint8_t cos) const override { return masks_.at(cos); }
  PqosStatus AssociateCore(uint16_t core, uint8_t cos) override {
    if (core >= num_cores_ || cos >= num_cos_) {
      return PqosStatus::kOutOfRange;
    }
    assoc_.at(core) = cos;
    return PqosStatus::kOk;
  }
  uint8_t GetCoreAssociation(uint16_t core) const override { return assoc_.at(core); }

  // --- MonitoringProvider ---
  PerfCounterBlock ReadCounters(uint16_t core) const override { return counters_.at(core); }
  uint64_t LlcOccupancyBytes(uint8_t cos) const override {
    (void)cos;
    return 0;
  }
  uint64_t MemoryBandwidthBytes(uint8_t cos) const override { return mbm_.at(cos); }

 private:
  uint32_t num_ways_;
  uint8_t num_cos_;
  uint16_t num_cores_;
  std::vector<uint32_t> masks_;
  std::vector<uint8_t> assoc_;
  std::vector<PerfCounterBlock> counters_;
  std::vector<uint64_t> mbm_;
  int set_mask_calls_ = 0;
};

}  // namespace dcat

#endif  // TESTS_CORE_FAKE_PQOS_H_
