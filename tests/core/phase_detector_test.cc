#include "src/core/phase_detector.h"

#include <gtest/gtest.h>

namespace dcat {
namespace {

WorkloadSample MakeSample(uint64_t instructions, uint64_t l1_refs) {
  WorkloadSample s;
  s.delta.retired_instructions = instructions;
  s.delta.l1_references = l1_refs;
  s.delta.unhalted_cycles = static_cast<double>(instructions);
  return s;
}

DcatConfig DefaultConfig() { return DcatConfig{}; }

TEST(PhaseDetectorTest, FirstSampleIsAlwaysAChange) {
  PhaseDetector det(DefaultConfig());
  EXPECT_TRUE(det.Update(MakeSample(1'000'000, 300'000)));
}

TEST(PhaseDetectorTest, StableSignatureIsNoChange) {
  PhaseDetector det(DefaultConfig());
  det.Update(MakeSample(1'000'000, 300'000));
  EXPECT_FALSE(det.Update(MakeSample(1'000'000, 301'000)));
  EXPECT_FALSE(det.Update(MakeSample(900'000, 272'000)));
}

TEST(PhaseDetectorTest, TenPercentDeltaTriggers) {
  PhaseDetector det(DefaultConfig());
  det.Update(MakeSample(1'000'000, 300'000));  // 0.30
  EXPECT_TRUE(det.Update(MakeSample(1'000'000, 360'000)));  // 0.36: +20%
}

TEST(PhaseDetectorTest, JustUnderThresholdDoesNotTrigger) {
  PhaseDetector det(DefaultConfig());
  det.Update(MakeSample(1'000'000, 300'000));
  // 0.32/0.30 ≈ +6.7% relative to the max: below 10%.
  EXPECT_FALSE(det.Update(MakeSample(1'000'000, 320'000)));
}

TEST(PhaseDetectorTest, IdleToActiveIsAChange) {
  PhaseDetector det(DefaultConfig());
  det.Update(MakeSample(0, 0));  // idle
  EXPECT_TRUE(det.idle());
  EXPECT_TRUE(det.Update(MakeSample(1'000'000, 300'000)));
  EXPECT_FALSE(det.idle());
}

TEST(PhaseDetectorTest, ActiveToIdleIsAChange) {
  PhaseDetector det(DefaultConfig());
  det.Update(MakeSample(1'000'000, 300'000));
  EXPECT_TRUE(det.Update(MakeSample(0, 0)));
  EXPECT_TRUE(det.idle());
}

TEST(PhaseDetectorTest, FewInstructionsCountAsIdle) {
  DcatConfig config;
  config.min_instructions_per_interval = 10'000;
  PhaseDetector det(config);
  det.Update(MakeSample(500, 200));
  EXPECT_TRUE(det.idle());
}

TEST(PhaseDetectorTest, ComputeOnlyWorkloadIsIdlePhase) {
  // Memory accesses per instruction below epsilon: lookbusy-like, treated
  // as the idle phase for cache purposes.
  PhaseDetector det(DefaultConfig());
  det.Update(MakeSample(1'000'000, 100));
  EXPECT_TRUE(det.idle());
}

TEST(PhaseDetectorTest, SignatureTracksTheMetric) {
  PhaseDetector det(DefaultConfig());
  det.Update(MakeSample(1'000'000, 300'000));
  EXPECT_NEAR(det.signature(), 0.30, 1e-9);
}

TEST(PhaseDetectorTest, SlowDriftDoesNotRetrigger) {
  // Drift of 1% per interval: smoothing keeps up without firing. A detector
  // that compared to a frozen first sample would eventually fire spuriously.
  PhaseDetector det(DefaultConfig());
  double mpi = 0.300;
  det.Update(MakeSample(1'000'000, static_cast<uint64_t>(1'000'000 * mpi)));
  for (int i = 0; i < 20; ++i) {
    mpi *= 1.01;
    EXPECT_FALSE(det.Update(MakeSample(1'000'000, static_cast<uint64_t>(1'000'000 * mpi))))
        << "spurious change at step " << i;
  }
}

TEST(PhaseDetectorTest, SignatureIsAllocationInvariantByConstruction) {
  // The same instruction mix under different cache behaviour (different
  // cycle counts / LLC misses) is the same phase — the Figure 5 property.
  PhaseDetector det(DefaultConfig());
  WorkloadSample fast = MakeSample(1'000'000, 300'000);
  fast.delta.unhalted_cycles = 1'000'000;  // IPC 1.0
  fast.delta.llc_misses = 100;
  WorkloadSample slow = MakeSample(1'000'000, 300'000);
  slow.delta.unhalted_cycles = 40'000'000;  // IPC 0.025
  slow.delta.llc_misses = 500'000;
  det.Update(fast);
  EXPECT_FALSE(det.Update(slow));
}

TEST(PhaseDetectorTest, ReturnFromIdleToSamePhase) {
  PhaseDetector det(DefaultConfig());
  det.Update(MakeSample(1'000'000, 300'000));
  det.Update(MakeSample(0, 0));  // stop
  EXPECT_TRUE(det.Update(MakeSample(1'000'000, 300'000)));  // change fires...
  EXPECT_NEAR(det.signature(), 0.30, 1e-9);  // ...and the signature matches
}

}  // namespace
}  // namespace dcat
