#include "src/core/allocator.h"

#include <gtest/gtest.h>

#include "src/pqos/mask.h"

namespace dcat {
namespace {

TEST(SolveMaxPerformanceTest, EmptyInput) {
  EXPECT_TRUE(SolveMaxPerformance({}, 10).empty());
}

TEST(SolveMaxPerformanceTest, SingleWorkloadPicksBestAffordable) {
  TableChoices w;
  w.options = {{2, 1.0}, {4, 1.5}, {8, 2.0}};
  EXPECT_EQ(SolveMaxPerformance({w}, 10), (std::vector<uint32_t>{8}));
  EXPECT_EQ(SolveMaxPerformance({w}, 5), (std::vector<uint32_t>{4}));
  EXPECT_EQ(SolveMaxPerformance({w}, 2), (std::vector<uint32_t>{2}));
}

TEST(SolveMaxPerformanceTest, InfeasibleBudgetReturnsEmpty) {
  TableChoices w;
  w.options = {{4, 1.0}};
  EXPECT_TRUE(SolveMaxPerformance({w}, 3).empty());
}

TEST(SolveMaxPerformanceTest, PaperWorkedExample) {
  // §3.5: 10 ways total; C reclaims 2, leaving 8 for A and B.
  //   A: (2:1), (3:1.05), (4:1.08), (5:1.12)
  //   B: (2:1), (3:1.1), (4:1.2), (5:1.25)
  // Optimum: A=3, B=5 with total 1.05 + 1.25 = 2.3.
  TableChoices a;
  a.options = {{2, 1.0}, {3, 1.05}, {4, 1.08}, {5, 1.12}};
  TableChoices b;
  b.options = {{2, 1.0}, {3, 1.1}, {4, 1.2}, {5, 1.25}};
  const auto solution = SolveMaxPerformance({a, b}, 8);
  ASSERT_EQ(solution.size(), 2u);
  EXPECT_EQ(solution[0], 3u);
  EXPECT_EQ(solution[1], 5u);
}

TEST(SolveMaxPerformanceTest, SymmetricWorkloadsSplitEvenly) {
  TableChoices w;
  // Concave curve: even split maximizes the sum.
  w.options = {{1, 1.0}, {2, 1.5}, {3, 1.8}, {4, 1.9}};
  const auto solution = SolveMaxPerformance({w, w}, 6);
  ASSERT_EQ(solution.size(), 2u);
  EXPECT_EQ(solution[0] + solution[1], 6u);
  EXPECT_EQ(solution[0], 3u);
  EXPECT_EQ(solution[1], 3u);
}

TEST(SolveMaxPerformanceTest, SkewedBenefitConcentratesWays) {
  TableChoices flat;
  flat.options = {{1, 1.0}, {2, 1.01}, {3, 1.02}};
  TableChoices steep;
  steep.options = {{1, 1.0}, {2, 1.5}, {3, 2.0}};
  const auto solution = SolveMaxPerformance({flat, steep}, 4);
  ASSERT_EQ(solution.size(), 2u);
  EXPECT_EQ(solution[0], 1u);
  EXPECT_EQ(solution[1], 3u);
}

TEST(SolveMaxPerformanceTest, UsesAtMostBudget) {
  TableChoices w;
  w.options = {{1, 1.0}, {5, 1.001}};
  const auto solution = SolveMaxPerformance({w, w, w}, 7);
  ASSERT_EQ(solution.size(), 3u);
  uint32_t total = 0;
  for (uint32_t v : solution) {
    total += v;
  }
  EXPECT_LE(total, 7u);
}

TEST(SolveMaxPerformanceTest, ThreeWorkloadsExactOptimum) {
  TableChoices a;
  a.options = {{1, 0.5}, {2, 1.0}, {3, 1.4}};
  TableChoices b;
  b.options = {{1, 0.8}, {2, 1.0}, {3, 1.1}};
  TableChoices c;
  c.options = {{1, 0.9}, {2, 1.0}};
  // Budget 6: best is a=3 (1.4) + b=1 (0.8)... enumerate: candidates
  // a3b1c2=1.4+0.8+1.0=3.2; a3b2c1=1.4+1.0+0.9=3.3; a2b2c2=1.0+1.0+1.0=3.0.
  const auto solution = SolveMaxPerformance({a, b, c}, 6);
  ASSERT_EQ(solution.size(), 3u);
  EXPECT_EQ(solution[0], 3u);
  EXPECT_EQ(solution[1], 2u);
  EXPECT_EQ(solution[2], 1u);
}

// --- LayoutMasks ---

TEST(LayoutMasksTest, ProducesContiguousNonOverlappingMasks) {
  const auto layout = LayoutMasks({3, 1, 4}, 20);
  ASSERT_TRUE(layout.has_value());
  const auto& masks = *layout;
  ASSERT_EQ(masks.size(), 3u);
  EXPECT_EQ(masks[0], MakeWayMask(0, 3));
  EXPECT_EQ(masks[1], MakeWayMask(3, 1));
  EXPECT_EQ(masks[2], MakeWayMask(4, 4));
  // Pairwise disjoint.
  EXPECT_EQ(masks[0] & masks[1], 0u);
  EXPECT_EQ(masks[0] & masks[2], 0u);
  EXPECT_EQ(masks[1] & masks[2], 0u);
}

TEST(LayoutMasksTest, AllMasksContiguous) {
  for (const auto& layout : {LayoutMasks({1, 1, 1}, 20), LayoutMasks({5, 10, 5}, 20)}) {
    ASSERT_TRUE(layout.has_value());
    for (uint32_t m : *layout) {
      EXPECT_TRUE(IsContiguousMask(m));
    }
  }
}

TEST(LayoutMasksTest, ExactFitUsesAllWays) {
  const auto masks = LayoutMasks({10, 10}, 20);
  ASSERT_TRUE(masks.has_value());
  EXPECT_EQ((*masks)[0] | (*masks)[1], 0xfffffu);
}

TEST(LayoutMasksTest, EmptyInput) {
  const auto masks = LayoutMasks({}, 20);
  ASSERT_TRUE(masks.has_value());
  EXPECT_TRUE(masks->empty());
}

TEST(LayoutMasksTest, RejectsOversubscription) {
  // A request that does not fit is refused, not fatal: the daemon must
  // survive a bad allocation request.
  EXPECT_FALSE(LayoutMasks({15, 10}, 20).has_value());
}

TEST(LayoutMasksTest, RejectsZeroWays) {
  EXPECT_FALSE(LayoutMasks({3, 0}, 20).has_value());
}

}  // namespace
}  // namespace dcat
