#include "src/core/dcat_controller.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/policies/registry.h"
#include "src/pqos/mask.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

// Canonical single-tenant fixture: tenant 1 on core 0, baseline 3 ways on a
// 20-way socket. The fake lets every test script the exact counter story.
class DcatControllerTest : public ::testing::Test {
 protected:
  DcatControllerTest() : controller_(&pqos_, &pqos_, DcatConfig{}) {}

  void AddTenant(TenantId id, uint16_t core, uint32_t baseline = 3) {
    controller_.AddTenant(
        TenantSpec{.id = id, .name = "t" + std::to_string(id), .cores = {core},
                   .baseline_ways = baseline});
  }

  // MLR-ish signature: memory heavy, misses, IPC supplied per step.
  void FeedMlr(uint16_t core, double ipc, double miss_rate = 0.5) {
    pqos_.Feed(core, ipc, /*mem_per_ins=*/0.33, /*llc_per_ki=*/300, miss_rate);
  }

  FakePqos pqos_;
  DcatController controller_;
};

TEST_F(DcatControllerTest, IdleTenantBecomesDonorAtMinimum) {
  AddTenant(1, 0);
  controller_.Tick();  // no counters advanced: idle
  controller_.Tick();
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kDonor);
  EXPECT_EQ(controller_.TenantWays(1), 1u);
}

TEST_F(DcatControllerTest, WorkloadStartTriggersReclaimToBaseline) {
  AddTenant(1, 0);
  controller_.Tick();  // idle
  FeedMlr(0, 0.05);
  controller_.Tick();  // phase change: idle -> active
  EXPECT_EQ(controller_.TenantWays(1), 3u);  // contracted ways restored
}

TEST_F(DcatControllerTest, BaselineMeasuredOnFirstCleanInterval) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();  // reclaim to baseline
  FeedMlr(0, 0.05);
  controller_.Tick();  // measures baseline at 3 ways
  EXPECT_NEAR(controller_.Snapshot(1).norm_ipc, 1.0, 1e-6);
  EXPECT_TRUE(controller_.Snapshot(1).table.Has(3));
}

TEST_F(DcatControllerTest, CacheHungryWorkloadGrowsOneWayPerInterval) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();  // reclaim
  double ipc = 0.05;
  FeedMlr(0, ipc);
  controller_.Tick();  // baseline, becomes Unknown, grows to 4
  EXPECT_EQ(controller_.TenantWays(1), 4u);
  for (uint32_t expect_ways = 5; expect_ways <= 8; ++expect_ways) {
    ipc *= 1.3;  // healthy improvement each step
    FeedMlr(0, ipc);
    controller_.Tick();
    EXPECT_EQ(controller_.TenantWays(1), expect_ways);
  }
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kReceiver);
}

TEST_F(DcatControllerTest, ReceiverStopsWhenImprovementFades) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.05);
  controller_.Tick();  // baseline @3, -> 4 ways
  FeedMlr(0, 0.10);
  controller_.Tick();  // +100%: Receiver, -> 5 ways
  FeedMlr(0, 0.101);
  controller_.Tick();  // +1%: stop
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kKeeper);
  const uint32_t settled = controller_.TenantWays(1);
  EXPECT_EQ(settled, 5u);
  // And it must stay settled: the table blocks re-exploration.
  for (int i = 0; i < 5; ++i) {
    FeedMlr(0, 0.101);
    controller_.Tick();
    EXPECT_EQ(controller_.TenantWays(1), settled) << "oscillation at tick " << i;
    EXPECT_EQ(controller_.Snapshot(1).category, Category::kKeeper);
  }
}

TEST_F(DcatControllerTest, ReceiverStopsWhenMissRateDropsAndKeeps) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.05);
  controller_.Tick();  // -> 4
  FeedMlr(0, 0.10);
  controller_.Tick();  // Receiver -> 5
  // Working set now fits: misses vanish (but stay above the donor-shrink
  // watermark so the allocation holds).
  FeedMlr(0, 0.12, /*miss_rate=*/0.02);
  controller_.Tick();
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kKeeper);
  EXPECT_EQ(controller_.TenantWays(1), 5u);
}

TEST_F(DcatControllerTest, StreamingDetectedAtThreeTimesBaseline) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();
  // Constant IPC regardless of size: cyclic access pattern.
  for (int i = 0; i < 8; ++i) {
    FeedMlr(0, 0.05, /*miss_rate=*/0.9);
    controller_.Tick();
    if (controller_.Snapshot(1).category == Category::kStreaming) {
      break;
    }
    EXPECT_LE(controller_.TenantWays(1), 9u);  // 3x baseline cap while Unknown
  }
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kStreaming);
  EXPECT_EQ(controller_.TenantWays(1), 1u);  // special donor: minimum ways
}

TEST_F(DcatControllerTest, StreamingStaysUntilPhaseChange) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();
  for (int i = 0; i < 10; ++i) {
    FeedMlr(0, 0.05, 0.9);
    controller_.Tick();
  }
  ASSERT_EQ(controller_.Snapshot(1).category, Category::kStreaming);
  // Different instruction mix -> phase change -> reclaim.
  pqos_.Feed(0, 0.5, /*mem_per_ins=*/0.10, /*llc_per_ki=*/50, 0.2);
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 3u);
  EXPECT_NE(controller_.Snapshot(1).category, Category::kStreaming);
}

TEST_F(DcatControllerTest, PhaseChangeReclaimsBaseline) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.10);
  controller_.Tick();
  FeedMlr(0, 0.15);
  controller_.Tick();
  ASSERT_GT(controller_.TenantWays(1), 3u);
  // New phase: 3x the memory intensity.
  pqos_.Feed(0, 0.05, /*mem_per_ins=*/0.9, /*llc_per_ki=*/800, 0.6);
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 3u);
}

TEST_F(DcatControllerTest, PerformanceTableFastPathOnPhaseRecurrence) {
  AddTenant(1, 0);
  // Learn phase A: grows to 5 then saturates.
  FeedMlr(0, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.05);
  controller_.Tick();  // ->4
  FeedMlr(0, 0.10);
  controller_.Tick();  // ->5
  FeedMlr(0, 0.101);
  controller_.Tick();  // Keeper @5
  ASSERT_EQ(controller_.TenantWays(1), 5u);
  // Interlude: idle (workload stops).
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 1u);
  // Phase A returns: dCat must jump straight to the preferred size, not
  // re-climb from baseline (Fig. 12). Preferred is 4, not the 5 the run
  // settled at: the 5th way bought <5% and the table remembers that.
  FeedMlr(0, 0.05);
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 4u);
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kKeeper);
}

TEST_F(DcatControllerTest, LowLlcUsageKeeperBecomesIdleDonor) {
  AddTenant(1, 0);
  // Compute-heavy, almost no LLC traffic: lookbusy.
  pqos_.Feed(0, 3.5, /*mem_per_ins=*/0.01, /*llc_per_ki=*/0.05, 0.0);
  controller_.Tick();
  pqos_.Feed(0, 3.5, 0.01, 0.05, 0.0);
  controller_.Tick();
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kDonor);
  EXPECT_EQ(controller_.TenantWays(1), 1u);
}

TEST_F(DcatControllerTest, SatisfiedKeeperDonatesGradually) {
  AddTenant(1, 0, /*baseline=*/6);
  // Active, LLC-using, but zero miss rate: more cache than needed.
  pqos_.Feed(0, 1.0, 0.33, /*llc_per_ki=*/100, /*miss_rate=*/0.0);
  controller_.Tick();  // reclaim to 6
  ASSERT_EQ(controller_.TenantWays(1), 6u);
  pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
  controller_.Tick();  // baseline measured; Keeper -> Donor (gradual)
  pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
  controller_.Tick();
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kDonor);
  EXPECT_LT(controller_.TenantWays(1), 6u);
  // One way per interval, not a cliff.
  const uint32_t after_first_shrink = controller_.TenantWays(1);
  pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), after_first_shrink - 1);
}

TEST_F(DcatControllerTest, GradualDonorStopsWhenMissesReturn) {
  AddTenant(1, 0, 6);
  pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
  controller_.Tick();
  pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
  controller_.Tick();
  pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
  controller_.Tick();  // shrinking...
  const uint32_t shrunk = controller_.TenantWays(1);
  ASSERT_LT(shrunk, 6u);
  // Misses become non-trivial: donation stops, size holds.
  pqos_.Feed(0, 0.9, 0.33, 100, /*miss_rate=*/0.10);
  controller_.Tick();
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kKeeper);
  pqos_.Feed(0, 0.9, 0.33, 100, 0.10);
  controller_.Tick();
  EXPECT_GE(controller_.TenantWays(1), shrunk - 1);
}

// --- multi-tenant allocation ---

TEST_F(DcatControllerTest, DonatedWaysFlowToTheReceiver) {
  AddTenant(1, 0, 3);  // cache-hungry
  AddTenant(2, 1, 3);  // lookbusy
  auto feed_both = [this](double mlr_ipc) {
    FeedMlr(0, mlr_ipc);
    pqos_.Feed(1, 3.5, 0.01, 0.05, 0.0);
  };
  feed_both(0.05);
  controller_.Tick();
  double ipc = 0.05;
  for (int i = 0; i < 12; ++i) {
    ipc *= 1.2;
    feed_both(ipc);
    controller_.Tick();
  }
  EXPECT_EQ(controller_.TenantWays(2), 1u);
  EXPECT_GE(controller_.TenantWays(1), 10u);  // grew far beyond baseline
}

TEST_F(DcatControllerTest, ReclaimShrinksOverBaselineTenantsWhenPoolIsDry) {
  FakePqos pqos(/*num_ways=*/10, 16, 18);
  DcatController controller(&pqos, &pqos, DcatConfig{});
  controller.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 3});
  controller.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {1}, .baseline_ways = 3});
  // Tenant 1 grows to consume nearly everything; tenant 2 idles.
  pqos.Feed(0, 0.05, 0.33, 300, 0.5);
  controller.Tick();
  double ipc = 0.05;
  for (int i = 0; i < 8; ++i) {
    ipc *= 1.3;
    pqos.Feed(0, ipc, 0.33, 300, 0.5);
    controller.Tick();
  }
  ASSERT_GT(controller.TenantWays(1), 6u);
  ASSERT_EQ(controller.TenantWays(2), 1u);
  // Tenant 2 wakes up: its baseline must be restored immediately even
  // though the pool is empty — ways come out of tenant 1's surplus.
  pqos.Feed(0, ipc, 0.33, 300, 0.5);
  pqos.Feed(1, 0.05, 0.33, 300, 0.5);
  controller.Tick();
  EXPECT_EQ(controller.TenantWays(2), 3u);
  EXPECT_LE(controller.TenantWays(1) + controller.TenantWays(2), 10u);
}

TEST_F(DcatControllerTest, MasksAreAlwaysContiguousAndDisjoint) {
  AddTenant(1, 0, 3);
  AddTenant(2, 1, 3);
  AddTenant(3, 2, 3);
  Rng rng(42);
  for (int tick = 0; tick < 40; ++tick) {
    for (uint16_t core = 0; core < 3; ++core) {
      if (rng.Chance(0.8)) {
        pqos_.Feed(core, 0.05 + rng.NextDouble(), 0.1 + rng.NextDouble() * 0.5,
                   rng.NextDouble() * 400, rng.NextDouble());
      }
    }
    controller_.Tick();
    uint32_t combined = 0;
    uint32_t total = 0;
    for (TenantId id : {1u, 2u, 3u}) {
      // Masks live in COS 1..3 (tenant order).
      const uint32_t mask = pqos_.GetCosMask(static_cast<uint8_t>(id));
      EXPECT_TRUE(IsContiguousMask(mask)) << "tick " << tick;
      EXPECT_EQ(combined & mask, 0u) << "overlap at tick " << tick;
      combined |= mask;
      total += static_cast<uint32_t>(MaskWays(mask));
      EXPECT_GE(controller_.TenantWays(id), 1u);
    }
    EXPECT_LE(total, 20u);
  }
}

TEST_F(DcatControllerTest, UnknownHasPriorityOverReceiverForTheLastWay) {
  FakePqos pqos(/*num_ways=*/8, 16, 18);
  DcatConfig config;
  DcatController controller(&pqos, &pqos, config);
  controller.AddTenant(TenantSpec{.id = 1, .name = "recv", .cores = {0}, .baseline_ways = 2});
  controller.AddTenant(TenantSpec{.id = 2, .name = "unk", .cores = {1}, .baseline_ways = 2});
  // Both start; tenant 1 shows improvement (Receiver), tenant 2 does not
  // (stays Unknown). Pool shrinks to a single spare way; the Unknown must
  // get it (the paper gives Unknowns priority to unmask streaming sooner).
  pqos.Feed(0, 0.05, 0.33, 300, 0.5);
  pqos.Feed(1, 0.05, 0.33, 300, 0.9);
  controller.Tick();  // both reclaim to 2+2, pool 4
  pqos.Feed(0, 0.05, 0.33, 300, 0.5);
  pqos.Feed(1, 0.05, 0.33, 300, 0.9);
  controller.Tick();  // baselines; both Unknown; each +1 (3+3), pool 2
  pqos.Feed(0, 0.08, 0.33, 300, 0.5);   // +60%: Receiver
  pqos.Feed(1, 0.05, 0.33, 300, 0.9);   // flat: Unknown
  controller.Tick();  // Unknown first: t2 -> 4, then Receiver: t1 -> 4, pool 0
  ASSERT_EQ(controller.TenantWays(1) + controller.TenantWays(2), 8u);
  pqos.Feed(0, 0.12, 0.33, 300, 0.5);  // still improving, wants more
  pqos.Feed(1, 0.05, 0.33, 300, 0.9);
  controller.Tick();
  // No free ways: neither can grow, but the Unknown was never starved
  // behind the Receiver.
  EXPECT_EQ(controller.Snapshot(1).category, Category::kReceiver);
}

TEST_F(DcatControllerTest, TenantCountLimitedByCos) {
  FakePqos pqos(20, /*num_cos=*/3, 18);
  DcatController controller(&pqos, &pqos, DcatConfig{});
  controller.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 1});
  controller.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {1}, .baseline_ways = 1});
  EXPECT_EQ(
      controller.AddTenant(TenantSpec{.id = 3, .name = "c", .cores = {2}, .baseline_ways = 1}),
      AdmitStatus::kTooManyTenants);
  EXPECT_FALSE(controller.HasTenant(3));
}

TEST_F(DcatControllerTest, BaselineOversubscriptionRejected) {
  FakePqos pqos(/*num_ways=*/4, 16, 18);
  DcatController controller(&pqos, &pqos, DcatConfig{});
  controller.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 3});
  EXPECT_EQ(
      controller.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {1}, .baseline_ways = 2}),
      AdmitStatus::kOversubscribed);
  EXPECT_FALSE(controller.HasTenant(2));
}

TEST_F(DcatControllerTest, MultiCoreTenantAggregatesCounters) {
  controller_.AddTenant(
      TenantSpec{.id = 1, .name = "vm", .cores = {0, 1}, .baseline_ways = 3});
  // Core 0 runs the workload; core 1 idles (0 instructions). The VM-level
  // metrics must still look like the active core's.
  FeedMlr(0, 0.05);
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 3u);  // active, reclaimed baseline
  FeedMlr(0, 0.05);
  controller_.Tick();
  EXPECT_NEAR(controller_.Snapshot(1).norm_ipc, 1.0, 1e-6);
}

TEST_F(DcatControllerTest, DecisionLogRecordsEveryTenantEveryTick) {
  AddTenant(1, 0);
  AddTenant(2, 1);
  controller_.Tick();
  controller_.Tick();
  ASSERT_EQ(controller_.log().size(), 4u);
  EXPECT_EQ(controller_.log()[0].tick, 1u);
  EXPECT_EQ(controller_.log()[3].tick, 2u);
  EXPECT_EQ(controller_.log()[3].tenant, 2u);
}

TEST_F(DcatControllerTest, LoggingCanBeDisabled) {
  AddTenant(1, 0);
  controller_.set_logging(false);
  controller_.Tick();
  EXPECT_TRUE(controller_.log().empty());
}

TEST_F(DcatControllerTest, LogCsvHasHeaderAndOneRowPerDecision) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.05);
  controller_.Tick();
  const std::string csv = controller_.LogToCsv();
  EXPECT_NE(csv.find("tick,tenant,category,ways,"), std::string::npos);
  EXPECT_NE(csv.find("Reclaim"), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 3);  // header + 2
}

// --- snapshot API ---

TEST_F(DcatControllerTest, SnapshotMatchesLegacyGetters) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();  // reclaim to baseline
  FeedMlr(0, 0.05);
  controller_.Tick();  // baseline measured
  FeedMlr(0, 0.10);
  controller_.Tick();  // growing

  const TenantSnapshot snap = controller_.Snapshot(1);
  EXPECT_EQ(snap.id, 1u);
  EXPECT_EQ(snap.ways, controller_.TenantWays(1));
}

TEST_F(DcatControllerTest, SnapshotBeforeFirstPhaseHasEmptyTable) {
  AddTenant(1, 0);
  const TenantSnapshot snap = controller_.Snapshot(1);
  EXPECT_FALSE(snap.has_phase);
  EXPECT_FALSE(snap.baseline_valid);
  EXPECT_EQ(snap.table.size(), 0u);
  EXPECT_EQ(snap.norm_ipc, 0.0);
}

TEST_F(DcatControllerTest, ControllerSnapshotAccountsForEveryWay) {
  AddTenant(1, 0, 3);
  AddTenant(2, 1, 3);
  FeedMlr(0, 0.05);
  controller_.Tick();
  const ControllerSnapshot snap = controller_.Snapshot();
  EXPECT_EQ(snap.tick, 1u);
  EXPECT_EQ(snap.total_ways, 20u);
  ASSERT_EQ(snap.tenants.size(), 2u);
  uint32_t sum = 0;
  for (const TenantSnapshot& t : snap.tenants) {
    sum += t.ways;
  }
  EXPECT_EQ(snap.allocated_ways, sum);
  EXPECT_EQ(snap.pool_ways, snap.total_ways - sum);
}

// --- event stream ---

// Buffers every event so tests can assert on exact decision sequences.
struct CapturingSink : public EventSink {
  void OnTick(const TickEvent& e) override { ticks.push_back(e); }
  void OnPhaseChange(const PhaseChangeEvent& e) override { phase_changes.push_back(e); }
  void OnCategoryChange(const CategoryChangeEvent& e) override { category_changes.push_back(e); }
  void OnAllocation(const AllocationEvent& e) override { allocations.push_back(e); }

  std::vector<TickEvent> ticks;
  std::vector<PhaseChangeEvent> phase_changes;
  std::vector<CategoryChangeEvent> category_changes;
  std::vector<AllocationEvent> allocations;
};

TEST_F(DcatControllerTest, PhaseChangeEmitsEventWithReclaimReason) {
  CapturingSink sink;
  controller_.AddEventSink(&sink);
  AddTenant(1, 0);
  ASSERT_EQ(sink.allocations.size(), 1u);  // admission
  EXPECT_EQ(sink.allocations[0].reason, AllocationReason::kAdmit);

  FeedMlr(0, 0.05);
  controller_.Tick();  // idle -> active phase change, reclaim to baseline
  ASSERT_EQ(sink.phase_changes.size(), 1u);
  EXPECT_EQ(sink.phase_changes[0].tenant, 1u);
  EXPECT_FALSE(sink.phase_changes[0].known_phase);

  const auto reclaim = std::find_if(
      sink.allocations.begin(), sink.allocations.end(),
      [](const AllocationEvent& e) { return e.reason == AllocationReason::kReclaim; });
  ASSERT_NE(reclaim, sink.allocations.end());
  EXPECT_EQ(reclaim->to_ways, 3u);

  // The category moved Donor -> Reclaim during the same tick.
  ASSERT_FALSE(sink.category_changes.empty());
  EXPECT_EQ(sink.category_changes[0].to, Category::kReclaim);
}

TEST_F(DcatControllerTest, GrowthEmitsGrowFromPoolEvents) {
  CapturingSink sink;
  controller_.AddEventSink(&sink);
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.05);
  controller_.Tick();  // baseline -> Unknown, grows 3 -> 4
  const auto grow = std::find_if(
      sink.allocations.begin(), sink.allocations.end(),
      [](const AllocationEvent& e) { return e.reason == AllocationReason::kGrowFromPool; });
  ASSERT_NE(grow, sink.allocations.end());
  EXPECT_EQ(grow->from_ways, 3u);
  EXPECT_EQ(grow->to_ways, 4u);
}

TEST_F(DcatControllerTest, EventSinkSeesTicksEvenWhenLoggingDisabled) {
  CapturingSink sink;
  controller_.AddEventSink(&sink);
  controller_.set_logging(false);
  AddTenant(1, 0);
  controller_.Tick();
  EXPECT_TRUE(controller_.log().empty());
  EXPECT_EQ(sink.ticks.size(), 1u);
}

TEST_F(DcatControllerTest, MetricsCountTicksAndPhaseChanges) {
  AddTenant(1, 0);
  FeedMlr(0, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.05);
  controller_.Tick();
  EXPECT_EQ(controller_.metrics().counter("controller.ticks").value(), 2u);
  EXPECT_EQ(controller_.metrics().counter("controller.phase_changes").value(), 1u);
  EXPECT_EQ(controller_.metrics().counter("tenant.1.phase_changes").value(), 1u);
  EXPECT_GE(controller_.metrics().counter("controller.reclaims").value(), 1u);
  EXPECT_EQ(controller_.metrics().histogram("controller.allocate_latency_us", {}).count(), 2u);
}

TEST_F(DcatControllerTest, DistinctPhasesKeepDistinctTables) {
  // Phase A (mpi 0.33) learns a preferred size; phase B (mpi 0.9) learns a
  // different one; returning to A must restore A's table, not B's.
  AddTenant(1, 0, /*baseline=*/3);
  auto feed_phase_a = [this](double ipc) { pqos_.Feed(0, ipc, 0.33, 300, 0.5); };
  auto feed_phase_b = [this](double ipc) { pqos_.Feed(0, ipc, 0.90, 800, 0.5); };

  // Phase A: grows to 5 then saturates.
  feed_phase_a(0.05);
  controller_.Tick();
  feed_phase_a(0.05);
  controller_.Tick();  // -> 4
  feed_phase_a(0.10);
  controller_.Tick();  // -> 5
  feed_phase_a(0.101);
  controller_.Tick();  // Keeper @5
  ASSERT_EQ(controller_.TenantWays(1), 5u);

  // Phase B: saturates immediately (no improvement at 4).
  feed_phase_b(0.02);
  controller_.Tick();  // phase change -> reclaim 3
  feed_phase_b(0.02);
  controller_.Tick();  // baseline -> Unknown -> 4
  feed_phase_b(0.0201);
  controller_.Tick();  // flat step
  const uint32_t phase_b_ways = controller_.TenantWays(1);

  // Back to phase A: the fast path must use A's table (preferred 4, since
  // the 5th way bought <5%), not phase B's.
  feed_phase_a(0.05);
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 4u);
  EXPECT_NE(controller_.TenantWays(1), phase_b_ways + 100);  // sanity use
  EXPECT_TRUE(controller_.Snapshot(1).table.Has(5));  // A's exploration preserved
}

TEST_F(DcatControllerTest, NormalizedIpcIsZeroBeforeBaseline) {
  AddTenant(1, 0);
  EXPECT_EQ(controller_.Snapshot(1).norm_ipc, 0.0);
  FeedMlr(0, 0.05);
  controller_.Tick();  // reclaim tick: baseline not yet measured
  EXPECT_EQ(controller_.Snapshot(1).norm_ipc, 0.0);
}

TEST_F(DcatControllerTest, TwoTenantsOnSamePhaseSignatureStayIndependent) {
  AddTenant(1, 0, 3);
  AddTenant(2, 1, 3);
  // Identical signatures, very different curves.
  FeedMlr(0, 0.05);
  FeedMlr(1, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.05);
  FeedMlr(1, 0.05);
  controller_.Tick();
  FeedMlr(0, 0.20);   // strong improvement: Receiver
  FeedMlr(1, 0.0501);  // flat
  controller_.Tick();
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kReceiver);
  EXPECT_NE(controller_.Snapshot(2).category, Category::kReceiver);
  EXPECT_NE(controller_.Snapshot(1).table.ToString(), controller_.Snapshot(2).table.ToString());
}

// --- tenant removal / COS recycling ---

TEST_F(DcatControllerTest, RemoveTenantReleasesWaysToSurvivors) {
  AddTenant(1, 0, 3);
  AddTenant(2, 1, 3);
  // Tenant 2 is cache-hungry; tenant 1 holds its baseline as a Keeper.
  double ipc = 0.05;
  pqos_.Feed(0, 1.0, 0.33, 100, 0.04);
  FeedMlr(1, ipc);
  controller_.Tick();
  for (int i = 0; i < 10; ++i) {
    ipc *= 1.2;
    pqos_.Feed(0, 1.0, 0.33, 100, 0.04);
    FeedMlr(1, ipc);
    controller_.Tick();
  }
  const uint32_t before = controller_.TenantWays(2);
  controller_.RemoveTenant(1);
  EXPECT_FALSE(controller_.HasTenant(1));
  EXPECT_EQ(controller_.num_tenants(), 1u);
  // The freed ways are pool capacity the survivor keeps growing into.
  ipc *= 1.2;
  FeedMlr(1, ipc);
  controller_.Tick();
  ipc *= 1.2;
  FeedMlr(1, ipc);
  controller_.Tick();
  EXPECT_GT(controller_.TenantWays(2), before);
}

TEST_F(DcatControllerTest, RemoveUnknownTenantIsIgnored) {
  AddTenant(1, 0);
  controller_.RemoveTenant(99);
  EXPECT_EQ(controller_.num_tenants(), 1u);
}

TEST_F(DcatControllerTest, RemovedTenantsCoresReturnToCosZero) {
  AddTenant(1, 0);
  ASSERT_NE(pqos_.GetCoreAssociation(0), 0);
  controller_.RemoveTenant(1);
  EXPECT_EQ(pqos_.GetCoreAssociation(0), 0);
}

TEST_F(DcatControllerTest, CosIsRecycledAfterRemoval) {
  FakePqos pqos(20, /*num_cos=*/3, 18);  // room for exactly two tenants
  DcatController controller(&pqos, &pqos, DcatConfig{});
  controller.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 1});
  controller.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {1}, .baseline_ways = 1});
  controller.RemoveTenant(1);
  // Without recycling this would die on COS exhaustion.
  controller.AddTenant(TenantSpec{.id = 3, .name = "c", .cores = {2}, .baseline_ways = 1});
  EXPECT_TRUE(controller.HasTenant(3));
  EXPECT_EQ(controller.num_tenants(), 2u);
}

// --- the baseline performance guarantee ---

TEST_F(DcatControllerTest, HarmfulDonationIsReclaimedAndNotRepeated) {
  // A tenant with a zero miss rate donates a way; conflict misses appear
  // only after the shrink (its IPC collapses). The guarantee must restore
  // the contracted allocation, and the table must veto a repeat donation.
  AddTenant(1, 0, /*baseline=*/4);
  pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
  controller_.Tick();  // reclaim to 4
  pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
  controller_.Tick();  // baseline @4; satisfied Keeper -> Donor
  ASSERT_EQ(controller_.TenantWays(1), 3u);  // exploratory shrink
  pqos_.Feed(0, 0.8, 0.33, 100, 0.0);  // -20% IPC at 3 ways
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 4u) << "guarantee must restore the baseline";
  // From now on the table knows 3 ways costs 20%: no more donations.
  for (int i = 0; i < 6; ++i) {
    pqos_.Feed(0, 1.0, 0.33, 100, 0.0);
    controller_.Tick();
    EXPECT_EQ(controller_.TenantWays(1), 4u) << "repeat donation at tick " << i;
  }
}

TEST_F(DcatControllerTest, LowLlcTenantKeepsWaysWhenMinimumAllocationHurts) {
  // Low LLC reference rate normally means "Donor, give everything back" —
  // but a tenant whose few LLC accesses are performance-critical must be
  // restored once the minimum allocation shows real damage.
  AddTenant(1, 0, /*baseline=*/4);
  pqos_.Feed(0, 1.0, 0.33, /*llc_per_ki=*/0.5, 0.0);
  controller_.Tick();  // reclaim
  pqos_.Feed(0, 1.0, 0.33, 0.5, 0.0);
  controller_.Tick();  // baseline; low-LLC Keeper -> Donor at minimum
  ASSERT_EQ(controller_.TenantWays(1), 1u);
  pqos_.Feed(0, 0.8, 0.33, 0.5, 0.0);  // hurts at 1 way
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 4u);
  // The table's entry for the minimum allocation now vetoes re-donation.
  pqos_.Feed(0, 1.0, 0.33, 0.5, 0.0);
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 4u);
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kKeeper);
}

TEST_F(DcatControllerTest, TrulyIdleTenantStillDonatesEverything) {
  AddTenant(1, 0, 4);
  pqos_.Feed(0, 1.0, 0.33, 300, 0.5);
  controller_.Tick();
  controller_.Tick();  // no counters advanced: idle
  controller_.Tick();
  EXPECT_EQ(controller_.TenantWays(1), 1u);
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kDonor);
}

TEST_F(DcatControllerTest, PaperFaithfulModeStopsOnFirstSubThresholdStep) {
  // greedy_exploration=false restores the paper's binary receiver test: a
  // +4% step (below the 5% threshold) ends the growth at once.
  DcatConfig config;
  config.greedy_exploration = false;
  DcatController controller(&pqos_, &pqos_, config);
  controller.AddTenant(TenantSpec{.id = 1, .name = "t", .cores = {0}, .baseline_ways = 3});
  double ipc = 0.5;
  pqos_.Feed(0, ipc, 0.33, 300, 0.5);
  controller.Tick();  // reclaim
  pqos_.Feed(0, ipc, 0.33, 300, 0.5);
  controller.Tick();  // baseline, grow to 4
  ASSERT_EQ(controller.TenantWays(1), 4u);
  ipc *= 1.04;
  pqos_.Feed(0, ipc, 0.33, 300, 0.5);
  controller.Tick();  // +4% at 4 ways: below threshold -> Keeper
  EXPECT_EQ(controller.Snapshot(1).category, Category::kKeeper);
  const uint32_t parked = controller.TenantWays(1);
  // Steady state from here on (constant IPC at constant ways): no growth.
  for (int i = 0; i < 5; ++i) {
    pqos_.Feed(0, ipc, 0.33, 300, 0.5);
    controller.Tick();
    EXPECT_EQ(controller.TenantWays(1), parked);
  }
}

TEST_F(DcatControllerTest, GreedyExplorationStopsBelowTheGainFloor) {
  // Default mode: steps in [floor, thr) keep growing; a step below the 2%
  // floor finally parks the workload as a Keeper.
  AddTenant(1, 0, /*baseline=*/3);
  double ipc = 0.5;
  FeedMlr(0, ipc);
  controller_.Tick();
  FeedMlr(0, ipc);
  controller_.Tick();  // baseline @3 -> 4 ways
  for (int i = 0; i < 4; ++i) {
    ipc *= 1.03;  // between floor and threshold: keeps exploring
    FeedMlr(0, ipc);
    controller_.Tick();
  }
  const uint32_t grown = controller_.TenantWays(1);
  EXPECT_GT(grown, 5u);
  ipc *= 1.005;  // below the floor: stop
  FeedMlr(0, ipc);
  controller_.Tick();
  EXPECT_EQ(controller_.Snapshot(1).category, Category::kKeeper);
  EXPECT_EQ(controller_.TenantWays(1), grown);
}

TEST_F(DcatControllerTest, CumulativelyImprovingWorkloadIsNeverStreaming) {
  // +4% IPC per extra way: every single step is below the 5% Receiver
  // threshold, but the cumulative gain is real — the streaming rule must
  // not fire at 3x baseline (this is the Redis-like profile of Table 4).
  AddTenant(1, 0, /*baseline=*/2);
  double ipc = 0.5;
  FeedMlr(0, ipc);
  controller_.Tick();  // reclaim to 2
  for (int i = 0; i < 10; ++i) {
    FeedMlr(0, ipc);
    controller_.Tick();
    EXPECT_NE(controller_.Snapshot(1).category, Category::kStreaming) << "tick " << i;
    ipc *= 1.04;
  }
  EXPECT_GT(controller_.TenantWays(1), 6u) << "should grow past 3x baseline";
}

TEST_F(DcatControllerTest, PoolExhaustionAloneDoesNotCondemnARisingTable) {
  // Two tenants: one flat (streaming-like), one improving. When the pool
  // dries up mid-climb, only the flat one may be condemned.
  FakePqos pqos(/*num_ways=*/10, 16, 18);
  DcatController controller(&pqos, &pqos, DcatConfig{});
  controller.AddTenant(TenantSpec{.id = 1, .name = "good", .cores = {0}, .baseline_ways = 2});
  controller.AddTenant(TenantSpec{.id = 2, .name = "flat", .cores = {1}, .baseline_ways = 2});
  double ipc = 0.5;
  pqos.Feed(0, ipc, 0.33, 300, 0.5);
  pqos.Feed(1, 0.5, 0.33, 300, 0.9);
  controller.Tick();
  for (int i = 0; i < 8; ++i) {
    ipc *= 1.04;  // below per-step threshold but cumulative
    pqos.Feed(0, ipc, 0.33, 300, 0.5);
    pqos.Feed(1, 0.5, 0.33, 300, 0.9);
    controller.Tick();
  }
  EXPECT_EQ(controller.Snapshot(2).category, Category::kStreaming);
  EXPECT_EQ(controller.TenantWays(2), 1u);
  EXPECT_NE(controller.Snapshot(1).category, Category::kStreaming);
  EXPECT_GT(controller.TenantWays(1), 2u);
}

// --- max-performance policy ---

TEST(DcatMaxPerfTest, RebalancesTowardTheSteeperTableWhenWaysShrink) {
  // The paper's §3.5 scenario: two receivers learn their tables while the
  // pool lasts; a third tenant wakes up and reclaims its baseline, and the
  // max-performance policy re-splits the remainder using the tables —
  // concentrating ways on the steeper curve.
  FakePqos pqos(/*num_ways=*/16, 16, 18);
  DcatConfig config;
  config.policy = "max-performance";
  DcatController controller(&pqos, &pqos, config);
  controller.AddTenant(TenantSpec{.id = 1, .name = "flat", .cores = {0}, .baseline_ways = 2});
  controller.AddTenant(TenantSpec{.id = 2, .name = "steep", .cores = {1}, .baseline_ways = 2});
  controller.AddTenant(TenantSpec{.id = 3, .name = "late", .cores = {2}, .baseline_ways = 4});

  // Tenant 3 idles; tenants 1 and 2 grow. 1 improves 6%/way, 2 improves
  // 40%/way.
  double ipc1 = 0.05;
  double ipc2 = 0.05;
  auto feed_active = [&] {
    pqos.Feed(0, ipc1, 0.33, 300, 0.5);
    pqos.Feed(1, ipc2, 0.33, 300, 0.5);
  };
  feed_active();
  controller.Tick();  // reclaim baselines
  for (int i = 0; i < 8; ++i) {
    ipc1 *= 1.06;
    ipc2 *= 1.40;
    feed_active();
    controller.Tick();
  }
  const uint32_t flat_before = controller.TenantWays(1);
  const uint32_t steep_before = controller.TenantWays(2);
  ASSERT_GT(flat_before + steep_before, 10u);  // they absorbed the pool

  // Tenant 3 wakes: baseline 4 must come out of the receivers, and the
  // DP should take it disproportionately from the flat curve.
  ipc1 *= 1.06;
  ipc2 *= 1.40;
  feed_active();
  pqos.Feed(2, 0.5, 0.33, 300, 0.5);
  controller.Tick();
  feed_active();
  pqos.Feed(2, 0.5, 0.33, 300, 0.5);
  controller.Tick();

  EXPECT_EQ(controller.TenantWays(3), 4u);
  EXPECT_GT(controller.TenantWays(2), controller.TenantWays(1));
  EXPECT_GE(controller.TenantWays(1), 2u);  // never below contracted baseline
  EXPECT_LE(controller.TenantWays(1) + controller.TenantWays(2) + controller.TenantWays(3),
            16u);
}

TEST(DcatMaxPerfTest, FairnessPolicySplitsEvenly) {
  FakePqos pqos(/*num_ways=*/12, 16, 18);
  DcatConfig config;
  config.policy = "max-fairness";
  DcatController controller(&pqos, &pqos, config);
  controller.AddTenant(TenantSpec{.id = 1, .name = "flat", .cores = {0}, .baseline_ways = 2});
  controller.AddTenant(TenantSpec{.id = 2, .name = "steep", .cores = {1}, .baseline_ways = 2});
  double ipc1 = 0.05;
  double ipc2 = 0.05;
  pqos.Feed(0, ipc1, 0.33, 300, 0.5);
  pqos.Feed(1, ipc2, 0.33, 300, 0.5);
  controller.Tick();
  for (int i = 0; i < 10; ++i) {
    ipc1 *= 1.06;
    ipc2 *= 1.40;
    pqos.Feed(0, ipc1, 0.33, 300, 0.5);
    pqos.Feed(1, ipc2, 0.33, 300, 0.5);
    controller.Tick();
  }
  // Under fairness the split ignores the magnitude of improvement.
  EXPECT_EQ(controller.TenantWays(1), controller.TenantWays(2));
}

TEST(DcatConfigTest, PolicyNames) {
  // The registry owns policy naming now; the paper's pair must stay
  // resolvable under both canonical and legacy spellings.
  EXPECT_TRUE(PolicyRegistry::Global().Known("max-fairness"));
  EXPECT_TRUE(PolicyRegistry::Global().Known("max-performance"));
  EXPECT_EQ(PolicyRegistry::CanonicalName("fair"), "max-fairness");
  EXPECT_EQ(PolicyRegistry::CanonicalName("maxperf"), "max-performance");
}

TEST(DcatCategoryTest, Names) {
  EXPECT_STREQ(CategoryName(Category::kReclaim), "Reclaim");
  EXPECT_STREQ(CategoryName(Category::kKeeper), "Keeper");
  EXPECT_STREQ(CategoryName(Category::kDonor), "Donor");
  EXPECT_STREQ(CategoryName(Category::kReceiver), "Receiver");
  EXPECT_STREQ(CategoryName(Category::kStreaming), "Streaming");
  EXPECT_STREQ(CategoryName(Category::kUnknown), "Unknown");
}

}  // namespace
}  // namespace dcat
