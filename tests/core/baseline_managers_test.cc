#include "src/core/baseline_managers.h"

#include <gtest/gtest.h>

#include "src/pqos/mask.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

TEST(SharedCacheManagerTest, AllCoresStayInCosZeroWithFullMask) {
  FakePqos pqos(20, 16, 18);
  SharedCacheManager manager(&pqos);
  manager.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0, 1}, .baseline_ways = 3});
  manager.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {2, 3}, .baseline_ways = 3});
  for (uint16_t core : {0, 1, 2, 3}) {
    EXPECT_EQ(pqos.GetCoreAssociation(core), 0);
  }
  EXPECT_EQ(pqos.GetCosMask(0), MakeWayMask(0, 20));
  EXPECT_EQ(manager.TenantWays(1), 20u);
  EXPECT_EQ(manager.TenantWays(2), 20u);
  manager.Tick();  // no-op, must not crash
  EXPECT_EQ(manager.name(), "shared");
}

TEST(StaticCatManagerTest, AssignsFixedContiguousSegments) {
  FakePqos pqos(20, 16, 18);
  StaticCatManager manager(&pqos);
  manager.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0, 1}, .baseline_ways = 6});
  manager.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {2}, .baseline_ways = 4});
  EXPECT_EQ(pqos.GetCosMask(1), MakeWayMask(0, 6));
  EXPECT_EQ(pqos.GetCosMask(2), MakeWayMask(6, 4));
  EXPECT_EQ(pqos.GetCoreAssociation(0), 1);
  EXPECT_EQ(pqos.GetCoreAssociation(1), 1);
  EXPECT_EQ(pqos.GetCoreAssociation(2), 2);
  EXPECT_EQ(manager.TenantWays(1), 6u);
  EXPECT_EQ(manager.TenantWays(2), 4u);
}

TEST(StaticCatManagerTest, TicksNeverChangeAllocations) {
  FakePqos pqos(20, 16, 18);
  StaticCatManager manager(&pqos);
  manager.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 5});
  const int calls = pqos.set_mask_calls();
  for (int i = 0; i < 10; ++i) {
    manager.Tick();
  }
  EXPECT_EQ(pqos.set_mask_calls(), calls);
  EXPECT_EQ(manager.TenantWays(1), 5u);
}

TEST(StaticCatManagerTest, UnknownTenantHasZeroWays) {
  FakePqos pqos(20, 16, 18);
  StaticCatManager manager(&pqos);
  EXPECT_EQ(manager.TenantWays(42), 0u);
}

TEST(StaticCatManagerTest, RemovedSegmentIsReusedFirstFit) {
  FakePqos pqos(/*num_ways=*/8, 16, 18);
  StaticCatManager manager(&pqos);
  manager.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 4});
  manager.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {1}, .baseline_ways = 4});
  // The LLC is fully allocated; without segment reuse this admission dies.
  manager.RemoveTenant(1);
  EXPECT_EQ(manager.TenantWays(1), 0u);
  manager.AddTenant(TenantSpec{.id = 3, .name = "c", .cores = {2}, .baseline_ways = 4});
  EXPECT_EQ(manager.TenantWays(3), 4u);
  EXPECT_EQ(pqos.GetCosMask(pqos.GetCoreAssociation(2)), MakeWayMask(0, 4));
}

TEST(StaticCatManagerTest, SmallerTenantFitsInLargerHole) {
  FakePqos pqos(/*num_ways=*/8, 16, 18);
  StaticCatManager manager(&pqos);
  manager.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 5});
  manager.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {1}, .baseline_ways = 3});
  manager.RemoveTenant(1);
  manager.AddTenant(TenantSpec{.id = 3, .name = "c", .cores = {2}, .baseline_ways = 2});
  EXPECT_EQ(manager.TenantWays(3), 2u);
}

TEST(StaticCatManagerTest, RemoveUnknownTenantIsIgnored) {
  FakePqos pqos(20, 16, 18);
  StaticCatManager manager(&pqos);
  manager.RemoveTenant(5);  // no crash
  EXPECT_EQ(manager.TenantWays(5), 0u);
}

TEST(SharedCacheManagerTest, RemoveTenantIsANoOp) {
  FakePqos pqos(20, 16, 18);
  SharedCacheManager manager(&pqos);
  manager.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 3});
  manager.RemoveTenant(1);
  EXPECT_EQ(manager.TenantWays(1), 20u);  // shared: everyone sees everything
}

TEST(StaticCatManagerTest, RejectsWayOversubscription) {
  FakePqos pqos(/*num_ways=*/8, 16, 18);
  StaticCatManager manager(&pqos);
  manager.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 6});
  EXPECT_EQ(
      manager.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {1}, .baseline_ways = 3}),
      AdmitStatus::kOversubscribed);
  EXPECT_EQ(manager.TenantWays(2), 0u);
}

TEST(StaticCatManagerTest, RejectsWhenOutOfCos) {
  FakePqos pqos(20, /*num_cos=*/2, 18);
  StaticCatManager manager(&pqos);
  manager.AddTenant(TenantSpec{.id = 1, .name = "a", .cores = {0}, .baseline_ways = 1});
  EXPECT_EQ(
      manager.AddTenant(TenantSpec{.id = 2, .name = "b", .cores = {1}, .baseline_ways = 1}),
      AdmitStatus::kNoFreeCos);
  EXPECT_EQ(manager.TenantWays(2), 0u);
}

}  // namespace
}  // namespace dcat
