#include "src/core/config_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/policies/registry.h"

namespace dcat {
namespace {

TEST(ConfigIoTest, EmptyTextYieldsDefaults) {
  const ConfigParseResult result = ParseDcatConfig("");
  ASSERT_TRUE(result.ok) << result.error;
  const DcatConfig defaults;
  EXPECT_DOUBLE_EQ(result.config.llc_miss_rate_thr, defaults.llc_miss_rate_thr);
  EXPECT_DOUBLE_EQ(result.config.ipc_improvement_thr, defaults.ipc_improvement_thr);
  EXPECT_EQ(result.config.policy, defaults.policy);
}

TEST(ConfigIoTest, ParsesAllKeys) {
  const ConfigParseResult result = ParseDcatConfig(
      "llc_ref_per_kilo_instruction_thr = 2.5\n"
      "llc_miss_rate_thr = 0.05\n"
      "ipc_improvement_thr = 0.08\n"
      "phase_change_thr = 0.2\n"
      "idle_mem_per_ins_epsilon = 0.002\n"
      "min_instructions_per_interval = 5000\n"
      "policy = max-performance\n"
      "streaming_multiplier = 4\n"
      "min_ways = 2\n"
      "donor_shrink_fraction = 1.0\n"
      "interval_seconds = 2.5\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.config.llc_ref_per_kilo_instruction_thr, 2.5);
  EXPECT_DOUBLE_EQ(result.config.llc_miss_rate_thr, 0.05);
  EXPECT_DOUBLE_EQ(result.config.ipc_improvement_thr, 0.08);
  EXPECT_DOUBLE_EQ(result.config.phase_change_thr, 0.2);
  EXPECT_DOUBLE_EQ(result.config.idle_mem_per_ins_epsilon, 0.002);
  EXPECT_EQ(result.config.min_instructions_per_interval, 5000u);
  EXPECT_EQ(result.config.policy, "max-performance");
  EXPECT_EQ(result.config.streaming_multiplier, 4u);
  EXPECT_EQ(result.config.min_ways, 2u);
  EXPECT_DOUBLE_EQ(result.config.donor_shrink_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.config.interval_seconds, 2.5);
}

TEST(ConfigIoTest, CommentsAndBlankLinesIgnored) {
  const ConfigParseResult result = ParseDcatConfig(
      "# a comment\n"
      "\n"
      "llc_miss_rate_thr = 0.02  # trailing comment\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.config.llc_miss_rate_thr, 0.02);
}

TEST(ConfigIoTest, ExplorationKeys) {
  const ConfigParseResult result = ParseDcatConfig(
      "greedy_exploration = false\nexploration_gain_floor = 0.01\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.config.greedy_exploration);
  EXPECT_DOUBLE_EQ(result.config.exploration_gain_floor, 0.01);
  EXPECT_TRUE(ParseDcatConfig("greedy_exploration = 1\n").config.greedy_exploration);
  EXPECT_FALSE(ParseDcatConfig("greedy_exploration = maybe\n").ok);
}

TEST(ConfigIoTest, PolicyAliases) {
  // Legacy spellings canonicalize; canonical and new registry names parse.
  EXPECT_EQ(ParseDcatConfig("policy = fair\n").config.policy, "max-fairness");
  EXPECT_EQ(ParseDcatConfig("policy = maxperf\n").config.policy, "max-performance");
  EXPECT_EQ(ParseDcatConfig("policy = max_fairness\n").config.policy, "max-fairness");
  EXPECT_EQ(ParseDcatConfig("policy = max_performance\n").config.policy, "max-performance");
  EXPECT_EQ(ParseDcatConfig("policy = lfoc\n").config.policy, "lfoc-cluster");
  EXPECT_EQ(ParseDcatConfig("policy = lfoc-cluster\n").config.policy, "lfoc-cluster");
}

TEST(ConfigIoTest, UnknownPolicyErrorListsRegisteredNames) {
  const ConfigParseResult result = ParseDcatConfig("policy = bogus\n");
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown policy 'bogus'"), std::string::npos);
  for (const std::string& name : PolicyRegistry::Global().Names()) {
    EXPECT_NE(result.error.find(name), std::string::npos)
        << "error should list registered policy " << name << ": " << result.error;
  }
}

TEST(ConfigIoTest, RetryBackoffKeys) {
  const ConfigParseResult result =
      ParseDcatConfig("retry_base_ticks = 2\nretry_max_ticks = 16\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.config.retry_base_ticks, 2u);
  EXPECT_EQ(result.config.retry_max_ticks, 16u);
}

TEST(ConfigIoTest, RetryBackoffValidation) {
  // The schedule must be well-formed: base >= 1 and cap >= base.
  EXPECT_FALSE(ParseDcatConfig("retry_base_ticks = 0\n").ok);
  EXPECT_FALSE(ParseDcatConfig("retry_max_ticks = 0\n").ok);
  EXPECT_FALSE(ParseDcatConfig("retry_base_ticks = 8\nretry_max_ticks = 4\n").ok);
  EXPECT_TRUE(ParseDcatConfig("retry_base_ticks = 4\nretry_max_ticks = 4\n").ok);
}

TEST(ConfigIoTest, RetryBackoffRoundTrips) {
  DcatConfig config;
  config.retry_base_ticks = 3;
  config.retry_max_ticks = 9;
  const ConfigParseResult result = ParseDcatConfig(FormatDcatConfig(config));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.config.retry_base_ticks, 3u);
  EXPECT_EQ(result.config.retry_max_ticks, 9u);
}

TEST(ConfigIoTest, UnknownKeyIsAnError) {
  const ConfigParseResult result = ParseDcatConfig("lcc_miss_rate_thr = 0.03\n");  // typo
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 1"), std::string::npos);
  EXPECT_NE(result.error.find("lcc_miss_rate_thr"), std::string::npos);
}

TEST(ConfigIoTest, MalformedLineIsAnError) {
  EXPECT_FALSE(ParseDcatConfig("just some words\n").ok);
  EXPECT_FALSE(ParseDcatConfig("llc_miss_rate_thr 0.03\n").ok);
  EXPECT_FALSE(ParseDcatConfig("llc_miss_rate_thr = abc\n").ok);
}

TEST(ConfigIoTest, SanityLimitsEnforced) {
  EXPECT_FALSE(ParseDcatConfig("llc_miss_rate_thr = 0\n").ok);
  EXPECT_FALSE(ParseDcatConfig("llc_miss_rate_thr = 1.5\n").ok);
  EXPECT_FALSE(ParseDcatConfig("ipc_improvement_thr = -0.1\n").ok);
  EXPECT_FALSE(ParseDcatConfig("streaming_multiplier = 0\n").ok);
  EXPECT_FALSE(ParseDcatConfig("min_ways = 0\n").ok);
  EXPECT_FALSE(ParseDcatConfig("interval_seconds = 0\n").ok);
  EXPECT_FALSE(ParseDcatConfig("policy = bogus\n").ok);
}

TEST(ConfigIoTest, FormatRoundTrips) {
  DcatConfig config;
  config.llc_miss_rate_thr = 0.07;
  config.policy = "max-performance";
  config.streaming_multiplier = 5;
  const ConfigParseResult result = ParseDcatConfig(FormatDcatConfig(config));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.config.llc_miss_rate_thr, 0.07);
  EXPECT_EQ(result.config.policy, "max-performance");
  EXPECT_EQ(result.config.streaming_multiplier, 5u);
}

TEST(ConfigIoTest, LoadFromFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcat_config_io_test.conf").string();
  {
    std::ofstream out(path);
    out << "llc_miss_rate_thr = 0.04\npolicy = maxperf\n";
  }
  const ConfigParseResult result = LoadDcatConfig(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.config.llc_miss_rate_thr, 0.04);
  std::remove(path.c_str());
}

TEST(ConfigIoTest, LoadMissingFileFails) {
  const ConfigParseResult result = LoadDcatConfig("/nonexistent/dcat.conf");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("/nonexistent/dcat.conf"), std::string::npos);
}

TEST(ConfigIoTest, ErrorMentionsFileOnParseFailure) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcat_config_io_bad.conf").string();
  {
    std::ofstream out(path);
    out << "garbage\n";
  }
  const ConfigParseResult result = LoadDcatConfig(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find(path), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcat
