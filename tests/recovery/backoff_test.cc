// The exponential-backoff retry schedule after failed applies: delays
// double from retry_base_ticks (plus deterministic jitter) up to the
// retry_max_ticks cap, skipped ticks keep sampling but freeze decisions,
// a success clears the window, and retry_max_ticks=1 reproduces the
// legacy every-tick retry exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "src/core/dcat_controller.h"
#include "src/faults/fault_plan.h"
#include "src/faults/faulty_pqos.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

FaultProfile TotalOutage(uint64_t active_ticks) {
  FaultProfile outage;
  outage.name = "forced-outage";
  outage.outage_rate = 1.0;
  outage.outage_min_ticks = 1000;
  outage.outage_max_ticks = 1000;
  outage.active_ticks = active_ticks;
  return outage;
}

class BackoffTest : public ::testing::Test {
 protected:
  void Start(uint32_t base, uint32_t max, uint64_t outage_ticks) {
    faulty_ = std::make_unique<FaultyPqos>(&backend_, &backend_,
                                           FaultPlan(1, TotalOutage(outage_ticks)));
    config_.retry_base_ticks = base;
    config_.retry_max_ticks = max;
    // Keep the controller out of degraded mode: this test observes the raw
    // retry schedule, which degradation would cut short.
    config_.degraded_after_failures = 1000;
    controller_ = std::make_unique<DcatController>(faulty_.get(), faulty_.get(), config_);
    ASSERT_EQ(controller_->AddTenant(
                  TenantSpec{.id = 1, .name = "t1", .cores = {0}, .baseline_ways = 3}),
              AdmitStatus::kOk);
  }

  void Tick() {
    backend_.Feed(0, 0.05, 0.33, 300, 0.5, 5'000'000);
    faulty_->AdvanceTick();
    controller_->Tick();
  }

  uint64_t Counter(const char* name) { return controller_->metrics().counter(name).value(); }

  // Runs `ticks` intervals and returns the 1-based tick numbers at which
  // the controller attempted (and failed) an apply.
  std::vector<uint64_t> FailedAttemptTicks(uint64_t ticks) {
    std::vector<uint64_t> attempts;
    uint64_t prev = Counter("faults.apply_failures");
    for (uint64_t t = 1; t <= ticks; ++t) {
      Tick();
      const uint64_t now = Counter("faults.apply_failures");
      if (now > prev) {
        attempts.push_back(t);
      }
      prev = now;
    }
    return attempts;
  }

  DcatConfig config_;
  FakePqos backend_;
  std::unique_ptr<FaultyPqos> faulty_;
  std::unique_ptr<DcatController> controller_;
};

TEST_F(BackoffTest, DelaysDoubleWithJitterUpToCap) {
  const uint32_t kBase = 2;
  const uint32_t kMax = 12;
  Start(kBase, kMax, /*outage_ticks=*/80);
  const std::vector<uint64_t> attempts = FailedAttemptTicks(80);
  ASSERT_GE(attempts.size(), 5u) << "outage long enough for several retries";
  EXPECT_EQ(attempts.front(), 1u);  // the first failure is immediate

  uint64_t prev_gap = 0;
  for (size_t k = 1; k < attempts.size(); ++k) {
    const uint64_t gap = attempts[k] - attempts[k - 1];
    // After the k-th failure the raw delay is base << (k-1); jitter only
    // adds, and the cap bounds everything.
    const uint64_t raw = static_cast<uint64_t>(kBase)
                         << std::min<uint64_t>(k - 1, 16);
    EXPECT_GE(gap, std::min<uint64_t>(raw, kMax)) << "attempt " << k;
    EXPECT_LE(gap, kMax) << "attempt " << k;
    EXPECT_GE(gap, prev_gap) << "backoff must not shrink while failures accrue";
    prev_gap = gap;
  }
  // The schedule saturates: once raw >= cap, every delay is exactly the cap.
  EXPECT_EQ(attempts.back() - attempts[attempts.size() - 2], kMax);
  // Skipped ticks were counted, and every skipped tick kept the telemetry
  // cadence without touching the decision state.
  const uint64_t expected_skips = 80 - attempts.size();
  EXPECT_EQ(Counter("faults.apply_backoff_skips"), expected_skips);
}

TEST_F(BackoffTest, CapOfOneReproducesLegacyEveryTickRetry) {
  Start(/*base=*/1, /*max=*/1, /*outage_ticks=*/10);
  const std::vector<uint64_t> attempts = FailedAttemptTicks(10);
  ASSERT_EQ(attempts.size(), 10u);
  for (uint64_t t = 1; t <= 10; ++t) {
    EXPECT_EQ(attempts[t - 1], t);
  }
  EXPECT_EQ(Counter("faults.apply_backoff_skips"), 0u);
}

TEST_F(BackoffTest, SuccessClearsTheBackoffWindow) {
  // A 6-tick outage, then a healthy backend: the first post-outage attempt
  // succeeds, resets the failure count, and normal every-tick operation
  // resumes — no residual backoff window.
  Start(/*base=*/2, /*max=*/8, /*outage_ticks=*/6);
  for (int t = 0; t < 20; ++t) {
    Tick();
  }
  EXPECT_FALSE(controller_->degraded());
  EXPECT_EQ(controller_->TenantWays(1),
            static_cast<uint32_t>(std::popcount(backend_.GetCosMask(controller_->Snapshot(1).cos))));
  const uint64_t skips_at_20 = Counter("faults.apply_backoff_skips");
  for (int t = 0; t < 5; ++t) {
    Tick();
  }
  // Fault-free steady state: no additional skipped ticks, no new failures.
  EXPECT_EQ(Counter("faults.apply_backoff_skips"), skips_at_20);
  const uint64_t failures = Counter("faults.apply_failures");
  Tick();
  EXPECT_EQ(Counter("faults.apply_failures"), failures);
}

TEST_F(BackoffTest, BackoffWindowSurvivesExportImport) {
  // The pending-retry tick is part of the persistent image: a controller
  // restored mid-window must not attempt an apply before the window ends.
  Start(/*base=*/4, /*max=*/16, /*outage_ticks=*/40);
  Tick();  // fails, arms a backoff window
  ASSERT_EQ(Counter("faults.apply_failures"), 1u);
  const ControllerPersistentState image = controller_->ExportState();
  EXPECT_GT(image.next_apply_tick, image.tick);
  EXPECT_EQ(image.consecutive_apply_failures, 1u);

  DcatController restored(faulty_.get(), faulty_.get(), config_);
  restored.ImportState(image);
  EXPECT_EQ(restored.ExportState().next_apply_tick, image.next_apply_tick);
}

}  // namespace
}  // namespace dcat
