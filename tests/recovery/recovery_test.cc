// Cold-restart reconciliation end to end: a controller journals its
// decisions, "dies" (destroyed), and RecoverController rebuilds it from
// the surviving bytes — adopting hardware that matches the journaled
// intent, finishing interrupted writes, parking externally-perturbed
// tenants in Reclaim, and refusing journals written under another policy.
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dcat_controller.h"
#include "src/pqos/mask.h"
#include "src/recovery/journal.h"
#include "src/recovery/recovery.h"
#include "src/recovery/state_codec.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void StartController() {
    controller_ = std::make_unique<DcatController>(&backend_, &backend_, config_);
    controller_->AttachJournal(&journal_);
  }

  void AddTenant(TenantId id, uint16_t core) {
    ASSERT_EQ(controller_->AddTenant(TenantSpec{.id = id,
                                                .name = "t" + std::to_string(id),
                                                .cores = {core},
                                                .baseline_ways = 3}),
              AdmitStatus::kOk);
    cores_[id] = core;
  }

  // One control interval with an MLR-ish active feed on every tenant core.
  void FeedTick(double ipc) {
    for (const auto& [id, core] : cores_) {
      backend_.Feed(core, ipc, /*mem_per_ins=*/0.33, /*llc_per_ki=*/300,
                    /*miss_rate=*/0.5, /*instructions=*/5'000'000);
    }
    controller_->Tick();
  }

  // The process dies (controller destroyed; backend and journal survive)
  // and a new one is reconciled from the journal.
  std::unique_ptr<DcatController> Recover(RecoveryReport* report,
                                          uint64_t cold_boot_tick = 0,
                                          uint64_t prior_restarts = 0) {
    controller_.reset();
    RecoveryOptions options;
    options.config = config_;
    options.cold_boot_tick = cold_boot_tick;
    options.prior_restarts = prior_restarts;
    options.journal = &journal_;
    return RecoverController(&backend_, &backend_, &storage_, options, report);
  }

  uint32_t BackendWays(const DcatController& controller, TenantId id) {
    return static_cast<uint32_t>(std::popcount(backend_.GetCosMask(controller.Snapshot(id).cos)));
  }

  DcatConfig config_;
  FakePqos backend_;
  MemoryJournalStorage storage_;
  JournalWriter journal_{&storage_};
  std::unique_ptr<DcatController> controller_;
  std::map<TenantId, uint16_t> cores_;
};

TEST_F(RecoveryTest, EmptyJournalColdBoots) {
  RecoveryReport report;
  auto recovered = Recover(&report, /*cold_boot_tick=*/42);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.outcome, RecoveryOutcome::kColdBoot);
  EXPECT_EQ(report.records_scanned, 0u);
  EXPECT_EQ(report.journal_tick, 0u);
  EXPECT_EQ(recovered->ticks(), 42u);
  EXPECT_FALSE(recovered->HasTenant(1));
  EXPECT_EQ(recovered->metrics().counter("controller.restarts_total").value(), 1u);
}

TEST_F(RecoveryTest, RecoversJournaledImageAndResumesTicking) {
  StartController();
  AddTenant(1, 0);
  AddTenant(2, 1);
  for (int t = 0; t < 5; ++t) {
    FeedTick(0.05);
  }
  const uint32_t ways1 = controller_->TenantWays(1);
  const uint32_t ways2 = controller_->TenantWays(2);

  RecoveryReport report;
  auto recovered = Recover(&report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_EQ(report.journal_tick, 5u);
  EXPECT_TRUE(report.had_intent);  // the last record is tick 5's decision
  EXPECT_EQ(report.tenants, 2u);
  EXPECT_EQ(recovered->ticks(), 5u);
  EXPECT_TRUE(recovered->HasTenant(1));
  EXPECT_TRUE(recovered->HasTenant(2));
  // The backend held the applied tick-5 state, so reconciliation adopts or
  // redoes — nothing is divergent and the allocations are exactly restored.
  EXPECT_EQ(report.apply.divergent, 0u);
  EXPECT_EQ(report.apply.adopted + report.apply.redone, 2u);
  EXPECT_EQ(recovered->TenantWays(1), ways1);
  EXPECT_EQ(recovered->TenantWays(2), ways2);
  EXPECT_EQ(BackendWays(*recovered, 1), ways1);
  EXPECT_EQ(BackendWays(*recovered, 2), ways2);

  // The recovered controller ticks like one that never died.
  controller_ = std::move(recovered);
  FeedTick(0.05);
  EXPECT_EQ(controller_->ticks(), 6u);
  EXPECT_FALSE(controller_->degraded());
}

TEST_F(RecoveryTest, InterruptedApplyRolledForward) {
  StartController();
  AddTenant(1, 0);
  FeedTick(0.05);
  FeedTick(0.05);
  FeedTick(0.10);  // this tick grows the tenant: its mask changes

  // Decode the last decision record to learn the pre-apply mask.
  const JournalParseResult parsed = ParseJournal(storage_.ReadAll());
  ASSERT_FALSE(parsed.records.empty());
  const JournalRecord& last = parsed.records.back();
  ASSERT_EQ(last.type, JournalRecordType::kDecision);
  ControllerPersistentState pre;
  DecisionIntent intent;
  ASSERT_TRUE(DecodeDecisionRecord(last.payload.data(), last.payload.size(), &pre, &intent));
  ASSERT_EQ(pre.tenants.size(), 1u);
  const uint8_t cos = pre.tenants[0].cos;
  const uint32_t pre_mask = pre.tenants[0].mask;
  ASSERT_NE(pre_mask, 0u);
  ASSERT_NE(backend_.GetCosMask(cos), pre_mask)
      << "precondition: the journaled tick must have changed the mask";

  // Rewind the hardware to the pre-apply mask — the crash fell before the
  // COS write landed. Recovery must finish the interrupted transaction.
  controller_.reset();
  ASSERT_EQ(backend_.SetCosMask(cos, pre_mask), PqosStatus::kOk);
  RecoveryReport report;
  RecoveryOptions options;
  options.config = config_;
  options.journal = &journal_;
  auto recovered = RecoverController(&backend_, &backend_, &storage_, options, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_EQ(report.apply.redone, 1u);
  EXPECT_EQ(report.apply.divergent, 0u);
  EXPECT_EQ(recovered->TenantWays(1), intent.targets[0]);
  EXPECT_EQ(static_cast<uint32_t>(std::popcount(backend_.GetCosMask(cos))),
            intent.targets[0]);
}

TEST_F(RecoveryTest, ExternalInterferenceParksTenantInReclaim) {
  StartController();
  AddTenant(1, 0);
  AddTenant(2, 1);
  for (int t = 0; t < 5; ++t) {
    FeedTick(0.05);
  }
  const uint8_t cos1 = controller_->Snapshot(1).cos;
  controller_.reset();
  // While the controller was down, something reprogrammed COS1 to a mask
  // matching neither the pre-apply image nor the intent.
  ASSERT_EQ(backend_.SetCosMask(cos1, MakeWayMask(0, backend_.NumWays())), PqosStatus::kOk);

  RecoveryReport report;
  RecoveryOptions options;
  options.config = config_;
  options.journal = &journal_;
  auto recovered = RecoverController(&backend_, &backend_, &storage_, options, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_GE(report.apply.divergent, 1u);
  EXPECT_EQ(recovered->Snapshot(1).category, Category::kReclaim);

  // The normal reclaim machinery re-establishes the contract within a few
  // fault-free ticks and the backend tracks the controller exactly.
  controller_ = std::move(recovered);
  for (int t = 0; t < 3; ++t) {
    FeedTick(0.05);
  }
  EXPECT_EQ(BackendWays(*controller_, 1), controller_->TenantWays(1));
  EXPECT_EQ(BackendWays(*controller_, 2), controller_->TenantWays(2));
}

TEST_F(RecoveryTest, PolicyMismatchFailsFast) {
  StartController();
  AddTenant(1, 0);
  FeedTick(0.05);
  controller_.reset();

  config_.policy = "max-performance";  // the operator changed intent
  RecoveryReport report;
  RecoveryOptions options;
  options.config = config_;
  auto recovered = RecoverController(&backend_, &backend_, &storage_, options, &report);
  EXPECT_EQ(recovered, nullptr);
  EXPECT_EQ(report.outcome, RecoveryOutcome::kError);
  EXPECT_NE(report.error.find("max-fairness"), std::string::npos) << report.error;
  EXPECT_NE(report.error.find("max-performance"), std::string::npos) << report.error;
}

TEST_F(RecoveryTest, StaleSnapshotLosesToNewerDecision) {
  // A compacted snapshot at tick 2 followed by a decision at tick 9: the
  // last decodable record wins regardless of type.
  ControllerPersistentState stale;
  stale.tick = 2;
  stale.policy = "max-fairness";
  ControllerPersistentState newer = stale;
  newer.tick = 9;
  const auto snap = FrameRecord(JournalRecordType::kSnapshot, EncodeControllerState(stale));
  const auto decision =
      FrameRecord(JournalRecordType::kDecision, EncodeDecisionRecord(newer, DecisionIntent{}));
  ASSERT_TRUE(storage_.Append(snap.data(), snap.size()));
  ASSERT_TRUE(storage_.Append(decision.data(), decision.size()));

  RecoveryReport report;
  auto recovered = Recover(&report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_EQ(report.records_scanned, 2u);
  EXPECT_EQ(report.journal_tick, 9u);
  EXPECT_TRUE(report.had_intent);
  EXPECT_EQ(recovered->ticks(), 9u);
}

TEST_F(RecoveryTest, TornTailFallsBackToLastGoodRecord) {
  StartController();
  AddTenant(1, 0);
  for (int t = 0; t < 4; ++t) {
    FeedTick(0.05);
  }
  // The crash tore the in-flight record: only 8 bytes of it landed.
  ControllerPersistentState next;
  next.tick = 99;
  next.policy = "max-fairness";
  const auto torn = FrameRecord(JournalRecordType::kSnapshot, EncodeControllerState(next));
  ASSERT_TRUE(storage_.Append(torn.data(), 8));

  RecoveryReport report;
  auto recovered = Recover(&report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_GE(report.torn_records, 1u);
  EXPECT_EQ(report.journal_tick, 4u);  // the torn tick-99 image is never trusted
  EXPECT_EQ(recovered->ticks(), 4u);
  EXPECT_EQ(recovered->metrics().counter("journal.torn_records_total").value(),
            report.torn_records);
}

TEST_F(RecoveryTest, UndecodablePayloadWithValidCrcSkipped) {
  StartController();
  AddTenant(1, 0);
  for (int t = 0; t < 3; ++t) {
    FeedTick(0.05);
  }
  // Schema drift: the frame's CRC holds but the payload does not decode.
  // Recovery must keep walking backwards to the previous good record.
  const auto bogus = FrameRecord(JournalRecordType::kSnapshot, {1, 2, 3});
  ASSERT_TRUE(storage_.Append(bogus.data(), bogus.size()));

  RecoveryReport report;
  auto recovered = Recover(&report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_GE(report.torn_records, 1u);
  EXPECT_EQ(recovered->ticks(), 3u);
}

TEST_F(RecoveryTest, RestartCountersStayMonotonicAcrossRegistries) {
  StartController();
  AddTenant(1, 0);
  FeedTick(0.05);
  FeedTick(0.05);
  RecoveryReport report;
  auto recovered = Recover(&report, /*cold_boot_tick=*/0, /*prior_restarts=*/3);
  ASSERT_NE(recovered, nullptr);
  // The metrics registry died with the old process; the host-tracked prior
  // count keeps the fleet-facing counter monotonic.
  EXPECT_EQ(recovered->metrics().counter("controller.restarts_total").value(), 4u);
  EXPECT_EQ(recovered->metrics().counter("journal.records_total").value(),
            report.records_scanned);
}

TEST_F(RecoveryTest, RecoveredJournalResumesWriteAhead) {
  StartController();
  AddTenant(1, 0);
  for (int t = 0; t < 3; ++t) {
    FeedTick(0.05);
  }
  RecoveryReport report;
  auto recovered = Recover(&report);
  ASSERT_NE(recovered, nullptr);
  // Recovery compacted the journal to the single reconciled image...
  JournalParseResult parsed = ParseJournal(storage_.ReadAll());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].type, JournalRecordType::kSnapshot);
  // ...and write-ahead operation resumes on the next tick.
  controller_ = std::move(recovered);
  FeedTick(0.05);
  parsed = ParseJournal(storage_.ReadAll());
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[1].type, JournalRecordType::kDecision);
  ControllerPersistentState state;
  DecisionIntent intent;
  ASSERT_TRUE(DecodeDecisionRecord(parsed.records[1].payload.data(),
                                   parsed.records[1].payload.size(), &state, &intent));
  EXPECT_EQ(state.tick, 4u);
}

}  // namespace
}  // namespace dcat
