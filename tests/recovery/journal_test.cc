// The decision journal's byte-level contract: CRC framing detects torn
// tails and bit rot, the parser resynchronizes past corrupt regions
// without losing the good tail, the writer compacts, and persistence
// failures are counted and swallowed — never thrown into the control loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/faults/faulty_journal.h"
#include "src/recovery/journal.h"
#include "src/recovery/state_codec.h"
#include "src/telemetry/metrics.h"

namespace dcat {
namespace {

ControllerPersistentState MiniState(uint64_t tick) {
  ControllerPersistentState state;
  state.tick = tick;
  state.policy = "max-fairness";
  state.next_group_id = 1;
  return state;
}

std::vector<uint8_t> SnapshotFrame(uint64_t tick) {
  return FrameRecord(JournalRecordType::kSnapshot, EncodeControllerState(MiniState(tick)));
}

void AppendBytes(std::vector<uint8_t>* stream, const std::vector<uint8_t>& frame,
                 size_t prefix = SIZE_MAX) {
  const size_t n = std::min(prefix, frame.size());
  stream->insert(stream->end(), frame.begin(), frame.begin() + n);
}

uint64_t DecodedTick(const JournalRecord& record) {
  ControllerPersistentState state;
  EXPECT_TRUE(DecodeControllerState(record.payload.data(), record.payload.size(), &state));
  return state.tick;
}

TEST(JournalFraming, RoundTripsRecordsInOrder) {
  std::vector<uint8_t> stream;
  AppendBytes(&stream, FrameRecord(JournalRecordType::kSnapshot, {1, 2, 3}));
  AppendBytes(&stream, FrameRecord(JournalRecordType::kDecision, {}));
  AppendBytes(&stream, FrameRecord(JournalRecordType::kDecision,
                                   std::vector<uint8_t>(1000, 0x5a)));
  const JournalParseResult parsed = ParseJournal(stream);
  EXPECT_EQ(parsed.torn_records, 0u);
  ASSERT_EQ(parsed.records.size(), 3u);
  EXPECT_EQ(parsed.records[0].type, JournalRecordType::kSnapshot);
  EXPECT_EQ(parsed.records[0].payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(parsed.records[1].type, JournalRecordType::kDecision);
  EXPECT_TRUE(parsed.records[1].payload.empty());
  EXPECT_EQ(parsed.records[2].payload.size(), 1000u);
}

TEST(JournalFraming, EmptyStreamParsesClean) {
  const JournalParseResult parsed = ParseJournal({});
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_EQ(parsed.torn_records, 0u);
}

TEST(JournalFraming, TornTailDetectedNotTrusted) {
  // The second record is cut mid-payload — the shape a crash during
  // Append leaves behind. The first record must survive untouched.
  std::vector<uint8_t> stream;
  AppendBytes(&stream, SnapshotFrame(1));
  const std::vector<uint8_t> second = SnapshotFrame(2);
  AppendBytes(&stream, second, second.size() - 5);
  const JournalParseResult parsed = ParseJournal(stream);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(DecodedTick(parsed.records[0]), 1u);
  EXPECT_EQ(parsed.torn_records, 1u);
}

TEST(JournalFraming, TailCutInsideHeaderDetected) {
  std::vector<uint8_t> stream;
  AppendBytes(&stream, SnapshotFrame(1));
  AppendBytes(&stream, SnapshotFrame(2), 6);  // magic + type + half the length
  const JournalParseResult parsed = ParseJournal(stream);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.torn_records, 1u);
}

TEST(JournalFraming, BitFlipSkipsRecordAndResynchronizes) {
  // A flipped payload byte in the middle record fails its CRC; the parser
  // must skip it and still find the good record behind it.
  const std::vector<uint8_t> first = SnapshotFrame(1);
  std::vector<uint8_t> stream;
  AppendBytes(&stream, first);
  AppendBytes(&stream, SnapshotFrame(2));
  AppendBytes(&stream, SnapshotFrame(3));
  stream[first.size() + 12 + 3] ^= 0x40;  // into record 2's payload
  const JournalParseResult parsed = ParseJournal(stream);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(DecodedTick(parsed.records[0]), 1u);
  EXPECT_EQ(DecodedTick(parsed.records[1]), 3u);
  EXPECT_EQ(parsed.torn_records, 1u);
}

TEST(JournalFraming, ContiguousCorruptionCountsOnce) {
  // Two adjacent corrupt records form one bad region: one torn count,
  // however many frames it spans.
  const std::vector<uint8_t> first = SnapshotFrame(1);
  const std::vector<uint8_t> second = SnapshotFrame(2);
  std::vector<uint8_t> stream;
  AppendBytes(&stream, first);
  AppendBytes(&stream, second);
  AppendBytes(&stream, SnapshotFrame(3));
  stream[first.size() + 12] ^= 0xff;                  // record 2 payload
  stream[first.size() + second.size() + 12] ^= 0xff;  // record 3 payload
  const JournalParseResult parsed = ParseJournal(stream);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(DecodedTick(parsed.records[0]), 1u);
  EXPECT_EQ(parsed.torn_records, 1u);
}

TEST(JournalFraming, GarbagePrefixResynchronizes) {
  std::vector<uint8_t> stream = {0xff, 0x00, 0x41, 0x44};
  AppendBytes(&stream, SnapshotFrame(9));
  const JournalParseResult parsed = ParseJournal(stream);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(DecodedTick(parsed.records[0]), 9u);
  EXPECT_EQ(parsed.torn_records, 1u);
}

TEST(JournalWriterTest, ContractChangeWritesSnapshot) {
  MemoryJournalStorage storage;
  JournalWriter writer(&storage);
  writer.OnContractChange(MiniState(3));
  const JournalParseResult parsed = ParseJournal(storage.ReadAll());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].type, JournalRecordType::kSnapshot);
  EXPECT_EQ(DecodedTick(parsed.records[0]), 3u);
}

TEST(JournalWriterTest, CompactionBoundsTheFile) {
  MemoryJournalStorage storage;
  JournalWriter writer(&storage, JournalWriter::Options{.snapshot_every = 4});
  const DecisionIntent intent;
  size_t high_water = 0;
  for (uint64_t tick = 1; tick <= 40; ++tick) {
    writer.OnDecision(MiniState(tick), intent);
    high_water = std::max(high_water, ParseJournal(storage.ReadAll()).records.size());
  }
  // Compaction every 4 decisions keeps the file at a handful of records,
  // and the latest image is always the last word.
  EXPECT_LE(high_water, 5u);
  const JournalParseResult parsed = ParseJournal(storage.ReadAll());
  ASSERT_FALSE(parsed.records.empty());
  EXPECT_EQ(parsed.torn_records, 0u);
  ControllerPersistentState state;
  DecisionIntent decoded_intent;
  const JournalRecord& last = parsed.records.back();
  ASSERT_TRUE(DecodeDecisionRecord(last.payload.data(), last.payload.size(), &state,
                                   &decoded_intent) ||
              DecodeControllerState(last.payload.data(), last.payload.size(), &state));
  EXPECT_EQ(state.tick, 40u);
}

TEST(JournalWriterTest, OnRecoveredCompactsToSingleSnapshot) {
  MemoryJournalStorage storage;
  JournalWriter writer(&storage);
  const DecisionIntent intent;
  writer.OnDecision(MiniState(1), intent);
  writer.OnDecision(MiniState(2), intent);
  writer.OnRecovered(MiniState(7));
  const JournalParseResult parsed = ParseJournal(storage.ReadAll());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].type, JournalRecordType::kSnapshot);
  EXPECT_EQ(DecodedTick(parsed.records[0]), 7u);
}

TEST(JournalWriterTest, AppendFailureCountedAndSwallowed) {
  MemoryJournalStorage inner;
  FaultyJournalStorage storage(&inner);
  JournalWriter writer(&storage);
  MetricsRegistry metrics;
  writer.set_metrics(&metrics);
  const DecisionIntent intent;

  storage.FailNextAppend();
  writer.OnDecision(MiniState(1), intent);  // must not throw
  EXPECT_EQ(metrics.counter("journal.append_failures").value(), 1u);
  EXPECT_TRUE(ParseJournal(inner.ReadAll()).records.empty());

  writer.OnDecision(MiniState(2), intent);  // the medium healed
  EXPECT_EQ(metrics.counter("journal.records_total").value(), 1u);
  const JournalParseResult parsed = ParseJournal(inner.ReadAll());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].type, JournalRecordType::kDecision);
}

TEST(FileJournalStorageTest, AppendReadRewriteRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dcat_journal_test.dj";
  std::remove(path.c_str());
  {
    FileJournalStorage storage(path);
    EXPECT_TRUE(storage.ReadAll().empty());  // missing file reads empty
    const std::vector<uint8_t> a = SnapshotFrame(1);
    const std::vector<uint8_t> b = SnapshotFrame(2);
    ASSERT_TRUE(storage.Append(a.data(), a.size()));
    ASSERT_TRUE(storage.Append(b.data(), b.size()));
    std::vector<uint8_t> expect = a;
    expect.insert(expect.end(), b.begin(), b.end());
    EXPECT_EQ(storage.ReadAll(), expect);

    const std::vector<uint8_t> c = SnapshotFrame(3);
    ASSERT_TRUE(storage.Rewrite(c.data(), c.size()));
    EXPECT_EQ(storage.ReadAll(), c);
  }
  {
    // A fresh handle over the same path sees the persisted bytes.
    FileJournalStorage storage(path);
    const JournalParseResult parsed = ParseJournal(storage.ReadAll());
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_EQ(DecodedTick(parsed.records[0]), 3u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcat
