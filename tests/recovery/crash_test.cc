// End-to-end crash-restart scenarios through the verify harness: kill the
// controller at a tick boundary, mid-apply, or mid-journal-append; recover
// from the journal; and require (a) a clean invariant audit across the
// splice and (b) byte-identical convergence with the uninterrupted run on
// fault-free scenarios — including the pinned Fig.10 golden workload.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/verify/crash.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {

std::string Describe(const CrashRunResult& result) {
  std::ostringstream out;
  for (const Violation& v : result.violations) {
    out << "[tick " << v.tick << " tenant " << v.tenant << " " << v.invariant << "] "
        << v.detail << "\n";
  }
  return out.str();
}

TEST(CrashScenarioTest, BoundaryCrashConverges) {
  const Scenario scenario = RandomScenario(7);
  CrashRunOptions options;
  options.mode = CrashMode::kBoundary;
  options.crash_tick = scenario.intervals / 2;
  const CrashRunResult result = RunCrashScenario(scenario, options);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(result.report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_TRUE(result.ok()) << Describe(result);
}

TEST(CrashScenarioTest, MidApplyCrashConverges) {
  // Not every tick writes the backend (a steady-state tick may change no
  // mask), so probe the early growth phase until the armed kill fires; a
  // tick without a write must simply complete the run unharmed.
  const Scenario scenario = RandomScenario(7);
  bool crashed_once = false;
  for (uint32_t tick = 2; tick <= 6; ++tick) {
    CrashRunOptions options;
    options.mode = CrashMode::kMidApply;
    options.crash_tick = tick;
    options.crash_write = 1;
    const CrashRunResult result = RunCrashScenario(scenario, options);
    EXPECT_TRUE(result.ok()) << "tick " << tick << "\n" << Describe(result);
    crashed_once = crashed_once || result.crashed;
  }
  EXPECT_TRUE(crashed_once) << "no early tick performed a backend write";
}

TEST(CrashScenarioTest, MidApplyLateWriteCrashConverges) {
  const Scenario scenario = RandomScenario(11);
  CrashRunOptions options;
  options.mode = CrashMode::kMidApply;
  options.crash_tick = 4;
  options.crash_write = 3;  // the crash falls between COS transactions
  const CrashRunResult result = RunCrashScenario(scenario, options);
  EXPECT_TRUE(result.ok()) << Describe(result);
}

TEST(CrashScenarioTest, TornJournalReplaysTheTickExactly) {
  const Scenario scenario = RandomScenario(7);
  for (const size_t keep : {size_t{0}, size_t{6}}) {
    CrashRunOptions options;
    options.mode = CrashMode::kTornJournal;
    options.crash_tick = scenario.intervals / 2;
    options.torn_keep_bytes = keep;
    const CrashRunResult result = RunCrashScenario(scenario, options);
    EXPECT_TRUE(result.crashed) << "keep=" << keep;
    EXPECT_TRUE(result.ok()) << "keep=" << keep << "\n" << Describe(result);
    if (keep == 0) {
      // The append vanished entirely: the file ends cleanly at the prior
      // frame, so nothing is torn — recovery just sees an older record.
      EXPECT_EQ(result.report.torn_records, 0u);
    } else {
      // The kept prefix cuts inside a frame: detected, never trusted.
      EXPECT_GE(result.report.torn_records, 1u) << "keep=" << keep;
    }
  }
}

TEST(CrashScenarioTest, MaxPerformancePolicyCrashConverges) {
  const Scenario scenario = RandomScenario(5);
  CrashRunOptions options;
  options.policy = "max-performance";
  options.mode = CrashMode::kBoundary;
  options.crash_tick = scenario.intervals / 2;
  const CrashRunResult result = RunCrashScenario(scenario, options);
  EXPECT_TRUE(result.crashed);
  EXPECT_TRUE(result.ok()) << Describe(result);
}

TEST(CrashScenarioTest, LfocClusterBoundaryCrashConverges) {
  const Scenario scenario = RandomScenario(5);
  CrashRunOptions options;
  options.policy = "lfoc-cluster";
  options.mode = CrashMode::kBoundary;
  options.crash_tick = scenario.intervals / 2;
  const CrashRunResult result = RunCrashScenario(scenario, options);
  EXPECT_TRUE(result.crashed);
  EXPECT_TRUE(result.ok()) << Describe(result);
}

TEST(CrashScenarioTest, LfocClusterMidApplyCrashConverges) {
  // Exercises the clustered roll-forward path: the decision intent carries
  // COS-sharing groups and recovery must rebuild the group layout.
  const Scenario scenario = RandomScenario(5);
  CrashRunOptions options;
  options.policy = "lfoc-cluster";
  options.mode = CrashMode::kMidApply;
  options.crash_tick = 3;
  options.crash_write = 2;
  const CrashRunResult result = RunCrashScenario(scenario, options);
  EXPECT_TRUE(result.ok()) << Describe(result);
}

TEST(CrashScenarioTest, Fig10GoldenSurvivesMidRunCrash) {
  // The paper's pinned Fig.10 workload under the golden-trace options
  // (max-fairness, 20M cycles/interval): a mid-run crash must leave the
  // post-recovery trace byte-identical to the uninterrupted golden run.
  const Scenario scenario = Fig10Scenario();
  CrashRunOptions options;
  options.policy = "max-fairness";
  options.cycles_per_interval = 20e6;
  options.mode = CrashMode::kBoundary;
  options.crash_tick = scenario.intervals / 2;
  const CrashRunResult result = RunCrashScenario(scenario, options);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(result.report.outcome, RecoveryOutcome::kRecovered);
  EXPECT_TRUE(result.ok()) << Describe(result);
}

TEST(CrashScenarioTest, ChaosPlusCrashKeepsInvariants) {
  // Crash-restart composed with backend chaos: trace convergence is not
  // asserted (the reference would see a different fault schedule), but
  // every audited interval must stay invariant-clean and the controller
  // must not be stuck degraded after the fault-free settle window.
  const Scenario scenario = RandomScenario(3);
  CrashRunOptions options;
  options.mode = CrashMode::kMidApply;
  options.crash_tick = scenario.intervals / 2;
  options.inject_faults = true;
  options.fault_seed = 3;
  options.fault_profile = "mixed";
  const CrashRunResult result = RunCrashScenario(scenario, options);
  EXPECT_TRUE(result.ok()) << Describe(result);
}

TEST(CrashScenarioTest, MonitoringChaosPlusCrashKeepsInvariants) {
  const Scenario scenario = RandomScenario(4);
  CrashRunOptions options;
  options.mode = CrashMode::kBoundary;
  options.crash_tick = scenario.intervals / 2;
  options.inject_faults = true;
  options.fault_seed = 4;
  options.fault_profile = "monitoring";
  const CrashRunResult result = RunCrashScenario(scenario, options);
  EXPECT_TRUE(result.crashed);
  EXPECT_TRUE(result.ok()) << Describe(result);
}

}  // namespace
}  // namespace dcat
