// The persistent-state codec's two contracts: decode(encode(x)) is
// bit-exact (doubles round-trip by IEEE-754 bit pattern), and hostile
// payloads — truncations, version skew, garbage — are rejected, never
// crashed on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/recovery/state_codec.h"

namespace dcat {
namespace {

// A state that exercises every field, including doubles that would betray
// a lossy text round trip (subnormal, negative zero, epsilon-separated).
ControllerPersistentState FullState() {
  ControllerPersistentState state;
  state.tick = 0x1122334455667788ULL;
  state.policy = "lfoc-cluster";
  state.degraded = true;
  state.consecutive_apply_failures = 7;
  state.degraded_clean_ticks = 2;
  state.next_apply_tick = 0x99aabbccddeeff00ULL;
  state.orphaned_cores = {3, 0, 65535};
  state.cos_acked_mask = {0xf, 0xf0, 0};
  state.next_group_id = 42;

  PersistentTenant tenant;
  tenant.spec.id = 11;
  tenant.spec.name = "memcached";
  tenant.spec.cores = {0, 1, 17};
  tenant.spec.baseline_ways = 4;
  tenant.cos = 5;
  tenant.group = 3;
  tenant.category = Category::kStreaming;
  tenant.ways = 6;
  tenant.mask = 0x3f0;
  tenant.last_counters.retired_instructions = 123456789;
  tenant.last_counters.unhalted_cycles = 987654321;
  tenant.detector_has_signature = true;
  tenant.detector_idle = false;
  tenant.detector_signature = 5e-324;  // smallest subnormal
  PersistentPhaseRecord phase;
  phase.signature = -0.0;
  phase.baseline_ipc = 1.0 + std::numeric_limits<double>::epsilon();
  phase.baseline_valid = true;
  phase.table = {{1, 0.1}, {3, 0.30000000000000004}, {20, 2.5}};
  tenant.phases = {phase, PersistentPhaseRecord{}};
  tenant.phase_index = 1;
  tenant.has_phase = true;
  tenant.measuring_baseline = false;
  tenant.last_ipc = 0.1 + 0.2;  // famously != 0.3
  tenant.has_last_ipc = true;
  tenant.prev_interval_ways = 5;
  tenant.grow_denied = true;
  tenant.anomaly_streak = 1;
  tenant.prev_active = true;
  tenant.last_mbm = 0xffffffff00000001ULL;
  state.tenants = {tenant, PersistentTenant{}};
  return state;
}

TEST(StateCodec, ControllerStateRoundTripsBitExactly) {
  const ControllerPersistentState original = FullState();
  const std::vector<uint8_t> bytes = EncodeControllerState(original);
  ControllerPersistentState decoded;
  ASSERT_TRUE(DecodeControllerState(bytes.data(), bytes.size(), &decoded));
  // Bit-exactness in one shot: re-encoding the decoded image must
  // reproduce the byte stream, so every double kept its bit pattern
  // (including -0.0 and the subnormal) and every field survived.
  EXPECT_EQ(EncodeControllerState(decoded), bytes);
  EXPECT_EQ(decoded.tick, original.tick);
  EXPECT_EQ(decoded.policy, original.policy);
  ASSERT_EQ(decoded.tenants.size(), 2u);
  EXPECT_EQ(decoded.tenants[0].spec.name, "memcached");
  EXPECT_EQ(decoded.tenants[0].phases[0].table, original.tenants[0].phases[0].table);
  EXPECT_TRUE(std::signbit(decoded.tenants[0].phases[0].signature));
}

TEST(StateCodec, DecisionRecordRoundTripsBitExactly) {
  const ControllerPersistentState state = FullState();
  DecisionIntent intent;
  intent.degraded = true;
  intent.targets = {6, 1};
  intent.groups = {3, 4};
  const std::vector<uint8_t> bytes = EncodeDecisionRecord(state, intent);
  ControllerPersistentState decoded_state;
  DecisionIntent decoded_intent;
  ASSERT_TRUE(
      DecodeDecisionRecord(bytes.data(), bytes.size(), &decoded_state, &decoded_intent));
  EXPECT_EQ(EncodeDecisionRecord(decoded_state, decoded_intent), bytes);
  EXPECT_EQ(decoded_intent.degraded, true);
  EXPECT_EQ(decoded_intent.targets, intent.targets);
  EXPECT_EQ(decoded_intent.groups, intent.groups);
}

TEST(StateCodec, EveryTruncationIsRejected) {
  // Chop the payload at every possible length: each prefix must decode to
  // false (bounds-checked reads), never crash or accept a partial image.
  const std::vector<uint8_t> bytes = EncodeControllerState(FullState());
  for (size_t len = 0; len < bytes.size(); ++len) {
    ControllerPersistentState out;
    EXPECT_FALSE(DecodeControllerState(bytes.data(), len, &out)) << "prefix " << len;
  }
}

TEST(StateCodec, EveryDecisionTruncationIsRejected) {
  DecisionIntent intent;
  intent.targets = {6, 1};
  const std::vector<uint8_t> bytes = EncodeDecisionRecord(FullState(), intent);
  for (size_t len = 0; len < bytes.size(); ++len) {
    ControllerPersistentState state;
    DecisionIntent out;
    EXPECT_FALSE(DecodeDecisionRecord(bytes.data(), len, &state, &out)) << "prefix " << len;
  }
}

TEST(StateCodec, UnknownVersionIsRejected) {
  std::vector<uint8_t> bytes = EncodeControllerState(FullState());
  bytes[0] = static_cast<uint8_t>(kStateCodecVersion + 1);  // version u32 LE
  ControllerPersistentState out;
  EXPECT_FALSE(DecodeControllerState(bytes.data(), bytes.size(), &out));
}

TEST(StateCodec, GarbageIsRejected) {
  std::vector<uint8_t> garbage(512);
  uint8_t v = 1;
  for (uint8_t& b : garbage) {
    v = static_cast<uint8_t>(v * 37 + 11);  // deterministic junk
    b = v;
  }
  ControllerPersistentState state;
  DecisionIntent intent;
  EXPECT_FALSE(DecodeControllerState(garbage.data(), garbage.size(), &state));
  EXPECT_FALSE(DecodeDecisionRecord(garbage.data(), garbage.size(), &state, &intent));
}

TEST(StateCodec, TrailingBytesAreRejected) {
  // A payload with junk after the image means the frame length lied;
  // trusting it would mask corruption.
  std::vector<uint8_t> bytes = EncodeControllerState(FullState());
  bytes.push_back(0xee);
  ControllerPersistentState out;
  EXPECT_FALSE(DecodeControllerState(bytes.data(), bytes.size(), &out));
}

}  // namespace
}  // namespace dcat
