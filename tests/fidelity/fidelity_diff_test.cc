// The hybrid-fidelity differential suite: every scenario the repo already
// trusts (the Fig. 10 golden mix, phased workloads, the random fuzz
// corpus) replayed at line and hybrid fidelity, requiring byte-identical
// decision traces (ExtractDecisionTrace). This is the contract that makes
// the analytic fast path admissible at all — the controller must not be
// able to tell the two runs apart.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/policies/registry.h"
#include "src/telemetry/trace.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {

// Runs `scenario` under `policy` at both fidelities and returns the first
// decision divergence ("" when decision-equivalent). Both runs must also be
// violation-free — a fast path that trips an invariant is no fast path.
std::string DiffScenario(const Scenario& scenario, const std::string& policy,
                         std::string* hybrid_trace = nullptr) {
  RunOptions line;
  line.policy = policy;
  line.cycles_per_interval = 1e6;
  RunOptions hybrid = line;
  hybrid.fidelity.mode = FidelityMode::kHybrid;

  const ScenarioResult line_result = RunScenario(scenario, line);
  const ScenarioResult hybrid_result = RunScenario(scenario, hybrid);
  if (!line_result.ok()) {
    return "line run violated " + line_result.violations.front().invariant;
  }
  if (!hybrid_result.ok()) {
    return "hybrid run violated " + hybrid_result.violations.front().invariant;
  }
  if (hybrid_trace != nullptr) {
    *hybrid_trace = hybrid_result.trace;
  }
  return DescribeTraceDivergence(ExtractDecisionTrace(line_result.trace),
                                 ExtractDecisionTrace(hybrid_result.trace));
}

TEST(FidelityDiffTest, Fig10DecisionEquivalentUnderEveryPolicy) {
  const Scenario scenario = Fig10Scenario();
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    EXPECT_EQ(DiffScenario(scenario, policy), "") << "policy " << policy;
  }
}

TEST(FidelityDiffTest, HybridFig10ActuallyUsesTheFastPath) {
  // Decision equivalence would be vacuous if the hybrid run never left
  // line fidelity; the full hybrid trace must carry fidelity transitions.
  std::string hybrid_trace;
  ASSERT_EQ(DiffScenario(Fig10Scenario(), "max-fairness", &hybrid_trace), "");
  EXPECT_NE(hybrid_trace.find("\"type\":\"fidelity\""), std::string::npos)
      << "hybrid Fig. 10 run never entered the analytic fast path";
}

TEST(FidelityDiffTest, FidelityLinesNeverReachTheDecisionTrace) {
  std::string hybrid_trace;
  ASSERT_EQ(DiffScenario(Fig10Scenario(), "max-fairness", &hybrid_trace), "");
  EXPECT_EQ(ExtractDecisionTrace(hybrid_trace).find("\"type\":\"fidelity\""),
            std::string::npos);
}

TEST(FidelityDiffTest, RandomCorpusDecisionEquivalent) {
  // A slice of the fuzz corpus — phased workloads, churn, config
  // perturbations. CI's dcat_fuzz --fidelity-diff sweep covers 100 seeds;
  // this keeps a fast always-on cross-section in ctest.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Scenario scenario = RandomScenario(seed);
    EXPECT_EQ(DiffScenario(scenario, "max-fairness"), "")
        << "seed " << seed << ": " << scenario.Describe();
  }
}

TEST(FidelityDiffTest, RandomCorpusDecisionEquivalentAcrossPolicies) {
  for (uint64_t seed : {3, 7}) {
    const Scenario scenario = RandomScenario(seed);
    for (const std::string& policy : PolicyRegistry::Global().Names()) {
      EXPECT_EQ(DiffScenario(scenario, policy), "")
          << "seed " << seed << " policy " << policy << ": " << scenario.Describe();
    }
  }
}

TEST(FidelityDiffTest, AnalyticModeKeepsInvariantsOnSteadyMix) {
  // --fidelity=analytic drops the steadiness gates, so decisions MAY
  // diverge — but the invariant checker must still hold: the fast path can
  // bend measurements, never the allocator's contract.
  RunOptions options;
  options.cycles_per_interval = 1e6;
  options.fidelity.mode = FidelityMode::kAnalytic;
  const ScenarioResult result = RunScenario(Fig10Scenario(), options);
  EXPECT_TRUE(result.ok()) << result.violations.front().invariant << " — "
                           << result.violations.front().detail;
}

TEST(FidelityDiffTest, HybridTraceIsDeterministic) {
  RunOptions options;
  options.cycles_per_interval = 1e6;
  options.fidelity.mode = FidelityMode::kHybrid;
  std::string detail;
  EXPECT_TRUE(CheckTraceDeterminism(RandomScenario(11), options, &detail)) << detail;
}

}  // namespace
}  // namespace dcat
