// Unit tests for the hybrid-fidelity engine (src/sim/analytic_model.h):
// mode parsing, entry gating, churn holds, forced-analytic mode, and the
// coverage accounting — plus host-level checks that a steady mix actually
// reaches the fast path and that a workload swap knocks it back out.
#include "src/sim/analytic_model.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/host.h"
#include "src/sim/socket.h"
#include "src/workloads/factory.h"

namespace dcat {
namespace {

TEST(FidelityModeTest, NameRoundTrip) {
  for (FidelityMode mode :
       {FidelityMode::kLine, FidelityMode::kAnalytic, FidelityMode::kHybrid}) {
    const auto parsed = FidelityModeFromName(FidelityModeName(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(FidelityModeFromName("").has_value());
  EXPECT_FALSE(FidelityModeFromName("full").has_value());
}

TEST(AnalyticModelEngineTest, ColdTenantStaysLine) {
  Socket socket(SocketConfig::XeonE5());
  FidelityConfig config;
  config.mode = FidelityMode::kHybrid;
  AnalyticModelEngine engine(&socket, config, /*sink=*/nullptr);
  engine.AddTenant(1, {0, 1});

  TenantFidelityInput input;
  input.id = 1;
  input.controller_steady = true;
  input.steady_horizon = UINT64_MAX;
  engine.PlanTick(/*tick=*/10, /*interval_cycles=*/1e6, {input});
  // No line interval has ever been observed: warmup keeps the tenant at
  // line fidelity no matter how steady the controller says it is.
  EXPECT_FALSE(engine.IsAnalytic(1));
}

TEST(AnalyticModelEngineTest, ForcedModeStillRequiresWarmModel) {
  Socket socket(SocketConfig::XeonE5());
  FidelityConfig config;
  config.mode = FidelityMode::kAnalytic;
  AnalyticModelEngine engine(&socket, config, /*sink=*/nullptr);
  engine.AddTenant(1, {0, 1});

  TenantFidelityInput input;
  input.id = 1;
  // Forced mode skips the steadiness gates but can never skip warmup:
  // there are no rates to replay before the first line interval.
  input.controller_steady = false;
  input.steady_horizon = 0;
  engine.PlanTick(/*tick=*/1, /*interval_cycles=*/1e6, {input});
  EXPECT_FALSE(engine.IsAnalytic(1));
}

TEST(AnalyticModelEngineTest, CoverageStartsAtZero) {
  Socket socket(SocketConfig::XeonE5());
  FidelityConfig config;
  config.mode = FidelityMode::kHybrid;
  AnalyticModelEngine engine(&socket, config, /*sink=*/nullptr);
  EXPECT_EQ(engine.analytic_core_ticks(), 0u);
  EXPECT_EQ(engine.line_core_ticks(), 0u);
  EXPECT_EQ(engine.fallback_transitions(), 0u);
  EXPECT_EQ(engine.coverage(), 0.0);
}

HostConfig SteadyHostConfig(FidelityMode mode) {
  HostConfig config;
  config.socket = SocketConfig::XeonE5();
  config.mode = ManagerMode::kDcat;
  config.cycles_per_interval = 1e6;
  config.fidelity.mode = mode;
  return config;
}

void AddSteadyMix(Host& host) {
  auto add = [&](TenantId id, const char* name, const char* spec, uint32_t ways) {
    VmConfig vm;
    vm.id = id;
    vm.name = name;
    vm.vcpus = 2;
    vm.baseline_ways = ways;
    host.AddVm(vm, MakeWorkload(spec, /*seed=*/id * 101 + 7));
  };
  // The MLR working set fits its 3-way allocation, so one scheduling chunk
  // costs less than an interval and the tenant never starves mid-interval
  // (mlr:4M at this interval length ping-pongs Donor<->Reclaim forever —
  // real behavior, but churn-held line fidelity, not a steady mix).
  add(1, "mlr", "mlr:1M", 3);
  add(2, "busy1", "lookbusy", 2);
  add(3, "busy2", "lookbusy", 2);
}

TEST(HybridHostTest, SteadyMixReachesTheFastPath) {
  Host host(SteadyHostConfig(FidelityMode::kHybrid));
  ASSERT_NE(host.fidelity(), nullptr);
  AddSteadyMix(host);
  host.Run(150);
  // The acceptance bar for the bench scenario: most core-ticks analytic.
  EXPECT_GT(host.fidelity()->analytic_core_ticks(), 0u);
  EXPECT_GE(host.fidelity()->coverage(), 0.8)
      << "analytic ticks: " << host.fidelity()->analytic_core_ticks()
      << ", line ticks: " << host.fidelity()->line_core_ticks();
}

TEST(HybridHostTest, WorkloadSwapFallsBackToLine) {
  Host host(SteadyHostConfig(FidelityMode::kHybrid));
  ASSERT_NE(host.fidelity(), nullptr);
  AddSteadyMix(host);
  host.Run(60);
  ASSERT_GT(host.fidelity()->analytic_core_ticks(), 0u);

  const uint64_t fallbacks_before = host.fidelity()->fallback_transitions();
  host.SwapVmWorkload(1, MakeWorkload("mload:30M", /*seed=*/99));
  host.Step();
  // The swap is churn: every analytic tenant must have dropped to line.
  EXPECT_GT(host.fidelity()->fallback_transitions(), fallbacks_before);
  EXPECT_FALSE(host.fidelity()->IsAnalytic(1));
}

TEST(HybridHostTest, LineModeConstructsNoEngine) {
  Host host(SteadyHostConfig(FidelityMode::kLine));
  EXPECT_EQ(host.fidelity(), nullptr);
}

TEST(HybridHostTest, ChaosConfigSilentlyStaysLine) {
  HostConfig config = SteadyHostConfig(FidelityMode::kHybrid);
  config.inject_faults = true;
  Host host(config);
  // The decision-equivalence contract is not enforceable under chaos, so
  // the host must decline the engine rather than risk divergent decisions.
  EXPECT_EQ(host.fidelity(), nullptr);
}

TEST(HybridHostTest, MetricsCountersTrackTheEngine) {
  Host host(SteadyHostConfig(FidelityMode::kHybrid));
  ASSERT_NE(host.fidelity(), nullptr);
  AddSteadyMix(host);
  host.Run(80);
  ASSERT_NE(host.dcat(), nullptr);
  const uint64_t analytic =
      host.dcat()->metrics().counter("sim.analytic_ticks_total").value();
  EXPECT_EQ(analytic, host.fidelity()->analytic_core_ticks());
  const uint64_t fallbacks = host.dcat()->metrics().counter("sim.fallback_total").value();
  EXPECT_EQ(fallbacks, host.fidelity()->fallback_transitions());
}

}  // namespace
}  // namespace dcat
