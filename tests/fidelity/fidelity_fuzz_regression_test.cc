// Fuzzer-gap regression: RandomScenario historically never produced a
// workload swap in the same tick as a tenant arrival/departure, so the
// "capacity-mask change + phase change in one interval" interleaving — the
// exact composition of fallback triggers the hybrid engine must treat as
// one churn event — was unreachable from any seed. The generator now pairs
// a generated swap with an existing add/remove interval when one exists;
// these pins keep that path covered and decision-equivalent.
#include <gtest/gtest.h>

#include <string>

#include "src/telemetry/trace.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {

// Seed 0 expands to removals of tenants 2 and 3 AND a swap of tenant 1 at
// interval 14 (xeon-d); seed 4 pairs an arrival with a swap of the same
// arriving tenant at interval 9. Pinned: a generator change that silently
// un-pairs them must fail here, not in a fuzz sweep months later.
constexpr uint64_t kRemovePlusSwapSeed = 0;
constexpr uint64_t kAddPlusSwapSeed = 4;

bool HasPairedSwap(const Scenario& scenario) {
  for (const ChurnEvent& swap : scenario.churn) {
    if (!swap.swap) {
      continue;
    }
    for (const ChurnEvent& other : scenario.churn) {
      if (!other.swap && other.interval == swap.interval) {
        return true;
      }
    }
  }
  return false;
}

TEST(FidelityFuzzRegressionTest, PinnedSeedsStillPairSwapWithChurn) {
  EXPECT_TRUE(HasPairedSwap(RandomScenario(kRemovePlusSwapSeed)))
      << RandomScenario(kRemovePlusSwapSeed).Describe();
  EXPECT_TRUE(HasPairedSwap(RandomScenario(kAddPlusSwapSeed)))
      << RandomScenario(kAddPlusSwapSeed).Describe();
}

TEST(FidelityFuzzRegressionTest, GeneratorReachesTheInterleavingOften) {
  // Not a one-off: the interleaving must stay a routine part of the corpus.
  int paired = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    if (HasPairedSwap(RandomScenario(seed))) {
      ++paired;
    }
  }
  EXPECT_GE(paired, 10) << "swap churn rarely pairs with add/remove anymore";
}

void ExpectDecisionEquivalent(uint64_t seed) {
  const Scenario scenario = RandomScenario(seed);
  RunOptions line;
  line.cycles_per_interval = 1e6;
  RunOptions hybrid = line;
  hybrid.fidelity.mode = FidelityMode::kHybrid;
  const ScenarioResult line_result = RunScenario(scenario, line);
  const ScenarioResult hybrid_result = RunScenario(scenario, hybrid);
  ASSERT_TRUE(line_result.ok()) << scenario.Describe();
  ASSERT_TRUE(hybrid_result.ok()) << scenario.Describe();
  EXPECT_EQ(DescribeTraceDivergence(ExtractDecisionTrace(line_result.trace),
                                    ExtractDecisionTrace(hybrid_result.trace)),
            "")
      << scenario.Describe();
}

TEST(FidelityFuzzRegressionTest, RemovePlusSwapDecisionEquivalent) {
  ExpectDecisionEquivalent(kRemovePlusSwapSeed);
}

TEST(FidelityFuzzRegressionTest, AddPlusSwapDecisionEquivalent) {
  ExpectDecisionEquivalent(kAddPlusSwapSeed);
}

TEST(FidelityFuzzRegressionTest, SwapScenarioStaysDeterministic) {
  // The swapped-in workload is rebuilt from a derived seed; two runs must
  // still produce byte-identical full traces (this is what lets a crashed
  // fuzz re-run reconstruct the identical mix).
  RunOptions options;
  options.cycles_per_interval = 1e6;
  std::string detail;
  EXPECT_TRUE(
      CheckTraceDeterminism(RandomScenario(kRemovePlusSwapSeed), options, &detail))
      << detail;
}

}  // namespace
}  // namespace dcat
