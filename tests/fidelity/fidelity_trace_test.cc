// Telemetry plumbing for fidelity events: JSONL serialization round-trip,
// reason-name mapping, and the decision-trace projection that the whole
// differential contract hangs on (fidelity lines and float observables
// must never reach ExtractDecisionTrace's output).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/telemetry/trace.h"

namespace dcat {
namespace {

TEST(FidelityTraceTest, ReasonNamesRoundTrip) {
  for (FidelityReason reason :
       {FidelityReason::kSteady, FidelityReason::kWarmup, FidelityReason::kDecision,
        FidelityReason::kMaskChange, FidelityReason::kChurn,
        FidelityReason::kPhaseBoundary, FidelityReason::kResample,
        FidelityReason::kUnsteady, FidelityReason::kForced}) {
    const auto parsed = FidelityReasonFromName(FidelityReasonName(reason));
    ASSERT_TRUE(parsed.has_value()) << FidelityReasonName(reason);
    EXPECT_EQ(*parsed, reason);
  }
  EXPECT_FALSE(FidelityReasonFromName("bogus").has_value());
}

TEST(FidelityTraceTest, FidelityEventRoundTripsThroughJsonl) {
  FidelityEvent event;
  event.tick = 17;
  event.tenant = 3;
  event.analytic = true;
  event.reason = FidelityReason::kSteady;

  std::ostringstream out;
  JsonlTraceWriter writer(&out);
  writer.OnFidelity(event);
  ASSERT_EQ(writer.lines_written(), 1u);

  const auto parsed = ParseTraceLine(out.str());
  ASSERT_TRUE(parsed.has_value()) << out.str();
  ASSERT_EQ(parsed->type, "fidelity");
  ASSERT_TRUE(parsed->fidelity.has_value());
  EXPECT_EQ(parsed->fidelity->tick, 17u);
  EXPECT_EQ(parsed->fidelity->tenant, 3u);
  EXPECT_TRUE(parsed->fidelity->analytic);
  EXPECT_EQ(parsed->fidelity->reason, FidelityReason::kSteady);
}

TEST(FidelityTraceTest, DecisionTraceDropsFidelityLines) {
  FidelityEvent enter;
  enter.tick = 5;
  enter.tenant = 1;
  enter.analytic = true;
  AllocationEvent alloc;
  alloc.tick = 6;
  alloc.tenant = 1;
  alloc.from_ways = 3;
  alloc.to_ways = 4;

  std::ostringstream out;
  JsonlTraceWriter writer(&out);
  writer.OnFidelity(enter);
  writer.OnAllocation(alloc);

  const std::string decisions = ExtractDecisionTrace(out.str());
  EXPECT_EQ(decisions.find("fidelity"), std::string::npos);
  EXPECT_NE(decisions.find("\"type\":\"allocation\""), std::string::npos);
}

TEST(FidelityTraceTest, DecisionTraceDropsFloatObservables) {
  TickEvent tick;
  tick.tick = 9;
  tick.tenant = 2;
  tick.ways = 5;
  tick.ipc = 1.234567;
  tick.norm_ipc = 1.01;
  tick.llc_miss_rate = 0.042;
  std::ostringstream out;
  JsonlTraceWriter writer(&out);
  writer.OnTick(tick);

  const std::string decisions = ExtractDecisionTrace(out.str());
  // The decision fields survive; every float observable is projected away
  // (analytic ticks freeze measurements, so floats may legally differ).
  EXPECT_NE(decisions.find("\"tick\":9"), std::string::npos);
  EXPECT_NE(decisions.find("\"ways\":5"), std::string::npos);
  EXPECT_EQ(decisions.find("ipc"), std::string::npos);
  EXPECT_EQ(decisions.find("miss_rate"), std::string::npos);
  EXPECT_EQ(decisions.find("1.234567"), std::string::npos);
}

TEST(FidelityTraceTest, DecisionTraceKeepsUnparseableLinesVerbatim) {
  const std::string garbled = "{\"type\":\"allocation\" TRUNCATED\n";
  EXPECT_EQ(ExtractDecisionTrace(garbled), garbled);
}

}  // namespace
}  // namespace dcat
