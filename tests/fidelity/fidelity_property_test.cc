// Property: the analytic fast path's *measurements* stay inside the error
// the controller already tolerates. The performance table blends repeated
// observations with an EWMA and tracks the magnitude of its own last
// correction per cache size (PerformanceTable::ErrorBand). Feeding the
// line-level run's normalized IPC series into a fresh table gives the
// model's own noise estimate — the hybrid run's normalized IPC at the same
// (tenant, ways) must fall within that band (plus a small absolute floor
// for sizes the table has only seen once, where the band is zero).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/performance_table.h"
#include "src/telemetry/trace.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {

struct TickRow {
  uint64_t tick = 0;
  TenantId tenant = 0;
  uint32_t ways = 0;
  double norm_ipc = 0.0;
};

std::vector<TickRow> TickRows(const std::string& trace) {
  std::vector<TickRow> rows;
  std::istringstream stream(trace);
  const auto events = ReadTrace(stream);
  EXPECT_TRUE(events.has_value());
  if (!events.has_value()) {
    return rows;
  }
  for (const TraceEvent& event : *events) {
    if (event.tick.has_value()) {
      rows.push_back({event.tick->tick, event.tick->tenant, event.tick->ways,
                      event.tick->norm_ipc});
    }
  }
  return rows;
}

TEST(FidelityPropertyTest, AnalyticCountersWithinTableErrorBand) {
  const Scenario scenario = Fig10Scenario();
  RunOptions line;
  line.cycles_per_interval = 1e6;
  RunOptions hybrid = line;
  hybrid.fidelity.mode = FidelityMode::kHybrid;

  const ScenarioResult line_result = RunScenario(scenario, line);
  const ScenarioResult hybrid_result = RunScenario(scenario, hybrid);
  ASSERT_TRUE(line_result.ok());
  ASSERT_TRUE(hybrid_result.ok());

  const std::vector<TickRow> line_rows = TickRows(line_result.trace);
  const std::vector<TickRow> hybrid_rows = TickRows(hybrid_result.trace);
  ASSERT_FALSE(line_rows.empty());
  // Decision equivalence makes the row sequences congruent: same ticks,
  // same tenants, same ways. (The diff suite enforces this; re-assert the
  // pieces this test leans on.)
  ASSERT_EQ(line_rows.size(), hybrid_rows.size());

  // The line run's own EWMA model, per tenant: norm_ipc observations keyed
  // by allocation size, exactly as the controller's table would record them.
  std::map<TenantId, PerformanceTable> tables;
  for (const TickRow& row : line_rows) {
    if (row.norm_ipc > 0) {
      tables[row.tenant].Record(row.ways, row.norm_ipc);
    }
  }

  // Floor for single-observation sizes (band 0) and float formatting.
  constexpr double kAbsoluteFloor = 0.05;
  size_t compared = 0;
  for (size_t i = 0; i < hybrid_rows.size(); ++i) {
    const TickRow& h = hybrid_rows[i];
    const TickRow& l = line_rows[i];
    ASSERT_EQ(h.tick, l.tick);
    ASSERT_EQ(h.tenant, l.tenant);
    ASSERT_EQ(h.ways, l.ways);
    if (h.norm_ipc <= 0 || l.norm_ipc <= 0) {
      continue;  // baseline-measurement rows carry no normalized IPC yet
    }
    const PerformanceTable& table = tables[h.tenant];
    ASSERT_TRUE(table.Has(h.ways));
    const double band = std::max(kAbsoluteFloor, 3.0 * table.ErrorBand(h.ways));
    EXPECT_NEAR(h.norm_ipc, l.norm_ipc, band)
        << "tick " << h.tick << " tenant " << h.tenant << " ways " << h.ways
        << ": analytic norm_ipc drifted outside the table's own error band";
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(FidelityPropertyTest, ErrorBandConvergesOnSteadyObservations) {
  // Sanity of the yardstick itself: a steady signal shrinks the band, a
  // level shift re-opens it. (Guards against the property above passing
  // because the band quietly became infinite.)
  PerformanceTable table;
  table.Record(4, 1.00);
  table.Record(4, 1.02);
  const double early = table.ErrorBand(4);
  table.Record(4, 1.01);
  table.Record(4, 1.01);
  table.Record(4, 1.01);
  EXPECT_LT(table.ErrorBand(4), early);
  table.Record(4, 1.40);
  EXPECT_GT(table.ErrorBand(4), early);
}

}  // namespace
}  // namespace dcat
