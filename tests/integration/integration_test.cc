// Full-stack scenarios: real simulator, real workloads, real controller.
// Each test is a miniature version of one of the paper's experiments.
#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/host.h"
#include "src/cluster/recorder.h"
#include "src/common/units.h"
#include "src/workloads/microbench.h"
#include "src/workloads/phased.h"

namespace dcat {
namespace {

// A scaled-down Xeon: 8 cores, 8 MiB 16-way LLC (0.5 MiB per way), short
// intervals — the dynamics are identical, the wall-clock is not.
HostConfig TestHostConfig(ManagerMode mode) {
  HostConfig config;
  config.socket.num_cores = 8;
  config.socket.llc_geometry = MakeGeometry(8_MiB, 16);
  config.mode = mode;
  config.cycles_per_interval = 8e6;
  return config;
}

TEST(IntegrationTest, LookbusyNeighborsAreDonorsAndMlrGrows) {
  Host host(TestHostConfig(ManagerMode::kDcat));
  host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<MlrWorkload>(3_MiB));
  host.AddVm(VmConfig{.id = 2, .name = "busy", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<LookbusyWorkload>());
  host.Run(15);
  EXPECT_EQ(host.dcat()->Snapshot(2).category, Category::kDonor);
  EXPECT_EQ(host.dcat()->TenantWays(2), 1u);
  EXPECT_GT(host.dcat()->TenantWays(1), 3u);
}

TEST(IntegrationTest, MlrIpcImprovesAsWaysGrow) {
  Host host(TestHostConfig(ManagerMode::kDcat));
  host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MlrWorkload>(3_MiB));
  host.AddVm(VmConfig{.id = 2, .name = "busy", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  Recorder recorder;
  for (int i = 0; i < 18; ++i) {
    recorder.Record(host.now_seconds(), host.Step());
  }
  const double early = recorder.AvgIpc(1, 1.0, 4.0);
  const double late = recorder.AvgIpc(1, 14.0, 18.0);
  EXPECT_GT(late, early * 1.3) << "growing the allocation must lift IPC";
}

TEST(IntegrationTest, StreamingWorkloadIsDetectedAndShrunk) {
  Host host(TestHostConfig(ManagerMode::kDcat));
  // Working set far beyond the LLC: cyclic, no reuse.
  host.AddVm(VmConfig{.id = 1, .name = "mload", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MloadWorkload>(32_MiB));
  host.AddVm(VmConfig{.id = 2, .name = "busy", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  Recorder recorder;
  for (int i = 0; i < 20; ++i) {
    recorder.Record(host.now_seconds(), host.Step());
  }
  // It must have been cut down to the minimum by the end...
  EXPECT_EQ(host.dcat()->TenantWays(1), 1u);
  EXPECT_EQ(host.dcat()->Snapshot(1).category, Category::kStreaming);
  // ...after having grown toward the streaming threshold first (3x base).
  EXPECT_GE(recorder.PeakWays(1), 4u);
}

TEST(IntegrationTest, PerformanceTableFastPathOnRerun) {
  // Fig. 12: first run discovers the preferred size one way per interval;
  // the rerun after an idle gap jumps straight there.
  Host host(TestHostConfig(ManagerMode::kDcat));
  Vm& vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 2},
                      std::make_unique<MlrWorkload>(3_MiB, /*seed=*/3));
  host.AddVm(VmConfig{.id = 2, .name = "busy", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  host.Run(15);  // discover
  const uint32_t preferred = host.dcat()->TenantWays(1);
  ASSERT_GT(preferred, 2u);

  vm.ReplaceWorkload(std::make_unique<IdleWorkload>());
  host.Run(4);
  ASSERT_EQ(host.dcat()->TenantWays(1), 1u);  // donated while idle

  vm.ReplaceWorkload(std::make_unique<MlrWorkload>(3_MiB, /*seed=*/4));
  Recorder recorder;
  recorder.Record(host.now_seconds(), host.Step());
  recorder.Record(host.now_seconds(), host.Step());
  // Within two intervals of the rerun the allocation is already at (or
  // beyond) the learned preferred size — no way-by-way climb.
  EXPECT_GE(host.dcat()->TenantWays(1), preferred > 2 ? preferred - 1 : 2);
}

TEST(IntegrationTest, BaselineGuaranteeUnderNoisyNeighbor) {
  // The core guarantee: with dCat, a tenant's steady-state IPC is at least
  // what static CAT would give it, even next to a streaming hog.
  // Two streaming hogs (the paper uses two MLOAD-60MB neighbors): static
  // CAT caps MLR, the unmanaged shared cache exposes it to the hogs, and dCat
  // should collect the hogs' useless ways for it.
  auto run_mode = [](ManagerMode mode) {
    Host host(TestHostConfig(mode));
    host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 4},
               std::make_unique<MlrWorkload>(3_MiB, /*seed=*/7));
    host.AddVm(VmConfig{.id = 2, .name = "hog1", .vcpus = 2, .baseline_ways = 4},
               std::make_unique<MloadWorkload>(32_MiB, /*seed=*/8));
    host.AddVm(VmConfig{.id = 3, .name = "hog2", .vcpus = 2, .baseline_ways = 4},
               std::make_unique<MloadWorkload>(32_MiB, /*seed=*/9));
    Recorder recorder;
    for (int i = 0; i < 16; ++i) {
      recorder.Record(host.now_seconds(), host.Step());
    }
    return recorder.AvgIpc(1, 10.0, 16.0);
  };
  const double with_dcat = run_mode(ManagerMode::kDcat);
  const double with_static = run_mode(ManagerMode::kStaticCat);
  const double with_shared = run_mode(ManagerMode::kShared);
  EXPECT_GE(with_dcat, with_static * 0.95);  // never worse than the contract
  EXPECT_GT(with_dcat, with_shared);          // and beats the unmanaged cache
}

TEST(IntegrationTest, PhaseChangeWithinWorkloadTriggersReclaim) {
  Host host(TestHostConfig(ManagerMode::kDcat));
  auto phased = std::make_unique<PhasedWorkload>("phased");
  // Phase 1: compute-bound (donates). Phase 2: memory-bound (reclaims).
  // Lookbusy retires ~28M instructions per 8M-cycle interval, so 250M
  // instructions span enough intervals for the donation to bottom out.
  phased->AddPhase(std::make_unique<LookbusyWorkload>(), 250'000'000);
  phased->AddPhase(std::make_unique<MlrWorkload>(2_MiB), 0);
  host.AddVm(VmConfig{.id = 1, .name = "phased", .vcpus = 2, .baseline_ways = 4},
             std::move(phased));
  host.AddVm(VmConfig{.id = 2, .name = "busy", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());
  Recorder recorder;
  bool donated = false;
  bool reclaimed_after_donate = false;
  for (int i = 0; i < 25; ++i) {
    recorder.Record(host.now_seconds(), host.Step());
    const uint32_t ways = host.dcat()->TenantWays(1);
    if (ways == 1u) {
      donated = true;
    }
    if (donated && ways >= 4u) {
      reclaimed_after_donate = true;
    }
  }
  EXPECT_TRUE(donated) << "compute phase should donate down to 1 way";
  EXPECT_TRUE(reclaimed_after_donate) << "memory phase should reclaim the baseline";
}

TEST(IntegrationTest, TwoReceiversShareSpareWaysFairly) {
  Host host(TestHostConfig(ManagerMode::kDcat));
  host.AddVm(VmConfig{.id = 1, .name = "mlr-a", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MlrWorkload>(3_MiB, 11));
  host.AddVm(VmConfig{.id = 2, .name = "mlr-b", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MlrWorkload>(3_MiB, 12));
  host.AddVm(VmConfig{.id = 3, .name = "busy", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  host.Run(18);
  const uint32_t a = host.dcat()->TenantWays(1);
  const uint32_t b = host.dcat()->TenantWays(2);
  EXPECT_GT(a, 2u);
  EXPECT_GT(b, 2u);
  // Identical twins under max-fairness end within one way of each other.
  EXPECT_LE(a > b ? a - b : b - a, 1u);
}

TEST(IntegrationTest, FifteenTenantStressHoldsInvariants) {
  // The COS limit allows 15 managed tenants on a 16-COS socket; a 16-core
  // host with single-vCPU VMs exercises the full scale with a mixed bag of
  // behaviours. Invariants: masks valid, ways within budget, every tenant
  // at or above one way, no crashes across arrivals and phase churn.
  HostConfig config;
  config.socket.num_cores = 16;
  config.socket.llc_geometry = MakeGeometry(16_MiB, 16);
  config.mode = ManagerMode::kDcat;
  config.cycles_per_interval = 4e6;
  Host host(config);
  for (TenantId id = 1; id <= 15; ++id) {
    std::unique_ptr<Workload> w;
    switch (id % 4) {
      case 0:
        w = std::make_unique<MlrWorkload>(1_MiB, id);
        break;
      case 1:
        w = std::make_unique<LookbusyWorkload>(id);
        break;
      case 2:
        w = std::make_unique<MloadWorkload>(24_MiB, id);
        break;
      default:
        w = std::make_unique<IdleWorkload>();
        break;
    }
    host.AddVm(VmConfig{.id = id, .name = "vm", .vcpus = 1, .baseline_ways = 1},
               std::move(w));
  }
  for (int t = 0; t < 12; ++t) {
    host.Step();
    uint32_t total = 0;
    for (TenantId id = 1; id <= 15; ++id) {
      const uint32_t ways = host.dcat()->TenantWays(id);
      EXPECT_GE(ways, 1u);
      total += ways;
    }
    EXPECT_LE(total, 16u);
  }
}

TEST(IntegrationTest, ControllerInvariantsHoldThroughoutChurn) {
  Host host(TestHostConfig(ManagerMode::kDcat));
  Vm& vm1 = host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 3},
                       std::make_unique<MlrWorkload>(2_MiB, 21));
  host.AddVm(VmConfig{.id = 2, .name = "b", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<MloadWorkload>(24_MiB, 22));
  Vm& vm3 = host.AddVm(VmConfig{.id = 3, .name = "c", .vcpus = 2, .baseline_ways = 3},
                       std::make_unique<IdleWorkload>());
  for (int i = 0; i < 30; ++i) {
    if (i == 10) {
      vm3.ReplaceWorkload(std::make_unique<MlrWorkload>(1_MiB, 23));
    }
    if (i == 20) {
      vm1.ReplaceWorkload(std::make_unique<IdleWorkload>());
    }
    host.Step();
    uint32_t total = 0;
    for (TenantId id : {1u, 2u, 3u}) {
      const uint32_t ways = host.dcat()->TenantWays(id);
      EXPECT_GE(ways, 1u);
      total += ways;
    }
    EXPECT_LE(total, 16u);
  }
}

}  // namespace
}  // namespace dcat
