// LFOC-style clustering policy: pure Decide() tests for the clustering
// contract (equal ways within a group, COS-budget respected, donors and
// streamers pooled), then integration tests driving a real DcatController
// on a dense 16-COS socket hosting more tenants than classes — the
// scenario the policy exists for — under the invariant checker.
#include "src/policies/lfoc_cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/core/dcat_controller.h"
#include "src/policies/policy.h"
#include "src/verify/invariant_checker.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

PolicyTenant Tenant(TenantId id, Category category, uint32_t ways, uint32_t baseline) {
  PolicyTenant t;
  t.id = id;
  t.category = category;
  t.ways = ways;
  t.baseline_ways = baseline;
  t.llc_refs_per_kilo_instruction = 100.0;
  t.llc_miss_rate = 0.10;
  t.has_phase = true;
  t.baseline_valid = true;
  return t;
}

PolicyInputs Inputs(std::vector<PolicyTenant> tenants, uint32_t total_ways = 20,
                    uint32_t num_cos = 16) {
  static const DcatConfig kConfig;
  PolicyInputs inputs;
  inputs.total_ways = total_ways;
  inputs.num_cos = num_cos;
  inputs.config = &kConfig;
  inputs.tenants = std::move(tenants);
  return inputs;
}

// The clustering contract: every member of a group is granted the same
// way count. The controller aborts on a decision that breaks this.
void ExpectEqualWaysWithinGroups(const PolicyDecision& decision) {
  std::map<uint32_t, uint32_t> group_ways;
  for (const TenantDecision& d : decision.tenants) {
    const auto [it, inserted] = group_ways.emplace(d.group, d.ways);
    if (!inserted) {
      EXPECT_EQ(it->second, d.ways) << "group " << d.group;
    }
  }
}

size_t DistinctGroups(const PolicyDecision& decision) {
  std::set<uint32_t> groups;
  for (const TenantDecision& d : decision.tenants) {
    groups.insert(d.group);
  }
  return groups.size();
}

uint32_t DistinctGroupWays(const PolicyDecision& decision) {
  std::map<uint32_t, uint32_t> group_ways;
  for (const TenantDecision& d : decision.tenants) {
    group_ways.emplace(d.group, d.ways);
  }
  uint32_t sum = 0;
  for (const auto& [group, ways] : group_ways) {
    sum += ways;
  }
  return sum;
}

TEST(LfocClusterPolicyTest, DeclaresClustering) {
  EXPECT_TRUE(LfocClusterPolicy{}.ClustersTenants());
  EXPECT_EQ(LfocClusterPolicy{}.name(), "lfoc-cluster");
}

TEST(LfocClusterPolicyTest, DonorsAndStreamersPoolOntoSharedClusters) {
  const LfocClusterPolicy policy;
  const PolicyDecision decision = policy.Decide(Inputs({
      Tenant(1, Category::kKeeper, 5, 3),
      Tenant(2, Category::kDonor, 4, 1),
      Tenant(3, Category::kDonor, 3, 1),
      Tenant(4, Category::kDonor, 2, 1),
      Tenant(5, Category::kStreaming, 4, 1),
      Tenant(6, Category::kStreaming, 3, 1),
  }));
  ASSERT_EQ(decision.tenants.size(), 6u);
  // All donors share one group at the max of their shed demands (4-1=3);
  // all streamers share one group pinned at the CAT floor.
  EXPECT_EQ(decision.tenants[1].group, decision.tenants[2].group);
  EXPECT_EQ(decision.tenants[1].group, decision.tenants[3].group);
  EXPECT_EQ(decision.tenants[1].ways, 3u);
  EXPECT_EQ(decision.tenants[4].group, decision.tenants[5].group);
  EXPECT_EQ(decision.tenants[4].ways, DcatConfig{}.min_ways);
  // The keeper keeps a private cluster, distinct from both pools.
  EXPECT_NE(decision.tenants[0].group, decision.tenants[1].group);
  EXPECT_NE(decision.tenants[0].group, decision.tenants[4].group);
  EXPECT_EQ(decision.tenants[0].ways, 5u);
  ExpectEqualWaysWithinGroups(decision);
}

TEST(LfocClusterPolicyTest, SensitiveTenantsMergeByClosestDemand) {
  const LfocClusterPolicy policy;
  // Only 4 COSes (budget 3, one reserved for the donor pool): two private
  // sensitive clusters, then the 7-way keeper merges with the 8-way one
  // (distance 1) rather than the 2-way one (distance 5).
  const PolicyDecision decision = policy.Decide(Inputs(
      {
          Tenant(1, Category::kKeeper, 8, 3),
          Tenant(2, Category::kKeeper, 2, 2),
          Tenant(3, Category::kKeeper, 7, 3),
          Tenant(4, Category::kDonor, 2, 1),
      },
      /*total_ways=*/20, /*num_cos=*/4));
  EXPECT_EQ(decision.tenants[0].group, decision.tenants[2].group);
  EXPECT_NE(decision.tenants[0].group, decision.tenants[1].group);
  EXPECT_NE(decision.tenants[0].group, decision.tenants[3].group);
  // The merged cluster runs at the max member demand.
  EXPECT_EQ(decision.tenants[0].ways, 8u);
  EXPECT_EQ(decision.tenants[2].ways, 8u);
  ExpectEqualWaysWithinGroups(decision);
}

TEST(LfocClusterPolicyTest, GroupCountNeverExceedsCosBudget) {
  const LfocClusterPolicy policy;
  // 20 keepers on a 16-COS socket: at most 15 groups (COS 0 reserved), and
  // the distinct group ways must fit the socket.
  std::vector<PolicyTenant> tenants;
  for (TenantId id = 1; id <= 20; ++id) {
    tenants.push_back(Tenant(id, Category::kKeeper, 1, 1));
  }
  const PolicyDecision decision = policy.Decide(Inputs(std::move(tenants)));
  EXPECT_LE(DistinctGroups(decision), 15u);
  EXPECT_LE(DistinctGroupWays(decision), 20u);
  ExpectEqualWaysWithinGroups(decision);
}

TEST(LfocClusterPolicyTest, QuarantinedTenantStaysOutOfTheDonorPool) {
  const LfocClusterPolicy policy;
  // A quarantined donor holds its allocation in a private cluster: its
  // sample is garbage, so it must not be dragged down with the pool.
  const PolicyDecision decision = policy.Decide(Inputs({
      Tenant(1, Category::kDonor, 6, 3),
      Tenant(2, Category::kDonor, 4, 1),
  }));
  PolicyInputs inputs = Inputs({
      Tenant(1, Category::kDonor, 6, 3),
      Tenant(2, Category::kDonor, 4, 1),
  });
  inputs.tenants[0].quarantined = true;
  const PolicyDecision quarantined = policy.Decide(inputs);
  EXPECT_NE(quarantined.tenants[0].group, quarantined.tenants[1].group);
  EXPECT_EQ(quarantined.tenants[0].ways, 6u);  // held steady
  // Without the quarantine the two donors share one shed cluster.
  EXPECT_EQ(decision.tenants[0].group, decision.tenants[1].group);
}

TEST(LfocClusterPolicyTest, FitShrinksClustersNeverBelowFloors) {
  const LfocClusterPolicy policy;
  // Demands exceed a small socket: the fit pass shrinks the largest
  // surplus but no tenant lands below min(baseline, demand).
  const PolicyDecision decision = policy.Decide(Inputs(
      {
          Tenant(1, Category::kKeeper, 8, 3),
          Tenant(2, Category::kKeeper, 6, 3),
          Tenant(3, Category::kReclaim, 1, 4),
      },
      /*total_ways=*/12));
  EXPECT_LE(DistinctGroupWays(decision), 12u);
  EXPECT_GE(decision.tenants[2].ways, 4u);  // the reclaim's baseline held
  ExpectEqualWaysWithinGroups(decision);
}

TEST(LfocClusterPolicyTest, DecideIsPureAndDeterministic) {
  const LfocClusterPolicy policy;
  std::vector<PolicyTenant> tenants;
  for (TenantId id = 1; id <= 18; ++id) {
    const Category category = id % 3 == 0   ? Category::kDonor
                              : id % 5 == 0 ? Category::kStreaming
                                            : Category::kKeeper;
    tenants.push_back(Tenant(id, category, 1 + id % 4, 1));
  }
  const PolicyInputs inputs = Inputs(std::move(tenants));
  const PolicyDecision first = policy.Decide(inputs);
  const PolicyDecision second = policy.Decide(inputs);
  ASSERT_EQ(first.tenants.size(), second.tenants.size());
  EXPECT_EQ(first.reclaims, second.reclaims);
  for (size_t i = 0; i < first.tenants.size(); ++i) {
    EXPECT_EQ(first.tenants[i].ways, second.tenants[i].ways) << i;
    EXPECT_EQ(first.tenants[i].group, second.tenants[i].group) << i;
    EXPECT_EQ(first.tenants[i].category, second.tenants[i].category) << i;
  }
}

// --- integration: a dense socket through the real controller ------------

struct DenseRun {
  std::vector<uint32_t> final_ways;  // by tenant index
  std::vector<uint8_t> final_cos;
  size_t distinct_cos = 0;
  bool invariants_ok = false;
  std::string report;
  uint32_t allocated_ways = 0;
  uint32_t total_ways = 0;
};

// Admits `sensitive + busy` single-core tenants (sensitive ones listed
// first, with `sensitive_baseline` contracted ways) and runs `ticks`
// control intervals under the invariant checker.
DenseRun RunDenseSocket(uint32_t sensitive, uint32_t sensitive_baseline, uint32_t busy,
                        int ticks) {
  FakePqos pqos(/*num_ways=*/20, /*num_cos=*/16, /*num_cores=*/32);
  DcatConfig config;
  config.policy = "lfoc-cluster";
  DcatController controller(&pqos, &pqos, config);
  EXPECT_TRUE(controller.clustered());

  InvariantChecker checker(
      InvariantOptions{.total_ways = pqos.NumWays(), .min_ways = config.min_ways});
  checker.AttachController(&controller, &pqos);
  controller.AddEventSink(&checker);

  const uint32_t n = sensitive + busy;
  for (TenantId id = 1; id <= n; ++id) {
    const uint32_t baseline = id <= sensitive ? sensitive_baseline : 1;
    const AdmitStatus status =
        controller.AddTenant(TenantSpec{.id = id,
                                        .name = id <= sensitive ? "mlr" : "busy",
                                        .cores = {static_cast<uint16_t>(id - 1)},
                                        .baseline_ways = baseline});
    EXPECT_EQ(status, AdmitStatus::kOk) << "tenant " << id;
    checker.RegisterTenant(id, baseline);
  }

  for (int tick = 0; tick < ticks; ++tick) {
    for (TenantId id = 1; id <= n; ++id) {
      const uint16_t core = static_cast<uint16_t>(id - 1);
      if (id <= sensitive) {
        // Cache-sensitive with a saturating utility curve: big IPC gains up
        // to 3 ways, nothing beyond — so growth stops well short of the
        // 3x-baseline streaming gate and the tenant settles as a Keeper.
        // The 40% miss rate keeps it from ever being read as a donor.
        const uint32_t ways = controller.TenantWays(id);
        const double ipc = ways == 1 ? 0.45 : ways == 2 ? 0.75 : 0.9;
        pqos.Feed(core, ipc, /*mem_per_ins=*/0.33, /*llc_per_ki=*/300,
                  /*miss_rate=*/0.4);
      } else {
        // Compute-bound: barely touches the LLC, donates down to the floor.
        pqos.Feed(core, /*ipc=*/1.2, /*mem_per_ins=*/0.05, /*llc_per_ki=*/0.5,
                  /*miss_rate=*/0.1);
      }
    }
    controller.Tick();
  }
  checker.Finish();

  DenseRun run;
  run.invariants_ok = checker.ok();
  run.report = checker.Report();
  const ControllerSnapshot snap = controller.Snapshot();
  run.allocated_ways = snap.allocated_ways;
  run.total_ways = snap.total_ways;
  std::set<uint8_t> cos_seen;
  for (const TenantSnapshot& tenant : snap.tenants) {
    run.final_ways.push_back(tenant.ways);
    run.final_cos.push_back(tenant.cos);
    cos_seen.insert(tenant.cos);
  }
  run.distinct_cos = cos_seen.size();
  return run;
}

TEST(LfocClusterIntegrationTest, TwentyTenantsOnSixteenCosStaysClean) {
  // More tenants than the classic one-COS-per-tenant path could ever host
  // on a 16-COS socket — the clustering policy's reason to exist.
  const DenseRun run = RunDenseSocket(/*sensitive=*/4, /*sensitive_baseline=*/1,
                                      /*busy=*/16, /*ticks=*/15);
  ASSERT_EQ(run.final_ways.size(), 20u);
  EXPECT_TRUE(run.invariants_ok) << run.report;
  // 20 tenants necessarily share: at most 15 managed COSes are available.
  EXPECT_LE(run.distinct_cos, 15u);
  EXPECT_LT(run.distinct_cos, run.final_ways.size());
  // Distinct-COS accounting stays within the socket.
  EXPECT_LE(run.allocated_ways, run.total_ways);
  for (uint8_t cos : run.final_cos) {
    EXPECT_NE(cos, 0) << "tenant left on the unmanaged default COS";
  }
}

TEST(LfocClusterIntegrationTest, ClusterBaselinesArePreserved) {
  // Two tenants contract 2-way baselines and run cache-hungry among 16
  // busy donors. Whatever cluster they land in, the reclaim guarantee
  // must lift them back to at least their contracted ways.
  const DenseRun run = RunDenseSocket(/*sensitive=*/2, /*sensitive_baseline=*/2,
                                      /*busy=*/16, /*ticks=*/15);
  ASSERT_EQ(run.final_ways.size(), 18u);
  EXPECT_TRUE(run.invariants_ok) << run.report;
  EXPECT_GE(run.final_ways[0], 2u);
  EXPECT_GE(run.final_ways[1], 2u);
}

TEST(LfocClusterIntegrationTest, DenseSocketRunsAreDeterministic) {
  const DenseRun first = RunDenseSocket(4, 1, 16, 12);
  const DenseRun second = RunDenseSocket(4, 1, 16, 12);
  EXPECT_EQ(first.final_ways, second.final_ways);
  EXPECT_EQ(first.final_cos, second.final_cos);
}

TEST(LfocClusterIntegrationTest, AdmissionStillEnforcesBaselineBudget) {
  // Clustering lifts the COS-count ceiling, not the contracted-ways one: a
  // 21st single-way baseline on a 20-way socket is oversubscription.
  FakePqos pqos(/*num_ways=*/20, /*num_cos=*/16, /*num_cores=*/32);
  DcatConfig config;
  config.policy = "lfoc-cluster";
  DcatController controller(&pqos, &pqos, config);
  for (TenantId id = 1; id <= 20; ++id) {
    ASSERT_EQ(controller.AddTenant(
                  TenantSpec{.id = id,
                             .name = "vm",
                             .cores = {static_cast<uint16_t>(id - 1)},
                             .baseline_ways = 1}),
              AdmitStatus::kOk);
  }
  EXPECT_EQ(controller.AddTenant(TenantSpec{
                .id = 21, .name = "vm", .cores = {20}, .baseline_ways = 1}),
            AdmitStatus::kOversubscribed);
}

}  // namespace
}  // namespace dcat
