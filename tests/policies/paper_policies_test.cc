// Unit tests for the paper's two policies on the pure Decide() interface:
// hand-built PolicyInputs in, a full PolicyDecision out, no controller or
// backend involved. The purity contract (same inputs -> same decision, no
// retained state) is what these tests lean on — and what they enforce.
#include "src/policies/paper_policies.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/performance_table.h"
#include "src/policies/policy.h"

namespace dcat {
namespace {

// A tenant in the steady, measured state most passes expect: phase known,
// baseline established, currently holding `ways`.
PolicyTenant Tenant(TenantId id, Category category, uint32_t ways, uint32_t baseline) {
  PolicyTenant t;
  t.id = id;
  t.category = category;
  t.ways = ways;
  t.baseline_ways = baseline;
  t.llc_refs_per_kilo_instruction = 100.0;  // well above the donor-idle bar
  t.llc_miss_rate = 0.10;
  t.has_phase = true;
  t.baseline_valid = true;
  return t;
}

PolicyInputs Inputs(std::vector<PolicyTenant> tenants, uint32_t total_ways = 20) {
  static const DcatConfig kConfig;
  PolicyInputs inputs;
  inputs.total_ways = total_ways;
  inputs.num_cos = 16;
  inputs.config = &kConfig;
  inputs.tenants = std::move(tenants);
  return inputs;
}

void ExpectSameDecision(const PolicyDecision& a, const PolicyDecision& b) {
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  EXPECT_EQ(a.reclaims, b.reclaims);
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].ways, b.tenants[i].ways) << "tenant " << i;
    EXPECT_EQ(a.tenants[i].category, b.tenants[i].category) << "tenant " << i;
    EXPECT_EQ(a.tenants[i].measuring_baseline, b.tenants[i].measuring_baseline) << i;
    EXPECT_EQ(a.tenants[i].grow_denied, b.tenants[i].grow_denied) << "tenant " << i;
    EXPECT_EQ(a.tenants[i].reason, b.tenants[i].reason) << "tenant " << i;
    EXPECT_EQ(a.tenants[i].group, b.tenants[i].group) << "tenant " << i;
  }
}

TEST(PaperPolicyTest, Pass1DemandsFollowCategories) {
  const MaxFairnessPolicy policy;
  std::vector<PolicyTenant> tenants = {
      Tenant(1, Category::kReclaim, 1, 4),    // no table yet: jump to baseline
      Tenant(2, Category::kDonor, 5, 3),      // active donor: shed one way
      Tenant(3, Category::kStreaming, 4, 3),  // pinned at the CAT floor
      Tenant(4, Category::kKeeper, 3, 3),     // holds steady
  };
  tenants[0].table = nullptr;
  tenants[0].baseline_valid = false;
  const PolicyDecision decision = policy.Decide(Inputs(tenants));
  ASSERT_EQ(decision.tenants.size(), 4u);
  EXPECT_EQ(decision.tenants[0].ways, 4u);
  EXPECT_TRUE(decision.tenants[0].measuring_baseline);
  EXPECT_EQ(decision.tenants[0].reason, AllocationReason::kReclaim);
  EXPECT_EQ(decision.tenants[1].ways, 4u);
  EXPECT_EQ(decision.tenants[1].reason, AllocationReason::kDonate);
  EXPECT_EQ(decision.tenants[2].ways, DcatConfig{}.min_ways);
  EXPECT_EQ(decision.tenants[3].ways, 3u);
  EXPECT_EQ(decision.reclaims, 1u);
}

TEST(PaperPolicyTest, ReclaimWithKnownPhaseTakesPreferredWays) {
  const MaxFairnessPolicy policy;
  PerformanceTable table;
  table.Record(4, 1.0);
  table.Record(6, 1.20);  // +20% at 6 ways
  table.Record(8, 1.21);  // < 5% further: preferred stops at 6
  PolicyTenant t = Tenant(1, Category::kReclaim, 1, 4);
  t.table = &table;
  const PolicyDecision decision = policy.Decide(Inputs({t}));
  // Fig. 12 fast path: jump to the table's preferred size and re-enter as
  // a Keeper, no baseline re-measurement.
  EXPECT_EQ(decision.tenants[0].ways, 6u);
  EXPECT_EQ(decision.tenants[0].category, Category::kKeeper);
  EXPECT_FALSE(decision.tenants[0].measuring_baseline);
  EXPECT_EQ(decision.reclaims, 1u);
}

TEST(PaperPolicyTest, QuarantinedTenantHoldsSteady) {
  const MaxFairnessPolicy policy;
  PolicyTenant t = Tenant(1, Category::kDonor, 6, 3);
  t.quarantined = true;
  const PolicyDecision decision = policy.Decide(Inputs({t}));
  EXPECT_EQ(decision.tenants[0].ways, 6u);
  EXPECT_FALSE(decision.tenants[0].reason.has_value());
}

TEST(PaperPolicyTest, Pass2ShrinksLargestSurplusToFitReclaims) {
  const MaxFairnessPolicy policy;
  // 20-way socket: a keeper grown to 14 plus a keeper at 4 leaves nothing
  // for the reclaim demanding its 6-way baseline. The fit pass taxes the
  // largest over-baseline surplus (the 14-way keeper) down to 10.
  std::vector<PolicyTenant> tenants = {
      Tenant(1, Category::kKeeper, 14, 3),
      Tenant(2, Category::kKeeper, 4, 3),
      Tenant(3, Category::kReclaim, 1, 6),
  };
  tenants[2].baseline_valid = false;
  const PolicyDecision decision = policy.Decide(Inputs(tenants));
  EXPECT_EQ(decision.tenants[0].ways, 10u);
  EXPECT_EQ(decision.tenants[0].reason, AllocationReason::kShrinkForReclaim);
  EXPECT_EQ(decision.tenants[1].ways, 4u);
  EXPECT_EQ(decision.tenants[2].ways, 6u);
}

TEST(PaperPolicyTest, Pass3GrowsReceiversFromPoolAndDeniesWhenDry) {
  const MaxFairnessPolicy policy;
  // 10-way socket, 9 in use: one way in the pool for two hungry receivers.
  // Tenant order decides who gets it; the loser is marked grow_denied.
  std::vector<PolicyTenant> tenants = {
      Tenant(1, Category::kReceiver, 5, 3),
      Tenant(2, Category::kReceiver, 4, 3),
  };
  const PolicyDecision decision = policy.Decide(Inputs(tenants, /*total_ways=*/10));
  EXPECT_EQ(decision.tenants[0].ways, 6u);
  EXPECT_EQ(decision.tenants[0].reason, AllocationReason::kGrowFromPool);
  EXPECT_FALSE(decision.tenants[0].grow_denied);
  EXPECT_EQ(decision.tenants[1].ways, 4u);
  EXPECT_TRUE(decision.tenants[1].grow_denied);
}

TEST(PaperPolicyTest, UnknownsOutrankReceiversForPoolWays) {
  const MaxFairnessPolicy policy;
  std::vector<PolicyTenant> tenants = {
      Tenant(1, Category::kReceiver, 5, 3),
      Tenant(2, Category::kUnknown, 4, 3),  // later in order, higher class
  };
  const PolicyDecision decision = policy.Decide(Inputs(tenants, /*total_ways=*/10));
  EXPECT_EQ(decision.tenants[1].ways, 5u);
  EXPECT_EQ(decision.tenants[1].reason, AllocationReason::kGrowFromPool);
  EXPECT_EQ(decision.tenants[0].ways, 5u);
  EXPECT_TRUE(decision.tenants[0].grow_denied);
}

TEST(PaperPolicyTest, NonClusteringPoliciesReturnSingletonGroups) {
  for (const Policy* policy :
       std::initializer_list<const Policy*>{new MaxFairnessPolicy, new MaxPerformancePolicy}) {
    const PolicyDecision decision = policy->Decide(Inputs({
        Tenant(1, Category::kKeeper, 3, 3),
        Tenant(2, Category::kKeeper, 3, 3),
        Tenant(3, Category::kDonor, 3, 3),
    }));
    EXPECT_EQ(decision.tenants[0].group, 0u);
    EXPECT_EQ(decision.tenants[1].group, 1u);
    EXPECT_EQ(decision.tenants[2].group, 2u);
    delete policy;
  }
}

TEST(PaperPolicyTest, MaxPerformanceMatchesFairnessWithoutTables) {
  // §3.5: the DP rebalance only engages once at least two candidates have
  // populated tables; before that the two policies are the same passes.
  const PolicyInputs inputs = Inputs({
      Tenant(1, Category::kReceiver, 5, 3),
      Tenant(2, Category::kKeeper, 6, 3),
      Tenant(3, Category::kDonor, 4, 3),
  });
  ExpectSameDecision(MaxFairnessPolicy{}.Decide(inputs), MaxPerformancePolicy{}.Decide(inputs));
}

TEST(PaperPolicyTest, MaxPerformanceRebalancesTowardSteeperTable) {
  const MaxPerformancePolicy policy;
  // Two keepers holding 6+6 of a fully-used 12-way socket. Tenant 1's table
  // is flat above 4 ways; tenant 2 gains 30% at 8. Predicted total IPC is
  // higher at (4, 8): the DP moves two ways across.
  PerformanceTable flat;
  flat.Record(4, 1.00);
  flat.Record(6, 1.01);
  flat.Record(8, 1.01);
  PerformanceTable steep;
  steep.Record(4, 0.70);
  steep.Record(6, 0.85);
  steep.Record(8, 1.15);
  PolicyTenant a = Tenant(1, Category::kKeeper, 6, 4);
  a.table = &flat;
  PolicyTenant b = Tenant(2, Category::kKeeper, 6, 4);
  b.table = &steep;
  const PolicyDecision decision = policy.Decide(Inputs({a, b}, /*total_ways=*/12));
  EXPECT_EQ(decision.tenants[0].ways, 4u);
  EXPECT_EQ(decision.tenants[1].ways, 8u);
  // max-fairness leaves the same inputs alone.
  const PolicyDecision fair = MaxFairnessPolicy{}.Decide(Inputs({a, b}, /*total_ways=*/12));
  EXPECT_EQ(fair.tenants[0].ways, 6u);
  EXPECT_EQ(fair.tenants[1].ways, 6u);
}

TEST(PaperPolicyTest, MaxPerformanceNeverDropsBelowBaseline) {
  const MaxPerformancePolicy policy;
  // Tenant 1's table says it would lose little at 2 ways — but 4 is its
  // contracted baseline, so the DP must not offer sizes below it.
  PerformanceTable flat;
  flat.Record(2, 0.99);
  flat.Record(4, 1.00);
  flat.Record(6, 1.01);
  PerformanceTable steep;
  steep.Record(4, 0.60);
  steep.Record(6, 0.90);
  steep.Record(8, 1.20);
  PolicyTenant a = Tenant(1, Category::kKeeper, 6, 4);
  a.table = &flat;
  PolicyTenant b = Tenant(2, Category::kKeeper, 6, 4);
  b.table = &steep;
  const PolicyDecision decision = policy.Decide(Inputs({a, b}, /*total_ways=*/12));
  EXPECT_GE(decision.tenants[0].ways, 4u);
  EXPECT_GE(decision.tenants[1].ways, 4u);
}

TEST(PaperPolicyTest, DecideIsPure) {
  // Same inputs through the same policy object twice: identical decisions,
  // no state carried across calls. Run a shape that exercises every pass.
  PerformanceTable steep;
  steep.Record(3, 0.8);
  steep.Record(5, 1.1);
  PolicyTenant keeper = Tenant(1, Category::kKeeper, 8, 3);
  keeper.table = &steep;
  const PolicyInputs inputs = Inputs({
      keeper,
      Tenant(2, Category::kReclaim, 1, 5),
      Tenant(3, Category::kReceiver, 4, 3),
      Tenant(4, Category::kStreaming, 4, 3),
      Tenant(5, Category::kDonor, 6, 3),
  });
  for (const Policy* policy :
       std::initializer_list<const Policy*>{new MaxFairnessPolicy, new MaxPerformancePolicy}) {
    const PolicyDecision first = policy->Decide(inputs);
    const PolicyDecision second = policy->Decide(inputs);
    ExpectSameDecision(first, second);
    delete policy;
  }
}

}  // namespace
}  // namespace dcat
