// The PolicyRegistry is the single source of truth for "what policies
// exist": these tests pin the built-in set, the legacy-spelling aliases,
// and the error behaviour every config/CLI surface relies on.
#include "src/policies/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace dcat {
namespace {

TEST(PolicyRegistryTest, BuiltInsAreRegistered) {
  PolicyRegistry& registry = PolicyRegistry::Global();
  EXPECT_TRUE(registry.Known("max-fairness"));
  EXPECT_TRUE(registry.Known("max-performance"));
  EXPECT_TRUE(registry.Known("lfoc-cluster"));
  EXPECT_FALSE(registry.Known("bogus"));
}

TEST(PolicyRegistryTest, NamesAreSortedAndListed) {
  const std::vector<std::string> names = PolicyRegistry::Global().Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* builtin : {"lfoc-cluster", "max-fairness", "max-performance"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end()) << builtin;
  }
  // NamesList() is what error messages print; every name must appear in it.
  const std::string list = PolicyRegistry::Global().NamesList();
  for (const std::string& name : names) {
    EXPECT_NE(list.find(name), std::string::npos) << name;
  }
}

TEST(PolicyRegistryTest, LegacySpellingsCanonicalize) {
  EXPECT_EQ(PolicyRegistry::CanonicalName("fair"), "max-fairness");
  EXPECT_EQ(PolicyRegistry::CanonicalName("max_fairness"), "max-fairness");
  EXPECT_EQ(PolicyRegistry::CanonicalName("maxperf"), "max-performance");
  EXPECT_EQ(PolicyRegistry::CanonicalName("max_performance"), "max-performance");
  EXPECT_EQ(PolicyRegistry::CanonicalName("lfoc"), "lfoc-cluster");
  EXPECT_EQ(PolicyRegistry::CanonicalName("lfoc_cluster"), "lfoc-cluster");
  // Canonical names and unknown spellings pass through unchanged.
  EXPECT_EQ(PolicyRegistry::CanonicalName("max-fairness"), "max-fairness");
  EXPECT_EQ(PolicyRegistry::CanonicalName("bogus"), "bogus");
}

TEST(PolicyRegistryTest, CreateResolvesAliasesAndRejectsUnknown) {
  PolicyRegistry& registry = PolicyRegistry::Global();
  const std::unique_ptr<Policy> by_alias = registry.Create("fair");
  ASSERT_NE(by_alias, nullptr);
  EXPECT_EQ(by_alias->name(), "max-fairness");
  const std::unique_ptr<Policy> canonical = registry.Create("lfoc-cluster");
  ASSERT_NE(canonical, nullptr);
  EXPECT_EQ(canonical->name(), "lfoc-cluster");
  EXPECT_EQ(registry.Create("bogus"), nullptr);
}

TEST(PolicyRegistryTest, ClusteringFlagMatchesPolicy) {
  PolicyRegistry& registry = PolicyRegistry::Global();
  EXPECT_FALSE(registry.Create("max-fairness")->ClustersTenants());
  EXPECT_FALSE(registry.Create("max-performance")->ClustersTenants());
  EXPECT_TRUE(registry.Create("lfoc-cluster")->ClustersTenants());
}

class DummyPolicy : public Policy {
 public:
  std::string name() const override { return "zz-dummy"; }
  PolicyDecision Decide(const PolicyInputs& inputs) const override {
    PolicyDecision decision;
    decision.tenants.resize(inputs.tenants.size());
    return decision;
  }
};

std::unique_ptr<Policy> MakeDummy() { return std::make_unique<DummyPolicy>(); }

TEST(PolicyRegistryTest, RegisterRejectsTakenNamesAndAcceptsNew) {
  PolicyRegistry& registry = PolicyRegistry::Global();
  // A taken name is refused without clobbering the existing factory.
  EXPECT_FALSE(registry.Register("max-fairness", &MakeDummy));
  EXPECT_EQ(registry.Create("max-fairness")->name(), "max-fairness");
  // A new name becomes visible through Known/Create/Names.
  EXPECT_TRUE(registry.Register("zz-dummy", &MakeDummy));
  EXPECT_TRUE(registry.Known("zz-dummy"));
  EXPECT_EQ(registry.Create("zz-dummy")->name(), "zz-dummy");
  const std::vector<std::string> names = registry.Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "zz-dummy"), names.end());
  // Second registration of the same name is refused.
  EXPECT_FALSE(registry.Register("zz-dummy", &MakeDummy));
}

}  // namespace
}  // namespace dcat
