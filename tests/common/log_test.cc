#include "src/common/log.h"

#include <gtest/gtest.h>

namespace dcat {
namespace {

TEST(LogTest, LevelRoundTrips) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old_level);
}

TEST(LogTest, SuppressedMessagesDoNotCrash) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  DCAT_LOG(kError) << "this must be swallowed " << 42;
  DCAT_LOG(kDebug) << "so must this";
  SetLogLevel(old_level);
}

TEST(LogTest, StreamingAcceptsMixedTypes) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  DCAT_LOG(kInfo) << "int=" << 1 << " double=" << 2.5 << " str=" << std::string("x");
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace dcat
