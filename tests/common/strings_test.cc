#include "src/common/strings.h"

#include <gtest/gtest.h>

namespace dcat {
namespace {

TEST(SplitTest, SplitsOnEveryOccurrence) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("no-sep", ','), (std::vector<std::string>{"no-sep"}));
}

TEST(SplitTest, SeparatorOnlyInputYieldsAllEmptyTokens) {
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split(",,,", ','), (std::vector<std::string>{"", "", "", ""}));
}

TEST(SplitFirstTest, SplitsAtFirstSeparatorOnly) {
  EXPECT_EQ(SplitFirst("trace:a:b", ':'), (std::pair<std::string, std::string>{"trace", "a:b"}));
  EXPECT_EQ(SplitFirst("key=value", '='), (std::pair<std::string, std::string>{"key", "value"}));
  EXPECT_EQ(SplitFirst("lookbusy", ':'), (std::pair<std::string, std::string>{"lookbusy", ""}));
  EXPECT_EQ(SplitFirst("=v", '='), (std::pair<std::string, std::string>{"", "v"}));
}

TEST(SplitFirstTest, DegenerateSeparatorPositions) {
  EXPECT_EQ(SplitFirst("a=", '='), (std::pair<std::string, std::string>{"a", ""}));
  EXPECT_EQ(SplitFirst("=", '='), (std::pair<std::string, std::string>{"", ""}));
  EXPECT_EQ(SplitFirst("", '='), (std::pair<std::string, std::string>{"", ""}));
}

TEST(TrimTest, StripsSurroundingWhitespace) {
  EXPECT_EQ(Trim("  a b \t"), "a b");
  EXPECT_EQ(Trim("line\r"), "line");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseUint64Test, AcceptsPlainDecimal) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsGarbage) {
  uint64_t v = 99;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("abc", &v));
  EXPECT_FALSE(ParseUint64("12abc", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("+5", &v));
  EXPECT_FALSE(ParseUint64(" 7", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_EQ(v, 99u);  // untouched on failure
}

TEST(ParseUint64Test, AcceptsLeadingZeros) {
  // strtoull with base 10 treats leading zeros as plain decimal digits.
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("007", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_TRUE(ParseUint64("00", &v));
  EXPECT_EQ(v, 0u);
}

TEST(ParseUint64Test, RejectsNonDigitSuffixes) {
  uint64_t v = 99;
  EXPECT_FALSE(ParseUint64("7 ", &v));
  EXPECT_FALSE(ParseUint64("7\n", &v));
  EXPECT_FALSE(ParseUint64("7\t", &v));
  EXPECT_FALSE(ParseUint64("1.0", &v));
  EXPECT_FALSE(ParseUint64("0x10", &v));
  EXPECT_EQ(v, 99u);
}

TEST(ParseUint64Test, RejectsOverflowFarBeyondRange) {
  // strtoull clamps with ERANGE; the wrapper must report failure, not the
  // clamped value, even when the input is many digits past the limit.
  uint64_t v = 42;
  EXPECT_FALSE(ParseUint64("99999999999999999999999999999999", &v));
  EXPECT_EQ(v, 42u);
}

TEST(ParseUint32Test, RejectsValuesAbove32Bits) {
  uint32_t v = 0;
  EXPECT_TRUE(ParseUint32("4294967295", &v));
  EXPECT_EQ(v, UINT32_MAX);
  EXPECT_FALSE(ParseUint32("4294967296", &v));
  EXPECT_FALSE(ParseUint32("18446744073709551615", &v));  // fits u64, not u32
  EXPECT_FALSE(ParseUint32("abc", &v));
}

TEST(ParseUint32Test, FailureLeavesOutputUntouched) {
  uint32_t v = 7;
  EXPECT_FALSE(ParseUint32("4294967296", &v));
  EXPECT_FALSE(ParseUint32("-1", &v));
  EXPECT_FALSE(ParseUint32("12x", &v));
  EXPECT_EQ(v, 7u);
}

TEST(ParseDoubleTest, AcceptsDecimalsRejectsTrailingGarbage) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("0.03", &v));
  EXPECT_DOUBLE_EQ(v, 0.03);
  EXPECT_TRUE(ParseDouble("-2.5", &v));
  EXPECT_DOUBLE_EQ(v, -2.5);
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(ParseDoubleTest, AcceptsScientificNotationAndBareDot) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("5e6", &v));
  EXPECT_DOUBLE_EQ(v, 5e6);
  EXPECT_TRUE(ParseDouble(".5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_FALSE(ParseDouble(".", &v));
  EXPECT_FALSE(ParseDouble("1e", &v));  // dangling exponent
}

}  // namespace
}  // namespace dcat
