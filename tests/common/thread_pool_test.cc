#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dcat {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, RespectsBeginOffset) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.ParallelFor(0, ids.size(), [&](size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ThreadPoolTest, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](size_t i) {
                         if (i == 42) {
                           throw std::runtime_error("boom");
                         }
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  // The rest of the range still ran; the pool is reusable afterwards.
  EXPECT_EQ(completed.load(), 99);
  std::atomic<int> again{0};
  pool.ParallelFor(0, 10, [&](size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForIsRejected) {
  ThreadPool pool(4);
  std::atomic<int> nested_throws{0};
  pool.ParallelFor(0, 8, [&](size_t) {
    try {
      pool.ParallelFor(0, 2, [](size_t) {});
    } catch (const std::logic_error&) {
      nested_throws.fetch_add(1);
    }
  });
  EXPECT_EQ(nested_throws.load(), 8);
}

TEST(ThreadPoolTest, NestedCallIntoAnotherPoolIsAlsoRejected) {
  // The restriction is per-thread, not per-pool: a task must never block
  // on any pool, or a fleet of pools could still deadlock each other.
  ThreadPool outer(2);
  ThreadPool inner(2);
  EXPECT_THROW(outer.ParallelFor(0, 1, [&](size_t) { inner.ParallelFor(0, 1, [](size_t) {}); }),
               std::logic_error);
}

TEST(ThreadPoolTest, ZeroRequestsDefaultJobs) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  uint64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, 64, [&](size_t i) { sum.fetch_add(i + 1); });
    total += sum.load();
  }
  EXPECT_EQ(total, 50ull * (64ull * 65ull / 2));
}

TEST(ThreadPoolTest, SharedPoolIsAGlobalSingleton) {
  ThreadPool& a = SharedThreadPool();
  ThreadPool& b = SharedThreadPool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  a.ParallelFor(0, 16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace dcat
