#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcat {
namespace {

TEST(RunningStatsTest, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, NegativeValuesTrackMinMax) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(2.0);
  s.Add(-10.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(PercentileTrackerTest, EmptyReturnsZero) {
  PercentileTracker t;
  EXPECT_EQ(t.Percentile(0.5), 0.0);
  EXPECT_EQ(t.Mean(), 0.0);
}

TEST(PercentileTrackerTest, MedianOfOddCount) {
  PercentileTracker t;
  for (double v : {3.0, 1.0, 2.0}) {
    t.Add(v);
  }
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 2.0);
}

TEST(PercentileTrackerTest, InterpolatesBetweenOrderStatistics) {
  PercentileTracker t;
  t.Add(0.0);
  t.Add(10.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.25), 2.5);
}

TEST(PercentileTrackerTest, ExtremesAreMinAndMax) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) {
    t.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(t.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.0), 100.0);
}

TEST(PercentileTrackerTest, P99OnUniformRamp) {
  PercentileTracker t;
  for (int i = 0; i < 1000; ++i) {
    t.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(t.Percentile(0.99), 989.0, 1.0);
}

TEST(PercentileTrackerTest, ClampsOutOfRangeQuantiles) {
  PercentileTracker t;
  t.Add(1.0);
  t.Add(2.0);
  EXPECT_DOUBLE_EQ(t.Percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.5), 2.0);
}

TEST(PercentileTrackerTest, MeanMatchesArithmeticMean) {
  PercentileTracker t;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    t.Add(v);
  }
  EXPECT_DOUBLE_EQ(t.Mean(), 2.5);
}

TEST(GeometricMeanTest, EmptyIsZero) { EXPECT_EQ(GeometricMean({}), 0.0); }

TEST(GeometricMeanTest, SingleValue) { EXPECT_DOUBLE_EQ(GeometricMean({4.0}), 4.0); }

TEST(GeometricMeanTest, KnownValue) {
  EXPECT_NEAR(GeometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(GeometricMeanTest, IsInvariantToOrder) {
  EXPECT_DOUBLE_EQ(GeometricMean({1.0, 2.0, 3.0}), GeometricMean({3.0, 1.0, 2.0}));
}

}  // namespace
}  // namespace dcat
