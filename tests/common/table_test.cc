#include "src/common/table.h"

#include <gtest/gtest.h>

namespace dcat {
namespace {

TEST(TextTableTest, HeaderOnly) {
  TextTable t({"a", "bb"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("--"), std::string::npos);
}

TEST(TextTableTest, RowsAreRendered) {
  TextTable t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"y", "2"});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  const std::string s = t.ToString();
  // Renders without crashing; the row has trailing empty cells.
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable t({"h", "col"});
  t.AddRow({"longvalue", "x"});
  const std::string s = t.ToString();
  // Header cell is padded to the row value width: find "h        " (9 wide).
  EXPECT_NE(s.find("h        "), std::string::npos);
}

TEST(TextTableTest, CsvUsesCommas) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TextTableTest, FmtRoundsToPrecision) {
  EXPECT_EQ(TextTable::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Fmt(2.0, 0), "2");
}

TEST(TextTableTest, FmtIntHandlesNegatives) {
  EXPECT_EQ(TextTable::FmtInt(-42), "-42");
  EXPECT_EQ(TextTable::FmtInt(0), "0");
}

TEST(TextTableTest, FmtPercentScalesFractions) {
  EXPECT_EQ(TextTable::FmtPercent(0.256, 1), "25.6%");
  EXPECT_EQ(TextTable::FmtPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace dcat
