#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dcat {
namespace {

TEST(SplitMix64Test, ProducesKnownSequenceDeterministically) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  uint64_t s1 = 1;
  uint64_t s2 = 2;
  EXPECT_NE(SplitMix64(s1), SplitMix64(s2));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ReseedRestartsTheStream) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(a.Next());
  }
  a.Reseed(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next(), first[static_cast<size_t>(i)]);
  }
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(RngTest, NextDoubleIsInUnitInterval) {
  Rng rng(314);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(2024);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.Below(kBuckets)];
  }
  for (uint64_t b = 0; b < kBuckets; ++b) {
    // Each bucket within 10% of the expected count.
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets / 10);
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(77);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Chance(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace dcat
