#include "src/common/histogram.h"

#include <gtest/gtest.h>

namespace dcat {
namespace {

TEST(HistogramTest, StartsEmpty) {
  Histogram h(4);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.Fraction(0), 0.0);
  EXPECT_EQ(h.FractionAtLeast(2), 0.0);
}

TEST(HistogramTest, CountsLandInBuckets) {
  Histogram h(4);
  h.Add(0);
  h.Add(1);
  h.Add(1);
  h.Add(2);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OverflowGoesToLastBucket) {
  Histogram h(3);  // buckets 0, 1, >=2
  h.Add(2);
  h.Add(100);
  EXPECT_EQ(h.bucket(2), 2u);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(3);
  h.Add(1, 10);
  EXPECT_EQ(h.bucket(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(HistogramTest, FractionSumsToOne) {
  Histogram h(5);
  for (uint64_t v = 0; v < 5; ++v) {
    h.Add(v, v + 1);
  }
  double sum = 0.0;
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    sum += h.Fraction(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, FractionAtLeastIsCumulative) {
  Histogram h(10);
  h.Add(1, 50);
  h.Add(3, 30);
  h.Add(5, 20);
  EXPECT_NEAR(h.FractionAtLeast(0), 1.0, 1e-12);
  EXPECT_NEAR(h.FractionAtLeast(2), 0.5, 1e-12);
  EXPECT_NEAR(h.FractionAtLeast(4), 0.2, 1e-12);
  EXPECT_NEAR(h.FractionAtLeast(6), 0.0, 1e-12);
}

TEST(HistogramTest, FractionAtLeastClampsToOverflowBucket) {
  Histogram h(3);
  h.Add(10);  // lands in >=2
  EXPECT_NEAR(h.FractionAtLeast(100), 1.0, 1e-12);
}

TEST(HistogramTest, ToStringContainsEveryBucket) {
  Histogram h(3);
  h.Add(0);
  h.Add(2);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("0:"), std::string::npos);
  EXPECT_NE(s.find("1:"), std::string::npos);
  EXPECT_NE(s.find(">=2:"), std::string::npos);
}

TEST(HistogramTest, MinimumOneBucket) {
  Histogram h(0);  // clamped to one bucket internally
  h.Add(5);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

}  // namespace
}  // namespace dcat
