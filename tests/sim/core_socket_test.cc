#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/pqos/sim_pqos.h"
#include "src/sim/socket.h"

namespace dcat {
namespace {

SocketConfig SmallConfig() {
  SocketConfig config;
  config.num_cores = 4;
  config.llc_geometry = CacheGeometry{.line_size = 64, .num_ways = 8, .num_sets = 64};  // 32 KiB
  config.l1_geometry = CacheGeometry{.line_size = 64, .num_ways = 2, .num_sets = 8};  // 1 KiB
  config.l2_geometry = CacheGeometry{.line_size = 64, .num_ways = 4, .num_sets = 16};  // 4 KiB
  return config;
}

TEST(SocketTest, DefaultsToFullMaskAndCosZero) {
  Socket socket(SmallConfig());
  EXPECT_EQ(socket.CosMask(0), socket.llc().FullWayMask());
  for (uint16_t c = 0; c < socket.num_cores(); ++c) {
    EXPECT_EQ(socket.CoreCos(c), 0);
  }
}

TEST(SocketTest, CosAssociationRoundTrips) {
  Socket socket(SmallConfig());
  socket.AssignCoreToCos(2, 5);
  EXPECT_EQ(socket.CoreCos(2), 5);
  socket.SetCosMask(5, 0b0011);
  EXPECT_EQ(socket.CosMask(5), 0b0011u);
}

TEST(CoreTest, CountersTrackHierarchyWalk) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  Core& core = socket.core(0);

  core.Access(0, false);  // cold: misses L1, L2, LLC
  EXPECT_EQ(core.counters().retired_instructions, 1u);
  EXPECT_EQ(core.counters().l1_references, 1u);
  EXPECT_EQ(core.counters().l1_misses, 1u);
  EXPECT_EQ(core.counters().l2_misses, 1u);
  EXPECT_EQ(core.counters().llc_references, 1u);
  EXPECT_EQ(core.counters().llc_misses, 1u);

  core.Access(0, false);  // L1 hit
  EXPECT_EQ(core.counters().l1_references, 2u);
  EXPECT_EQ(core.counters().l1_misses, 1u);
}

TEST(CoreTest, LatencyOrdering) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  Core& core = socket.core(0);
  const double miss = core.Access(0, false);
  const double hit_l1 = core.Access(0, false);
  EXPECT_GT(miss, hit_l1);
  EXPECT_DOUBLE_EQ(hit_l1, config.timing.l1_hit_cycles);
  EXPECT_DOUBLE_EQ(miss, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

TEST(CoreTest, LlcHitLatencyAfterL1Eviction) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  Core& core = socket.core(0);
  // Touch enough distinct lines to evict line 0 from L1 (1 KiB) and L2
  // (4 KiB) but keep it in the 32 KiB LLC.
  core.Access(0, false);
  for (uint64_t a = 64; a < 16_KiB; a += 64) {
    core.Access(a, false);
  }
  const double lat = core.Access(0, false);
  EXPECT_DOUBLE_EQ(lat, config.timing.llc_hit_cycles);
}

TEST(CoreTest, ComputeChargesBaseCpi) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  Core& core = socket.core(0);
  core.Compute(100);
  EXPECT_EQ(core.counters().retired_instructions, 100u);
  EXPECT_DOUBLE_EQ(core.counters().unhalted_cycles, 25.0);
}

TEST(CoreTest, SequentialMissStreamIsPrefetched) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  Core& core = socket.core(0);
  // First miss of the stream: full DRAM cost.
  const double first = core.Access(1_MiB, false);
  EXPECT_DOUBLE_EQ(first, config.timing.llc_hit_cycles + config.timing.dram_cycles);
  // Consecutive-line misses ride the prefetcher.
  const double second = core.Access(1_MiB + 64, false);
  EXPECT_DOUBLE_EQ(second, config.timing.llc_hit_cycles +
                               config.timing.dram_cycles / config.timing.stream_prefetch_factor);
  // A random jump breaks the stream: full cost again.
  const double jump = core.Access(2_MiB, false);
  EXPECT_DOUBLE_EQ(jump, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

TEST(CoreTest, PrefetchDetectorIsPerCore) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  socket.core(0).Access(1_MiB, false);
  // Core 1's first miss at the "next" line is NOT part of core 0's stream.
  const double lat = socket.core(1).Access(1_MiB + 64, false);
  EXPECT_DOUBLE_EQ(lat, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

TEST(CoreTest, PrefetchDisabledWhenFactorIsOne) {
  SocketConfig config = SmallConfig();
  config.timing.stream_prefetch_factor = 1.0;
  Socket socket(config);
  Core& core = socket.core(0);
  core.Access(1_MiB, false);
  const double second = core.Access(1_MiB + 64, false);
  EXPECT_DOUBLE_EQ(second, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

TEST(CoreTest, IdleAdvancesWallClockOnly) {
  Socket socket(SmallConfig());
  Core& core = socket.core(0);
  core.Idle(500.0);
  EXPECT_DOUBLE_EQ(core.wall_cycles(), 500.0);
  EXPECT_DOUBLE_EQ(core.counters().unhalted_cycles, 0.0);
  EXPECT_EQ(core.counters().retired_instructions, 0u);
}

TEST(SocketTest, WayPartitionIsolatesCores) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  // Core 0 -> COS 1 (ways 0-3), core 1 -> COS 2 (ways 4-7).
  socket.AssignCoreToCos(0, 1);
  socket.SetCosMask(1, 0b00001111);
  socket.AssignCoreToCos(1, 2);
  socket.SetCosMask(2, 0b11110000);

  // Core 0 fills 4 lines in every set (its full capacity).
  const auto geo = config.llc_geometry;
  for (uint64_t t = 0; t < 4; ++t) {
    for (uint64_t s = 0; s < geo.num_sets; ++s) {
      socket.core(0).Access((t * geo.num_sets + s) * 64, false);
    }
  }
  const uint64_t occupancy_before = socket.llc().OccupancyLines(1);
  // Core 1 streams a large buffer; core 0's lines must survive.
  for (uint64_t a = 1_MiB; a < 2_MiB; a += 64) {
    socket.core(1).Access(a, false);
  }
  EXPECT_EQ(socket.llc().OccupancyLines(1), occupancy_before);
}

TEST(SocketTest, SharedCacheAllowsEviction) {
  SocketConfig config = SmallConfig();
  Socket socket(config);  // both cores in COS 0, full mask
  for (uint64_t t = 0; t < 4; ++t) {
    socket.core(0).Access(t * 64 * config.llc_geometry.num_sets, false);
  }
  const uint64_t misses_before = socket.core(0).counters().llc_misses;
  // Core 1 streams far more than the LLC; core 0's data is flushed.
  for (uint64_t a = 1_MiB; a < 1_MiB + 64_KiB; a += 64) {
    socket.core(1).Access(a, false);
  }
  for (uint64_t t = 0; t < 4; ++t) {
    socket.core(0).Access(t * 64 * config.llc_geometry.num_sets, false);
  }
  EXPECT_GT(socket.core(0).counters().llc_misses, misses_before);
}

TEST(SocketTest, InclusiveEvictionBackInvalidatesOwnerL1) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  socket.AssignCoreToCos(0, 1);
  socket.SetCosMask(1, 0b1);  // single way: easy to evict
  socket.AssignCoreToCos(1, 1);

  Core& core0 = socket.core(0);
  core0.Access(0, false);  // in L1 and LLC way 0
  EXPECT_TRUE(core0.counters().l1_misses == 1);
  // Core 1 (same COS, same single way) fills the same set with a new tag,
  // evicting core 0's line from the LLC...
  socket.core(1).Access(static_cast<uint64_t>(config.llc_geometry.num_sets) * 64, false);
  // ...so core 0 must re-miss all the way to DRAM (L1 was back-invalidated).
  const double lat = core0.Access(0, false);
  EXPECT_DOUBLE_EQ(lat, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

TEST(SocketTest, FlushCosBackInvalidatesOwnerPrivateCaches) {
  // Regression: FlushCos used to drop LLC lines without back-invalidating
  // the owning core's private caches, so a flushed line could still hit in
  // L1 — violating the inclusive-LLC contract FlushCosOutsideMask honors.
  SocketConfig config = SmallConfig();
  Socket socket(config);
  socket.AssignCoreToCos(0, 1);
  socket.SetCosMask(1, 0b1111);

  Core& core0 = socket.core(0);
  core0.Access(0, false);  // resident in L1, L2 and LLC, charged to COS 1
  EXPECT_DOUBLE_EQ(core0.Access(0, false), config.timing.l1_hit_cycles);

  const uint64_t flushed = socket.FlushCos(1);
  EXPECT_GE(flushed, 1u);
  EXPECT_EQ(socket.llc().OccupancyLines(1), 0u);
  // The line must be gone from the private caches too: full re-miss.
  const double lat = core0.Access(0, false);
  EXPECT_DOUBLE_EQ(lat, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

TEST(SocketTest, FlushCosLeavesOtherCosAlone) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  socket.AssignCoreToCos(0, 1);
  socket.SetCosMask(1, 0b0011);
  socket.AssignCoreToCos(1, 2);
  socket.SetCosMask(2, 0b1100);
  socket.core(0).Access(0, false);
  socket.core(1).Access(64, false);
  socket.FlushCos(1);
  EXPECT_EQ(socket.llc().OccupancyLines(1), 0u);
  EXPECT_EQ(socket.llc().OccupancyLines(2), 1u);
  // Core 1's line still hits in its L1 — untouched by the other COS flush.
  EXPECT_DOUBLE_EQ(socket.core(1).Access(64, false), config.timing.l1_hit_cycles);
}

TEST(SocketTest, ResetCachesClearsEverything) {
  Socket socket(SmallConfig());
  socket.core(0).Access(0, false);
  socket.ResetCaches();
  EXPECT_EQ(socket.llc().OccupancyLines(0), 0u);
  // Re-access misses again.
  const uint64_t misses = socket.core(0).counters().llc_misses;
  socket.core(0).Access(0, false);
  EXPECT_EQ(socket.core(0).counters().llc_misses, misses + 1);
}

TEST(SocketTest, NoL2ModeSkipsL2Counters) {
  SocketConfig config = SmallConfig();
  config.model_l2 = false;
  Socket socket(config);
  socket.core(0).Access(0, false);
  EXPECT_EQ(socket.core(0).counters().l2_references, 0u);
  EXPECT_EQ(socket.core(0).counters().llc_references, 1u);
}

TEST(SocketTest, FlushCosOutsideMaskDropsOnlySurrenderedWays) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  socket.AssignCoreToCos(0, 1);
  socket.SetCosMask(1, 0b1111);
  // Fill 4 distinct tags into set 0 (ways 0-3).
  const auto geo = config.llc_geometry;
  for (uint64_t t = 0; t < 4; ++t) {
    socket.core(0).Access(t * geo.num_sets * 64, false);
  }
  ASSERT_EQ(socket.llc().OccupancyLines(1), 4u);
  // Shrink to ways 0-1 and flush: exactly the lines in ways 2-3 disappear.
  socket.SetCosMask(1, 0b0011);
  const uint64_t flushed = socket.FlushCosOutsideMask(1, 0b0011);
  EXPECT_EQ(flushed, 2u);
  EXPECT_EQ(socket.llc().OccupancyLines(1), 2u);
}

TEST(SocketTest, FlushBackInvalidatesOwnersPrivateCaches) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  socket.AssignCoreToCos(0, 1);
  socket.SetCosMask(1, 0b0001);
  socket.core(0).Access(0, false);  // resident in L1, L2 and LLC way 0
  socket.FlushCosOutsideMask(1, 0);  // flush everything of COS 1
  // The next access must pay the full DRAM trip: the private copies died
  // with the LLC line (inclusion).
  const double lat = socket.core(0).Access(0, false);
  EXPECT_DOUBLE_EQ(lat, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

TEST(SocketTest, SimPqosShrinkTriggersFlushGrowDoesNot) {
  SocketConfig config = SmallConfig();
  Socket socket(config);
  SimPqos pqos(&socket);
  pqos.AssociateCore(0, 1);
  pqos.SetCosMask(1, 0b1111);
  const auto geo = config.llc_geometry;
  for (uint64_t t = 0; t < 4; ++t) {
    socket.core(0).Access(t * geo.num_sets * 64, false);
  }
  // Growth: lazy, nothing flushed.
  pqos.SetCosMask(1, 0b11111);
  EXPECT_EQ(socket.llc().OccupancyLines(1), 4u);
  // Shrink: the surrendered ways are flushed (the paper's flush utility).
  pqos.SetCosMask(1, 0b0011);
  EXPECT_EQ(socket.llc().OccupancyLines(1), 2u);
}

TEST(SocketTest, PresetsMatchPaperMachines) {
  const SocketConfig e5 = SocketConfig::XeonE5();
  EXPECT_EQ(e5.num_cores, 18);
  EXPECT_EQ(e5.llc_geometry.num_ways, 20u);
  const SocketConfig xd = SocketConfig::XeonD();
  EXPECT_EQ(xd.num_cores, 8);
  EXPECT_EQ(xd.llc_geometry.num_ways, 12u);
}

TEST(ExecutionContextTest, TranslatesThroughPageTable) {
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1, /*phys_base=*/4_KiB);
  ExecutionContext ctx(&socket.core(0), &pt);
  ctx.Read(0);
  // The physical line 4 KiB (not 0) must be the resident one.
  EXPECT_TRUE(socket.llc().Contains(4_KiB));
  EXPECT_FALSE(socket.llc().Contains(0));
}

TEST(ExecutionContextTest, ComputeDelegatesToCore) {
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(2), &pt);
  ctx.Compute(40);
  EXPECT_EQ(socket.core(2).counters().retired_instructions, 40u);
}

TEST(PerfCounterBlockTest, DeltaAndDerivedMetrics) {
  PerfCounterBlock a;
  a.retired_instructions = 1000;
  a.unhalted_cycles = 2000;
  a.l1_references = 300;
  a.llc_references = 100;
  a.llc_misses = 10;
  PerfCounterBlock b = a;
  b.retired_instructions += 500;
  b.unhalted_cycles += 1000;
  b.l1_references += 150;
  b.llc_references += 60;
  b.llc_misses += 30;
  const PerfCounterBlock d = b - a;
  EXPECT_EQ(d.retired_instructions, 500u);
  EXPECT_DOUBLE_EQ(d.Ipc(), 0.5);
  EXPECT_DOUBLE_EQ(d.LlcMissRate(), 0.5);
  EXPECT_DOUBLE_EQ(d.MemAccessesPerInstruction(), 0.3);
}

TEST(PerfCounterBlockTest, ZeroDenominatorsAreSafe) {
  PerfCounterBlock z;
  EXPECT_EQ(z.Ipc(), 0.0);
  EXPECT_EQ(z.LlcMissRate(), 0.0);
  EXPECT_EQ(z.MemAccessesPerInstruction(), 0.0);
}

}  // namespace
}  // namespace dcat
