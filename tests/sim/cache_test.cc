#include "src/sim/cache.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sim/geometry.h"

namespace dcat {
namespace {

// A tiny cache keeps the arithmetic checkable by hand:
// 4 ways x 4 sets x 64B lines = 1 KiB.
CacheGeometry TinyGeometry() { return CacheGeometry{.line_size = 64, .num_ways = 4, .num_sets = 4}; }

// Address of line `l` in set `s` with tag `t` (for a 4-set cache).
uint64_t Addr(uint64_t tag, uint64_t set) { return (tag * 4 + set) * 64; }

TEST(CacheTest, ColdMissThenHit) {
  SetAssociativeCache cache(TinyGeometry());
  EXPECT_FALSE(cache.Access(Addr(0, 0), cache.FullWayMask()).hit);
  EXPECT_TRUE(cache.Access(Addr(0, 0), cache.FullWayMask()).hit);
}

TEST(CacheTest, SameLineDifferentOffsetsHit) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(0, cache.FullWayMask());
  EXPECT_TRUE(cache.Access(63, cache.FullWayMask()).hit);
  EXPECT_FALSE(cache.Access(64, cache.FullWayMask()).hit);  // next line
}

TEST(CacheTest, FillsWholeSetBeforeEvicting) {
  SetAssociativeCache cache(TinyGeometry());
  for (uint64_t t = 0; t < 4; ++t) {
    const auto r = cache.Access(Addr(t, 1), cache.FullWayMask());
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evicted);
  }
  // All four still resident.
  for (uint64_t t = 0; t < 4; ++t) {
    EXPECT_TRUE(cache.Contains(Addr(t, 1)));
  }
  // Fifth tag evicts the LRU (tag 0).
  const auto r = cache.Access(Addr(4, 1), cache.FullWayMask());
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_paddr, Addr(0, 1));
  EXPECT_FALSE(cache.Contains(Addr(0, 1)));
}

TEST(CacheTest, LruIsUpdatedByHits) {
  SetAssociativeCache cache(TinyGeometry());
  for (uint64_t t = 0; t < 4; ++t) {
    cache.Access(Addr(t, 0), cache.FullWayMask());
  }
  cache.Access(Addr(0, 0), cache.FullWayMask());  // refresh tag 0
  const auto r = cache.Access(Addr(4, 0), cache.FullWayMask());
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_paddr, Addr(1, 0));  // tag 1 is now LRU
}

// --- CAT way-partitioning semantics ---

TEST(CacheTest, LookupHitsInAnyWayRegardlessOfMask) {
  SetAssociativeCache cache(TinyGeometry());
  // COS A (ways 0-1) fills a line.
  cache.Access(Addr(0, 2), 0b0011, /*cos=*/1);
  // COS B (ways 2-3) still *hits* that line: CAT restricts fills, not hits.
  EXPECT_TRUE(cache.Access(Addr(0, 2), 0b1100, /*cos=*/2).hit);
}

TEST(CacheTest, FillRespectsWayMask) {
  SetAssociativeCache cache(TinyGeometry());
  // COS 1 may only fill ways 0-1: its third distinct line in set 0 must
  // evict one of its own, never ways 2-3.
  cache.Access(Addr(0, 0), 0b0011, 1);
  cache.Access(Addr(1, 0), 0b0011, 1);
  // Park COS 2 lines in ways 2-3.
  cache.Access(Addr(10, 0), 0b1100, 2);
  cache.Access(Addr(11, 0), 0b1100, 2);
  const auto r = cache.Access(Addr(2, 0), 0b0011, 1);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_paddr, Addr(0, 0));  // COS 1's own LRU
  // COS 2's lines are untouched — the isolation property.
  EXPECT_TRUE(cache.Contains(Addr(10, 0)));
  EXPECT_TRUE(cache.Contains(Addr(11, 0)));
}

TEST(CacheTest, MaskShrinkDoesNotFlushResidentLines) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(Addr(0, 0), 0b1111, 1);  // fills some way
  // Simulate a mask shrink: subsequent fills use 0b0001 only, but the old
  // line stays resident wherever it is (Intel provides no way-flush).
  EXPECT_TRUE(cache.Access(Addr(0, 0), 0b0001, 1).hit);
}

TEST(CacheTest, ZeroMaskActsAsBypass) {
  SetAssociativeCache cache(TinyGeometry());
  const auto r = cache.Access(Addr(0, 0), 0);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(cache.Contains(Addr(0, 0)));
}

TEST(CacheTest, ProbeWithoutAllocation) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(Addr(0, 0), cache.FullWayMask(), 0, kNoOwner, /*allocate_on_miss=*/false);
  EXPECT_FALSE(cache.Contains(Addr(0, 0)));
}

// --- occupancy accounting ---

TEST(CacheTest, OccupancyTracksFillsPerCos) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(Addr(0, 0), 0b0011, 1);
  cache.Access(Addr(0, 1), 0b0011, 1);
  cache.Access(Addr(0, 2), 0b1100, 2);
  EXPECT_EQ(cache.OccupancyLines(1), 2u);
  EXPECT_EQ(cache.OccupancyLines(2), 1u);
  EXPECT_EQ(cache.OccupancyBytes(1), 128u);
}

TEST(CacheTest, OccupancyDecreasesOnEviction) {
  SetAssociativeCache cache(TinyGeometry());
  for (uint64_t t = 0; t < 5; ++t) {
    cache.Access(Addr(t, 0), 0b0001, 1);  // single way: each fill evicts
  }
  EXPECT_EQ(cache.OccupancyLines(1), 1u);
}

TEST(CacheTest, EvictionReportsVictimCosAndOwner) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(Addr(0, 0), 0b0001, /*cos=*/3, /*owner=*/7);
  const auto r = cache.Access(Addr(1, 0), 0b0001, /*cos=*/4, /*owner=*/8);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_cos, 3);
  EXPECT_EQ(r.evicted_owner, 7);
}

TEST(CacheTest, InvalidateRemovesLine) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(Addr(0, 0), cache.FullWayMask(), 1);
  EXPECT_TRUE(cache.Invalidate(Addr(0, 0)));
  EXPECT_FALSE(cache.Contains(Addr(0, 0)));
  EXPECT_EQ(cache.OccupancyLines(1), 0u);
  EXPECT_FALSE(cache.Invalidate(Addr(0, 0)));  // second time: not resident
}

TEST(CacheTest, FlushCosDropsOnlyThatCos) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(Addr(0, 0), 0b0011, 1);
  cache.Access(Addr(0, 1), 0b0011, 1);
  cache.Access(Addr(0, 2), 0b1100, 2);
  EXPECT_EQ(cache.FlushCos(1).size(), 2u);
  EXPECT_FALSE(cache.Contains(Addr(0, 0)));
  EXPECT_TRUE(cache.Contains(Addr(0, 2)));
  EXPECT_EQ(cache.OccupancyLines(1), 0u);
  EXPECT_EQ(cache.OccupancyLines(2), 1u);
}

TEST(CacheTest, FlushCosReportsPaddrAndOwnerForBackInvalidation) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(Addr(2, 1), 0b0011, /*cos=*/1, /*owner=*/5);
  cache.Access(Addr(3, 3), 0b0011, /*cos=*/1, /*owner=*/6);
  auto flushed = cache.FlushCos(1);
  ASSERT_EQ(flushed.size(), 2u);
  // Order is set-major; verify the (paddr, owner) pairs regardless.
  bool saw_first = false;
  bool saw_second = false;
  for (const auto& line : flushed) {
    if (line.paddr == Addr(2, 1) && line.owner == 5) saw_first = true;
    if (line.paddr == Addr(3, 3) && line.owner == 6) saw_second = true;
  }
  EXPECT_TRUE(saw_first);
  EXPECT_TRUE(saw_second);
}

TEST(CacheTest, OccupancyTableSizedFromNumCos) {
  SetAssociativeCache cache(TinyGeometry(), ReplacementKind::kLru, /*num_cos=*/4);
  cache.Access(Addr(0, 0), 0b1111, /*cos=*/3);
  EXPECT_EQ(cache.OccupancyLines(3), 1u);
}

TEST(CacheTest, ResetClearsEverything) {
  SetAssociativeCache cache(TinyGeometry());
  cache.Access(Addr(0, 0), cache.FullWayMask(), 1);
  cache.Reset();
  EXPECT_FALSE(cache.Contains(Addr(0, 0)));
  EXPECT_EQ(cache.OccupancyLines(1), 0u);
}

TEST(CacheTest, ValidLinesInSetCountsCorrectly) {
  SetAssociativeCache cache(TinyGeometry());
  EXPECT_EQ(cache.ValidLinesInSet(0), 0u);
  cache.Access(Addr(0, 0), cache.FullWayMask());
  cache.Access(Addr(1, 0), cache.FullWayMask());
  cache.Access(Addr(0, 1), cache.FullWayMask());
  EXPECT_EQ(cache.ValidLinesInSet(0), 2u);
  EXPECT_EQ(cache.ValidLinesInSet(1), 1u);
}

// --- capacity property, parameterized over way counts ---

class CacheCapacityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CacheCapacityTest, WorkingSetWithinAllowedWaysNeverMissesAfterWarmup) {
  const uint32_t ways = GetParam();
  CacheGeometry geo{.line_size = 64, .num_ways = 8, .num_sets = 16};
  SetAssociativeCache cache(geo);
  const uint32_t mask = (1u << ways) - 1;
  // Working set: exactly `ways` lines per set.
  std::vector<uint64_t> lines;
  for (uint64_t set = 0; set < geo.num_sets; ++set) {
    for (uint64_t t = 0; t < ways; ++t) {
      lines.push_back((t * geo.num_sets + set) * 64);
    }
  }
  for (uint64_t a : lines) {
    cache.Access(a, mask, 1);
  }
  // Second pass: all hits (true LRU, capacity == working set).
  for (uint64_t a : lines) {
    EXPECT_TRUE(cache.Access(a, mask, 1).hit) << "addr " << a << " ways " << ways;
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheCapacityTest, ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(CacheTest, WorkingSetBeyondAllowedWaysThrashes) {
  CacheGeometry geo{.line_size = 64, .num_ways = 8, .num_sets = 16};
  SetAssociativeCache cache(geo);
  // 3 lines per set cycled through 2 allowed ways with LRU: zero hits.
  uint64_t hits = 0;
  for (int round = 0; round < 10; ++round) {
    for (uint64_t t = 0; t < 3; ++t) {
      hits += cache.Access((t * geo.num_sets) * 64, 0b0011, 1).hit ? 1 : 0;
    }
  }
  EXPECT_EQ(hits, 0u);  // cyclic pattern over capacity: pathological for LRU
}

}  // namespace
}  // namespace dcat
