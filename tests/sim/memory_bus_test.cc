#include "src/sim/memory_bus.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"

namespace dcat {
namespace {

MemoryBusConfig EnabledConfig() {
  MemoryBusConfig config;
  config.enabled = true;
  config.bytes_per_cycle = 64.0;  // 1 line per cycle: easy arithmetic
  config.contention_coefficient = 1.0;
  return config;
}

TEST(MemoryBusTest, DisabledIsTransparent) {
  MemoryBus bus(MemoryBusConfig{}, 64, 16);
  EXPECT_FALSE(bus.enabled());
  EXPECT_DOUBLE_EQ(bus.NoteTransfer(1), 1.0);
  bus.AdvanceInterval(1000.0);
  EXPECT_DOUBLE_EQ(bus.contention_multiplier(), 1.0);
  // Timing is untouched, but MBM-style monitoring keeps counting: the
  // counters exist independently of the contention/MBA model.
  EXPECT_EQ(bus.TotalBytes(1), 64u);
  EXPECT_EQ(bus.TotalBytes(0), 0u);
}

TEST(MemoryBusTest, UtilizationMathIsExact) {
  MemoryBus bus(EnabledConfig(), 64, 16);
  // 500 transfers in 1000 cycles at 1 line/cycle capacity: u = 0.5.
  for (int i = 0; i < 500; ++i) {
    bus.NoteTransfer(0);
  }
  bus.AdvanceInterval(1000.0);
  EXPECT_DOUBLE_EQ(bus.utilization(), 0.5);
  // multiplier = 1 + 1.0 * 0.5 / (1 - 0.5) = 2.
  EXPECT_DOUBLE_EQ(bus.contention_multiplier(), 2.0);
}

TEST(MemoryBusTest, UtilizationIsClamped) {
  MemoryBus bus(EnabledConfig(), 64, 16);
  for (int i = 0; i < 100000; ++i) {
    bus.NoteTransfer(0);
  }
  bus.AdvanceInterval(1000.0);
  EXPECT_DOUBLE_EQ(bus.utilization(), 0.90);
  EXPECT_DOUBLE_EQ(bus.contention_multiplier(), 10.0);
}

TEST(MemoryBusTest, TransfersResetEachInterval) {
  MemoryBus bus(EnabledConfig(), 64, 16);
  for (int i = 0; i < 500; ++i) {
    bus.NoteTransfer(0);
  }
  bus.AdvanceInterval(1000.0);
  bus.AdvanceInterval(1000.0);  // idle interval
  EXPECT_DOUBLE_EQ(bus.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(bus.contention_multiplier(), 1.0);
}

TEST(MemoryBusTest, MultiplierAppliesToNextIntervalTransfers) {
  MemoryBus bus(EnabledConfig(), 64, 16);
  EXPECT_DOUBLE_EQ(bus.NoteTransfer(0), 1.0);  // no history yet
  for (int i = 0; i < 499; ++i) {
    bus.NoteTransfer(0);
  }
  bus.AdvanceInterval(1000.0);
  EXPECT_DOUBLE_EQ(bus.NoteTransfer(0), 2.0);  // now reflects last interval
}

TEST(MemoryBusTest, ThrottleScalesLatency) {
  MemoryBus bus(EnabledConfig(), 64, 16);
  bus.SetThrottle(3, 50);
  EXPECT_EQ(bus.GetThrottle(3), 50u);
  EXPECT_DOUBLE_EQ(bus.NoteTransfer(3), 2.0);  // 100/50
  EXPECT_DOUBLE_EQ(bus.NoteTransfer(4), 1.0);  // other COS unthrottled
}

TEST(MemoryBusTest, ThrottleClampsToIntelRange) {
  MemoryBus bus(EnabledConfig(), 64, 16);
  bus.SetThrottle(1, 5);
  EXPECT_EQ(bus.GetThrottle(1), 10u);
  bus.SetThrottle(1, 250);
  EXPECT_EQ(bus.GetThrottle(1), 100u);
}

TEST(MemoryBusTest, MbmBytesAccumulatePerCos) {
  MemoryBus bus(EnabledConfig(), 64, 16);
  bus.NoteTransfer(2);
  bus.NoteTransfer(2);
  bus.NoteTransfer(5);
  EXPECT_EQ(bus.TotalBytes(2), 128u);
  EXPECT_EQ(bus.TotalBytes(5), 64u);
  EXPECT_EQ(bus.TotalBytes(0), 0u);
}

// --- socket integration ---

SocketConfig BusSocketConfig() {
  SocketConfig config;
  config.num_cores = 2;
  config.llc_geometry = MakeGeometry(1_MiB, 8);
  config.memory_bus.enabled = true;
  config.memory_bus.bytes_per_cycle = 0.64;  // tiny bus: easy to saturate
  config.memory_bus.contention_coefficient = 1.0;
  return config;
}

TEST(SocketBusTest, ContentionInflatesDramLatency) {
  SocketConfig config = BusSocketConfig();
  Socket socket(config);
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);

  // Saturate the bus in interval 1: stream far beyond the LLC.
  for (uint64_t a = 0; a < 8_MiB; a += 64) {
    ctx.Read(a);
  }
  socket.AdvanceInterval(1e6);
  ASSERT_GT(socket.memory_bus().contention_multiplier(), 1.0);

  // A cold miss in interval 2 pays the inflated DRAM latency.
  const double lat = socket.core(1).Access(512_MiB, false);
  EXPECT_GT(lat, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

TEST(SocketBusTest, MbaThrottleSlowsOnlyTheThrottledCos) {
  Socket socket(BusSocketConfig());
  socket.AssignCoreToCos(0, 1);
  socket.AssignCoreToCos(1, 2);
  socket.memory_bus().SetThrottle(1, 20);  // 5x DRAM delay
  const double throttled = socket.core(0).Access(0, false);
  const double free_lat = socket.core(1).Access(256_MiB, false);
  EXPECT_GT(throttled, free_lat * 3.0);
}

TEST(SocketBusTest, DisabledBusKeepsExactBaseLatencies) {
  SocketConfig config;
  config.num_cores = 1;
  config.llc_geometry = MakeGeometry(1_MiB, 8);
  Socket socket(config);
  const double lat = socket.core(0).Access(0, false);
  EXPECT_DOUBLE_EQ(lat, config.timing.llc_hit_cycles + config.timing.dram_cycles);
}

}  // namespace
}  // namespace dcat
