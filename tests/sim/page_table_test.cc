#include "src/sim/page_table.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/units.h"
#include "src/sim/geometry.h"

namespace dcat {
namespace {

TEST(PageTableTest, ContiguousIsIdentityPlusBase) {
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1, /*phys_base=*/0x1000);
  EXPECT_EQ(pt.Translate(0), 0x1000u);
  EXPECT_EQ(pt.Translate(12345), 0x1000u + 12345);
}

TEST(PageTableTest, TranslationIsStable) {
  PageTable pt(PagePolicy::kRandom4K, 1_GiB, 7);
  const uint64_t a = pt.Translate(0x42000);
  EXPECT_EQ(pt.Translate(0x42000), a);
  EXPECT_EQ(pt.Translate(0x42008), a + 8);
}

TEST(PageTableTest, OffsetsWithinPagePreserved) {
  PageTable pt(PagePolicy::kRandom4K, 1_GiB, 7);
  const uint64_t base = pt.Translate(8 * 4_KiB);
  for (uint64_t off = 0; off < 4_KiB; off += 64) {
    EXPECT_EQ(pt.Translate(8 * 4_KiB + off), base + off);
  }
}

TEST(PageTableTest, Random4KNeverMapsTwoPagesToOneFrame) {
  PageTable pt(PagePolicy::kRandom4K, 16_MiB, 3);
  std::set<uint64_t> frames;
  for (uint64_t page = 0; page < 1024; ++page) {
    const uint64_t frame = pt.Translate(page * 4_KiB) / 4_KiB;
    EXPECT_TRUE(frames.insert(frame).second) << "frame reused for page " << page;
  }
  EXPECT_EQ(pt.mapped_pages(), 1024u);
}

TEST(PageTableTest, Huge2MKeepsTwoMegRunsContiguous) {
  PageTable pt(PagePolicy::kHuge2M, 1_GiB, 5);
  const uint64_t base = pt.Translate(0);
  for (uint64_t off = 0; off < 2_MiB; off += 4_KiB) {
    EXPECT_EQ(pt.Translate(off), base + off);
  }
  // The next huge page is somewhere else but 2 MiB aligned.
  const uint64_t second = pt.Translate(2_MiB);
  EXPECT_EQ(second % 2_MiB, 0u);
}

TEST(PageTableTest, PageSizeByPolicy) {
  EXPECT_EQ(PageTable(PagePolicy::kRandom4K, 1_GiB, 1).PageSize(), 4_KiB);
  EXPECT_EQ(PageTable(PagePolicy::kHuge2M, 1_GiB, 1).PageSize(), 2_MiB);
}

TEST(PageTableTest, DifferentSeedsGiveDifferentLayouts) {
  PageTable a(PagePolicy::kRandom4K, 1_GiB, 1);
  PageTable b(PagePolicy::kRandom4K, 1_GiB, 2);
  int same = 0;
  for (uint64_t page = 0; page < 64; ++page) {
    if (a.Translate(page * 4_KiB) == b.Translate(page * 4_KiB)) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);  // collisions possible, identity means a seeding bug
}

TEST(PageTableTest, PolicyNames) {
  EXPECT_STREQ(PagePolicyName(PagePolicy::kContiguous), "contiguous");
  EXPECT_STREQ(PagePolicyName(PagePolicy::kRandom4K), "4K");
  EXPECT_STREQ(PagePolicyName(PagePolicy::kHuge2M), "2M-huge");
}

// The conflict-miss mechanism of Figure 3: with 4 KiB pages, a working set
// equal to 2 LLC ways leaves ~32% of sets with 3+ lines (Poisson tail),
// while huge pages spread lines almost perfectly evenly.
TEST(PageTableTest, Random4KCreatesSetConflictsHugePagesDoNot) {
  const CacheGeometry llc = XeonDLlcGeometry();
  const uint64_t wss = 2 * llc.WayCapacityBytes();  // 2 MiB on Xeon-D

  auto sets_with_3_plus = [&llc, wss](PagePolicy policy) {
    PageTable pt(policy, 4_GiB, 99);
    std::vector<uint32_t> per_set(llc.num_sets, 0);
    for (uint64_t v = 0; v < wss; v += llc.line_size) {
      ++per_set[llc.SetIndex(pt.Translate(v))];
    }
    uint64_t heavy = 0;
    for (uint32_t c : per_set) {
      if (c >= 3) {
        ++heavy;
      }
    }
    return static_cast<double>(heavy) / llc.num_sets;
  };

  const double frac_4k = sets_with_3_plus(PagePolicy::kRandom4K);
  const double frac_huge = sets_with_3_plus(PagePolicy::kHuge2M);
  // Paper: ~32.5% of sets have 3+ lines with 4K pages on Xeon-D; 0% with a
  // single huge page working set.
  EXPECT_NEAR(frac_4k, 0.32, 0.05);
  EXPECT_EQ(frac_huge, 0.0);
}

}  // namespace
}  // namespace dcat
