// Property test: SetAssociativeCache against a trivially-correct oracle.
//
// The oracle reimplements the CAT access semantics (hit in any way, fill
// restricted to the allowed mask, true-LRU victim among allowed ways) with
// the dumbest possible data structures. A long random stream of accesses
// with random COS masks must produce the identical hit/miss sequence,
// residency and per-COS occupancy.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/cache.h"
#include "src/sim/geometry.h"

namespace dcat {
namespace {

class OracleCache {
 public:
  explicit OracleCache(const CacheGeometry& geometry) : geometry_(geometry) {
    sets_.resize(geometry.num_sets);
  }

  // Returns hit; mirrors SetAssociativeCache::Access for LRU.
  bool Access(uint64_t paddr, uint32_t allowed, uint8_t cos) {
    ++clock_;
    const uint32_t set_index = geometry_.SetIndex(paddr);
    const uint64_t tag = geometry_.Tag(paddr);
    auto& set = sets_[set_index];
    for (Line& line : set.lines) {
      if (line.valid && line.tag == tag) {
        line.last_use = clock_;
        return true;
      }
    }
    allowed &= (geometry_.num_ways >= 32) ? ~0u : ((1u << geometry_.num_ways) - 1);
    if (allowed == 0) {
      return false;  // bypass
    }
    if (set.lines.size() < geometry_.num_ways) {
      set.lines.resize(geometry_.num_ways);
    }
    // Free allowed way first (lowest index), else LRU among allowed.
    std::optional<size_t> victim;
    for (size_t w = 0; w < set.lines.size(); ++w) {
      if (((allowed >> w) & 1u) && !set.lines[w].valid) {
        victim = w;
        break;
      }
    }
    if (!victim.has_value()) {
      uint64_t oldest = ~0ull;
      for (size_t w = 0; w < set.lines.size(); ++w) {
        if (((allowed >> w) & 1u) && set.lines[w].last_use < oldest) {
          oldest = set.lines[w].last_use;
          victim = w;
        }
      }
    }
    Line& slot = set.lines[*victim];
    if (slot.valid) {
      --occupancy_[slot.cos];
    }
    slot = Line{.tag = tag, .valid = true, .cos = cos, .last_use = clock_};
    ++occupancy_[cos];
    return false;
  }

  bool Contains(uint64_t paddr) const {
    const auto& set = sets_[geometry_.SetIndex(paddr)];
    for (const Line& line : set.lines) {
      if (line.valid && line.tag == geometry_.Tag(paddr)) {
        return true;
      }
    }
    return false;
  }

  uint64_t Occupancy(uint8_t cos) const {
    auto it = occupancy_.find(cos);
    return it != occupancy_.end() ? it->second : 0;
  }

 private:
  struct Line {
    uint64_t tag = 0;
    bool valid = false;
    uint8_t cos = 0;
    uint64_t last_use = 0;
  };
  struct Set {
    std::vector<Line> lines;
  };

  CacheGeometry geometry_;
  std::vector<Set> sets_;
  std::map<uint8_t, uint64_t> occupancy_;
  uint64_t clock_ = 0;
};

struct PropertyCase {
  const char* name;
  CacheGeometry geometry;
  uint64_t address_space;
  int accesses;
};

class CacheOracleTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CacheOracleTest, MatchesOracleUnderRandomMaskedAccesses) {
  const PropertyCase& param = GetParam();
  SetAssociativeCache cache(param.geometry, ReplacementKind::kLru);
  OracleCache oracle(param.geometry);
  Rng rng(0xfeedULL + param.geometry.num_ways);

  // A few fixed COS masks, like a real controller would program.
  const uint32_t full = cache.FullWayMask();
  std::vector<std::pair<uint8_t, uint32_t>> cos_masks = {
      {0, full},
      {1, full & 0b0011u},
      {2, full & 0b1100u},
      {3, full},
  };

  for (int i = 0; i < param.accesses; ++i) {
    const auto& [cos, mask] = cos_masks[rng.Below(cos_masks.size())];
    const uint64_t paddr = rng.Below(param.address_space);
    const bool oracle_hit = oracle.Access(paddr, mask, cos);
    const bool cache_hit = cache.Access(paddr, mask, cos).hit;
    ASSERT_EQ(cache_hit, oracle_hit) << "access " << i << " paddr " << paddr;
    // Spot-check residency on a derived address.
    const uint64_t probe = rng.Below(param.address_space);
    ASSERT_EQ(cache.Contains(probe), oracle.Contains(probe)) << "probe after access " << i;
  }
  for (const auto& [cos, mask] : cos_masks) {
    (void)mask;
    EXPECT_EQ(cache.OccupancyLines(cos), oracle.Occupancy(cos)) << "cos " << int(cos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheOracleTest,
    ::testing::Values(
        PropertyCase{"tiny", CacheGeometry{.line_size = 64, .num_ways = 4, .num_sets = 4},
                     16 * 1024, 20000},
        PropertyCase{"narrow", CacheGeometry{.line_size = 64, .num_ways = 2, .num_sets = 16},
                     64 * 1024, 20000},
        PropertyCase{"odd_sets", CacheGeometry{.line_size = 64, .num_ways = 8, .num_sets = 9},
                     32 * 1024, 20000},
        PropertyCase{"wide", CacheGeometry{.line_size = 64, .num_ways = 16, .num_sets = 8},
                     64 * 1024, 20000},
        PropertyCase{"big_lines", CacheGeometry{.line_size = 256, .num_ways = 4, .num_sets = 8},
                     64 * 1024, 20000}),
    [](const auto& info) { return info.param.name; });

// Invalidate/flush consistency under random interleaving.
TEST(CacheOracleTest, InvalidateKeepsOccupancyConsistent) {
  CacheGeometry geo{.line_size = 64, .num_ways = 4, .num_sets = 8};
  SetAssociativeCache cache(geo, ReplacementKind::kLru);
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    const uint8_t cos = static_cast<uint8_t>(rng.Below(3));
    const uint64_t paddr = rng.Below(16 * 1024);
    if (rng.Chance(0.2)) {
      cache.Invalidate(paddr);
    } else {
      cache.Access(paddr, cache.FullWayMask(), cos);
    }
    if (i % 1000 == 0) {
      // Occupancy across COS never exceeds capacity and is internally
      // consistent with the per-set valid counts.
      uint64_t total = 0;
      for (uint8_t c = 0; c < 3; ++c) {
        total += cache.OccupancyLines(c);
      }
      uint64_t valid = 0;
      for (uint32_t s = 0; s < geo.num_sets; ++s) {
        valid += cache.ValidLinesInSet(s);
      }
      ASSERT_EQ(total, valid);
      ASSERT_LE(total, static_cast<uint64_t>(geo.num_ways) * geo.num_sets);
    }
  }
}

}  // namespace
}  // namespace dcat
