#include "src/sim/geometry.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace dcat {
namespace {

TEST(GeometryTest, CapacityMath) {
  CacheGeometry g{.line_size = 64, .num_ways = 8, .num_sets = 64};
  EXPECT_EQ(g.CapacityBytes(), 32_KiB);
  EXPECT_EQ(g.WayCapacityBytes(), 4_KiB);
}

TEST(GeometryTest, SetIndexAndTagRoundTrip) {
  CacheGeometry g{.line_size = 64, .num_ways = 4, .num_sets = 128};
  const uint64_t paddr = 0x123456;
  const uint64_t line = g.LineNumber(paddr);
  EXPECT_EQ(g.SetIndex(paddr), line % 128);
  EXPECT_EQ(g.Tag(paddr), line / 128);
  // Reconstructing the line address from (tag, set) recovers the line.
  EXPECT_EQ(g.Tag(paddr) * 128 + g.SetIndex(paddr), line);
}

TEST(GeometryTest, AddressesInSameLineShareSet) {
  CacheGeometry g{.line_size = 64, .num_ways = 4, .num_sets = 128};
  EXPECT_EQ(g.SetIndex(0x1000), g.SetIndex(0x103F));
  EXPECT_NE(g.SetIndex(0x1000), g.SetIndex(0x1040));
}

TEST(GeometryTest, NonPowerOfTwoSetsSupported) {
  // The Xeon E5 LLC has 36864 sets (not a power of two).
  const CacheGeometry g = XeonE5LlcGeometry();
  EXPECT_EQ(g.num_sets, 36864u);
  EXPECT_LT(g.SetIndex(0xdeadbeef), g.num_sets);
}

TEST(GeometryTest, ValidityChecks) {
  EXPECT_TRUE((CacheGeometry{64, 8, 64}).IsValid());
  EXPECT_FALSE((CacheGeometry{.line_size = 63, .num_ways = 8, .num_sets = 64}).IsValid());
  EXPECT_FALSE((CacheGeometry{.line_size = 64, .num_ways = 0, .num_sets = 64}).IsValid());
  EXPECT_FALSE((CacheGeometry{.line_size = 64, .num_ways = 33, .num_sets = 64}).IsValid());
  EXPECT_FALSE((CacheGeometry{.line_size = 64, .num_ways = 8, .num_sets = 0}).IsValid());
}

TEST(GeometryTest, MakeGeometryDividesEvenly) {
  const CacheGeometry g = MakeGeometry(12_MiB, 12);
  EXPECT_EQ(g.num_ways, 12u);
  EXPECT_EQ(g.CapacityBytes(), 12_MiB);
}

TEST(GeometryTest, PaperMachinePresets) {
  // Xeon-D: 12-way, 12 MiB.
  const CacheGeometry xd = XeonDLlcGeometry();
  EXPECT_EQ(xd.num_ways, 12u);
  EXPECT_EQ(xd.CapacityBytes(), 12_MiB);
  // Xeon E5-2697 v4: 20-way, 45 MiB, 2.25 MiB per way (§5's "capacity of
  // each cache way is 2.25 MB").
  const CacheGeometry xe = XeonE5LlcGeometry();
  EXPECT_EQ(xe.num_ways, 20u);
  EXPECT_EQ(xe.CapacityBytes(), 45_MiB);
  EXPECT_EQ(xe.WayCapacityBytes(), 45_MiB / 20);
  // Private levels.
  EXPECT_EQ(L1dGeometry().CapacityBytes(), 32_KiB);
  EXPECT_EQ(L2Geometry().CapacityBytes(), 256_KiB);
}

TEST(GeometryTest, ToStringMentionsShape) {
  const std::string s = XeonDLlcGeometry().ToString();
  EXPECT_NE(s.find("12-way"), std::string::npos);
}

}  // namespace
}  // namespace dcat
