#include "src/sim/replacement.h"

#include <gtest/gtest.h>

#include <array>

namespace dcat {
namespace {

class ReplacementTest : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(ReplacementTest, PrefersInvalidAllowedWay) {
  VictimSelector sel(GetParam());
  std::array<LineMeta, 4> metas{};
  // Ways 0,1 valid; ways 2,3 free; allowed = all.
  const uint32_t victim = sel.Select(4, /*valid=*/0b0011, /*allowed=*/0b1111, metas.data());
  EXPECT_GE(victim, 2u);
}

TEST_P(ReplacementTest, NeverSelectsOutsideAllowedMask) {
  VictimSelector sel(GetParam());
  std::array<LineMeta, 8> metas{};
  for (int trial = 0; trial < 100; ++trial) {
    const uint32_t victim = sel.Select(8, /*valid=*/0xff, /*allowed=*/0b00110000, metas.data());
    EXPECT_TRUE(victim == 4 || victim == 5);
  }
}

TEST_P(ReplacementTest, SingleAllowedWayIsAlwaysChosen) {
  VictimSelector sel(GetParam());
  std::array<LineMeta, 4> metas{};
  EXPECT_EQ(sel.Select(4, 0b1111, 0b0100, metas.data()), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ReplacementTest,
                         ::testing::Values(ReplacementKind::kLru, ReplacementKind::kNru,
                                           ReplacementKind::kRandom),
                         [](const auto& info) { return ReplacementKindName(info.param); });

TEST(LruTest, EvictsLeastRecentlyUsed) {
  VictimSelector sel(ReplacementKind::kLru);
  std::array<LineMeta, 4> metas{};
  sel.Touch(metas[0], 10);
  sel.Touch(metas[1], 5);  // oldest
  sel.Touch(metas[2], 20);
  sel.Touch(metas[3], 15);
  EXPECT_EQ(sel.Select(4, 0b1111, 0b1111, metas.data()), 1u);
}

TEST(LruTest, RestrictedMaskEvictsOldestWithinMask) {
  VictimSelector sel(ReplacementKind::kLru);
  std::array<LineMeta, 4> metas{};
  sel.Touch(metas[0], 1);  // globally oldest but not allowed
  sel.Touch(metas[1], 5);
  sel.Touch(metas[2], 3);  // oldest allowed
  sel.Touch(metas[3], 9);
  EXPECT_EQ(sel.Select(4, 0b1111, 0b1110, metas.data()), 2u);
}

TEST(NruTest, VictimComesFromUnreferencedWays) {
  VictimSelector sel(ReplacementKind::kNru);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<LineMeta, 4> metas{};
    sel.Touch(metas[0], 1);
    sel.Touch(metas[1], 2);
    // Ways 2, 3 are valid but unreferenced: the victim must be one of them.
    const uint32_t victim = sel.Select(4, 0b1111, 0b1111, metas.data());
    EXPECT_TRUE(victim == 2 || victim == 3) << victim;
  }
}

TEST(NruTest, RandomizesAmongUnreferencedCandidates) {
  // QLRU-like behaviour: the victim is drawn randomly from the
  // non-referenced set, so a streaming scan spreads its evictions.
  VictimSelector sel(ReplacementKind::kNru);
  std::array<int, 4> hits{};
  for (int trial = 0; trial < 400; ++trial) {
    std::array<LineMeta, 4> metas{};
    sel.Touch(metas[0], 1);
    ++hits[sel.Select(4, 0b1111, 0b1111, metas.data())];
  }
  EXPECT_EQ(hits[0], 0);  // referenced: protected
  EXPECT_GT(hits[1], 50);
  EXPECT_GT(hits[2], 50);
  EXPECT_GT(hits[3], 50);
}

TEST(NruTest, AgingClearsReferenceBits) {
  VictimSelector sel(ReplacementKind::kNru);
  std::array<LineMeta, 2> metas{};
  sel.Touch(metas[0], 1);
  sel.Touch(metas[1], 2);
  // Both referenced: an aging pass clears the bits, then one is evicted.
  const uint32_t victim = sel.Select(2, 0b11, 0b11, metas.data());
  EXPECT_TRUE(victim == 0 || victim == 1);
  EXPECT_FALSE(metas[0].referenced);
  EXPECT_FALSE(metas[1].referenced);
}

TEST(RandomTest, CoversAllAllowedWays) {
  VictimSelector sel(ReplacementKind::kRandom);
  std::array<LineMeta, 4> metas{};
  std::array<int, 4> hits{};
  for (int i = 0; i < 1000; ++i) {
    ++hits[sel.Select(4, 0b1111, 0b1011, metas.data())];
  }
  EXPECT_GT(hits[0], 0);
  EXPECT_GT(hits[1], 0);
  EXPECT_EQ(hits[2], 0);  // not allowed
  EXPECT_GT(hits[3], 0);
}

TEST(VictimSelectorTest, TouchSetsBothPoliciesState) {
  VictimSelector sel(ReplacementKind::kLru);
  LineMeta meta;
  sel.Touch(meta, 42);
  EXPECT_EQ(meta.last_use, 42u);
  EXPECT_TRUE(meta.referenced);
}

TEST(VictimSelectorTest, KindNames) {
  EXPECT_STREQ(ReplacementKindName(ReplacementKind::kLru), "lru");
  EXPECT_STREQ(ReplacementKindName(ReplacementKind::kNru), "nru");
  EXPECT_STREQ(ReplacementKindName(ReplacementKind::kRandom), "random");
}

}  // namespace
}  // namespace dcat
