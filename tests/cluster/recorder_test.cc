#include "src/cluster/recorder.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dcat {
namespace {

VmIntervalStats MakeStats(TenantId id, uint32_t ways, double ipc) {
  VmIntervalStats s;
  s.id = id;
  s.ways = ways;
  s.sample.delta.retired_instructions = 1000;
  s.sample.delta.unhalted_cycles = ipc > 0 ? 1000.0 / ipc : 0.0;
  return s;
}

TEST(RecorderTest, EmptySeries) {
  Recorder r;
  EXPECT_TRUE(r.series(1).empty());
  EXPECT_TRUE(r.tenants().empty());
  EXPECT_EQ(r.FinalWays(1), 0u);
  EXPECT_EQ(r.AvgIpc(1, 0, 100), 0.0);
}

TEST(RecorderTest, RecordAppendsPoints) {
  Recorder r;
  r.Record(1.0, {MakeStats(1, 3, 0.5), MakeStats(2, 1, 3.0)});
  r.Record(2.0, {MakeStats(1, 4, 0.6), MakeStats(2, 1, 3.0)});
  EXPECT_EQ(r.series(1).size(), 2u);
  EXPECT_EQ(r.series(2).size(), 2u);
  EXPECT_EQ(r.tenants().size(), 2u);
  EXPECT_DOUBLE_EQ(r.series(1)[1].t, 2.0);
  EXPECT_EQ(r.series(1)[1].ways, 4u);
}

TEST(RecorderTest, FinalAndPeakWays) {
  Recorder r;
  r.Record(1.0, {MakeStats(1, 3, 0.5)});
  r.Record(2.0, {MakeStats(1, 9, 0.9)});
  r.Record(3.0, {MakeStats(1, 5, 0.7)});
  EXPECT_EQ(r.FinalWays(1), 5u);
  EXPECT_EQ(r.PeakWays(1), 9u);
}

TEST(RecorderTest, AvgIpcOverWindow) {
  Recorder r;
  r.Record(1.0, {MakeStats(1, 3, 0.4)});
  r.Record(2.0, {MakeStats(1, 3, 0.6)});
  r.Record(3.0, {MakeStats(1, 3, 1.0)});
  EXPECT_NEAR(r.AvgIpc(1, 1.0, 3.0), 0.5, 1e-9);   // excludes t=3
  EXPECT_NEAR(r.AvgIpc(1, 0.0, 10.0), 2.0 / 3.0, 1e-9);
}

TEST(RecorderTest, TimelineTableRendersNamesAndNormalization) {
  Recorder r;
  r.Record(1.0, {MakeStats(1, 3, 0.5)});
  r.Record(2.0, {MakeStats(1, 4, 1.0)});
  const std::string s = r.TimelineTable({{1, "mlr"}}, {{1, 0.5}});
  EXPECT_NE(s.find("mlr.ways"), std::string::npos);
  EXPECT_NE(s.find("mlr.normIPC"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);  // 1.0 / 0.5 normalized
}

TEST(RecorderTest, TimelineTableWithoutBaseShowsRawIpc) {
  Recorder r;
  r.Record(1.0, {MakeStats(1, 3, 0.5)});
  const std::string s = r.TimelineTable({{1, "vm"}});
  EXPECT_NE(s.find("vm.IPC"), std::string::npos);
}

TEST(RecorderTest, CsvIsLongFormat) {
  Recorder r;
  r.Record(1.0, {MakeStats(1, 3, 0.5), MakeStats(2, 1, 3.0)});
  r.Record(2.0, {MakeStats(1, 4, 0.6), MakeStats(2, 1, 3.0)});
  const std::string csv = r.ToCsv();
  EXPECT_NE(csv.find("tenant,t,ways,ipc,llc_miss_rate\n"), std::string::npos);
  EXPECT_NE(csv.find("1,1.00,3,0.5000"), std::string::npos);
  EXPECT_NE(csv.find("2,2.00,1,3.0000"), std::string::npos);
  // header + 4 data rows.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 5);
}

TEST(RecorderTest, UnnamedTenantsGetDefaultLabels) {
  Recorder r;
  r.Record(1.0, {MakeStats(9, 1, 0.1)});
  const std::string s = r.TimelineTable({});
  EXPECT_NE(s.find("vm9.ways"), std::string::npos);
}

}  // namespace
}  // namespace dcat
