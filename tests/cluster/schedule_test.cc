#include "src/cluster/schedule.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/log.h"
#include "src/common/units.h"
#include "src/workloads/microbench.h"

namespace dcat {
namespace {

TEST(ScheduleParseTest, EmptyIsValidAndEmpty) {
  const ScheduleParseResult r = ParseSchedule("");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.events.empty());
}

TEST(ScheduleParseTest, ParsesSingleEvent) {
  const ScheduleParseResult r = ParseSchedule("10:1=mlr:8M");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].interval, 10u);
  EXPECT_EQ(r.events[0].tenant, 1u);
  EXPECT_EQ(r.events[0].workload_spec, "mlr:8M");
}

TEST(ScheduleParseTest, ParsesAndSortsMultipleEvents) {
  const ScheduleParseResult r = ParseSchedule("20:2=redis,5:1=idle,10:1=mlr:4M");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[0].interval, 5u);
  EXPECT_EQ(r.events[1].interval, 10u);
  EXPECT_EQ(r.events[2].interval, 20u);
}

TEST(ScheduleParseTest, SpecMayContainColons) {
  // The workload spec's own colon (mlr:8M) must not confuse the parser.
  const ScheduleParseResult r = ParseSchedule("3:7=spec:omnetpp");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.events[0].workload_spec, "spec:omnetpp");
}

TEST(ScheduleParseTest, RejectsMalformedItems) {
  EXPECT_FALSE(ParseSchedule("banana").ok);
  EXPECT_FALSE(ParseSchedule("10=mlr:8M").ok);       // missing tenant
  EXPECT_FALSE(ParseSchedule("10:0=mlr:8M").ok);     // tenant 0 invalid
  EXPECT_FALSE(ParseSchedule("x:1=mlr:8M").ok);      // bad interval
  EXPECT_FALSE(ParseSchedule("10:1=").ok);           // empty spec
  EXPECT_FALSE(ParseSchedule("10:1x=mlr").ok);       // trailing junk
}

HostConfig SmallHost() {
  HostConfig config;
  config.socket.num_cores = 4;
  config.socket.llc_geometry = MakeGeometry(4_MiB, 8);
  config.mode = ManagerMode::kDcat;
  config.cycles_per_interval = 2e6;
  return config;
}

TEST(ScheduleRunnerTest, FiresEventsAtTheirIntervals) {
  SetLogLevel(LogLevel::kOff);
  Host host(SmallHost());
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<IdleWorkload>());

  ScheduleRunner runner(ParseSchedule("2:1=lookbusy").events);
  EXPECT_EQ(runner.Fire(0, host), 0);
  EXPECT_EQ(runner.Fire(1, host), 0);
  host.Step();
  EXPECT_EQ(host.socket().core(0).counters().retired_instructions, 0u);  // still idle
  EXPECT_EQ(runner.Fire(2, host), 1);
  host.Step();
  EXPECT_GT(host.socket().core(0).counters().retired_instructions, 0u);
  EXPECT_TRUE(runner.done());
  SetLogLevel(LogLevel::kWarning);
}

TEST(ScheduleRunnerTest, CatchesUpOnSkippedIntervals) {
  SetLogLevel(LogLevel::kOff);
  Host host(SmallHost());
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<IdleWorkload>());
  ScheduleRunner runner(ParseSchedule("1:1=lookbusy,3:1=idle").events);
  // Jumping straight to interval 5 fires both pending events in order.
  EXPECT_EQ(runner.Fire(5, host), 2);
  EXPECT_TRUE(runner.done());
  SetLogLevel(LogLevel::kWarning);
}

TEST(ScheduleRunnerTest, UnknownTenantAndBadSpecAreSkipped) {
  SetLogLevel(LogLevel::kOff);
  Host host(SmallHost());
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<IdleWorkload>());
  ScheduleRunner runner(ParseSchedule("1:9=lookbusy,2:1=bogus").events);
  EXPECT_EQ(runner.Fire(10, host), 0);  // both skipped, no crash
  SetLogLevel(LogLevel::kWarning);
}

}  // namespace
}  // namespace dcat
