#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/host.h"
#include "src/common/units.h"
#include "src/workloads/microbench.h"

namespace dcat {
namespace {

HostConfig SmallHostConfig(ManagerMode mode) {
  HostConfig config;
  config.socket.num_cores = 6;
  config.socket.llc_geometry = MakeGeometry(4_MiB, 8);
  config.mode = mode;
  config.cycles_per_interval = 2e6;  // keep unit tests fast
  return config;
}

TEST(VmTest, PinsVcpusToDistinctCores) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  Vm& a = host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 2},
                     std::make_unique<LookbusyWorkload>());
  Vm& b = host.AddVm(VmConfig{.id = 2, .name = "b", .vcpus = 2, .baseline_ways = 2},
                     std::make_unique<LookbusyWorkload>());
  EXPECT_EQ(a.cores(), (std::vector<uint16_t>{0, 1}));
  EXPECT_EQ(b.cores(), (std::vector<uint16_t>{2, 3}));
}

TEST(VmTest, TenantSpecReflectsConfig) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  Vm& vm = host.AddVm(VmConfig{.id = 7, .name = "x", .vcpus = 2, .baseline_ways = 3},
                      std::make_unique<LookbusyWorkload>());
  const TenantSpec spec = vm.tenant_spec();
  EXPECT_EQ(spec.id, 7u);
  EXPECT_EQ(spec.baseline_ways, 3u);
  EXPECT_EQ(spec.cores.size(), 2u);
}

TEST(VmTest, RunUntilAdvancesAllCoresToTarget) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MlrWorkload>(64_KiB));  // single-threaded: vCPU 1 idles
  host.Step();
  const double target = 2e6;
  EXPECT_GE(host.socket().core(0).wall_cycles(), target);
  EXPECT_GE(host.socket().core(1).wall_cycles(), target);
  // vCPU 1 idles: no instructions retired.
  EXPECT_EQ(host.socket().core(1).counters().retired_instructions, 0u);
  EXPECT_GT(host.socket().core(0).counters().retired_instructions, 0u);
}

TEST(VmTest, ReplaceWorkloadSwitchesExecution) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  Vm& vm = host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 2},
                      std::make_unique<IdleWorkload>());
  host.Step();
  EXPECT_EQ(host.socket().core(0).counters().retired_instructions, 0u);
  vm.ReplaceWorkload(std::make_unique<LookbusyWorkload>());
  host.Step();
  EXPECT_GT(host.socket().core(0).counters().retired_instructions, 0u);
}

TEST(HostTest, StepReturnsPerVmStats) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  host.AddVm(VmConfig{.id = 2, .name = "b", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MlrWorkload>(1_MiB));
  const auto stats = host.Step();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].id, 1u);
  EXPECT_GT(stats[0].sample.ipc(), stats[1].sample.ipc());  // lookbusy is faster
  EXPECT_GT(stats[1].sample.llc_miss_rate(), 0.0);
}

TEST(HostTest, IntervalStatsAreDeltasNotCumulative) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  const auto first = host.Step();
  const auto second = host.Step();
  // Roughly the same amount of work per interval (not doubling).
  EXPECT_NEAR(static_cast<double>(second[0].sample.instructions()),
              static_cast<double>(first[0].sample.instructions()),
              static_cast<double>(first[0].sample.instructions()) * 0.2);
}

TEST(HostTest, NowSecondsTracksIntervals) {
  Host host(SmallHostConfig(ManagerMode::kDcat));
  EXPECT_DOUBLE_EQ(host.now_seconds(), 0.0);
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  host.Run(3);
  EXPECT_DOUBLE_EQ(host.now_seconds(), 3.0);
  EXPECT_EQ(host.intervals(), 3u);
}

TEST(HostTest, DcatModeExposesController) {
  Host host(SmallHostConfig(ManagerMode::kDcat));
  EXPECT_NE(host.dcat(), nullptr);
  EXPECT_EQ(host.manager().name(), "dcat");
}

TEST(HostTest, SharedAndStaticModesHaveNoController) {
  Host shared(SmallHostConfig(ManagerMode::kShared));
  EXPECT_EQ(shared.dcat(), nullptr);
  Host fixed(SmallHostConfig(ManagerMode::kStaticCat));
  EXPECT_EQ(fixed.dcat(), nullptr);
  EXPECT_EQ(fixed.manager().name(), "static-cat");
}

TEST(HostTest, StaticModeProgramsBaselineMasks) {
  Host host(SmallHostConfig(ManagerMode::kStaticCat));
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<LookbusyWorkload>());
  EXPECT_EQ(host.manager().TenantWays(1), 3u);
  EXPECT_EQ(host.pqos().GetCosMask(1), 0b111u);
}

TEST(HostTest, OutOfCoresDies) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 4, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  EXPECT_DEATH(host.AddVm(VmConfig{.id = 2, .name = "b", .vcpus = 4, .baseline_ways = 2},
                          std::make_unique<LookbusyWorkload>()),
               "out of physical cores");
}

TEST(HostTest, RemoveVmFreesCoresForReuse) {
  Host host(SmallHostConfig(ManagerMode::kDcat));
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 4, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  host.AddVm(VmConfig{.id = 2, .name = "b", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  host.Run(2);
  ASSERT_EQ(host.num_vms(), 2u);
  host.RemoveVm(1);
  EXPECT_EQ(host.num_vms(), 1u);
  // 6 cores total; without the freed cores this VM would not fit.
  Vm& replacement = host.AddVm(VmConfig{.id = 3, .name = "c", .vcpus = 4, .baseline_ways = 2},
                               std::make_unique<MlrWorkload>(64_KiB));
  EXPECT_EQ(replacement.cores().size(), 4u);
  host.Run(2);  // keeps running without assertion failures
  EXPECT_GT(host.manager().TenantWays(3), 0u);
}

TEST(HostTest, RemoveUnknownVmIsIgnored) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  host.RemoveVm(42);
  EXPECT_EQ(host.num_vms(), 1u);
}

TEST(HostTest, LateArrivalStartsAtCurrentWallClock) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  host.AddVm(VmConfig{.id = 1, .name = "a", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());
  host.Run(3);
  Vm& late = host.AddVm(VmConfig{.id = 2, .name = "late", .vcpus = 2, .baseline_ways = 2},
                        std::make_unique<LookbusyWorkload>());
  // The late VM's cores were idled forward: they must not replay 3
  // intervals of missed work in the next step.
  const auto stats = host.Step();
  const double target = 4 * 2e6;
  EXPECT_GE(host.socket().core(late.cores()[0]).wall_cycles(), target);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_NEAR(static_cast<double>(stats[1].sample.instructions()),
              static_cast<double>(stats[0].sample.instructions()),
              static_cast<double>(stats[0].sample.instructions()) * 0.25);
}

TEST(HostTest, MemoryBusAdvancesAtIntervalBoundaries) {
  HostConfig config = SmallHostConfig(ManagerMode::kShared);
  config.socket.memory_bus.enabled = true;
  config.socket.memory_bus.bytes_per_cycle = 0.05;  // tiny: easy to load
  Host host(config);
  host.AddVm(VmConfig{.id = 1, .name = "stream", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MloadWorkload>(16_MiB));
  host.Step();
  // The streaming VM saturated the bus; the boundary update must have
  // produced a >1 contention multiplier for the next interval.
  EXPECT_GT(host.socket().memory_bus().contention_multiplier(), 1.0);
  EXPECT_GT(host.socket().memory_bus().TotalBytes(0), 0u);
}

TEST(HostTest, DisabledBusStaysTransparentThroughSteps) {
  Host host(SmallHostConfig(ManagerMode::kShared));
  host.AddVm(VmConfig{.id = 1, .name = "stream", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MloadWorkload>(16_MiB));
  host.Run(2);
  EXPECT_DOUBLE_EQ(host.socket().memory_bus().contention_multiplier(), 1.0);
}

TEST(HostTest, ManagerModeNames) {
  EXPECT_STREQ(ManagerModeName(ManagerMode::kShared), "shared");
  EXPECT_STREQ(ManagerModeName(ManagerMode::kStaticCat), "static-cat");
  EXPECT_STREQ(ManagerModeName(ManagerMode::kDcat), "dcat");
}

}  // namespace
}  // namespace dcat
