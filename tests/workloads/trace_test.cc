#include "src/workloads/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/units.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"

namespace dcat {
namespace {

SocketConfig SmallConfig() {
  SocketConfig config;
  config.num_cores = 2;
  config.llc_geometry = MakeGeometry(1_MiB, 8);
  return config;
}

TEST(TraceParseTest, ParsesAllRecordKinds) {
  std::vector<TraceRecord> records;
  std::string error;
  ASSERT_TRUE(ParseTrace("R 0x1000\nW 4096\nC 100\n", &records, &error)) << error;
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].kind, TraceRecord::Kind::kRead);
  EXPECT_EQ(records[0].value, 0x1000u);
  EXPECT_EQ(records[1].kind, TraceRecord::Kind::kWrite);
  EXPECT_EQ(records[1].value, 4096u);
  EXPECT_EQ(records[2].kind, TraceRecord::Kind::kCompute);
  EXPECT_EQ(records[2].value, 100u);
}

TEST(TraceParseTest, LowercaseAndCommentsAccepted) {
  std::vector<TraceRecord> records;
  std::string error;
  ASSERT_TRUE(ParseTrace("# header\nr 1\n\nw 2  # inline\nc 3\n", &records, &error)) << error;
  EXPECT_EQ(records.size(), 3u);
}

TEST(TraceParseTest, RejectsMalformedInput) {
  std::vector<TraceRecord> records;
  std::string error;
  EXPECT_FALSE(ParseTrace("", &records, &error));
  EXPECT_FALSE(ParseTrace("X 5\n", &records, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseTrace("R\n", &records, &error));
  EXPECT_FALSE(ParseTrace("C 0\n", &records, &error));
  EXPECT_FALSE(ParseTrace("# only comments\n", &records, &error));
}

TEST(TraceParseTest, ErrorsCarryLineNumbers) {
  std::vector<TraceRecord> records;
  std::string error;
  EXPECT_FALSE(ParseTrace("R 1\nR 2\nbogus 3\n", &records, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos);
}

TEST(TraceWorkloadTest, InstructionAccounting) {
  std::vector<TraceRecord> records;
  std::string error;
  ASSERT_TRUE(ParseTrace("R 0\nC 9\n", &records, &error));
  TraceWorkload trace("t", records);
  EXPECT_EQ(trace.trace_length(), 2u);
  EXPECT_EQ(trace.instructions_per_pass(), 10u);
}

TEST(TraceWorkloadTest, ReplaysCyclically) {
  std::vector<TraceRecord> records;
  std::string error;
  ASSERT_TRUE(ParseTrace("R 0\nR 64\nC 8\n", &records, &error));  // 10 ins/pass
  TraceWorkload trace("t", records);

  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  trace.Execute(ctx, 0, 100);
  EXPECT_EQ(trace.passes(), 10u);
  EXPECT_EQ(socket.core(0).counters().retired_instructions, 100u);
  // Two distinct lines only.
  EXPECT_EQ(socket.core(0).counters().llc_misses, 2u);
}

TEST(TraceWorkloadTest, MultiVcpuSpreadsCursors) {
  std::vector<TraceRecord> records;
  std::string error;
  ASSERT_TRUE(ParseTrace("R 0\nR 64\nR 128\nR 192\n", &records, &error));
  TraceWorkload trace("t", records, /*vcpus=*/2);
  EXPECT_EQ(trace.num_vcpus(), 2u);

  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext c0(&socket.core(0), &pt);
  ExecutionContext c1(&socket.core(1), &pt);
  trace.Execute(c0, 0, 2);
  trace.Execute(c1, 1, 2);
  // vCPU 1 starts halfway through the trace: addresses 128, 192 first, so
  // after two accesses each, all four lines are resident.
  EXPECT_TRUE(socket.llc().Contains(0));
  EXPECT_TRUE(socket.llc().Contains(128));
  EXPECT_TRUE(socket.llc().Contains(192));
}

TEST(TraceWorkloadTest, FromFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcat_trace_test.txt").string();
  {
    std::ofstream out(path);
    out << "# tiny trace\nR 0x0\nW 0x40\nC 10\n";
  }
  auto trace = TraceWorkload::FromFile(path, 1);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->trace_length(), 3u);
  EXPECT_EQ(trace->instructions_per_pass(), 12u);
  std::remove(path.c_str());
}

TEST(TraceWorkloadTest, FromFileMissingReturnsNull) {
  EXPECT_EQ(TraceWorkload::FromFile("/nonexistent/trace.txt"), nullptr);
}

TEST(TraceWorkloadTest, ComputeRecordSplitsAcrossChunks) {
  std::vector<TraceRecord> records;
  std::string error;
  ASSERT_TRUE(ParseTrace("C 1000\nR 0\n", &records, &error));
  TraceWorkload trace("t", records);
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  trace.Execute(ctx, 0, 300);  // stops mid-compute
  EXPECT_EQ(socket.core(0).counters().retired_instructions, 300u);
  EXPECT_EQ(socket.core(0).counters().l1_references, 0u);
}

}  // namespace
}  // namespace dcat
