#include "src/workloads/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcat {
namespace {

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator zipf(100, 0.99);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.Next(rng), 100u);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfGenerator zipf(1, 0.99);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Next(rng), 0u);
  }
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(42);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTest, HeadConcentrationMatchesTheory) {
  // With theta=0.99, n=1000, the top 10% of keys should receive well over
  // half of the draws.
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(7);
  int head = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(rng) < 100) {
      ++head;
    }
  }
  EXPECT_GT(static_cast<double>(head) / kDraws, 0.6);
}

TEST(ZipfTest, ThetaZeroIsNearlyUniform) {
  ZipfGenerator zipf(10, 1e-9);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[zipf.Next(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 / 4);
  }
}

TEST(ZipfTest, DeterministicGivenSameRngSeed) {
  ZipfGenerator zipf(500, 0.9);
  Rng a(11);
  Rng b(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Next(a), zipf.Next(b));
  }
}

TEST(ZipfTest, AccessorsReflectConstruction) {
  ZipfGenerator zipf(12345, 0.8);
  EXPECT_EQ(zipf.n(), 12345u);
  EXPECT_DOUBLE_EQ(zipf.theta(), 0.8);
}

}  // namespace
}  // namespace dcat
