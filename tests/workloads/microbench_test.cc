#include "src/workloads/microbench.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"

namespace dcat {
namespace {

SocketConfig SmallConfig() {
  SocketConfig config;
  config.num_cores = 2;
  config.llc_geometry = MakeGeometry(1_MiB, 8);
  return config;
}

class MicrobenchTest : public ::testing::Test {
 protected:
  // 4K paging (the realistic default) also lets tests observe the footprint
  // through mapped_pages().
  MicrobenchTest()
      : socket_(SmallConfig()),
        page_table_(PagePolicy::kRandom4K, 1_GiB, 1),
        ctx_(&socket_.core(0), &page_table_) {}

  Socket socket_;
  PageTable page_table_;
  ExecutionContext ctx_;
};

TEST_F(MicrobenchTest, MlrNameEncodesWorkingSet) {
  EXPECT_EQ(MlrWorkload(8_MiB).name(), "MLR-8MB");
  EXPECT_EQ(MloadWorkload(60_MiB).name(), "MLOAD-60MB");
}

TEST_F(MicrobenchTest, MlrStaysInsideWorkingSet) {
  MlrWorkload mlr(64_KiB);
  mlr.Execute(ctx_, 0, 30000);
  // Every mapped page must be below the working-set bound.
  EXPECT_LE(page_table_.mapped_pages() * 4_KiB, 64_KiB);
  EXPECT_GT(mlr.AccessCount(), 0u);
}

TEST_F(MicrobenchTest, MlrRetiresRequestedInstructions) {
  MlrWorkload mlr(64_KiB);
  mlr.Execute(ctx_, 0, 30000);
  EXPECT_NEAR(static_cast<double>(socket_.core(0).counters().retired_instructions), 30000.0,
              3.0);
}

TEST_F(MicrobenchTest, MlrMemPerInstructionIsOneThird) {
  MlrWorkload mlr(256_KiB);
  mlr.Execute(ctx_, 0, 90000);
  const auto& c = socket_.core(0).counters();
  EXPECT_NEAR(c.MemAccessesPerInstruction(), 1.0 / 3.0, 0.01);
}

TEST_F(MicrobenchTest, MloadIsSequentialAndCyclic) {
  MloadWorkload mload(1_MiB);
  mload.Execute(ctx_, 0, 60000);
  // 20000 accesses * 8B = 160 KB touched: first 40 pages mapped, in order.
  EXPECT_EQ(page_table_.mapped_pages(), 40u);
  // Sequential 8B reads: 7 of 8 accesses hit the line in L1.
  const auto& c = socket_.core(0).counters();
  EXPECT_LT(static_cast<double>(c.l1_misses) / static_cast<double>(c.l1_references), 0.15);
}

TEST_F(MicrobenchTest, MloadWrapsAround) {
  MloadWorkload mload(16_KiB);  // tiny: wraps many times
  mload.Execute(ctx_, 0, 30000);
  EXPECT_EQ(page_table_.mapped_pages(), 4u);  // never leaves 16 KiB
}

TEST_F(MicrobenchTest, MlrLatencyDropsWithCacheFit) {
  // Working set fits LLC (1 MiB): after a warmup pass, latency per access
  // must be far below DRAM cost.
  MlrWorkload mlr(128_KiB);
  mlr.Execute(ctx_, 0, 300000);  // warm
  mlr.ResetMetrics();
  mlr.Execute(ctx_, 0, 300000);
  EXPECT_LT(mlr.AvgAccessLatencyCycles(), 60.0);

  MlrWorkload big(16_MiB, /*seed=*/2);
  PageTable pt2(PagePolicy::kContiguous, 1_GiB, 2);
  ExecutionContext ctx2(&socket_.core(1), &pt2);
  big.Execute(ctx2, 0, 300000);
  big.ResetMetrics();
  big.Execute(ctx2, 0, 300000);
  EXPECT_GT(big.AvgAccessLatencyCycles(), 100.0);  // mostly DRAM
}

TEST_F(MicrobenchTest, ResetMetricsClearsLatency) {
  MlrWorkload mlr(64_KiB);
  mlr.Execute(ctx_, 0, 3000);
  EXPECT_GT(mlr.AccessCount(), 0u);
  mlr.ResetMetrics();
  EXPECT_EQ(mlr.AccessCount(), 0u);
}

TEST_F(MicrobenchTest, LookbusyHasTinyCacheFootprint) {
  LookbusyWorkload lookbusy;
  lookbusy.Execute(ctx_, 0, 500000);
  const auto& c = socket_.core(0).counters();
  // ~1% memory instructions, nearly all L1 hits.
  EXPECT_LT(c.MemAccessesPerInstruction(), 0.02);
  EXPECT_LT(c.llc_references, 200u);
  EXPECT_EQ(page_table_.mapped_pages(), 1u);
}

TEST_F(MicrobenchTest, LookbusyHighIpc) {
  LookbusyWorkload lookbusy;
  lookbusy.Execute(ctx_, 0, 500000);
  EXPECT_GT(socket_.core(0).counters().Ipc(), 2.0);
}

TEST_F(MicrobenchTest, IdleAdvancesWallClockWithoutInstructions) {
  IdleWorkload idle;
  idle.Execute(ctx_, 0, 100000);
  EXPECT_EQ(socket_.core(0).counters().retired_instructions, 0u);
  EXPECT_GT(socket_.core(0).wall_cycles(), 0.0);
}

TEST_F(MicrobenchTest, MlrIsDeterministicPerSeed) {
  MlrWorkload a(64_KiB, 5);
  MlrWorkload b(64_KiB, 5);
  PageTable pta(PagePolicy::kContiguous, 1_GiB, 9);
  PageTable ptb(PagePolicy::kContiguous, 1_GiB, 9);
  Socket s1(SmallConfig());
  Socket s2(SmallConfig());
  ExecutionContext ca(&s1.core(0), &pta);
  ExecutionContext cb(&s2.core(0), &ptb);
  a.Execute(ca, 0, 30000);
  b.Execute(cb, 0, 30000);
  EXPECT_EQ(s1.core(0).counters().llc_misses, s2.core(0).counters().llc_misses);
  EXPECT_DOUBLE_EQ(a.AvgAccessLatencyCycles(), b.AvgAccessLatencyCycles());
}

}  // namespace
}  // namespace dcat
