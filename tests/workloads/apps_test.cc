#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/search.h"
#include "src/workloads/sqldb.h"

namespace dcat {
namespace {

SocketConfig SmallConfig() {
  SocketConfig config;
  config.num_cores = 2;
  config.llc_geometry = MakeGeometry(4_MiB, 8);
  return config;
}

class AppsTest : public ::testing::Test {
 protected:
  AppsTest()
      : socket_(SmallConfig()),
        page_table_(PagePolicy::kRandom4K, 2_GiB, 1),
        ctx_(&socket_.core(0), &page_table_) {}

  Socket socket_;
  PageTable page_table_;
  ExecutionContext ctx_;
};

// --- KV store (Redis proxy) ---

TEST_F(AppsTest, KvStoreServesRequests) {
  KvStoreWorkload kv(KvStoreParams{.num_records = 10000});
  kv.Execute(ctx_, 0, 500000);
  EXPECT_GT(kv.requests_completed(), 500u);
  EXPECT_GT(kv.AvgRequestLatencyCycles(), 0.0);
  EXPECT_GE(kv.P99RequestLatencyCycles(), kv.AvgRequestLatencyCycles());
}

TEST_F(AppsTest, KvStoreDefaultsMatchPaperSetup) {
  KvStoreParams params;
  EXPECT_EQ(params.num_records, 1'000'000u);  // 1M records
  EXPECT_EQ(params.value_bytes, 128u);        // 128 bytes each
  KvStoreWorkload kv;
  EXPECT_EQ(kv.name(), "redis-kv");
  EXPECT_EQ(kv.num_vcpus(), 2u);
}

TEST_F(AppsTest, KvStoreHotSetBenefitsFromCache) {
  // Small hot set (Zipf 0.99 over 10K keys): warm runs must beat cold ones.
  KvStoreWorkload kv(KvStoreParams{.num_records = 10000});
  kv.Execute(ctx_, 0, 1'000'000);
  const double cold = kv.AvgRequestLatencyCycles();
  kv.ResetMetrics();
  kv.Execute(ctx_, 0, 1'000'000);
  const double warm = kv.AvgRequestLatencyCycles();
  EXPECT_LT(warm, cold);
}

TEST_F(AppsTest, KvStoreResetMetricsClearsCounts) {
  KvStoreWorkload kv(KvStoreParams{.num_records = 1000});
  kv.Execute(ctx_, 0, 100000);
  kv.ResetMetrics();
  EXPECT_EQ(kv.requests_completed(), 0u);
  EXPECT_EQ(kv.AvgRequestLatencyCycles(), 0.0);
}

// --- SQL DB (PostgreSQL proxy) ---

TEST_F(AppsTest, SqlDbBuildsMultiLevelBtree) {
  SqlDbWorkload db(SqlDbParams{.num_tuples = 10'000'000});
  EXPECT_EQ(db.num_levels(), 4u);  // 10M tuples / fanout 64: 4 levels
  SqlDbWorkload wide(SqlDbParams{.num_tuples = 10'000'000, .btree_fanout = 256});
  EXPECT_EQ(wide.num_levels(), 3u);
  SqlDbWorkload tiny(SqlDbParams{.num_tuples = 200, .btree_fanout = 256});
  EXPECT_EQ(tiny.num_levels(), 1u);
}

TEST_F(AppsTest, SqlDbExecutesTransactions) {
  SqlDbWorkload db(SqlDbParams{.num_tuples = 100000});
  db.Execute(ctx_, 0, 1'000'000);
  EXPECT_GT(db.transactions(), 100u);
  EXPECT_GT(db.AvgTxnLatencyCycles(), 0.0);
}

TEST_F(AppsTest, SqlDbUpperIndexLevelsAreHot) {
  SqlDbWorkload db(SqlDbParams{.num_tuples = 1'000'000});
  db.Execute(ctx_, 0, 2'000'000);
  const auto& c = socket_.core(0).counters();
  // Root/inner nodes hit in private caches: LLC references well below L1
  // references.
  EXPECT_LT(static_cast<double>(c.llc_references) / static_cast<double>(c.l1_references), 0.8);
}

TEST_F(AppsTest, SqlDbName) {
  EXPECT_EQ(SqlDbWorkload().name(), "postgres-select");
}

// --- Search (Elasticsearch proxy) ---

TEST_F(AppsTest, SearchExecutesQueries) {
  SearchWorkload search(SearchParams{.num_docs = 10000});
  search.Execute(ctx_, 0, 2'000'000);
  EXPECT_GT(search.queries(), 100u);
  EXPECT_GE(search.P99QueryLatencyCycles(), search.AvgQueryLatencyCycles());
}

TEST_F(AppsTest, SearchDefaultsMatchYcsbC) {
  SearchParams params;
  EXPECT_EQ(params.num_docs, 100'000u);  // 100K records
  EXPECT_EQ(params.doc_bytes, 1024u);    // 1 KB each
  EXPECT_EQ(SearchWorkload().name(), "elasticsearch-ycsbc");
}

TEST_F(AppsTest, SearchResetMetrics) {
  SearchWorkload search(SearchParams{.num_docs = 1000});
  search.Execute(ctx_, 0, 500000);
  search.ResetMetrics();
  EXPECT_EQ(search.queries(), 0u);
}

TEST_F(AppsTest, SearchLatencyScalesWithCorpusVsCacheSize) {
  // A corpus that fits the 4 MiB LLC must serve queries faster (after
  // warmup) than one that is mostly DRAM-resident.
  SearchWorkload small(SearchParams{.num_docs = 2000});  // ~2 MB
  small.Execute(ctx_, 0, 4'000'000);
  small.ResetMetrics();
  small.Execute(ctx_, 0, 4'000'000);

  Socket socket2(SmallConfig());
  PageTable pt2(PagePolicy::kRandom4K, 2_GiB, 2);
  ExecutionContext ctx2(&socket2.core(0), &pt2);
  SearchWorkload large(SearchParams{.num_docs = 80000});  // ~80 MB
  large.Execute(ctx2, 0, 4'000'000);
  large.ResetMetrics();
  large.Execute(ctx2, 0, 4'000'000);

  EXPECT_LT(small.AvgQueryLatencyCycles(), large.AvgQueryLatencyCycles());
}

// --- key distribution properties ---

TEST_F(AppsTest, KvStoreGaussianConcentratesAroundTheCenter) {
  KvStoreWorkload kv(KvStoreParams{.num_records = 100000});  // sigma = 4000
  kv.Execute(ctx_, 0, 2'000'000);
  // Gaussian keys live near the center: the mapped portion of the value
  // heap must be a small fraction of the full 100K-record space.
  // heap region begins after 100K buckets; hot window ~ +-4 sigma.
  const uint64_t total_bytes = 100000ull * (64 + 128);
  EXPECT_LT(page_table_.mapped_pages() * 4096, total_bytes / 2);
}

TEST_F(AppsTest, KvStoreZipfPatternSelectable) {
  KvStoreWorkload kv(
      KvStoreParams{.num_records = 100000, .pattern = KeyPattern::kZipfian}, 3);
  kv.Execute(ctx_, 0, 500000);
  EXPECT_GT(kv.requests_completed(), 100u);
}

TEST_F(AppsTest, SearchZipfHeadDominates) {
  // With YCSB's Zipfian request distribution the low-id (popular) docs
  // are touched overwhelmingly more than the tail.
  SearchWorkload search(SearchParams{.num_docs = 50000});
  search.Execute(ctx_, 0, 4'000'000);
  // Doc bodies start after dictionary + doc table; popular docs are the
  // low addresses there. Warm run must be faster than a uniform one.
  SearchWorkload uniform(SearchParams{.num_docs = 50000, .zipf_theta = 0.0}, 2);
  Socket socket2(SmallConfig());
  PageTable pt2(PagePolicy::kRandom4K, 2_GiB, 5);
  ExecutionContext ctx2(&socket2.core(0), &pt2);
  uniform.Execute(ctx2, 0, 4'000'000);

  search.ResetMetrics();
  uniform.ResetMetrics();
  search.Execute(ctx_, 0, 2'000'000);
  uniform.Execute(ctx2, 0, 2'000'000);
  EXPECT_LT(search.AvgQueryLatencyCycles(), uniform.AvgQueryLatencyCycles());
}

// All three apps must present a cache-sensitive profile: measurable LLC
// reference rate (above dCat's donor threshold).
TEST_F(AppsTest, AppsGenerateLlcTraffic) {
  KvStoreWorkload kv(KvStoreParams{.num_records = 100000});
  kv.Execute(ctx_, 0, 1'000'000);
  const auto& c = socket_.core(0).counters();
  const double refs_per_ki =
      1000.0 * static_cast<double>(c.llc_references) / static_cast<double>(c.retired_instructions);
  EXPECT_GT(refs_per_ki, 1.0);
}

}  // namespace
}  // namespace dcat
