#include "src/workloads/spec_suite.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/units.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"

namespace dcat {
namespace {

SocketConfig SmallConfig() {
  SocketConfig config;
  config.num_cores = 1;
  config.llc_geometry = MakeGeometry(4_MiB, 8);
  return config;
}

TEST(SpecRosterTest, HasTwentyBenchmarks) {
  EXPECT_EQ(SpecCpu2006Roster().size(), 20u);
}

TEST(SpecRosterTest, NamesAreUniqueAndParamsSane) {
  std::set<std::string> names;
  for (const SpecProxyParams& p : SpecCpu2006Roster()) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
    EXPECT_GT(p.wss_bytes, 0u);
    EXPECT_GT(p.cwss_bytes, 0u);
    EXPECT_LE(p.cwss_bytes, p.wss_bytes);
    EXPECT_GE(p.hot_probability, 0.0);
    EXPECT_LE(p.hot_probability, 1.0);
    EXPECT_GT(p.mem_per_instruction, 0.0);
    EXPECT_LE(p.mem_per_instruction, 1.0);
  }
}

TEST(SpecRosterTest, ContainsThePaperHighlights) {
  // omnetpp and astar are the paper's high-CWSS/WSS examples; lbm and
  // libquantum its streaming codes.
  for (const char* name : {"omnetpp", "astar", "lbm", "libquantum", "mcf"}) {
    EXPECT_NO_FATAL_FAILURE(SpecParamsByName(name));
  }
  const auto omnetpp = SpecParamsByName("omnetpp");
  EXPECT_GT(static_cast<double>(omnetpp.cwss_bytes) / omnetpp.wss_bytes, 0.5);
  const auto lbm = SpecParamsByName("lbm");
  EXPECT_LT(lbm.hot_probability, 0.1);
  EXPECT_EQ(lbm.cold_pattern, AccessPattern::kSequential);
}

TEST(SpecProxyTest, RetiresApproximatelyRequestedInstructions) {
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  SpecProxyWorkload w(SpecParamsByName("hmmer"));
  w.Execute(ctx, 0, 100000);
  EXPECT_NEAR(static_cast<double>(socket.core(0).counters().retired_instructions), 100000.0,
              static_cast<double>(100000) * 0.05);
}

TEST(SpecProxyTest, MemPerInstructionMatchesParams) {
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  const auto params = SpecParamsByName("mcf");  // 0.40 target
  SpecProxyWorkload w(params);
  w.Execute(ctx, 0, 200000);
  const double measured = socket.core(0).counters().MemAccessesPerInstruction();
  // Derived from integer compute counts; allow rounding slack.
  EXPECT_NEAR(measured, params.mem_per_instruction, 0.12);
}

TEST(SpecProxyTest, HotRegionGetsMostAccesses) {
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  SpecProxyWorkload w(SpecProxyParams{.name = "test",
                                      .wss_bytes = 8_MiB,
                                      .cwss_bytes = 64_KiB,
                                      .hot_probability = 0.95,
                                      .cold_pattern = AccessPattern::kRandom,
                                      .mem_per_instruction = 0.5});
  w.Execute(ctx, 0, 400000);
  // With 95% of accesses in a 64 KiB region that lives in L1/L2, LLC
  // references are a small fraction of L1 references.
  const auto& c = socket.core(0).counters();
  EXPECT_LT(static_cast<double>(c.llc_references) / static_cast<double>(c.l1_references), 0.25);
}

TEST(SpecProxyTest, StreamingProxyHasHighMissRate) {
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  SpecProxyWorkload w(SpecParamsByName("lbm"));  // 60 MiB stream >> 4 MiB LLC
  w.Execute(ctx, 0, 500000);  // warm
  const PerfCounterBlock before = socket.core(0).counters();
  w.Execute(ctx, 0, 500000);
  const PerfCounterBlock d = socket.core(0).counters() - before;
  EXPECT_GT(d.LlcMissRate(), 0.5);
}

TEST(SpecProxyTest, IterationCountTracksProgress) {
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 1_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  SpecProxyWorkload w(SpecParamsByName("povray"));
  w.Execute(ctx, 0, 50000);
  EXPECT_GT(w.iterations(), 0u);
  const uint64_t first = w.iterations();
  w.Execute(ctx, 0, 50000);
  EXPECT_GT(w.iterations(), first);
  w.ResetMetrics();
  EXPECT_EQ(w.iterations(), 0u);
}

// Property sweep: every roster entry runs without touching memory outside
// its declared working set.
class SpecRosterPropertyTest : public ::testing::TestWithParam<SpecProxyParams> {};

TEST_P(SpecRosterPropertyTest, StaysInsideWorkingSet) {
  Socket socket(SmallConfig());
  PageTable pt(PagePolicy::kContiguous, 8_GiB, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  SpecProxyWorkload w(GetParam());
  w.Execute(ctx, 0, 100000);
  EXPECT_LE(pt.mapped_pages() * 4_KiB, GetParam().wss_bytes + 4_KiB);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SpecRosterPropertyTest,
                         ::testing::ValuesIn(SpecCpu2006Roster()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace dcat
