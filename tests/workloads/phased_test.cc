#include "src/workloads/phased.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/units.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"
#include "src/workloads/microbench.h"

namespace dcat {
namespace {

SocketConfig SmallConfig() {
  SocketConfig config;
  config.num_cores = 1;
  config.llc_geometry = MakeGeometry(1_MiB, 8);
  return config;
}

class PhasedTest : public ::testing::Test {
 protected:
  PhasedTest()
      : socket_(SmallConfig()),
        page_table_(PagePolicy::kContiguous, 1_GiB, 1),
        ctx_(&socket_.core(0), &page_table_) {}

  Socket socket_;
  PageTable page_table_;
  ExecutionContext ctx_;
};

TEST_F(PhasedTest, RunsPhasesInOrder) {
  PhasedWorkload w("test");
  w.AddPhase(std::make_unique<LookbusyWorkload>(), 10000);
  w.AddPhase(std::make_unique<MlrWorkload>(64_KiB), 0);  // final, unbounded
  EXPECT_EQ(w.current_phase(), 0u);
  w.Execute(ctx_, 0, 5000);
  EXPECT_EQ(w.current_phase(), 0u);
  w.Execute(ctx_, 0, 10000);
  EXPECT_EQ(w.current_phase(), 1u);
}

TEST_F(PhasedTest, LastPhaseRunsForeverWithoutLoop) {
  PhasedWorkload w("test");
  w.AddPhase(std::make_unique<LookbusyWorkload>(), 1000);
  w.AddPhase(std::make_unique<MlrWorkload>(64_KiB), 1000);
  w.Execute(ctx_, 0, 100000);
  EXPECT_EQ(w.current_phase(), 1u);
}

TEST_F(PhasedTest, LoopingScheduleWrapsToPhaseZero) {
  PhasedWorkload w("test", /*loop=*/true);
  w.AddPhase(std::make_unique<LookbusyWorkload>(), 1000);
  w.AddPhase(std::make_unique<MlrWorkload>(64_KiB), 1000);
  w.Execute(ctx_, 0, 2500);  // phase0, phase1, phase0(half)
  EXPECT_EQ(w.current_phase(), 0u);
}

TEST_F(PhasedTest, ChunkSpanningPhaseBoundarySplits) {
  PhasedWorkload w("test");
  w.AddPhase(std::make_unique<LookbusyWorkload>(), 3000);
  w.AddPhase(std::make_unique<MlrWorkload>(64_KiB), 0);
  // One big chunk: must execute ~3000 in phase 0 and the rest in phase 1.
  w.Execute(ctx_, 0, 9000);
  EXPECT_EQ(w.current_phase(), 1u);
  // MLR is memory heavy: LLC references prove phase 1 actually ran.
  EXPECT_GT(socket_.core(0).counters().llc_references, 100u);
}

TEST_F(PhasedTest, EmptyScheduleFallsBackToCompute) {
  PhasedWorkload w("empty");
  w.Execute(ctx_, 0, 1000);
  EXPECT_EQ(socket_.core(0).counters().retired_instructions, 1000u);
}

TEST_F(PhasedTest, PhaseSignaturesDiffer) {
  // The whole point of the composite: the two phases present different
  // mem-per-instruction signatures to the controller.
  PhasedWorkload w("test");
  w.AddPhase(std::make_unique<LookbusyWorkload>(), 50000);
  w.AddPhase(std::make_unique<MlrWorkload>(64_KiB), 0);

  w.Execute(ctx_, 0, 50000);
  const double sig_phase0 = socket_.core(0).counters().MemAccessesPerInstruction();
  const PerfCounterBlock snapshot = socket_.core(0).counters();
  w.Execute(ctx_, 0, 50000);
  const PerfCounterBlock delta = socket_.core(0).counters() - snapshot;
  const double sig_phase1 = delta.MemAccessesPerInstruction();
  EXPECT_GT(sig_phase1, sig_phase0 * 2.0);
}

TEST_F(PhasedTest, ResetMetricsPropagates) {
  auto mlr = std::make_unique<MlrWorkload>(64_KiB);
  MlrWorkload* mlr_ptr = mlr.get();
  PhasedWorkload w("test");
  w.AddPhase(std::move(mlr), 0);
  w.Execute(ctx_, 0, 3000);
  EXPECT_GT(mlr_ptr->AccessCount(), 0u);
  w.ResetMetrics();
  EXPECT_EQ(mlr_ptr->AccessCount(), 0u);
}

}  // namespace
}  // namespace dcat
