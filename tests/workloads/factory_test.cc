#include "src/workloads/factory.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/log.h"
#include "src/common/units.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/microbench.h"
#include "src/workloads/spec_suite.h"

namespace dcat {
namespace {

class FactoryTest : public ::testing::Test {
 protected:
  // The factory logs parse errors; keep test output clean.
  void SetUp() override { SetLogLevel(LogLevel::kOff); }
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(FactoryTest, MlrWithSizeSuffix) {
  auto w = MakeWorkload("mlr:8M");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name(), "MLR-8MB");
  auto* mlr = dynamic_cast<MlrWorkload*>(w.get());
  ASSERT_NE(mlr, nullptr);
  EXPECT_EQ(mlr->working_set_bytes(), 8_MiB);
}

TEST_F(FactoryTest, SizeSuffixVariants) {
  EXPECT_EQ(dynamic_cast<MlrWorkload*>(MakeWorkload("mlr:512K").get())->working_set_bytes(),
            512_KiB);
  EXPECT_EQ(dynamic_cast<MlrWorkload*>(MakeWorkload("mlr:1G").get())->working_set_bytes(),
            1_GiB);
  EXPECT_EQ(dynamic_cast<MlrWorkload*>(MakeWorkload("mlr:4096").get())->working_set_bytes(),
            4096u);
  EXPECT_EQ(dynamic_cast<MlrWorkload*>(MakeWorkload("mlr:1.5M").get())->working_set_bytes(),
            1536_KiB);
}

TEST_F(FactoryTest, MloadAndSimpleKinds) {
  EXPECT_NE(dynamic_cast<MloadWorkload*>(MakeWorkload("mload:60M").get()), nullptr);
  EXPECT_NE(dynamic_cast<LookbusyWorkload*>(MakeWorkload("lookbusy").get()), nullptr);
  EXPECT_NE(dynamic_cast<IdleWorkload*>(MakeWorkload("idle").get()), nullptr);
}

TEST_F(FactoryTest, CloudApps) {
  EXPECT_EQ(MakeWorkload("redis")->name(), "redis-kv");
  EXPECT_EQ(MakeWorkload("postgres")->name(), "postgres-select");
  EXPECT_EQ(MakeWorkload("search")->name(), "elasticsearch-ycsbc");
}

TEST_F(FactoryTest, SpecProxyByName) {
  auto w = MakeWorkload("spec:omnetpp");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name(), "omnetpp");
}

TEST_F(FactoryTest, EveryRosterEntryIsConstructible) {
  for (const SpecProxyParams& params : SpecCpu2006Roster()) {
    EXPECT_NE(MakeWorkload("spec:" + params.name), nullptr) << params.name;
  }
}

TEST_F(FactoryTest, MalformedSpecsReturnNull) {
  EXPECT_EQ(MakeWorkload(""), nullptr);
  EXPECT_EQ(MakeWorkload("unknown"), nullptr);
  EXPECT_EQ(MakeWorkload("mlr"), nullptr);          // missing size
  EXPECT_EQ(MakeWorkload("mlr:"), nullptr);         // empty size
  EXPECT_EQ(MakeWorkload("mlr:abc"), nullptr);      // non-numeric
  EXPECT_EQ(MakeWorkload("mlr:-4M"), nullptr);      // negative
  EXPECT_EQ(MakeWorkload("mlr:8X"), nullptr);       // bad suffix
  EXPECT_EQ(MakeWorkload("spec:notabench"), nullptr);
}

TEST_F(FactoryTest, TraceSpecLoadsFromFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcat_factory_trace.txt").string();
  {
    std::ofstream out(path);
    out << "R 0\nC 10\n";
  }
  auto w = MakeWorkload("trace:" + path);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name(), path);
  std::remove(path.c_str());
  // Missing file: clean failure.
  EXPECT_EQ(MakeWorkload("trace:/does/not/exist.txt"), nullptr);
}

TEST_F(FactoryTest, ExamplesAllParse) {
  for (const std::string& example : WorkloadSpecExamples()) {
    EXPECT_NE(MakeWorkload(example), nullptr) << example;
  }
}

}  // namespace
}  // namespace dcat
