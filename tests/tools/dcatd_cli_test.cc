// End-to-end tests of the dcatd command-line tool: spawn the real binary
// and check its output and exit codes.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace dcat {
namespace {
namespace fs = std::filesystem;

// The build injects the binary's absolute path (see tests/CMakeLists.txt).
std::string DcatdPath() {
#ifdef DCATD_PATH
  if (fs::exists(DCATD_PATH)) {
    return DCATD_PATH;
  }
#endif
  // Fallback: walk up from the CWD looking for (build/)tools/dcatd.
  fs::path dir = fs::current_path();
  for (int depth = 0; depth < 6; ++depth) {
    for (const fs::path candidate :
         {dir / "tools" / "dcatd", dir / "build" / "tools" / "dcatd"}) {
      if (fs::exists(candidate)) {
        return candidate.string();
      }
    }
    dir = dir.parent_path();
  }
  return "tools/dcatd";  // let the failure message show something useful
}

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunCommand(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

TEST(DcatdCliTest, HelpExitsZeroAndDocumentsFlags) {
  const RunResult r = RunCommand(DcatdPath() + " --help");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("--mode=sim|resctrl"), std::string::npos);
  EXPECT_NE(r.output.find("--tenants="), std::string::npos);
  EXPECT_NE(r.output.find("mlr:8M"), std::string::npos);
}

TEST(DcatdCliTest, SimModeRunsTheScenario) {
  const RunResult r =
      RunCommand(DcatdPath() + " --intervals=6 --tenants=mlr:4M/3,lookbusy/3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("dcatd[sim]"), std::string::npos);
  EXPECT_NE(r.output.find("final state:"), std::string::npos);
  EXPECT_NE(r.output.find("lookbusy"), std::string::npos);
  // The lookbusy tenant must end as a Donor at 1 way.
  EXPECT_NE(r.output.find("Donor"), std::string::npos);
}

TEST(DcatdCliTest, PrintConfigRoundTrips) {
  const RunResult r = RunCommand(DcatdPath() + " --print-config");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("llc_miss_rate_thr = 0.03"), std::string::npos);
  EXPECT_NE(r.output.find("policy = max-fairness"), std::string::npos);
}

TEST(DcatdCliTest, ConfigFileOverridesThresholds) {
  const std::string path =
      (fs::temp_directory_path() / "dcatd_cli_test.conf").string();
  {
    std::ofstream out(path);
    out << "llc_miss_rate_thr = 0.07\npolicy = maxperf\n";
  }
  const RunResult r =
      RunCommand(DcatdPath() + " --config=" + path + " --print-config");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("llc_miss_rate_thr = 0.07"), std::string::npos);
  EXPECT_NE(r.output.find("policy = max-performance"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DcatdCliTest, BadFlagsFailWithDiagnostics) {
  EXPECT_NE(RunCommand(DcatdPath() + " --bogus").exit_code, 0);
  EXPECT_NE(RunCommand(DcatdPath() + " --tenants=nonsense").exit_code, 0);
  EXPECT_NE(RunCommand(DcatdPath() + " --mode=martian").exit_code, 0);
  EXPECT_NE(RunCommand(DcatdPath() + " --config=/nonexistent.conf").exit_code, 0);
}

TEST(DcatdCliTest, RejectsNonNumericIntervals) {
  const RunResult r = RunCommand(DcatdPath() + " --intervals=abc");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--intervals"), std::string::npos) << r.output;
  EXPECT_NE(RunCommand(DcatdPath() + " --intervals=12abc").exit_code, 0);
  EXPECT_NE(RunCommand(DcatdPath() + " --intervals=0").exit_code, 0);
  EXPECT_NE(RunCommand(DcatdPath() + " --intervals=-3").exit_code, 0);
  EXPECT_NE(RunCommand(DcatdPath() + " --tenants=mlr:4M/abc").exit_code, 0);
}

TEST(DcatdCliTest, TraceAndMetricsEmitMachineReadableDecisions) {
  const std::string trace_path =
      (fs::temp_directory_path() / "dcatd_cli_test_trace.jsonl").string();
  std::remove(trace_path.c_str());
  const RunResult r = RunCommand(DcatdPath() +
                                 " --mode=sim --intervals=8 --tenants=mlr:4M/3,lookbusy/3"
                                 " --trace=" + trace_path + " --metrics");
  EXPECT_EQ(r.exit_code, 0) << r.output;

  // --metrics prints the registry snapshot after the run.
  EXPECT_NE(r.output.find("controller.ticks"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("controller.phase_changes"), std::string::npos) << r.output;

  // The trace file carries every decision kind with its reason.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << trace_path;
  std::string trace((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(trace.find("\"type\":\"tick\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"phase_change\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"category_change\""), std::string::npos);
  EXPECT_NE(trace.find("\"type\":\"allocation\""), std::string::npos);
  EXPECT_NE(trace.find("\"reason\":\"admit\""), std::string::npos);
  EXPECT_NE(trace.find("\"reason\":\"reclaim\""), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(DcatdCliTest, MetricsJsonPrintsOneJsonObject) {
  const RunResult r = RunCommand(DcatdPath() +
                                 " --mode=sim --intervals=4 --tenants=mlr:4M/3 --metrics-json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"counters\":{"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"controller.ticks\":4"), std::string::npos) << r.output;
}

TEST(DcatdCliTest, ResctrlModeFailsGracefullyWithoutTree) {
  const RunResult r =
      RunCommand(DcatdPath() + " --mode=resctrl --root=/nonexistent/resctrl");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("resctrl"), std::string::npos);
}

}  // namespace
}  // namespace dcat
