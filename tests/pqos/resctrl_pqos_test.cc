#include "src/pqos/resctrl_pqos.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace dcat {
namespace {
namespace fs = std::filesystem;

// Builds a fake resctrl tree the way the kernel would present it.
class ResctrlPqosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            (std::string("resctrl_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "info" / "L3");
    WriteFile(root_ / "info" / "L3" / "cbm_mask", "fffff\n");  // 20 ways
    WriteFile(root_ / "info" / "L3" / "num_closids", "16\n");
    WriteFile(root_ / "schemata", "L3:0=fffff\n");
    WriteFile(root_ / "cpus_list", "0-17\n");
  }

  void TearDown() override { fs::remove_all(root_); }

  static void WriteFile(const fs::path& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }

  static std::string ReadFile(const fs::path& path) {
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  fs::path root_;
};

TEST_F(ResctrlPqosTest, InitializeReadsPlatformInfo) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_EQ(pqos.NumWays(), 20u);
  EXPECT_EQ(pqos.NumCos(), 16);
  EXPECT_EQ(pqos.NumCores(), 18);
}

TEST_F(ResctrlPqosTest, InitializeCreatesGroupDirectories) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_TRUE(fs::is_directory(root_ / "dcat_cos1"));
  EXPECT_TRUE(fs::is_directory(root_ / "dcat_cos15"));
}

TEST_F(ResctrlPqosTest, InitializeFailsOnMissingTree) {
  ResctrlPqos pqos((root_ / "nonexistent").string(), 18);
  EXPECT_FALSE(pqos.Initialize());
}

TEST_F(ResctrlPqosTest, InitializeFailsOnMalformedCbm) {
  WriteFile(root_ / "info" / "L3" / "cbm_mask", "zzz\n");
  ResctrlPqos pqos(root_.string(), 18);
  EXPECT_FALSE(pqos.Initialize());
}

TEST_F(ResctrlPqosTest, InitializeFailsOnNonContiguousCbm) {
  WriteFile(root_ / "info" / "L3" / "cbm_mask", "f0f\n");
  ResctrlPqos pqos(root_.string(), 18);
  EXPECT_FALSE(pqos.Initialize());
}

TEST_F(ResctrlPqosTest, InitializeFailsOnGarbageNumClosids) {
  // Strict parse: trailing garbage is a malformed tree, not "16".
  WriteFile(root_ / "info" / "L3" / "num_closids", "16 cows\n");
  ResctrlPqos pqos(root_.string(), 18);
  EXPECT_FALSE(pqos.Initialize());
}

TEST_F(ResctrlPqosTest, InitializeFailsOnOutOfRangeNumClosids) {
  WriteFile(root_ / "info" / "L3" / "num_closids", "0\n");
  ResctrlPqos zero(root_.string(), 18);
  EXPECT_FALSE(zero.Initialize());
  WriteFile(root_ / "info" / "L3" / "num_closids", "999\n");
  ResctrlPqos huge(root_.string(), 18);
  EXPECT_FALSE(huge.Initialize());
}

TEST_F(ResctrlPqosTest, InitializeFailsOnGarbageCacheSize) {
  // cache_size is optional, but present-and-unparseable must fail loudly
  // rather than silently running with a zero way capacity.
  WriteFile(root_ / "info" / "L3" / "cache_size", "lots\n");
  ResctrlPqos pqos(root_.string(), 18);
  EXPECT_FALSE(pqos.Initialize());
}

TEST_F(ResctrlPqosTest, CacheSizeSetsWayCapacity) {
  WriteFile(root_ / "info" / "L3" / "cache_size", "46137344\n");  // 44 MiB
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_EQ(pqos.WayCapacityBytes(), 46137344u / 20u);
}

TEST_F(ResctrlPqosTest, SetCosMaskWritesSchemata) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_EQ(pqos.SetCosMask(3, 0x3c), PqosStatus::kOk);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos3" / "schemata"), "L3:0=3c\n");
  EXPECT_EQ(pqos.GetCosMask(3), 0x3cu);
}

TEST_F(ResctrlPqosTest, Cos0WritesRootSchemata) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_EQ(pqos.SetCosMask(0, 0xf), PqosStatus::kOk);
  EXPECT_EQ(ReadFile(root_ / "schemata"), "L3:0=f\n");
}

TEST_F(ResctrlPqosTest, RejectsNonContiguousAndOversizedMasks) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_EQ(pqos.SetCosMask(1, 0b101), PqosStatus::kInvalidMask);
  EXPECT_EQ(pqos.SetCosMask(1, 0x1fffff), PqosStatus::kInvalidMask);  // 21 bits
  EXPECT_EQ(pqos.SetCosMask(16, 0b1), PqosStatus::kOutOfRange);
}

TEST_F(ResctrlPqosTest, AssociateCoreWritesCpusLists) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_EQ(pqos.AssociateCore(4, 2), PqosStatus::kOk);
  EXPECT_EQ(pqos.AssociateCore(5, 2), PqosStatus::kOk);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "cpus_list"), "4,5\n");
  EXPECT_EQ(pqos.GetCoreAssociation(4), 2);
}

TEST_F(ResctrlPqosTest, ReassociationRemovesFromOldGroup) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  ASSERT_EQ(pqos.AssociateCore(4, 2), PqosStatus::kOk);
  ASSERT_EQ(pqos.AssociateCore(4, 3), PqosStatus::kOk);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "cpus_list"), "\n");
  EXPECT_EQ(ReadFile(root_ / "dcat_cos3" / "cpus_list"), "4\n");
}

TEST_F(ResctrlPqosTest, LlcOccupancyReadsMonData) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  fs::create_directories(root_ / "dcat_cos2" / "mon_data" / "mon_L3_00");
  WriteFile(root_ / "dcat_cos2" / "mon_data" / "mon_L3_00" / "llc_occupancy", "1234567\n");
  EXPECT_EQ(pqos.LlcOccupancyBytes(2), 1234567u);
  EXPECT_EQ(pqos.LlcOccupancyBytes(5), 0u);  // absent -> 0
}

TEST_F(ResctrlPqosTest, ReadCountersIsUnsupportedButTotal) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  const PerfCounterBlock counters = pqos.ReadCounters(0);
  EXPECT_EQ(counters.retired_instructions, 0u);
}

TEST_F(ResctrlPqosTest, MbaUnsupportedWithoutInfoMb) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_FALSE(pqos.mba_supported());
  EXPECT_EQ(pqos.SetMbaThrottle(1, 50), PqosStatus::kUnsupported);
  EXPECT_EQ(pqos.GetMbaThrottle(1), 100u);
}

TEST_F(ResctrlPqosTest, MbaWritesCombinedSchemata) {
  fs::create_directories(root_ / "info" / "MB");
  WriteFile(root_ / "info" / "MB" / "min_bandwidth", "10\n");
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_TRUE(pqos.mba_supported());
  EXPECT_EQ(pqos.SetMbaThrottle(2, 40), PqosStatus::kOk);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=fffff\nMB:0=40\n");
  EXPECT_EQ(pqos.GetMbaThrottle(2), 40u);
  // A subsequent CAT change preserves the MBA line.
  EXPECT_EQ(pqos.SetCosMask(2, 0xf), PqosStatus::kOk);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=f\nMB:0=40\n");
}

TEST_F(ResctrlPqosTest, MbaDetectedFromInfoMbDirWithoutMinBandwidth) {
  // Some kernels expose info/MB without a min_bandwidth node; the
  // directory's existence alone means the platform has MBA.
  fs::create_directories(root_ / "info" / "MB");
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_TRUE(pqos.mba_supported());
  EXPECT_EQ(pqos.SetMbaThrottle(2, 50), PqosStatus::kOk);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=fffff\nMB:0=50\n");
}

TEST_F(ResctrlPqosTest, MbaRejectsOutOfRangeValues) {
  fs::create_directories(root_ / "info" / "MB");
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_EQ(pqos.SetMbaThrottle(1, 5), PqosStatus::kInvalidMask);
  EXPECT_EQ(pqos.SetMbaThrottle(1, 101), PqosStatus::kInvalidMask);
  EXPECT_EQ(pqos.SetMbaThrottle(16, 50), PqosStatus::kOutOfRange);
}

TEST_F(ResctrlPqosTest, MbmBytesReadFromMonData) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  fs::create_directories(root_ / "dcat_cos3" / "mon_data" / "mon_L3_00");
  WriteFile(root_ / "dcat_cos3" / "mon_data" / "mon_L3_00" / "mbm_total_bytes", "987654\n");
  EXPECT_EQ(pqos.MemoryBandwidthBytes(3), 987654u);
  EXPECT_EQ(pqos.MemoryBandwidthBytes(4), 0u);
}

TEST_F(ResctrlPqosTest, GarbageMonitorNodeIsIoErrorNotZero) {
  ResctrlPqos pqos(root_.string(), 18);
  ASSERT_TRUE(pqos.Initialize());
  fs::create_directories(root_ / "dcat_cos3" / "mon_data" / "mon_L3_00");
  WriteFile(root_ / "dcat_cos3" / "mon_data" / "mon_L3_00" / "mbm_total_bytes", "12x34\n");
  uint64_t bytes = 99;
  EXPECT_EQ(pqos.ReadMemoryBandwidth(3, &bytes), PqosStatus::kIoError);
  EXPECT_EQ(bytes, 0u);
  EXPECT_GE(pqos.io_stats().parse_errors, 1u);
  // The absent node stays distinguishable: unsupported, not an error.
  EXPECT_EQ(pqos.ReadMemoryBandwidth(4, &bytes), PqosStatus::kUnsupported);
}

TEST_F(ResctrlPqosTest, OperationsBeforeInitializeFail) {
  ResctrlPqos pqos(root_.string(), 18);
  EXPECT_EQ(pqos.SetCosMask(1, 0b11), PqosStatus::kOutOfRange);
  EXPECT_EQ(pqos.AssociateCore(0, 1), PqosStatus::kOutOfRange);
}

}  // namespace
}  // namespace dcat
