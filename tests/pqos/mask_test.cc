#include "src/pqos/mask.h"

#include <gtest/gtest.h>

namespace dcat {
namespace {

TEST(MaskTest, MaskWaysCountsBits) {
  EXPECT_EQ(MaskWays(0), 0);
  EXPECT_EQ(MaskWays(0b1), 1);
  EXPECT_EQ(MaskWays(0b1110), 3);
  EXPECT_EQ(MaskWays(0xfffff), 20);
}

TEST(MaskTest, ContiguityRules) {
  EXPECT_FALSE(IsContiguousMask(0));  // empty masks are illegal CBMs
  EXPECT_TRUE(IsContiguousMask(0b1));
  EXPECT_TRUE(IsContiguousMask(0b0110));
  EXPECT_TRUE(IsContiguousMask(0xfffff));
  EXPECT_FALSE(IsContiguousMask(0b0101));
  EXPECT_FALSE(IsContiguousMask(0b1001));
  EXPECT_TRUE(IsContiguousMask(0x80000000u));  // single high bit
  EXPECT_FALSE(IsContiguousMask(0x80000001u));
}

TEST(MaskTest, WrapAroundLookingMasksAreNotContiguous) {
  // Runs touching both ends of the word would be contiguous on a ring, but
  // CBMs are linear: bit 31 adjacent to bit 0 never counts as one run.
  EXPECT_FALSE(IsContiguousMask(0xc0000001u));
  EXPECT_FALSE(IsContiguousMask(0xc0000003u));
  EXPECT_FALSE(IsContiguousMask(0xf000000fu));
}

TEST(MaskTest, FullWordMaskIsContiguous) {
  EXPECT_TRUE(IsContiguousMask(0xffffffffu));
  EXPECT_EQ(MaskWays(0xffffffffu), 32);
}

TEST(MaskTest, MakeWayMaskBuildsRuns) {
  EXPECT_EQ(MakeWayMask(0, 1), 0b1u);
  EXPECT_EQ(MakeWayMask(2, 3), 0b11100u);
  EXPECT_EQ(MakeWayMask(0, 20), 0xfffffu);
  EXPECT_EQ(MakeWayMask(5, 0), 0u);
}

TEST(MaskTest, MakeWayMaskFullWidth) {
  EXPECT_EQ(MakeWayMask(0, 32), 0xffffffffu);
  EXPECT_EQ(MakeWayMask(1, 32), 0xfffffffeu);
}

TEST(MaskTest, EveryMakeWayMaskIsContiguous) {
  for (uint32_t first = 0; first < 20; ++first) {
    for (uint32_t count = 1; first + count <= 20; ++count) {
      EXPECT_TRUE(IsContiguousMask(MakeWayMask(first, count)))
          << "first=" << first << " count=" << count;
      EXPECT_EQ(MaskWays(MakeWayMask(first, count)), static_cast<int>(count));
    }
  }
}

TEST(MaskTest, MakeWayMaskAtTopOfWord) {
  EXPECT_EQ(MakeWayMask(19, 1), 0x80000u);  // top way of a 20-way socket
  EXPECT_EQ(MakeWayMask(31, 1), 0x80000000u);
  EXPECT_EQ(MakeWayMask(30, 2), 0xc0000000u);
}

TEST(MaskTest, LowestWay) {
  EXPECT_EQ(LowestWay(0), -1);
  EXPECT_EQ(LowestWay(0b1), 0);
  EXPECT_EQ(LowestWay(0b11000), 3);
  EXPECT_EQ(LowestWay(0x80000000u), 31);
  EXPECT_EQ(LowestWay(0xffffffffu), 0);
}

TEST(MaskTest, HexRoundTrip) {
  for (uint32_t mask : {0x1u, 0xfu, 0xff0u, 0xfffffu, 0xdeadbeefu}) {
    const auto parsed = ParseMaskHex(MaskToHex(mask));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mask);
  }
}

TEST(MaskTest, ParseAcceptsPrefixAndTrailingNewline) {
  EXPECT_EQ(ParseMaskHex("0xff"), 0xffu);
  EXPECT_EQ(ParseMaskHex("FF"), 0xffu);
  EXPECT_EQ(ParseMaskHex("fffff\n"), 0xfffffu);  // sysfs read
}

TEST(MaskTest, HexHasNoPrefixAndZeroRoundTrips) {
  // resctrl schemata lines want bare lowercase hex.
  EXPECT_EQ(MaskToHex(0xfffffu), "fffff");
  EXPECT_EQ(MaskToHex(0xABCu), "abc");
  const auto zero = ParseMaskHex(MaskToHex(0));
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(*zero, 0u);
  const auto full = ParseMaskHex(MaskToHex(0xffffffffu));
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, 0xffffffffu);
}

TEST(MaskTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseMaskHex("").has_value());
  EXPECT_FALSE(ParseMaskHex("0x").has_value());
  EXPECT_FALSE(ParseMaskHex("xyz").has_value());
  EXPECT_FALSE(ParseMaskHex("12 34").has_value());
  EXPECT_FALSE(ParseMaskHex("123456789").has_value());  // > 32 bits
}

}  // namespace
}  // namespace dcat
