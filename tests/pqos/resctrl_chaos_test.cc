// ResctrlPqos driven through the FaultyFs decorator: read-back
// verification, rollback correctness under torn writes, rollback-failure
// divergence accounting, and half-written-tree recovery at Initialize.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/faults/faulty_fs.h"
#include "src/pqos/file_io.h"
#include "src/pqos/mask.h"
#include "src/pqos/resctrl_pqos.h"

namespace dcat {
namespace {
namespace fs = std::filesystem;

class ResctrlChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            (std::string("resctrl_chaos_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "info" / "L3");
    WriteFile(root_ / "info" / "L3" / "cbm_mask", "fffff\n");  // 20 ways
    WriteFile(root_ / "info" / "L3" / "num_closids", "16\n");
    WriteFile(root_ / "schemata", "L3:0=fffff\n");
    WriteFile(root_ / "cpus_list", "0-17\n");
    faulty_ = std::make_unique<FaultyFs>(DefaultFileIo(), FaultPlan(),
                                         root_.string() + "/");
  }

  void TearDown() override { fs::remove_all(root_); }

  static void WriteFile(const fs::path& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }

  static std::string ReadFile(const fs::path& path) {
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  // Parses the L3 line of a schemata file straight off the disk; nullopt
  // when the node is unreadable or malformed.
  static std::optional<uint32_t> MaskOnDisk(const fs::path& path) {
    std::ifstream in(path);
    if (!in) {
      return std::nullopt;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("L3:0=", 0) == 0) {
        return ParseMaskHex(line.substr(5));
      }
    }
    return std::nullopt;
  }

  fs::path root_;
  std::unique_ptr<FaultyFs> faulty_;
};

// --- the acceptance-bar test: a torn write mid-batch leaves the cached
// masks exactly equal to the landed prefix, and every schemata file on
// disk re-reads to the cached value.
TEST_F(ResctrlChaosTest, TornWriteMidBatchLeavesCacheEqualToTree) {
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());

  // Tear the second element's schemata write: a prefix lands, the call
  // reports failure, and ProgramSchemata must restore the node.
  faulty_->ScriptWriteFault(FileFault::kTornWrite, 1, "dcat_cos2/schemata");

  const std::vector<CosMaskUpdate> updates = {
      {1, 0x3}, {2, 0x7}, {3, 0xf}};
  size_t applied = 99;
  EXPECT_EQ(pqos.ApplyMaskBatch(updates, &applied), PqosStatus::kIoError);
  EXPECT_EQ(applied, 1u);  // exactly the landed prefix
  EXPECT_EQ(faulty_->stats().torn_writes, 1u);
  EXPECT_GE(pqos.io_stats().rollbacks, 1u);
  EXPECT_EQ(pqos.io_stats().rollback_failures, 0u);

  // The landed prefix is in the caches...
  EXPECT_EQ(pqos.GetCosMask(1), 0x3u);
  EXPECT_EQ(pqos.GetCosMask(2), 0xfffffu);  // restored, not the torn value
  EXPECT_EQ(pqos.GetCosMask(3), 0xfffffu);  // never reached

  // ...and every schemata file on disk agrees with the cache, re-read
  // node by node. This is the tree==cache postcondition torn writes
  // must not break.
  for (uint8_t cos = 0; cos < pqos.NumCos(); ++cos) {
    const fs::path node = cos == 0 ? root_ / "schemata"
                                   : root_ / ("dcat_cos" + std::to_string(cos)) / "schemata";
    const std::optional<uint32_t> on_disk = MaskOnDisk(node);
    ASSERT_TRUE(on_disk.has_value()) << "unreadable schemata for COS " << int(cos);
    EXPECT_EQ(*on_disk, pqos.GetCosMask(cos)) << "divergence at COS " << int(cos);
  }
}

TEST_F(ResctrlChaosTest, FailedWriteRollsBackAndKeepsCache) {
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());
  ASSERT_EQ(pqos.SetCosMask(3, 0x3c), PqosStatus::kOk);

  faulty_->ScriptWriteFault(FileFault::kError, 1, "dcat_cos3/schemata");
  EXPECT_EQ(pqos.SetCosMask(3, 0xff), PqosStatus::kIoError);
  EXPECT_EQ(pqos.GetCosMask(3), 0x3cu);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos3" / "schemata"), "L3:0=3c\n");
  EXPECT_GE(pqos.io_stats().rollbacks, 1u);
}

TEST_F(ResctrlChaosTest, GarbageReadBackTriggersRollback) {
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());
  ASSERT_EQ(pqos.SetCosMask(3, 0x3c), PqosStatus::kOk);

  // The write itself lands, but the verification read sees garbage — the
  // backend must not believe the write and must restore the previous value.
  faulty_->ScriptReadFault(FileFault::kGarbage, 1, "dcat_cos3/schemata");
  EXPECT_EQ(pqos.SetCosMask(3, 0xff), PqosStatus::kIoError);
  EXPECT_EQ(pqos.GetCosMask(3), 0x3cu);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos3" / "schemata"), "L3:0=3c\n");
  EXPECT_GE(pqos.io_stats().readback_mismatches, 1u);
}

TEST_F(ResctrlChaosTest, RetryBurstsAreAbsorbed) {
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());

  faulty_->ScriptWriteFault(FileFault::kRetry, 2, "dcat_cos2/schemata");
  EXPECT_EQ(pqos.SetCosMask(2, 0xf0), PqosStatus::kOk);
  EXPECT_EQ(pqos.GetCosMask(2), 0xf0u);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=f0\n");
  EXPECT_GE(pqos.io_stats().retries, 2u);
}

TEST_F(ResctrlChaosTest, UnboundedRetryGivesUp) {
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());

  // More kRetry results than the retry budget: the write fails cleanly
  // and the previous value stays in place.
  faulty_->ScriptWriteFault(FileFault::kRetry, 16, "dcat_cos2/schemata");
  EXPECT_EQ(pqos.SetCosMask(2, 0xf0), PqosStatus::kIoError);
  EXPECT_EQ(pqos.GetCosMask(2), 0xfffffu);
}

TEST_F(ResctrlChaosTest, AssociateCoreRollsBackWhenOldGroupWriteFails) {
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());
  ASSERT_EQ(pqos.AssociateCore(4, 2), PqosStatus::kOk);

  // Moving core 4 from COS 2 to COS 3: the new group's list is written
  // first, then the old group's. Failing the old group's write must undo
  // the new group's claim — in memory AND in the tree.
  faulty_->ScriptWriteFault(FileFault::kError, 1, "dcat_cos2/cpus_list");
  EXPECT_EQ(pqos.AssociateCore(4, 3), PqosStatus::kIoError);
  EXPECT_EQ(pqos.GetCoreAssociation(4), 2);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "cpus_list"), "4\n");
  EXPECT_EQ(ReadFile(root_ / "dcat_cos3" / "cpus_list"), "\n");
  EXPECT_EQ(pqos.io_stats().rollback_failures, 0u);
}

TEST_F(ResctrlChaosTest, FailedRollbackIsCountedAsDivergence) {
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());
  ASSERT_EQ(pqos.SetCosMask(2, 0x3c), PqosStatus::kOk);

  // The write tears AND the restore write fails: tree and cache genuinely
  // diverge, and the backend must say so instead of pretending.
  faulty_->ScriptWriteFault(FileFault::kTornWrite, 1, "dcat_cos2/schemata");
  faulty_->ScriptWriteFault(FileFault::kError, 1, "dcat_cos2/schemata");
  EXPECT_EQ(pqos.SetCosMask(2, 0xff), PqosStatus::kIoError);
  EXPECT_EQ(pqos.io_stats().rollback_failures, 1u);
  EXPECT_EQ(pqos.GetCosMask(2), 0x3cu);  // the cache keeps the verified value

  // A restarted controller repairs the torn node from the tree side.
  ResctrlPqos fresh(root_.string(), 18);
  ASSERT_TRUE(fresh.Initialize());
  EXPECT_GE(fresh.io_stats().repaired_nodes, 1u);
  EXPECT_EQ(MaskOnDisk(root_ / "dcat_cos2" / "schemata"), fresh.GetCosMask(2));
}

TEST_F(ResctrlChaosTest, InitializeAdoptsAnExistingTree) {
  // A previous controller left non-default state behind; a restart must
  // adopt it rather than clobber it.
  fs::create_directories(root_ / "dcat_cos2");
  fs::create_directories(root_ / "dcat_cos3");
  WriteFile(root_ / "dcat_cos2" / "schemata", "L3:0=f0\n");
  WriteFile(root_ / "dcat_cos3" / "cpus_list", "4,5\n");

  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_EQ(pqos.GetCosMask(2), 0xf0u);
  EXPECT_EQ(pqos.GetCoreAssociation(4), 3);
  EXPECT_EQ(pqos.GetCoreAssociation(5), 3);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=f0\n");
}

TEST_F(ResctrlChaosTest, InitializeRepairsHalfWrittenNodes) {
  // A torn schemata, a garbage cpus_list, and a double-claimed core: the
  // kinds of wreckage a crash mid-write leaves behind.
  fs::create_directories(root_ / "dcat_cos2");
  fs::create_directories(root_ / "dcat_cos3");
  fs::create_directories(root_ / "dcat_cos4");
  WriteFile(root_ / "dcat_cos2" / "schemata", "L3:0");            // torn
  WriteFile(root_ / "dcat_cos3" / "cpus_list", "0xz!#torn");      // garbage
  WriteFile(root_ / "dcat_cos3" / "cpus_list.tmp", "ignored\n");  // stray file
  WriteFile(root_ / "dcat_cos2" / "cpus_list", "7\n");
  WriteFile(root_ / "dcat_cos4" / "cpus_list", "7\n");  // double claim

  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());
  EXPECT_GE(pqos.io_stats().repaired_nodes, 2u);
  // The torn schemata was rewritten to the (default) cached value.
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=fffff\n");
  // The garbage list contributed nothing and was repaired to the empty list.
  EXPECT_EQ(ReadFile(root_ / "dcat_cos3" / "cpus_list"), "\n");
  // The double-claimed core went to the later group, and the tree says so.
  EXPECT_EQ(pqos.GetCoreAssociation(7), 4);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "cpus_list"), "\n");
  EXPECT_EQ(ReadFile(root_ / "dcat_cos4" / "cpus_list"), "7\n");

  // Postcondition: cache == tree for every schemata node.
  for (uint8_t cos = 0; cos < pqos.NumCos(); ++cos) {
    const fs::path node = cos == 0 ? root_ / "schemata"
                                   : root_ / ("dcat_cos" + std::to_string(cos)) / "schemata";
    EXPECT_EQ(MaskOnDisk(node), pqos.GetCosMask(cos)) << "COS " << int(cos);
  }
}

TEST_F(ResctrlChaosTest, MbaRollbackPreservesCombinedSchemata) {
  fs::create_directories(root_ / "info" / "MB");
  WriteFile(root_ / "info" / "MB" / "min_bandwidth", "10\n");
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());
  ASSERT_TRUE(pqos.mba_supported());
  ASSERT_EQ(pqos.SetMbaThrottle(2, 40), PqosStatus::kOk);
  ASSERT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=fffff\nMB:0=40\n");

  // A torn combined write must restore BOTH lines of the previous content.
  faulty_->ScriptWriteFault(FileFault::kTornWrite, 1, "dcat_cos2/schemata");
  EXPECT_EQ(pqos.SetMbaThrottle(2, 70), PqosStatus::kIoError);
  EXPECT_EQ(pqos.GetMbaThrottle(2), 40u);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=fffff\nMB:0=40\n");

  // Same for the CAT half of the composite.
  faulty_->ScriptWriteFault(FileFault::kError, 1, "dcat_cos2/schemata");
  EXPECT_EQ(pqos.SetCosMask(2, 0xf), PqosStatus::kIoError);
  EXPECT_EQ(ReadFile(root_ / "dcat_cos2" / "schemata"), "L3:0=fffff\nMB:0=40\n");
  EXPECT_EQ(pqos.GetCosMask(2), 0xfffffu);
}

TEST_F(ResctrlChaosTest, MonitoringDistinguishesAbsentFromBroken) {
  ResctrlPqos pqos(root_.string(), 18, faulty_.get());
  ASSERT_TRUE(pqos.Initialize());
  uint64_t bytes = 99;

  // Absent node: unsupported, not an error.
  EXPECT_EQ(pqos.ReadLlcOccupancy(2, &bytes), PqosStatus::kUnsupported);
  EXPECT_EQ(bytes, 0u);

  fs::create_directories(root_ / "dcat_cos2" / "mon_data" / "mon_L3_00");
  WriteFile(root_ / "dcat_cos2" / "mon_data" / "mon_L3_00" / "llc_occupancy", "1234567\n");
  EXPECT_EQ(pqos.ReadLlcOccupancy(2, &bytes), PqosStatus::kOk);
  EXPECT_EQ(bytes, 1234567u);

  // A garbage read is an I/O error, not a silent 0 ... and not a crash.
  faulty_->ScriptReadFault(FileFault::kGarbage, 1, "llc_occupancy");
  EXPECT_EQ(pqos.ReadLlcOccupancy(2, &bytes), PqosStatus::kIoError);
  EXPECT_EQ(bytes, 0u);

  // A short read that truncates the number still parses (it is a valid
  // prefix) — but a short read of the combined node is caught upstream by
  // schemata read-back, and the monitoring path at least never crashes.
  faulty_->ScriptReadFault(FileFault::kEmpty, 1, "llc_occupancy");
  EXPECT_EQ(pqos.ReadLlcOccupancy(2, &bytes), PqosStatus::kIoError);

  // Retry bursts are absorbed on the monitoring path too.
  faulty_->ScriptReadFault(FileFault::kRetry, 2, "llc_occupancy");
  EXPECT_EQ(pqos.ReadLlcOccupancy(2, &bytes), PqosStatus::kOk);
  EXPECT_EQ(bytes, 1234567u);
}

TEST_F(ResctrlChaosTest, SurvivesAScriptlessMixedFaultStorm) {
  // Pure soak: drive the backend through the fs-mixed plan for many ticks;
  // every operation must either verify or roll back, and at the end (the
  // plan gone quiet) a full re-apply must converge to cache == tree.
  FaultProfile profile = FsMixedProfile();
  profile.active_ticks = 30;
  FaultyFs storm(DefaultFileIo(), FaultPlan(1234, profile), root_.string() + "/");
  ResctrlPqos pqos(root_.string(), 18, &storm);
  ASSERT_TRUE(pqos.Initialize());

  for (int tick = 0; tick < 30; ++tick) {
    storm.AdvanceTick();
    const uint32_t ways = 1 + (tick % 8);
    (void)pqos.SetCosMask(1 + (tick % 3), MakeWayMask(0, ways));
    (void)pqos.AssociateCore(static_cast<uint16_t>(tick % 18), 1 + (tick % 3));
    uint64_t bytes = 0;
    (void)pqos.ReadLlcOccupancy(1, &bytes);
  }
  EXPECT_GT(storm.injected_total(), 0u);

  // Fault window over: re-apply every mask, then demand cache == tree.
  storm.AdvanceTick();
  for (uint8_t cos = 0; cos < pqos.NumCos(); ++cos) {
    ASSERT_EQ(pqos.SetCosMask(cos, pqos.GetCosMask(cos)), PqosStatus::kOk);
    const fs::path node = cos == 0 ? root_ / "schemata"
                                   : root_ / ("dcat_cos" + std::to_string(cos)) / "schemata";
    EXPECT_EQ(MaskOnDisk(node), pqos.GetCosMask(cos)) << "COS " << int(cos);
  }
}

}  // namespace
}  // namespace dcat
