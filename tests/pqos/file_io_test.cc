#include "src/pqos/file_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace dcat {
namespace {
namespace fs = std::filesystem;

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            (std::string("file_io_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
  RealFileIo io_;
};

TEST_F(FileIoTest, WriteThenReadRoundTrips) {
  const std::string path = (root_ / "node").string();
  ASSERT_EQ(io_.Write(path, "L3:0=3c\n"), FileIoStatus::kOk);
  std::string content;
  ASSERT_EQ(io_.Read(path, &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "L3:0=3c\n");
}

TEST_F(FileIoTest, WriteTruncatesExistingContent) {
  const std::string path = (root_ / "node").string();
  ASSERT_EQ(io_.Write(path, "a long first version\n"), FileIoStatus::kOk);
  ASSERT_EQ(io_.Write(path, "short\n"), FileIoStatus::kOk);
  std::string content;
  ASSERT_EQ(io_.Read(path, &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "short\n");
}

TEST_F(FileIoTest, ReadMissingFileIsNotFound) {
  std::string content;
  EXPECT_EQ(io_.Read((root_ / "absent").string(), &content), FileIoStatus::kNotFound);
}

TEST_F(FileIoTest, WriteIntoMissingDirectoryIsNotFound) {
  EXPECT_EQ(io_.Write((root_ / "no_such_dir" / "node").string(), "x\n"),
            FileIoStatus::kNotFound);
}

TEST_F(FileIoTest, CreateDirsIsRecursiveAndIdempotent) {
  const std::string dir = (root_ / "a" / "b" / "c").string();
  EXPECT_EQ(io_.CreateDirs(dir), FileIoStatus::kOk);
  EXPECT_EQ(io_.CreateDirs(dir), FileIoStatus::kOk);
  EXPECT_TRUE(io_.IsDir(dir));
  EXPECT_FALSE(io_.IsDir((root_ / "a" / "missing").string()));
}

TEST_F(FileIoTest, IsDirIsFalseForRegularFiles) {
  const std::string path = (root_ / "node").string();
  ASSERT_EQ(io_.Write(path, "x\n"), FileIoStatus::kOk);
  EXPECT_FALSE(io_.IsDir(path));
}

TEST_F(FileIoTest, ReadEmptyFileIsOkAndEmpty) {
  const std::string path = (root_ / "node").string();
  ASSERT_EQ(io_.Write(path, ""), FileIoStatus::kOk);
  std::string content = "sentinel";
  ASSERT_EQ(io_.Read(path, &content), FileIoStatus::kOk);
  EXPECT_EQ(content, "");
}

TEST_F(FileIoTest, DefaultFileIoIsASharedInstance) {
  EXPECT_NE(DefaultFileIo(), nullptr);
  EXPECT_EQ(DefaultFileIo(), DefaultFileIo());
}

TEST(FileIoStatusNameTest, CoversEveryStatus) {
  EXPECT_STREQ(FileIoStatusName(FileIoStatus::kOk), "ok");
  EXPECT_STREQ(FileIoStatusName(FileIoStatus::kNotFound), "not-found");
  EXPECT_STREQ(FileIoStatusName(FileIoStatus::kRetry), "retry");
  EXPECT_STREQ(FileIoStatusName(FileIoStatus::kError), "error");
}

}  // namespace
}  // namespace dcat
