#include "src/pqos/sim_pqos.h"

#include <gtest/gtest.h>

#include "src/pqos/mask.h"
#include "src/sim/socket.h"

namespace dcat {
namespace {

SocketConfig SmallConfig() {
  SocketConfig config;
  config.num_cores = 4;
  config.llc_geometry = CacheGeometry{.line_size = 64, .num_ways = 8, .num_sets = 64};
  config.num_cos = 4;
  return config;
}

class SimPqosTest : public ::testing::Test {
 protected:
  SimPqosTest() : socket_(SmallConfig()), pqos_(&socket_) {}
  Socket socket_;
  SimPqos pqos_;
};

TEST_F(SimPqosTest, ReportsPlatformLimits) {
  EXPECT_EQ(pqos_.NumWays(), 8u);
  EXPECT_EQ(pqos_.NumCos(), 4);
  EXPECT_EQ(pqos_.NumCores(), 4);
  EXPECT_EQ(pqos_.WayCapacityBytes(), 64u * 64u);
}

TEST_F(SimPqosTest, SetCosMaskProgramsSocket) {
  EXPECT_EQ(pqos_.SetCosMask(1, 0b0011), PqosStatus::kOk);
  EXPECT_EQ(socket_.CosMask(1), 0b0011u);
  EXPECT_EQ(pqos_.GetCosMask(1), 0b0011u);
}

TEST_F(SimPqosTest, RejectsNonContiguousMask) {
  EXPECT_EQ(pqos_.SetCosMask(1, 0b0101), PqosStatus::kInvalidMask);
  EXPECT_EQ(pqos_.SetCosMask(1, 0), PqosStatus::kInvalidMask);
}

TEST_F(SimPqosTest, RejectsMaskBeyondWayCount) {
  EXPECT_EQ(pqos_.SetCosMask(1, 0x1ff), PqosStatus::kInvalidMask);  // 9 ways on 8-way LLC
}

TEST_F(SimPqosTest, RejectsOutOfRangeCos) {
  EXPECT_EQ(pqos_.SetCosMask(4, 0b1), PqosStatus::kOutOfRange);
}

TEST_F(SimPqosTest, AssociateCoreRoundTrips) {
  EXPECT_EQ(pqos_.AssociateCore(2, 3), PqosStatus::kOk);
  EXPECT_EQ(pqos_.GetCoreAssociation(2), 3);
  EXPECT_EQ(socket_.CoreCos(2), 3);
}

TEST_F(SimPqosTest, AssociateRejectsBadIds) {
  EXPECT_EQ(pqos_.AssociateCore(9, 1), PqosStatus::kOutOfRange);
  EXPECT_EQ(pqos_.AssociateCore(1, 9), PqosStatus::kOutOfRange);
}

TEST_F(SimPqosTest, ReadCountersSeesCoreActivity) {
  socket_.core(1).Compute(100);
  const PerfCounterBlock counters = pqos_.ReadCounters(1);
  EXPECT_EQ(counters.retired_instructions, 100u);
}

TEST_F(SimPqosTest, OccupancyFollowsFills) {
  pqos_.AssociateCore(0, 1);
  pqos_.SetCosMask(1, 0b0011);
  socket_.core(0).Access(0, false);
  socket_.core(0).Access(64u * 64u, false);  // a different set
  EXPECT_EQ(pqos_.LlcOccupancyBytes(1), 2u * 64u);
}

TEST_F(SimPqosTest, StatusNamesAreStable) {
  EXPECT_STREQ(PqosStatusName(PqosStatus::kOk), "ok");
  EXPECT_STREQ(PqosStatusName(PqosStatus::kInvalidMask), "invalid-mask");
  EXPECT_STREQ(PqosStatusName(PqosStatus::kOutOfRange), "out-of-range");
  EXPECT_STREQ(PqosStatusName(PqosStatus::kUnsupported), "unsupported");
  EXPECT_STREQ(PqosStatusName(PqosStatus::kIoError), "io-error");
}

}  // namespace
}  // namespace dcat
