// dcat_fuzz — deterministic scenario fuzzer for the dCat controller.
//
// Expands each seed into a random host scenario (machine, tenant mix,
// arrival/departure churn, config perturbation — see src/verify/scenario.h),
// runs the full host+controller loop under the selected allocation
// policies with the invariant checker riding the telemetry stream, and
// fails loudly on any violation. Every finding replays from its seed:
//
//   dcat_fuzz --seeds=100 --jobs=8        # seeds 0..99, both policies, 8 threads
//   dcat_fuzz --seed=37 --policy=maxperf  # replay one finding
//   dcat_fuzz --write-golden=golden.jsonl # regenerate the Fig. 10 trace
//   dcat_fuzz --check-golden=golden.jsonl # diff the live Fig. 10 trace against it
//   dcat_fuzz --fidelity-diff --seeds=100 # line vs hybrid decision-trace diff
//   dcat_fuzz --chaos=7 --seeds=50        # every scenario additionally runs
//                                         # under each fault schedule, with a
//                                         # fault-free settle window at the end
//   dcat_fuzz --chaos-resctrl --seeds=50  # fake-resctrl differential under
//                                         # file-I/O chaos (FaultyFs): torn and
//                                         # failed sysfs writes, garbage reads
//
// With --jobs=N the (seed, policy) runs execute on a worker pool; each run
// is self-contained (scenario expansion, host, checker, shadow backends all
// derive from the seed), and reports are buffered and printed in seed order
// afterward, so the output is byte-identical to --jobs=1.
//
// Per scenario the fuzzer checks, beyond the checker's own invariants:
//   * trace determinism — the same seed must yield a byte-identical JSONL
//     decision trace (skip with --no-determinism);
//   * backend agreement — every programmed mask replayed through a shadow
//     SimPqos and a fake-tree ResctrlPqos must leave identical mask state
//     (skip with --no-differential).
//
// Exit status is nonzero when any scenario fails; the report prints the
// seed, the scenario description, the violations, and the trace tail.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/faults/fault_plan.h"
#include "src/fleet/fleet.h"
#include "src/policies/registry.h"
#include "src/telemetry/trace.h"
#include "src/verify/crash.h"
#include "src/verify/scenario.h"

namespace dcat {
namespace {

struct Options {
  uint64_t seeds = 25;       // number of seeds, starting at start_seed
  uint64_t start_seed = 0;
  bool single_seed = false;  // --seed=S: run exactly one
  uint64_t jobs = 1;         // worker threads; reports stay in seed order
  std::string policy = "all";
  double cycles_per_interval = 1e6;
  bool check_differential = true;
  bool check_determinism = true;
  size_t trace_tail = 12;
  std::string write_golden;
  // Chaos mode: interpose FaultyPqos over the sim backend, one run per
  // (seed, policy, fault profile). The chaos seed decorrelates the fault
  // schedule stream from the scenario stream.
  bool chaos = false;
  uint64_t chaos_seed = 0;
  std::string chaos_profile = "all";
  // File-I/O chaos on the fake-resctrl differential (--chaos-resctrl): a
  // FaultyFs under the shadow ResctrlPqos, one run per (seed, policy, fs
  // profile), fault-attributed divergence scoping, and a settle pass that
  // re-reads every schemata file from the tree. Shares chaos_seed for the
  // schedule stream.
  bool chaos_resctrl = false;
  std::string chaos_resctrl_profile = "all";
  // Crash mode (--crash-at): kill + journal-recover the controller. Each
  // selected tick runs the full crash matrix (boundary, mid-apply at two
  // write offsets, torn journal at two cut points); `crash_every` sweeps
  // every tick of the scenario.
  bool crash = false;
  bool crash_every = false;
  uint64_t crash_tick = 0;
  // Simulation fidelity for plain runs, and the line-vs-hybrid decision
  // diff mode (see src/sim/analytic_model.h).
  FidelityMode fidelity = FidelityMode::kLine;
  bool fidelity_diff = false;
  std::string check_golden;
  // Fleet mode (--fleet=M or MxN): M hosts x N sockets, every shard a full
  // verified scenario, sharded across --fleet-jobs threads. Composes with
  // --chaos (every third shard runs under FaultyPqos) and --fidelity.
  bool fleet = false;
  uint32_t fleet_hosts = 0;
  uint32_t fleet_sockets = 1;
  uint64_t fleet_jobs = 0;  // 0 = all cores
};

// The fault schedules a chaos run sweeps with --chaos-profile=all.
const char* const kChaosProfiles[] = {"transient", "silent-drift", "counter-garbage",
                                      "persistent-outage"};

// The file-I/O schedules --chaos-resctrl sweeps by default.
const char* const kFsChaosProfiles[] = {"fs-transient", "fs-torn", "fs-garbage", "fs-mixed"};

// Deterministic fault-plan seed for one (scenario seed, chaos seed, profile)
// triple; any finding replays from the flags alone. File-I/O profiles use
// indices >= kFsProfileIndexBase so their schedule stream never collides
// with the backend-chaos one.
constexpr size_t kFsProfileIndexBase = 16;
uint64_t FaultSeedFor(uint64_t scenario_seed, uint64_t chaos_seed, size_t profile_index) {
  return scenario_seed + 0x51f4a7c15ULL * (chaos_seed + 1) + 131 * profile_index;
}

void PrintUsage() {
  std::printf(
      "dcat_fuzz — deterministic scenario fuzzer for the dCat controller\n\n"
      "  --seeds=N               run seeds start..start+N-1 (default 25)\n"
      "  --start-seed=S          first seed (default 0)\n"
      "  --seed=S                run exactly one seed (replay a finding)\n"
      "  --jobs=N                run scenarios on N threads, output merged in\n"
      "                          seed order (byte-identical to --jobs=1); 0 =\n"
      "                          all cores (default 1)\n"
      "  --policy=NAME|all|both  allocation policies to run: any registered name,\n"
      "                          all of them, or both paper policies (default all)\n"
      "  --cycles=C              simulated cycles per interval (default 1e6)\n"
      "  --no-differential       skip the SimPqos vs fake-resctrl mask check\n"
      "  --no-determinism        skip the byte-identical-trace check\n"
      "  --trace-tail=N          trace lines to print on a finding (default 12)\n"
      "  --write-golden=FILE     write the pinned Fig. 10 golden trace and exit\n"
      "  --check-golden=FILE     re-run the pinned Fig. 10 scenario and diff its\n"
      "                          trace against FILE; prints the first divergent\n"
      "                          decision with its tick/tenant and exits nonzero\n"
      "                          on any difference\n"
      "  --fidelity=MODE         line|analytic|hybrid simulation fidelity for\n"
      "                          plain runs (default line)\n"
      "  --fidelity-diff         run every (seed, policy) pair at line AND hybrid\n"
      "                          fidelity and require byte-identical decision\n"
      "                          traces (the hybrid engine's contract); both runs\n"
      "                          must also be invariant-clean\n"
      "  --chaos[=S]             fault-inject every run (chaos seed S, default 0):\n"
      "                          one run per fault profile, then a fault-free\n"
      "                          settle window that must end out of degraded mode\n"
      "  --chaos-profile=NAME    transient|silent-drift|counter-garbage|\n"
      "                          persistent-outage|mixed|all (default all)\n"
      "  --chaos-resctrl[=P]     file-I/O chaos on the fake-resctrl differential:\n"
      "                          a FaultyFs under the shadow ResctrlPqos injects\n"
      "                          torn/failed sysfs writes, EINTR retries, and\n"
      "                          garbage/short/empty/vanished node reads; failed\n"
      "                          writes are scoped to their fault, and a settle\n"
      "                          pass re-reads every schemata file from the tree\n"
      "                          and requires zero unscoped divergence. P is\n"
      "                          fs-transient|fs-torn|fs-garbage|fs-mixed|all\n"
      "                          (default all)\n"
      "  --crash-at=T|every      crash-restart fuzzing: kill the controller at\n"
      "                          tick T (or at every tick) in each of the crash\n"
      "                          modes (boundary, mid-apply, torn journal),\n"
      "                          recover it from the write-ahead journal, and\n"
      "                          require invariant-clean splices; fault-free\n"
      "                          runs must also converge byte-identically to\n"
      "                          the uninterrupted trace\n"
      "  --fleet=M[xN]           fleet mode: run M hosts x N sockets (default\n"
      "                          N=1) as independent controller shards on the\n"
      "                          thread pool, seeds start-seed..start-seed+MxN-1,\n"
      "                          then re-run serially and require every shard's\n"
      "                          trace byte-identical (skip with\n"
      "                          --no-determinism); with --chaos every third\n"
      "                          shard runs under FaultyPqos and must stay\n"
      "                          invariant-clean without disturbing the rest\n"
      "  --fleet-jobs=J          worker threads for the fleet fan-out (0 = all\n"
      "                          cores, the default)\n");
}

std::string FormatTraceTail(const std::string& trace, size_t tail) {
  const std::vector<std::string> lines = Split(trace, '\n');
  size_t begin = 0;
  // Split leaves one trailing empty field after the final newline.
  size_t end = lines.size();
  while (end > 0 && lines[end - 1].empty()) {
    --end;
  }
  std::ostringstream out;
  if (end > tail) {
    begin = end - tail;
    out << "  ... (" << begin << " earlier trace lines)\n";
  }
  for (size_t i = begin; i < end; ++i) {
    out << "  " << lines[i] << "\n";
  }
  return out.str();
}

// Runs one (scenario, policy) pair. On failure fills *report with the
// replay report; the caller prints reports in seed order so parallel runs
// produce byte-identical output.
bool RunOne(const Scenario& scenario, const std::string& policy, const char* fault_profile,
            const char* fs_profile, const Options& options, std::string* report) {
  RunOptions run_options;
  run_options.policy = policy;
  run_options.cycles_per_interval = options.cycles_per_interval;
  run_options.check_backend_differential = options.check_differential;
  run_options.fidelity.mode = options.fidelity;
  size_t profile_index = 0;
  if (fault_profile != nullptr) {
    while (profile_index < std::size(kChaosProfiles) &&
           std::strcmp(kChaosProfiles[profile_index], fault_profile) != 0) {
      ++profile_index;
    }
    run_options.inject_faults = true;
    run_options.fault_profile = fault_profile;
    run_options.fault_seed = FaultSeedFor(scenario.seed, options.chaos_seed, profile_index);
  }
  if (fs_profile != nullptr) {
    size_t fs_index = 0;
    while (fs_index < std::size(kFsChaosProfiles) &&
           std::strcmp(kFsChaosProfiles[fs_index], fs_profile) != 0) {
      ++fs_index;
    }
    run_options.inject_fs_faults = true;
    run_options.fs_fault_profile = fs_profile;
    run_options.fs_fault_seed =
        FaultSeedFor(scenario.seed, options.chaos_seed, kFsProfileIndexBase + fs_index);
  }
  ScenarioResult result = RunScenario(scenario, run_options);

  if (result.ok() && options.check_determinism) {
    // One re-run suffices: compare against the trace already captured. The
    // shadow-side checks are trace-invisible, so the re-run skips them.
    RunOptions rerun = run_options;
    rerun.check_backend_differential = false;
    rerun.inject_fs_faults = false;
    const ScenarioResult again = RunScenario(scenario, rerun);
    const std::string divergence = DescribeTraceDivergence(result.trace, again.trace);
    if (!divergence.empty()) {
      result.violations.push_back(Violation{.tick = 0,
                                            .tenant = 0,
                                            .invariant = kCheckTraceDeterminism,
                                            .detail = divergence});
    }
  }
  if (result.ok()) {
    return true;
  }

  std::ostringstream out;
  out << "FAIL seed=" << scenario.seed << " policy=" << policy;
  if (fault_profile != nullptr) {
    out << " chaos=" << options.chaos_seed << " profile=" << fault_profile;
  }
  if (fs_profile != nullptr) {
    out << " fs-chaos=" << options.chaos_seed << " fs-profile=" << fs_profile
        << " (injected=" << result.fs_faults_injected
        << " scoped=" << result.fs_scoped_divergences << ")";
  }
  out << "\n";
  out << "  scenario: " << scenario.Describe() << "\n";
  out << "  replay:   dcat_fuzz --seed=" << scenario.seed << " --policy=" << policy;
  if (fault_profile != nullptr) {
    out << " --chaos=" << options.chaos_seed << " --chaos-profile=" << fault_profile;
  }
  if (fs_profile != nullptr) {
    out << " --chaos-resctrl=" << fs_profile;
  }
  out << "\n";
  for (const Violation& violation : result.violations) {
    out << "  violation [" << violation.invariant << "] tick=" << violation.tick
        << " tenant=" << violation.tenant << ": " << violation.detail << "\n";
  }
  out << "  trace tail:\n" << FormatTraceTail(result.trace, options.trace_tail);
  *report = out.str();
  return false;
}

// Runs one (scenario, policy) pair at line and hybrid fidelity and requires
// byte-identical decision traces — the hybrid engine's validation contract
// (decision equivalence, not counter equivalence). Both runs must also be
// invariant-clean; the full hybrid trace may differ only by its extra
// fidelity-transition lines, which ExtractDecisionTrace drops.
bool RunFidelityDiff(const Scenario& scenario, const std::string& policy,
                     const Options& options, std::string* report) {
  RunOptions line_options;
  line_options.policy = policy;
  line_options.cycles_per_interval = options.cycles_per_interval;
  line_options.check_backend_differential = false;
  RunOptions hybrid_options = line_options;
  hybrid_options.fidelity.mode = FidelityMode::kHybrid;

  const ScenarioResult line = RunScenario(scenario, line_options);
  const ScenarioResult hybrid = RunScenario(scenario, hybrid_options);

  std::vector<Violation> violations = line.violations;
  violations.insert(violations.end(), hybrid.violations.begin(), hybrid.violations.end());
  const std::string divergence = DescribeTraceDivergence(
      ExtractDecisionTrace(line.trace), ExtractDecisionTrace(hybrid.trace));
  if (violations.empty() && divergence.empty()) {
    return true;
  }

  std::ostringstream out;
  out << "FAIL seed=" << scenario.seed << " policy=" << policy << " fidelity-diff\n";
  out << "  scenario: " << scenario.Describe() << "\n";
  out << "  replay:   dcat_fuzz --seed=" << scenario.seed << " --policy=" << policy
      << " --fidelity-diff\n";
  for (const Violation& violation : violations) {
    out << "  violation [" << violation.invariant << "] tick=" << violation.tick
        << " tenant=" << violation.tenant << ": " << violation.detail << "\n";
  }
  if (!divergence.empty()) {
    out << "  decision traces diverge (run1=line, run2=hybrid): " << divergence << "\n";
    out << "  hybrid trace tail:\n" << FormatTraceTail(hybrid.trace, options.trace_tail);
  }
  *report = out.str();
  return false;
}

// Runs the crash matrix for one (scenario, policy[, profile]) job: every
// selected tick is hit with a boundary kill, two mid-apply kills, and two
// torn-journal kills, each followed by journal recovery and the rest of the
// scenario. Stops at the first failing crash point.
bool RunCrash(const Scenario& scenario, const std::string& policy, const char* fault_profile,
              const Options& options, std::string* report) {
  CrashRunOptions base;
  base.policy = policy;
  base.cycles_per_interval = options.cycles_per_interval;
  size_t profile_index = 0;
  if (fault_profile != nullptr) {
    while (profile_index < std::size(kChaosProfiles) &&
           std::strcmp(kChaosProfiles[profile_index], fault_profile) != 0) {
      ++profile_index;
    }
    base.inject_faults = true;
    base.fault_profile = fault_profile;
    base.fault_seed = FaultSeedFor(scenario.seed, options.chaos_seed, profile_index);
  }

  std::vector<uint64_t> ticks;
  if (options.crash_every) {
    for (uint64_t tick = 2; tick <= scenario.intervals; ++tick) {
      ticks.push_back(tick);
    }
  } else {
    ticks.push_back(options.crash_tick);
  }

  // The sweep shares one uninterrupted reference run (fault-free only —
  // chaos runs skip the trace comparison entirely).
  std::string reference;
  if (!base.inject_faults) {
    reference = UninterruptedTrace(scenario, base);
    base.reference_trace = &reference;
  }

  struct CrashPoint {
    CrashMode mode;
    uint64_t write;  // kMidApply only
    size_t keep;     // kTornJournal only
  };
  // Mid-apply at the first and a later write of the tick; torn journal
  // losing the whole record and cutting it mid-header.
  const CrashPoint kMatrix[] = {
      {CrashMode::kBoundary, 0, 0},    {CrashMode::kMidApply, 1, 0},
      {CrashMode::kMidApply, 3, 0},    {CrashMode::kTornJournal, 0, 0},
      {CrashMode::kTornJournal, 0, 6},
  };

  for (const uint64_t tick : ticks) {
    for (const CrashPoint& point : kMatrix) {
      CrashRunOptions run = base;
      run.mode = point.mode;
      run.crash_tick = tick;
      run.crash_write = point.write;
      run.torn_keep_bytes = point.keep;
      const CrashRunResult result = RunCrashScenario(scenario, run);
      if (result.ok()) {
        continue;
      }
      std::ostringstream out;
      out << "FAIL seed=" << scenario.seed << " policy=" << policy << " crash="
          << CrashModeName(point.mode) << "@" << tick;
      if (point.mode == CrashMode::kMidApply) {
        out << " write=" << point.write;
      }
      if (point.mode == CrashMode::kTornJournal) {
        out << " keep=" << point.keep;
      }
      if (fault_profile != nullptr) {
        out << " chaos=" << options.chaos_seed << " profile=" << fault_profile;
      }
      out << (result.crashed ? "" : " (crash never fired)") << "\n";
      out << "  scenario: " << scenario.Describe() << "\n";
      out << "  replay:   dcat_fuzz --seed=" << scenario.seed << " --policy=" << policy
          << " --crash-at=" << tick;
      if (fault_profile != nullptr) {
        out << " --chaos=" << options.chaos_seed << " --chaos-profile=" << fault_profile;
      }
      out << "\n";
      for (const Violation& violation : result.violations) {
        out << "  violation [" << violation.invariant << "] tick=" << violation.tick
            << " tenant=" << violation.tenant << ": " << violation.detail << "\n";
      }
      out << "  spliced trace tail:\n" << FormatTraceTail(result.trace, options.trace_tail);
      *report = out.str();
      return false;
    }
  }
  return true;
}

// Fleet mode: one fleet per selected policy. Every shard must be
// invariant-clean, and (unless --no-determinism) a serial re-run must
// reproduce every shard's trace byte for byte — the sharding contract.
int RunFleetMode(const Options& options, const std::vector<std::string>& policies) {
  uint64_t failures = 0;
  for (const std::string& policy : policies) {
    FleetConfig config;
    config.hosts = options.fleet_hosts;
    config.sockets_per_host = options.fleet_sockets;
    config.jobs = options.fleet_jobs == 0 ? ThreadPool::DefaultJobs()
                                          : static_cast<size_t>(options.fleet_jobs);
    config.base_seed = options.start_seed;
    config.policy = policy;
    config.cycles_per_interval = options.cycles_per_interval;
    config.fidelity.mode = options.fidelity;
    if (options.chaos) {
      config.chaos_every = 3;
      config.chaos_profile =
          options.chaos_profile == "all" ? "mixed" : options.chaos_profile;
    }

    const FleetResult result = RunFleet(config);
    for (const FleetShardReport& shard : result.shards) {
      if (shard.ok()) {
        continue;
      }
      ++failures;
      std::printf("FAIL fleet shard host=%u socket=%u seed=%llu policy=%s%s\n", shard.host,
                  shard.socket, static_cast<unsigned long long>(shard.seed), policy.c_str(),
                  shard.faulted ? " (chaos)" : "");
      std::printf("  replay:   dcat_fuzz --fleet=1 --start-seed=%llu --policy=%s%s%s\n",
                  static_cast<unsigned long long>(shard.seed), policy.c_str(),
                  options.chaos && shard.faulted ? " --chaos" : "",
                  options.chaos && shard.faulted
                      ? (" --chaos-profile=" + config.chaos_profile).c_str()
                      : "");
      for (const Violation& violation : shard.result.violations) {
        std::printf("  violation [%s] tick=%llu tenant=%llu: %s\n",
                    violation.invariant.c_str(),
                    static_cast<unsigned long long>(violation.tick),
                    static_cast<unsigned long long>(violation.tenant),
                    violation.detail.c_str());
      }
      std::fputs(FormatTraceTail(shard.result.trace, options.trace_tail).c_str(), stdout);
    }

    if (options.check_determinism && config.jobs != 1) {
      FleetConfig serial = config;
      serial.jobs = 1;
      const FleetResult again = RunFleet(serial);
      for (size_t s = 0; s < result.shards.size(); ++s) {
        const std::string divergence = DescribeTraceDivergence(
            result.shards[s].result.trace, again.shards[s].result.trace);
        if (!divergence.empty()) {
          ++failures;
          std::printf(
              "FAIL fleet shard host=%u socket=%u seed=%llu policy=%s: trace differs "
              "between --fleet-jobs=%zu and --fleet-jobs=1\n  %s\n",
              result.shards[s].host, result.shards[s].socket,
              static_cast<unsigned long long>(result.shards[s].seed), policy.c_str(),
              config.jobs, divergence.c_str());
        }
      }
      if (result.MergedTrace() != again.MergedTrace()) {
        ++failures;
        std::printf("FAIL fleet merged trace differs between job counts (policy=%s)\n",
                    policy.c_str());
      }
    }

    std::printf(
        "fleet %ux%u policy=%s jobs=%zu: %llu ticks, %llu accesses, %llu violations%s\n",
        config.hosts, config.sockets_per_host, policy.c_str(), config.jobs,
        static_cast<unsigned long long>(result.ticks_total),
        static_cast<unsigned long long>(result.accesses_total),
        static_cast<unsigned long long>(result.violations_total),
        options.check_determinism && config.jobs != 1 ? " (serial re-run byte-identical)"
                                                      : "");
  }
  if (failures > 0) {
    std::printf("dcat_fuzz: %llu fleet checks FAILED\n",
                static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}

// Pulls an integer field out of one JSONL trace line ("tick":7 -> 7).
// Returns -1 when the field is absent (e.g. a socket-wide event).
long long JsonIntField(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return -1;
  }
  return std::atoll(line.c_str() + pos + needle.size());
}

// --check-golden: the read-side counterpart of --write-golden. Re-runs the
// pinned Fig. 10 scenario and diffs its trace against the checked-in file,
// pointing at the first divergent decision instead of a bare "differs".
int CheckGolden(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dcat_fuzz: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream golden_stream;
  golden_stream << in.rdbuf();
  const std::string golden = golden_stream.str();

  const ScenarioResult result = RunFig10Golden();
  if (!result.ok()) {
    std::fprintf(stderr, "dcat_fuzz: the Fig. 10 scenario itself violates invariants:\n");
    for (const Violation& violation : result.violations) {
      std::fprintf(stderr, "  [%s] %s\n", violation.invariant.c_str(),
                   violation.detail.c_str());
    }
    return 1;
  }
  if (result.trace == golden) {
    size_t lines = 0;
    for (const char c : golden) {
      lines += c == '\n' ? 1 : 0;
    }
    std::printf("golden trace matches %s (%zu lines, %zu bytes, %llu ticks audited)\n",
                path.c_str(), lines, golden.size(),
                static_cast<unsigned long long>(result.ticks));
    return 0;
  }

  std::istringstream want(golden);
  std::istringstream got(result.trace);
  std::string want_line;
  std::string got_line;
  size_t line_number = 0;
  while (true) {
    ++line_number;
    const bool have_want = static_cast<bool>(std::getline(want, want_line));
    const bool have_got = static_cast<bool>(std::getline(got, got_line));
    if (!have_want && !have_got) {
      // Bytes differ but every line matched: trailing-newline difference.
      std::fprintf(stderr, "dcat_fuzz: golden trace differs from %s only in trailing bytes\n",
                   path.c_str());
      return 1;
    }
    if (have_want && have_got && want_line == got_line) {
      continue;
    }
    const std::string& context = have_got ? got_line : want_line;
    std::fprintf(stderr,
                 "dcat_fuzz: golden trace MISMATCH at line %zu (tick %lld, tenant %lld):\n"
                 "  golden: %s\n"
                 "  run:    %s\n"
                 "(regenerate with --write-golden only for an intended decision change)\n",
                 line_number, JsonIntField(context, "tick"), JsonIntField(context, "tenant"),
                 have_want ? want_line.c_str() : "<eof>",
                 have_got ? got_line.c_str() : "<eof>");
    return 1;
  }
}

int WriteGolden(const std::string& path) {
  const ScenarioResult result = RunFig10Golden();
  if (!result.ok()) {
    std::fprintf(stderr, "dcat_fuzz: the Fig. 10 scenario itself violates invariants:\n");
    for (const Violation& violation : result.violations) {
      std::fprintf(stderr, "  [%s] %s\n", violation.invariant.c_str(),
                   violation.detail.c_str());
    }
    return 1;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "dcat_fuzz: cannot open '%s'\n", path.c_str());
    return 1;
  }
  out << result.trace;
  std::printf("wrote %s (%llu ticks audited, %zu bytes)\n", path.c_str(),
              static_cast<unsigned long long>(result.ticks), result.trace.size());
  return 0;
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (const char* v = value("--seeds=")) {
      if (!ParseUint64(v, &options.seeds) || options.seeds == 0) {
        std::fprintf(stderr, "--seeds: expected a positive integer, got '%s'\n", v);
        return 1;
      }
    } else if (const char* v = value("--start-seed=")) {
      if (!ParseUint64(v, &options.start_seed)) {
        std::fprintf(stderr, "--start-seed: expected an integer, got '%s'\n", v);
        return 1;
      }
    } else if (const char* v = value("--seed=")) {
      if (!ParseUint64(v, &options.start_seed)) {
        std::fprintf(stderr, "--seed: expected an integer, got '%s'\n", v);
        return 1;
      }
      options.single_seed = true;
    } else if (const char* v = value("--jobs=")) {
      if (!ParseUint64(v, &options.jobs)) {
        std::fprintf(stderr, "--jobs: expected an integer, got '%s'\n", v);
        return 1;
      }
      if (options.jobs == 0) {
        options.jobs = ThreadPool::DefaultJobs();
      }
    } else if (const char* v = value("--policy=")) {
      options.policy = v;
      if (options.policy != "all" && options.policy != "both" &&
          !PolicyRegistry::Global().Known(options.policy)) {
        std::fprintf(stderr, "--policy: unknown policy '%s' (registered: %s; also all|both)\n",
                     v, PolicyRegistry::Global().NamesList().c_str());
        return 1;
      }
    } else if (const char* v = value("--cycles=")) {
      if (!ParseDouble(v, &options.cycles_per_interval) ||
          options.cycles_per_interval <= 0) {
        std::fprintf(stderr, "--cycles: expected a positive number, got '%s'\n", v);
        return 1;
      }
    } else if (arg == "--no-differential") {
      options.check_differential = false;
    } else if (arg == "--no-determinism") {
      options.check_determinism = false;
    } else if (const char* v = value("--trace-tail=")) {
      uint64_t tail = 0;
      if (!ParseUint64(v, &tail)) {
        std::fprintf(stderr, "--trace-tail: expected an integer, got '%s'\n", v);
        return 1;
      }
      options.trace_tail = static_cast<size_t>(tail);
    } else if (const char* v = value("--write-golden=")) {
      options.write_golden = v;
    } else if (const char* v = value("--check-golden=")) {
      options.check_golden = v;
    } else if (const char* v = value("--fidelity=")) {
      const auto mode = FidelityModeFromName(v);
      if (!mode.has_value()) {
        std::fprintf(stderr, "--fidelity: expected line|analytic|hybrid, got '%s'\n", v);
        return 1;
      }
      options.fidelity = *mode;
    } else if (arg == "--fidelity-diff") {
      options.fidelity_diff = true;
    } else if (arg == "--chaos") {
      options.chaos = true;
    } else if (const char* v = value("--chaos=")) {
      if (!ParseUint64(v, &options.chaos_seed)) {
        std::fprintf(stderr, "--chaos: expected an integer seed, got '%s'\n", v);
        return 1;
      }
      options.chaos = true;
    } else if (arg == "--chaos-resctrl") {
      options.chaos_resctrl = true;
    } else if (const char* v = value("--chaos-resctrl=")) {
      options.chaos_resctrl_profile = v;
      bool known = options.chaos_resctrl_profile == "all";
      for (const char* name : kFsChaosProfiles) {
        known = known || options.chaos_resctrl_profile == name;
      }
      if (!known) {
        std::fprintf(stderr,
                     "--chaos-resctrl: expected fs-transient|fs-torn|fs-garbage|"
                     "fs-mixed|all, got '%s'\n",
                     v);
        return 1;
      }
      options.chaos_resctrl = true;
    } else if (const char* v = value("--chaos-profile=")) {
      options.chaos_profile = v;
      if (options.chaos_profile != "all" &&
          !FaultProfileByName(options.chaos_profile).has_value()) {
        std::fprintf(stderr,
                     "--chaos-profile: expected transient|silent-drift|counter-garbage|"
                     "persistent-outage|mixed|all, got '%s'\n",
                     v);
        return 1;
      }
      options.chaos = true;
    } else if (const char* v = value("--fleet=")) {
      options.fleet = true;
      uint64_t hosts = 0;
      uint64_t sockets = 1;
      const char* x = std::strchr(v, 'x');
      if (x != nullptr) {
        if (!ParseUint64(std::string(v, x - v), &hosts) || !ParseUint64(x + 1, &sockets) ||
            hosts == 0 || sockets == 0) {
          std::fprintf(stderr, "--fleet: expected M or MxN (positive), got '%s'\n", v);
          return 1;
        }
      } else if (!ParseUint64(v, &hosts) || hosts == 0) {
        std::fprintf(stderr, "--fleet: expected M or MxN (positive), got '%s'\n", v);
        return 1;
      }
      options.fleet_hosts = static_cast<uint32_t>(hosts);
      options.fleet_sockets = static_cast<uint32_t>(sockets);
    } else if (const char* v = value("--fleet-jobs=")) {
      if (!ParseUint64(v, &options.fleet_jobs)) {
        std::fprintf(stderr, "--fleet-jobs: expected an integer, got '%s'\n", v);
        return 1;
      }
    } else if (const char* v = value("--crash-at=")) {
      options.crash = true;
      if (std::strcmp(v, "every") == 0) {
        options.crash_every = true;
      } else if (!ParseUint64(v, &options.crash_tick) || options.crash_tick < 2) {
        std::fprintf(stderr, "--crash-at: expected a tick >= 2 or 'every', got '%s'\n", v);
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (!options.write_golden.empty()) {
    return WriteGolden(options.write_golden);
  }
  if (!options.check_golden.empty()) {
    return CheckGolden(options.check_golden);
  }
  if (options.fidelity_diff && (options.chaos || options.crash)) {
    // Chaos/crash runs never construct the engine (hybrid == line there by
    // construction), so a diff under them would only prove a tautology.
    std::fprintf(stderr, "--fidelity-diff cannot combine with --chaos or --crash-at\n");
    return 1;
  }
  if (options.chaos_resctrl && (options.fidelity_diff || options.crash)) {
    // The fs chaos lives on the scenario differential, which the fidelity
    // diff disables and the crash harness never constructs.
    std::fprintf(stderr, "--chaos-resctrl cannot combine with --fidelity-diff or --crash-at\n");
    return 1;
  }

  std::vector<std::string> policies;
  if (options.policy == "all") {
    policies = PolicyRegistry::Global().Names();
  } else if (options.policy == "both") {
    policies = {"max-fairness", "max-performance"};  // the paper's pair
  } else {
    policies = {PolicyRegistry::CanonicalName(options.policy)};
  }

  if (options.fleet) {
    if (options.crash || options.fidelity_diff || options.chaos_resctrl) {
      std::fprintf(stderr,
                   "--fleet cannot combine with --crash-at, --fidelity-diff, or "
                   "--chaos-resctrl\n");
      return 1;
    }
    return RunFleetMode(options, policies);
  }

  const uint64_t count = options.single_seed ? 1 : options.seeds;

  // One job per (seed, policy) pair; jobs are independent and derive all
  // state from the seed, so they can run on the pool in any order. Reports
  // land in the job-indexed slot and print in seed order afterward.
  std::vector<const char*> profiles;  // one nullptr entry = fault-free run
  if (!options.chaos) {
    profiles.push_back(nullptr);
  } else if (options.chaos_profile == "all") {
    profiles.assign(std::begin(kChaosProfiles), std::end(kChaosProfiles));
  } else {
    profiles.push_back(options.chaos_profile.c_str());
  }
  std::vector<const char*> fs_profiles;  // one nullptr entry = clean file I/O
  if (!options.chaos_resctrl) {
    fs_profiles.push_back(nullptr);
  } else if (options.chaos_resctrl_profile == "all") {
    fs_profiles.assign(std::begin(kFsChaosProfiles), std::end(kFsChaosProfiles));
  } else {
    fs_profiles.push_back(options.chaos_resctrl_profile.c_str());
  }

  struct Job {
    uint64_t seed = 0;
    std::string policy;
    const char* profile = nullptr;
    const char* fs_profile = nullptr;
  };
  std::vector<Job> job_list;
  job_list.reserve(static_cast<size_t>(count) * policies.size() * profiles.size() *
                   fs_profiles.size());
  for (uint64_t i = 0; i < count; ++i) {
    for (const std::string& policy : policies) {
      for (const char* profile : profiles) {
        for (const char* fs_profile : fs_profiles) {
          job_list.push_back({options.start_seed + i, policy, profile, fs_profile});
        }
      }
    }
  }
  std::vector<std::string> reports(job_list.size());
  std::vector<uint8_t> failed(job_list.size(), 0);

  ThreadPool pool(static_cast<size_t>(options.jobs));
  pool.ParallelFor(0, job_list.size(), [&](size_t j) {
    const Scenario scenario = RandomScenario(job_list[j].seed);
    const bool ok =
        options.crash
            ? RunCrash(scenario, job_list[j].policy, job_list[j].profile, options, &reports[j])
        : options.fidelity_diff
            ? RunFidelityDiff(scenario, job_list[j].policy, options, &reports[j])
            : RunOne(scenario, job_list[j].policy, job_list[j].profile,
                     job_list[j].fs_profile, options, &reports[j]);
    if (!ok) {
      failed[j] = 1;
    }
  });

  uint64_t failures = 0;
  const uint64_t runs = job_list.size();
  for (size_t j = 0; j < job_list.size(); ++j) {
    if (failed[j]) {
      ++failures;
      std::fputs(reports[j].c_str(), stdout);
    }
  }
  if (failures > 0) {
    std::printf("dcat_fuzz: %llu of %llu runs FAILED\n",
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(runs));
    return 1;
  }
  if (options.crash) {
    std::printf(
        "dcat_fuzz: %llu crash sweeps clean (%llu seeds x %zu policies x %zu fault "
        "schedules, crash matrix %s)\n",
        static_cast<unsigned long long>(runs), static_cast<unsigned long long>(count),
        policies.size(), profiles.size(),
        options.crash_every ? "at every tick"
                            : ("at tick " + std::to_string(options.crash_tick)).c_str());
  } else if (options.chaos || options.chaos_resctrl) {
    std::ostringstream dims;
    dims << count << " seeds x " << policies.size() << " policies";
    if (options.chaos) {
      dims << " x " << profiles.size() << " fault schedules";
    }
    if (options.chaos_resctrl) {
      dims << " x " << fs_profiles.size() << " file-I/O schedules";
    }
    std::printf("dcat_fuzz: %llu runs clean (%s)\n", static_cast<unsigned long long>(runs),
                dims.str().c_str());
  } else if (options.fidelity_diff) {
    std::printf(
        "dcat_fuzz: %llu fidelity diffs clean (%llu seeds x %zu policies, line vs hybrid "
        "decision traces byte-identical)\n",
        static_cast<unsigned long long>(runs), static_cast<unsigned long long>(count),
        policies.size());
  } else {
    std::printf("dcat_fuzz: %llu runs clean (%llu seeds x %zu policies)\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(count), policies.size());
  }
  return 0;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) { return dcat::Main(argc, argv); }
