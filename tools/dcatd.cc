// dcatd — the dCat daemon, as a command-line tool.
//
// Two modes:
//
//   sim (default)  Runs the controller against the socket simulator with a
//                  tenant mix given on the command line — the complete demo
//                  of the paper's system with no hardware requirements.
//
//     dcatd --mode=sim --tenants=mlr:8M/3,mload:60M/3,lookbusy/3 \
//           --intervals=20 [--policy=maxperf] [--machine=xeon-d]
//
//                  Each tenant spec is <workload>/<baseline-ways>; workload
//                  grammar per src/workloads/factory.h.
//
//   resctrl        Applies static contracted partitions through the Linux
//                  resctrl filesystem on real RDT hardware (and prints LLC
//                  occupancy when monitoring is mounted). Full dynamic
//                  control on real hardware additionally needs an IPC/L1
//                  counter provider (MSR/perf), which this build leaves to
//                  the deployment — see README.
//
//     dcatd --mode=resctrl --root=/sys/fs/resctrl --tenants=0-1/3,2-3/3
//
//                  Each tenant spec is <first-core>-<last-core>/<ways>.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/host.h"
#include "src/cluster/recorder.h"
#include "src/cluster/schedule.h"
#include "src/common/log.h"
#include "src/core/config_io.h"
#include "src/pqos/mask.h"
#include "src/pqos/resctrl_pqos.h"
#include "src/workloads/factory.h"

namespace dcat {
namespace {

struct Options {
  std::string mode = "sim";
  std::string tenants = "mlr:8M/3,mload:60M/3,lookbusy/3";
  std::string root = "/sys/fs/resctrl";
  std::string machine = "xeon-e5";
  std::string config_path;
  std::string schedule;
  int intervals = 20;
  DcatConfig dcat;
  bool print_config = false;
  bool verbose = false;
};

void PrintUsage() {
  std::printf(
      "dcatd — dynamic LLC management daemon (dCat, EuroSys'18)\n\n"
      "  --mode=sim|resctrl      backend (default sim)\n"
      "  --tenants=SPEC,...      sim: <workload>/<ways>; resctrl: <c0>-<c1>/<ways>\n"
      "  --intervals=N           sim: control intervals to run (default 20)\n"
      "  --policy=fair|maxperf   allocation policy (default fair)\n"
      "  --config=FILE           load thresholds from a key=value file\n"
      "  --print-config          print the effective config and exit\n"
      "  --schedule=I:T=SPEC,..  sim: at interval I switch tenant T's workload\n"
      "  --machine=xeon-e5|xeon-d  simulated socket (default xeon-e5)\n"
      "  --root=PATH             resctrl mount point (default /sys/fs/resctrl)\n"
      "  --verbose               log controller decisions\n\n"
      "workload grammar:");
  for (const std::string& example : WorkloadSpecExamples()) {
    std::printf(" %s", example.c_str());
  }
  std::printf("\n");
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

int RunSim(const Options& options) {
  HostConfig config;
  config.socket =
      options.machine == "xeon-d" ? SocketConfig::XeonD() : SocketConfig::XeonE5();
  config.mode = ManagerMode::kDcat;
  config.dcat = options.dcat;
  config.cycles_per_interval = 20e6;
  Host host(config);

  std::map<TenantId, std::string> names;
  TenantId next_id = 1;
  for (const std::string& tenant_spec : Split(options.tenants, ',')) {
    const size_t slash = tenant_spec.rfind('/');
    if (slash == std::string::npos) {
      std::fprintf(stderr, "tenant spec '%s': expected <workload>/<ways>\n",
                   tenant_spec.c_str());
      return 1;
    }
    const std::string workload_spec = tenant_spec.substr(0, slash);
    const uint32_t ways = static_cast<uint32_t>(std::atoi(tenant_spec.c_str() + slash + 1));
    auto workload = MakeWorkload(workload_spec, /*seed=*/next_id * 101);
    if (workload == nullptr || ways == 0) {
      std::fprintf(stderr, "bad tenant spec '%s'\n", tenant_spec.c_str());
      return 1;
    }
    const TenantId id = next_id++;
    names[id] = workload_spec;
    host.AddVm(VmConfig{.id = id, .name = workload_spec, .baseline_ways = ways},
               std::move(workload));
  }

  const ScheduleParseResult schedule = ParseSchedule(options.schedule);
  if (!schedule.ok) {
    std::fprintf(stderr, "bad --schedule: %s\n", schedule.error.c_str());
    return 1;
  }
  ScheduleRunner schedule_runner(schedule.events);

  std::printf("dcatd[sim]: %s, %zu tenants, %s policy, %d intervals\n",
              config.socket.llc_geometry.ToString().c_str(), host.num_vms(),
              AllocationPolicyName(options.dcat.policy), options.intervals);

  Recorder recorder;
  for (int t = 0; t < options.intervals; ++t) {
    schedule_runner.Fire(static_cast<uint64_t>(t), host);
    recorder.Record(host.now_seconds(), host.Step());
    if (options.verbose) {
      for (const auto& [id, name] : names) {
        std::printf("  t=%2d %-12s %-9s %2u ways\n", t + 1, name.c_str(),
                    CategoryName(host.dcat()->TenantCategory(id)),
                    host.dcat()->TenantWays(id));
      }
    }
  }
  std::printf("\n%s\n", recorder.TimelineTable(names).c_str());
  std::printf("final state:\n");
  for (const auto& [id, name] : names) {
    std::printf("  %-12s %-9s %2u ways (baseline %u)  table: %s\n", name.c_str(),
                CategoryName(host.dcat()->TenantCategory(id)), host.dcat()->TenantWays(id),
                host.dcat()->TenantBaselineWays(id),
                host.dcat()->TenantTable(id).ToString().c_str());
  }
  return 0;
}

int RunResctrl(const Options& options) {
  // Core count: read from the system.
  const long num_cores = sysconf(_SC_NPROCESSORS_ONLN);
  ResctrlPqos pqos(options.root, static_cast<uint16_t>(num_cores > 0 ? num_cores : 1));
  if (!pqos.Initialize()) {
    std::fprintf(stderr, "dcatd: no resctrl tree at %s (is resctrl mounted?)\n",
                 options.root.c_str());
    return 1;
  }
  std::printf("dcatd[resctrl]: %u ways, %u COS at %s\n", pqos.NumWays(), pqos.NumCos(),
              options.root.c_str());

  uint32_t next_way = 0;
  uint8_t next_cos = 1;
  for (const std::string& tenant_spec : Split(options.tenants, ',')) {
    unsigned first = 0;
    unsigned last = 0;
    unsigned ways = 0;
    if (std::sscanf(tenant_spec.c_str(), "%u-%u/%u", &first, &last, &ways) != 3 ||
        last < first || ways == 0) {
      std::fprintf(stderr, "tenant spec '%s': expected <c0>-<c1>/<ways>\n",
                   tenant_spec.c_str());
      return 1;
    }
    if (next_way + ways > pqos.NumWays() || next_cos >= pqos.NumCos()) {
      std::fprintf(stderr, "dcatd: out of ways or COS for '%s'\n", tenant_spec.c_str());
      return 1;
    }
    const uint8_t cos = next_cos++;
    const uint32_t mask = MakeWayMask(next_way, ways);
    next_way += ways;
    if (pqos.SetCosMask(cos, mask) != PqosStatus::kOk) {
      std::fprintf(stderr, "dcatd: SetCosMask failed for '%s'\n", tenant_spec.c_str());
      return 1;
    }
    for (unsigned core = first; core <= last; ++core) {
      if (pqos.AssociateCore(static_cast<uint16_t>(core), cos) != PqosStatus::kOk) {
        std::fprintf(stderr, "dcatd: AssociateCore(%u) failed\n", core);
        return 1;
      }
    }
    std::printf("  COS%u: cores %u-%u, mask 0x%s (%u ways), occupancy %llu bytes\n", cos,
                first, last, MaskToHex(mask).c_str(), ways,
                static_cast<unsigned long long>(pqos.LlcOccupancyBytes(cos)));
  }
  std::printf(
      "contracted partitions applied. Dynamic control requires an IPC/L1\n"
      "counter provider (MSR or perf_event) — see README 'Using the library'.\n");
  return 0;
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg == "--verbose") {
      options.verbose = true;
      SetLogLevel(LogLevel::kInfo);
    } else if (const char* v = value("--mode=")) {
      options.mode = v;
    } else if (const char* v = value("--tenants=")) {
      options.tenants = v;
    } else if (const char* v = value("--root=")) {
      options.root = v;
    } else if (const char* v = value("--machine=")) {
      options.machine = v;
    } else if (const char* v = value("--intervals=")) {
      options.intervals = std::atoi(v);
    } else if (const char* v = value("--config=")) {
      options.config_path = v;
    } else if (const char* v = value("--schedule=")) {
      options.schedule = v;
    } else if (arg == "--print-config") {
      options.print_config = true;
    } else if (const char* v = value("--policy=")) {
      options.dcat.policy = std::string(v) == "maxperf" ? AllocationPolicy::kMaxPerformance
                                                        : AllocationPolicy::kMaxFairness;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (!options.config_path.empty()) {
    // --policy given after --config still wins; remember the explicit pick.
    const AllocationPolicy requested = options.dcat.policy;
    const ConfigParseResult loaded = LoadDcatConfig(options.config_path);
    if (!loaded.ok) {
      std::fprintf(stderr, "dcatd: %s\n", loaded.error.c_str());
      return 1;
    }
    options.dcat = loaded.config;
    options.dcat.policy = requested != DcatConfig{}.policy ? requested : options.dcat.policy;
  }
  if (options.print_config) {
    std::printf("%s", FormatDcatConfig(options.dcat).c_str());
    return 0;
  }
  if (options.mode == "sim") {
    return RunSim(options);
  }
  if (options.mode == "resctrl") {
    return RunResctrl(options);
  }
  std::fprintf(stderr, "unknown mode '%s'\n", options.mode.c_str());
  return 1;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) { return dcat::Main(argc, argv); }
