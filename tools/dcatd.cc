// dcatd — the dCat daemon, as a command-line tool.
//
// Two modes:
//
//   sim (default)  Runs the controller against the socket simulator with a
//                  tenant mix given on the command line — the complete demo
//                  of the paper's system with no hardware requirements.
//
//     dcatd --mode=sim --tenants=mlr:8M/3,mload:60M/3,lookbusy/3 \
//           --intervals=20 [--policy=maxperf] [--machine=xeon-d] \
//           [--trace=trace.jsonl] [--metrics]
//
//                  Each tenant spec is <workload>/<baseline-ways>; workload
//                  grammar per src/workloads/factory.h. --trace streams the
//                  controller's decision events (phase changes, category
//                  transitions, allocations with reasons, per-tick rows) as
//                  JSONL; --metrics prints the control-loop metrics
//                  snapshot after the run.
//
//   resctrl        Applies static contracted partitions through the Linux
//                  resctrl filesystem on real RDT hardware (and prints LLC
//                  occupancy when monitoring is mounted). Full dynamic
//                  control on real hardware additionally needs an IPC/L1
//                  counter provider (MSR/perf), which this build leaves to
//                  the deployment — see README.
//
//     dcatd --mode=resctrl --root=/sys/fs/resctrl --tenants=0-1/3,2-3/3
//
//                  Each tenant spec is <first-core>-<last-core>/<ways>.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/host.h"
#include "src/cluster/recorder.h"
#include "src/cluster/schedule.h"
#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/core/config_io.h"
#include "src/policies/registry.h"
#include "src/pqos/mask.h"
#include "src/pqos/resctrl_pqos.h"
#include "src/recovery/journal.h"
#include "src/recovery/recovery.h"
#include "src/recovery/state_codec.h"
#include "src/telemetry/trace.h"
#include "src/workloads/factory.h"

namespace dcat {
namespace {

struct Options {
  std::string mode = "sim";
  std::string tenants = "mlr:8M/3,mload:60M/3,lookbusy/3";
  std::string root = "/sys/fs/resctrl";
  std::string machine = "xeon-e5";
  std::string config_path;
  std::string schedule;
  std::string trace_path;
  std::string journal_path;
  uint32_t intervals = 20;
  DcatConfig dcat;
  FidelityMode fidelity = FidelityMode::kLine;
  bool print_config = false;
  bool print_metrics = false;
  bool metrics_json = false;
  bool verbose = false;
};

void PrintUsage() {
  std::printf(
      "dcatd — dynamic LLC management daemon (dCat, EuroSys'18)\n\n"
      "  --mode=sim|resctrl      backend (default sim)\n"
      "  --tenants=SPEC,...      sim: <workload>/<ways>; resctrl: <c0>-<c1>/<ways>\n"
      "  --intervals=N           sim: control intervals to run (default 20)\n"
      "  --policy=NAME           allocation policy from the registry (default\n"
      "                          max-fairness; --policy=help lists names)\n"
      "  --config=FILE           load thresholds from a key=value file\n"
      "  --print-config          print the effective config and exit\n"
      "  --schedule=I:T=SPEC,..  sim: at interval I switch tenant T's workload\n"
      "  --machine=xeon-e5|xeon-d  simulated socket (default xeon-e5)\n"
      "  --root=PATH             resctrl mount point (default /sys/fs/resctrl)\n"
      "  --trace=FILE            sim: write the decision trace as JSONL\n"
      "  --journal=FILE          sim: write-ahead decision journal; a non-empty\n"
      "                          journal resumes the previous run's contracts\n"
      "                          and allocations (workloads restart fresh)\n"
      "  --metrics               sim: print control-loop metrics after the run\n"
      "  --metrics-json          sim: print the metrics snapshot as JSON\n"
      "  --fidelity=MODE         sim: line|analytic|hybrid cache-model fidelity\n"
      "                          (default line; hybrid is decision-identical,\n"
      "                          analytic trusts the rate model once warm)\n"
      "  --verbose               log controller decisions\n\n"
      "workload grammar:");
  for (const std::string& example : WorkloadSpecExamples()) {
    std::printf(" %s", example.c_str());
  }
  std::printf("\n");
}

// The policy recorded in the journal's last decodable record, or "" when
// nothing decodes — used for a friendly pre-check before recovery, which
// refuses (fail-fast) to adopt allocations decided under another policy.
std::string JournaledPolicy(const JournalParseResult& parsed) {
  ControllerPersistentState state;
  DecisionIntent intent;
  for (auto it = parsed.records.rbegin(); it != parsed.records.rend(); ++it) {
    if (it->type == JournalRecordType::kDecision) {
      if (DecodeDecisionRecord(it->payload.data(), it->payload.size(), &state, &intent)) {
        return state.policy;
      }
    } else if (DecodeControllerState(it->payload.data(), it->payload.size(), &state)) {
      return state.policy;
    }
  }
  return "";
}

int RunSim(const Options& options) {
  HostConfig config;
  config.socket =
      options.machine == "xeon-d" ? SocketConfig::XeonD() : SocketConfig::XeonE5();
  config.mode = ManagerMode::kDcat;
  config.dcat = options.dcat;
  config.cycles_per_interval = 20e6;
  config.fidelity.mode = options.fidelity;
  std::unique_ptr<FileJournalStorage> journal_storage;
  if (!options.journal_path.empty()) {
    journal_storage = std::make_unique<FileJournalStorage>(options.journal_path);
    config.journal_storage = journal_storage.get();
  }
  Host host(config);

  std::ofstream trace_file;
  std::unique_ptr<JsonlTraceWriter> trace;
  if (!options.trace_path.empty()) {
    trace_file.open(options.trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "dcatd: cannot open trace file '%s'\n",
                   options.trace_path.c_str());
      return 1;
    }
    trace = std::make_unique<JsonlTraceWriter>(&trace_file);
    host.AddEventSink(trace.get());
  }
  // The recorder rides the same event stream as the trace exporter.
  Recorder recorder(config.dcat.interval_seconds);
  host.AddEventSink(&recorder);

  std::map<TenantId, std::string> names;
  TenantId next_id = 1;

  // A non-empty journal means a previous daemon run (or a crash) left
  // reconciled truth behind: recover the controller from it and re-attach
  // VMs to the journaled contracts instead of admitting --tenants afresh.
  bool resumed = false;
  if (journal_storage != nullptr) {
    const JournalParseResult prior = ParseJournal(journal_storage->ReadAll());
    if (!prior.records.empty() || prior.torn_records > 0) {
      const std::string journaled_policy = JournaledPolicy(prior);
      if (!journaled_policy.empty() && journaled_policy != options.dcat.policy) {
        std::fprintf(stderr,
                     "dcatd: journal '%s' was written under policy '%s' but '%s' is "
                     "configured;\n       rerun with --policy=%s or start a fresh journal\n",
                     options.journal_path.c_str(), journaled_policy.c_str(),
                     options.dcat.policy.c_str(), journaled_policy.c_str());
        return 1;
      }
      host.CrashManager();
      std::vector<EventSink*> sinks;
      if (trace != nullptr) {
        sinks.push_back(trace.get());
      }
      sinks.push_back(&recorder);
      const RecoveryReport report = host.RestartManager(sinks);
      std::printf("dcatd: journal '%s': %s at tick %llu — %llu records (%llu torn), "
                  "%u tenants (%u adopted, %u redone, %u divergent)\n",
                  options.journal_path.c_str(),
                  report.outcome == RecoveryOutcome::kRecovered ? "recovered" : "cold boot",
                  static_cast<unsigned long long>(report.journal_tick),
                  static_cast<unsigned long long>(report.records_scanned),
                  static_cast<unsigned long long>(report.torn_records), report.tenants,
                  report.apply.adopted, report.apply.redone, report.apply.divergent);
      if (report.outcome == RecoveryOutcome::kRecovered && report.tenants > 0) {
        resumed = true;
        // Rebuild the VM fleet on the journaled placement. Tenant names in
        // sim runs are workload specs, so the workloads restart fresh from
        // the same specs (VM memory is not part of the persistent image).
        const ControllerPersistentState state = host.dcat()->ExportState();
        for (const PersistentTenant& tenant : state.tenants) {
          auto workload = MakeWorkload(tenant.spec.name, /*seed=*/tenant.spec.id * 101);
          if (workload == nullptr) {
            std::fprintf(stderr, "dcatd: journaled tenant %u has unknown workload '%s'\n",
                         tenant.spec.id, tenant.spec.name.c_str());
            return 1;
          }
          if (host.AdoptVm(VmConfig{.id = tenant.spec.id,
                                    .name = tenant.spec.name,
                                    .baseline_ways = tenant.spec.baseline_ways},
                           std::move(workload), tenant.spec.cores) == nullptr) {
            return 1;
          }
          names[tenant.spec.id] = tenant.spec.name;
          next_id = std::max<TenantId>(next_id, tenant.spec.id + 1);
        }
      }
    }
  }

  for (const std::string& tenant_spec : resumed ? std::vector<std::string>{}
                                                : Split(options.tenants, ',')) {
    const size_t slash = tenant_spec.rfind('/');
    if (slash == std::string::npos) {
      std::fprintf(stderr, "tenant spec '%s': expected <workload>/<ways>\n",
                   tenant_spec.c_str());
      return 1;
    }
    const std::string workload_spec = tenant_spec.substr(0, slash);
    uint32_t ways = 0;
    if (!ParseUint32(tenant_spec.substr(slash + 1), &ways) || ways == 0) {
      std::fprintf(stderr, "tenant spec '%s': bad ways count '%s'\n", tenant_spec.c_str(),
                   tenant_spec.substr(slash + 1).c_str());
      return 1;
    }
    auto workload = MakeWorkload(workload_spec, /*seed=*/next_id * 101);
    if (workload == nullptr) {
      std::fprintf(stderr, "bad tenant spec '%s'\n", tenant_spec.c_str());
      return 1;
    }
    const TenantId id = next_id++;
    names[id] = workload_spec;
    if (host.TryAddVm(VmConfig{.id = id, .name = workload_spec, .baseline_ways = ways},
                      std::move(workload)) == nullptr) {
      std::fprintf(stderr, "tenant spec '%s' rejected by the cache manager\n",
                   tenant_spec.c_str());
      return 1;
    }
  }

  const ScheduleParseResult schedule = ParseSchedule(options.schedule);
  if (!schedule.ok) {
    std::fprintf(stderr, "bad --schedule: %s\n", schedule.error.c_str());
    return 1;
  }
  ScheduleRunner schedule_runner(schedule.events);

  std::printf("dcatd[sim]: %s, %zu tenants, %s policy, %u intervals\n",
              config.socket.llc_geometry.ToString().c_str(), host.num_vms(),
              options.dcat.policy.c_str(), options.intervals);

  for (uint32_t t = 0; t < options.intervals; ++t) {
    schedule_runner.Fire(t, host);
    host.Step();
    if (options.verbose) {
      for (const auto& [id, name] : names) {
        const TenantSnapshot snap = host.dcat()->Snapshot(id);
        std::printf("  t=%2u %-12s %-9s %2u ways\n", t + 1, name.c_str(),
                    CategoryName(snap.category), snap.ways);
      }
    }
  }
  std::printf("\n%s\n", recorder.TimelineTable(names).c_str());
  std::printf("final state:\n");
  const ControllerSnapshot final_state = host.dcat()->Snapshot();
  for (const TenantSnapshot& snap : final_state.tenants) {
    const auto name_it = names.find(snap.id);
    std::printf("  %-12s %-9s %2u ways (baseline %u)  table: %s\n",
                (name_it != names.end() ? name_it->second : snap.name).c_str(),
                CategoryName(snap.category), snap.ways, snap.baseline_ways,
                snap.table.ToString().c_str());
  }
  std::printf("pool: %u of %u ways free\n", final_state.pool_ways, final_state.total_ways);
  if (trace != nullptr) {
    std::printf("trace: %llu events -> %s\n",
                static_cast<unsigned long long>(trace->lines_written()),
                options.trace_path.c_str());
  }
  if (options.print_metrics) {
    std::printf("\nmetrics:\n%s", host.dcat()->metrics().RenderText().c_str());
  }
  if (options.metrics_json) {
    std::printf("%s\n", host.dcat()->metrics().RenderJson().c_str());
  }
  return 0;
}

int RunResctrl(const Options& options) {
  // Core count: read from the system.
  const long num_cores = sysconf(_SC_NPROCESSORS_ONLN);
  ResctrlPqos pqos(options.root, static_cast<uint16_t>(num_cores > 0 ? num_cores : 1));
  if (!pqos.Initialize()) {
    std::fprintf(stderr, "dcatd: no resctrl tree at %s (is resctrl mounted?)\n",
                 options.root.c_str());
    return 1;
  }
  std::printf("dcatd[resctrl]: %u ways, %u COS at %s\n", pqos.NumWays(), pqos.NumCos(),
              options.root.c_str());

  uint32_t next_way = 0;
  uint8_t next_cos = 1;
  for (const std::string& tenant_spec : Split(options.tenants, ',')) {
    unsigned first = 0;
    unsigned last = 0;
    unsigned ways = 0;
    if (std::sscanf(tenant_spec.c_str(), "%u-%u/%u", &first, &last, &ways) != 3 ||
        last < first || ways == 0) {
      std::fprintf(stderr, "tenant spec '%s': expected <c0>-<c1>/<ways>\n",
                   tenant_spec.c_str());
      return 1;
    }
    if (next_way + ways > pqos.NumWays() || next_cos >= pqos.NumCos()) {
      std::fprintf(stderr, "dcatd: out of ways or COS for '%s'\n", tenant_spec.c_str());
      return 1;
    }
    const uint8_t cos = next_cos++;
    const uint32_t mask = MakeWayMask(next_way, ways);
    next_way += ways;
    if (pqos.SetCosMask(cos, mask) != PqosStatus::kOk) {
      std::fprintf(stderr, "dcatd: SetCosMask failed for '%s'\n", tenant_spec.c_str());
      return 1;
    }
    for (unsigned core = first; core <= last; ++core) {
      if (pqos.AssociateCore(static_cast<uint16_t>(core), cos) != PqosStatus::kOk) {
        std::fprintf(stderr, "dcatd: AssociateCore(%u) failed\n", core);
        return 1;
      }
    }
    std::printf("  COS%u: cores %u-%u, mask 0x%s (%u ways), occupancy %llu bytes\n", cos,
                first, last, MaskToHex(mask).c_str(), ways,
                static_cast<unsigned long long>(pqos.LlcOccupancyBytes(cos)));
  }
  std::printf(
      "contracted partitions applied. Dynamic control requires an IPC/L1\n"
      "counter provider (MSR or perf_event) — see README 'Using the library'.\n");
  return 0;
}

int Main(int argc, char** argv) {
  Options options;
  bool policy_flag_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg == "--verbose") {
      options.verbose = true;
      SetLogLevel(LogLevel::kInfo);
    } else if (const char* v = value("--mode=")) {
      options.mode = v;
    } else if (const char* v = value("--tenants=")) {
      options.tenants = v;
    } else if (const char* v = value("--root=")) {
      options.root = v;
    } else if (const char* v = value("--machine=")) {
      options.machine = v;
    } else if (const char* v = value("--intervals=")) {
      if (!ParseUint32(v, &options.intervals) || options.intervals == 0) {
        std::fprintf(stderr, "--intervals: expected a positive integer, got '%s'\n", v);
        return 1;
      }
    } else if (const char* v = value("--config=")) {
      options.config_path = v;
    } else if (const char* v = value("--schedule=")) {
      options.schedule = v;
    } else if (const char* v = value("--trace=")) {
      options.trace_path = v;
    } else if (const char* v = value("--journal=")) {
      options.journal_path = v;
    } else if (const char* v = value("--fidelity=")) {
      const auto mode = FidelityModeFromName(v);
      if (!mode.has_value()) {
        std::fprintf(stderr, "--fidelity: expected line|analytic|hybrid, got '%s'\n", v);
        return 1;
      }
      options.fidelity = *mode;
    } else if (arg == "--metrics") {
      options.print_metrics = true;
    } else if (arg == "--metrics-json") {
      options.metrics_json = true;
    } else if (arg == "--print-config") {
      options.print_config = true;
    } else if (const char* v = value("--policy=")) {
      if (std::string(v) == "help") {
        std::printf("registered policies: %s\n", PolicyRegistry::Global().NamesList().c_str());
        return 0;
      }
      const std::string canonical = PolicyRegistry::CanonicalName(v);
      if (!PolicyRegistry::Global().Known(canonical)) {
        std::fprintf(stderr, "--policy: unknown policy '%s' (registered: %s)\n", v,
                     PolicyRegistry::Global().NamesList().c_str());
        return 1;
      }
      options.dcat.policy = canonical;
      policy_flag_given = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (!options.config_path.empty()) {
    // --policy given alongside --config still wins, whatever its position.
    const std::string requested = options.dcat.policy;
    const ConfigParseResult loaded = LoadDcatConfig(options.config_path);
    if (!loaded.ok) {
      std::fprintf(stderr, "dcatd: %s\n", loaded.error.c_str());
      return 1;
    }
    options.dcat = loaded.config;
    if (policy_flag_given) {
      options.dcat.policy = requested;
    }
  }
  if (options.print_config) {
    std::printf("%s", FormatDcatConfig(options.dcat).c_str());
    return 0;
  }
  if (options.mode == "sim") {
    return RunSim(options);
  }
  if (options.mode == "resctrl") {
    return RunResctrl(options);
  }
  std::fprintf(stderr, "unknown mode '%s'\n", options.mode.c_str());
  return 1;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) { return dcat::Main(argc, argv); }
