// Trace replay: push a captured memory-access trace through dCat.
//
// Generates a small synthetic trace (standing in for a Pin/perf-mem capture
// of a real application: a hot structure walked constantly plus periodic
// sweeps over a cold region), replays it in a VM beside a lookbusy tenant,
// and shows the controller sizing the allocation from counters alone —
// the workload being a replayed black box, exactly like a tenant binary.
//
//   $ ./examples/trace_replay [trace-file]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "src/cluster/host.h"
#include "src/cluster/recorder.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/workloads/microbench.h"
#include "src/workloads/trace.h"

using namespace dcat;

namespace {

// Writes a trace with a 6 MiB hot region (reused) and an 8 MiB cold region
// (touched once per pass) — the profile of, say, a graph query engine.
std::string GenerateTrace() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcat_trace_example.txt").string();
  std::ofstream out(path);
  out << "# synthetic capture: hot 6MiB walk + cold 8MiB sweep\n";
  Rng rng(42);
  for (int block = 0; block < 6000; ++block) {
    for (int i = 0; i < 24; ++i) {
      out << "R " << rng.Below(6_MiB / 64) * 64 << "\n";
      out << "C 2\n";
    }
    // Periodic cold touch.
    out << "R " << (6_MiB + rng.Below(8_MiB / 64) * 64) << "\n";
    out << "C 8\n";
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : GenerateTrace();
  auto trace = TraceWorkload::FromFile(path);
  if (trace == nullptr) {
    std::fprintf(stderr, "cannot load trace '%s'\n", path.c_str());
    return 1;
  }
  std::printf("replaying %s: %zu records, %llu instructions per pass\n\n", path.c_str(),
              trace->trace_length(),
              static_cast<unsigned long long>(trace->instructions_per_pass()));

  HostConfig config;
  config.socket = SocketConfig::XeonE5();
  config.mode = ManagerMode::kDcat;
  config.cycles_per_interval = 15e6;
  Host host(config);
  Vm& vm = host.AddVm(VmConfig{.id = 1, .name = "trace", .baseline_ways = 2},
                      std::move(trace));
  host.AddVm(VmConfig{.id = 2, .name = "busy", .baseline_ways = 2},
             std::make_unique<LookbusyWorkload>());

  Recorder recorder;
  for (int t = 0; t < 15; ++t) {
    recorder.Record(host.now_seconds(), host.Step());
  }
  std::printf("%s\n", recorder.TimelineTable({{1, "trace"}, {2, "busy"}}).c_str());
  auto& replay = static_cast<TraceWorkload&>(vm.workload());
  std::printf("trace tenant: %s, %u ways (baseline %u), %llu full passes replayed\n",
              CategoryName(host.dcat()->Snapshot(1).category), host.dcat()->TenantWays(1),
              host.dcat()->Snapshot(1).baseline_ways,
              static_cast<unsigned long long>(replay.passes()));
  std::printf("performance table: %s\n", host.dcat()->Snapshot(1).table.ToString().c_str());
  return 0;
}
