// Quickstart: a minimal dCat deployment.
//
// One Xeon E5 host runs two tenants: a cache-hungry MLR-8MB VM and a
// lookbusy VM that cannot use its LLC share. Watch dCat reclaim the
// lookbusy tenant's ways and grow the MLR tenant until its IPC stops
// improving.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <map>
#include <memory>

#include "src/cluster/host.h"
#include "src/cluster/recorder.h"
#include "src/common/log.h"
#include "src/common/units.h"
#include "src/workloads/microbench.h"

using namespace dcat;

int main() {
  SetLogLevel(LogLevel::kInfo);

  HostConfig config;
  config.socket = SocketConfig::XeonE5();
  config.mode = ManagerMode::kDcat;
  Host host(config);

  // Tenant 1: MLR with an 8 MiB working set, contracted 3 LLC ways
  // (3 x 2.25 MiB = 6.75 MiB — deliberately less than the working set).
  host.AddVm(VmConfig{.id = 1, .name = "mlr", .baseline_ways = 3},
             std::make_unique<MlrWorkload>(8_MiB));
  // Tenant 2: lookbusy, also contracted 3 ways it will never use.
  host.AddVm(VmConfig{.id = 2, .name = "lookbusy", .baseline_ways = 3},
             std::make_unique<LookbusyWorkload>());

  Recorder recorder;
  for (int t = 0; t < 20; ++t) {
    recorder.Record(host.now_seconds(), host.Step());
  }

  std::printf("%s\n", recorder
                          .TimelineTable({{1, "mlr"}, {2, "lookbusy"}})
                          .c_str());
  std::printf("mlr     : category=%s ways=%u (baseline %u)\n",
              CategoryName(host.dcat()->Snapshot(1).category), host.dcat()->TenantWays(1),
              host.dcat()->Snapshot(1).baseline_ways);
  std::printf("lookbusy: category=%s ways=%u (baseline %u)\n",
              CategoryName(host.dcat()->Snapshot(2).category), host.dcat()->TenantWays(2),
              host.dcat()->Snapshot(2).baseline_ways);
  std::printf("mlr performance table: %s\n", host.dcat()->Snapshot(1).table.ToString().c_str());
  return 0;
}
