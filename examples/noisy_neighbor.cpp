// Noisy neighbor: a latency-sensitive Redis tenant beside streaming hogs.
//
// The motivating scenario from the paper's introduction: a tenant pays for
// a share of the LLC, two co-located tenants run memory scans that would
// flush it in an unmanaged cache. The example runs the same colocation
// under all three regimes and reports the Redis tenant's throughput and
// latency.
//
//   $ ./examples/noisy_neighbor
#include <cstdio>
#include <memory>

#include "src/cluster/host.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/microbench.h"

using namespace dcat;

namespace {

struct Result {
  double kops_per_interval = 0.0;
  double avg_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  uint32_t redis_ways = 0;
};

Result RunMode(ManagerMode mode) {
  HostConfig config;
  config.socket = SocketConfig::XeonE5();
  config.mode = mode;
  config.cycles_per_interval = 15e6;
  Host host(config);

  Vm& redis_vm = host.AddVm(VmConfig{.id = 1, .name = "redis", .baseline_ways = 4},
                            std::make_unique<KvStoreWorkload>());
  host.AddVm(VmConfig{.id = 2, .name = "hog1", .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, /*seed=*/2));
  host.AddVm(VmConfig{.id = 3, .name = "hog2", .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, /*seed=*/3));

  host.Run(12);  // let the controller settle
  auto& redis = static_cast<KvStoreWorkload&>(redis_vm.workload());
  redis.ResetMetrics();
  const int kMeasure = 5;
  host.Run(kMeasure);

  Result r;
  r.kops_per_interval = static_cast<double>(redis.requests_completed()) / kMeasure / 1000.0;
  r.avg_latency_ns = redis.AvgRequestLatencyCycles() / 2.3;
  r.p99_latency_ns = redis.P99RequestLatencyCycles() / 2.3;
  r.redis_ways = host.manager().TenantWays(1);
  return r;
}

}  // namespace

int main() {
  std::printf("Redis tenant (Zipfian GETs over 1M x 128B) beside two MLOAD-60MB hogs\n\n");
  TextTable table({"regime", "kGET/interval", "avg lat (ns)", "p99 lat (ns)", "redis ways"});
  for (ManagerMode mode : {ManagerMode::kShared, ManagerMode::kStaticCat, ManagerMode::kDcat}) {
    const Result r = RunMode(mode);
    table.AddRow({ManagerModeName(mode), TextTable::Fmt(r.kops_per_interval, 1),
                  TextTable::Fmt(r.avg_latency_ns, 0), TextTable::Fmt(r.p99_latency_ns, 0),
                  TextTable::FmtInt(r.redis_ways)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "dCat reclaims the ways the hogs cannot use and hands them to Redis,\n"
      "so its hot keys stay resident: higher throughput, lower tail latency.\n");
  return 0;
}
