// resctrl backend tour: drive the Linux CAT interface the way dCat would.
//
// On a machine with Intel RDT, /sys/fs/resctrl is the kernel's CAT control
// surface and this example manipulates it directly (run as root with
// resctrl mounted). Everywhere else it builds a faithful fake tree in a
// temp directory so you can watch exactly which files dCat would write.
//
//   $ ./examples/resctrl_tour [resctrl-root]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/log.h"
#include "src/pqos/mask.h"
#include "src/pqos/resctrl_pqos.h"

using namespace dcat;
namespace fs = std::filesystem;

namespace {

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Builds the fake tree (20-way LLC, 16 COS) a Xeon E5 v4 would expose.
std::string MakeFakeTree() {
  const fs::path root = fs::temp_directory_path() / "dcat_resctrl_tour";
  fs::remove_all(root);
  fs::create_directories(root / "info" / "L3");
  std::ofstream(root / "info" / "L3" / "cbm_mask") << "fffff\n";
  std::ofstream(root / "info" / "L3" / "num_closids") << "16\n";
  std::ofstream(root / "schemata") << "L3:0=fffff\n";
  std::ofstream(root / "cpus_list") << "0-17\n";
  return root.string();
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kInfo);
  std::string root;
  bool fake = false;
  if (argc > 1) {
    root = argv[1];
  } else if (fs::exists("/sys/fs/resctrl/info/L3/cbm_mask")) {
    root = "/sys/fs/resctrl";
  } else {
    root = MakeFakeTree();
    fake = true;
    std::printf("no RDT hardware detected; using a fake resctrl tree at %s\n\n", root.c_str());
  }

  ResctrlPqos pqos(root, /*num_cores=*/18);
  if (!pqos.Initialize()) {
    std::fprintf(stderr, "failed to initialize resctrl backend at %s\n", root.c_str());
    return 1;
  }
  std::printf("platform: %u LLC ways, %u classes of service\n\n", pqos.NumWays(),
              pqos.NumCos());

  // A miniature dCat decision, applied by hand:
  //   tenant A (cores 0,1) -> COS 1, ways 0-5   (a Receiver that grew)
  //   tenant B (cores 2,3) -> COS 2, way 6 only (a Donor)
  std::printf("programming: tenant A = 6 ways, tenant B = 1 way\n");
  pqos.SetCosMask(1, MakeWayMask(0, 6));
  pqos.AssociateCore(0, 1);
  pqos.AssociateCore(1, 1);
  pqos.SetCosMask(2, MakeWayMask(6, 1));
  pqos.AssociateCore(2, 2);
  pqos.AssociateCore(3, 2);

  for (int cos : {1, 2}) {
    const fs::path dir = pqos.GroupDir(static_cast<uint8_t>(cos));
    std::printf("  %s/schemata  -> %s", dir.c_str(),
                ReadFileOrEmpty(dir / "schemata").c_str());
    std::printf("  %s/cpus_list -> %s", dir.c_str(),
                ReadFileOrEmpty(dir / "cpus_list").c_str());
  }

  // Reclaim: tenant B's workload picks back up; give it 3 ways again.
  std::printf("\nreclaim: tenant B back to its 3-way baseline\n");
  pqos.SetCosMask(1, MakeWayMask(0, 4));
  pqos.SetCosMask(2, MakeWayMask(4, 3));
  for (int cos : {1, 2}) {
    const fs::path dir = pqos.GroupDir(static_cast<uint8_t>(cos));
    std::printf("  %s/schemata  -> %s", dir.c_str(),
                ReadFileOrEmpty(dir / "schemata").c_str());
  }

  if (fake) {
    std::printf("\n(fake tree left at %s for inspection)\n", root.c_str());
  }
  return 0;
}
