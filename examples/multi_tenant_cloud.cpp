// Multi-tenant cloud: arrivals, departures and phase changes on one host.
//
// A performance-sensitive IaaS host with six tenants whose workloads come
// and go: watch dCat reclaim baselines on arrival, route donated ways to
// whoever can use them, and expose a streaming tenant. Prints the decision
// timeline and the controller's own category/event log at the end.
//
//   $ ./examples/multi_tenant_cloud
#include <cstdio>
#include <memory>

#include "src/cluster/host.h"
#include "src/cluster/recorder.h"
#include "src/common/units.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/microbench.h"
#include "src/workloads/spec_suite.h"

using namespace dcat;

int main() {
  HostConfig config;
  config.socket = SocketConfig::XeonE5();
  config.mode = ManagerMode::kDcat;
  config.cycles_per_interval = 15e6;
  Host host(config);

  // Six tenants, 3 contracted ways each (18 of 20 ways sold).
  Vm& analytics = host.AddVm(VmConfig{.id = 1, .name = "analytics", .baseline_ways = 3},
                             std::make_unique<IdleWorkload>());
  host.AddVm(VmConfig{.id = 2, .name = "redis", .baseline_ways = 3},
             std::make_unique<KvStoreWorkload>(KvStoreParams{.num_records = 200'000}));
  host.AddVm(VmConfig{.id = 3, .name = "batch", .baseline_ways = 3},
             std::make_unique<SpecProxyWorkload>(SpecParamsByName("omnetpp")));
  host.AddVm(VmConfig{.id = 4, .name = "scan", .baseline_ways = 3},
             std::make_unique<MloadWorkload>(60_MiB));
  host.AddVm(VmConfig{.id = 5, .name = "web1", .baseline_ways = 3},
             std::make_unique<LookbusyWorkload>());
  Vm& web2 = host.AddVm(VmConfig{.id = 6, .name = "web2", .baseline_ways = 3},
                        std::make_unique<LookbusyWorkload>());

  Recorder recorder;
  for (int t = 0; t < 30; ++t) {
    if (t == 10) {
      std::printf("t=%d: analytics tenant starts a cache-hungry job (MLR-12MB)\n", t);
      analytics.ReplaceWorkload(std::make_unique<MlrWorkload>(12_MiB));
    }
    if (t == 20) {
      std::printf("t=%d: web2 tenant switches to a memory-bound phase (MLR-4MB)\n", t);
      web2.ReplaceWorkload(std::make_unique<MlrWorkload>(4_MiB));
    }
    recorder.Record(host.now_seconds(), host.Step());
  }

  std::printf("\n%s\n",
              recorder
                  .TimelineTable({{1, "analytics"},
                                  {2, "redis"},
                                  {3, "batch"},
                                  {4, "scan"},
                                  {5, "web1"},
                                  {6, "web2"}})
                  .c_str());

  std::printf("final categories:\n");
  for (TenantId id = 1; id <= 6; ++id) {
    std::printf("  tenant %u: %-10s %2u ways (baseline %u)\n", id,
                CategoryName(host.dcat()->Snapshot(id).category), host.dcat()->TenantWays(id),
                host.dcat()->Snapshot(id).baseline_ways);
  }

  // The controller's decision log doubles as an audit trail.
  int phase_changes = 0;
  for (const auto& entry : host.dcat()->log()) {
    if (entry.phase_changed) {
      ++phase_changes;
    }
  }
  std::printf("\ncontroller processed %zu decisions, %d phase changes\n",
              host.dcat()->log().size(), phase_changes);
  return 0;
}
