// Ablations of dCat design choices (DESIGN.md §5).
//
//   A. Performance table on/off — the Fig. 12 fast path quantified: how
//      many intervals does a rerun need to regain its preferred ways?
//   B. LLC replacement policy — LRU / NRU / random under the Fig. 15 mix.
//   C. Donor-shrink hysteresis — paper-exact (fraction 1.0) vs damped
//      (0.5): allocation churn for a satisfied workload near the
//      threshold.
//   D. L2 modeling — how the private L2 filters LLC references (and
//      thereby the categorization inputs).
#include <memory>

#include "bench/harness.h"
#include "src/workloads/spec_suite.h"

namespace dcat {
namespace {

// --- A: performance table value ---
void AblatePerfTable() {
  std::printf("--- A. performance-table fast path ---\n");
  // The fast path cannot be disabled by a config knob (it is structural),
  // so quantify it instead: intervals to regain preferred ways on rerun
  // vs on first run.
  Host host(BenchHostConfig(ManagerMode::kDcat));
  Vm& vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 3},
                      std::make_unique<MlrWorkload>(8_MiB, 1));
  for (TenantId id = 2; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
               std::make_unique<LookbusyWorkload>());
  }
  int first_run_intervals = 0;
  uint32_t prev = 0;
  for (int t = 0; t < 16; ++t) {
    host.Step();
    if (host.dcat()->TenantWays(1) != prev) {
      prev = host.dcat()->TenantWays(1);
      first_run_intervals = t + 1;
    }
  }
  const uint32_t preferred = host.dcat()->TenantWays(1);
  vm.ReplaceWorkload(std::make_unique<IdleWorkload>());
  host.Run(4);
  vm.ReplaceWorkload(std::make_unique<MlrWorkload>(8_MiB, 2));
  int rerun_intervals = 0;
  for (int t = 0; t < 16; ++t) {
    host.Step();
    ++rerun_intervals;
    if (host.dcat()->TenantWays(1) >= preferred - 1) {
      break;
    }
  }
  std::printf("first run: %d intervals to settle at %u ways\n", first_run_intervals, preferred);
  std::printf("rerun (table hit): %d interval(s) to regain the allocation\n\n", rerun_intervals);
}

// --- B: replacement policy ---
struct ReplacementOutcome {
  double latency_ns = 0.0;
  uint32_t ways = 0;
};

ReplacementOutcome RunReplacement(ReplacementKind kind) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat);
  config.socket.llc_replacement = kind;
  Host host(config);
  Vm& mlr_vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 3},
                          std::make_unique<MlrWorkload>(8_MiB));
  host.AddVm(VmConfig{.id = 2, .name = "mload", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<MloadWorkload>(60_MiB, 2));
  for (TenantId id = 3; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
               std::make_unique<LookbusyWorkload>());
  }
  host.Run(14);
  auto& mlr = static_cast<MlrWorkload&>(mlr_vm.workload());
  mlr.ResetMetrics();
  host.Run(4);
  return {CyclesToNs(mlr.AvgAccessLatencyCycles()), host.dcat()->TenantWays(1)};
}

void AblateReplacement() {
  std::printf("--- B. LLC replacement policy (MLR-8MB + MLOAD-60MB mix) ---\n");
  const std::vector<ReplacementKind> kinds = {ReplacementKind::kLru, ReplacementKind::kNru,
                                              ReplacementKind::kRandom};
  std::vector<std::function<ReplacementOutcome()>> cells;
  for (ReplacementKind kind : kinds) {
    cells.push_back([kind] { return RunReplacement(kind); });
  }
  const std::vector<ReplacementOutcome> outcomes = RunBenchCells(cells);
  TextTable table({"policy", "MLR latency (ns)", "MLR final ways"});
  for (size_t i = 0; i < kinds.size(); ++i) {
    table.AddRow({ReplacementKindName(kinds[i]), TextTable::Fmt(outcomes[i].latency_ns, 1),
                  TextTable::FmtInt(outcomes[i].ways)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

// --- C: donor hysteresis ---
struct HysteresisOutcome {
  int changes = 0;
  uint32_t final_ways = 0;
};

HysteresisOutcome RunHysteresis(double fraction) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat);
  config.dcat.donor_shrink_fraction = fraction;
  Host host(config);
  // A working set that lands near the miss threshold at its preferred
  // size: the paper-exact rule (1.0) keeps nibbling a way and giving it
  // back; the damped rule holds steady.
  host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<MlrWorkload>(6_MiB));
  for (TenantId id = 2; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
               std::make_unique<LookbusyWorkload>());
  }
  host.Run(8);  // settle
  HysteresisOutcome outcome;
  uint32_t prev = host.dcat()->TenantWays(1);
  for (int t = 0; t < 24; ++t) {
    host.Step();
    if (host.dcat()->TenantWays(1) != prev) {
      ++outcome.changes;
      prev = host.dcat()->TenantWays(1);
    }
  }
  outcome.final_ways = prev;
  return outcome;
}

void AblateDonorHysteresis() {
  std::printf("--- C. donor-shrink hysteresis (allocation churn) ---\n");
  const std::vector<double> fractions = {1.0, 0.5};
  std::vector<std::function<HysteresisOutcome()>> cells;
  for (double fraction : fractions) {
    cells.push_back([fraction] { return RunHysteresis(fraction); });
  }
  const std::vector<HysteresisOutcome> outcomes = RunBenchCells(cells);
  TextTable table({"donor_shrink_fraction", "way changes over 24 intervals", "final ways"});
  for (size_t i = 0; i < fractions.size(); ++i) {
    table.AddRow({TextTable::Fmt(fractions[i], 1), TextTable::FmtInt(outcomes[i].changes),
                  TextTable::FmtInt(outcomes[i].final_ways)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

// --- D: L2 filtering ---
struct L2Outcome {
  double refs_per_ki = 0.0;
  uint32_t ways = 0;
};

L2Outcome RunL2(bool model_l2) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat);
  config.socket.model_l2 = model_l2;
  Host host(config);
  host.AddVm(VmConfig{.id = 1, .name = "gcc", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<SpecProxyWorkload>(SpecParamsByName("gcc")));
  for (TenantId id = 2; id <= 5; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 4},
               std::make_unique<LookbusyWorkload>());
  }
  L2Outcome outcome;
  for (int t = 0; t < 12; ++t) {
    const auto stats = host.Step();
    outcome.refs_per_ki = stats[0].sample.llc_refs_per_kilo_instruction();
  }
  outcome.ways = host.dcat()->TenantWays(1);
  return outcome;
}

void AblateL2() {
  std::printf("--- D. private L2 filtering of LLC references ---\n");
  const std::vector<L2Outcome> outcomes = RunBenchCells<L2Outcome>(
      {[] { return RunL2(true); }, [] { return RunL2(false); }});
  TextTable table({"config", "llc refs / 1K ins (spec gcc proxy)", "dCat final ways"});
  for (size_t i = 0; i < outcomes.size(); ++i) {
    table.AddRow({i == 0 ? "with L2" : "no L2", TextTable::Fmt(outcomes[i].refs_per_ki, 1),
                  TextTable::FmtInt(outcomes[i].ways)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Ablations of dCat design choices", "DESIGN.md ablation index");
  AblatePerfTable();
  AblateReplacement();
  AblateDonorHysteresis();
  AblateL2();
  return 0;
}
