// Shared scaffolding for the figure/table reproduction benchmarks.
//
// Every bench binary reproduces one table or figure from the paper on the
// simulated Xeon E5-2697 v4 (18 cores, 20-way 45 MiB LLC) unless the
// experiment explicitly targets the Xeon-D. Intervals are time-dilated
// (fewer cycles per control interval than a real second) — the controller
// operates on rates, so decisions are unaffected while wall-clock stays
// manageable.
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/host.h"
#include "src/cluster/recorder.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"
#include "src/policies/registry.h"
#include "src/workloads/microbench.h"

namespace dcat {

// Default simulated cycles per control interval for bench runs.
inline constexpr double kBenchCyclesPerInterval = 20e6;

inline HostConfig BenchHostConfig(ManagerMode mode,
                                  double cycles_per_interval = kBenchCyclesPerInterval) {
  HostConfig config;
  config.socket = SocketConfig::XeonE5();
  config.mode = mode;
  config.cycles_per_interval = cycles_per_interval;
  return config;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s of the dCat paper, EuroSys'18)\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

// Converts a latency in cycles to nanoseconds at the modeled 2.3 GHz.
inline double CyclesToNs(double cycles) { return cycles / 2.3; }

// --- policy bake-off support --------------------------------------------

// Parses --policies=a,b,...|all (last occurrence wins; names canonicalize
// through the PolicyRegistry, unknown names exit listing what exists).
// Benches that compare policies fan one cell per (cell, policy) over the
// returned list; with no flag the bench runs its `defaults`.
inline std::vector<std::string> ParsePoliciesFlag(int argc, char** argv,
                                                  std::vector<std::string> defaults) {
  std::vector<std::string> policies = std::move(defaults);
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--policies=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) != 0) {
      continue;
    }
    const std::string value = argv[i] + std::strlen(prefix);
    if (value == "all") {
      policies = PolicyRegistry::Global().Names();
      continue;
    }
    policies.clear();
    for (const std::string& name : Split(value, ',')) {
      const std::string canonical = PolicyRegistry::CanonicalName(Trim(name));
      if (!PolicyRegistry::Global().Known(canonical)) {
        std::fprintf(stderr, "--policies: unknown policy '%s' (registered: %s; or all)\n",
                     name.c_str(), PolicyRegistry::Global().NamesList().c_str());
        std::exit(1);
      }
      policies.push_back(canonical);
    }
    if (policies.empty()) {
      std::fprintf(stderr, "--policies: expected a comma-separated list or 'all'\n");
      std::exit(1);
    }
  }
  return policies;
}

// Side-by-side comparison table: the first column names the metric, then
// one column per policy in bake-off order.
inline TextTable MakePolicyComparisonTable(const std::string& row_label,
                                           const std::vector<std::string>& policies) {
  std::vector<std::string> header{row_label};
  header.insert(header.end(), policies.begin(), policies.end());
  return TextTable(std::move(header));
}

// --- parallel scenario engine -------------------------------------------
//
// Bench cells (one figure configuration, way-count point, policy variant)
// are independent: each constructs its own Host/Socket and seeds its
// workloads explicitly, so cells may run concurrently on the shared pool
// without changing any result. Determinism rules:
//   * a cell must create ALL of its state inside its lambda — no captured
//     mutable simulator objects, no shared RNGs;
//   * results come back indexed by cell order, so tables are printed in
//     the same order as a serial run (output is byte-identical);
//   * cells must not print; printing happens on the main thread afterward.
// DCAT_JOBS=1 forces serial execution (the pool degrades to inline calls).
template <typename T>
std::vector<T> RunBenchCells(const std::vector<std::function<T()>>& cells) {
  std::vector<T> results(cells.size());
  SharedThreadPool().ParallelFor(
      0, cells.size(), [&](size_t i) { results[i] = cells[i](); });
  return results;
}

}  // namespace dcat

#endif  // BENCH_HARNESS_H_
