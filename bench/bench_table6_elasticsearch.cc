// Table 6: Elasticsearch under YCSB workload C (100% reads).
//
// The search proxy reads uniformly from 100K x 1KB documents through a hot
// term dictionary. Paper result: dCat improves average latency by ~10% and
// p99 latency by ~11.6% over both static partitioning and shared cache.
#include <memory>

#include "bench/harness.h"
#include "src/workloads/search.h"

namespace dcat {
namespace {

struct SearchResult {
  double avg_ns = 0.0;
  double p99_ns = 0.0;
};

SearchResult RunMode(ManagerMode mode) {
  Host host(BenchHostConfig(mode, /*cycles_per_interval=*/15e6));
  Vm& es_vm = host.AddVm(VmConfig{.id = 1, .name = "es", .vcpus = 2, .baseline_ways = 4},
                         std::make_unique<SearchWorkload>());
  host.AddVm(VmConfig{.id = 2, .name = "mload1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, 2));
  host.AddVm(VmConfig{.id = 3, .name = "mload2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, 3));
  host.AddVm(VmConfig{.id = 4, .name = "busy1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());
  host.AddVm(VmConfig{.id = 5, .name = "busy2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());
  host.Run(14);
  auto& es = static_cast<SearchWorkload&>(es_vm.workload());
  es.ResetMetrics();
  host.Run(6);
  return {CyclesToNs(es.AvgQueryLatencyCycles()), CyclesToNs(es.P99QueryLatencyCycles())};
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Elasticsearch, YCSB-C (100K x 1KB reads) vs noisy neighbors", "Table 6");
  const std::vector<SearchResult> results =
      RunBenchCells<SearchResult>({[] { return RunMode(ManagerMode::kShared); },
                                   [] { return RunMode(ManagerMode::kStaticCat); },
                                   [] { return RunMode(ManagerMode::kDcat); }});
  const SearchResult& shared = results[0];
  const SearchResult& fixed = results[1];
  const SearchResult& dynamic = results[2];

  TextTable table({"mode", "avg latency (ns)", "p99 latency (ns)"});
  table.AddRow({"shared", TextTable::Fmt(shared.avg_ns, 0), TextTable::Fmt(shared.p99_ns, 0)});
  table.AddRow(
      {"static CAT", TextTable::Fmt(fixed.avg_ns, 0), TextTable::Fmt(fixed.p99_ns, 0)});
  table.AddRow({"dCat", TextTable::Fmt(dynamic.avg_ns, 0), TextTable::Fmt(dynamic.p99_ns, 0)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("dCat avg vs shared %+.1f%%, vs static %+.1f%%; p99 vs shared %+.1f%%\n",
              100.0 * (dynamic.avg_ns / shared.avg_ns - 1.0),
              100.0 * (dynamic.avg_ns / fixed.avg_ns - 1.0),
              100.0 * (dynamic.p99_ns / shared.p99_ns - 1.0));
  std::printf("Expected shape (paper): ~10%% lower avg and ~11.6%% lower p99 with dCat.\n");
  return 0;
}
