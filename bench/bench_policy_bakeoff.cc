// Policy bake-off: the same tenant mix under every allocation policy.
//
// One cell per policy from --policies=a,b,...|all (default: everything in
// the PolicyRegistry). Each cell runs an identical mix — two MLR receivers,
// one streaming scanner, lookbusy donors and an idle VM — on the Xeon E5
// socket and reports the steady state side by side: final ways per tenant,
// mean normalized IPC over the measured tenants, free pool, distinct COSes
// in use (clustering policies pack tenants onto shared classes), and the
// controller's reclaim/allocation activity.
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "bench/harness.h"

namespace dcat {
namespace {

constexpr int kIntervals = 40;

const std::vector<std::pair<const char*, uint32_t>> kMix = {
    {"mlr8", 3},  {"mlr12", 3}, {"mload60", 2}, {"busy1", 1},
    {"busy2", 1}, {"busy3", 1}, {"busy4", 1},   {"idle", 1},
};

struct BakeoffCell {
  std::map<std::string, uint32_t> final_ways;  // by tenant name
  double mean_norm_ipc = 0.0;
  uint32_t pool_ways = 0;
  size_t distinct_cos = 0;
  uint64_t reclaims = 0;
  uint64_t allocations = 0;
};

std::unique_ptr<Workload> MakeMixWorkload(const std::string& name, uint64_t seed) {
  if (name == "mlr8") {
    return std::make_unique<MlrWorkload>(8_MiB, seed);
  }
  if (name == "mlr12") {
    return std::make_unique<MlrWorkload>(12_MiB, seed);
  }
  if (name == "mload60") {
    return std::make_unique<MloadWorkload>(60_MiB, seed);
  }
  if (name == "idle") {
    return std::make_unique<IdleWorkload>();
  }
  return std::make_unique<LookbusyWorkload>();
}

BakeoffCell RunPolicy(const std::string& policy) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat);
  config.dcat.policy = policy;
  Host host(config);
  TenantId id = 1;
  for (const auto& [name, baseline] : kMix) {
    host.AddVm(VmConfig{.id = id, .name = name, .vcpus = 2, .baseline_ways = baseline},
               MakeMixWorkload(name, /*seed=*/id * 17));
    ++id;
  }
  for (int t = 0; t < kIntervals; ++t) {
    host.Step();
  }

  BakeoffCell cell;
  const ControllerSnapshot snap = host.dcat()->Snapshot();
  double norm_sum = 0.0;
  size_t norm_count = 0;
  std::vector<uint8_t> cos_seen;
  for (const TenantSnapshot& tenant : snap.tenants) {
    cell.final_ways[tenant.name] = tenant.ways;
    if (tenant.norm_ipc > 0.0 && std::isfinite(tenant.norm_ipc)) {
      norm_sum += tenant.norm_ipc;
      ++norm_count;
    }
    if (std::find(cos_seen.begin(), cos_seen.end(), tenant.cos) == cos_seen.end()) {
      cos_seen.push_back(tenant.cos);
    }
  }
  cell.mean_norm_ipc = norm_count > 0 ? norm_sum / static_cast<double>(norm_count) : 0.0;
  cell.pool_ways = snap.pool_ways;
  cell.distinct_cos = cos_seen.size();
  MetricsRegistry& metrics = host.dcat()->metrics();
  cell.reclaims = metrics.counter("controller.reclaims").value();
  for (const char* reason : {"reclaim", "donate", "grow-from-pool", "shrink-for-reclaim",
                             "rebalance", "degraded-baseline"}) {
    cell.allocations += metrics.counter(std::string("controller.alloc.") + reason).value();
  }
  return cell;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) {
  using namespace dcat;
  PrintHeader("Policy bake-off: one mix, every registered policy", "§3.5 (policy comparison)");
  const std::vector<std::string> policies =
      ParsePoliciesFlag(argc, argv, PolicyRegistry::Global().Names());
  std::printf("mix: 8 VMs on the Xeon E5 socket, %d intervals per policy\n\n", kIntervals);

  std::vector<std::function<BakeoffCell()>> cells;
  for (const std::string& policy : policies) {
    cells.push_back([policy] { return RunPolicy(policy); });
  }
  const std::vector<BakeoffCell> results = RunBenchCells<BakeoffCell>(cells);

  TextTable table = MakePolicyComparisonTable("metric", policies);
  for (const auto& [name, baseline] : kMix) {
    std::vector<std::string> row{std::string("ways: ") + name};
    for (const BakeoffCell& cell : results) {
      row.push_back(TextTable::FmtInt(cell.final_ways.at(name)));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> ipc_row{"mean norm IPC"};
  std::vector<std::string> pool_row{"pool ways"};
  std::vector<std::string> cos_row{"distinct COSes"};
  std::vector<std::string> reclaim_row{"reclaims"};
  std::vector<std::string> alloc_row{"allocation moves"};
  for (const BakeoffCell& cell : results) {
    ipc_row.push_back(TextTable::Fmt(cell.mean_norm_ipc));
    pool_row.push_back(TextTable::FmtInt(cell.pool_ways));
    cos_row.push_back(TextTable::FmtInt(static_cast<long long>(cell.distinct_cos)));
    reclaim_row.push_back(TextTable::FmtInt(static_cast<long long>(cell.reclaims)));
    alloc_row.push_back(TextTable::FmtInt(static_cast<long long>(cell.allocations)));
  }
  table.AddRow(std::move(ipc_row));
  table.AddRow(std::move(pool_row));
  table.AddRow(std::move(cos_row));
  table.AddRow(std::move(reclaim_row));
  table.AddRow(std::move(alloc_row));
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: the paper's two policies use one COS per tenant; lfoc-cluster\n"
      "packs donors/streamers onto shared COSes, freeing classes for more\n"
      "tenants at equal isolation for the cache-sensitive ones.\n");
  return 0;
}
