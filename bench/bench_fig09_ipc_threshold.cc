// Figure 9: sensitivity to the IPC-improvement threshold.
//
// Two sweeps:
//   1. The paper's setup (MLR-8MB, 2-way baseline). In the simulator this
//      reproduces only weakly: MLR's per-way IPC steps are large (~10-50%)
//      and cache warmup inflates each step further, so the miss-rate
//      threshold — not the IPC threshold — ends up stopping the growth at
//      every setting (see EXPERIMENTS.md).
//   2. A fine-grained workload (the Zipf-tailed search engine, per-way
//      gains of a few percent) where the threshold binds exactly as the
//      paper describes: higher thresholds stop the Receiver earlier.
#include <memory>

#include "bench/harness.h"
#include "src/workloads/search.h"

namespace dcat {
namespace {

uint32_t RunMlr(double ipc_thr) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat, /*cycles_per_interval=*/40e6);
  config.dcat.ipc_improvement_thr = ipc_thr;
  config.dcat.greedy_exploration = false;  // the paper's binary receiver test
  Host host(config);
  host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<MlrWorkload>(8_MiB));
  for (TenantId id = 2; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 2},
               std::make_unique<LookbusyWorkload>());
  }
  host.Run(24);
  return host.dcat()->TenantWays(1);
}

uint32_t RunSearch(double ipc_thr) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat, /*cycles_per_interval=*/40e6);
  config.dcat.ipc_improvement_thr = ipc_thr;
  config.dcat.greedy_exploration = false;  // the paper's binary receiver test
  Host host(config);
  host.AddVm(VmConfig{.id = 1, .name = "search", .vcpus = 2, .baseline_ways = 2},
             std::make_unique<SearchWorkload>());
  for (TenantId id = 2; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 2},
               std::make_unique<LookbusyWorkload>());
  }
  host.Run(24);
  return host.dcat()->TenantWays(1);
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Impact of the IPC-improvement threshold", "Figure 9");
  const std::vector<double> thresholds = {0.03, 0.05, 0.10, 0.20, 0.40};
  std::vector<std::function<uint32_t()>> cells;
  for (double thr : thresholds) {
    cells.push_back([thr] { return RunMlr(thr); });
    cells.push_back([thr] { return RunSearch(thr); });
  }
  const std::vector<uint32_t> ways = RunBenchCells(cells);

  TextTable table({"ipc_improvement_thr", "MLR-8MB ways", "search ways"});
  for (size_t i = 0; i < thresholds.size(); ++i) {
    table.AddRow({TextTable::FmtPercent(thresholds[i], 0), TextTable::FmtInt(ways[2 * i]),
                  TextTable::FmtInt(ways[2 * i + 1])});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: fewer ways as the threshold rises. MLR's coarse\n"
      "per-way steps make it threshold-insensitive in the simulator (the\n"
      "miss-rate threshold stops it instead); the fine-grained search\n"
      "workload shows the paper's monotone curve.\n");
  return 0;
}
