// Simulator throughput tracker: simulated accesses per second.
//
// The figure/table benches and the fuzzer are all bounded by how fast the
// LLC model executes accesses, so this bench pins that number and emits it
// as BENCH_sim.json — CI uploads the file per commit and the perf
// trajectory of the hot path stays visible over time.
//
// Six measurements:
//   * llc_hit         — tag-compare fast path (resident working set)
//   * llc_miss_evict  — fill path: victim selection + eviction accounting
//   * hierarchy_walk  — full L1 -> L2 -> LLC -> DRAM walk through a Core
//   * parallel_walk   — hierarchy walks on one Socket per worker, measuring
//                       the scenario engine's scaling (speedup vs 1 thread)
//   * scenario line / scenario hybrid — the full host+controller loop on a
//                       steady-phase tenant mix at line vs hybrid fidelity;
//                       `hybrid_speedup` and the hybrid row's analytic
//                       coverage quantify the fast path's payoff end to end
//
//   bench_sim_throughput [--quick] [--jobs=N] [--out=FILE]
//
// By default the JSON lands in the repository root (DCAT_BENCH_OUTPUT_DIR,
// baked in at configure time) regardless of the working directory, so CI
// and local runs agree on where to find it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/cluster/host.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"
#include "src/telemetry/json.h"
#include "src/workloads/factory.h"

namespace dcat {
namespace {

struct Measurement {
  std::string name;
  std::string mode = "line";  // simulation fidelity ("line" for micro rows)
  uint64_t accesses = 0;
  double seconds = 0.0;
  double analytic_coverage_pct = 0.0;  // scenario rows only
  double per_second() const { return seconds > 0 ? accesses / seconds : 0.0; }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Measurement MeasureLlcHit(uint64_t accesses) {
  SetAssociativeCache cache(XeonE5LlcGeometry(), ReplacementKind::kNru);
  const uint32_t mask = cache.FullWayMask();
  // Resident working set: 8 lines in each of the first 4K sets.
  const uint64_t sets = 4096;
  const uint64_t lines_per_set = 8;
  const uint64_t num_sets = cache.geometry().num_sets;
  std::vector<uint64_t> addrs;
  addrs.reserve(sets * lines_per_set);
  for (uint64_t t = 0; t < lines_per_set; ++t) {
    for (uint64_t s = 0; s < sets; ++s) {
      addrs.push_back((t * num_sets + s) * 64);
    }
  }
  for (uint64_t a : addrs) {
    cache.Access(a, mask);
  }
  const double start = Now();
  uint64_t i = 0;
  for (uint64_t n = 0; n < accesses; ++n) {
    cache.Access(addrs[i], mask);
    if (++i == addrs.size()) {
      i = 0;
    }
  }
  return {"llc_hit", "line", accesses, Now() - start};
}

Measurement MeasureLlcMissEvict(uint64_t accesses) {
  SetAssociativeCache cache(XeonE5LlcGeometry(), ReplacementKind::kNru);
  const uint64_t num_sets = cache.geometry().num_sets;
  const double start = Now();
  uint64_t tag = 0;
  for (uint64_t n = 0; n < accesses; ++n) {
    // Same set every time, single allowed way: every access fills/evicts.
    cache.Access((tag++ * num_sets) * 64, 0b1);
  }
  return {"llc_miss_evict", "line", accesses, Now() - start};
}

uint64_t WalkOnce(Socket& socket, uint64_t accesses, uint64_t seed) {
  PageTable pt(PagePolicy::kRandom4K, 1ull << 32, /*seed=*/1);
  ExecutionContext ctx(&socket.core(0), &pt);
  Rng rng(seed);
  for (uint64_t n = 0; n < accesses; ++n) {
    ctx.Read(rng.Below(8ull << 20));
  }
  return accesses;
}

Measurement MeasureHierarchyWalk(uint64_t accesses) {
  Socket socket(SocketConfig::XeonE5());
  const double start = Now();
  WalkOnce(socket, accesses, /*seed=*/1);
  return {"hierarchy_walk", "line", accesses, Now() - start};
}

// Scenario-engine scaling: `jobs` independent sockets walked concurrently,
// exactly the shape of a parallel bench/fuzz run.
Measurement MeasureParallelWalk(uint64_t accesses_per_shard, size_t jobs) {
  ThreadPool pool(jobs);
  const double start = Now();
  pool.ParallelFor(0, jobs, [&](size_t i) {
    Socket socket(SocketConfig::XeonE5());
    WalkOnce(socket, accesses_per_shard, /*seed=*/i + 1);
  });
  const double elapsed = Now() - start;
  return {"parallel_walk", "line", accesses_per_shard * jobs, elapsed};
}

// End-to-end control-loop throughput: a steady-phase tenant mix on a dCat
// host, once at line fidelity and once hybrid. Both runs execute the same
// simulated program (the hybrid run injects the modeled counters), so
// accesses/sec compares wall time for identical work — the ratio is the
// fast path's real payoff including controller and bookkeeping overheads.
Measurement MeasureScenario(FidelityMode mode, uint32_t intervals) {
  HostConfig config;
  config.socket = SocketConfig::XeonE5();
  config.mode = ManagerMode::kDcat;
  // Short intervals keep the line-level reference run affordable; the
  // controller consumes rates only, so the dilation changes no decision.
  config.cycles_per_interval = 1e6;
  config.fidelity.mode = mode;
  // The mix below is stationary by construction, so let the rate model live
  // until a controller decision invalidates it rather than resampling on a
  // timer: the bench measures the fast path's ceiling, not its entry cost.
  config.fidelity.resample_every = 0;
  Host host(config);

  auto add = [&](TenantId id, const char* name, const char* spec, uint32_t ways) {
    VmConfig vm;
    vm.id = id;
    vm.name = name;
    vm.vcpus = 2;
    vm.baseline_ways = ways;
    host.AddVm(vm, MakeWorkload(spec, /*seed=*/id * 101 + 7));
  };
  // One cache-resident tenant plus compute-bound neighbors: the controller
  // settles within ~10 intervals and then holds the allocation. The MLR
  // working set must fit its allocation at this interval length — a set
  // that misses to DRAM costs more than one scheduling chunk per interval,
  // starves on alternate ticks, and ping-pongs the controller forever
  // (a legitimate line-level behavior, but not a steady-phase bench).
  add(1, "mlr", "mlr:1M", 3);
  add(2, "busy1", "lookbusy", 2);
  add(3, "busy2", "lookbusy", 2);

  const double start = Now();
  host.Run(intervals);

  Measurement m;
  m.mode = mode == FidelityMode::kLine ? "line" : FidelityModeName(mode);
  m.name = std::string("scenario_") + m.mode;
  m.seconds = Now() - start;
  for (uint16_t c = 0; c < host.socket().num_cores(); ++c) {
    m.accesses += host.socket().core(c).counters().l1_references;
  }
  if (host.fidelity() != nullptr) {
    m.analytic_coverage_pct = host.fidelity()->coverage() * 100.0;
  }
  return m;
}

int Main(int argc, char** argv) {
  bool quick = false;
  size_t jobs = ThreadPool::DefaultJobs();
  // Default to the repository root (baked in at configure time) so the
  // artifact lands in one predictable place no matter the working dir.
#ifdef DCAT_BENCH_OUTPUT_DIR
  std::string out_path = std::string(DCAT_BENCH_OUTPUT_DIR) + "/BENCH_sim.json";
#else
  std::string out_path = "BENCH_sim.json";
#endif
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      uint64_t v = 0;
      if (!ParseUint64(arg.c_str() + 7, &v)) {
        std::fprintf(stderr, "--jobs: expected an integer, got '%s'\n", arg.c_str() + 7);
        return 1;
      }
      jobs = v > 0 ? static_cast<size_t>(v) : ThreadPool::DefaultJobs();
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("bench_sim_throughput [--quick] [--jobs=N] [--out=FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 1;
    }
  }

  const uint64_t scale = quick ? 1 : 8;
  std::vector<Measurement> results;
  results.push_back(MeasureLlcHit(4'000'000 * scale));
  results.push_back(MeasureLlcMissEvict(2'000'000 * scale));
  results.push_back(MeasureHierarchyWalk(1'000'000 * scale));
  const Measurement serial_walk = results.back();
  results.push_back(MeasureParallelWalk(1'000'000 * scale, jobs));
  const Measurement parallel_walk = results.back();
  const double speedup = serial_walk.per_second() > 0
                             ? parallel_walk.per_second() / serial_walk.per_second()
                             : 0.0;
  // Long enough that the ~10-interval line warmup amortizes below 5%.
  const uint32_t scenario_intervals = quick ? 300 : 600;
  results.push_back(MeasureScenario(FidelityMode::kLine, scenario_intervals));
  const Measurement scenario_line = results.back();
  results.push_back(MeasureScenario(FidelityMode::kHybrid, scenario_intervals));
  const Measurement scenario_hybrid = results.back();
  const double hybrid_speedup =
      scenario_line.per_second() > 0
          ? scenario_hybrid.per_second() / scenario_line.per_second()
          : 0.0;

  std::printf("%-16s %8s %14s %10s %16s %10s\n", "measurement", "mode", "accesses",
              "seconds", "accesses/sec", "coverage");
  for (const Measurement& m : results) {
    std::printf("%-16s %8s %14llu %10.3f %16.0f %9.1f%%\n", m.name.c_str(),
                m.mode.c_str(), static_cast<unsigned long long>(m.accesses), m.seconds,
                m.per_second(), m.analytic_coverage_pct);
  }
  std::printf("parallel_walk: %zu jobs, %.2fx vs single-thread hierarchy_walk\n", jobs,
              speedup);
  std::printf("scenario: %.2fx hybrid vs line (%.1f%% analytic coverage)\n",
              hybrid_speedup, scenario_hybrid.analytic_coverage_pct);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("sim_throughput");
  json.Key("quick").Value(quick);
  json.Key("jobs").Value(static_cast<uint64_t>(jobs));
  json.Key("parallel_speedup").Value(speedup);
  json.Key("scenario_intervals").Value(static_cast<uint64_t>(scenario_intervals));
  json.Key("hybrid_speedup").Value(hybrid_speedup);
  json.Key("results").BeginArray();
  for (const Measurement& m : results) {
    json.BeginObject();
    json.Key("name").Value(m.name);
    json.Key("mode").Value(m.mode);
    json.Key("accesses").Value(m.accesses);
    json.Key("seconds").Value(m.seconds);
    json.Key("accesses_per_sec").Value(m.per_second());
    json.Key("analytic_coverage_pct").Value(m.analytic_coverage_pct);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }
  out << json.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) { return dcat::Main(argc, argv); }
