// Simulator throughput tracker: simulated accesses per second.
//
// The figure/table benches and the fuzzer are all bounded by how fast the
// LLC model executes accesses, so this bench pins that number and emits it
// as BENCH_sim.json — CI uploads the file per commit and the perf
// trajectory of the hot path stays visible over time.
//
// Four measurements:
//   * llc_hit         — tag-compare fast path (resident working set)
//   * llc_miss_evict  — fill path: victim selection + eviction accounting
//   * hierarchy_walk  — full L1 -> L2 -> LLC -> DRAM walk through a Core
//   * parallel_walk   — hierarchy walks on one Socket per worker, measuring
//                       the scenario engine's scaling (speedup vs 1 thread)
//
//   bench_sim_throughput [--quick] [--jobs=N] [--out=FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"
#include "src/telemetry/json.h"

namespace dcat {
namespace {

struct Measurement {
  std::string name;
  uint64_t accesses = 0;
  double seconds = 0.0;
  double per_second() const { return seconds > 0 ? accesses / seconds : 0.0; }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Measurement MeasureLlcHit(uint64_t accesses) {
  SetAssociativeCache cache(XeonE5LlcGeometry(), ReplacementKind::kNru);
  const uint32_t mask = cache.FullWayMask();
  // Resident working set: 8 lines in each of the first 4K sets.
  const uint64_t sets = 4096;
  const uint64_t lines_per_set = 8;
  const uint64_t num_sets = cache.geometry().num_sets;
  std::vector<uint64_t> addrs;
  addrs.reserve(sets * lines_per_set);
  for (uint64_t t = 0; t < lines_per_set; ++t) {
    for (uint64_t s = 0; s < sets; ++s) {
      addrs.push_back((t * num_sets + s) * 64);
    }
  }
  for (uint64_t a : addrs) {
    cache.Access(a, mask);
  }
  const double start = Now();
  uint64_t i = 0;
  for (uint64_t n = 0; n < accesses; ++n) {
    cache.Access(addrs[i], mask);
    if (++i == addrs.size()) {
      i = 0;
    }
  }
  return {"llc_hit", accesses, Now() - start};
}

Measurement MeasureLlcMissEvict(uint64_t accesses) {
  SetAssociativeCache cache(XeonE5LlcGeometry(), ReplacementKind::kNru);
  const uint64_t num_sets = cache.geometry().num_sets;
  const double start = Now();
  uint64_t tag = 0;
  for (uint64_t n = 0; n < accesses; ++n) {
    // Same set every time, single allowed way: every access fills/evicts.
    cache.Access((tag++ * num_sets) * 64, 0b1);
  }
  return {"llc_miss_evict", accesses, Now() - start};
}

uint64_t WalkOnce(Socket& socket, uint64_t accesses, uint64_t seed) {
  PageTable pt(PagePolicy::kRandom4K, 1ull << 32, /*seed=*/1);
  ExecutionContext ctx(&socket.core(0), &pt);
  Rng rng(seed);
  for (uint64_t n = 0; n < accesses; ++n) {
    ctx.Read(rng.Below(8ull << 20));
  }
  return accesses;
}

Measurement MeasureHierarchyWalk(uint64_t accesses) {
  Socket socket(SocketConfig::XeonE5());
  const double start = Now();
  WalkOnce(socket, accesses, /*seed=*/1);
  return {"hierarchy_walk", accesses, Now() - start};
}

// Scenario-engine scaling: `jobs` independent sockets walked concurrently,
// exactly the shape of a parallel bench/fuzz run.
Measurement MeasureParallelWalk(uint64_t accesses_per_shard, size_t jobs) {
  ThreadPool pool(jobs);
  const double start = Now();
  pool.ParallelFor(0, jobs, [&](size_t i) {
    Socket socket(SocketConfig::XeonE5());
    WalkOnce(socket, accesses_per_shard, /*seed=*/i + 1);
  });
  const double elapsed = Now() - start;
  return {"parallel_walk", accesses_per_shard * jobs, elapsed};
}

int Main(int argc, char** argv) {
  bool quick = false;
  size_t jobs = ThreadPool::DefaultJobs();
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      uint64_t v = 0;
      if (!ParseUint64(arg.c_str() + 7, &v)) {
        std::fprintf(stderr, "--jobs: expected an integer, got '%s'\n", arg.c_str() + 7);
        return 1;
      }
      jobs = v > 0 ? static_cast<size_t>(v) : ThreadPool::DefaultJobs();
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("bench_sim_throughput [--quick] [--jobs=N] [--out=FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 1;
    }
  }

  const uint64_t scale = quick ? 1 : 8;
  std::vector<Measurement> results;
  results.push_back(MeasureLlcHit(4'000'000 * scale));
  results.push_back(MeasureLlcMissEvict(2'000'000 * scale));
  results.push_back(MeasureHierarchyWalk(1'000'000 * scale));
  const Measurement serial_walk = results.back();
  results.push_back(MeasureParallelWalk(1'000'000 * scale, jobs));
  const Measurement& parallel_walk = results.back();
  const double speedup = serial_walk.per_second() > 0
                             ? parallel_walk.per_second() / serial_walk.per_second()
                             : 0.0;

  std::printf("%-16s %14s %10s %16s\n", "measurement", "accesses", "seconds",
              "accesses/sec");
  for (const Measurement& m : results) {
    std::printf("%-16s %14llu %10.3f %16.0f\n", m.name.c_str(),
                static_cast<unsigned long long>(m.accesses), m.seconds, m.per_second());
  }
  std::printf("parallel_walk: %zu jobs, %.2fx vs single-thread hierarchy_walk\n", jobs,
              speedup);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("sim_throughput");
  json.Key("quick").Value(quick);
  json.Key("jobs").Value(static_cast<uint64_t>(jobs));
  json.Key("parallel_speedup").Value(speedup);
  json.Key("results").BeginArray();
  for (const Measurement& m : results) {
    json.BeginObject();
    json.Key("name").Value(m.name);
    json.Key("accesses").Value(m.accesses);
    json.Key("seconds").Value(m.seconds);
    json.Key("accesses_per_sec").Value(m.per_second());
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }
  out << json.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) { return dcat::Main(argc, argv); }
