// Simulator throughput tracker: simulated accesses per second.
//
// The figure/table benches and the fuzzer are all bounded by how fast the
// LLC model executes accesses, so this bench pins that number and emits it
// as BENCH_sim.json — CI uploads the file per commit and the perf
// trajectory of the hot path stays visible over time.
//
// Six measurements:
//   * llc_hit         — tag-compare fast path (resident working set)
//   * llc_miss_evict  — fill path: victim selection + eviction accounting
//   * hierarchy_walk  — full L1 -> L2 -> LLC -> DRAM walk through a Core
//   * parallel_walk   — hierarchy walks on one Socket per worker, measuring
//                       the scenario engine's scaling (speedup vs 1 thread)
//   * scenario line / scenario hybrid — the full host+controller loop on a
//                       steady-phase tenant mix at line vs hybrid fidelity;
//                       `hybrid_speedup` and the hybrid row's analytic
//                       coverage quantify the fast path's payoff end to end
//
//   bench_sim_throughput [--quick] [--jobs=N] [--out=FILE]
//
// By default the JSON lands in the repository root (DCAT_BENCH_OUTPUT_DIR,
// baked in at configure time) regardless of the working directory, so CI
// and local runs agree on where to find it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/host.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"
#include "src/telemetry/json.h"
#include "src/workloads/factory.h"

namespace dcat {
namespace {

struct Measurement {
  std::string name;
  std::string mode = "line";  // simulation fidelity ("line" for micro rows)
  uint64_t accesses = 0;
  double seconds = 0.0;
  double analytic_coverage_pct = 0.0;  // scenario rows only
  double per_second() const { return seconds > 0 ? accesses / seconds : 0.0; }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Measurement MeasureLlcHit(uint64_t accesses) {
  SetAssociativeCache cache(XeonE5LlcGeometry(), ReplacementKind::kNru);
  const uint32_t mask = cache.FullWayMask();
  // Resident working set: 8 lines in each of the first 4K sets.
  const uint64_t sets = 4096;
  const uint64_t lines_per_set = 8;
  const uint64_t num_sets = cache.geometry().num_sets;
  std::vector<uint64_t> addrs;
  addrs.reserve(sets * lines_per_set);
  for (uint64_t t = 0; t < lines_per_set; ++t) {
    for (uint64_t s = 0; s < sets; ++s) {
      addrs.push_back((t * num_sets + s) * 64);
    }
  }
  for (uint64_t a : addrs) {
    cache.Access(a, mask);
  }
  const double start = Now();
  uint64_t i = 0;
  for (uint64_t n = 0; n < accesses; ++n) {
    cache.Access(addrs[i], mask);
    if (++i == addrs.size()) {
      i = 0;
    }
  }
  return {"llc_hit", "line", accesses, Now() - start};
}

Measurement MeasureLlcMissEvict(uint64_t accesses) {
  SetAssociativeCache cache(XeonE5LlcGeometry(), ReplacementKind::kNru);
  const uint64_t num_sets = cache.geometry().num_sets;
  const double start = Now();
  uint64_t tag = 0;
  for (uint64_t n = 0; n < accesses; ++n) {
    // Same set every time, single allowed way: every access fills/evicts.
    cache.Access((tag++ * num_sets) * 64, 0b1);
  }
  return {"llc_miss_evict", "line", accesses, Now() - start};
}

uint64_t WalkOnce(Socket& socket, uint64_t accesses, uint64_t seed) {
  PageTable pt(PagePolicy::kRandom4K, 1ull << 32, /*seed=*/1);
  ExecutionContext ctx(&socket.core(0), &pt);
  Rng rng(seed);
  for (uint64_t n = 0; n < accesses; ++n) {
    ctx.Read(rng.Below(8ull << 20));
  }
  return accesses;
}

// Both walk rows split a shard's accesses into this many sub-walks. The
// serial row runs them back to back and the parallel row dispatches each
// shard's sub-walks as one aligned pool chunk, so a 1-job parallel run
// executes byte-for-byte the same work as the serial row and the speedup
// ratio isolates pool overhead from simulation throughput.
constexpr size_t kSubWalksPerShard = 8;

uint64_t WalkShard(Socket& socket, uint64_t per_sub, uint64_t seed_base) {
  for (size_t k = 0; k < kSubWalksPerShard; ++k) {
    WalkOnce(socket, per_sub, seed_base + k);
  }
  return per_sub * kSubWalksPerShard;
}

// The hierarchy_walk (serial) and parallel_walk rows, measured as one
// paired experiment. All sockets and the pool are built before any clock
// starts — Socket construction allocates every cache level, and timing it
// only on the parallel side is what sank parallel_speedup below 1 — and
// the serial and parallel repeats alternate so both rows sample the same
// scheduler-noise windows before best-of-`repeats` picks the quiet one.
// Shard 0's seeds match the serial row's, so a 1-job parallel run executes
// exactly the serial work plus pool dispatch.
//
// Returns the parallel speedup as the median over repeats of the paired
// per-repeat throughput ratio — each repeat's serial and parallel phases
// run back to back, so a noise burst lands on one pair and the median
// discards it; best-of times from uncorrelated windows don't.
double MeasureWalkScaling(uint64_t accesses_per_shard, size_t jobs, int repeats,
                          Measurement* serial, Measurement* parallel) {
  Socket serial_socket(SocketConfig::XeonE5());
  ThreadPool pool(jobs);
  std::vector<std::unique_ptr<Socket>> sockets;
  sockets.reserve(jobs);
  for (size_t i = 0; i < jobs; ++i) {
    sockets.push_back(std::make_unique<Socket>(SocketConfig::XeonE5()));
  }
  const uint64_t per_sub = accesses_per_shard / kSubWalksPerShard;
  *serial = {"hierarchy_walk", "line", per_sub * kSubWalksPerShard, 0.0};
  *parallel = {"parallel_walk", "line", per_sub * kSubWalksPerShard * jobs, 0.0};
  std::vector<double> speedups;
  speedups.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    double start = Now();
    WalkShard(serial_socket, per_sub, /*seed_base=*/1);
    const double serial_elapsed = Now() - start;
    if (r == 0 || serial_elapsed < serial->seconds) {
      serial->seconds = serial_elapsed;
    }
    start = Now();
    // Chunks are aligned to shard boundaries (begin = 0, grain =
    // kSubWalksPerShard), so indices [s*grain, (s+1)*grain) — one shard's
    // sub-walks — always land in one task and never race on a socket.
    pool.ParallelForChunked(0, jobs * kSubWalksPerShard, kSubWalksPerShard, [&](size_t i) {
      const size_t shard = i / kSubWalksPerShard;
      const size_t sub = i % kSubWalksPerShard;
      WalkOnce(*sockets[shard], per_sub,
               /*seed=*/shard * kSubWalksPerShard + sub + 1);
    });
    const double parallel_elapsed = Now() - start;
    if (r == 0 || parallel_elapsed < parallel->seconds) {
      parallel->seconds = parallel_elapsed;
    }
    if (parallel_elapsed > 0) {
      // Parallel walks jobs× the accesses, so the throughput ratio carries
      // the jobs factor.
      speedups.push_back(static_cast<double>(jobs) * serial_elapsed / parallel_elapsed);
    }
  }
  if (speedups.empty()) {
    return 0.0;
  }
  std::sort(speedups.begin(), speedups.end());
  return speedups[speedups.size() / 2];
}

// End-to-end control-loop throughput: a steady-phase tenant mix on a dCat
// host, once at line fidelity and once hybrid. Both runs execute the same
// simulated program (the hybrid run injects the modeled counters), so
// accesses/sec compares wall time for identical work — the ratio is the
// fast path's real payoff including controller and bookkeeping overheads.
Measurement MeasureScenario(FidelityMode mode, uint32_t intervals) {
  HostConfig config;
  config.socket = SocketConfig::XeonE5();
  config.mode = ManagerMode::kDcat;
  // Short intervals keep the line-level reference run affordable; the
  // controller consumes rates only, so the dilation changes no decision.
  config.cycles_per_interval = 1e6;
  config.fidelity.mode = mode;
  // The mix below is stationary by construction, so let the rate model live
  // until a controller decision invalidates it rather than resampling on a
  // timer: the bench measures the fast path's ceiling, not its entry cost.
  config.fidelity.resample_every = 0;
  Host host(config);

  auto add = [&](TenantId id, const char* name, const char* spec, uint32_t ways) {
    VmConfig vm;
    vm.id = id;
    vm.name = name;
    vm.vcpus = 2;
    vm.baseline_ways = ways;
    host.AddVm(vm, MakeWorkload(spec, /*seed=*/id * 101 + 7));
  };
  // One cache-resident tenant plus compute-bound neighbors: the controller
  // settles within ~10 intervals and then holds the allocation. The MLR
  // working set must fit its allocation at this interval length — a set
  // that misses to DRAM costs more than one scheduling chunk per interval,
  // starves on alternate ticks, and ping-pongs the controller forever
  // (a legitimate line-level behavior, but not a steady-phase bench).
  add(1, "mlr", "mlr:1M", 3);
  add(2, "busy1", "lookbusy", 2);
  add(3, "busy2", "lookbusy", 2);

  const double start = Now();
  host.Run(intervals);

  Measurement m;
  m.mode = mode == FidelityMode::kLine ? "line" : FidelityModeName(mode);
  m.name = std::string("scenario_") + m.mode;
  m.seconds = Now() - start;
  for (uint16_t c = 0; c < host.socket().num_cores(); ++c) {
    m.accesses += host.socket().core(c).counters().l1_references;
  }
  if (host.fidelity() != nullptr) {
    m.analytic_coverage_pct = host.fidelity()->coverage() * 100.0;
  }
  return m;
}

int Main(int argc, char** argv) {
  bool quick = false;
  size_t jobs = ThreadPool::DefaultJobs();
  // Default to the repository root (baked in at configure time) so the
  // artifact lands in one predictable place no matter the working dir.
#ifdef DCAT_BENCH_OUTPUT_DIR
  std::string out_path = std::string(DCAT_BENCH_OUTPUT_DIR) + "/BENCH_sim.json";
#else
  std::string out_path = "BENCH_sim.json";
#endif
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      uint64_t v = 0;
      if (!ParseUint64(arg.c_str() + 7, &v)) {
        std::fprintf(stderr, "--jobs: expected an integer, got '%s'\n", arg.c_str() + 7);
        return 1;
      }
      jobs = v > 0 ? static_cast<size_t>(v) : ThreadPool::DefaultJobs();
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("bench_sim_throughput [--quick] [--jobs=N] [--out=FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 1;
    }
  }

  const uint64_t scale = quick ? 1 : 8;
  const int walk_repeats = quick ? 5 : 4;
  // The parallel row never drops below min(4, nproc) workers: quick CI runs
  // used to inherit jobs=1 and record a meaningless parallel_speedup into
  // the default artifact. Both job counts land in the JSON.
  const size_t parallel_jobs =
      std::max(jobs, std::min<size_t>(4, ThreadPool::DefaultJobs()));
  std::vector<Measurement> results;
  results.push_back(MeasureLlcHit(4'000'000 * scale));
  results.push_back(MeasureLlcMissEvict(2'000'000 * scale));
  Measurement serial_walk;
  Measurement parallel_walk;
  const double speedup = MeasureWalkScaling(1'000'000 * scale, parallel_jobs,
                                            walk_repeats, &serial_walk, &parallel_walk);
  results.push_back(serial_walk);
  results.push_back(parallel_walk);
  // Long enough that the ~10-interval line warmup amortizes below 5%.
  const uint32_t scenario_intervals = quick ? 300 : 600;
  results.push_back(MeasureScenario(FidelityMode::kLine, scenario_intervals));
  const Measurement scenario_line = results.back();
  results.push_back(MeasureScenario(FidelityMode::kHybrid, scenario_intervals));
  const Measurement scenario_hybrid = results.back();
  const double hybrid_speedup =
      scenario_line.per_second() > 0
          ? scenario_hybrid.per_second() / scenario_line.per_second()
          : 0.0;

  std::printf("%-16s %8s %14s %10s %16s %10s\n", "measurement", "mode", "accesses",
              "seconds", "accesses/sec", "coverage");
  for (const Measurement& m : results) {
    std::printf("%-16s %8s %14llu %10.3f %16.0f %9.1f%%\n", m.name.c_str(),
                m.mode.c_str(), static_cast<unsigned long long>(m.accesses), m.seconds,
                m.per_second(), m.analytic_coverage_pct);
  }
  std::printf("parallel_walk: %zu jobs, %.2fx vs single-thread hierarchy_walk\n",
              parallel_jobs, speedup);
  if (speedup < 1.0) {
    std::printf(
        "WARNING: parallel_speedup %.2f < 1.0 — the pooled walk is slower than "
        "serial; the scenario engine's parallelism is regressing\n",
        speedup);
  }
  std::printf("scenario: %.2fx hybrid vs line (%.1f%% analytic coverage)\n",
              hybrid_speedup, scenario_hybrid.analytic_coverage_pct);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("sim_throughput");
  json.Key("quick").Value(quick);
  json.Key("jobs").Value(static_cast<uint64_t>(jobs));
  json.Key("parallel_jobs").Value(static_cast<uint64_t>(parallel_jobs));
  json.Key("parallel_speedup").Value(speedup);
  json.Key("scenario_intervals").Value(static_cast<uint64_t>(scenario_intervals));
  json.Key("hybrid_speedup").Value(hybrid_speedup);
  json.Key("results").BeginArray();
  for (const Measurement& m : results) {
    json.BeginObject();
    json.Key("name").Value(m.name);
    json.Key("mode").Value(m.mode);
    json.Key("accesses").Value(m.accesses);
    json.Key("seconds").Value(m.seconds);
    json.Key("accesses_per_sec").Value(m.per_second());
    json.Key("analytic_coverage_pct").Value(m.analytic_coverage_pct);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }
  out << json.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) { return dcat::Main(argc, argv); }
