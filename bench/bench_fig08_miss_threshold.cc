// Figure 8: sensitivity to the LLC miss-rate threshold.
//
// MLR-8MB in a VM with a 2-way baseline, 5 lookbusy neighbor VMs. Sweeping
// llc_miss_rate_thr changes how aggressively dCat predicts the cache
// requirement: smaller thresholds allocate more ways and achieve lower
// access latency, at higher pressure on the free pool.
#include <memory>

#include "bench/harness.h"

namespace dcat {
namespace {

struct Outcome {
  uint32_t ways = 0;
  double latency_ns = 0.0;
};

Outcome RunWithThreshold(double miss_thr) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat);
  config.dcat.llc_miss_rate_thr = miss_thr;
  Host host(config);
  Vm& mlr_vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 2},
                          std::make_unique<MlrWorkload>(8_MiB));
  for (TenantId id = 2; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 2},
               std::make_unique<LookbusyWorkload>());
  }
  host.Run(18);  // paper: read allocation after 30 s of settling
  auto& mlr = static_cast<MlrWorkload&>(mlr_vm.workload());
  mlr.ResetMetrics();
  host.Run(4);
  return {host.dcat()->TenantWays(1), CyclesToNs(mlr.AvgAccessLatencyCycles())};
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Impact of the cache-miss threshold (MLR-8MB, 2-way baseline)", "Figure 8");
  const std::vector<double> thresholds = {0.01, 0.02, 0.03, 0.05, 0.10, 0.20};
  std::vector<std::function<Outcome()>> cells;
  for (double thr : thresholds) {
    cells.push_back([thr] { return RunWithThreshold(thr); });
  }
  const std::vector<Outcome> outcomes = RunBenchCells(cells);

  TextTable table({"llc_miss_rate_thr", "assigned ways", "avg access latency (ns)"});
  for (size_t i = 0; i < thresholds.size(); ++i) {
    table.AddRow({TextTable::FmtPercent(thresholds[i], 0), TextTable::FmtInt(outcomes[i].ways),
                  TextTable::Fmt(outcomes[i].latency_ns, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: smaller thresholds hold more ways and yield lower\n"
      "latency; large thresholds stop the growth early (the paper picks 3%%).\n");
  return 0;
}
