// Figure 10: cache-way allocation and normalized IPC over time for MLR.
//
// 6 VMs with a 3-way (6.75 MB) baseline each; one runs MLR with a working
// set from 4 to 16 MB, the other five run lookbusy. dCat should park each
// lookbusy VM at 1 way and grow the MLR VM one way per interval until its
// IPC stops improving — ending higher for larger working sets.
#include <map>
#include <memory>

#include "bench/harness.h"

namespace dcat {
namespace {

void RunCase(uint64_t wss) {
  Host host(BenchHostConfig(ManagerMode::kDcat));
  host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<MlrWorkload>(wss));
  for (TenantId id = 2; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
               std::make_unique<LookbusyWorkload>());
  }
  Recorder recorder;
  double baseline_ipc = 0.0;
  for (int t = 0; t < 16; ++t) {
    const auto stats = host.Step();
    recorder.Record(host.now_seconds(), stats);
    if (t == 0) {
      baseline_ipc = stats[0].sample.ipc();  // first interval runs at baseline ways
    }
  }
  std::printf("--- MLR working set %llu MB ---\n", static_cast<unsigned long long>(wss / 1_MiB));
  std::printf("%s", recorder.TimelineTable({{1, "mlr"}}, {{1, baseline_ipc}}).c_str());
  std::printf("final: %u ways, lookbusy VMs at %u way each\n\n", host.dcat()->TenantWays(1),
              host.dcat()->TenantWays(2));
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Cache-way allocation and normalized IPC for MLR", "Figure 10");
  for (uint64_t wss : {4_MiB, 8_MiB, 12_MiB, 16_MiB}) {
    RunCase(wss);
  }
  std::printf(
      "Expected shape: allocation climbs one way per interval from the 3-way\n"
      "baseline and settles higher for larger working sets; normalized IPC\n"
      "rises with each way; lookbusy neighbors are Donors pinned at 1 way.\n");
  return 0;
}
