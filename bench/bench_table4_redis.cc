// Table 4: Redis throughput/latency under shared / static CAT / dCat.
//
// The Redis proxy (1M x 128B records, Zipfian GETs) runs beside two
// MLOAD-60MB noisy neighbors and two lookbusy VMs, each with a 4-way
// baseline. Paper result: dCat +57.6% throughput over shared, +26.6%
// over static partitioning.
#include <memory>

#include "bench/harness.h"
#include "src/workloads/kvstore.h"

namespace dcat {
namespace {

struct AppResult {
  double ops_per_interval = 0.0;
  double avg_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
};

AppResult RunMode(ManagerMode mode) {
  Host host(BenchHostConfig(mode, /*cycles_per_interval=*/15e6));
  Vm& app_vm = host.AddVm(VmConfig{.id = 1, .name = "redis", .vcpus = 2, .baseline_ways = 4},
                          std::make_unique<KvStoreWorkload>());
  host.AddVm(VmConfig{.id = 2, .name = "mload1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, 2));
  host.AddVm(VmConfig{.id = 3, .name = "mload2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, 3));
  host.AddVm(VmConfig{.id = 4, .name = "busy1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());
  host.AddVm(VmConfig{.id = 5, .name = "busy2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());
  host.Run(14);
  auto& app = static_cast<KvStoreWorkload&>(app_vm.workload());
  app.ResetMetrics();
  const int kMeasure = 6;
  host.Run(kMeasure);
  return {static_cast<double>(app.requests_completed()) / kMeasure,
          CyclesToNs(app.AvgRequestLatencyCycles()), CyclesToNs(app.P99RequestLatencyCycles())};
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Redis (1M x 128B, Zipfian GETs) vs 2x MLOAD-60MB neighbors", "Table 4");
  const std::vector<AppResult> results =
      RunBenchCells<AppResult>({[] { return RunMode(ManagerMode::kShared); },
                                [] { return RunMode(ManagerMode::kStaticCat); },
                                [] { return RunMode(ManagerMode::kDcat); }});
  const AppResult& shared = results[0];
  const AppResult& fixed = results[1];
  const AppResult& dynamic = results[2];

  TextTable table({"mode", "GETs/interval", "norm throughput", "avg latency (ns)",
                   "p99 latency (ns)"});
  for (const auto& [label, r] :
       {std::pair<const char*, const AppResult&>{"shared", shared},
        std::pair<const char*, const AppResult&>{"static CAT", fixed},
        std::pair<const char*, const AppResult&>{"dCat", dynamic}}) {
    table.AddRow({label, TextTable::Fmt(r.ops_per_interval, 0),
                  TextTable::Fmt(r.ops_per_interval / shared.ops_per_interval, 2),
                  TextTable::Fmt(r.avg_latency_ns, 0), TextTable::Fmt(r.p99_latency_ns, 0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("dCat vs shared: %+.1f%% throughput; dCat vs static: %+.1f%%\n",
              100.0 * (dynamic.ops_per_interval / shared.ops_per_interval - 1.0),
              100.0 * (dynamic.ops_per_interval / fixed.ops_per_interval - 1.0));
  std::printf("Expected shape (paper): +57.6%% over shared, +26.6%% over static.\n");
  return 0;
}
