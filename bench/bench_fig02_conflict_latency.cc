// Figure 2: impact of CAT-limited cache size (conflict misses).
//
// On both paper machines, MLR runs with a working set exactly equal to a
// 2-way CAT partition. Even though capacity suffices, 4 KiB paging scatters
// lines across sets and the reduced associativity produces conflict misses;
// 2 MiB huge pages recover most of the loss when the working set fits one
// huge page (Xeon-D) but not when it spans several (Xeon-E5's 4.5 MB).
#include <memory>

#include "bench/harness.h"
#include "src/pqos/mask.h"
#include "src/pqos/sim_pqos.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"

namespace dcat {
namespace {

struct MachineCase {
  const char* name;
  SocketConfig socket;
  uint64_t wss;  // = 2 ways of LLC capacity
};

double MeasureLatencyNs(const SocketConfig& socket_config, uint64_t wss, PagePolicy paging,
                        uint32_t ways) {
  Socket socket(socket_config);
  SimPqos pqos(&socket);
  pqos.SetCosMask(1, MakeWayMask(0, ways));
  pqos.AssociateCore(0, 1);
  PageTable pt(paging, 4_GiB, /*seed=*/42);
  ExecutionContext ctx(&socket.core(0), &pt);
  MlrWorkload mlr(wss);
  mlr.Execute(ctx, 0, 6'000'000);  // warm
  mlr.ResetMetrics();
  mlr.Execute(ctx, 0, 6'000'000);
  return CyclesToNs(mlr.AvgAccessLatencyCycles());
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Impact of CAT-limited cache size (conflict misses)", "Figure 2");

  const MachineCase machines[] = {
      {"Xeon-D (2MB WSS, 2/12 ways)", SocketConfig::XeonD(), 2_MiB},
      {"Xeon-E5 (4.5MB WSS, 2/20 ways)", SocketConfig::XeonE5(), 4608_KiB},
  };

  // Three measurement cells per machine, each with its own Socket.
  std::vector<std::function<double()>> cells;
  for (const MachineCase& m : machines) {
    cells.push_back([&m] { return MeasureLatencyNs(m.socket, m.wss, PagePolicy::kRandom4K, 2); });
    cells.push_back([&m] { return MeasureLatencyNs(m.socket, m.wss, PagePolicy::kHuge2M, 2); });
    cells.push_back([&m] {
      return MeasureLatencyNs(m.socket, m.wss, PagePolicy::kRandom4K,
                              m.socket.llc_geometry.num_ways);
    });
  }
  const std::vector<double> ns = RunBenchCells(cells);

  TextTable table({"Machine", "CAT 2-way, 4K pages (ns)", "CAT 2-way, 2M huge (ns)",
                   "Full cache, 4K pages (ns)"});
  for (size_t i = 0; i < std::size(machines); ++i) {
    table.AddRow({machines[i].name, TextTable::Fmt(ns[3 * i], 1),
                  TextTable::Fmt(ns[3 * i + 1], 1), TextTable::Fmt(ns[3 * i + 2], 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: 4K-page latency under a 2-way partition is well above\n"
      "full cache (conflict misses); huge pages close the gap on Xeon-D (one\n"
      "huge page) but only partially on Xeon-E5 (4.5MB spans 3 huge pages).\n");
  return 0;
}
