// Figures 15 and 16: MLR-8MB and MLOAD-60MB coexistence.
//
// Six VMs: the two memory-intensive ones plus four lookbusy (the paper's
// seven 3-way VMs would oversubscribe the 20-way LLC contract). Both climb
// from their baselines; the Unknown MLOAD takes allocation priority until
// it is exposed as Streaming and releases everything, after which MLR
// finishes growing to its preferred size. Figure 16's claim: MLR improves
// massively while MLOAD is not hurt at all.
#include <memory>

#include "bench/harness.h"

int main() {
  using namespace dcat;
  PrintHeader("MLR-8MB and MLOAD-60MB under dCat", "Figures 15 and 16");

  // --- Figure 15: allocation + normalized IPC over time ---
  Host host(BenchHostConfig(ManagerMode::kDcat));
  Vm& mlr_vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 3},
                          std::make_unique<MlrWorkload>(8_MiB));
  Vm& mload_vm = host.AddVm(VmConfig{.id = 2, .name = "mload", .vcpus = 2, .baseline_ways = 3},
                            std::make_unique<MloadWorkload>(60_MiB));
  for (TenantId id = 3; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
               std::make_unique<LookbusyWorkload>());
  }
  Recorder recorder;
  double mlr_base = 0.0;
  double mload_base = 0.0;
  for (int t = 0; t < 20; ++t) {
    const auto stats = host.Step();
    recorder.Record(host.now_seconds(), stats);
    if (t == 0) {
      mlr_base = stats[0].sample.ipc();
      mload_base = stats[1].sample.ipc();
    }
  }
  std::printf("%s\n",
              recorder.TimelineTable({{1, "mlr"}, {2, "mload"}}, {{1, mlr_base}, {2, mload_base}})
                  .c_str());
  std::printf("final: MLR %u ways (%s), MLOAD %u ways (%s)\n\n", host.dcat()->TenantWays(1),
              CategoryName(host.dcat()->Snapshot(1).category), host.dcat()->TenantWays(2),
              CategoryName(host.dcat()->Snapshot(2).category));

  // --- Figure 16: normalized (to full cache) latency for both ---
  auto full_cache_latency = [](auto make_workload) {
    Host solo(BenchHostConfig(ManagerMode::kShared));
    Vm& vm = solo.AddVm(VmConfig{.id = 1, .name = "solo", .vcpus = 2, .baseline_ways = 3},
                        make_workload());
    solo.Run(10);
    auto& w = static_cast<ArrayMicrobench&>(vm.workload());
    w.ResetMetrics();
    solo.Run(5);
    return CyclesToNs(w.AvgAccessLatencyCycles());
  };
  const double mlr_full = full_cache_latency([] { return std::make_unique<MlrWorkload>(8_MiB); });
  const double mload_full =
      full_cache_latency([] { return std::make_unique<MloadWorkload>(60_MiB); });

  auto& mlr = static_cast<ArrayMicrobench&>(mlr_vm.workload());
  auto& mload = static_cast<ArrayMicrobench&>(mload_vm.workload());
  mlr.ResetMetrics();
  mload.ResetMetrics();
  host.Run(5);

  TextTable table({"workload", "dCat latency (ns)", "full-cache latency (ns)", "normalized"});
  const double mlr_now = CyclesToNs(mlr.AvgAccessLatencyCycles());
  const double mload_now = CyclesToNs(mload.AvgAccessLatencyCycles());
  table.AddRow({"MLR-8MB", TextTable::Fmt(mlr_now, 1), TextTable::Fmt(mlr_full, 1),
                TextTable::Fmt(mlr_now / mlr_full, 2)});
  table.AddRow({"MLOAD-60MB", TextTable::Fmt(mload_now, 1), TextTable::Fmt(mload_full, 1),
                TextTable::Fmt(mload_now / mload_full, 2)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: MLR ends near its full-cache latency (paper: ~175%%\n"
      "IPC gain) while MLOAD is unharmed (~1.0x its full-cache latency).\n");
  return 0;
}
