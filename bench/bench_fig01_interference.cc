// Figure 1: impact of cache interference for MLR.
//
// MLR with a 6 MB and a 16 MB working set, run under:
//   * shared cache without noisy neighbors,
//   * shared cache with 2x MLOAD-60MB noisy neighbors,
//   * static CAT (6 of 20 ways = 13.5 MB dedicated) with the same neighbors.
// Expected shape: CAT protects MLR-6MB (its working set fits the dedicated
// ways) but fails MLR-16MB (working set exceeds the partition).
#include <memory>

#include "bench/harness.h"

namespace dcat {
namespace {

struct Scenario {
  const char* label;
  ManagerMode mode;
  bool noisy;
};

double RunMlrLatencyNs(uint64_t mlr_wss, const Scenario& scenario) {
  Host host(BenchHostConfig(scenario.mode));
  Vm& mlr_vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 6},
                          std::make_unique<MlrWorkload>(mlr_wss));
  if (scenario.noisy) {
    host.AddVm(VmConfig{.id = 2, .name = "mload1", .vcpus = 2, .baseline_ways = 6},
               std::make_unique<MloadWorkload>(60_MiB, /*seed=*/2));
    host.AddVm(VmConfig{.id = 3, .name = "mload2", .vcpus = 2, .baseline_ways = 6},
               std::make_unique<MloadWorkload>(60_MiB, /*seed=*/3));
  }
  host.Run(6);  // warmup
  auto& workload = static_cast<MlrWorkload&>(mlr_vm.workload());
  workload.ResetMetrics();
  host.Run(6);  // measure
  return CyclesToNs(workload.AvgAccessLatencyCycles());
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Impact of cache interference for MLR", "Figure 1");

  const Scenario scenarios[] = {
      {"Shared cache w/o noisy", ManagerMode::kShared, false},
      {"Shared cache w/ noisy", ManagerMode::kShared, true},
      {"CAT(13.5MB) w/ noisy", ManagerMode::kStaticCat, true},
  };

  // Each (scenario, working set) cell owns its Host; run them concurrently.
  std::vector<std::function<double()>> cells;
  for (const Scenario& s : scenarios) {
    for (uint64_t wss : {6_MiB, 16_MiB}) {
      cells.push_back([&s, wss] { return RunMlrLatencyNs(wss, s); });
    }
  }
  const std::vector<double> latency = RunBenchCells(cells);

  TextTable table({"Scenario", "MLR-6MB latency (ns)", "MLR-16MB latency (ns)"});
  for (size_t i = 0; i < std::size(scenarios); ++i) {
    table.AddRow({scenarios[i].label, TextTable::Fmt(latency[2 * i], 1),
                  TextTable::Fmt(latency[2 * i + 1], 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: noisy neighbors inflate shared-cache latency; CAT\n"
      "restores MLR-6MB (fits 13.5MB partition) but not MLR-16MB.\n");
  return 0;
}
