// Fleet throughput tracker: sharded multi-host simulation scaling.
//
// Runs the steady-phase fleet mix (src/fleet/) once serially and once
// sharded across the thread pool, in hybrid fidelity (plus a line-fidelity
// contrast row), and emits BENCH_fleet.json — CI uploads the file per
// commit alongside BENCH_sim.json so the fleet layer's scaling stays
// visible over time.
//
// The headline number is scaling efficiency:
//
//   efficiency = (serial_seconds / parallel_seconds) / jobs
//
// i.e. the fraction of linear speedup the shard fan-out achieves. Shards
// share no mutable state, so the target is >= 0.75 at jobs = nproc; a
// lower number means the pool, the allocator, or cache pressure is eating
// the parallelism and the regression should be visible in CI logs.
//
//   bench_fleet_throughput [--quick] [--hosts=M] [--sockets=N] [--jobs=J]
//                          [--intervals=I] [--out=FILE]
//
// Defaults: hosts = nproc (the acceptance shape), sockets = 1, jobs =
// nproc for the parallel row. Every timed row is best-of-3 (best-of-2 with
// --quick) to damp scheduler noise.
//
// BENCH_fleet.json schema (stable):
//   {
//     "bench": "fleet_throughput", "quick": bool,
//     "hosts": M, "sockets_per_host": N, "shards": M*N,
//     "jobs": J,                      // parallel-row worker threads
//     "fidelity": "hybrid",           // headline rows' mode
//     "intervals": I,                 // controller ticks per shard
//     "ticks_total": T,               // Σ shard ticks (parallel hybrid row)
//     "scaling_efficiency": E,        // hybrid rows, as defined above
//     "results": [ { "name", "mode", "jobs", "ticks", "seconds",
//                    "ticks_per_sec", "accesses", "accesses_per_sec",
//                    "analytic_coverage_pct" }, ... ]
//   }
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/fleet/fleet.h"
#include "src/telemetry/json.h"

namespace dcat {
namespace {

struct Measurement {
  std::string name;
  std::string mode;
  size_t jobs = 0;
  uint64_t ticks = 0;
  uint64_t accesses = 0;
  double seconds = 0.0;
  double analytic_coverage_pct = 0.0;
  double ticks_per_sec() const { return seconds > 0 ? ticks / seconds : 0.0; }
  double accesses_per_sec() const { return seconds > 0 ? accesses / seconds : 0.0; }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-`repeats` timing of one fleet configuration. The whole RunFleet
// call is timed — shard construction is part of the work the fleet layer
// exists to parallelize, unlike the micro rows in bench_sim_throughput.
Measurement MeasureFleet(const FleetConfig& config, const std::string& name, int repeats) {
  Measurement m;
  m.name = name;
  m.mode = FidelityModeName(config.fidelity.mode);
  m.jobs = config.jobs;
  for (int r = 0; r < repeats; ++r) {
    const double start = Now();
    const FleetResult result = RunFleet(config);
    const double elapsed = Now() - start;
    if (result.violations_total > 0) {
      std::fprintf(stderr, "bench_fleet_throughput: %llu invariant violations in '%s'\n",
                   static_cast<unsigned long long>(result.violations_total), name.c_str());
      std::exit(1);
    }
    if (r == 0 || elapsed < m.seconds) {
      m.seconds = elapsed;
    }
    if (r == 0) {
      m.ticks = result.ticks_total;
      m.accesses = result.accesses_total;
      double coverage = 0.0;
      for (const FleetShardReport& shard : result.shards) {
        coverage += shard.result.analytic_coverage;
      }
      m.analytic_coverage_pct =
          result.shards.empty() ? 0.0 : coverage / result.shards.size() * 100.0;
    }
  }
  return m;
}

int Main(int argc, char** argv) {
  bool quick = false;
  uint32_t hosts = static_cast<uint32_t>(ThreadPool::DefaultJobs());
  uint32_t sockets = 1;
  size_t jobs = ThreadPool::DefaultJobs();
  uint32_t intervals = 0;  // 0 = pick by quick flag below
#ifdef DCAT_BENCH_OUTPUT_DIR
  std::string out_path = std::string(DCAT_BENCH_OUTPUT_DIR) + "/BENCH_fleet.json";
#else
  std::string out_path = "BENCH_fleet.json";
#endif
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t v = 0;
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--hosts=", 0) == 0 && ParseUint64(arg.substr(8), &v) && v > 0) {
      hosts = static_cast<uint32_t>(v);
    } else if (arg.rfind("--sockets=", 0) == 0 && ParseUint64(arg.substr(10), &v) && v > 0) {
      sockets = static_cast<uint32_t>(v);
    } else if (arg.rfind("--jobs=", 0) == 0 && ParseUint64(arg.substr(7), &v)) {
      jobs = v > 0 ? static_cast<size_t>(v) : ThreadPool::DefaultJobs();
    } else if (arg.rfind("--intervals=", 0) == 0 && ParseUint64(arg.substr(12), &v) && v > 0) {
      intervals = static_cast<uint32_t>(v);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "bench_fleet_throughput [--quick] [--hosts=M] [--sockets=N] [--jobs=J]\n"
          "                       [--intervals=I] [--out=FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (intervals == 0) {
    intervals = quick ? 60 : 150;
  }
  const int repeats = quick ? 2 : 3;

  FleetConfig base;
  base.hosts = hosts;
  base.sockets_per_host = sockets;
  base.base_seed = 1;
  base.policy = "max-fairness";
  base.cycles_per_interval = 1e6;
  base.mix = FleetConfig::Mix::kSteady;
  base.intervals = intervals;
  base.fidelity.mode = FidelityMode::kHybrid;
  // Stationary mix: let the rate model live until a decision invalidates it
  // (the bench measures the fleet fan-out, not fidelity entry cost).
  base.fidelity.resample_every = 0;

  std::vector<Measurement> results;

  FleetConfig serial_hybrid = base;
  serial_hybrid.jobs = 1;
  results.push_back(MeasureFleet(serial_hybrid, "fleet_serial", repeats));
  const Measurement serial = results.back();

  FleetConfig parallel_hybrid = base;
  parallel_hybrid.jobs = jobs;
  results.push_back(MeasureFleet(parallel_hybrid, "fleet_parallel", repeats));
  const Measurement parallel = results.back();

  // Line-fidelity contrast row (parallel only): how much the hybrid fast
  // path contributes at fleet scale.
  FleetConfig parallel_line = base;
  parallel_line.jobs = jobs;
  parallel_line.fidelity.mode = FidelityMode::kLine;
  results.push_back(MeasureFleet(parallel_line, "fleet_parallel_line", repeats));

  const double speedup = parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0;
  const double efficiency = jobs > 0 ? speedup / static_cast<double>(jobs) : 0.0;

  std::printf("%-20s %8s %6s %10s %10s %14s %16s %9s\n", "measurement", "mode", "jobs",
              "ticks", "seconds", "ticks/sec", "accesses/sec", "coverage");
  for (const Measurement& m : results) {
    std::printf("%-20s %8s %6zu %10llu %10.3f %14.1f %16.0f %8.1f%%\n", m.name.c_str(),
                m.mode.c_str(), m.jobs, static_cast<unsigned long long>(m.ticks), m.seconds,
                m.ticks_per_sec(), m.accesses_per_sec(), m.analytic_coverage_pct);
  }
  std::printf("fleet scaling: %.2fx speedup at %zu jobs over %u shards -> %.2f efficiency\n",
              speedup, jobs, hosts * sockets, efficiency);
  if (efficiency < 0.75) {
    std::printf(
        "WARNING: fleet scaling efficiency %.2f < 0.75 of linear — the shard fan-out is "
        "losing parallelism\n",
        efficiency);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("fleet_throughput");
  json.Key("quick").Value(quick);
  json.Key("hosts").Value(static_cast<uint64_t>(hosts));
  json.Key("sockets_per_host").Value(static_cast<uint64_t>(sockets));
  json.Key("shards").Value(static_cast<uint64_t>(hosts) * sockets);
  json.Key("jobs").Value(static_cast<uint64_t>(jobs));
  json.Key("fidelity").Value(FidelityModeName(FidelityMode::kHybrid));
  json.Key("intervals").Value(static_cast<uint64_t>(intervals));
  json.Key("ticks_total").Value(parallel.ticks);
  json.Key("scaling_efficiency").Value(efficiency);
  json.Key("results").BeginArray();
  for (const Measurement& m : results) {
    json.BeginObject();
    json.Key("name").Value(m.name);
    json.Key("mode").Value(m.mode);
    json.Key("jobs").Value(static_cast<uint64_t>(m.jobs));
    json.Key("ticks").Value(m.ticks);
    json.Key("seconds").Value(m.seconds);
    json.Key("ticks_per_sec").Value(m.ticks_per_sec());
    json.Key("accesses").Value(m.accesses);
    json.Key("accesses_per_sec").Value(m.accesses_per_sec());
    json.Key("analytic_coverage_pct").Value(m.analytic_coverage_pct);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }
  out << json.str() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) { return dcat::Main(argc, argv); }
