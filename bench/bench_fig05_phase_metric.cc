// Figure 5: the phase metric (memory accesses per instruction) is
// independent of the cache allocation.
//
// MLR and MLOAD with several working sets run under 1..8 dedicated ways;
// the measured l1_ref/ret_ins must stay flat across ways (while IPC swings
// wildly) — that is what makes it a safe phase signature for a controller
// that is itself changing the allocation.
#include <algorithm>
#include <memory>

#include "bench/harness.h"
#include "src/pqos/mask.h"
#include "src/pqos/sim_pqos.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"

namespace dcat {
namespace {

struct Measurement {
  double mem_per_ins = 0.0;
  double ipc = 0.0;
};

Measurement Measure(std::unique_ptr<ArrayMicrobench> workload, uint32_t ways) {
  Socket socket(SocketConfig::XeonE5());
  SimPqos pqos(&socket);
  pqos.SetCosMask(1, MakeWayMask(0, ways));
  pqos.AssociateCore(0, 1);
  PageTable pt(PagePolicy::kRandom4K, 4_GiB, 11);
  ExecutionContext ctx(&socket.core(0), &pt);
  workload->Execute(ctx, 0, 2'000'000);  // warm
  const PerfCounterBlock before = socket.core(0).counters();
  workload->Execute(ctx, 0, 4'000'000);
  const PerfCounterBlock d = socket.core(0).counters() - before;
  return {d.MemAccessesPerInstruction(), d.Ipc()};
}

void Sweep(const char* name, uint64_t wss, bool random) {
  std::printf("--- %s ---\n", name);
  TextTable table({"ways", "mem/ins", "IPC"});
  double min_mpi = 1e9;
  double max_mpi = 0.0;
  for (uint32_t ways = 1; ways <= 8; ++ways) {
    std::unique_ptr<ArrayMicrobench> w;
    if (random) {
      w = std::make_unique<MlrWorkload>(wss);
    } else {
      w = std::make_unique<MloadWorkload>(wss);
    }
    const Measurement m = Measure(std::move(w), ways);
    min_mpi = std::min(min_mpi, m.mem_per_ins);
    max_mpi = std::max(max_mpi, m.mem_per_ins);
    table.AddRow({TextTable::FmtInt(ways), TextTable::Fmt(m.mem_per_ins, 4),
                  TextTable::Fmt(m.ipc, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("mem/ins spread across allocations: %.2f%% (phase-change threshold: 10%%)\n\n",
              100.0 * (max_mpi - min_mpi) / max_mpi);
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Phase metric is invariant to cache allocation", "Figure 5");
  Sweep("MLR-4MB (random reads)", 4_MiB, true);
  Sweep("MLR-12MB (random reads)", 12_MiB, true);
  Sweep("MLOAD-8MB (sequential reads)", 8_MiB, false);
  Sweep("MLOAD-60MB (sequential reads)", 60_MiB, false);
  std::printf(
      "Expected shape: IPC varies strongly with ways; mem/ins stays flat\n"
      "(far below the 10%% phase-change threshold).\n");
  return 0;
}
