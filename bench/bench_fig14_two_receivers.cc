// Figure 14: two memory-intensive VMs under the two allocation policies.
//
// MLR-8MB and MLR-12MB plus four lookbusy VMs. Under max-fairness the two
// receivers split the spare ways evenly; under max-performance dCat uses
// the learned tables to give the workload with the steeper curve (the
// 12 MB one, which is further from fitting) more of the cache once the
// free pool is exhausted.
#include <memory>

#include "bench/harness.h"

namespace dcat {
namespace {

std::string RunPolicy(const std::string& policy) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat);
  config.dcat.policy = policy;
  Host host(config);
  host.AddVm(VmConfig{.id = 1, .name = "mlr8", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<MlrWorkload>(8_MiB, /*seed=*/1));
  host.AddVm(VmConfig{.id = 2, .name = "mlr12", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<MlrWorkload>(12_MiB, /*seed=*/2));
  Vm* late = nullptr;
  for (TenantId id = 3; id <= 6; ++id) {
    Vm& vm = host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
                        std::make_unique<LookbusyWorkload>());
    if (id == 3) {
      late = &vm;
    }
  }
  Recorder recorder;
  for (int t = 0; t < 30; ++t) {
    if (t == 22) {
      // A third tenant wakes up and reclaims its 3-way baseline — the §3.5
      // scenario where the two policies' redistribution differs: fairness
      // shrinks both receivers evenly, max-performance consults the tables
      // and taxes the flatter curve.
      late->ReplaceWorkload(std::make_unique<MlrWorkload>(4_MiB, /*seed=*/9));
    }
    recorder.Record(host.now_seconds(), host.Step());
  }
  // Rendered to a string so both policy cells can run concurrently and
  // print in a fixed order from the main thread.
  std::string report = "--- policy: ";
  report += policy;
  report += " ---\n";
  report += recorder.TimelineTable({{1, "mlr8"}, {2, "mlr12"}, {3, "late"}});
  char tail[128];
  std::snprintf(tail, sizeof(tail), "final ways: MLR-8MB=%u, MLR-12MB=%u, late MLR-4MB=%u\n\n",
                host.dcat()->TenantWays(1), host.dcat()->TenantWays(2),
                host.dcat()->TenantWays(3));
  report += tail;
  return report;
}

}  // namespace
}  // namespace dcat

int main(int argc, char** argv) {
  using namespace dcat;
  PrintHeader("Two memory-intensive VMs: fairness vs max-performance", "Figure 14");
  const std::vector<std::string> policies =
      ParsePoliciesFlag(argc, argv, {"max-fairness", "max-performance"});
  std::vector<std::function<std::string()>> cells;
  for (const std::string& policy : policies) {
    cells.push_back([policy] { return RunPolicy(policy); });
  }
  const std::vector<std::string> reports = RunBenchCells<std::string>(cells);
  for (const std::string& report : reports) {
    std::printf("%s", report.c_str());
  }
  std::printf(
      "Expected shape: both policies behave identically while the free pool\n"
      "lasts (tables still empty); once it dries up, max-performance skews\n"
      "ways toward the workload whose table shows the larger benefit.\n");
  return 0;
}
