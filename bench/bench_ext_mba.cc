// Extension: memory-bandwidth interference and MBA throttling.
//
// Beyond the paper's scope (its §7 surveys bandwidth isolation as related
// work): cache partitioning alone cannot protect a latency-sensitive
// tenant from a neighbor that saturates the DRAM bus — the misses it does
// take get slower. With the bandwidth model enabled, this bench shows
//   1. MLR beside streaming hogs under dCat cache isolation but an open
//      bus: latency inflated by queueing;
//   2. the same colocation with Intel-MBA-style throttling applied to the
//      hogs: latency restored, at the cost of hog throughput.
#include <memory>

#include "bench/harness.h"

namespace dcat {
namespace {

struct Outcome {
  double mlr_latency_ns = 0.0;
  double hog_ipc = 0.0;
  double bus_multiplier = 1.0;
};

Outcome Run(bool bus_enabled, uint32_t hog_throttle_percent) {
  HostConfig config = BenchHostConfig(ManagerMode::kDcat);
  config.socket.memory_bus.enabled = bus_enabled;
  // A deliberately narrow bus so two streams visibly queue.
  config.socket.memory_bus.bytes_per_cycle = 3.0;
  config.socket.memory_bus.contention_coefficient = 2.0;
  Host host(config);
  Vm& mlr_vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 4},
                          std::make_unique<MlrWorkload>(16_MiB));
  host.AddVm(VmConfig{.id = 2, .name = "hog1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, 2));
  host.AddVm(VmConfig{.id = 3, .name = "hog2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, 3));

  if (hog_throttle_percent < 100) {
    // The hogs' tenants hold COS 2 and 3 (admission order).
    host.pqos().SetMbaThrottle(2, hog_throttle_percent);
    host.pqos().SetMbaThrottle(3, hog_throttle_percent);
  }

  host.Run(10);
  auto& mlr = static_cast<MlrWorkload&>(mlr_vm.workload());
  mlr.ResetMetrics();
  const auto stats_before = host.Step();
  std::vector<VmIntervalStats> stats = stats_before;
  for (int i = 0; i < 4; ++i) {
    stats = host.Step();
  }
  Outcome outcome;
  outcome.mlr_latency_ns = CyclesToNs(mlr.AvgAccessLatencyCycles());
  outcome.hog_ipc = stats[1].sample.ipc();
  outcome.bus_multiplier = host.socket().memory_bus().contention_multiplier();
  return outcome;
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Bandwidth interference and MBA throttling (extension)",
              "no paper figure — §7-adjacent extension");

  const Outcome no_bus = Run(/*bus_enabled=*/false, 100);
  const Outcome open_bus = Run(true, 100);
  const Outcome throttled = Run(true, /*hog_throttle_percent=*/20);

  TextTable table({"configuration", "MLR latency (ns)", "hog IPC", "bus multiplier"});
  table.AddRow({"no bandwidth model", TextTable::Fmt(no_bus.mlr_latency_ns, 1),
                TextTable::Fmt(no_bus.hog_ipc, 3), TextTable::Fmt(no_bus.bus_multiplier, 2)});
  table.AddRow({"open bus (CAT only)", TextTable::Fmt(open_bus.mlr_latency_ns, 1),
                TextTable::Fmt(open_bus.hog_ipc, 3),
                TextTable::Fmt(open_bus.bus_multiplier, 2)});
  table.AddRow({"hogs MBA-throttled to 20%", TextTable::Fmt(throttled.mlr_latency_ns, 1),
                TextTable::Fmt(throttled.hog_ipc, 3),
                TextTable::Fmt(throttled.bus_multiplier, 2)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: cache isolation alone leaves MLR exposed to bus\n"
      "queueing; throttling the hogs restores MLR latency while costing the\n"
      "hogs throughput — CAT and MBA are complementary knobs.\n");
  return 0;
}
