// §5.1 overhead claim + simulator microbenchmarks (google-benchmark).
//
// The paper measures dCat's daemon at <1% CPU. The analogous numbers here:
// the cost of one controller Tick at the full 15-tenant scale, the
// allocation DP, and the simulator's primitive costs (which bound how fast
// the figure benches run).
#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/dcat_controller.h"
#include "src/core/phase_detector.h"
#include "src/pqos/mask.h"
#include "src/pqos/sim_pqos.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"
#include "src/workloads/microbench.h"
#include "tests/core/fake_pqos.h"

namespace dcat {
namespace {

void BM_CacheAccessHit(benchmark::State& state) {
  SetAssociativeCache cache(MakeGeometry(1 << 20, 16));
  cache.Access(0, cache.FullWayMask());
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(0, cache.FullWayMask()));
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessMissEvict(benchmark::State& state) {
  SetAssociativeCache cache(MakeGeometry(1 << 20, 16));
  const uint32_t sets = cache.geometry().num_sets;
  uint64_t tag = 0;
  for (auto _ : state) {
    // Same set every time, single allowed way: every access evicts.
    benchmark::DoNotOptimize(cache.Access((tag++ * sets) * 64, 0b1));
  }
}
BENCHMARK(BM_CacheAccessMissEvict);

void BM_CoreHierarchyWalk(benchmark::State& state) {
  Socket socket(SocketConfig::XeonE5());
  PageTable pt(PagePolicy::kRandom4K, 1ull << 32, 1);
  ExecutionContext ctx(&socket.core(0), &pt);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Read(rng.Below(8ull << 20)));
  }
}
BENCHMARK(BM_CoreHierarchyWalk);

void BM_PageTableTranslate(benchmark::State& state) {
  PageTable pt(PagePolicy::kRandom4K, 1ull << 32, 1);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Translate(rng.Below(64ull << 20)));
  }
}
BENCHMARK(BM_PageTableTranslate);

// The headline: one full controller tick with 15 active tenants. On real
// hardware this runs once per second — nanoseconds here means the paper's
// <1% CPU overhead claim holds with orders of magnitude to spare.
void BM_ControllerTick15Tenants(benchmark::State& state) {
  FakePqos pqos(20, 16, 18);
  DcatController controller(&pqos, &pqos, DcatConfig{});
  controller.set_logging(false);
  for (TenantId id = 1; id <= 15; ++id) {
    controller.AddTenant(TenantSpec{.id = id,
                                    .name = "t",
                                    .cores = {static_cast<uint16_t>(id - 1)},
                                    .baseline_ways = 1});
  }
  Rng rng(3);
  for (auto _ : state) {
    for (uint16_t core = 0; core < 15; ++core) {
      pqos.Feed(core, 0.1 + rng.NextDouble(), 0.3, 200 + rng.NextDouble() * 100,
                rng.NextDouble() * 0.5);
    }
    controller.Tick();
  }
}
BENCHMARK(BM_ControllerTick15Tenants);

void BM_MaxPerfSolver(benchmark::State& state) {
  // 15 workloads x 20-way budget, 8 options each: the worst realistic case.
  std::vector<TableChoices> choices(15);
  Rng rng(4);
  for (auto& c : choices) {
    double value = 1.0;
    for (uint32_t ways = 1; ways <= 8; ++ways) {
      value *= 1.0 + rng.NextDouble() * 0.2;
      c.options.emplace_back(ways, value);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveMaxPerformance(choices, 20));
  }
}
BENCHMARK(BM_MaxPerfSolver);

void BM_MaskValidation(benchmark::State& state) {
  uint32_t mask = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContiguousMask(++mask));
  }
}
BENCHMARK(BM_MaskValidation);

// Cost of the §6 flush utility on the full Xeon E5 LLC (the controller
// invokes it once per shrink decision, not per access).
void BM_FlushCosOutsideMask(benchmark::State& state) {
  Socket socket(SocketConfig::XeonE5());
  socket.AssignCoreToCos(0, 1);
  const auto geo = socket.config().llc_geometry;
  for (auto _ : state) {
    state.PauseTiming();
    socket.SetCosMask(1, 0xfffff);
    for (uint64_t line = 0; line < 4096; ++line) {
      socket.core(0).Access(line * geo.line_size, false);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(socket.FlushCosOutsideMask(1, 0b11));
  }
}
BENCHMARK(BM_FlushCosOutsideMask);

void BM_MemoryBusNoteTransfer(benchmark::State& state) {
  MemoryBusConfig config;
  config.enabled = true;
  MemoryBus bus(config, 64, 16);
  uint8_t cos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.NoteTransfer(cos++ % 16));
  }
}
BENCHMARK(BM_MemoryBusNoteTransfer);

void BM_PhaseDetectorUpdate(benchmark::State& state) {
  PhaseDetector detector{DcatConfig{}};
  WorkloadSample sample;
  sample.delta.retired_instructions = 1'000'000;
  sample.delta.l1_references = 330'000;
  sample.delta.unhalted_cycles = 4e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Update(sample));
  }
}
BENCHMARK(BM_PhaseDetectorUpdate);

}  // namespace
}  // namespace dcat

BENCHMARK_MAIN();
