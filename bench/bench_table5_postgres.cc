// Table 5: PostgreSQL select-only transactions under the three regimes.
//
// The DB proxy walks a 3-level B-tree over 10M tuples per select (pgbench
// style, uniform tuple choice). Only the upper index levels are cacheable,
// so the gains are modest by design — the paper reports dCat +5.7% TPS
// over shared and 10.7% lower latency than static partitioning.
#include <memory>

#include "bench/harness.h"
#include "src/workloads/sqldb.h"

namespace dcat {
namespace {

struct DbResult {
  double tps = 0.0;  // transactions per interval
  double avg_latency_ns = 0.0;
};

DbResult RunMode(ManagerMode mode) {
  Host host(BenchHostConfig(mode, /*cycles_per_interval=*/15e6));
  Vm& db_vm = host.AddVm(VmConfig{.id = 1, .name = "postgres", .vcpus = 2, .baseline_ways = 4},
                         std::make_unique<SqlDbWorkload>());
  host.AddVm(VmConfig{.id = 2, .name = "mload1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, 2));
  host.AddVm(VmConfig{.id = 3, .name = "mload2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, 3));
  host.AddVm(VmConfig{.id = 4, .name = "busy1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());
  host.AddVm(VmConfig{.id = 5, .name = "busy2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());
  host.Run(18);  // the 4-level index takes ~16 intervals to converge
  auto& db = static_cast<SqlDbWorkload&>(db_vm.workload());
  db.ResetMetrics();
  const int kMeasure = 6;
  host.Run(kMeasure);
  return {static_cast<double>(db.transactions()) / kMeasure,
          CyclesToNs(db.AvgTxnLatencyCycles())};
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("PostgreSQL select-only (10M tuples) vs 2x MLOAD-60MB neighbors", "Table 5");
  const std::vector<DbResult> results =
      RunBenchCells<DbResult>({[] { return RunMode(ManagerMode::kShared); },
                               [] { return RunMode(ManagerMode::kStaticCat); },
                               [] { return RunMode(ManagerMode::kDcat); }});
  const DbResult& shared = results[0];
  const DbResult& fixed = results[1];
  const DbResult& dynamic = results[2];

  TextTable table({"mode", "TPS (txn/interval)", "norm TPS", "avg latency (ns)"});
  for (const auto& [label, r] : {std::pair<const char*, const DbResult&>{"shared", shared},
                                 std::pair<const char*, const DbResult&>{"static CAT", fixed},
                                 std::pair<const char*, const DbResult&>{"dCat", dynamic}}) {
    table.AddRow({label, TextTable::Fmt(r.tps, 0), TextTable::Fmt(r.tps / shared.tps, 3),
                  TextTable::Fmt(r.avg_latency_ns, 0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("dCat vs shared: %+.1f%% TPS; dCat latency vs static: %+.1f%%\n",
              100.0 * (dynamic.tps / shared.tps - 1.0),
              100.0 * (dynamic.avg_latency_ns / fixed.avg_latency_ns - 1.0));
  std::printf(
      "Expected shape (paper): modest gains — ~+5.7%% TPS over shared and\n"
      "~10%% lower latency than static (uniform tuple access caps the upside).\n");
  return 0;
}
