// Figure 11: MLR data access latency, normalized to the full-cache run.
//
// Same setup as Figure 10. For each working set the full-cache latency
// (MLR alone, whole LLC) is the denominator; dCat should sit just above
// 1.0 while static CAT (3 ways) degrades badly once the working set
// exceeds the partition.
#include <memory>

#include "bench/harness.h"

namespace dcat {
namespace {

double RunLatencyNs(uint64_t wss, ManagerMode mode, bool neighbors) {
  Host host(BenchHostConfig(mode));
  Vm& mlr_vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 3},
                          std::make_unique<MlrWorkload>(wss));
  if (neighbors) {
    for (TenantId id = 2; id <= 6; ++id) {
      host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
                 std::make_unique<LookbusyWorkload>());
    }
  }
  host.Run(14);
  auto& mlr = static_cast<MlrWorkload&>(mlr_vm.workload());
  mlr.ResetMetrics();
  host.Run(5);
  return CyclesToNs(mlr.AvgAccessLatencyCycles());
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Normalized (to full cache) data access latency for MLR", "Figure 11");
  const std::vector<uint64_t> sizes = {4_MiB, 8_MiB, 12_MiB, 16_MiB};
  std::vector<std::function<double()>> cells;
  for (uint64_t wss : sizes) {
    cells.push_back([wss] { return RunLatencyNs(wss, ManagerMode::kShared, /*neighbors=*/false); });
    cells.push_back([wss] { return RunLatencyNs(wss, ManagerMode::kDcat, true); });
    cells.push_back([wss] { return RunLatencyNs(wss, ManagerMode::kStaticCat, true); });
  }
  const std::vector<double> ns = RunBenchCells(cells);

  TextTable table({"MLR WSS", "full cache (ns)", "dCat (norm)", "static CAT 3-way (norm)"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    const double full = ns[3 * i];
    table.AddRow({std::to_string(sizes[i] / 1_MiB) + "MB", TextTable::Fmt(full, 1),
                  TextTable::Fmt(ns[3 * i + 1] / full, 2),
                  TextTable::Fmt(ns[3 * i + 2] / full, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: dCat stays close to 1.0x; static CAT grows worse as\n"
      "the working set outgrows its 6.75MB partition.\n");
  return 0;
}
