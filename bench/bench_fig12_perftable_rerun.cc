// Figure 12: the performance-table fast path on a workload rerun.
//
// MLR-8MB runs, stops, and runs again. The first run discovers the
// preferred allocation one way per interval; when the same phase recurs,
// dCat consults the phase's performance table and jumps straight to the
// preferred ways instead of re-climbing from the baseline.
#include <memory>

#include "bench/harness.h"

int main() {
  using namespace dcat;
  PrintHeader("Performance-table fast path on rerun (MLR-8MB)", "Figure 12");

  Host host(BenchHostConfig(ManagerMode::kDcat));
  Vm& vm = host.AddVm(VmConfig{.id = 1, .name = "mlr", .vcpus = 2, .baseline_ways = 3},
                      std::make_unique<MlrWorkload>(8_MiB, /*seed=*/1));
  for (TenantId id = 2; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
               std::make_unique<LookbusyWorkload>());
  }

  Recorder recorder;
  auto step = [&] { recorder.Record(host.now_seconds(), host.Step()); };

  // First run: discovery.
  for (int t = 0; t < 14; ++t) {
    step();
  }
  const uint32_t discovered = host.dcat()->TenantWays(1);
  // Stop: VM goes idle, donates everything.
  vm.ReplaceWorkload(std::make_unique<IdleWorkload>());
  for (int t = 0; t < 5; ++t) {
    step();
  }
  // Rerun the same workload.
  vm.ReplaceWorkload(std::make_unique<MlrWorkload>(8_MiB, /*seed=*/2));
  uint32_t ways_after_one_interval = 0;
  for (int t = 0; t < 7; ++t) {
    step();
    if (t == 1) {
      ways_after_one_interval = host.dcat()->TenantWays(1);
    }
  }

  std::printf("%s\n", recorder.TimelineTable({{1, "mlr"}}).c_str());
  std::printf("first run settled at %u ways (one way per interval discovery)\n", discovered);
  std::printf("rerun reached %u ways within 2 intervals (fast path; no re-climb)\n",
              ways_after_one_interval);
  std::printf("performance table: %s\n", host.dcat()->Snapshot(1).table.ToString().c_str());
  return 0;
}
