// Figure 17 + Table 3: SPEC CPU2006 proxies under shared / static / dCat.
//
// Five VMs with 4-way (9 MB) baselines: one runs a SPEC proxy, two run
// MLOAD-60MB noisy neighbors and two run lookbusy polite neighbors.
// The metric is application progress (proxy iterations per interval),
// normalized to the shared-cache run — the reciprocal-runtime metric the
// paper plots. Table 3's companion column is the ceiling of ways dCat
// assigned during the run.
#include <memory>

#include "bench/harness.h"
#include "src/common/stats.h"
#include "src/workloads/spec_suite.h"

namespace dcat {
namespace {

struct RunResult {
  double iterations_per_interval = 0.0;
  uint32_t peak_ways = 0;
};

RunResult RunSpec(const SpecProxyParams& params, ManagerMode mode) {
  // Slightly shorter intervals keep the 60-benchmark matrix tractable.
  Host host(BenchHostConfig(mode, /*cycles_per_interval=*/12e6));
  Vm& spec_vm = host.AddVm(VmConfig{.id = 1, .name = params.name, .vcpus = 2, .baseline_ways = 4},
                           std::make_unique<SpecProxyWorkload>(params));
  host.AddVm(VmConfig{.id = 2, .name = "mload1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, /*seed=*/2));
  host.AddVm(VmConfig{.id = 3, .name = "mload2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<MloadWorkload>(60_MiB, /*seed=*/3));
  host.AddVm(VmConfig{.id = 4, .name = "busy1", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());
  host.AddVm(VmConfig{.id = 5, .name = "busy2", .vcpus = 2, .baseline_ways = 4},
             std::make_unique<LookbusyWorkload>());

  auto& spec = static_cast<SpecProxyWorkload&>(spec_vm.workload());
  uint32_t peak_ways = 4;
  const int kWarmup = 12;
  const int kMeasure = 6;
  for (int t = 0; t < kWarmup; ++t) {
    host.Step();
    if (mode == ManagerMode::kDcat) {
      peak_ways = std::max(peak_ways, host.dcat()->TenantWays(1));
    }
  }
  spec.ResetMetrics();
  for (int t = 0; t < kMeasure; ++t) {
    host.Step();
    if (mode == ManagerMode::kDcat) {
      peak_ways = std::max(peak_ways, host.dcat()->TenantWays(1));
    }
  }
  return {static_cast<double>(spec.iterations()) / kMeasure, peak_ways};
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("SPEC CPU2006 proxies: normalized performance + assigned ways",
              "Figure 17 and Table 3");

  // The 3-mode x N-benchmark matrix is the most expensive bench in the
  // suite; every (benchmark, mode) cell is independent, so all of them go
  // to the pool at once.
  const std::vector<SpecProxyParams> roster = SpecCpu2006Roster();
  const ManagerMode modes[] = {ManagerMode::kShared, ManagerMode::kStaticCat,
                               ManagerMode::kDcat};
  std::vector<std::function<RunResult()>> cells;
  for (const SpecProxyParams& params : roster) {
    for (const ManagerMode mode : modes) {
      cells.push_back([&params, mode] { return RunSpec(params, mode); });
    }
  }
  const std::vector<RunResult> results = RunBenchCells(cells);

  TextTable table(
      {"benchmark", "shared", "static CAT", "dCat", "dCat ways (peak)"});
  std::vector<double> static_norm;
  std::vector<double> dcat_norm;
  for (size_t i = 0; i < roster.size(); ++i) {
    const RunResult& shared = results[3 * i];
    const RunResult& fixed = results[3 * i + 1];
    const RunResult& dynamic = results[3 * i + 2];
    const double s = 1.0;
    const double f = fixed.iterations_per_interval / shared.iterations_per_interval;
    const double d = dynamic.iterations_per_interval / shared.iterations_per_interval;
    static_norm.push_back(f);
    dcat_norm.push_back(d);
    table.AddRow({roster[i].name, TextTable::Fmt(s, 2), TextTable::Fmt(f, 2),
                  TextTable::Fmt(d, 2), TextTable::FmtInt(dynamic.peak_ways)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("geomean normalized to shared: static CAT %.3f, dCat %.3f\n",
              GeometricMean(static_norm), GeometricMean(dcat_norm));
  std::printf(
      "Expected shape (paper): dCat geomean +25%% over shared and +15.7%% over\n"
      "static; high-reuse codes (omnetpp, astar, mcf) gain the most; small-\n"
      "working-set codes are flat; streaming codes (lbm, libquantum) see no\n"
      "benefit from extra ways but are protected from the MLOAD neighbors.\n");
  return 0;
}
