// Figure 13: streaming detection for MLOAD-60MB.
//
// MLOAD's 60 MB cyclic scan cannot reuse anything in the 45 MB LLC. dCat
// grows it from the 3-way baseline while it is Unknown; when the
// allocation reaches the streaming threshold (3x baseline) with no IPC
// improvement, it is classified Streaming and cut to 1 way — freeing the
// capacity for others (the paper: static partitioning would waste the
// 3 ways forever).
#include <memory>

#include "bench/harness.h"

int main() {
  using namespace dcat;
  PrintHeader("Cache-way allocation and normalized IPC for MLOAD-60MB", "Figure 13");

  Host host(BenchHostConfig(ManagerMode::kDcat));
  host.AddVm(VmConfig{.id = 1, .name = "mload", .vcpus = 2, .baseline_ways = 3},
             std::make_unique<MloadWorkload>(60_MiB));
  for (TenantId id = 2; id <= 6; ++id) {
    host.AddVm(VmConfig{.id = id, .name = "busy", .vcpus = 2, .baseline_ways = 3},
               std::make_unique<LookbusyWorkload>());
  }

  Recorder recorder;
  double baseline_ipc = 0.0;
  uint32_t peak = 0;
  for (int t = 0; t < 14; ++t) {
    const auto stats = host.Step();
    recorder.Record(host.now_seconds(), stats);
    if (t == 0) {
      baseline_ipc = stats[0].sample.ipc();
    }
    peak = std::max(peak, host.dcat()->TenantWays(1));
  }
  std::printf("%s\n", recorder.TimelineTable({{1, "mload"}}, {{1, baseline_ipc}}).c_str());
  std::printf("peak allocation while Unknown: %u ways (streaming threshold: 9 = 3x baseline)\n",
              peak);
  std::printf("final: %u way(s), category %s\n", host.dcat()->TenantWays(1),
              CategoryName(host.dcat()->Snapshot(1).category));
  std::printf(
      "Expected shape: grows toward 3x baseline with flat normalized IPC,\n"
      "then is classified Streaming and drops to 1 way.\n");
  return 0;
}
