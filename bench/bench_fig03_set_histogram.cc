// Figure 3: cache-set conflict histogram on the Broadwell machines.
//
// For a working set sized to exactly 2 LLC ways, count how many cache
// lines map to each set under 4 KiB and 2 MiB paging. Sets with 3+ lines
// overflow a 2-way partition (conflict misses). The paper reports ~32.5%
// of sets with 3+ lines on Xeon-D / ~29% on Xeon-E5 with 4K pages, 0% for
// the single-huge-page Xeon-D case and ~11.2% for Xeon-E5 (4.5 MB spans
// three huge pages).
#include "bench/harness.h"
#include "src/common/histogram.h"
#include "src/sim/page_table.h"

namespace dcat {
namespace {

Histogram LinesPerSet(const CacheGeometry& llc, uint64_t wss, PagePolicy paging, uint64_t seed) {
  PageTable pt(paging, 4_GiB, seed);
  std::vector<uint32_t> per_set(llc.num_sets, 0);
  for (uint64_t v = 0; v < wss; v += llc.line_size) {
    ++per_set[llc.SetIndex(pt.Translate(v))];
  }
  Histogram h(8);  // buckets 0..6, >=7
  for (uint32_t c : per_set) {
    h.Add(c);
  }
  return h;
}

void Report(const char* machine, const CacheGeometry& llc, uint64_t wss) {
  std::printf("--- %s: working set %llu KB = 2 ways ---\n", machine,
              static_cast<unsigned long long>(wss / 1024));
  TextTable table({"lines/set", "4K pages", "2M huge pages"});
  const Histogram h4k = LinesPerSet(llc, wss, PagePolicy::kRandom4K, 7);
  const Histogram h2m = LinesPerSet(llc, wss, PagePolicy::kHuge2M, 7);
  for (size_t bucket = 0; bucket < h4k.num_buckets(); ++bucket) {
    const std::string label =
        bucket + 1 == h4k.num_buckets() ? (">=" + std::to_string(bucket)) : std::to_string(bucket);
    table.AddRow({label, TextTable::FmtPercent(h4k.Fraction(bucket), 1),
                  TextTable::FmtPercent(h2m.Fraction(bucket), 1)});
  }
  table.AddRow({"3+ (conflicts)", TextTable::FmtPercent(h4k.FractionAtLeast(3), 1),
                TextTable::FmtPercent(h2m.FractionAtLeast(3), 1)});
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace dcat

int main() {
  using namespace dcat;
  PrintHeader("Cache-set conflicts on Intel Broadwell processors", "Figure 3");
  Report("Xeon-D (12-way 12MB LLC)", XeonDLlcGeometry(), 2_MiB);
  Report("Xeon-E5 (20-way 45MB LLC)", XeonE5LlcGeometry(), 4608_KiB);
  std::printf(
      "Expected shape: ~32%% of sets hold 3+ lines with 4K pages (paper:\n"
      "32.5%% Xeon-D, 29%% Xeon-E5); 0%% for Xeon-D with one huge page; ~11%%\n"
      "for Xeon-E5 whose 4.5MB working set spans three huge pages.\n");
  return 0;
}
