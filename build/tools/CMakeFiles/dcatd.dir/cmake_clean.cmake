file(REMOVE_RECURSE
  "CMakeFiles/dcatd.dir/dcatd.cc.o"
  "CMakeFiles/dcatd.dir/dcatd.cc.o.d"
  "dcatd"
  "dcatd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
