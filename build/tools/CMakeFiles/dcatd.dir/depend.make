# Empty dependencies file for dcatd.
# This may be replaced when dependencies are built.
