file(REMOVE_RECURSE
  "CMakeFiles/resctrl_tour.dir/resctrl_tour.cpp.o"
  "CMakeFiles/resctrl_tour.dir/resctrl_tour.cpp.o.d"
  "resctrl_tour"
  "resctrl_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resctrl_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
