# Empty dependencies file for resctrl_tour.
# This may be replaced when dependencies are built.
