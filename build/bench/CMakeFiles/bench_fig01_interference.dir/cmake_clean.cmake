file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_interference.dir/bench_fig01_interference.cc.o"
  "CMakeFiles/bench_fig01_interference.dir/bench_fig01_interference.cc.o.d"
  "bench_fig01_interference"
  "bench_fig01_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
