file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_two_receivers.dir/bench_fig14_two_receivers.cc.o"
  "CMakeFiles/bench_fig14_two_receivers.dir/bench_fig14_two_receivers.cc.o.d"
  "bench_fig14_two_receivers"
  "bench_fig14_two_receivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_two_receivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
