# Empty dependencies file for bench_fig14_two_receivers.
# This may be replaced when dependencies are built.
