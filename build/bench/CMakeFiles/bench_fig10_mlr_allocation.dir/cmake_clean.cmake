file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mlr_allocation.dir/bench_fig10_mlr_allocation.cc.o"
  "CMakeFiles/bench_fig10_mlr_allocation.dir/bench_fig10_mlr_allocation.cc.o.d"
  "bench_fig10_mlr_allocation"
  "bench_fig10_mlr_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mlr_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
