# Empty dependencies file for bench_fig10_mlr_allocation.
# This may be replaced when dependencies are built.
