# Empty dependencies file for bench_ext_mba.
# This may be replaced when dependencies are built.
