file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mba.dir/bench_ext_mba.cc.o"
  "CMakeFiles/bench_ext_mba.dir/bench_ext_mba.cc.o.d"
  "bench_ext_mba"
  "bench_ext_mba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
