file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_miss_threshold.dir/bench_fig08_miss_threshold.cc.o"
  "CMakeFiles/bench_fig08_miss_threshold.dir/bench_fig08_miss_threshold.cc.o.d"
  "bench_fig08_miss_threshold"
  "bench_fig08_miss_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_miss_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
