# Empty dependencies file for bench_fig08_miss_threshold.
# This may be replaced when dependencies are built.
