# Empty dependencies file for bench_fig12_perftable_rerun.
# This may be replaced when dependencies are built.
