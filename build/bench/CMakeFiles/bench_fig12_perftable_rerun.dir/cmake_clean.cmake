file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_perftable_rerun.dir/bench_fig12_perftable_rerun.cc.o"
  "CMakeFiles/bench_fig12_perftable_rerun.dir/bench_fig12_perftable_rerun.cc.o.d"
  "bench_fig12_perftable_rerun"
  "bench_fig12_perftable_rerun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_perftable_rerun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
