# Empty dependencies file for bench_table4_redis.
# This may be replaced when dependencies are built.
