file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_redis.dir/bench_table4_redis.cc.o"
  "CMakeFiles/bench_table4_redis.dir/bench_table4_redis.cc.o.d"
  "bench_table4_redis"
  "bench_table4_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
