# Empty dependencies file for bench_fig03_set_histogram.
# This may be replaced when dependencies are built.
