file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_streaming.dir/bench_fig13_streaming.cc.o"
  "CMakeFiles/bench_fig13_streaming.dir/bench_fig13_streaming.cc.o.d"
  "bench_fig13_streaming"
  "bench_fig13_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
