# Empty compiler generated dependencies file for bench_fig13_streaming.
# This may be replaced when dependencies are built.
