# Empty dependencies file for bench_fig02_conflict_latency.
# This may be replaced when dependencies are built.
