file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_phase_metric.dir/bench_fig05_phase_metric.cc.o"
  "CMakeFiles/bench_fig05_phase_metric.dir/bench_fig05_phase_metric.cc.o.d"
  "bench_fig05_phase_metric"
  "bench_fig05_phase_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_phase_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
