# Empty dependencies file for bench_fig05_phase_metric.
# This may be replaced when dependencies are built.
