# Empty dependencies file for bench_table5_postgres.
# This may be replaced when dependencies are built.
