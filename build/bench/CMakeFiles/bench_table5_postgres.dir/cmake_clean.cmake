file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_postgres.dir/bench_table5_postgres.cc.o"
  "CMakeFiles/bench_table5_postgres.dir/bench_table5_postgres.cc.o.d"
  "bench_table5_postgres"
  "bench_table5_postgres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_postgres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
