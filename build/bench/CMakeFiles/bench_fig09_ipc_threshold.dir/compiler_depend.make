# Empty compiler generated dependencies file for bench_fig09_ipc_threshold.
# This may be replaced when dependencies are built.
