file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_ipc_threshold.dir/bench_fig09_ipc_threshold.cc.o"
  "CMakeFiles/bench_fig09_ipc_threshold.dir/bench_fig09_ipc_threshold.cc.o.d"
  "bench_fig09_ipc_threshold"
  "bench_fig09_ipc_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_ipc_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
