# Empty compiler generated dependencies file for bench_fig17_spec_suite.
# This may be replaced when dependencies are built.
