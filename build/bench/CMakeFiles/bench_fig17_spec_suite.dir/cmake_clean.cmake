file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_spec_suite.dir/bench_fig17_spec_suite.cc.o"
  "CMakeFiles/bench_fig17_spec_suite.dir/bench_fig17_spec_suite.cc.o.d"
  "bench_fig17_spec_suite"
  "bench_fig17_spec_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_spec_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
