file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_mlr_mload_mix.dir/bench_fig15_mlr_mload_mix.cc.o"
  "CMakeFiles/bench_fig15_mlr_mload_mix.dir/bench_fig15_mlr_mload_mix.cc.o.d"
  "bench_fig15_mlr_mload_mix"
  "bench_fig15_mlr_mload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_mlr_mload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
