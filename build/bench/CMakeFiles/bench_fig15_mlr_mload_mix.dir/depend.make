# Empty dependencies file for bench_fig15_mlr_mload_mix.
# This may be replaced when dependencies are built.
