file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_elasticsearch.dir/bench_table6_elasticsearch.cc.o"
  "CMakeFiles/bench_table6_elasticsearch.dir/bench_table6_elasticsearch.cc.o.d"
  "bench_table6_elasticsearch"
  "bench_table6_elasticsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_elasticsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
