# Empty dependencies file for bench_table6_elasticsearch.
# This may be replaced when dependencies are built.
