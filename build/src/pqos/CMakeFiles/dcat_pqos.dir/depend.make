# Empty dependencies file for dcat_pqos.
# This may be replaced when dependencies are built.
