file(REMOVE_RECURSE
  "libdcat_pqos.a"
)
