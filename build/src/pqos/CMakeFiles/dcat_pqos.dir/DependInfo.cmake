
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pqos/mask.cc" "src/pqos/CMakeFiles/dcat_pqos.dir/mask.cc.o" "gcc" "src/pqos/CMakeFiles/dcat_pqos.dir/mask.cc.o.d"
  "/root/repo/src/pqos/pqos.cc" "src/pqos/CMakeFiles/dcat_pqos.dir/pqos.cc.o" "gcc" "src/pqos/CMakeFiles/dcat_pqos.dir/pqos.cc.o.d"
  "/root/repo/src/pqos/resctrl_pqos.cc" "src/pqos/CMakeFiles/dcat_pqos.dir/resctrl_pqos.cc.o" "gcc" "src/pqos/CMakeFiles/dcat_pqos.dir/resctrl_pqos.cc.o.d"
  "/root/repo/src/pqos/sim_pqos.cc" "src/pqos/CMakeFiles/dcat_pqos.dir/sim_pqos.cc.o" "gcc" "src/pqos/CMakeFiles/dcat_pqos.dir/sim_pqos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
