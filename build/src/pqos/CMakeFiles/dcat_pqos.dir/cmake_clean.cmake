file(REMOVE_RECURSE
  "CMakeFiles/dcat_pqos.dir/mask.cc.o"
  "CMakeFiles/dcat_pqos.dir/mask.cc.o.d"
  "CMakeFiles/dcat_pqos.dir/pqos.cc.o"
  "CMakeFiles/dcat_pqos.dir/pqos.cc.o.d"
  "CMakeFiles/dcat_pqos.dir/resctrl_pqos.cc.o"
  "CMakeFiles/dcat_pqos.dir/resctrl_pqos.cc.o.d"
  "CMakeFiles/dcat_pqos.dir/sim_pqos.cc.o"
  "CMakeFiles/dcat_pqos.dir/sim_pqos.cc.o.d"
  "libdcat_pqos.a"
  "libdcat_pqos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcat_pqos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
