file(REMOVE_RECURSE
  "CMakeFiles/dcat_common.dir/histogram.cc.o"
  "CMakeFiles/dcat_common.dir/histogram.cc.o.d"
  "CMakeFiles/dcat_common.dir/log.cc.o"
  "CMakeFiles/dcat_common.dir/log.cc.o.d"
  "CMakeFiles/dcat_common.dir/stats.cc.o"
  "CMakeFiles/dcat_common.dir/stats.cc.o.d"
  "CMakeFiles/dcat_common.dir/table.cc.o"
  "CMakeFiles/dcat_common.dir/table.cc.o.d"
  "libdcat_common.a"
  "libdcat_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcat_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
