file(REMOVE_RECURSE
  "libdcat_common.a"
)
