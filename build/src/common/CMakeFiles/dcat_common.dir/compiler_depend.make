# Empty compiler generated dependencies file for dcat_common.
# This may be replaced when dependencies are built.
