file(REMOVE_RECURSE
  "libdcat_workloads.a"
)
