
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/factory.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/factory.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/factory.cc.o.d"
  "/root/repo/src/workloads/kvstore.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/kvstore.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/kvstore.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/microbench.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/microbench.cc.o.d"
  "/root/repo/src/workloads/phased.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/phased.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/phased.cc.o.d"
  "/root/repo/src/workloads/search.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/search.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/search.cc.o.d"
  "/root/repo/src/workloads/spec_suite.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/spec_suite.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/spec_suite.cc.o.d"
  "/root/repo/src/workloads/sqldb.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/sqldb.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/sqldb.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/trace.cc.o.d"
  "/root/repo/src/workloads/zipf.cc" "src/workloads/CMakeFiles/dcat_workloads.dir/zipf.cc.o" "gcc" "src/workloads/CMakeFiles/dcat_workloads.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
