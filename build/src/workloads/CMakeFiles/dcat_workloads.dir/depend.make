# Empty dependencies file for dcat_workloads.
# This may be replaced when dependencies are built.
