file(REMOVE_RECURSE
  "CMakeFiles/dcat_workloads.dir/factory.cc.o"
  "CMakeFiles/dcat_workloads.dir/factory.cc.o.d"
  "CMakeFiles/dcat_workloads.dir/kvstore.cc.o"
  "CMakeFiles/dcat_workloads.dir/kvstore.cc.o.d"
  "CMakeFiles/dcat_workloads.dir/microbench.cc.o"
  "CMakeFiles/dcat_workloads.dir/microbench.cc.o.d"
  "CMakeFiles/dcat_workloads.dir/phased.cc.o"
  "CMakeFiles/dcat_workloads.dir/phased.cc.o.d"
  "CMakeFiles/dcat_workloads.dir/search.cc.o"
  "CMakeFiles/dcat_workloads.dir/search.cc.o.d"
  "CMakeFiles/dcat_workloads.dir/spec_suite.cc.o"
  "CMakeFiles/dcat_workloads.dir/spec_suite.cc.o.d"
  "CMakeFiles/dcat_workloads.dir/sqldb.cc.o"
  "CMakeFiles/dcat_workloads.dir/sqldb.cc.o.d"
  "CMakeFiles/dcat_workloads.dir/trace.cc.o"
  "CMakeFiles/dcat_workloads.dir/trace.cc.o.d"
  "CMakeFiles/dcat_workloads.dir/zipf.cc.o"
  "CMakeFiles/dcat_workloads.dir/zipf.cc.o.d"
  "libdcat_workloads.a"
  "libdcat_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcat_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
