file(REMOVE_RECURSE
  "CMakeFiles/dcat_cluster.dir/host.cc.o"
  "CMakeFiles/dcat_cluster.dir/host.cc.o.d"
  "CMakeFiles/dcat_cluster.dir/recorder.cc.o"
  "CMakeFiles/dcat_cluster.dir/recorder.cc.o.d"
  "CMakeFiles/dcat_cluster.dir/schedule.cc.o"
  "CMakeFiles/dcat_cluster.dir/schedule.cc.o.d"
  "CMakeFiles/dcat_cluster.dir/vm.cc.o"
  "CMakeFiles/dcat_cluster.dir/vm.cc.o.d"
  "libdcat_cluster.a"
  "libdcat_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcat_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
