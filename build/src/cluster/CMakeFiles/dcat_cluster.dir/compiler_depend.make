# Empty compiler generated dependencies file for dcat_cluster.
# This may be replaced when dependencies are built.
