file(REMOVE_RECURSE
  "libdcat_cluster.a"
)
