
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/dcat_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/dcat_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/dcat_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/dcat_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/geometry.cc" "src/sim/CMakeFiles/dcat_sim.dir/geometry.cc.o" "gcc" "src/sim/CMakeFiles/dcat_sim.dir/geometry.cc.o.d"
  "/root/repo/src/sim/memory_bus.cc" "src/sim/CMakeFiles/dcat_sim.dir/memory_bus.cc.o" "gcc" "src/sim/CMakeFiles/dcat_sim.dir/memory_bus.cc.o.d"
  "/root/repo/src/sim/page_table.cc" "src/sim/CMakeFiles/dcat_sim.dir/page_table.cc.o" "gcc" "src/sim/CMakeFiles/dcat_sim.dir/page_table.cc.o.d"
  "/root/repo/src/sim/replacement.cc" "src/sim/CMakeFiles/dcat_sim.dir/replacement.cc.o" "gcc" "src/sim/CMakeFiles/dcat_sim.dir/replacement.cc.o.d"
  "/root/repo/src/sim/socket.cc" "src/sim/CMakeFiles/dcat_sim.dir/socket.cc.o" "gcc" "src/sim/CMakeFiles/dcat_sim.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
