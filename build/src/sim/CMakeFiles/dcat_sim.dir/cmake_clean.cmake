file(REMOVE_RECURSE
  "CMakeFiles/dcat_sim.dir/cache.cc.o"
  "CMakeFiles/dcat_sim.dir/cache.cc.o.d"
  "CMakeFiles/dcat_sim.dir/core.cc.o"
  "CMakeFiles/dcat_sim.dir/core.cc.o.d"
  "CMakeFiles/dcat_sim.dir/geometry.cc.o"
  "CMakeFiles/dcat_sim.dir/geometry.cc.o.d"
  "CMakeFiles/dcat_sim.dir/memory_bus.cc.o"
  "CMakeFiles/dcat_sim.dir/memory_bus.cc.o.d"
  "CMakeFiles/dcat_sim.dir/page_table.cc.o"
  "CMakeFiles/dcat_sim.dir/page_table.cc.o.d"
  "CMakeFiles/dcat_sim.dir/replacement.cc.o"
  "CMakeFiles/dcat_sim.dir/replacement.cc.o.d"
  "CMakeFiles/dcat_sim.dir/socket.cc.o"
  "CMakeFiles/dcat_sim.dir/socket.cc.o.d"
  "libdcat_sim.a"
  "libdcat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
