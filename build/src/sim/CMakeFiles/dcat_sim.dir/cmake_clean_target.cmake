file(REMOVE_RECURSE
  "libdcat_sim.a"
)
