# Empty dependencies file for dcat_sim.
# This may be replaced when dependencies are built.
