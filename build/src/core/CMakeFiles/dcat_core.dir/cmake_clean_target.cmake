file(REMOVE_RECURSE
  "libdcat_core.a"
)
