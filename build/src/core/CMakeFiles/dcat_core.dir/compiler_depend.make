# Empty compiler generated dependencies file for dcat_core.
# This may be replaced when dependencies are built.
