
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cc" "src/core/CMakeFiles/dcat_core.dir/allocator.cc.o" "gcc" "src/core/CMakeFiles/dcat_core.dir/allocator.cc.o.d"
  "/root/repo/src/core/baseline_managers.cc" "src/core/CMakeFiles/dcat_core.dir/baseline_managers.cc.o" "gcc" "src/core/CMakeFiles/dcat_core.dir/baseline_managers.cc.o.d"
  "/root/repo/src/core/category.cc" "src/core/CMakeFiles/dcat_core.dir/category.cc.o" "gcc" "src/core/CMakeFiles/dcat_core.dir/category.cc.o.d"
  "/root/repo/src/core/config_io.cc" "src/core/CMakeFiles/dcat_core.dir/config_io.cc.o" "gcc" "src/core/CMakeFiles/dcat_core.dir/config_io.cc.o.d"
  "/root/repo/src/core/dcat_controller.cc" "src/core/CMakeFiles/dcat_core.dir/dcat_controller.cc.o" "gcc" "src/core/CMakeFiles/dcat_core.dir/dcat_controller.cc.o.d"
  "/root/repo/src/core/performance_table.cc" "src/core/CMakeFiles/dcat_core.dir/performance_table.cc.o" "gcc" "src/core/CMakeFiles/dcat_core.dir/performance_table.cc.o.d"
  "/root/repo/src/core/phase_detector.cc" "src/core/CMakeFiles/dcat_core.dir/phase_detector.cc.o" "gcc" "src/core/CMakeFiles/dcat_core.dir/phase_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pqos/CMakeFiles/dcat_pqos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
