src/core/CMakeFiles/dcat_core.dir/category.cc.o: \
 /root/repo/src/core/category.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/category.h
