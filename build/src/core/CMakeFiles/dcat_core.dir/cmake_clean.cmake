file(REMOVE_RECURSE
  "CMakeFiles/dcat_core.dir/allocator.cc.o"
  "CMakeFiles/dcat_core.dir/allocator.cc.o.d"
  "CMakeFiles/dcat_core.dir/baseline_managers.cc.o"
  "CMakeFiles/dcat_core.dir/baseline_managers.cc.o.d"
  "CMakeFiles/dcat_core.dir/category.cc.o"
  "CMakeFiles/dcat_core.dir/category.cc.o.d"
  "CMakeFiles/dcat_core.dir/config_io.cc.o"
  "CMakeFiles/dcat_core.dir/config_io.cc.o.d"
  "CMakeFiles/dcat_core.dir/dcat_controller.cc.o"
  "CMakeFiles/dcat_core.dir/dcat_controller.cc.o.d"
  "CMakeFiles/dcat_core.dir/performance_table.cc.o"
  "CMakeFiles/dcat_core.dir/performance_table.cc.o.d"
  "CMakeFiles/dcat_core.dir/phase_detector.cc.o"
  "CMakeFiles/dcat_core.dir/phase_detector.cc.o.d"
  "libdcat_core.a"
  "libdcat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
