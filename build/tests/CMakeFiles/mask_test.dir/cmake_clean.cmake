file(REMOVE_RECURSE
  "CMakeFiles/mask_test.dir/pqos/mask_test.cc.o"
  "CMakeFiles/mask_test.dir/pqos/mask_test.cc.o.d"
  "mask_test"
  "mask_test.pdb"
  "mask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
