# Empty dependencies file for mask_test.
# This may be replaced when dependencies are built.
