file(REMOVE_RECURSE
  "CMakeFiles/resctrl_pqos_test.dir/pqos/resctrl_pqos_test.cc.o"
  "CMakeFiles/resctrl_pqos_test.dir/pqos/resctrl_pqos_test.cc.o.d"
  "resctrl_pqos_test"
  "resctrl_pqos_test.pdb"
  "resctrl_pqos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resctrl_pqos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
