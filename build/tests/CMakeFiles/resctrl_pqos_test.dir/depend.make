# Empty dependencies file for resctrl_pqos_test.
# This may be replaced when dependencies are built.
