# Empty dependencies file for spec_suite_test.
# This may be replaced when dependencies are built.
