file(REMOVE_RECURSE
  "CMakeFiles/spec_suite_test.dir/workloads/spec_suite_test.cc.o"
  "CMakeFiles/spec_suite_test.dir/workloads/spec_suite_test.cc.o.d"
  "spec_suite_test"
  "spec_suite_test.pdb"
  "spec_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
