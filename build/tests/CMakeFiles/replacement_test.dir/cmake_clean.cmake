file(REMOVE_RECURSE
  "CMakeFiles/replacement_test.dir/sim/replacement_test.cc.o"
  "CMakeFiles/replacement_test.dir/sim/replacement_test.cc.o.d"
  "replacement_test"
  "replacement_test.pdb"
  "replacement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replacement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
