# Empty compiler generated dependencies file for vm_host_test.
# This may be replaced when dependencies are built.
