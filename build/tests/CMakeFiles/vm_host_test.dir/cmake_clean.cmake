file(REMOVE_RECURSE
  "CMakeFiles/vm_host_test.dir/cluster/vm_host_test.cc.o"
  "CMakeFiles/vm_host_test.dir/cluster/vm_host_test.cc.o.d"
  "vm_host_test"
  "vm_host_test.pdb"
  "vm_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
