# Empty compiler generated dependencies file for memory_bus_test.
# This may be replaced when dependencies are built.
