file(REMOVE_RECURSE
  "CMakeFiles/memory_bus_test.dir/sim/memory_bus_test.cc.o"
  "CMakeFiles/memory_bus_test.dir/sim/memory_bus_test.cc.o.d"
  "memory_bus_test"
  "memory_bus_test.pdb"
  "memory_bus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
