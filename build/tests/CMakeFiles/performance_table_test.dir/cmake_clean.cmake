file(REMOVE_RECURSE
  "CMakeFiles/performance_table_test.dir/core/performance_table_test.cc.o"
  "CMakeFiles/performance_table_test.dir/core/performance_table_test.cc.o.d"
  "performance_table_test"
  "performance_table_test.pdb"
  "performance_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
