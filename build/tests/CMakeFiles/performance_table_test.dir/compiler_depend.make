# Empty compiler generated dependencies file for performance_table_test.
# This may be replaced when dependencies are built.
