# Empty dependencies file for recorder_test.
# This may be replaced when dependencies are built.
