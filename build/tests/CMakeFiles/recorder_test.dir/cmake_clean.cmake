file(REMOVE_RECURSE
  "CMakeFiles/recorder_test.dir/cluster/recorder_test.cc.o"
  "CMakeFiles/recorder_test.dir/cluster/recorder_test.cc.o.d"
  "recorder_test"
  "recorder_test.pdb"
  "recorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
