# Empty dependencies file for cache_property_test.
# This may be replaced when dependencies are built.
