file(REMOVE_RECURSE
  "CMakeFiles/cache_property_test.dir/sim/cache_property_test.cc.o"
  "CMakeFiles/cache_property_test.dir/sim/cache_property_test.cc.o.d"
  "cache_property_test"
  "cache_property_test.pdb"
  "cache_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
