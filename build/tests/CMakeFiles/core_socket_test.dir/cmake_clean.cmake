file(REMOVE_RECURSE
  "CMakeFiles/core_socket_test.dir/sim/core_socket_test.cc.o"
  "CMakeFiles/core_socket_test.dir/sim/core_socket_test.cc.o.d"
  "core_socket_test"
  "core_socket_test.pdb"
  "core_socket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_socket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
