# Empty compiler generated dependencies file for core_socket_test.
# This may be replaced when dependencies are built.
