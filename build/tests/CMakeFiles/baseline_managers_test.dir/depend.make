# Empty dependencies file for baseline_managers_test.
# This may be replaced when dependencies are built.
