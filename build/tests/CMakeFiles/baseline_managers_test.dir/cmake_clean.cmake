file(REMOVE_RECURSE
  "CMakeFiles/baseline_managers_test.dir/core/baseline_managers_test.cc.o"
  "CMakeFiles/baseline_managers_test.dir/core/baseline_managers_test.cc.o.d"
  "baseline_managers_test"
  "baseline_managers_test.pdb"
  "baseline_managers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_managers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
