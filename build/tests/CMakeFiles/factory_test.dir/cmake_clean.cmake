file(REMOVE_RECURSE
  "CMakeFiles/factory_test.dir/workloads/factory_test.cc.o"
  "CMakeFiles/factory_test.dir/workloads/factory_test.cc.o.d"
  "factory_test"
  "factory_test.pdb"
  "factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
