file(REMOVE_RECURSE
  "CMakeFiles/dcat_controller_test.dir/core/dcat_controller_test.cc.o"
  "CMakeFiles/dcat_controller_test.dir/core/dcat_controller_test.cc.o.d"
  "dcat_controller_test"
  "dcat_controller_test.pdb"
  "dcat_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcat_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
