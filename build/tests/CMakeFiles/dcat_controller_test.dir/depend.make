# Empty dependencies file for dcat_controller_test.
# This may be replaced when dependencies are built.
