# Empty dependencies file for phase_detector_test.
# This may be replaced when dependencies are built.
