file(REMOVE_RECURSE
  "CMakeFiles/phase_detector_test.dir/core/phase_detector_test.cc.o"
  "CMakeFiles/phase_detector_test.dir/core/phase_detector_test.cc.o.d"
  "phase_detector_test"
  "phase_detector_test.pdb"
  "phase_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
