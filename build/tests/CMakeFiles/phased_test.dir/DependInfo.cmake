
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/phased_test.cc" "tests/CMakeFiles/phased_test.dir/workloads/phased_test.cc.o" "gcc" "tests/CMakeFiles/phased_test.dir/workloads/phased_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/dcat_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dcat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pqos/CMakeFiles/dcat_pqos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
