file(REMOVE_RECURSE
  "CMakeFiles/phased_test.dir/workloads/phased_test.cc.o"
  "CMakeFiles/phased_test.dir/workloads/phased_test.cc.o.d"
  "phased_test"
  "phased_test.pdb"
  "phased_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phased_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
