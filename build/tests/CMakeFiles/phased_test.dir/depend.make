# Empty dependencies file for phased_test.
# This may be replaced when dependencies are built.
