file(REMOVE_RECURSE
  "CMakeFiles/config_io_test.dir/core/config_io_test.cc.o"
  "CMakeFiles/config_io_test.dir/core/config_io_test.cc.o.d"
  "config_io_test"
  "config_io_test.pdb"
  "config_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
