# Empty dependencies file for dcatd_cli_test.
# This may be replaced when dependencies are built.
