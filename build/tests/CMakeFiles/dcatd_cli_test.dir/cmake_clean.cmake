file(REMOVE_RECURSE
  "CMakeFiles/dcatd_cli_test.dir/tools/dcatd_cli_test.cc.o"
  "CMakeFiles/dcatd_cli_test.dir/tools/dcatd_cli_test.cc.o.d"
  "dcatd_cli_test"
  "dcatd_cli_test.pdb"
  "dcatd_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatd_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
