file(REMOVE_RECURSE
  "CMakeFiles/sim_pqos_test.dir/pqos/sim_pqos_test.cc.o"
  "CMakeFiles/sim_pqos_test.dir/pqos/sim_pqos_test.cc.o.d"
  "sim_pqos_test"
  "sim_pqos_test.pdb"
  "sim_pqos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pqos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
