# Empty dependencies file for sim_pqos_test.
# This may be replaced when dependencies are built.
