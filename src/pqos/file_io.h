// Injectable file-I/O seam for the resctrl backend.
//
// ResctrlPqos drives the kernel through sysfs nodes; every one of those
// reads and writes goes through this interface so tests can interpose a
// fault-injecting decorator (FaultyFs, src/faults/faulty_fs.h) between the
// backend and the tree, the same way FaultyPqos interposes on the
// control-plane interface. The status vocabulary is deliberately small:
//
//   kOk        the operation completed
//   kNotFound  the path does not exist (a vanished or never-created node)
//   kRetry     transient EINTR-style failure; the same call is safe to
//              retry immediately and is expected to eventually succeed
//   kError     open/read/write failure (including partial writes: callers
//              must assume an unknown prefix of the content landed)
//
// RealFileIo is the production implementation over std::filesystem and
// fstreams; DefaultFileIo() returns a process-wide instance so callers
// that do not inject anything pay no setup cost.
#ifndef SRC_PQOS_FILE_IO_H_
#define SRC_PQOS_FILE_IO_H_

#include <string>

namespace dcat {

enum class FileIoStatus {
  kOk,
  kNotFound,
  kRetry,
  kError,
};

const char* FileIoStatusName(FileIoStatus status);

class FileIo {
 public:
  virtual ~FileIo() = default;

  // Reads the whole file into *out (untrimmed). *out is only valid on kOk.
  virtual FileIoStatus Read(const std::string& path, std::string* out) const = 0;

  // Replaces the file's content. On kError an arbitrary prefix of
  // `content` may have landed (torn write); callers that need atomicity
  // must verify by reading back.
  virtual FileIoStatus Write(const std::string& path, const std::string& content) = 0;

  // Creates the directory and any missing parents (no error when it
  // already exists, matching mkdir -p).
  virtual FileIoStatus CreateDirs(const std::string& path) = 0;

  virtual bool IsDir(const std::string& path) const = 0;
};

class RealFileIo : public FileIo {
 public:
  FileIoStatus Read(const std::string& path, std::string* out) const override;
  FileIoStatus Write(const std::string& path, const std::string& content) override;
  FileIoStatus CreateDirs(const std::string& path) override;
  bool IsDir(const std::string& path) const override;
};

// Shared production instance (RealFileIo is stateless).
FileIo* DefaultFileIo();

}  // namespace dcat

#endif  // SRC_PQOS_FILE_IO_H_
