// pqos backend driving the socket simulator.
#ifndef SRC_PQOS_SIM_PQOS_H_
#define SRC_PQOS_SIM_PQOS_H_

#include <cstdint>

#include "src/pqos/pqos.h"
#include "src/sim/socket.h"

namespace dcat {

// Implements the CAT, MBA and monitoring interfaces against a sim::Socket.
// Mask validation (contiguity, bounds) happens here, exactly where the real
// pqos library enforces it, so the simulator below stays permissive.
class SimPqos : public CatController, public MbaController, public MonitoringProvider {
 public:
  explicit SimPqos(Socket* socket) : socket_(socket) {}

  // CatController:
  uint32_t NumWays() const override { return socket_->num_ways(); }
  uint8_t NumCos() const override { return socket_->num_cos(); }
  uint16_t NumCores() const override { return socket_->num_cores(); }
  uint64_t WayCapacityBytes() const override {
    return socket_->config().llc_geometry.WayCapacityBytes();
  }
  PqosStatus SetCosMask(uint8_t cos, uint32_t mask) override;
  // Atomic batch: the whole update list is validated before the socket is
  // touched, so a malformed batch programs nothing (applied == 0) and a
  // valid one lands in full — the partial-failure window per-COS writes
  // leave open does not exist on this backend.
  PqosStatus ApplyMaskBatch(const std::vector<CosMaskUpdate>& updates,
                            size_t* applied) override;
  uint32_t GetCosMask(uint8_t cos) const override;
  PqosStatus AssociateCore(uint16_t core, uint8_t cos) override;
  uint8_t GetCoreAssociation(uint16_t core) const override;

  // MbaController:
  PqosStatus SetMbaThrottle(uint8_t cos, uint32_t percent) override;
  uint32_t GetMbaThrottle(uint8_t cos) const override;

  // MonitoringProvider:
  PerfCounterBlock ReadCounters(uint16_t core) const override;
  uint64_t LlcOccupancyBytes(uint8_t cos) const override;
  uint64_t MemoryBandwidthBytes(uint8_t cos) const override;

 private:
  Socket* socket_;  // not owned
};

}  // namespace dcat

#endif  // SRC_PQOS_SIM_PQOS_H_
