#include "src/pqos/resctrl_pqos.h"

#include <sstream>

#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/pqos/mask.h"

namespace dcat {
namespace {

// Bounded retry budget for EINTR-style kRetry statuses. Larger than any
// retry burst the fault profiles produce, small enough to bound a tick.
constexpr int kMaxIoAttempts = 4;

// sysfs nodes end in a newline; common/strings.h Trim leaves '\n' alone.
std::string TrimNode(const std::string& text) {
  const size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  const size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

// Strict parse of a cpus_list node: "", "4", "4,5", "0-17" and
// combinations ("0-3,7"). Rejects anything else.
bool ParseCpusList(const std::string& text, std::vector<uint16_t>* cores) {
  cores->clear();
  if (text.empty()) {
    return true;
  }
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const size_t dash = token.find('-');
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (dash == std::string::npos) {
      if (!ParseUint32(token, &lo)) {
        return false;
      }
      hi = lo;
    } else {
      if (!ParseUint32(token.substr(0, dash), &lo) ||
          !ParseUint32(token.substr(dash + 1), &hi) || hi < lo) {
        return false;
      }
    }
    if (hi > 0xffff) {
      return false;
    }
    for (uint32_t core = lo; core <= hi; ++core) {
      cores->push_back(static_cast<uint16_t>(core));
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return true;
}

}  // namespace

ResctrlPqos::ResctrlPqos(std::string root, uint16_t num_cores, FileIo* io)
    : root_(std::move(root)), num_cores_(num_cores), io_(io != nullptr ? io : DefaultFileIo()) {}

FileIoStatus ResctrlPqos::ReadWithRetry(const std::string& path, std::string* out) const {
  FileIoStatus status = FileIoStatus::kError;
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    status = io_->Read(path, out);
    if (status != FileIoStatus::kRetry) {
      return status;
    }
    ++io_stats_.retries;
  }
  return FileIoStatus::kError;
}

FileIoStatus ResctrlPqos::WriteWithRetry(const std::string& path, const std::string& content) {
  FileIoStatus status = FileIoStatus::kError;
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    status = io_->Write(path, content);
    if (status != FileIoStatus::kRetry) {
      return status;
    }
    ++io_stats_.retries;
  }
  return FileIoStatus::kError;
}

FileIoStatus ResctrlPqos::ReadFileTrimmed(const std::string& path, std::string* out) const {
  std::string text;
  const FileIoStatus status = ReadWithRetry(path, &text);
  if (status != FileIoStatus::kOk) {
    return status;
  }
  *out = TrimNode(text);
  return FileIoStatus::kOk;
}

bool ResctrlPqos::Initialize() {
  std::string cbm_text;
  std::string closids_text;
  if (ReadFileTrimmed(root_ + "/info/L3/cbm_mask", &cbm_text) != FileIoStatus::kOk ||
      ReadFileTrimmed(root_ + "/info/L3/num_closids", &closids_text) != FileIoStatus::kOk) {
    DCAT_LOG(kWarning) << "resctrl tree not found under " << root_;
    return false;
  }
  const auto cbm = ParseMaskHex(cbm_text);
  if (!cbm.has_value() || !IsContiguousMask(*cbm)) {
    DCAT_LOG(kWarning) << "resctrl: malformed cbm_mask '" << cbm_text << "'";
    return false;
  }
  full_mask_ = *cbm;
  num_ways_ = static_cast<uint32_t>(MaskWays(*cbm));
  uint32_t closids = 0;
  if (!ParseUint32(closids_text, &closids) || closids < 1 || closids > 255) {
    DCAT_LOG(kWarning) << "resctrl: malformed num_closids '" << closids_text << "'";
    return false;
  }
  num_cos_ = static_cast<uint8_t>(closids);

  // Optional: LLC size for way capacity (info/L3/cache_size is not standard
  // resctrl). Absent is fine; present-but-garbage is a malformed tree.
  std::string size_text;
  const FileIoStatus size_status = ReadFileTrimmed(root_ + "/info/L3/cache_size", &size_text);
  if (size_status == FileIoStatus::kOk) {
    uint64_t cache_size = 0;
    if (!ParseUint64(size_text, &cache_size)) {
      DCAT_LOG(kWarning) << "resctrl: malformed cache_size '" << size_text << "'";
      return false;
    }
    way_capacity_bytes_ = cache_size / num_ways_;
  } else if (size_status != FileIoStatus::kNotFound) {
    DCAT_LOG(kWarning) << "resctrl: cannot read cache_size";
    return false;
  }

  masks_.assign(num_cos_, *cbm);
  mba_percent_.assign(num_cos_, 100);
  core_assoc_.assign(num_cores_, 0);

  // MBA capability: the kernel exposes info/MB when the hardware has it.
  std::string mba_min;
  mba_supported_ = ReadFileTrimmed(root_ + "/info/MB/min_bandwidth", &mba_min) == FileIoStatus::kOk ||
                   io_->IsDir(root_ + "/info/MB");

  // COS 0 is the resctrl root group; create directories for the rest.
  for (uint8_t cos = 1; cos < num_cos_; ++cos) {
    if (io_->CreateDirs(GroupDir(cos)) != FileIoStatus::kOk) {
      DCAT_LOG(kWarning) << "resctrl: cannot create group for COS " << static_cast<int>(cos);
      return false;
    }
  }

  // Adopt core associations from whatever the tree already holds. A group
  // list that fails to parse contributes nothing here and is repaired below.
  for (uint8_t cos = 1; cos < num_cos_; ++cos) {
    std::string list_text;
    if (ReadFileTrimmed(GroupDir(cos) + "/cpus_list", &list_text) != FileIoStatus::kOk) {
      continue;
    }
    std::vector<uint16_t> cores;
    if (!ParseCpusList(list_text, &cores)) {
      continue;
    }
    for (const uint16_t core : cores) {
      if (core < num_cores_) {
        core_assoc_[core] = cos;  // later groups win a double-claimed core
      }
    }
  }

  // Adopt or repair each group's nodes so a controller restarted against a
  // half-written tree ends with cache == tree.
  for (uint8_t cos = 0; cos < num_cos_; ++cos) {
    if (!AdoptOrRepairGroup(cos)) {
      DCAT_LOG(kWarning) << "resctrl: cannot repair group for COS " << static_cast<int>(cos);
      return false;
    }
  }

  initialized_ = true;
  DCAT_LOG(kInfo) << "resctrl backend: " << static_cast<int>(num_cos_) << " COS, " << num_ways_
                  << " ways" << (io_stats_.repaired_nodes > 0
                                     ? " (" + std::to_string(io_stats_.repaired_nodes) +
                                           " nodes repaired)"
                                     : "");
  return true;
}

bool ResctrlPqos::AdoptOrRepairGroup(uint8_t cos) {
  const std::string schemata_path = GroupDir(cos) + "/schemata";
  std::string text;
  bool need_repair = true;
  if (ReadFileTrimmed(schemata_path, &text) == FileIoStatus::kOk) {
    uint32_t mask = 0;
    std::optional<uint32_t> percent;
    if (ParseSchemataText(text, &mask, &percent)) {
      if (mask != 0 && IsContiguousMask(mask) && (mask & ~full_mask_) == 0) {
        masks_[cos] = mask;
      }
      if (mba_supported_ && percent.has_value() && *percent >= 10 && *percent <= 100) {
        mba_percent_[cos] = *percent;
      }
      need_repair = text != TrimNode(ComposeSchemata(masks_[cos], mba_percent_[cos]));
    }
  }
  if (need_repair) {
    ++io_stats_.repaired_nodes;
    if (WriteWithRetry(schemata_path, ComposeSchemata(masks_[cos], mba_percent_[cos])) !=
        FileIoStatus::kOk) {
      return false;
    }
  }

  if (cos == 0) {
    // The root's cpus_list is kernel-maintained (everything unclaimed lives
    // there); adopting group lists above is what defines core_assoc_.
    return true;
  }
  const std::string cpus_path = GroupDir(cos) + "/cpus_list";
  const std::string expected = ComposeCpusList(cos);
  std::string list_text;
  const FileIoStatus status = ReadFileTrimmed(cpus_path, &list_text);
  if (status != FileIoStatus::kOk || list_text != TrimNode(expected)) {
    if (status == FileIoStatus::kOk) {
      ++io_stats_.repaired_nodes;
    }
    if (WriteWithRetry(cpus_path, expected) != FileIoStatus::kOk) {
      return false;
    }
  }
  return true;
}

std::string ResctrlPqos::GroupDir(uint8_t cos) const {
  if (cos == 0) {
    return root_;
  }
  std::ostringstream dir;
  dir << root_ << "/dcat_cos" << static_cast<int>(cos);
  return dir.str();
}

std::string ResctrlPqos::ComposeSchemata(uint32_t mask, uint32_t mba_percent) const {
  // One L3 domain assumed (single-socket management, like the paper). When
  // the platform has MBA, the schemata file carries both resources.
  std::string content = "L3:0=" + MaskToHex(mask) + "\n";
  if (mba_supported_) {
    content += "MB:0=" + std::to_string(mba_percent) + "\n";
  }
  return content;
}

bool ResctrlPqos::ParseSchemataText(const std::string& text, uint32_t* mask,
                                    std::optional<uint32_t>* mba_percent) const {
  *mba_percent = std::nullopt;
  bool saw_l3 = false;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string line =
        TrimNode(text.substr(pos, eol == std::string::npos ? std::string::npos : eol - pos));
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty()) {
      continue;
    }
    if (line.rfind("L3:0=", 0) == 0) {
      const auto parsed = ParseMaskHex(line.substr(5));
      if (!parsed.has_value() || saw_l3) {
        return false;
      }
      *mask = *parsed;
      saw_l3 = true;
    } else if (line.rfind("MB:0=", 0) == 0) {
      uint32_t percent = 0;
      if (!ParseUint32(line.substr(5), &percent) || mba_percent->has_value()) {
        return false;
      }
      *mba_percent = percent;
    } else {
      return false;
    }
  }
  return saw_l3;
}

PqosStatus ResctrlPqos::ProgramSchemata(uint8_t cos, uint32_t mask, uint32_t mba_percent) {
  const std::string path = GroupDir(cos) + "/schemata";
  // The caches hold the last *verified* content, so the rollback text can be
  // composed without trusting a pre-write read.
  const std::string previous = ComposeSchemata(masks_.at(cos), mba_percent_.at(cos));
  const std::string desired = ComposeSchemata(mask, mba_percent);

  bool ok = WriteWithRetry(path, desired) == FileIoStatus::kOk;
  if (ok) {
    // Read-back verification: only a write whose content survives a re-read
    // is believed. This is what turns a silent partial write into a visible
    // failure the controller's retry/reconcile loop can repair.
    std::string back;
    if (ReadFileTrimmed(path, &back) != FileIoStatus::kOk) {
      ++io_stats_.read_errors;
      ok = false;
    } else {
      uint32_t got_mask = 0;
      std::optional<uint32_t> got_percent;
      if (!ParseSchemataText(back, &got_mask, &got_percent)) {
        ++io_stats_.parse_errors;
        ++io_stats_.readback_mismatches;
        ok = false;
      } else if (got_mask != mask ||
                 (mba_supported_ && got_percent.value_or(0) != mba_percent)) {
        ++io_stats_.readback_mismatches;
        ok = false;
      }
    }
  }
  if (!ok) {
    // The write may have torn (a prefix landed before the failure); restore
    // the previous content so tree and caches agree again. A failed restore
    // is a real tree/cache divergence and is counted as such.
    ++io_stats_.rollbacks;
    if (WriteWithRetry(path, previous) != FileIoStatus::kOk) {
      ++io_stats_.rollback_failures;
    }
    return PqosStatus::kIoError;
  }
  return PqosStatus::kOk;
}

PqosStatus ResctrlPqos::SetMbaThrottle(uint8_t cos, uint32_t percent) {
  if (!initialized_ || cos >= num_cos_) {
    return last_status_ = PqosStatus::kOutOfRange;
  }
  if (!mba_supported_) {
    return last_status_ = PqosStatus::kUnsupported;
  }
  if (percent < 10 || percent > 100) {
    return last_status_ = PqosStatus::kInvalidMask;
  }
  const PqosStatus status = ProgramSchemata(cos, masks_.at(cos), percent);
  if (status == PqosStatus::kOk) {
    mba_percent_.at(cos) = percent;
  }
  return last_status_ = status;
}

uint32_t ResctrlPqos::GetMbaThrottle(uint8_t cos) const {
  if (cos >= mba_percent_.size()) {
    return 100;
  }
  return mba_percent_[cos];
}

PqosStatus ResctrlPqos::ReadMonitorNode(uint8_t cos, const char* node, uint64_t* value) const {
  *value = 0;
  std::string text;
  const FileIoStatus status =
      ReadFileTrimmed(GroupDir(cos) + "/mon_data/mon_L3_00/" + node, &text);
  if (status == FileIoStatus::kNotFound) {
    return PqosStatus::kUnsupported;
  }
  if (status != FileIoStatus::kOk) {
    ++io_stats_.read_errors;
    return PqosStatus::kIoError;
  }
  if (!ParseUint64(text, value)) {
    ++io_stats_.parse_errors;
    *value = 0;
    return PqosStatus::kIoError;
  }
  return PqosStatus::kOk;
}

PqosStatus ResctrlPqos::ReadLlcOccupancy(uint8_t cos, uint64_t* bytes) const {
  return ReadMonitorNode(cos, "llc_occupancy", bytes);
}

PqosStatus ResctrlPqos::ReadMemoryBandwidth(uint8_t cos, uint64_t* bytes) const {
  return ReadMonitorNode(cos, "mbm_total_bytes", bytes);
}

uint64_t ResctrlPqos::LlcOccupancyBytes(uint8_t cos) const {
  uint64_t bytes = 0;
  (void)ReadLlcOccupancy(cos, &bytes);
  return bytes;
}

uint64_t ResctrlPqos::MemoryBandwidthBytes(uint8_t cos) const {
  uint64_t bytes = 0;
  (void)ReadMemoryBandwidth(cos, &bytes);
  return bytes;
}

std::string ResctrlPqos::ComposeCpusList(uint8_t cos) const {
  std::ostringstream list;
  bool first = true;
  for (uint16_t core = 0; core < num_cores_; ++core) {
    if (core_assoc_[core] == cos) {
      if (!first) {
        list << ",";
      }
      list << core;
      first = false;
    }
  }
  list << "\n";
  return list.str();
}

PqosStatus ResctrlPqos::WriteCpusList(uint8_t cos) {
  // resctrl semantics: writing a group's cpus_list claims those cores (they
  // leave their previous group automatically). We rewrite the full list for
  // the group each time.
  const std::string path = GroupDir(cos) + "/cpus_list";
  const std::string desired = ComposeCpusList(cos);

  // Capture the pre-write content for rollback. If the node cannot be read
  // (and is not simply absent), a later rollback is flying blind — treat a
  // restore in that state as a divergence.
  std::string previous;
  const FileIoStatus pre = ReadWithRetry(path, &previous);
  const bool previous_known = pre == FileIoStatus::kOk || pre == FileIoStatus::kNotFound;
  if (pre != FileIoStatus::kOk) {
    previous = "\n";
  }

  bool ok = WriteWithRetry(path, desired) == FileIoStatus::kOk;
  if (ok) {
    std::string back;
    if (ReadFileTrimmed(path, &back) != FileIoStatus::kOk) {
      ++io_stats_.read_errors;
      ok = false;
    } else if (back != TrimNode(desired)) {
      ++io_stats_.readback_mismatches;
      ok = false;
    }
  }
  if (!ok) {
    ++io_stats_.rollbacks;
    if (WriteWithRetry(path, previous) != FileIoStatus::kOk || !previous_known) {
      ++io_stats_.rollback_failures;
    }
    return PqosStatus::kIoError;
  }
  return PqosStatus::kOk;
}

PqosStatus ResctrlPqos::SetCosMask(uint8_t cos, uint32_t mask) {
  if (!initialized_ || cos >= num_cos_) {
    return last_status_ = PqosStatus::kOutOfRange;
  }
  if (!IsContiguousMask(mask) || (mask & ~MakeWayMask(0, num_ways_)) != 0) {
    return last_status_ = PqosStatus::kInvalidMask;
  }
  const PqosStatus status = ProgramSchemata(cos, mask, mba_percent_.at(cos));
  if (status == PqosStatus::kOk) {
    masks_[cos] = mask;
  }
  return last_status_ = status;
}

PqosStatus ResctrlPqos::ApplyMaskBatch(const std::vector<CosMaskUpdate>& updates,
                                       size_t* applied) {
  if (applied != nullptr) {
    *applied = 0;
  }
  if (!initialized_) {
    return last_status_ = PqosStatus::kOutOfRange;
  }
  // Validate everything up front: a batch with a malformed element performs
  // zero writes instead of stopping partway through the tree.
  for (const CosMaskUpdate& u : updates) {
    if (u.cos >= num_cos_) {
      return last_status_ = PqosStatus::kOutOfRange;
    }
    if (!IsContiguousMask(u.mask) || (u.mask & ~MakeWayMask(0, num_ways_)) != 0) {
      return last_status_ = PqosStatus::kInvalidMask;
    }
  }
  size_t done = 0;
  for (const CosMaskUpdate& u : updates) {
    const PqosStatus status = ProgramSchemata(u.cos, u.mask, mba_percent_.at(u.cos));
    if (status != PqosStatus::kOk) {
      // ProgramSchemata restored the failing node, so the caches equal the
      // tree: exactly the landed prefix is in effect.
      if (applied != nullptr) {
        *applied = done;
      }
      return last_status_ = status;
    }
    masks_[u.cos] = u.mask;
    ++done;
  }
  if (applied != nullptr) {
    *applied = done;
  }
  return last_status_ = PqosStatus::kOk;
}

uint32_t ResctrlPqos::GetCosMask(uint8_t cos) const {
  if (cos >= masks_.size()) {
    return 0;
  }
  return masks_[cos];
}

PqosStatus ResctrlPqos::AssociateCore(uint16_t core, uint8_t cos) {
  if (!initialized_ || core >= num_cores_ || cos >= num_cos_) {
    return last_status_ = PqosStatus::kOutOfRange;
  }
  const uint8_t previous = core_assoc_[core];
  core_assoc_[core] = cos;
  PqosStatus status = WriteCpusList(cos);
  if (status != PqosStatus::kOk) {
    // WriteCpusList already restored the node; only memory needs reverting.
    core_assoc_[core] = previous;
    return last_status_ = status;
  }
  if (previous != cos) {
    status = WriteCpusList(previous);
    if (status != PqosStatus::kOk) {
      // The new group's list was already written with the core in it; undo
      // that write too, or the tree keeps a double-claimed core the caches
      // know nothing about. A failed undo is a counted divergence.
      core_assoc_[core] = previous;
      if (WriteCpusList(cos) != PqosStatus::kOk) {
        ++io_stats_.rollback_failures;
      }
    }
  }
  return last_status_ = status;
}

uint8_t ResctrlPqos::GetCoreAssociation(uint16_t core) const {
  if (core >= core_assoc_.size()) {
    return 0;
  }
  return core_assoc_[core];
}

PerfCounterBlock ResctrlPqos::ReadCounters(uint16_t core) const {
  // resctrl exposes no IPC/L1 events; a perf_event provider would supply
  // them on real hardware. Returning zeros keeps the interface total.
  (void)core;
  return PerfCounterBlock{};
}

}  // namespace dcat
