#include "src/pqos/resctrl_pqos.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/log.h"
#include "src/pqos/mask.h"

namespace dcat {
namespace fs = std::filesystem;

ResctrlPqos::ResctrlPqos(std::string root, uint16_t num_cores)
    : root_(std::move(root)), num_cores_(num_cores) {}

bool ResctrlPqos::ReadFileTrimmed(const std::string& path, std::string* out) const {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  while (!text.empty() && (text.back() == '\n' || text.back() == ' ' || text.back() == '\r')) {
    text.pop_back();
  }
  *out = std::move(text);
  return true;
}

bool ResctrlPqos::WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << content;
  out.flush();
  return static_cast<bool>(out);
}

bool ResctrlPqos::Initialize() {
  std::string cbm_text;
  std::string closids_text;
  if (!ReadFileTrimmed(root_ + "/info/L3/cbm_mask", &cbm_text) ||
      !ReadFileTrimmed(root_ + "/info/L3/num_closids", &closids_text)) {
    DCAT_LOG(kWarning) << "resctrl tree not found under " << root_;
    return false;
  }
  const auto cbm = ParseMaskHex(cbm_text);
  if (!cbm.has_value() || !IsContiguousMask(*cbm)) {
    DCAT_LOG(kWarning) << "resctrl: malformed cbm_mask '" << cbm_text << "'";
    return false;
  }
  num_ways_ = static_cast<uint32_t>(MaskWays(*cbm));
  const long closids = std::strtol(closids_text.c_str(), nullptr, 10);
  if (closids < 1 || closids > 255) {
    DCAT_LOG(kWarning) << "resctrl: malformed num_closids '" << closids_text << "'";
    return false;
  }
  num_cos_ = static_cast<uint8_t>(closids);

  // Optional: LLC size for way capacity (info/L3/cache_size is not standard
  // resctrl; fall back to mon scale or leave 0).
  std::string size_text;
  if (ReadFileTrimmed(root_ + "/info/L3/cache_size", &size_text)) {
    way_capacity_bytes_ = std::strtoull(size_text.c_str(), nullptr, 10) / num_ways_;
  }

  masks_.assign(num_cos_, *cbm);
  mba_percent_.assign(num_cos_, 100);
  core_assoc_.assign(num_cores_, 0);

  // MBA capability: the kernel exposes info/MB when the hardware has it.
  std::string mba_min;
  mba_supported_ = ReadFileTrimmed(root_ + "/info/MB/min_bandwidth", &mba_min) ||
                   std::filesystem::is_directory(root_ + "/info/MB");

  // COS 0 is the resctrl root group; create directories for the rest.
  std::error_code ec;
  for (uint8_t cos = 1; cos < num_cos_; ++cos) {
    fs::create_directories(GroupDir(cos), ec);
    if (ec) {
      DCAT_LOG(kWarning) << "resctrl: cannot create group for COS " << static_cast<int>(cos)
                         << ": " << ec.message();
      return false;
    }
  }
  initialized_ = true;
  DCAT_LOG(kInfo) << "resctrl backend: " << static_cast<int>(num_cos_) << " COS, " << num_ways_
                  << " ways";
  return true;
}

std::string ResctrlPqos::GroupDir(uint8_t cos) const {
  if (cos == 0) {
    return root_;
  }
  std::ostringstream dir;
  dir << root_ << "/dcat_cos" << static_cast<int>(cos);
  return dir.str();
}

PqosStatus ResctrlPqos::WriteSchemata(uint8_t cos, uint32_t mask) {
  const std::string path = GroupDir(cos) + "/schemata";
  // One L3 domain assumed (single-socket management, like the paper). When
  // the platform has MBA, the schemata file carries both resources.
  std::string content = "L3:0=" + MaskToHex(mask) + "\n";
  if (mba_supported_) {
    content += "MB:0=" + std::to_string(mba_percent_.at(cos)) + "\n";
  }
  if (!WriteFile(path, content)) {
    return PqosStatus::kIoError;
  }
  return PqosStatus::kOk;
}

PqosStatus ResctrlPqos::SetMbaThrottle(uint8_t cos, uint32_t percent) {
  if (!initialized_ || cos >= num_cos_) {
    return last_status_ = PqosStatus::kOutOfRange;
  }
  if (!mba_supported_) {
    return last_status_ = PqosStatus::kUnsupported;
  }
  if (percent < 10 || percent > 100) {
    return last_status_ = PqosStatus::kInvalidMask;
  }
  const uint32_t previous = mba_percent_.at(cos);
  mba_percent_.at(cos) = percent;
  const PqosStatus status = WriteSchemata(cos, masks_.at(cos));
  if (status != PqosStatus::kOk) {
    mba_percent_.at(cos) = previous;
  }
  return last_status_ = status;
}

uint32_t ResctrlPqos::GetMbaThrottle(uint8_t cos) const {
  if (cos >= mba_percent_.size()) {
    return 100;
  }
  return mba_percent_[cos];
}

uint64_t ResctrlPqos::MemoryBandwidthBytes(uint8_t cos) const {
  std::string text;
  if (!ReadFileTrimmed(GroupDir(cos) + "/mon_data/mon_L3_00/mbm_total_bytes", &text)) {
    return 0;
  }
  return std::strtoull(text.c_str(), nullptr, 10);
}

PqosStatus ResctrlPqos::WriteCpusList(uint8_t cos) {
  // resctrl semantics: writing a group's cpus_list claims those cores (they
  // leave their previous group automatically). We rewrite the full list for
  // the group each time.
  std::ostringstream list;
  bool first = true;
  for (uint16_t core = 0; core < num_cores_; ++core) {
    if (core_assoc_[core] == cos) {
      if (!first) {
        list << ",";
      }
      list << core;
      first = false;
    }
  }
  list << "\n";
  if (!WriteFile(GroupDir(cos) + "/cpus_list", list.str())) {
    return PqosStatus::kIoError;
  }
  return PqosStatus::kOk;
}

PqosStatus ResctrlPqos::SetCosMask(uint8_t cos, uint32_t mask) {
  if (!initialized_ || cos >= num_cos_) {
    return last_status_ = PqosStatus::kOutOfRange;
  }
  if (!IsContiguousMask(mask) || (mask & ~MakeWayMask(0, num_ways_)) != 0) {
    return last_status_ = PqosStatus::kInvalidMask;
  }
  const PqosStatus status = WriteSchemata(cos, mask);
  if (status == PqosStatus::kOk) {
    masks_[cos] = mask;
  }
  return last_status_ = status;
}

PqosStatus ResctrlPqos::ApplyMaskBatch(const std::vector<CosMaskUpdate>& updates,
                                       size_t* applied) {
  if (applied != nullptr) {
    *applied = 0;
  }
  if (!initialized_) {
    return last_status_ = PqosStatus::kOutOfRange;
  }
  // Validate everything up front: a batch with a malformed element performs
  // zero writes instead of stopping partway through the tree.
  for (const CosMaskUpdate& u : updates) {
    if (u.cos >= num_cos_) {
      return last_status_ = PqosStatus::kOutOfRange;
    }
    if (!IsContiguousMask(u.mask) || (u.mask & ~MakeWayMask(0, num_ways_)) != 0) {
      return last_status_ = PqosStatus::kInvalidMask;
    }
  }
  size_t done = 0;
  for (const CosMaskUpdate& u : updates) {
    const PqosStatus status = WriteSchemata(u.cos, u.mask);
    if (status != PqosStatus::kOk) {
      if (applied != nullptr) {
        *applied = done;
      }
      return last_status_ = status;
    }
    masks_[u.cos] = u.mask;
    ++done;
  }
  if (applied != nullptr) {
    *applied = done;
  }
  return last_status_ = PqosStatus::kOk;
}

uint32_t ResctrlPqos::GetCosMask(uint8_t cos) const {
  if (cos >= masks_.size()) {
    return 0;
  }
  return masks_[cos];
}

PqosStatus ResctrlPqos::AssociateCore(uint16_t core, uint8_t cos) {
  if (!initialized_ || core >= num_cores_ || cos >= num_cos_) {
    return last_status_ = PqosStatus::kOutOfRange;
  }
  const uint8_t previous = core_assoc_[core];
  core_assoc_[core] = cos;
  PqosStatus status = WriteCpusList(cos);
  if (status == PqosStatus::kOk && previous != cos) {
    status = WriteCpusList(previous);
  }
  if (status != PqosStatus::kOk) {
    core_assoc_[core] = previous;
  }
  return last_status_ = status;
}

uint8_t ResctrlPqos::GetCoreAssociation(uint16_t core) const {
  if (core >= core_assoc_.size()) {
    return 0;
  }
  return core_assoc_[core];
}

PerfCounterBlock ResctrlPqos::ReadCounters(uint16_t core) const {
  // resctrl exposes no IPC/L1 events; a perf_event provider would supply
  // them on real hardware. Returning zeros keeps the interface total.
  (void)core;
  return PerfCounterBlock{};
}

uint64_t ResctrlPqos::LlcOccupancyBytes(uint8_t cos) const {
  std::string text;
  if (!ReadFileTrimmed(GroupDir(cos) + "/mon_data/mon_L3_00/llc_occupancy", &text)) {
    return 0;
  }
  return std::strtoull(text.c_str(), nullptr, 10);
}

}  // namespace dcat
