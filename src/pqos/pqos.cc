#include "src/pqos/pqos.h"

namespace dcat {

const char* PqosStatusName(PqosStatus status) {
  switch (status) {
    case PqosStatus::kOk:
      return "ok";
    case PqosStatus::kInvalidMask:
      return "invalid-mask";
    case PqosStatus::kOutOfRange:
      return "out-of-range";
    case PqosStatus::kUnsupported:
      return "unsupported";
    case PqosStatus::kIoError:
      return "io-error";
  }
  return "?";
}

}  // namespace dcat
