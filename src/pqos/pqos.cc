#include "src/pqos/pqos.h"

namespace dcat {

PqosStatus CatController::ApplyMaskBatch(const std::vector<CosMaskUpdate>& updates,
                                         size_t* applied) {
  size_t done = 0;
  PqosStatus status = PqosStatus::kOk;
  for (const CosMaskUpdate& u : updates) {
    status = SetCosMask(u.cos, u.mask);
    if (status != PqosStatus::kOk) {
      break;
    }
    ++done;
  }
  if (applied != nullptr) {
    *applied = done;
  }
  return status;
}

const char* PqosStatusName(PqosStatus status) {
  switch (status) {
    case PqosStatus::kOk:
      return "ok";
    case PqosStatus::kInvalidMask:
      return "invalid-mask";
    case PqosStatus::kOutOfRange:
      return "out-of-range";
    case PqosStatus::kUnsupported:
      return "unsupported";
    case PqosStatus::kIoError:
      return "io-error";
  }
  return "?";
}

}  // namespace dcat
