#include "src/pqos/sim_pqos.h"

#include "src/pqos/mask.h"

namespace dcat {

PqosStatus SimPqos::SetCosMask(uint8_t cos, uint32_t mask) {
  if (cos >= NumCos()) {
    return PqosStatus::kOutOfRange;
  }
  if (!IsContiguousMask(mask) || (mask & ~((1u << NumWays()) - 1)) != 0) {
    return PqosStatus::kInvalidMask;
  }
  const uint32_t old_mask = socket_->CosMask(cos);
  socket_->SetCosMask(cos, mask);
  // The paper's dCat pairs a shrinking allocation with a user-level cache
  // flush of the surrendered ways (§6): without it, the tenant keeps
  // hitting stale lines in ways nobody else evicts, which both inflates its
  // measured performance and delays the new owner's use of the capacity.
  // Pure moves/grows are left lazy, exactly like real CAT.
  if (MaskWays(mask) < MaskWays(old_mask)) {
    socket_->FlushCosOutsideMask(cos, mask);
  }
  return PqosStatus::kOk;
}

PqosStatus SimPqos::ApplyMaskBatch(const std::vector<CosMaskUpdate>& updates,
                                   size_t* applied) {
  if (applied != nullptr) {
    *applied = 0;
  }
  const uint32_t out_of_bounds = ~((1u << NumWays()) - 1);
  for (const CosMaskUpdate& u : updates) {
    if (u.cos >= NumCos()) {
      return PqosStatus::kOutOfRange;
    }
    if (!IsContiguousMask(u.mask) || (u.mask & out_of_bounds) != 0) {
      return PqosStatus::kInvalidMask;
    }
  }
  for (const CosMaskUpdate& u : updates) {
    const uint32_t old_mask = socket_->CosMask(u.cos);
    socket_->SetCosMask(u.cos, u.mask);
    if (MaskWays(u.mask) < MaskWays(old_mask)) {
      socket_->FlushCosOutsideMask(u.cos, u.mask);
    }
  }
  if (applied != nullptr) {
    *applied = updates.size();
  }
  return PqosStatus::kOk;
}

uint32_t SimPqos::GetCosMask(uint8_t cos) const { return socket_->CosMask(cos); }

PqosStatus SimPqos::AssociateCore(uint16_t core, uint8_t cos) {
  if (core >= NumCores() || cos >= NumCos()) {
    return PqosStatus::kOutOfRange;
  }
  socket_->AssignCoreToCos(core, cos);
  return PqosStatus::kOk;
}

uint8_t SimPqos::GetCoreAssociation(uint16_t core) const { return socket_->CoreCos(core); }

PerfCounterBlock SimPqos::ReadCounters(uint16_t core) const {
  return socket_->core(core).counters();
}

uint64_t SimPqos::LlcOccupancyBytes(uint8_t cos) const {
  return socket_->LlcOccupancyBytes(cos);
}

PqosStatus SimPqos::SetMbaThrottle(uint8_t cos, uint32_t percent) {
  if (cos >= NumCos()) {
    return PqosStatus::kOutOfRange;
  }
  if (!socket_->memory_bus().enabled()) {
    return PqosStatus::kUnsupported;
  }
  socket_->memory_bus().SetThrottle(cos, percent);
  return PqosStatus::kOk;
}

uint32_t SimPqos::GetMbaThrottle(uint8_t cos) const {
  return socket_->memory_bus().GetThrottle(cos);
}

uint64_t SimPqos::MemoryBandwidthBytes(uint8_t cos) const {
  return socket_->memory_bus().TotalBytes(cos);
}

}  // namespace dcat
