// pqos backend for the Linux resctrl filesystem.
//
// On an RDT-capable machine the kernel exposes CAT through
// /sys/fs/resctrl:
//   info/L3/cbm_mask      full capacity mask (hex)
//   info/L3/num_closids   number of classes of service
//   <group>/schemata      "L3:0=<hex>" per cache domain
//   <group>/cpus_list     cores associated with the group
//   <group>/mon_data/mon_L3_00/llc_occupancy   CMT occupancy (bytes)
//
// This backend maps COS i to a control group "dcat_cos<i>" (COS 0 is the
// resctrl root group). All file traffic goes through an injectable FileIo
// seam (src/pqos/file_io.h), so the backend is fully unit-testable against
// a fake tree, drives a mounted /sys/fs/resctrl unchanged on real hardware,
// and can be chaos-tested through the FaultyFs decorator.
//
// Hardening contract (what the FaultyFs fault taxonomy exercises):
//   - EINTR-style kRetry statuses are absorbed by a bounded retry loop.
//   - Every schemata / cpus_list write is read back and verified; only a
//     verified write updates the in-memory caches. On a failed or
//     unverified write the previous content is rewritten, so a torn write
//     (prefix landed, call reported failure) cannot leave tree and cache
//     disagreeing. When that restore itself fails, the divergence is
//     counted in io_stats().rollback_failures for the caller's reconcile
//     loop to repair.
//   - Node contents are parsed strictly: trailing garbage is rejected, and
//     a failed monitoring read is distinguishable from a genuine 0 through
//     the status-returning MonitoringProvider methods.
//   - Initialize() adopts a pre-existing (possibly half-written) tree:
//     group schemata and cpus_list nodes that parse are adopted into the
//     caches, unreadable or malformed ones are repaired in place, so a
//     controller restart against a torn tree converges to cache == tree.
//
// ReadCounters is kUnsupported here: resctrl has no IPC/L1 counters; the
// paper reads them from MSRs (a perf_event-based provider would slot in via
// the MonitoringProvider interface).
#ifndef SRC_PQOS_RESCTRL_PQOS_H_
#define SRC_PQOS_RESCTRL_PQOS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/pqos/file_io.h"
#include "src/pqos/pqos.h"

namespace dcat {

class ResctrlPqos : public CatController, public MbaController, public MonitoringProvider {
 public:
  // `root` is the resctrl mount point (e.g. "/sys/fs/resctrl" or a test
  // directory). `num_cores` is the core count of the managed socket.
  // `io` is the filesystem seam; nullptr selects the real filesystem.
  ResctrlPqos(std::string root, uint16_t num_cores, FileIo* io = nullptr);

  // Reads platform limits from info/L3, creates the COS group directories,
  // and adopts or repairs whatever group state the tree already holds (see
  // the hardening contract above). Returns false (with a log line) when the
  // tree is absent or its platform nodes are malformed — callers fall back
  // to other backends.
  bool Initialize();

  // Last status of an operation that returned a value (for diagnostics).
  PqosStatus last_status() const { return last_status_; }

  // CatController:
  uint32_t NumWays() const override { return num_ways_; }
  uint8_t NumCos() const override { return num_cos_; }
  uint16_t NumCores() const override { return num_cores_; }
  uint64_t WayCapacityBytes() const override { return way_capacity_bytes_; }
  PqosStatus SetCosMask(uint8_t cos, uint32_t mask) override;
  // Validates every element before touching the filesystem, so a malformed
  // batch leaves the tree unchanged; an I/O failure mid-batch still reports
  // the landed prefix through `applied` for the caller's rollback. Because
  // each element is verified by read-back (and restored on failure), the
  // in-memory masks equal the tree contents for every COS even when the
  // batch stops partway — including on a torn write.
  PqosStatus ApplyMaskBatch(const std::vector<CosMaskUpdate>& updates,
                            size_t* applied) override;
  uint32_t GetCosMask(uint8_t cos) const override;
  PqosStatus AssociateCore(uint16_t core, uint8_t cos) override;
  uint8_t GetCoreAssociation(uint16_t core) const override;

  // MbaController (requires info/MB in the resctrl tree, i.e. MBA-capable
  // hardware; kUnsupported otherwise):
  PqosStatus SetMbaThrottle(uint8_t cos, uint32_t percent) override;
  uint32_t GetMbaThrottle(uint8_t cos) const override;
  bool mba_supported() const { return mba_supported_; }

  // MonitoringProvider:
  PerfCounterBlock ReadCounters(uint16_t core) const override;
  uint64_t LlcOccupancyBytes(uint8_t cos) const override;
  uint64_t MemoryBandwidthBytes(uint8_t cos) const override;
  // Status flavors: kUnsupported when the mon node is absent, kIoError on a
  // failed read or unparseable content (*bytes is 0 in both cases).
  PqosStatus ReadLlcOccupancy(uint8_t cos, uint64_t* bytes) const override;
  PqosStatus ReadMemoryBandwidth(uint8_t cos, uint64_t* bytes) const override;

  // Group directory for a COS ("" == root group for COS 0).
  std::string GroupDir(uint8_t cos) const;

  // Counters of the fault handling done at the file-I/O boundary.
  struct IoStats {
    uint64_t retries = 0;             // kRetry statuses absorbed
    uint64_t read_errors = 0;         // reads that failed outright
    uint64_t parse_errors = 0;        // node content rejected by strict parse
    uint64_t readback_mismatches = 0; // write landed but read-back disagreed
    uint64_t rollbacks = 0;           // previous content rewritten after failure
    uint64_t rollback_failures = 0;   // rollback write failed: tree/cache divergence
    uint64_t repaired_nodes = 0;      // nodes rewritten by Initialize adoption
  };
  const IoStats& io_stats() const { return io_stats_; }

 private:
  // Bounded-retry wrappers over the FileIo seam: absorb kRetry, count
  // retries, give up after a few attempts.
  FileIoStatus ReadWithRetry(const std::string& path, std::string* out) const;
  FileIoStatus WriteWithRetry(const std::string& path, const std::string& content);
  // ReadWithRetry + trailing-whitespace trim.
  FileIoStatus ReadFileTrimmed(const std::string& path, std::string* out) const;

  // Schemata text for the cached-or-proposed (mask, MBA percent) of a COS.
  std::string ComposeSchemata(uint32_t mask, uint32_t mba_percent) const;
  // Strict parse of a schemata node. Requires an L3 line; the MB line is
  // optional (absent on non-MBA platforms). Unknown lines are rejected.
  bool ParseSchemataText(const std::string& text, uint32_t* mask,
                         std::optional<uint32_t>* mba_percent) const;
  // Writes the schemata of `cos`, reads it back, and verifies the content.
  // On failure the previous (cached) content is restored; caches are NOT
  // updated — the caller commits them only on kOk.
  PqosStatus ProgramSchemata(uint8_t cos, uint32_t mask, uint32_t mba_percent);

  // cpus_list text for the cores currently associated with `cos`.
  std::string ComposeCpusList(uint8_t cos) const;
  // Writes + read-back-verifies the cpus_list of `cos` from core_assoc_.
  // Restores the pre-write content on failure.
  PqosStatus WriteCpusList(uint8_t cos);

  // Monitoring node read with strict parse.
  PqosStatus ReadMonitorNode(uint8_t cos, const char* node, uint64_t* value) const;

  // Initialize() helper: adopt a group's schemata/cpus_list if they parse,
  // rewrite them from defaults if they do not. Returns false only when the
  // repair write itself fails.
  bool AdoptOrRepairGroup(uint8_t cos);

  std::string root_;
  uint16_t num_cores_;
  FileIo* io_;
  uint32_t num_ways_ = 0;
  uint8_t num_cos_ = 0;
  uint32_t full_mask_ = 0;
  uint64_t way_capacity_bytes_ = 0;
  bool initialized_ = false;
  PqosStatus last_status_ = PqosStatus::kOk;
  bool mba_supported_ = false;
  mutable IoStats io_stats_;
  std::vector<uint32_t> masks_;        // cached CBMs per COS (verified)
  std::vector<uint32_t> mba_percent_;  // cached MBA throttles per COS
  std::vector<uint8_t> core_assoc_;    // core -> COS
};

}  // namespace dcat

#endif  // SRC_PQOS_RESCTRL_PQOS_H_
