// pqos backend for the Linux resctrl filesystem.
//
// On an RDT-capable machine the kernel exposes CAT through
// /sys/fs/resctrl:
//   info/L3/cbm_mask      full capacity mask (hex)
//   info/L3/num_closids   number of classes of service
//   <group>/schemata      "L3:0=<hex>" per cache domain
//   <group>/cpus_list     cores associated with the group
//   <group>/mon_data/mon_L3_00/llc_occupancy   CMT occupancy (bytes)
//
// This backend maps COS i to a control group "dcat_cos<i>" (COS 0 is the
// resctrl root group). The filesystem root is injectable so the backend is
// fully unit-testable against a fake tree, and so it can drive a mounted
// /sys/fs/resctrl unchanged on real hardware.
//
// ReadCounters is kUnsupported here: resctrl has no IPC/L1 counters; the
// paper reads them from MSRs (a perf_event-based provider would slot in via
// the MonitoringProvider interface).
#ifndef SRC_PQOS_RESCTRL_PQOS_H_
#define SRC_PQOS_RESCTRL_PQOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/pqos/pqos.h"

namespace dcat {

class ResctrlPqos : public CatController, public MbaController, public MonitoringProvider {
 public:
  // `root` is the resctrl mount point (e.g. "/sys/fs/resctrl" or a test
  // directory). `num_cores` is the core count of the managed socket.
  ResctrlPqos(std::string root, uint16_t num_cores);

  // Reads platform limits from info/L3 and creates the COS group
  // directories. Returns false (with a log line) when the tree is absent or
  // malformed — callers fall back to other backends.
  bool Initialize();

  // Last status of an operation that returned a value (for diagnostics).
  PqosStatus last_status() const { return last_status_; }

  // CatController:
  uint32_t NumWays() const override { return num_ways_; }
  uint8_t NumCos() const override { return num_cos_; }
  uint16_t NumCores() const override { return num_cores_; }
  uint64_t WayCapacityBytes() const override { return way_capacity_bytes_; }
  PqosStatus SetCosMask(uint8_t cos, uint32_t mask) override;
  // Validates every element before touching the filesystem, so a malformed
  // batch leaves the tree unchanged; an I/O failure mid-batch still reports
  // the landed prefix through `applied` for the caller's rollback.
  PqosStatus ApplyMaskBatch(const std::vector<CosMaskUpdate>& updates,
                            size_t* applied) override;
  uint32_t GetCosMask(uint8_t cos) const override;
  PqosStatus AssociateCore(uint16_t core, uint8_t cos) override;
  uint8_t GetCoreAssociation(uint16_t core) const override;

  // MbaController (requires info/MB in the resctrl tree, i.e. MBA-capable
  // hardware; kUnsupported otherwise):
  PqosStatus SetMbaThrottle(uint8_t cos, uint32_t percent) override;
  uint32_t GetMbaThrottle(uint8_t cos) const override;
  bool mba_supported() const { return mba_supported_; }

  // MonitoringProvider:
  PerfCounterBlock ReadCounters(uint16_t core) const override;
  uint64_t LlcOccupancyBytes(uint8_t cos) const override;
  uint64_t MemoryBandwidthBytes(uint8_t cos) const override;

  // Group directory for a COS ("" == root group for COS 0).
  std::string GroupDir(uint8_t cos) const;

 private:
  bool ReadFileTrimmed(const std::string& path, std::string* out) const;
  bool WriteFile(const std::string& path, const std::string& content);
  PqosStatus WriteSchemata(uint8_t cos, uint32_t mask);
  PqosStatus WriteCpusList(uint8_t cos);

  std::string root_;
  uint16_t num_cores_;
  uint32_t num_ways_ = 0;
  uint8_t num_cos_ = 0;
  uint64_t way_capacity_bytes_ = 0;
  bool initialized_ = false;
  PqosStatus last_status_ = PqosStatus::kOk;
  bool mba_supported_ = false;
  std::vector<uint32_t> masks_;       // cached CBMs per COS
  std::vector<uint32_t> mba_percent_;  // cached MBA throttles per COS
  std::vector<uint8_t> core_assoc_;   // core -> COS
};

}  // namespace dcat

#endif  // SRC_PQOS_RESCTRL_PQOS_H_
