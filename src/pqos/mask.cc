#include "src/pqos/mask.h"

#include <bit>
#include <cstdio>

namespace dcat {

int MaskWays(uint32_t mask) { return std::popcount(mask); }

bool IsContiguousMask(uint32_t mask) {
  if (mask == 0) {
    return false;
  }
  // Right-align the run; a contiguous run becomes 2^k - 1.
  const uint32_t shifted = mask >> std::countr_zero(mask);
  return (shifted & (shifted + 1)) == 0;
}

uint32_t MakeWayMask(uint32_t first_way, uint32_t count) {
  if (count == 0) {
    return 0;
  }
  if (count >= 32) {
    return ~0u << first_way;
  }
  return ((1u << count) - 1) << first_way;
}

int LowestWay(uint32_t mask) {
  if (mask == 0) {
    return -1;
  }
  return std::countr_zero(mask);
}

std::string MaskToHex(uint32_t mask) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%x", mask);
  return buf;
}

std::optional<uint32_t> ParseMaskHex(const std::string& text) {
  size_t start = 0;
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    start = 2;
  }
  if (start >= text.size()) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else if (c == '\n' && i + 1 == text.size()) {
      break;  // tolerate a trailing newline (sysfs reads)
    } else {
      return std::nullopt;
    }
    value = value * 16 + static_cast<uint64_t>(digit);
    if (value > 0xffffffffULL) {
      return std::nullopt;
    }
  }
  return static_cast<uint32_t>(value);
}

}  // namespace dcat
