#include "src/pqos/file_io.h"

#include <filesystem>
#include <fstream>
#include <iterator>

namespace dcat {
namespace fs = std::filesystem;

const char* FileIoStatusName(FileIoStatus status) {
  switch (status) {
    case FileIoStatus::kOk:
      return "ok";
    case FileIoStatus::kNotFound:
      return "not-found";
    case FileIoStatus::kRetry:
      return "retry";
    case FileIoStatus::kError:
      return "error";
  }
  return "?";
}

FileIoStatus RealFileIo::Read(const std::string& path, std::string* out) const {
  std::ifstream in(path);
  if (!in) {
    std::error_code ec;
    return fs::exists(path, ec) ? FileIoStatus::kError : FileIoStatus::kNotFound;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) {
    return FileIoStatus::kError;
  }
  *out = std::move(text);
  return FileIoStatus::kOk;
}

FileIoStatus RealFileIo::Write(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::error_code ec;
    const fs::path parent = fs::path(path).parent_path();
    return (!parent.empty() && !fs::exists(parent, ec)) ? FileIoStatus::kNotFound
                                                        : FileIoStatus::kError;
  }
  out << content;
  out.flush();
  return out ? FileIoStatus::kOk : FileIoStatus::kError;
}

FileIoStatus RealFileIo::CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return FileIoStatus::kError;
  }
  return FileIoStatus::kOk;
}

bool RealFileIo::IsDir(const std::string& path) const {
  std::error_code ec;
  return fs::is_directory(path, ec);
}

FileIo* DefaultFileIo() {
  static RealFileIo io;
  return &io;
}

}  // namespace dcat
