// Capacity bitmask (CBM) helpers.
//
// Intel CAT capacity masks must be non-empty and contiguous; these helpers
// centralize construction, validation and formatting so every layer agrees
// on the rules.
#ifndef SRC_PQOS_MASK_H_
#define SRC_PQOS_MASK_H_

#include <cstdint>
#include <optional>
#include <string>

namespace dcat {

// Number of ways in a mask.
int MaskWays(uint32_t mask);

// True when the mask is non-zero and its set bits form one contiguous run
// (Intel's hardware requirement for CBMs).
bool IsContiguousMask(uint32_t mask);

// Mask with `count` ways starting at bit `first_way`. count == 0 yields 0.
uint32_t MakeWayMask(uint32_t first_way, uint32_t count);

// Lowest set way of a non-zero mask; -1 for zero.
int LowestWay(uint32_t mask);

// Lowercase hex rendering, no 0x prefix (resctrl schemata format).
std::string MaskToHex(uint32_t mask);

// Parses lowercase/uppercase hex with or without 0x prefix.
std::optional<uint32_t> ParseMaskHex(const std::string& text);

}  // namespace dcat

#endif  // SRC_PQOS_MASK_H_
