// Platform QoS abstraction: the interface the dCat controller programs.
//
// Mirrors what the Intel pqos library provides on real hardware: a CAT
// control surface (COS capacity masks + core association) and a monitoring
// surface (per-core counters, per-COS LLC occupancy). The controller is
// written against these interfaces only, so swapping the simulator backend
// (SimPqos) for the Linux resctrl backend (ResctrlPqos) requires no
// controller changes.
#ifndef SRC_PQOS_PQOS_H_
#define SRC_PQOS_PQOS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/perf_counters.h"

namespace dcat {

enum class PqosStatus {
  kOk,
  kInvalidMask,    // empty or non-contiguous capacity mask
  kOutOfRange,     // COS or core id beyond platform limits
  kUnsupported,    // operation not available on this backend
  kIoError,        // backend I/O failure (resctrl)
};

const char* PqosStatusName(PqosStatus status);

// One element of a batched mask update (ApplyMaskBatch below).
struct CosMaskUpdate {
  uint8_t cos = 0;
  uint32_t mask = 0;
};

// CAT allocation control.
class CatController {
 public:
  virtual ~CatController() = default;

  virtual uint32_t NumWays() const = 0;
  virtual uint8_t NumCos() const = 0;
  virtual uint16_t NumCores() const = 0;
  virtual uint64_t WayCapacityBytes() const = 0;

  // Programs the capacity mask of `cos`. Masks must be contiguous and
  // non-empty (hardware rule); violations return kInvalidMask.
  virtual PqosStatus SetCosMask(uint8_t cos, uint32_t mask) = 0;
  virtual uint32_t GetCosMask(uint8_t cos) const = 0;

  // Programs several COS masks in one backend call. Elements are applied
  // in order; the first failure stops the batch and its status is
  // returned. `*applied` (optional) receives the number of leading
  // elements the backend acknowledged — on kOk that is updates.size(),
  // on failure the elements past the failing one were never attempted,
  // so callers can roll back or retry exactly the landed prefix.
  //
  // The base implementation loops over SetCosMask, so decorators that
  // override only the per-COS write (fault injectors, crash points)
  // keep their semantics without a dedicated batch override. Real
  // backends override this to amortize per-write cost (one schemata
  // write on resctrl instead of one per COS).
  virtual PqosStatus ApplyMaskBatch(const std::vector<CosMaskUpdate>& updates,
                                    size_t* applied);

  // Associates a core with a COS.
  virtual PqosStatus AssociateCore(uint16_t core, uint8_t cos) = 0;
  virtual uint8_t GetCoreAssociation(uint16_t core) const = 0;
};

// Memory Bandwidth Allocation control (Intel RDT's second knob). Optional:
// platforms without MBA return kUnsupported.
class MbaController {
 public:
  virtual ~MbaController() = default;

  // Throttle as percent of full bandwidth (Intel convention: 100 = none,
  // lower = more delay). Implementations clamp to their granularity.
  virtual PqosStatus SetMbaThrottle(uint8_t cos, uint32_t percent) = 0;
  virtual uint32_t GetMbaThrottle(uint8_t cos) const = 0;
};

// Monitoring: counter samples, occupancy and bandwidth.
class MonitoringProvider {
 public:
  virtual ~MonitoringProvider() = default;

  // Cumulative counters for one core (the controller computes deltas).
  virtual PerfCounterBlock ReadCounters(uint16_t core) const = 0;

  // CMT-style LLC occupancy of one COS, in bytes; 0 when unsupported.
  virtual uint64_t LlcOccupancyBytes(uint8_t cos) const = 0;

  // MBM-style cumulative DRAM traffic of one COS, in bytes; 0 when
  // unsupported.
  virtual uint64_t MemoryBandwidthBytes(uint8_t cos) const {
    (void)cos;
    return 0;
  }

  // Status-returning flavors: distinguish "the read failed" (kIoError)
  // and "this backend has no such counter" (kUnsupported) from a genuine
  // value of 0. The value-returning methods above keep their fail-to-zero
  // contract for callers that don't care; hardened callers (the controller
  // sample loop) use these so a failed read never masquerades as an idle
  // tenant. Default implementations delegate to the value methods and
  // report kOk, so existing providers stay correct unmodified.
  virtual PqosStatus ReadLlcOccupancy(uint8_t cos, uint64_t* bytes) const {
    *bytes = LlcOccupancyBytes(cos);
    return PqosStatus::kOk;
  }
  virtual PqosStatus ReadMemoryBandwidth(uint8_t cos, uint64_t* bytes) const {
    *bytes = MemoryBandwidthBytes(cos);
    return PqosStatus::kOk;
  }
};

}  // namespace dcat

#endif  // SRC_PQOS_PQOS_H_
