#include "src/cluster/recorder.h"

#include <algorithm>

#include "src/common/table.h"

namespace dcat {

void Recorder::Record(double t, const std::vector<VmIntervalStats>& stats) {
  for (const VmIntervalStats& s : stats) {
    Point p;
    p.t = t;
    p.ways = s.ways;
    p.ipc = s.sample.ipc();
    p.llc_miss_rate = s.sample.llc_miss_rate();
    series_[s.id].push_back(p);
  }
}

void Recorder::OnTick(const TickEvent& event) {
  Point p;
  p.t = static_cast<double>(event.tick) * interval_seconds_;
  p.ways = event.ways;
  p.ipc = event.ipc;
  p.llc_miss_rate = event.llc_miss_rate;
  series_[event.tenant].push_back(p);
}

const std::vector<Recorder::Point>& Recorder::series(TenantId id) const {
  static const std::vector<Point> kEmpty;
  if (auto it = series_.find(id); it != series_.end()) {
    return it->second;
  }
  return kEmpty;
}

std::vector<TenantId> Recorder::tenants() const {
  std::vector<TenantId> ids;
  ids.reserve(series_.size());
  for (const auto& [id, _] : series_) {
    ids.push_back(id);
  }
  return ids;
}

double Recorder::AvgIpc(TenantId id, double t_begin, double t_end) const {
  double sum = 0.0;
  size_t count = 0;
  for (const Point& p : series(id)) {
    if (p.t >= t_begin && p.t < t_end) {
      sum += p.ipc;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

uint32_t Recorder::FinalWays(TenantId id) const {
  const auto& s = series(id);
  return s.empty() ? 0 : s.back().ways;
}

uint32_t Recorder::PeakWays(TenantId id) const {
  uint32_t peak = 0;
  for (const Point& p : series(id)) {
    peak = std::max(peak, p.ways);
  }
  return peak;
}

std::string Recorder::ToCsv() const {
  TextTable table({"tenant", "t", "ways", "ipc", "llc_miss_rate"});
  for (const auto& [id, points] : series_) {
    for (const Point& p : points) {
      table.AddRow({TextTable::FmtInt(id), TextTable::Fmt(p.t, 2), TextTable::FmtInt(p.ways),
                    TextTable::Fmt(p.ipc, 4), TextTable::Fmt(p.llc_miss_rate, 4)});
    }
  }
  return table.ToCsv();
}

std::string Recorder::TimelineTable(const std::map<TenantId, std::string>& names,
                                    const std::map<TenantId, double>& ipc_base) const {
  std::vector<std::string> header{"t(s)"};
  std::vector<TenantId> ids = tenants();
  for (TenantId id : ids) {
    const auto it = names.find(id);
    const std::string name = it != names.end() ? it->second : "vm" + std::to_string(id);
    header.push_back(name + ".ways");
    header.push_back(name + (ipc_base.count(id) ? ".normIPC" : ".IPC"));
  }
  TextTable table(header);

  size_t rows = 0;
  for (TenantId id : ids) {
    rows = std::max(rows, series(id).size());
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    double t = 0.0;
    for (TenantId id : ids) {
      const auto& s = series(id);
      if (r < s.size()) {
        t = s[r].t;
      }
    }
    row.push_back(TextTable::Fmt(t, 0));
    for (TenantId id : ids) {
      const auto& s = series(id);
      if (r < s.size()) {
        row.push_back(TextTable::FmtInt(s[r].ways));
        double ipc = s[r].ipc;
        if (auto it = ipc_base.find(id); it != ipc_base.end() && it->second > 0.0) {
          ipc /= it->second;
        }
        row.push_back(TextTable::Fmt(ipc, 2));
      } else {
        row.push_back("");
        row.push_back("");
      }
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace dcat
