// A physical host in the performance-sensitive IaaS: one socket, a set of
// tenant VMs pinned to its cores, and a cache manager (shared / static CAT /
// dCat) supervising the LLC.
//
// Time advances in control intervals: every Step() runs each VM until all
// its cores reach the interval's wall-clock target, then gives the manager
// one Tick(). The number of simulated cycles per interval is configurable —
// the controller consumes rates only, so dilating time shortens experiments
// without changing the control dynamics.
#ifndef SRC_CLUSTER_HOST_H_
#define SRC_CLUSTER_HOST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include <string>

#include "src/cluster/vm.h"
#include "src/core/baseline_managers.h"
#include "src/core/config.h"
#include "src/core/dcat_controller.h"
#include "src/core/manager.h"
#include "src/core/metrics.h"
#include "src/faults/crash.h"
#include "src/faults/faulty_pqos.h"
#include "src/pqos/sim_pqos.h"
#include "src/recovery/journal.h"
#include "src/recovery/recovery.h"
#include "src/sim/analytic_model.h"
#include "src/sim/socket.h"

namespace dcat {

enum class ManagerMode {
  kShared,
  kStaticCat,
  kDcat,
};

const char* ManagerModeName(ManagerMode mode);

struct HostConfig {
  SocketConfig socket = SocketConfig::XeonE5();
  DcatConfig dcat;
  ManagerMode mode = ManagerMode::kDcat;
  // Simulated unhalted cycles per control interval per core. 50M cycles is
  // enough to exercise the full LLC while keeping experiments fast; at the
  // real 2.3 GHz an interval would be 2.3G cycles — the dilation changes no
  // controller decision because all thresholds are rates.
  double cycles_per_interval = 50e6;
  // Chaos harness: interpose a FaultyPqos between the manager and the
  // SimPqos backend, driven by the named fault profile and seed. The
  // simulation itself is untouched — only the manager's view misbehaves.
  bool inject_faults = false;
  uint64_t fault_seed = 0;
  std::string fault_profile = "mixed";  // see FaultProfileByName
  // Stop injecting new faults after this many intervals (0 = never stop);
  // lets harnesses end a run with a quiescent settle window.
  uint32_t fault_active_ticks = 0;
  // Crash harness: interpose a CrashingCat as the manager-facing backend so
  // the fuzzer can kill the controller mid-apply (see src/faults/crash.h).
  bool enable_crash_points = false;
  // When set (kDcat mode only), the controller write-ahead journals every
  // decision and contract change here, and CrashManager/RestartManager can
  // simulate a controller process death + cold restart. Borrowed; must
  // outlive the host.
  JournalStorage* journal_storage = nullptr;
  // Hybrid-fidelity engine (src/sim/analytic_model.h). Any mode other than
  // kLine requires kDcat with no chaos interposers (inject_faults,
  // enable_crash_points) and no bandwidth-contention model — the fast
  // path's decision-equivalence contract is only enforceable there. When
  // the combination is not honorable the host silently stays line-level,
  // so chaos and crash harnesses compose with a hybrid flag by reducing to
  // the exact line-level run they already validate.
  FidelityConfig fidelity;
};

// Per-VM statistics of one completed interval, for recording.
struct VmIntervalStats {
  TenantId id = 0;
  uint32_t ways = 0;
  WorkloadSample sample;
};

class Host {
 public:
  explicit Host(HostConfig config);

  // Creates a VM pinned to free cores and registers it with the manager.
  // The reference stays valid until RemoveVm destroys the VM.
  // Aborts when the manager rejects the admission (legacy contract — every
  // pre-planned experiment admits within capacity); TryAddVm is the
  // status-returning form for callers that can handle a rejection.
  Vm& AddVm(VmConfig vm_config, std::unique_ptr<Workload> workload);

  // Returns nullptr when the manager rejects the tenant (oversubscription,
  // COS exhaustion, or a faulty backend refusing admission writes); the
  // claimed cores are returned to the free pool and nothing is registered.
  Vm* TryAddVm(VmConfig vm_config, std::unique_ptr<Workload> workload);

  // Attaches a VM to a tenant the manager ALREADY holds — the daemon-resume
  // path after RestartManager recovered contracts from the journal. Pins
  // the VM to exactly `cores` (the journaled placement) instead of
  // allocating fresh ones, and performs no admission. Returns nullptr when
  // the manager does not know the tenant or a core is already claimed.
  // kDcat mode only.
  Vm* AdoptVm(VmConfig vm_config, std::unique_ptr<Workload> workload,
              const std::vector<uint16_t>& cores);

  // Terminates a VM: deregisters the tenant from the cache manager and
  // returns its cores to the free pool (a later AddVm may reuse them).
  // Unknown ids are ignored.
  void RemoveVm(TenantId id);

  // Swaps the workload of a running VM (the tenant started a different
  // job). The manager is untouched — same tenant, same contract — but the
  // fidelity engine treats it as churn: the new job's access pattern
  // invalidates every recorded rate model. Unknown ids are ignored (the
  // tenant's admission may have been refused by a faulted backend).
  void SwapVmWorkload(TenantId id, std::unique_ptr<Workload> workload);

  // Runs one control interval; returns per-VM stats for that interval.
  std::vector<VmIntervalStats> Step();

  // Runs `n` intervals, discarding stats.
  void Run(uint32_t n);

  double now_seconds() const {
    return static_cast<double>(intervals_) * config_.dcat.interval_seconds;
  }
  uint64_t intervals() const { return intervals_; }

  // Registers a telemetry sink with the cache manager's decision stream.
  // Only the dCat controller emits events; a no-op in the baseline modes
  // so experiment harnesses can attach sinks unconditionally.
  void AddEventSink(EventSink* sink) {
    if (dcat_ != nullptr) {
      dcat_->AddEventSink(sink);
    }
    // Fidelity transitions are host-side events (the engine, not the
    // controller, emits them); fan them out to the same sinks.
    fidelity_sinks_.AddSink(sink);
  }

  // --- crash-restart harness (kDcat + journal_storage only) ---
  // Simulates the controller process dying: the manager object and all its
  // in-memory state are destroyed. The simulated hardware, the journal
  // storage, and the VMs survive — they belong to the host, not the
  // process. Only RestartManager may follow.
  void CrashManager();

  // Rebuilds the manager through the recovery path: parse the journal,
  // reconcile against the live backend, resume journaling. `sinks` are
  // registered on the new controller before the RestartEvent fires. On a
  // cold boot (unusable journal) the host re-admits its live VMs as fresh
  // contracts. Aborts if recovery fails outright (policy mismatch).
  RecoveryReport RestartManager(const std::vector<EventSink*>& sinks);

  // Re-runs the crashed control tick after a restart: the VMs already
  // executed the interval when the crash cut the tick short, so only the
  // manager's Tick is replayed (cumulative counters make the replayed
  // deltas identical to the lost ones).
  void RetickAfterRecovery();

  // Controller restarts performed by RestartManager so far.
  uint64_t restarts() const { return restarts_; }

  Socket& socket() { return socket_; }
  // The inner, always-truthful backend — auditors read real state here
  // even when the manager's view is faulted.
  SimPqos& pqos() { return pqos_; }
  // Non-null only when HostConfig::inject_faults is set.
  FaultyPqos* faulty() { return faulty_.get(); }
  // Non-null only when HostConfig::enable_crash_points is set.
  CrashingCat* crasher() { return crasher_.get(); }
  // Non-null only when HostConfig::journal_storage is set in kDcat mode.
  JournalWriter* journal() { return journal_.get(); }
  CacheManager& manager() { return *manager_; }
  // Non-null only in kDcat mode.
  DcatController* dcat() { return dcat_; }
  // Non-null only when HostConfig::fidelity asked for a non-line mode and
  // the host could honor it (see the HostConfig field comment).
  AnalyticModelEngine* fidelity() { return fidelity_engine_.get(); }
  Vm& vm(size_t index) { return *vms_.at(index); }
  size_t num_vms() const { return vms_.size(); }

 private:
  // Forwards controller decision events into the fidelity engine's
  // activity notes: any per-tenant decision resets that tenant's quiet
  // streak, an applied ways change holds the whole socket at line
  // fidelity, and restarts/drift repairs/mode flips count as churn.
  // Registered on the controller only when the engine exists, so engine_
  // is never null when a handler runs.
  class FidelitySentry : public EventSink {
   public:
    void Attach(AnalyticModelEngine* engine) { engine_ = engine; }
    void OnPhaseChange(const PhaseChangeEvent& e) override {
      engine_->NoteDecisionActivity(e.tenant, e.tick, /*invalidates_model=*/true);
    }
    void OnCategoryChange(const CategoryChangeEvent& e) override {
      engine_->NoteDecisionActivity(e.tenant, e.tick, /*invalidates_model=*/false);
    }
    void OnAllocation(const AllocationEvent& e) override {
      const bool mask_changed = e.from_ways != e.to_ways;
      engine_->NoteDecisionActivity(e.tenant, e.tick, mask_changed);
      if (mask_changed) {
        engine_->NoteMaskActivity(e.tick);
      }
    }
    void OnBackendFault(const BackendFaultEvent& e) override {
      engine_->NoteMaskActivity(e.tick);
    }
    void OnMaskDrift(const MaskDriftEvent& e) override { engine_->NoteChurn(e.tick); }
    void OnCounterAnomaly(const CounterAnomalyEvent& e) override {
      engine_->NoteDecisionActivity(e.tenant, e.tick, /*invalidates_model=*/false);
    }
    void OnModeChange(const ModeChangeEvent& e) override { engine_->NoteChurn(e.tick); }
    void OnRestart(const RestartEvent& e) override { engine_->NoteChurn(e.tick); }

   private:
    AnalyticModelEngine* engine_ = nullptr;
  };

  // --- hybrid fidelity internals (all no-ops when fidelity_engine_ null) ---
  // Builds this tick's per-tenant gate inputs and runs the engine's plan.
  void PlanFidelity();
  // Controller-side steadiness gates for one tenant: detector streak,
  // signature depth, and threshold margins on the last accepted sample.
  bool ControllerSteady(const TenantSnapshot& snapshot) const;
  // Folds the engine's cumulative coverage counters into the controller's
  // metrics registry (sim.analytic_ticks_total / sim.fallback_total).
  void PublishFidelityMetrics();
  HostConfig config_;
  Socket socket_;
  SimPqos pqos_;
  std::unique_ptr<FaultyPqos> faulty_;    // interposed when inject_faults
  std::unique_ptr<CrashingCat> crasher_;  // interposed when enable_crash_points
  std::unique_ptr<JournalWriter> journal_;
  // The manager-facing ends of the decorator chain, kept so RestartManager
  // can rebuild a controller against the same view of the hardware.
  CatController* manager_cat_ = nullptr;
  const MonitoringProvider* manager_monitor_ = nullptr;
  std::unique_ptr<CacheManager> manager_;
  DcatController* dcat_ = nullptr;  // borrowed view into manager_
  uint64_t restarts_ = 0;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<PerfCounterBlock> vm_snapshots_;
  uint16_t next_core_ = 0;
  std::vector<uint16_t> free_cores_;  // returned by RemoveVm, reused first
  uint64_t intervals_ = 0;
  std::unique_ptr<AnalyticModelEngine> fidelity_engine_;
  FidelitySentry fidelity_sentry_;
  EventFanout fidelity_sinks_;  // receives the engine's FidelityEvents
  // Last interval's accepted sample per tenant: the margin checks ask how
  // far the to-be-frozen analytic sample sits from every categorization
  // threshold. Maintained only when the engine exists.
  std::map<TenantId, WorkloadSample> last_samples_;
  // High-water marks already published to the metrics registry.
  uint64_t fidelity_analytic_seen_ = 0;
  uint64_t fidelity_fallback_seen_ = 0;
};

}  // namespace dcat

#endif  // SRC_CLUSTER_HOST_H_
