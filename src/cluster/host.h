// A physical host in the performance-sensitive IaaS: one socket, a set of
// tenant VMs pinned to its cores, and a cache manager (shared / static CAT /
// dCat) supervising the LLC.
//
// Time advances in control intervals: every Step() runs each VM until all
// its cores reach the interval's wall-clock target, then gives the manager
// one Tick(). The number of simulated cycles per interval is configurable —
// the controller consumes rates only, so dilating time shortens experiments
// without changing the control dynamics.
#ifndef SRC_CLUSTER_HOST_H_
#define SRC_CLUSTER_HOST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "src/cluster/vm.h"
#include "src/core/baseline_managers.h"
#include "src/core/config.h"
#include "src/core/dcat_controller.h"
#include "src/core/manager.h"
#include "src/core/metrics.h"
#include "src/faults/crash.h"
#include "src/faults/faulty_pqos.h"
#include "src/pqos/sim_pqos.h"
#include "src/recovery/journal.h"
#include "src/recovery/recovery.h"
#include "src/sim/socket.h"

namespace dcat {

enum class ManagerMode {
  kShared,
  kStaticCat,
  kDcat,
};

const char* ManagerModeName(ManagerMode mode);

struct HostConfig {
  SocketConfig socket = SocketConfig::XeonE5();
  DcatConfig dcat;
  ManagerMode mode = ManagerMode::kDcat;
  // Simulated unhalted cycles per control interval per core. 50M cycles is
  // enough to exercise the full LLC while keeping experiments fast; at the
  // real 2.3 GHz an interval would be 2.3G cycles — the dilation changes no
  // controller decision because all thresholds are rates.
  double cycles_per_interval = 50e6;
  // Chaos harness: interpose a FaultyPqos between the manager and the
  // SimPqos backend, driven by the named fault profile and seed. The
  // simulation itself is untouched — only the manager's view misbehaves.
  bool inject_faults = false;
  uint64_t fault_seed = 0;
  std::string fault_profile = "mixed";  // see FaultProfileByName
  // Stop injecting new faults after this many intervals (0 = never stop);
  // lets harnesses end a run with a quiescent settle window.
  uint32_t fault_active_ticks = 0;
  // Crash harness: interpose a CrashingCat as the manager-facing backend so
  // the fuzzer can kill the controller mid-apply (see src/faults/crash.h).
  bool enable_crash_points = false;
  // When set (kDcat mode only), the controller write-ahead journals every
  // decision and contract change here, and CrashManager/RestartManager can
  // simulate a controller process death + cold restart. Borrowed; must
  // outlive the host.
  JournalStorage* journal_storage = nullptr;
};

// Per-VM statistics of one completed interval, for recording.
struct VmIntervalStats {
  TenantId id = 0;
  uint32_t ways = 0;
  WorkloadSample sample;
};

class Host {
 public:
  explicit Host(HostConfig config);

  // Creates a VM pinned to free cores and registers it with the manager.
  // The reference stays valid until RemoveVm destroys the VM.
  // Aborts when the manager rejects the admission (legacy contract — every
  // pre-planned experiment admits within capacity); TryAddVm is the
  // status-returning form for callers that can handle a rejection.
  Vm& AddVm(VmConfig vm_config, std::unique_ptr<Workload> workload);

  // Returns nullptr when the manager rejects the tenant (oversubscription,
  // COS exhaustion, or a faulty backend refusing admission writes); the
  // claimed cores are returned to the free pool and nothing is registered.
  Vm* TryAddVm(VmConfig vm_config, std::unique_ptr<Workload> workload);

  // Attaches a VM to a tenant the manager ALREADY holds — the daemon-resume
  // path after RestartManager recovered contracts from the journal. Pins
  // the VM to exactly `cores` (the journaled placement) instead of
  // allocating fresh ones, and performs no admission. Returns nullptr when
  // the manager does not know the tenant or a core is already claimed.
  // kDcat mode only.
  Vm* AdoptVm(VmConfig vm_config, std::unique_ptr<Workload> workload,
              const std::vector<uint16_t>& cores);

  // Terminates a VM: deregisters the tenant from the cache manager and
  // returns its cores to the free pool (a later AddVm may reuse them).
  // Unknown ids are ignored.
  void RemoveVm(TenantId id);

  // Runs one control interval; returns per-VM stats for that interval.
  std::vector<VmIntervalStats> Step();

  // Runs `n` intervals, discarding stats.
  void Run(uint32_t n);

  double now_seconds() const {
    return static_cast<double>(intervals_) * config_.dcat.interval_seconds;
  }
  uint64_t intervals() const { return intervals_; }

  // Registers a telemetry sink with the cache manager's decision stream.
  // Only the dCat controller emits events; a no-op in the baseline modes
  // so experiment harnesses can attach sinks unconditionally.
  void AddEventSink(EventSink* sink) {
    if (dcat_ != nullptr) {
      dcat_->AddEventSink(sink);
    }
  }

  // --- crash-restart harness (kDcat + journal_storage only) ---
  // Simulates the controller process dying: the manager object and all its
  // in-memory state are destroyed. The simulated hardware, the journal
  // storage, and the VMs survive — they belong to the host, not the
  // process. Only RestartManager may follow.
  void CrashManager();

  // Rebuilds the manager through the recovery path: parse the journal,
  // reconcile against the live backend, resume journaling. `sinks` are
  // registered on the new controller before the RestartEvent fires. On a
  // cold boot (unusable journal) the host re-admits its live VMs as fresh
  // contracts. Aborts if recovery fails outright (policy mismatch).
  RecoveryReport RestartManager(const std::vector<EventSink*>& sinks);

  // Re-runs the crashed control tick after a restart: the VMs already
  // executed the interval when the crash cut the tick short, so only the
  // manager's Tick is replayed (cumulative counters make the replayed
  // deltas identical to the lost ones).
  void RetickAfterRecovery();

  // Controller restarts performed by RestartManager so far.
  uint64_t restarts() const { return restarts_; }

  Socket& socket() { return socket_; }
  // The inner, always-truthful backend — auditors read real state here
  // even when the manager's view is faulted.
  SimPqos& pqos() { return pqos_; }
  // Non-null only when HostConfig::inject_faults is set.
  FaultyPqos* faulty() { return faulty_.get(); }
  // Non-null only when HostConfig::enable_crash_points is set.
  CrashingCat* crasher() { return crasher_.get(); }
  // Non-null only when HostConfig::journal_storage is set in kDcat mode.
  JournalWriter* journal() { return journal_.get(); }
  CacheManager& manager() { return *manager_; }
  // Non-null only in kDcat mode.
  DcatController* dcat() { return dcat_; }
  Vm& vm(size_t index) { return *vms_.at(index); }
  size_t num_vms() const { return vms_.size(); }

 private:
  HostConfig config_;
  Socket socket_;
  SimPqos pqos_;
  std::unique_ptr<FaultyPqos> faulty_;    // interposed when inject_faults
  std::unique_ptr<CrashingCat> crasher_;  // interposed when enable_crash_points
  std::unique_ptr<JournalWriter> journal_;
  // The manager-facing ends of the decorator chain, kept so RestartManager
  // can rebuild a controller against the same view of the hardware.
  CatController* manager_cat_ = nullptr;
  const MonitoringProvider* manager_monitor_ = nullptr;
  std::unique_ptr<CacheManager> manager_;
  DcatController* dcat_ = nullptr;  // borrowed view into manager_
  uint64_t restarts_ = 0;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<PerfCounterBlock> vm_snapshots_;
  uint16_t next_core_ = 0;
  std::vector<uint16_t> free_cores_;  // returned by RemoveVm, reused first
  uint64_t intervals_ = 0;
};

}  // namespace dcat

#endif  // SRC_CLUSTER_HOST_H_
