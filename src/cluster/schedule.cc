#include "src/cluster/schedule.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/log.h"
#include "src/workloads/factory.h"

namespace dcat {

ScheduleParseResult ParseSchedule(const std::string& text) {
  ScheduleParseResult result;
  if (text.empty()) {
    result.ok = true;
    return result;
  }
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(',', start);
    const std::string item =
        text.substr(start, end == std::string::npos ? std::string::npos : end - start);
    if (!item.empty()) {
      const size_t colon = item.find(':');
      const size_t eq = item.find('=', colon == std::string::npos ? 0 : colon);
      if (colon == std::string::npos || eq == std::string::npos || eq < colon) {
        result.error = "expected interval:tenant=spec, got '" + item + "'";
        return result;
      }
      char* after_interval = nullptr;
      char* after_tenant = nullptr;
      const uint64_t interval = std::strtoull(item.c_str(), &after_interval, 10);
      const uint64_t tenant = std::strtoull(item.c_str() + colon + 1, &after_tenant, 10);
      if (after_interval != item.c_str() + colon || after_tenant != item.c_str() + eq ||
          tenant == 0) {
        result.error = "bad interval or tenant id in '" + item + "'";
        return result;
      }
      const std::string spec = item.substr(eq + 1);
      if (spec.empty()) {
        result.error = "empty workload spec in '" + item + "'";
        return result;
      }
      result.events.push_back(
          ScheduleEvent{interval, static_cast<TenantId>(tenant), spec});
    }
    if (end == std::string::npos) {
      break;
    }
    start = end + 1;
  }
  std::stable_sort(result.events.begin(), result.events.end(),
                   [](const ScheduleEvent& a, const ScheduleEvent& b) {
                     return a.interval < b.interval;
                   });
  result.ok = true;
  return result;
}

ScheduleRunner::ScheduleRunner(std::vector<ScheduleEvent> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ScheduleEvent& a, const ScheduleEvent& b) {
                     return a.interval < b.interval;
                   });
}

int ScheduleRunner::Fire(uint64_t interval, Host& host) {
  int fired = 0;
  while (next_ < events_.size() && events_[next_].interval <= interval) {
    const ScheduleEvent& event = events_[next_];
    ++next_;
    // Find the VM carrying this tenant.
    Vm* vm = nullptr;
    for (size_t i = 0; i < host.num_vms(); ++i) {
      if (host.vm(i).config().id == event.tenant) {
        vm = &host.vm(i);
        break;
      }
    }
    if (vm == nullptr) {
      DCAT_LOG(kWarning) << "schedule: no VM with tenant id " << event.tenant;
      continue;
    }
    auto workload = MakeWorkload(event.workload_spec, /*seed=*/event.tenant * 977 + interval);
    if (workload == nullptr) {
      DCAT_LOG(kWarning) << "schedule: bad workload spec '" << event.workload_spec << "'";
      continue;
    }
    DCAT_LOG(kInfo) << "schedule: t=" << interval << " tenant " << event.tenant << " -> "
                    << event.workload_spec;
    vm->ReplaceWorkload(std::move(workload));
    ++fired;
  }
  return fired;
}

}  // namespace dcat
