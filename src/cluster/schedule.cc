#include "src/cluster/schedule.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/workloads/factory.h"

namespace dcat {

ScheduleParseResult ParseSchedule(const std::string& text) {
  ScheduleParseResult result;
  if (text.empty()) {
    result.ok = true;
    return result;
  }
  for (const std::string& item : Split(text, ',')) {
    if (item.empty()) {
      continue;
    }
    // "<interval>:<tenant>=<spec>"; the spec may contain ':' itself.
    const auto [interval_text, rest] = SplitFirst(item, ':');
    const auto [tenant_text, spec] = SplitFirst(rest, '=');
    if (rest.empty() || item.find(':') == std::string::npos ||
        rest.find('=') == std::string::npos) {
      result.error = "expected interval:tenant=spec, got '" + item + "'";
      return result;
    }
    uint64_t interval = 0;
    uint64_t tenant = 0;
    if (!ParseUint64(interval_text, &interval) || !ParseUint64(tenant_text, &tenant) ||
        tenant == 0) {
      result.error = "bad interval or tenant id in '" + item + "'";
      return result;
    }
    if (spec.empty()) {
      result.error = "empty workload spec in '" + item + "'";
      return result;
    }
    result.events.push_back(ScheduleEvent{interval, static_cast<TenantId>(tenant), spec});
  }
  std::stable_sort(result.events.begin(), result.events.end(),
                   [](const ScheduleEvent& a, const ScheduleEvent& b) {
                     return a.interval < b.interval;
                   });
  result.ok = true;
  return result;
}

ScheduleRunner::ScheduleRunner(std::vector<ScheduleEvent> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ScheduleEvent& a, const ScheduleEvent& b) {
                     return a.interval < b.interval;
                   });
}

int ScheduleRunner::Fire(uint64_t interval, Host& host) {
  int fired = 0;
  while (next_ < events_.size() && events_[next_].interval <= interval) {
    const ScheduleEvent& event = events_[next_];
    ++next_;
    // Find the VM carrying this tenant.
    Vm* vm = nullptr;
    for (size_t i = 0; i < host.num_vms(); ++i) {
      if (host.vm(i).config().id == event.tenant) {
        vm = &host.vm(i);
        break;
      }
    }
    if (vm == nullptr) {
      DCAT_LOG(kWarning) << "schedule: no VM with tenant id " << event.tenant;
      continue;
    }
    auto workload = MakeWorkload(event.workload_spec, /*seed=*/event.tenant * 977 + interval);
    if (workload == nullptr) {
      DCAT_LOG(kWarning) << "schedule: bad workload spec '" << event.workload_spec << "'";
      continue;
    }
    DCAT_LOG(kInfo) << "schedule: t=" << interval << " tenant " << event.tenant << " -> "
                    << event.workload_spec;
    // Through the host, not the VM directly: a swap is churn the hybrid
    // fidelity engine must observe (it invalidates the tenant's rate model).
    host.SwapVmWorkload(event.tenant, std::move(workload));
    ++fired;
  }
  return fired;
}

}  // namespace dcat
