// A tenant VM: pinned vCPUs, its own guest-physical address space, and the
// workload the tenant runs inside it.
//
// Matches the paper's setup (§5): every VM has dedicated physical cores (no
// CPU overprovisioning), its own RAM, and 4 KiB pages by default (the
// conflict-miss regime real clouds run in).
#ifndef SRC_CLUSTER_VM_H_
#define SRC_CLUSTER_VM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/manager.h"
#include "src/sim/execution_context.h"
#include "src/sim/page_table.h"
#include "src/sim/socket.h"
#include "src/workloads/workload.h"

namespace dcat {

struct VmConfig {
  TenantId id = 0;
  std::string name;
  uint32_t vcpus = 2;
  uint64_t ram_bytes = 4ull * 1024 * 1024 * 1024;  // 4 GiB, as in the paper
  PagePolicy page_policy = PagePolicy::kRandom4K;
  uint32_t baseline_ways = 1;
  uint64_t seed = 1;
};

class Vm {
 public:
  // `cores` are the physical cores the vCPUs are pinned to (one per vCPU).
  Vm(VmConfig config, std::unique_ptr<Workload> workload, Socket* socket,
     std::vector<uint16_t> cores);

  const VmConfig& config() const { return config_; }
  const std::vector<uint16_t>& cores() const { return cores_; }
  Workload& workload() { return *workload_; }

  TenantSpec tenant_spec() const;

  // Runs every vCPU forward until its core's wall clock reaches
  // `target_wall_cycles`. vCPUs beyond the workload's thread count idle.
  void RunUntil(double target_wall_cycles);

  // Hybrid-fidelity fast path: the engine already advanced the cores'
  // counters analytically; move each active vCPU's workload position
  // forward by the per-core instruction counts (vCPU order, as returned by
  // AnalyticModelEngine::AdvanceAnalytically).
  void SkipWorkload(const std::vector<uint64_t>& skipped_instructions);

  // Minimum Workload::SteadyHorizon over the active vCPUs (idle vCPUs make
  // no promise they could break). kSteadyForever when none are active.
  uint64_t MinSteadyHorizon() const;

  // Swaps the running workload (tenant starts/stops a job). The guest
  // address space is preserved — a real VM's page cache does not vanish
  // when a process exits.
  void ReplaceWorkload(std::unique_ptr<Workload> workload);

 private:
  VmConfig config_;
  std::unique_ptr<Workload> workload_;
  Socket* socket_;  // not owned
  std::vector<uint16_t> cores_;
  PageTable page_table_;
  std::vector<ExecutionContext> contexts_;
};

}  // namespace dcat

#endif  // SRC_CLUSTER_VM_H_
