// Workload-change schedules for scripted experiments.
//
// The paper's timelines (Fig. 7, 12, 15) are all "at time t, tenant X
// starts/stops/switches workloads". A Schedule captures that as data so
// experiments are reproducible from a single command line:
//
//     "10:1=mlr:8M,15:1=idle,20:2=redis"
//
// means: at interval 10 tenant 1 starts MLR-8MB, at 15 it goes idle, at
// 20 tenant 2 switches to the Redis model. Workload specs follow
// src/workloads/factory.h.
#ifndef SRC_CLUSTER_SCHEDULE_H_
#define SRC_CLUSTER_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/host.h"

namespace dcat {

struct ScheduleEvent {
  uint64_t interval = 0;  // fires before this interval's Step()
  TenantId tenant = 0;
  std::string workload_spec;
};

struct ScheduleParseResult {
  bool ok = false;
  std::vector<ScheduleEvent> events;  // sorted by interval
  std::string error;
};

// Parses "interval:tenant=spec,..." into sorted events. Does not validate
// the workload specs (the factory does, at fire time).
ScheduleParseResult ParseSchedule(const std::string& text);

// Applies a schedule against a host: call Fire() once per interval before
// Step(). Returns the events fired (for logging); workloads that fail to
// construct are skipped with a log line.
class ScheduleRunner {
 public:
  explicit ScheduleRunner(std::vector<ScheduleEvent> events);

  // Fires all events due at `interval` against `host`. Returns how many
  // were applied.
  int Fire(uint64_t interval, Host& host);

  bool done() const { return next_ >= events_.size(); }

 private:
  std::vector<ScheduleEvent> events_;
  size_t next_ = 0;
};

}  // namespace dcat

#endif  // SRC_CLUSTER_SCHEDULE_H_
