#include "src/cluster/host.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/cluster/vm.h"

namespace dcat {
namespace {
// How far (relatively) a sample must sit from every categorization
// threshold before the fast path may freeze it. Analytic injection replays
// the sample to within integer rounding, so the margin only needs to absorb
// the workload's own residual drift across a steady phase — but a wide
// margin costs almost no coverage on genuinely steady phases, and a sample
// hugging a boundary is exactly the one whose category could flip.
constexpr double kFidelityThresholdMargin = 0.10;

bool FarFromThreshold(double value, double threshold) {
  if (threshold <= 0.0) {
    return true;
  }
  return std::abs(value - threshold) >= kFidelityThresholdMargin * threshold;
}
}  // namespace

const char* ManagerModeName(ManagerMode mode) {
  switch (mode) {
    case ManagerMode::kShared:
      return "shared";
    case ManagerMode::kStaticCat:
      return "static-cat";
    case ManagerMode::kDcat:
      return "dcat";
  }
  return "?";
}

Host::Host(HostConfig config) : config_(config), socket_(config.socket), pqos_(&socket_) {
  CatController* cat = &pqos_;
  const MonitoringProvider* monitor = &pqos_;
  if (config_.inject_faults) {
    const auto named = FaultProfileByName(config_.fault_profile);
    if (!named.has_value()) {
      std::fprintf(stderr, "Host: unknown fault profile '%s'\n",
                   config_.fault_profile.c_str());
      std::abort();
    }
    FaultProfile profile = *named;
    profile.active_ticks = config_.fault_active_ticks;
    faulty_ = std::make_unique<FaultyPqos>(&pqos_, &pqos_,
                                           FaultPlan(config_.fault_seed, profile));
    cat = faulty_.get();
    monitor = faulty_.get();
  }
  if (config_.enable_crash_points) {
    // Outermost so an armed crash fires before any fault-plan roll: the
    // "process" dies before the write leaves it.
    crasher_ = std::make_unique<CrashingCat>(cat);
    cat = crasher_.get();
  }
  manager_cat_ = cat;
  manager_monitor_ = monitor;
  switch (config_.mode) {
    case ManagerMode::kShared:
      manager_ = std::make_unique<SharedCacheManager>(cat);
      break;
    case ManagerMode::kStaticCat:
      manager_ = std::make_unique<StaticCatManager>(cat);
      break;
    case ManagerMode::kDcat: {
      auto controller = std::make_unique<DcatController>(cat, monitor, config_.dcat);
      dcat_ = controller.get();
      manager_ = std::move(controller);
      if (config_.journal_storage != nullptr) {
        journal_ = std::make_unique<JournalWriter>(config_.journal_storage);
        journal_->set_metrics(&dcat_->metrics());
        dcat_->AttachJournal(journal_.get());
      }
      break;
    }
  }
  if (config_.fidelity.mode != FidelityMode::kLine && dcat_ != nullptr &&
      !config_.inject_faults && !config_.enable_crash_points &&
      !config_.socket.memory_bus.enabled) {
    fidelity_engine_ =
        std::make_unique<AnalyticModelEngine>(&socket_, config_.fidelity, &fidelity_sinks_);
    fidelity_sentry_.Attach(fidelity_engine_.get());
    dcat_->AddEventSink(&fidelity_sentry_);
  }
}

Vm& Host::AddVm(VmConfig vm_config, std::unique_ptr<Workload> workload) {
  const std::string name = vm_config.name;
  Vm* vm = TryAddVm(std::move(vm_config), std::move(workload));
  if (vm == nullptr) {
    std::fprintf(stderr, "Host: manager rejected VM %s\n", name.c_str());
    std::abort();
  }
  return *vm;
}

Vm* Host::TryAddVm(VmConfig vm_config, std::unique_ptr<Workload> workload) {
  std::vector<uint16_t> cores;
  // Reuse cores freed by departed VMs before claiming fresh ones.
  while (cores.size() < vm_config.vcpus && !free_cores_.empty()) {
    cores.push_back(free_cores_.back());
    free_cores_.pop_back();
  }
  while (cores.size() < vm_config.vcpus) {
    if (next_core_ >= socket_.num_cores()) {
      std::fprintf(stderr, "Host: out of physical cores for VM %s\n", vm_config.name.c_str());
      for (uint16_t core : cores) {
        free_cores_.push_back(core);
      }
      return nullptr;
    }
    cores.push_back(next_core_++);
  }
  // Distinct default seeds per VM keep tenants decorrelated.
  if (vm_config.seed == 1) {
    vm_config.seed = 0x1000 + vm_config.id * 7919;
  }
  // A VM admitted mid-run starts at the host's current wall clock.
  const double now = static_cast<double>(intervals_) * config_.cycles_per_interval;
  for (uint16_t core : cores) {
    if (socket_.core(core).wall_cycles() < now) {
      socket_.core(core).Idle(now - socket_.core(core).wall_cycles());
    }
  }
  auto vm = std::make_unique<Vm>(vm_config, std::move(workload), &socket_, cores);
  const AdmitStatus status = manager_->AddTenant(vm->tenant_spec());
  if (status != AdmitStatus::kOk) {
    std::fprintf(stderr, "Host: admission of VM %s rejected: %s\n", vm_config.name.c_str(),
                 AdmitStatusName(status));
    for (uint16_t core : cores) {
      free_cores_.push_back(core);
    }
    return nullptr;
  }
  vms_.push_back(std::move(vm));
  vm_snapshots_.emplace_back();
  if (fidelity_engine_ != nullptr) {
    fidelity_engine_->AddTenant(vms_.back()->config().id, vms_.back()->cores());
    fidelity_engine_->NoteChurn(intervals_);
  }
  return vms_.back().get();
}

Vm* Host::AdoptVm(VmConfig vm_config, std::unique_ptr<Workload> workload,
                  const std::vector<uint16_t>& cores) {
  if (dcat_ == nullptr || !dcat_->HasTenant(vm_config.id)) {
    std::fprintf(stderr, "Host: AdoptVm(%s): the manager holds no such tenant\n",
                 vm_config.name.c_str());
    return nullptr;
  }
  // Claim the journaled cores explicitly: pull them from the free pool, or
  // advance the allocation watermark past them (parking any skipped cores
  // on the free list for later VMs).
  for (uint16_t core : cores) {
    const auto it = std::find(free_cores_.begin(), free_cores_.end(), core);
    if (it != free_cores_.end()) {
      free_cores_.erase(it);
      continue;
    }
    if (core < next_core_ || core >= socket_.num_cores()) {
      std::fprintf(stderr, "Host: AdoptVm(%s): core %u is not available\n",
                   vm_config.name.c_str(), core);
      return nullptr;
    }
    while (next_core_ < core) {
      free_cores_.push_back(next_core_++);
    }
    ++next_core_;
  }
  vm_config.vcpus = static_cast<uint32_t>(cores.size());
  if (vm_config.seed == 1) {
    vm_config.seed = 0x1000 + vm_config.id * 7919;
  }
  const double now = static_cast<double>(intervals_) * config_.cycles_per_interval;
  for (uint16_t core : cores) {
    if (socket_.core(core).wall_cycles() < now) {
      socket_.core(core).Idle(now - socket_.core(core).wall_cycles());
    }
  }
  vms_.push_back(std::make_unique<Vm>(std::move(vm_config), std::move(workload), &socket_, cores));
  vm_snapshots_.emplace_back();
  if (fidelity_engine_ != nullptr) {
    fidelity_engine_->AddTenant(vms_.back()->config().id, vms_.back()->cores());
    fidelity_engine_->NoteChurn(intervals_);
  }
  return vms_.back().get();
}

void Host::RemoveVm(TenantId id) {
  for (size_t i = 0; i < vms_.size(); ++i) {
    if (vms_[i]->config().id != id) {
      continue;
    }
    manager_->RemoveTenant(id);
    for (uint16_t core : vms_[i]->cores()) {
      // The core stops executing; its private caches are stale state the
      // next owner would not have, so drop them.
      socket_.core(core).ResetCaches();
      free_cores_.push_back(core);
    }
    vms_.erase(vms_.begin() + static_cast<ptrdiff_t>(i));
    vm_snapshots_.erase(vm_snapshots_.begin() + static_cast<ptrdiff_t>(i));
    if (fidelity_engine_ != nullptr) {
      fidelity_engine_->RemoveTenant(id);
      fidelity_engine_->NoteChurn(intervals_);
      last_samples_.erase(id);
    }
    return;
  }
}

void Host::SwapVmWorkload(TenantId id, std::unique_ptr<Workload> workload) {
  for (auto& vm : vms_) {
    if (vm->config().id != id) {
      continue;
    }
    vm->ReplaceWorkload(std::move(workload));
    if (fidelity_engine_ != nullptr) {
      fidelity_engine_->NoteChurn(intervals_);
    }
    return;
  }
}

std::vector<VmIntervalStats> Host::Step() {
  ++intervals_;
  const double target = static_cast<double>(intervals_) * config_.cycles_per_interval;
  if (fidelity_engine_ != nullptr) {
    PlanFidelity();
  }
  for (auto& vm : vms_) {
    if (fidelity_engine_ != nullptr && fidelity_engine_->IsAnalytic(vm->config().id)) {
      // Fast path: inject modeled counters up to the tick boundary and move
      // the workload's instruction position forward to match.
      vm->SkipWorkload(fidelity_engine_->AdvanceAnalytically(vm->config().id, target));
    } else {
      vm->RunUntil(target);
    }
  }
  socket_.AdvanceInterval(config_.cycles_per_interval);  // bandwidth model boundary
  if (faulty_ != nullptr) {
    // The fault plan's clock is the control interval: advance it before the
    // manager observes the backend this tick.
    faulty_->AdvanceTick();
  }
  manager_->Tick();
  if (fidelity_engine_ != nullptr) {
    fidelity_engine_->ObserveTick();
    PublishFidelityMetrics();
  }

  std::vector<VmIntervalStats> stats;
  stats.reserve(vms_.size());
  for (size_t i = 0; i < vms_.size(); ++i) {
    PerfCounterBlock sum;
    for (uint16_t core : vms_[i]->cores()) {
      sum += socket_.core(core).counters();
    }
    VmIntervalStats s;
    s.id = vms_[i]->config().id;
    s.ways = manager_->TenantWays(s.id);
    s.sample.delta = sum - vm_snapshots_[i];
    vm_snapshots_[i] = sum;
    if (fidelity_engine_ != nullptr) {
      last_samples_[s.id] = s.sample;
    }
    stats.push_back(s);
  }
  return stats;
}

void Host::PlanFidelity() {
  std::vector<TenantFidelityInput> inputs;
  inputs.reserve(vms_.size());
  // A degraded controller pins everyone to baselines while probing the
  // backend — hold line fidelity until it recovers.
  const bool controller_ready = dcat_ != nullptr && !dcat_->degraded();
  for (auto& vm : vms_) {
    TenantFidelityInput input;
    input.id = vm->config().id;
    if (controller_ready && dcat_->HasTenant(input.id)) {
      const TenantSnapshot snapshot = dcat_->Snapshot(input.id);
      input.cos = snapshot.cos;
      input.controller_steady = ControllerSteady(snapshot);
    }
    input.steady_horizon = vm->MinSteadyHorizon();
    inputs.push_back(input);
  }
  fidelity_engine_->PlanTick(intervals_, config_.cycles_per_interval, inputs);
}

bool Host::ControllerSteady(const TenantSnapshot& snapshot) const {
  if (!snapshot.has_phase || snapshot.measuring_baseline || snapshot.quarantined ||
      snapshot.phase_changed || snapshot.grow_denied) {
    return false;
  }
  if (snapshot.steady_intervals < config_.fidelity.steady_ticks) {
    return false;
  }
  const DcatConfig& dc = config_.dcat;
  // Deep inside the phase detector's dead zone: a frozen signature must not
  // be able to drift across the phase-change boundary while analytic.
  if (snapshot.signature_rel_delta > 0.25 * dc.phase_change_thr) {
    return false;
  }
  const auto it = last_samples_.find(snapshot.id);
  if (it == last_samples_.end()) {
    return false;
  }
  // The sample the fast path would replay must sit clear of every
  // categorization threshold (Fig. 6 inputs): miss rate against the
  // Receiver/Donor cuts, LLC pressure, and the idle/busy boundary.
  const WorkloadSample& s = it->second;
  // The replayed rates must describe a tenant that is actually making
  // progress, not merely one whose counters are flat. A near-zero sample is
  // ambiguous: it is what a genuinely idle tenant looks like, but also what
  // a starved tenant looks like while a line chunk that costs more than an
  // interval is still in flight — and that chunk's completion is a burst
  // (often a phase change) the frozen model cannot replay. Line-simulating
  // a quiet tenant is nearly free, so demand progress one-sidedly instead
  // of accepting "far below the busy threshold".
  if (static_cast<double>(s.instructions()) <
      (1.0 + kFidelityThresholdMargin) *
          static_cast<double>(dc.min_instructions_per_interval)) {
    return false;
  }
  return FarFromThreshold(s.llc_miss_rate(), dc.llc_miss_rate_thr) &&
         FarFromThreshold(s.llc_miss_rate(), dc.donor_shrink_fraction * dc.llc_miss_rate_thr) &&
         FarFromThreshold(s.llc_refs_per_kilo_instruction(),
                          dc.llc_ref_per_kilo_instruction_thr) &&
         FarFromThreshold(s.mem_per_instruction(), dc.idle_mem_per_ins_epsilon);
}

void Host::PublishFidelityMetrics() {
  if (dcat_ == nullptr) {
    return;
  }
  const uint64_t analytic = fidelity_engine_->analytic_core_ticks();
  const uint64_t fallbacks = fidelity_engine_->fallback_transitions();
  dcat_->metrics().counter("sim.analytic_ticks_total").Increment(analytic -
                                                                 fidelity_analytic_seen_);
  dcat_->metrics().counter("sim.fallback_total").Increment(fallbacks - fidelity_fallback_seen_);
  fidelity_analytic_seen_ = analytic;
  fidelity_fallback_seen_ = fallbacks;
}

void Host::Run(uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    Step();
  }
}

void Host::CrashManager() {
  if (config_.mode != ManagerMode::kDcat || config_.journal_storage == nullptr) {
    std::fprintf(stderr, "Host: CrashManager needs kDcat mode and a journal\n");
    std::abort();
  }
  // The metrics registry dies with the controller; detach before the
  // journal writer could touch it again.
  journal_->set_metrics(nullptr);
  dcat_ = nullptr;
  manager_.reset();
}

RecoveryReport Host::RestartManager(const std::vector<EventSink*>& sinks) {
  if (config_.mode != ManagerMode::kDcat || config_.journal_storage == nullptr) {
    std::fprintf(stderr, "Host: RestartManager needs kDcat mode and a journal\n");
    std::abort();
  }
  if (crasher_ != nullptr) {
    crasher_->Arm(0);  // recovery's reconciliation writes must land
  }
  ++restarts_;
  RecoveryOptions options;
  options.config = config_.dcat;
  options.sinks = sinks;
  if (fidelity_engine_ != nullptr) {
    // The restored controller re-earns the fast path from scratch: every
    // model is stale across a restart, and the sentry must watch the new
    // controller's event stream.
    options.sinks.push_back(&fidelity_sentry_);
    fidelity_engine_->NoteChurn(intervals_);
  }
  options.cold_boot_tick = intervals_;
  options.prior_restarts = restarts_ - 1;
  options.journal = journal_.get();
  RecoveryReport report;
  auto controller =
      RecoverController(manager_cat_, manager_monitor_, config_.journal_storage,
                        options, &report);
  if (controller == nullptr) {
    std::fprintf(stderr, "Host: recovery failed: %s\n", report.error.c_str());
    std::abort();
  }
  dcat_ = controller.get();
  manager_ = std::move(controller);
  journal_->set_metrics(&dcat_->metrics());
  if (report.outcome == RecoveryOutcome::kColdBoot) {
    // The journal was unusable: the live VMs are still pinned to their
    // cores, so re-admit them as fresh contracts.
    for (auto& vm : vms_) {
      const AdmitStatus status = manager_->AddTenant(vm->tenant_spec());
      if (status != AdmitStatus::kOk) {
        std::fprintf(stderr, "Host: cold-boot re-admission of VM %s rejected: %s\n",
                     vm->config().name.c_str(), AdmitStatusName(status));
        std::abort();
      }
    }
  }
  return report;
}

void Host::RetickAfterRecovery() {
  // The crashed Step() already advanced the VMs and the socket through the
  // interval; only the manager's tick was lost. Replaying it alone keeps
  // simulated time consistent, and the cumulative per-core counters make
  // the re-sampled deltas identical to the ones the dead controller saw.
  manager_->Tick();
}

}  // namespace dcat
