#include "src/cluster/host.h"

#include <cstdio>
#include <cstdlib>

#include "src/cluster/vm.h"

namespace dcat {

const char* ManagerModeName(ManagerMode mode) {
  switch (mode) {
    case ManagerMode::kShared:
      return "shared";
    case ManagerMode::kStaticCat:
      return "static-cat";
    case ManagerMode::kDcat:
      return "dcat";
  }
  return "?";
}

Host::Host(HostConfig config) : config_(config), socket_(config.socket), pqos_(&socket_) {
  switch (config_.mode) {
    case ManagerMode::kShared:
      manager_ = std::make_unique<SharedCacheManager>(&pqos_);
      break;
    case ManagerMode::kStaticCat:
      manager_ = std::make_unique<StaticCatManager>(&pqos_);
      break;
    case ManagerMode::kDcat: {
      auto controller = std::make_unique<DcatController>(&pqos_, &pqos_, config_.dcat);
      dcat_ = controller.get();
      manager_ = std::move(controller);
      break;
    }
  }
}

Vm& Host::AddVm(VmConfig vm_config, std::unique_ptr<Workload> workload) {
  std::vector<uint16_t> cores;
  // Reuse cores freed by departed VMs before claiming fresh ones.
  while (cores.size() < vm_config.vcpus && !free_cores_.empty()) {
    cores.push_back(free_cores_.back());
    free_cores_.pop_back();
  }
  while (cores.size() < vm_config.vcpus) {
    if (next_core_ >= socket_.num_cores()) {
      std::fprintf(stderr, "Host: out of physical cores for VM %s\n", vm_config.name.c_str());
      std::abort();
    }
    cores.push_back(next_core_++);
  }
  // Distinct default seeds per VM keep tenants decorrelated.
  if (vm_config.seed == 1) {
    vm_config.seed = 0x1000 + vm_config.id * 7919;
  }
  // A VM admitted mid-run starts at the host's current wall clock.
  const double now = static_cast<double>(intervals_) * config_.cycles_per_interval;
  for (uint16_t core : cores) {
    if (socket_.core(core).wall_cycles() < now) {
      socket_.core(core).Idle(now - socket_.core(core).wall_cycles());
    }
  }
  auto vm = std::make_unique<Vm>(vm_config, std::move(workload), &socket_, cores);
  manager_->AddTenant(vm->tenant_spec());
  vms_.push_back(std::move(vm));
  vm_snapshots_.emplace_back();
  return *vms_.back();
}

void Host::RemoveVm(TenantId id) {
  for (size_t i = 0; i < vms_.size(); ++i) {
    if (vms_[i]->config().id != id) {
      continue;
    }
    manager_->RemoveTenant(id);
    for (uint16_t core : vms_[i]->cores()) {
      // The core stops executing; its private caches are stale state the
      // next owner would not have, so drop them.
      socket_.core(core).ResetCaches();
      free_cores_.push_back(core);
    }
    vms_.erase(vms_.begin() + static_cast<ptrdiff_t>(i));
    vm_snapshots_.erase(vm_snapshots_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
}

std::vector<VmIntervalStats> Host::Step() {
  ++intervals_;
  const double target = static_cast<double>(intervals_) * config_.cycles_per_interval;
  for (auto& vm : vms_) {
    vm->RunUntil(target);
  }
  socket_.AdvanceInterval(config_.cycles_per_interval);  // bandwidth model boundary
  manager_->Tick();

  std::vector<VmIntervalStats> stats;
  stats.reserve(vms_.size());
  for (size_t i = 0; i < vms_.size(); ++i) {
    PerfCounterBlock sum;
    for (uint16_t core : vms_[i]->cores()) {
      sum += socket_.core(core).counters();
    }
    VmIntervalStats s;
    s.id = vms_[i]->config().id;
    s.ways = manager_->TenantWays(s.id);
    s.sample.delta = sum - vm_snapshots_[i];
    vm_snapshots_[i] = sum;
    stats.push_back(s);
  }
  return stats;
}

void Host::Run(uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    Step();
  }
}

}  // namespace dcat
