#include "src/cluster/vm.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dcat {
namespace {
// Instruction chunk per scheduling quantum. Large enough that every
// workload model completes whole requests inside one chunk; small enough
// that interval boundaries stay sharp.
constexpr uint64_t kChunkInstructions = 50'000;
}  // namespace

Vm::Vm(VmConfig config, std::unique_ptr<Workload> workload, Socket* socket,
       std::vector<uint16_t> cores)
    : config_(std::move(config)),
      workload_(std::move(workload)),
      socket_(socket),
      cores_(std::move(cores)),
      page_table_(config_.page_policy, config_.ram_bytes, config_.seed ^ 0xba5eba11ULL) {
  if (cores_.size() != config_.vcpus) {
    std::fprintf(stderr, "Vm %s: %zu cores for %u vcpus\n", config_.name.c_str(), cores_.size(),
                 config_.vcpus);
    std::abort();
  }
  contexts_.reserve(cores_.size());
  for (uint16_t core : cores_) {
    contexts_.emplace_back(&socket_->core(core), &page_table_);
  }
}

TenantSpec Vm::tenant_spec() const {
  TenantSpec spec;
  spec.id = config_.id;
  spec.name = config_.name;
  spec.cores = cores_;
  spec.baseline_ways = config_.baseline_ways;
  return spec;
}

void Vm::RunUntil(double target_wall_cycles) {
  for (uint32_t v = 0; v < contexts_.size(); ++v) {
    ExecutionContext& ctx = contexts_[v];
    const bool active = v < workload_->num_vcpus();
    while (ctx.core().wall_cycles() < target_wall_cycles) {
      const double before = ctx.core().wall_cycles();
      if (active) {
        workload_->Execute(ctx, v, kChunkInstructions);
      } else {
        ctx.core().Idle(target_wall_cycles - before);
      }
      if (ctx.core().wall_cycles() <= before) {
        // A workload that cannot make progress in a chunk (degenerate
        // parameters) must not hang the simulation.
        ctx.core().Idle(target_wall_cycles - before);
      }
    }
  }
}

void Vm::SkipWorkload(const std::vector<uint64_t>& skipped_instructions) {
  for (uint32_t v = 0; v < contexts_.size() && v < skipped_instructions.size(); ++v) {
    if (v < workload_->num_vcpus() && skipped_instructions[v] > 0) {
      workload_->SkipInstructions(v, skipped_instructions[v]);
    }
  }
}

uint64_t Vm::MinSteadyHorizon() const {
  uint64_t horizon = Workload::kSteadyForever;
  for (uint32_t v = 0; v < workload_->num_vcpus() && v < config_.vcpus; ++v) {
    horizon = std::min(horizon, workload_->SteadyHorizon(v));
  }
  return horizon;
}

void Vm::ReplaceWorkload(std::unique_ptr<Workload> workload) {
  if (workload->num_vcpus() > config_.vcpus) {
    std::fprintf(stderr, "Vm %s: workload needs more vCPUs than the VM has\n",
                 config_.name.c_str());
    std::abort();
  }
  workload_ = std::move(workload);
}

}  // namespace dcat
