// Time-series recording for experiments.
//
// Collects the per-interval stats Host::Step() returns and renders the
// "ways over time" / "normalized IPC over time" views the paper's Figures
// 10, 12, 13, 14 and 15 plot.
#ifndef SRC_CLUSTER_RECORDER_H_
#define SRC_CLUSTER_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/host.h"

namespace dcat {

class Recorder {
 public:
  void Record(double t, const std::vector<VmIntervalStats>& stats);

  struct Point {
    double t = 0.0;
    uint32_t ways = 0;
    double ipc = 0.0;
    double llc_miss_rate = 0.0;
  };

  const std::vector<Point>& series(TenantId id) const;
  std::vector<TenantId> tenants() const;

  // Average IPC of a tenant over [t_begin, t_end).
  double AvgIpc(TenantId id, double t_begin, double t_end) const;
  // Final (most recent) ways of a tenant; 0 if never recorded.
  uint32_t FinalWays(TenantId id) const;
  // Maximum ways the tenant ever held.
  uint32_t PeakWays(TenantId id) const;

  // Renders "t  ways[id0] ipc[id0]  ways[id1] ipc[id1] ..." as an aligned
  // table, with IPC normalized to `ipc_base` per tenant when provided.
  std::string TimelineTable(const std::map<TenantId, std::string>& names,
                            const std::map<TenantId, double>& ipc_base = {}) const;

  // Long-format CSV ("tenant,t,ways,ipc,llc_miss_rate") for plotting.
  std::string ToCsv() const;

 private:
  std::map<TenantId, std::vector<Point>> series_;
};

}  // namespace dcat

#endif  // SRC_CLUSTER_RECORDER_H_
