// Time-series recording for experiments.
//
// Collects per-interval tenant stats and renders the "ways over time" /
// "normalized IPC over time" views the paper's Figures 10, 12, 13, 14 and
// 15 plot. Two feeding paths: Record() with the stats Host::Step()
// returns (works for every manager mode), or attaching the Recorder as an
// EventSink on the dCat controller's decision stream, which records each
// TickEvent automatically at t = tick * interval_seconds.
#ifndef SRC_CLUSTER_RECORDER_H_
#define SRC_CLUSTER_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/host.h"
#include "src/telemetry/events.h"

namespace dcat {

class Recorder : public EventSink {
 public:
  Recorder() = default;
  // interval_seconds converts controller ticks to wall time when the
  // Recorder is fed through the event stream.
  explicit Recorder(double interval_seconds) : interval_seconds_(interval_seconds) {}

  void Record(double t, const std::vector<VmIntervalStats>& stats);

  // EventSink: one point per tenant per controller tick.
  void OnTick(const TickEvent& event) override;

  struct Point {
    double t = 0.0;
    uint32_t ways = 0;
    double ipc = 0.0;
    double llc_miss_rate = 0.0;
  };

  const std::vector<Point>& series(TenantId id) const;
  std::vector<TenantId> tenants() const;

  // Average IPC of a tenant over [t_begin, t_end).
  double AvgIpc(TenantId id, double t_begin, double t_end) const;
  // Final (most recent) ways of a tenant; 0 if never recorded.
  uint32_t FinalWays(TenantId id) const;
  // Maximum ways the tenant ever held.
  uint32_t PeakWays(TenantId id) const;

  // Renders "t  ways[id0] ipc[id0]  ways[id1] ipc[id1] ..." as an aligned
  // table, with IPC normalized to `ipc_base` per tenant when provided.
  std::string TimelineTable(const std::map<TenantId, std::string>& names,
                            const std::map<TenantId, double>& ipc_base = {}) const;

  // Long-format CSV ("tenant,t,ways,ipc,llc_miss_rate") for plotting.
  std::string ToCsv() const;

 private:
  double interval_seconds_ = 1.0;
  std::map<TenantId, std::vector<Point>> series_;
};

}  // namespace dcat

#endif  // SRC_CLUSTER_RECORDER_H_
