// String-keyed factory of allocation policies.
//
// Every policy registers under a canonical kebab-case name; config files,
// CLIs and benches select policies by that string (legacy spellings like
// "fair" or "max_performance" canonicalize first). The registry is the
// single source of truth for "what policies exist": error messages list
// Names(), the fuzzer's "all" iterates them, and the bake-off bench fans
// one cell per name.
//
// Built-ins register in the registry's constructor — explicit rather than
// self-registering translation units, so a static library never silently
// drops a policy whose object file nothing referenced. To add a policy:
// implement Policy (see policy.h for the purity contract), then add a
// Register line to PolicyRegistry's constructor in registry.cc.
#ifndef SRC_POLICIES_REGISTRY_H_
#define SRC_POLICIES_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/policies/policy.h"

namespace dcat {

class PolicyRegistry {
 public:
  using Factory = std::unique_ptr<Policy> (*)();

  // The process-wide registry with the built-ins pre-registered.
  static PolicyRegistry& Global();

  // Maps legacy/alternate spellings ("fair", "maxperf", "max_fairness",
  // "max_performance", "lfoc") to canonical names; unknown spellings pass
  // through unchanged.
  static std::string CanonicalName(const std::string& spelling);

  // False (and no-op) when the name is already taken.
  bool Register(const std::string& name, Factory factory);

  // Instantiates by canonical name or alias; nullptr when unknown.
  std::unique_ptr<Policy> Create(const std::string& name_or_alias) const;
  bool Known(const std::string& name_or_alias) const;

  // Canonical names in sorted order, and their ", "-joined rendering for
  // error messages.
  std::vector<std::string> Names() const;
  std::string NamesList() const;

 private:
  PolicyRegistry();

  std::map<std::string, Factory> factories_;
};

}  // namespace dcat

#endif  // SRC_POLICIES_REGISTRY_H_
