#include "src/policies/dcat_passes.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"
#include "src/core/allocator.h"

namespace dcat {

DcatPassState InitPassState(const PolicyInputs& inputs) {
  const size_t n = inputs.tenants.size();
  DcatPassState state;
  state.targets.assign(n, 0);
  state.category.reserve(n);
  state.measuring_baseline.reserve(n);
  state.grow_denied.assign(n, 0);
  state.reason.resize(n);
  for (const PolicyTenant& t : inputs.tenants) {
    state.category.push_back(t.category);
    state.measuring_baseline.push_back(t.measuring_baseline ? 1 : 0);
  }
  return state;
}

void Pass1FixedDemands(const PolicyInputs& inputs, DcatPassState* state) {
  const DcatConfig& config = *inputs.config;
  for (size_t i = 0; i < inputs.tenants.size(); ++i) {
    const PolicyTenant& t = inputs.tenants[i];
    state->grow_denied[i] = 0;
    if (t.quarantined) {
      // No trustworthy sample this interval: hold the allocation steady.
      // Every category branch below keys off the (zeroed) sample and would
      // misread the tenant as idle and strip it to the minimum.
      state->targets[i] = std::max(t.ways, config.min_ways);
      continue;
    }
    switch (state->category[i]) {
      case Category::kReclaim: {
        if (t.idle) {
          // Phase change into idleness: nothing to reclaim for.
          state->category[i] = Category::kDonor;
          state->targets[i] = config.min_ways;
          state->reason[i] = AllocationReason::kDonate;
          break;
        }
        const auto preferred =
            (t.baseline_valid && t.table != nullptr)
                ? t.table->PreferredWays(config.ipc_improvement_thr)
                : std::nullopt;
        if (preferred.has_value()) {
          // Fig. 12 fast path: the phase was seen before — jump straight to
          // its preferred allocation (never below baseline: the guarantee
          // must hold even if the table is stale).
          state->targets[i] = std::max(*preferred, t.baseline_ways);
          state->category[i] = Category::kKeeper;
        } else {
          state->targets[i] = t.baseline_ways;
          state->measuring_baseline[i] = 1;
          // Category stays Reclaim for one interval; the categorizer moves
          // it to Keeper after the baseline measurement lands.
        }
        state->reason[i] = AllocationReason::kReclaim;
        ++state->reclaims;
        break;
      }
      case Category::kDonor:
        if (t.idle ||
            t.llc_refs_per_kilo_instruction <= config.llc_ref_per_kilo_instruction_thr) {
          state->targets[i] = config.min_ways;  // idle donor: release everything
        } else {
          state->targets[i] = std::max(t.ways > 0 ? t.ways - 1 : 0, config.min_ways);  // gradual
        }
        state->reason[i] = AllocationReason::kDonate;
        break;
      case Category::kStreaming:
        state->targets[i] = config.min_ways;
        state->reason[i] = AllocationReason::kDonate;
        break;
      case Category::kKeeper:
      case Category::kUnknown:
      case Category::kReceiver:
        state->targets[i] = std::max(t.ways, config.min_ways);
        break;
    }
  }
}

void Pass2FitToBudget(const PolicyInputs& inputs, DcatPassState* state) {
  const DcatConfig& config = *inputs.config;
  const size_t n = inputs.tenants.size();
  auto used = [state]() {
    uint32_t sum = 0;
    for (uint32_t w : state->targets) {
      sum += w;
    }
    return sum;
  };
  while (used() > inputs.total_ways) {
    // Shrink the non-reclaiming tenant with the largest surplus over its
    // baseline by one way.
    size_t victim = n;
    uint32_t best_surplus = 0;
    for (size_t i = 0; i < n; ++i) {
      if (state->category[i] == Category::kReclaim) {
        continue;
      }
      const uint32_t floor = std::max(
          std::min(inputs.tenants[i].baseline_ways, state->targets[i]), config.min_ways);
      const uint32_t surplus = state->targets[i] > floor ? state->targets[i] - floor : 0;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        victim = i;
      }
    }
    if (victim == n) {
      // No surplus anywhere: shrink over-baseline reclaims... cannot happen
      // with admission control; guard against config bugs.
      std::fprintf(stderr, "dcat policy: cannot satisfy reclaim demands\n");
      std::abort();
    }
    --state->targets[victim];
    state->reason[victim] = AllocationReason::kShrinkForReclaim;
  }
}

void Pass3GrowFromPool(const PolicyInputs& inputs, DcatPassState* state) {
  const size_t n = inputs.tenants.size();
  uint32_t sum = 0;
  for (uint32_t w : state->targets) {
    sum += w;
  }
  uint32_t pool = inputs.total_ways - sum;
  for (Category cls : {Category::kUnknown, Category::kReceiver}) {
    for (size_t i = 0; i < n && pool > 0; ++i) {
      const PolicyTenant& t = inputs.tenants[i];
      if (state->category[i] != cls || state->measuring_baseline[i] || t.quarantined) {
        continue;
      }
      // Only grow once the phase baseline is established.
      if (!t.has_phase || !t.baseline_valid) {
        continue;
      }
      ++state->targets[i];
      --pool;
      state->reason[i] = AllocationReason::kGrowFromPool;
    }
    // Anyone in this class who wanted a way but got none?
    for (size_t i = 0; i < n; ++i) {
      const PolicyTenant& t = inputs.tenants[i];
      if (state->category[i] == cls && !state->measuring_baseline[i] && !t.quarantined &&
          state->targets[i] <= t.ways && pool == 0) {
        state->grow_denied[i] = 1;
      }
    }
  }
  state->pool = pool;
}

void MaxPerformanceRebalance(const PolicyInputs& inputs, DcatPassState* state) {
  // Candidates: tenants with a valid baseline and at least two measured
  // table entries, currently in a stable or growing state. Their combined
  // ways are redistributed to maximize predicted total normalized IPC.
  std::vector<size_t> candidate_index;
  std::vector<TableChoices> choices;
  uint32_t budget = 0;
  double current_value = 0.0;
  for (size_t i = 0; i < inputs.tenants.size(); ++i) {
    const PolicyTenant& t = inputs.tenants[i];
    if (state->category[i] != Category::kKeeper && state->category[i] != Category::kReceiver) {
      continue;
    }
    if (!t.has_phase || t.table == nullptr) {
      continue;
    }
    if (!t.baseline_valid || t.table->size() < 2) {
      continue;
    }
    // Still exploring: the current target has no measurement yet, so the
    // solver would "optimize" it away to the best measured size and undo
    // the exploration every other tick. Wait for the sample.
    if (!t.table->Has(state->targets[i])) {
      return;
    }
    TableChoices c;
    for (const auto& [ways, value] : t.table->Entries()) {
      // Never offer sizes below the contracted baseline: the guarantee
      // outranks total-throughput optimization.
      if (ways >= t.baseline_ways) {
        c.options.emplace_back(ways, value);
      }
    }
    if (c.options.size() < 2) {
      continue;
    }
    candidate_index.push_back(i);
    choices.push_back(std::move(c));
    budget += state->targets[i];
    const auto at_current = t.table->Get(state->targets[i]);
    current_value += at_current.value_or(1.0);
  }
  if (candidate_index.size() < 2) {
    return;
  }
  const std::vector<uint32_t> solution = SolveMaxPerformance(choices, budget);
  if (solution.empty()) {
    return;
  }
  double solution_value = 0.0;
  for (size_t k = 0; k < solution.size(); ++k) {
    const auto v = inputs.tenants[candidate_index[k]].table->Get(solution[k]);
    solution_value += v.value_or(0.0);
  }
  // Only move ways for a predicted net win (epsilon guards thrash).
  if (solution_value <= current_value + 1e-6) {
    return;
  }
  for (size_t k = 0; k < solution.size(); ++k) {
    state->targets[candidate_index[k]] = solution[k];
  }
  DCAT_LOG(kDebug) << "max-perf rebalance: predicted " << current_value << " -> "
                   << solution_value;
}

PolicyDecision ToDecision(const DcatPassState& state) {
  PolicyDecision decision;
  decision.reclaims = state.reclaims;
  decision.tenants.reserve(state.targets.size());
  for (size_t i = 0; i < state.targets.size(); ++i) {
    TenantDecision d;
    d.ways = state.targets[i];
    d.category = state.category[i];
    d.measuring_baseline = state.measuring_baseline[i] != 0;
    d.grow_denied = state.grow_denied[i] != 0;
    d.reason = state.reason[i];
    d.group = static_cast<uint32_t>(i);
    decision.tenants.push_back(d);
  }
  return decision;
}

}  // namespace dcat
