#include "src/policies/registry.h"

#include "src/policies/lfoc_cluster.h"
#include "src/policies/paper_policies.h"

namespace dcat {

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry registry;
  return registry;
}

PolicyRegistry::PolicyRegistry() {
  Register("max-fairness", []() -> std::unique_ptr<Policy> {
    return std::make_unique<MaxFairnessPolicy>();
  });
  Register("max-performance", []() -> std::unique_ptr<Policy> {
    return std::make_unique<MaxPerformancePolicy>();
  });
  Register("lfoc-cluster", []() -> std::unique_ptr<Policy> {
    return std::make_unique<LfocClusterPolicy>();
  });
}

std::string PolicyRegistry::CanonicalName(const std::string& spelling) {
  if (spelling == "fair" || spelling == "max_fairness") {
    return "max-fairness";
  }
  if (spelling == "maxperf" || spelling == "max_performance") {
    return "max-performance";
  }
  if (spelling == "lfoc" || spelling == "lfoc_cluster") {
    return "lfoc-cluster";
  }
  return spelling;
}

bool PolicyRegistry::Register(const std::string& name, Factory factory) {
  return factories_.emplace(name, factory).second;
}

std::unique_ptr<Policy> PolicyRegistry::Create(const std::string& name_or_alias) const {
  const auto it = factories_.find(CanonicalName(name_or_alias));
  if (it == factories_.end()) {
    return nullptr;
  }
  return it->second();
}

bool PolicyRegistry::Known(const std::string& name_or_alias) const {
  return factories_.count(CanonicalName(name_or_alias)) > 0;
}

std::vector<std::string> PolicyRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;  // std::map iterates in sorted order
}

std::string PolicyRegistry::NamesList() const {
  std::string out;
  for (const auto& [name, factory] : factories_) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

}  // namespace dcat
