// The paper's allocation passes (§3.4, §3.5), shared across policies.
//
// Pass 1 turns each tenant's category into a fixed demand (reclaims jump
// to baseline or the table's preferred size, donors shed ways, streamers
// pin at the minimum). Pass 2 shrinks over-baseline surplus until the
// demands fit the socket. Pass 3 grows Unknowns (priority) then Receivers
// round-robin from the free pool. The max-performance DP rebalance is the
// optional pass 4.
//
// Both paper policies are thin compositions of these passes; the LFOC
// clustering policy reuses pass 1 for demands and re-derives passes 2/3 at
// cluster granularity.
#ifndef SRC_POLICIES_DCAT_PASSES_H_
#define SRC_POLICIES_DCAT_PASSES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/policies/policy.h"

namespace dcat {

// Mutable working state threaded through the passes. Categories and
// measuring/grow flags start from the inputs and are mutated exactly the
// way the controller's in-place passes historically did.
struct DcatPassState {
  std::vector<uint32_t> targets;
  std::vector<Category> category;
  std::vector<char> measuring_baseline;
  std::vector<char> grow_denied;
  std::vector<std::optional<AllocationReason>> reason;
  uint32_t pool = 0;      // set by pass 3
  uint32_t reclaims = 0;  // demands derived from a reclaim (pass 1)
};

DcatPassState InitPassState(const PolicyInputs& inputs);

// Pass 1: fixed demands. Quarantined tenants hold steady; Reclaim jumps to
// max(preferred, baseline) when the phase's table already knows a preferred
// size (Fig. 12 fast path) or to the baseline while measuring; Donors shed
// gradually (or fully when idle); Streaming pins at the minimum.
void Pass1FixedDemands(const PolicyInputs& inputs, DcatPassState* state);

// Pass 2: shrink the non-reclaiming tenant with the largest surplus over
// its floor until the demands fit the socket. Σ baselines <= total ways
// (admission control), so this always terminates; an unfittable demand set
// is a programmer error and aborts.
void Pass2FitToBudget(const PolicyInputs& inputs, DcatPassState* state);

// Pass 3: round-robin growth from the free pool, Unknowns before
// Receivers, one way per tenant per interval; marks grow_denied when the
// pool ran dry on a tenant that wanted a way.
void Pass3GrowFromPool(const PolicyInputs& inputs, DcatPassState* state);

// Pass 4 (max-performance): redistributes the combined ways of stable
// tenants with populated tables to maximize predicted total normalized
// IPC; only commits a strict predicted win.
void MaxPerformanceRebalance(const PolicyInputs& inputs, DcatPassState* state);

// Packages the working state as a per-tenant decision with singleton
// groups (group == index), the shape every non-clustering policy returns.
PolicyDecision ToDecision(const DcatPassState& state);

}  // namespace dcat

#endif  // SRC_POLICIES_DCAT_PASSES_H_
