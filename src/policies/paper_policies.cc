#include "src/policies/paper_policies.h"

#include "src/policies/dcat_passes.h"

namespace dcat {

PolicyDecision MaxFairnessPolicy::Decide(const PolicyInputs& inputs) const {
  DcatPassState state = InitPassState(inputs);
  Pass1FixedDemands(inputs, &state);
  Pass2FitToBudget(inputs, &state);
  Pass3GrowFromPool(inputs, &state);
  return ToDecision(state);
}

PolicyDecision MaxPerformancePolicy::Decide(const PolicyInputs& inputs) const {
  DcatPassState state = InitPassState(inputs);
  Pass1FixedDemands(inputs, &state);
  Pass2FitToBudget(inputs, &state);
  Pass3GrowFromPool(inputs, &state);
  // Rebalance once discovery has populated the tables and the pool is
  // exhausted; changed targets carry the rebalance label.
  if (state.pool == 0) {
    const std::vector<uint32_t> before = state.targets;
    MaxPerformanceRebalance(inputs, &state);
    for (size_t i = 0; i < state.targets.size(); ++i) {
      if (state.targets[i] != before[i]) {
        state.reason[i] = AllocationReason::kRebalance;
      }
    }
  }
  return ToDecision(state);
}

}  // namespace dcat
