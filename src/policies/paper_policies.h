// The paper's two allocation policies on the Policy interface.
//
// max-fairness: passes 1-3 — reclaim first, then spread the free pool one
// way at a time over Unknowns (priority) and Receivers. max-performance:
// the same discovery passes plus the §3.5 DP rebalance over the
// performance tables once the pool runs dry. Both are byte-identical ports
// of the controller's historical in-place allocator.
#ifndef SRC_POLICIES_PAPER_POLICIES_H_
#define SRC_POLICIES_PAPER_POLICIES_H_

#include <string>

#include "src/policies/policy.h"

namespace dcat {

class MaxFairnessPolicy : public Policy {
 public:
  std::string name() const override { return "max-fairness"; }
  PolicyDecision Decide(const PolicyInputs& inputs) const override;
};

class MaxPerformancePolicy : public Policy {
 public:
  std::string name() const override { return "max-performance"; }
  PolicyDecision Decide(const PolicyInputs& inputs) const override;
};

}  // namespace dcat

#endif  // SRC_POLICIES_PAPER_POLICIES_H_
