// Pluggable allocation-policy interface (Step 5, Allocate Cache).
//
// The controller runs the paper's steps 1-4 (statistics, phase detection,
// baseline/table maintenance, Fig. 6 categorization) and then hands the
// whole per-tenant picture to a Policy, which decides the next interval's
// way counts and the tenant->COS grouping. Policies are pure functions of
// their inputs: Decide() must not keep state between calls, touch the
// backend, or emit telemetry — the controller owns all side effects
// (mask programming, rollback, events, metrics). Purity is what makes a
// policy unit-testable from a hand-built PolicyInputs and what keeps fuzz
// traces deterministic.
//
// Implementations register in the PolicyRegistry (registry.h) under a
// canonical kebab-case name; everything policy-related is selected by that
// string (DcatConfig::policy, dcatd --policy=, dcat_fuzz --policy=,
// bench --policies=).
#ifndef SRC_POLICIES_POLICY_H_
#define SRC_POLICIES_POLICY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/category.h"
#include "src/core/config.h"
#include "src/core/manager.h"
#include "src/core/performance_table.h"
#include "src/telemetry/events.h"

namespace dcat {

// One tenant's decision-relevant state, snapshotted by the controller
// after categorization. `table` borrows the current phase's performance
// table (valid for the duration of the Decide call) and is null before the
// first phase is identified.
struct PolicyTenant {
  TenantId id = 0;
  // Category entering the decision (post-Fig. 6). Policies may move it —
  // e.g. an idle Reclaim becomes a Donor — and return the result.
  Category category = Category::kDonor;
  uint32_t ways = 0;           // allocation in effect (last interval)
  uint32_t baseline_ways = 0;  // contracted baseline
  // COS-sharing group the tenant currently belongs to (clustering policies
  // only; the controller assigns admission-time groups).
  uint32_t group = 0;
  // This interval's sample was quarantined (counter anomaly): hold steady.
  bool quarantined = false;
  bool idle = false;  // phase detector's idle determination
  // EWMA phase signature (memory accesses per instruction) and this
  // interval's cache-pressure signals.
  double phase_signature = 0.0;
  double llc_refs_per_kilo_instruction = 0.0;
  double llc_miss_rate = 0.0;
  bool has_phase = false;
  bool baseline_valid = false;       // current phase's baseline established
  bool measuring_baseline = false;   // waiting for a clean baseline interval
  const PerformanceTable* table = nullptr;  // current phase; null pre-phase
};

// The whole-socket decision problem: every tenant plus the budget.
struct PolicyInputs {
  uint32_t total_ways = 0;
  uint32_t num_cos = 0;  // COS 0 stays the unmanaged default
  const DcatConfig* config = nullptr;
  std::vector<PolicyTenant> tenants;
};

// One tenant's verdict. `reason`, when set, labels the allocation event the
// controller publishes for a changed way count (unset: the controller
// infers grow-from-pool/donate from the direction of the change).
struct TenantDecision {
  uint32_t ways = 0;
  Category category = Category::kDonor;
  bool measuring_baseline = false;
  bool grow_denied = false;
  std::optional<AllocationReason> reason;
  // Tenants with equal `group` share one COS (and must be given equal
  // `ways`). Non-clustering policies return a distinct group per tenant.
  uint32_t group = 0;
};

struct PolicyDecision {
  std::vector<TenantDecision> tenants;  // aligned with PolicyInputs::tenants
  // How many demands were derived from a reclaim this interval (feeds the
  // controller.reclaims counter; a later fit pass may relabel the tenant's
  // final `reason`, so this cannot be recovered from the decisions alone).
  uint32_t reclaims = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;

  // Canonical registry name ("max-fairness", "lfoc-cluster", ...).
  virtual std::string name() const = 0;

  // True when decisions may map several tenants onto one COS. The
  // controller then routes applies through the shared-COS path and lifts
  // the tenants-per-socket ceiling from the COS count to the core count.
  virtual bool ClustersTenants() const { return false; }

  // Pure decision function: same inputs, same decision, no side effects.
  virtual PolicyDecision Decide(const PolicyInputs& inputs) const = 0;
};

}  // namespace dcat

#endif  // SRC_POLICIES_POLICY_H_
