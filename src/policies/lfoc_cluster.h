// LFOC-style fairness-oriented clustering policy.
//
// The paper's policies give every tenant a private COS, which caps tenants
// per socket at the COS count (16 on the Xeon E5). Following LFOC
// ("Labeled Fairness-Oriented Cache partitioning", PAPERS.md), this policy
// groups cache-compatible tenants onto shared COSes instead:
//
//   - Streaming tenants share one cluster pinned at the minimum
//     allocation: their cyclic accesses thrash whatever they are given, so
//     mutual interference inside the cluster costs nothing.
//   - Donors (idle or cache-indifferent) share one cluster sized to the
//     largest donor demand.
//   - Cache-sensitive tenants (Reclaim/Keeper/Unknown/Receiver and
//     quarantined holds) keep private clusters while the COS budget lasts;
//     past the budget they merge with the sensitive cluster of closest
//     demand, and the cluster is sized to its most demanding member so no
//     member ever drops below its own demand — in particular a reclaiming
//     member's contracted baseline is preserved (fairness first).
//
// The cluster size is the max (not the sum) of member demands: sharing is
// what lifts the tenant ceiling without oversubscribing the socket.
// Demands come from the shared pass 1; fit and pool growth run at cluster
// granularity.
#ifndef SRC_POLICIES_LFOC_CLUSTER_H_
#define SRC_POLICIES_LFOC_CLUSTER_H_

#include <string>

#include "src/policies/policy.h"

namespace dcat {

class LfocClusterPolicy : public Policy {
 public:
  std::string name() const override { return "lfoc-cluster"; }
  bool ClustersTenants() const override { return true; }
  PolicyDecision Decide(const PolicyInputs& inputs) const override;
};

}  // namespace dcat

#endif  // SRC_POLICIES_LFOC_CLUSTER_H_
