#include "src/policies/lfoc_cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/policies/dcat_passes.h"

namespace dcat {
namespace {

enum Role { kSensitive, kDonorRole, kStreamingRole };

struct Cluster {
  std::vector<size_t> members;
  uint32_t ways = 0;   // max member demand (pinned to min for streaming)
  uint32_t floor = 0;  // max member floor; fit never shrinks below it
};

}  // namespace

PolicyDecision LfocClusterPolicy::Decide(const PolicyInputs& inputs) const {
  const size_t n = inputs.tenants.size();
  const DcatConfig& config = *inputs.config;
  DcatPassState state = InitPassState(inputs);
  Pass1FixedDemands(inputs, &state);

  // Cluster roles from the post-pass-1 categories. Quarantined tenants are
  // treated as sensitive regardless of category: their demand is a hold of
  // the current allocation and must not be dragged around by a shared
  // donor cluster.
  std::vector<int> role(n, kSensitive);
  bool has_donor = false;
  bool has_streaming = false;
  for (size_t i = 0; i < n; ++i) {
    if (inputs.tenants[i].quarantined) {
      continue;
    }
    if (state.category[i] == Category::kStreaming) {
      role[i] = kStreamingRole;
      has_streaming = true;
    } else if (state.category[i] == Category::kDonor) {
      role[i] = kDonorRole;
      has_donor = true;
    }
  }

  // A member's fairness floor: a sensitive tenant is never shrunk below
  // min(contracted baseline, its demand); donors and streamers surrendered
  // down to the CAT floor by definition.
  auto member_floor = [&](size_t i) {
    if (role[i] != kSensitive) {
      return config.min_ways;
    }
    return std::max(std::min(inputs.tenants[i].baseline_ways, state.targets[i]),
                    config.min_ways);
  };

  // Sensitive tenants get private clusters while the COS budget lasts
  // (one COS stays reserved for each of the donor/streaming clusters),
  // then merge with the sensitive cluster of closest size — compatible
  // demands interfere least. Deterministic: tenant order, ties to the
  // lowest cluster index.
  const uint32_t cos_budget = inputs.num_cos > 0 ? inputs.num_cos - 1 : 0;
  const uint32_t reserved = (has_donor ? 1u : 0u) + (has_streaming ? 1u : 0u);
  const uint32_t sensitive_budget = cos_budget > reserved ? cos_budget - reserved : 1;

  std::vector<Cluster> clusters;
  std::vector<size_t> cluster_of(n, 0);
  size_t sensitive_clusters = 0;
  for (size_t i = 0; i < n; ++i) {
    if (role[i] != kSensitive) {
      continue;
    }
    const uint32_t demand = state.targets[i];
    size_t target_cluster = clusters.size();
    if (sensitive_clusters >= sensitive_budget) {
      uint32_t best_distance = 0;
      bool found = false;
      for (size_t c = 0; c < clusters.size(); ++c) {
        const uint32_t distance =
            clusters[c].ways > demand ? clusters[c].ways - demand : demand - clusters[c].ways;
        if (!found || distance < best_distance) {
          best_distance = distance;
          target_cluster = c;
          found = true;
        }
      }
    }
    if (target_cluster == clusters.size()) {
      clusters.push_back(Cluster{});
      ++sensitive_clusters;
    }
    Cluster& cluster = clusters[target_cluster];
    cluster.members.push_back(i);
    cluster.ways = std::max(cluster.ways, demand);
    cluster.floor = std::max(cluster.floor, member_floor(i));
    cluster_of[i] = target_cluster;
  }
  if (has_donor) {
    clusters.push_back(Cluster{});
    Cluster& cluster = clusters.back();
    for (size_t i = 0; i < n; ++i) {
      if (role[i] == kDonorRole) {
        cluster.members.push_back(i);
        cluster.ways = std::max(cluster.ways, state.targets[i]);
        cluster.floor = std::max(cluster.floor, member_floor(i));
        cluster_of[i] = clusters.size() - 1;
      }
    }
  }
  if (has_streaming) {
    // Pinned at the minimum: pass 1 demands the minimum for every
    // streamer, so the max below is exactly config.min_ways — stated
    // explicitly because the streaming-pinned invariant depends on it.
    clusters.push_back(Cluster{});
    Cluster& cluster = clusters.back();
    cluster.ways = config.min_ways;
    cluster.floor = config.min_ways;
    for (size_t i = 0; i < n; ++i) {
      if (role[i] == kStreamingRole) {
        cluster.members.push_back(i);
        cluster_of[i] = clusters.size() - 1;
      }
    }
  }

  // Cluster-level fit: shrink the cluster with the largest surplus over
  // its floor. Σ cluster floors <= Σ contracted baselines <= socket ways
  // (admission control), so this always terminates.
  auto total_used = [&clusters]() {
    uint32_t sum = 0;
    for (const Cluster& c : clusters) {
      sum += c.ways;
    }
    return sum;
  };
  while (total_used() > inputs.total_ways) {
    size_t victim = clusters.size();
    uint32_t best_surplus = 0;
    for (size_t c = 0; c < clusters.size(); ++c) {
      const uint32_t surplus =
          clusters[c].ways > clusters[c].floor ? clusters[c].ways - clusters[c].floor : 0;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        victim = c;
      }
    }
    if (victim == clusters.size()) {
      std::fprintf(stderr, "lfoc-cluster: cannot fit cluster demands\n");
      std::abort();
    }
    --clusters[victim].ways;
  }

  // Cluster-level pool growth, same priority order as pass 3: a cluster
  // with a growable Unknown (then Receiver) member gets one way.
  uint32_t pool = inputs.total_ways - total_used();
  auto growable = [&](size_t i, Category cls) {
    const PolicyTenant& t = inputs.tenants[i];
    return state.category[i] == cls && !state.measuring_baseline[i] && !t.quarantined &&
           t.has_phase && t.baseline_valid;
  };
  for (Category cls : {Category::kUnknown, Category::kReceiver}) {
    for (size_t c = 0; c < clusters.size() && pool > 0; ++c) {
      bool wants = false;
      for (size_t i : clusters[c].members) {
        if (growable(i, cls)) {
          wants = true;
        }
      }
      if (!wants) {
        continue;
      }
      ++clusters[c].ways;
      --pool;
      for (size_t i : clusters[c].members) {
        if (growable(i, cls)) {
          state.reason[i] = AllocationReason::kGrowFromPool;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const PolicyTenant& t = inputs.tenants[i];
      if (state.category[i] == cls && !state.measuring_baseline[i] && !t.quarantined &&
          clusters[cluster_of[i]].ways <= t.ways && pool == 0) {
        state.grow_denied[i] = 1;
      }
    }
  }

  PolicyDecision decision;
  decision.reclaims = state.reclaims;
  decision.tenants.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TenantDecision d;
    d.ways = clusters[cluster_of[i]].ways;
    d.category = state.category[i];
    d.measuring_baseline = state.measuring_baseline[i] != 0;
    d.grow_denied = state.grow_denied[i] != 0;
    d.reason = state.reason[i];
    if (d.ways < state.targets[i]) {
      // The fit pass shrank this member's cluster below its own demand.
      d.reason = AllocationReason::kShrinkForReclaim;
    }
    d.group = static_cast<uint32_t>(cluster_of[i]);
    decision.tenants.push_back(d);
  }
  return decision;
}

}  // namespace dcat
