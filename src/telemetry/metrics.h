// Metrics registry for the dCat daemon: counters, gauges, histograms.
//
// The control loop updates a small fixed set of instruments every interval
// (ticks, phase changes per tenant, reclaims, pool occupancy, per-category
// tenant counts, allocation latency); operators snapshot them as aligned
// text (`dcatd --metrics`) or JSON. Instruments are created on first use
// and live as long as the registry; returned references stay valid across
// later registrations.
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dcat {

// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time value (pool occupancy, tenants per category).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bound histogram with count/sum, for latency-style distributions.
// Bounds are upper edges; an implicit +inf bucket catches the tail.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double max() const { return max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // bucket_counts()[i] observations fell in (bounds[i-1], bounds[i]];
  // the final element is the +inf overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // Finds or creates the named instrument. A name registered as one kind
  // must not be requested as another (aborts: it is a programming error).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, std::vector<double> bounds);

  // Read-only iteration, name-sorted (the fleet layer sums the per-host
  // registries into one fleet-wide view through these).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }

  // Aligned "name value" text, one instrument per line, sorted by name.
  std::string RenderText() const;
  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {count, sum, mean, max, buckets: [...]}}}.
  std::string RenderJson() const;

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

 private:
  // std::map: node-stable, so references survive later registrations, and
  // iteration is already name-sorted for rendering.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

}  // namespace dcat

#endif  // SRC_TELEMETRY_METRICS_H_
