#include "src/telemetry/trace.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/table.h"
#include "src/telemetry/json.h"

namespace dcat {
namespace {

// Writer and reader must agree on field names; keep them in one place.
constexpr char kType[] = "type";
constexpr char kTick[] = "tick";
constexpr char kTenant[] = "tenant";

double NumberOr(const std::map<std::string, JsonValue>& fields, const std::string& key,
                double fallback) {
  const auto it = fields.find(key);
  return it != fields.end() && it->second.kind == JsonValue::Kind::kNumber ? it->second.num
                                                                           : fallback;
}

std::optional<std::string> String(const std::map<std::string, JsonValue>& fields,
                                  const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.kind != JsonValue::Kind::kString) {
    return std::nullopt;
  }
  return it->second.str;
}

bool BoolOr(const std::map<std::string, JsonValue>& fields, const std::string& key,
            bool fallback) {
  const auto it = fields.find(key);
  return it != fields.end() && it->second.kind == JsonValue::Kind::kBool ? it->second.boolean
                                                                         : fallback;
}

}  // namespace

void JsonlTraceWriter::OnTick(const TickEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("tick");
  json.Key(kTick).Value(event.tick);
  json.Key(kTenant).Value(event.tenant);
  json.Key("category").Value(CategoryName(event.category));
  json.Key("ways").Value(event.ways);
  json.Key("ipc").Value(event.ipc);
  json.Key("norm_ipc").Value(event.norm_ipc);
  json.Key("llc_miss_rate").Value(event.llc_miss_rate);
  json.Key("phase_changed").Value(event.phase_changed);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnPhaseChange(const PhaseChangeEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("phase_change");
  json.Key(kTick).Value(event.tick);
  json.Key(kTenant).Value(event.tenant);
  json.Key("phase").Value(event.phase_index);
  json.Key("signature").Value(event.signature);
  json.Key("known_phase").Value(event.known_phase);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnCategoryChange(const CategoryChangeEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("category_change");
  json.Key(kTick).Value(event.tick);
  json.Key(kTenant).Value(event.tenant);
  json.Key("from").Value(CategoryName(event.from));
  json.Key("to").Value(CategoryName(event.to));
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnAllocation(const AllocationEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("allocation");
  json.Key(kTick).Value(event.tick);
  json.Key(kTenant).Value(event.tenant);
  json.Key("reason").Value(AllocationReasonName(event.reason));
  json.Key("from_ways").Value(event.from_ways);
  json.Key("to_ways").Value(event.to_ways);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnBackendFault(const BackendFaultEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("backend_fault");
  json.Key(kTick).Value(event.tick);
  json.Key(kTenant).Value(event.tenant);
  json.Key("op").Value(BackendOpName(event.op));
  json.Key("attempts").Value(event.attempts);
  json.Key("recovered").Value(event.recovered);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnMaskDrift(const MaskDriftEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("mask_drift");
  json.Key(kTick).Value(event.tick);
  json.Key(kTenant).Value(event.tenant);
  json.Key("cos").Value(static_cast<uint32_t>(event.cos));
  json.Key("expected").Value(event.expected);
  json.Key("actual").Value(event.actual);
  json.Key("association").Value(event.association);
  json.Key("core").Value(static_cast<uint32_t>(event.core));
  json.Key("repaired").Value(event.repaired);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnCounterAnomaly(const CounterAnomalyEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("counter_anomaly");
  json.Key(kTick).Value(event.tick);
  json.Key(kTenant).Value(event.tenant);
  json.Key("kind").Value(CounterAnomalyKindName(event.kind));
  json.Key("streak").Value(event.streak);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnFidelity(const FidelityEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("fidelity");
  json.Key(kTick).Value(event.tick);
  json.Key(kTenant).Value(event.tenant);
  json.Key("analytic").Value(event.analytic);
  json.Key("reason").Value(FidelityReasonName(event.reason));
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnRestart(const RestartEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("restart");
  json.Key(kTick).Value(event.tick);
  json.Key("cold_boot").Value(event.cold_boot);
  json.Key("degraded").Value(event.degraded);
  json.Key("journal_records").Value(event.journal_records);
  json.Key("torn_records").Value(event.torn_records);
  json.Key("tenants").Value(event.tenants);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnRecovery(const RecoveryEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("recovery");
  json.Key(kTick).Value(event.tick);
  json.Key("adopted").Value(event.adopted);
  json.Key("redone").Value(event.redone);
  json.Key("divergent").Value(event.divergent);
  json.Key("recovery_ticks").Value(event.recovery_ticks);
  json.Key("converged").Value(event.converged);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

void JsonlTraceWriter::OnModeChange(const ModeChangeEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key(kType).Value("mode_change");
  json.Key(kTick).Value(event.tick);
  json.Key("degraded").Value(event.degraded);
  json.Key("consecutive_failures").Value(event.consecutive_failures);
  json.EndObject();
  *out_ << json.str() << '\n';
  out_->flush();
  ++lines_;
}

std::string DecisionLog::ToCsv() const {
  TextTable table({"tick", "tenant", "category", "ways", "ipc", "norm_ipc", "llc_miss_rate",
                   "phase_changed"});
  for (const TickEvent& e : rows_) {
    table.AddRow({TextTable::FmtInt(static_cast<long long>(e.tick)), TextTable::FmtInt(e.tenant),
                  CategoryName(e.category), TextTable::FmtInt(e.ways),
                  TextTable::Fmt(e.ipc, 4), TextTable::Fmt(e.norm_ipc, 4),
                  TextTable::Fmt(e.llc_miss_rate, 4), e.phase_changed ? "1" : "0"});
  }
  return table.ToCsv();
}

std::optional<Category> CategoryFromName(const std::string& name) {
  for (const Category c : {Category::kReclaim, Category::kKeeper, Category::kDonor,
                           Category::kReceiver, Category::kStreaming, Category::kUnknown}) {
    if (name == CategoryName(c)) {
      return c;
    }
  }
  return std::nullopt;
}

std::optional<AllocationReason> AllocationReasonFromName(const std::string& name) {
  for (const AllocationReason r :
       {AllocationReason::kAdmit, AllocationReason::kEvict, AllocationReason::kReclaim,
        AllocationReason::kShrinkForReclaim, AllocationReason::kGrowFromPool,
        AllocationReason::kGrowDenied, AllocationReason::kDonate,
        AllocationReason::kRebalance, AllocationReason::kDegradedBaseline}) {
    if (name == AllocationReasonName(r)) {
      return r;
    }
  }
  return std::nullopt;
}

std::optional<BackendOp> BackendOpFromName(const std::string& name) {
  for (const BackendOp op : {BackendOp::kSetCosMask, BackendOp::kAssociateCore}) {
    if (name == BackendOpName(op)) {
      return op;
    }
  }
  return std::nullopt;
}

std::optional<CounterAnomalyKind> CounterAnomalyKindFromName(const std::string& name) {
  for (const CounterAnomalyKind kind :
       {CounterAnomalyKind::kNonMonotonic, CounterAnomalyKind::kWrapped,
        CounterAnomalyKind::kFrozen, CounterAnomalyKind::kGarbage}) {
    if (name == CounterAnomalyKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<FidelityReason> FidelityReasonFromName(const std::string& name) {
  for (const FidelityReason r :
       {FidelityReason::kSteady, FidelityReason::kWarmup, FidelityReason::kDecision,
        FidelityReason::kMaskChange, FidelityReason::kChurn, FidelityReason::kPhaseBoundary,
        FidelityReason::kResample, FidelityReason::kUnsteady, FidelityReason::kForced}) {
    if (name == FidelityReasonName(r)) {
      return r;
    }
  }
  return std::nullopt;
}

std::optional<TraceEvent> ParseTraceLine(const std::string& line) {
  std::map<std::string, JsonValue> fields;
  if (!ParseFlatJsonObject(line, &fields)) {
    return std::nullopt;
  }
  const auto type = String(fields, kType);
  if (!type.has_value()) {
    return std::nullopt;
  }
  TraceEvent record;
  record.type = *type;
  const auto tick = static_cast<uint64_t>(NumberOr(fields, kTick, 0));
  const auto tenant = static_cast<TenantId>(NumberOr(fields, kTenant, 0));

  if (*type == "tick") {
    TickEvent e;
    e.tick = tick;
    e.tenant = tenant;
    const auto category = String(fields, "category");
    const auto parsed = category.has_value() ? CategoryFromName(*category) : std::nullopt;
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    e.category = *parsed;
    e.ways = static_cast<uint32_t>(NumberOr(fields, "ways", 0));
    e.ipc = NumberOr(fields, "ipc", 0.0);
    e.norm_ipc = NumberOr(fields, "norm_ipc", 0.0);
    e.llc_miss_rate = NumberOr(fields, "llc_miss_rate", 0.0);
    e.phase_changed = BoolOr(fields, "phase_changed", false);
    record.tick = e;
    return record;
  }
  if (*type == "phase_change") {
    PhaseChangeEvent e;
    e.tick = tick;
    e.tenant = tenant;
    e.phase_index = static_cast<uint64_t>(NumberOr(fields, "phase", 0));
    e.signature = NumberOr(fields, "signature", 0.0);
    e.known_phase = BoolOr(fields, "known_phase", false);
    record.phase_change = e;
    return record;
  }
  if (*type == "category_change") {
    CategoryChangeEvent e;
    e.tick = tick;
    e.tenant = tenant;
    const auto from = String(fields, "from");
    const auto to = String(fields, "to");
    const auto parsed_from = from.has_value() ? CategoryFromName(*from) : std::nullopt;
    const auto parsed_to = to.has_value() ? CategoryFromName(*to) : std::nullopt;
    if (!parsed_from.has_value() || !parsed_to.has_value()) {
      return std::nullopt;
    }
    e.from = *parsed_from;
    e.to = *parsed_to;
    record.category_change = e;
    return record;
  }
  if (*type == "allocation") {
    AllocationEvent e;
    e.tick = tick;
    e.tenant = tenant;
    const auto reason = String(fields, "reason");
    const auto parsed = reason.has_value() ? AllocationReasonFromName(*reason) : std::nullopt;
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    e.reason = *parsed;
    e.from_ways = static_cast<uint32_t>(NumberOr(fields, "from_ways", 0));
    e.to_ways = static_cast<uint32_t>(NumberOr(fields, "to_ways", 0));
    record.allocation = e;
    return record;
  }
  if (*type == "backend_fault") {
    BackendFaultEvent e;
    e.tick = tick;
    e.tenant = tenant;
    const auto op = String(fields, "op");
    const auto parsed = op.has_value() ? BackendOpFromName(*op) : std::nullopt;
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    e.op = *parsed;
    e.attempts = static_cast<uint32_t>(NumberOr(fields, "attempts", 1));
    e.recovered = BoolOr(fields, "recovered", true);
    record.backend_fault = e;
    return record;
  }
  if (*type == "mask_drift") {
    MaskDriftEvent e;
    e.tick = tick;
    e.tenant = tenant;
    e.cos = static_cast<uint8_t>(NumberOr(fields, "cos", 0));
    e.expected = static_cast<uint32_t>(NumberOr(fields, "expected", 0));
    e.actual = static_cast<uint32_t>(NumberOr(fields, "actual", 0));
    e.association = BoolOr(fields, "association", false);
    e.core = static_cast<uint16_t>(NumberOr(fields, "core", 0));
    e.repaired = BoolOr(fields, "repaired", true);
    record.mask_drift = e;
    return record;
  }
  if (*type == "counter_anomaly") {
    CounterAnomalyEvent e;
    e.tick = tick;
    e.tenant = tenant;
    const auto kind = String(fields, "kind");
    const auto parsed = kind.has_value() ? CounterAnomalyKindFromName(*kind) : std::nullopt;
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    e.kind = *parsed;
    e.streak = static_cast<uint32_t>(NumberOr(fields, "streak", 1));
    record.counter_anomaly = e;
    return record;
  }
  if (*type == "fidelity") {
    FidelityEvent e;
    e.tick = tick;
    e.tenant = tenant;
    e.analytic = BoolOr(fields, "analytic", false);
    const auto reason = String(fields, "reason");
    const auto parsed = reason.has_value() ? FidelityReasonFromName(*reason) : std::nullopt;
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    e.reason = *parsed;
    record.fidelity = e;
    return record;
  }
  if (*type == "restart") {
    RestartEvent e;
    e.tick = tick;
    e.cold_boot = BoolOr(fields, "cold_boot", false);
    e.degraded = BoolOr(fields, "degraded", false);
    e.journal_records = static_cast<uint64_t>(NumberOr(fields, "journal_records", 0));
    e.torn_records = static_cast<uint64_t>(NumberOr(fields, "torn_records", 0));
    e.tenants = static_cast<uint32_t>(NumberOr(fields, "tenants", 0));
    record.restart = e;
    return record;
  }
  if (*type == "recovery") {
    RecoveryEvent e;
    e.tick = tick;
    e.adopted = static_cast<uint32_t>(NumberOr(fields, "adopted", 0));
    e.redone = static_cast<uint32_t>(NumberOr(fields, "redone", 0));
    e.divergent = static_cast<uint32_t>(NumberOr(fields, "divergent", 0));
    e.recovery_ticks = static_cast<uint64_t>(NumberOr(fields, "recovery_ticks", 0));
    e.converged = BoolOr(fields, "converged", true);
    record.recovery = e;
    return record;
  }
  if (*type == "mode_change") {
    ModeChangeEvent e;
    e.tick = tick;
    e.degraded = BoolOr(fields, "degraded", false);
    e.consecutive_failures =
        static_cast<uint32_t>(NumberOr(fields, "consecutive_failures", 0));
    record.mode_change = e;
    return record;
  }
  return std::nullopt;  // unknown type
}

namespace {

// Serializes the decision-relevant fields of one parsed trace event, or
// returns nullopt for lines the projection drops (fidelity transitions).
std::optional<std::string> ProjectDecisionLine(const TraceEvent& record) {
  JsonWriter json;
  json.BeginObject();
  if (record.tick.has_value()) {
    const TickEvent& e = *record.tick;
    json.Key(kType).Value("tick");
    json.Key(kTick).Value(e.tick);
    json.Key(kTenant).Value(e.tenant);
    json.Key("category").Value(CategoryName(e.category));
    json.Key("ways").Value(e.ways);
    json.Key("phase_changed").Value(e.phase_changed);
  } else if (record.phase_change.has_value()) {
    const PhaseChangeEvent& e = *record.phase_change;
    json.Key(kType).Value("phase_change");
    json.Key(kTick).Value(e.tick);
    json.Key(kTenant).Value(e.tenant);
    json.Key("phase").Value(e.phase_index);
    json.Key("known_phase").Value(e.known_phase);
  } else if (record.category_change.has_value()) {
    const CategoryChangeEvent& e = *record.category_change;
    json.Key(kType).Value("category_change");
    json.Key(kTick).Value(e.tick);
    json.Key(kTenant).Value(e.tenant);
    json.Key("from").Value(CategoryName(e.from));
    json.Key("to").Value(CategoryName(e.to));
  } else if (record.allocation.has_value()) {
    const AllocationEvent& e = *record.allocation;
    json.Key(kType).Value("allocation");
    json.Key(kTick).Value(e.tick);
    json.Key(kTenant).Value(e.tenant);
    json.Key("reason").Value(AllocationReasonName(e.reason));
    json.Key("from_ways").Value(e.from_ways);
    json.Key("to_ways").Value(e.to_ways);
  } else if (record.backend_fault.has_value()) {
    const BackendFaultEvent& e = *record.backend_fault;
    json.Key(kType).Value("backend_fault");
    json.Key(kTick).Value(e.tick);
    json.Key(kTenant).Value(e.tenant);
    json.Key("op").Value(BackendOpName(e.op));
    json.Key("attempts").Value(e.attempts);
    json.Key("recovered").Value(e.recovered);
  } else if (record.mask_drift.has_value()) {
    const MaskDriftEvent& e = *record.mask_drift;
    json.Key(kType).Value("mask_drift");
    json.Key(kTick).Value(e.tick);
    json.Key(kTenant).Value(e.tenant);
    json.Key("cos").Value(static_cast<uint32_t>(e.cos));
    json.Key("expected").Value(e.expected);
    json.Key("actual").Value(e.actual);
    json.Key("association").Value(e.association);
    json.Key("core").Value(static_cast<uint32_t>(e.core));
    json.Key("repaired").Value(e.repaired);
  } else if (record.counter_anomaly.has_value()) {
    const CounterAnomalyEvent& e = *record.counter_anomaly;
    json.Key(kType).Value("counter_anomaly");
    json.Key(kTick).Value(e.tick);
    json.Key(kTenant).Value(e.tenant);
    json.Key("kind").Value(CounterAnomalyKindName(e.kind));
    json.Key("streak").Value(e.streak);
  } else if (record.fidelity.has_value()) {
    return std::nullopt;  // which model produced the counters is not a decision
  } else if (record.mode_change.has_value()) {
    const ModeChangeEvent& e = *record.mode_change;
    json.Key(kType).Value("mode_change");
    json.Key(kTick).Value(e.tick);
    json.Key("degraded").Value(e.degraded);
    json.Key("consecutive_failures").Value(e.consecutive_failures);
  } else if (record.restart.has_value()) {
    const RestartEvent& e = *record.restart;
    json.Key(kType).Value("restart");
    json.Key(kTick).Value(e.tick);
    json.Key("cold_boot").Value(e.cold_boot);
    json.Key("degraded").Value(e.degraded);
    json.Key("journal_records").Value(e.journal_records);
    json.Key("torn_records").Value(e.torn_records);
    json.Key("tenants").Value(e.tenants);
  } else if (record.recovery.has_value()) {
    const RecoveryEvent& e = *record.recovery;
    json.Key(kType).Value("recovery");
    json.Key(kTick).Value(e.tick);
    json.Key("adopted").Value(e.adopted);
    json.Key("redone").Value(e.redone);
    json.Key("divergent").Value(e.divergent);
    json.Key("recovery_ticks").Value(e.recovery_ticks);
    json.Key("converged").Value(e.converged);
  } else {
    return std::nullopt;
  }
  json.EndObject();
  return json.str();
}

}  // namespace

std::string ExtractDecisionTrace(const std::string& jsonl_trace) {
  std::istringstream in(jsonl_trace);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const auto record = ParseTraceLine(line);
    if (!record.has_value()) {
      out += line;  // keep unparseable lines verbatim: they must still diff
      out += '\n';
      continue;
    }
    const auto projected = ProjectDecisionLine(*record);
    if (projected.has_value()) {
      out += *projected;
      out += '\n';
    }
  }
  return out;
}

std::optional<std::vector<TraceEvent>> ReadTrace(std::istream& in, size_t* error_line) {
  std::vector<TraceEvent> records;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    auto record = ParseTraceLine(line);
    if (!record.has_value()) {
      if (error_line != nullptr) {
        *error_line = line_number;
      }
      return std::nullopt;
    }
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace dcat
