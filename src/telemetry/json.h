// Minimal JSON emission and parsing for the telemetry subsystem.
//
// The writer produces compact (no-whitespace) JSON — enough for the JSONL
// trace and metrics snapshots; the parser handles the flat scalar objects
// those traces contain (one event per line, no nesting inside events).
// Deliberately not a general JSON library: no external dependency is worth
// carrying for newline-delimited telemetry records.
#ifndef SRC_TELEMETRY_JSON_H_
#define SRC_TELEMETRY_JSON_H_

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

namespace dcat {

// Escapes `"` `\` and control characters per RFC 8259.
std::string JsonEscape(const std::string& text);

// Streaming writer with just enough state to place commas correctly.
//   JsonWriter w; w.BeginObject(); w.Key("a").Value(1); w.EndObject();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& Value(const std::string& value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(uint32_t value) { return Value(static_cast<uint64_t>(value)); }
  JsonWriter& Value(bool value);

  std::string str() const { return out_.str(); }

 private:
  void Comma();

  std::ostringstream out_;
  bool need_comma_ = false;
};

// A scalar from a parsed flat object.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;     // kString
  double num = 0.0;    // kNumber
  bool boolean = false;  // kBool
};

// Parses one flat JSON object ({"k": scalar, ...}; no nested containers).
// Returns false on malformed input or nesting. Duplicate keys keep the
// last occurrence.
bool ParseFlatJsonObject(const std::string& text, std::map<std::string, JsonValue>* out);

}  // namespace dcat

#endif  // SRC_TELEMETRY_JSON_H_
