#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/telemetry/json.h"

namespace dcat {
namespace {

// Instruments of different kinds share one namespace; a clash is a bug in
// the instrumenting code, not a runtime condition.
template <typename Map>
void CheckNameFree(const Map& map, const std::string& name, const char* kind) {
  if (map.count(name) > 0) {
    std::fprintf(stderr, "MetricsRegistry: '%s' already registered as a %s\n", name.c_str(),
                 kind);
    std::abort();
  }
}

std::string FmtNumber(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

HistogramMetric::HistogramMetric(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);  // +1: the +inf overflow bucket
}

void HistogramMetric::Observe(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) {
    ++i;
  }
  ++buckets_[i];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  CheckNameFree(gauges_, name, "gauge");
  CheckNameFree(histograms_, name, "histogram");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  CheckNameFree(counters_, name, "counter");
  CheckNameFree(histograms_, name, "histogram");
  return gauges_[name];
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<double> bounds) {
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  CheckNameFree(counters_, name, "counter");
  CheckNameFree(gauges_, name, "gauge");
  return histograms_.emplace(name, HistogramMetric(std::move(bounds))).first->second;
}

std::string MetricsRegistry::RenderText() const {
  size_t width = 0;
  for (const auto& [name, _] : counters_) width = std::max(width, name.size());
  for (const auto& [name, _] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, _] : histograms_) width = std::max(width, name.size());

  std::ostringstream out;
  auto line = [&out, width](const std::string& name, const std::string& value) {
    out << name << std::string(width - name.size() + 2, ' ') << value << "\n";
  };
  for (const auto& [name, c] : counters_) {
    line(name, std::to_string(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    line(name, FmtNumber(g.value()));
  }
  for (const auto& [name, h] : histograms_) {
    line(name, "count=" + std::to_string(h.count()) + " mean=" + FmtNumber(h.mean()) +
                   " max=" + FmtNumber(h.max()));
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, c] : counters_) {
    json.Key(name).Value(static_cast<uint64_t>(c.value()));
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, g] : gauges_) {
    json.Key(name).Value(g.value());
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, h] : histograms_) {
    json.Key(name);
    json.BeginObject();
    json.Key("count").Value(static_cast<uint64_t>(h.count()));
    json.Key("sum").Value(h.sum());
    json.Key("mean").Value(h.mean());
    json.Key("max").Value(h.max());
    json.Key("bounds");
    json.BeginArray();
    for (double b : h.bounds()) json.Value(b);
    json.EndArray();
    json.Key("buckets");
    json.BeginArray();
    for (uint64_t b : h.bucket_counts()) json.Value(b);
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

}  // namespace dcat
