// Typed telemetry events of the dCat control loop.
//
// Every decision the controller takes per interval — phase changes,
// category transitions, allocation moves with their *reason*, and the
// per-tenant interval summary — is published as a typed event through the
// EventSink interface. Sinks are how every consumer observes the
// controller: the JSONL/CSV trace exporters (trace.h), the Recorder's
// time series, the metrics registry, and tests that assert on decision
// sequences. The controller never formats text itself; it emits events and
// the sinks decide the representation.
#ifndef SRC_TELEMETRY_EVENTS_H_
#define SRC_TELEMETRY_EVENTS_H_

#include <cstdint>
#include <vector>

#include "src/core/category.h"

namespace dcat {

using TenantId = uint32_t;

// Why an allocation changed (or was refused). The controller has always
// decided these; the event stream is where they become observable.
enum class AllocationReason {
  kAdmit,             // tenant admitted at the minimum allocation
  kEvict,             // tenant removed; its ways return to the pool
  kReclaim,           // phase change: return to baseline / table fast path
  kShrinkForReclaim,  // over-baseline tenant shrunk to fund a reclaim
  kGrowFromPool,      // Unknown/Receiver granted a way from the free pool
  kGrowDenied,        // growth wanted but the pool was dry (ways unchanged)
  kDonate,            // Donor/Streaming releasing ways
  kRebalance,         // max-performance DP moved ways between tenants
};

constexpr const char* AllocationReasonName(AllocationReason reason) {
  switch (reason) {
    case AllocationReason::kAdmit:
      return "admit";
    case AllocationReason::kEvict:
      return "evict";
    case AllocationReason::kReclaim:
      return "reclaim";
    case AllocationReason::kShrinkForReclaim:
      return "shrink-for-reclaim";
    case AllocationReason::kGrowFromPool:
      return "grow-from-pool";
    case AllocationReason::kGrowDenied:
      return "grow-denied";
    case AllocationReason::kDonate:
      return "donate";
    case AllocationReason::kRebalance:
      return "rebalance";
  }
  return "?";
}

// Per-tenant summary of one control interval; the decision log's row type
// (the legacy DcatController::LogEntry is an alias of this struct).
struct TickEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  Category category = Category::kKeeper;
  uint32_t ways = 0;
  double ipc = 0.0;
  double norm_ipc = 0.0;
  double llc_miss_rate = 0.0;
  bool phase_changed = false;
};

// Step 3 fired: the tenant's mem-accesses-per-instruction signature moved.
struct PhaseChangeEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  uint64_t phase_index = 0;  // index into the tenant's PhaseBook
  double signature = 0.0;    // mem/ins signature of the new phase
  bool known_phase = false;  // true when the PhaseBook had seen it before
};

// The Fig. 6 state machine moved the tenant between categories.
struct CategoryChangeEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  Category from = Category::kKeeper;
  Category to = Category::kKeeper;
};

// Step 5 changed (or explicitly refused to change) the tenant's ways.
struct AllocationEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  AllocationReason reason = AllocationReason::kReclaim;
  uint32_t from_ways = 0;
  uint32_t to_ways = 0;
};

// Receiver interface. Default-empty handlers: a sink overrides only the
// events it cares about. Handlers run synchronously on the control loop —
// keep them cheap (buffer, don't block).
class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void OnTick(const TickEvent& event) { (void)event; }
  virtual void OnPhaseChange(const PhaseChangeEvent& event) { (void)event; }
  virtual void OnCategoryChange(const CategoryChangeEvent& event) { (void)event; }
  virtual void OnAllocation(const AllocationEvent& event) { (void)event; }
};

// Fan-out sink: forwards every event to each registered sink in
// registration order. Sinks are borrowed and must outlive the fanout.
class EventFanout : public EventSink {
 public:
  void AddSink(EventSink* sink) { sinks_.push_back(sink); }
  size_t num_sinks() const { return sinks_.size(); }

  void OnTick(const TickEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnTick(event);
  }
  void OnPhaseChange(const PhaseChangeEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnPhaseChange(event);
  }
  void OnCategoryChange(const CategoryChangeEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnCategoryChange(event);
  }
  void OnAllocation(const AllocationEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnAllocation(event);
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace dcat

#endif  // SRC_TELEMETRY_EVENTS_H_
