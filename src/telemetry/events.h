// Typed telemetry events of the dCat control loop.
//
// Every decision the controller takes per interval — phase changes,
// category transitions, allocation moves with their *reason*, and the
// per-tenant interval summary — is published as a typed event through the
// EventSink interface. Sinks are how every consumer observes the
// controller: the JSONL/CSV trace exporters (trace.h), the Recorder's
// time series, the metrics registry, and tests that assert on decision
// sequences. The controller never formats text itself; it emits events and
// the sinks decide the representation.
#ifndef SRC_TELEMETRY_EVENTS_H_
#define SRC_TELEMETRY_EVENTS_H_

#include <cstdint>
#include <vector>

#include "src/core/category.h"

namespace dcat {

using TenantId = uint32_t;

// Why an allocation changed (or was refused). The controller has always
// decided these; the event stream is where they become observable.
enum class AllocationReason {
  kAdmit,             // tenant admitted at the minimum allocation
  kEvict,             // tenant removed; its ways return to the pool
  kReclaim,           // phase change: return to baseline / table fast path
  kShrinkForReclaim,  // over-baseline tenant shrunk to fund a reclaim
  kGrowFromPool,      // Unknown/Receiver granted a way from the free pool
  kGrowDenied,        // growth wanted but the pool was dry (ways unchanged)
  kDonate,            // Donor/Streaming releasing ways
  kRebalance,         // max-performance DP moved ways between tenants
  kDegradedBaseline,  // degraded mode pinned the tenant to its baseline
};

constexpr const char* AllocationReasonName(AllocationReason reason) {
  switch (reason) {
    case AllocationReason::kAdmit:
      return "admit";
    case AllocationReason::kEvict:
      return "evict";
    case AllocationReason::kReclaim:
      return "reclaim";
    case AllocationReason::kShrinkForReclaim:
      return "shrink-for-reclaim";
    case AllocationReason::kGrowFromPool:
      return "grow-from-pool";
    case AllocationReason::kGrowDenied:
      return "grow-denied";
    case AllocationReason::kDonate:
      return "donate";
    case AllocationReason::kRebalance:
      return "rebalance";
    case AllocationReason::kDegradedBaseline:
      return "degraded-baseline";
  }
  return "?";
}

// Which CAT control-surface write an event refers to.
enum class BackendOp {
  kSetCosMask,
  kAssociateCore,
};

constexpr const char* BackendOpName(BackendOp op) {
  switch (op) {
    case BackendOp::kSetCosMask:
      return "set-cos-mask";
    case BackendOp::kAssociateCore:
      return "associate-core";
  }
  return "?";
}

// Counter-anomaly taxonomy shared by the fault injector (src/faults/) and
// the controller's quarantine. The controller cannot distinguish a 32-bit
// wrap from any other backwards jump, so it reports kNonMonotonic for both;
// kWrapped is emitted by injectors that know what they did.
enum class CounterAnomalyKind {
  kNonMonotonic,  // a cumulative counter went backwards
  kWrapped,       // narrow-counter wraparound (injector-side label)
  kFrozen,        // counters stopped advancing on an active tenant
  kGarbage,       // implausible values (misses > references, absurd IPC)
};

constexpr const char* CounterAnomalyKindName(CounterAnomalyKind kind) {
  switch (kind) {
    case CounterAnomalyKind::kNonMonotonic:
      return "non-monotonic";
    case CounterAnomalyKind::kWrapped:
      return "wrapped";
    case CounterAnomalyKind::kFrozen:
      return "frozen";
    case CounterAnomalyKind::kGarbage:
      return "garbage";
  }
  return "?";
}

// Per-tenant summary of one control interval; the decision log's row type
// (the legacy DcatController::LogEntry is an alias of this struct).
struct TickEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  Category category = Category::kKeeper;
  uint32_t ways = 0;
  double ipc = 0.0;
  double norm_ipc = 0.0;
  double llc_miss_rate = 0.0;
  bool phase_changed = false;
};

// Step 3 fired: the tenant's mem-accesses-per-instruction signature moved.
struct PhaseChangeEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  uint64_t phase_index = 0;  // index into the tenant's PhaseBook
  double signature = 0.0;    // mem/ins signature of the new phase
  bool known_phase = false;  // true when the PhaseBook had seen it before
};

// The Fig. 6 state machine moved the tenant between categories.
struct CategoryChangeEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  Category from = Category::kKeeper;
  Category to = Category::kKeeper;
};

// Step 5 changed (or explicitly refused to change) the tenant's ways.
struct AllocationEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  AllocationReason reason = AllocationReason::kReclaim;
  uint32_t from_ways = 0;
  uint32_t to_ways = 0;
};

// A CAT write failed at least once. `recovered` means a bounded retry (with
// verify-after-write readback) eventually landed the write; false means the
// retry budget ran out and the write was abandoned.
struct BackendFaultEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;  // 0 when the write serves no specific tenant
  BackendOp op = BackendOp::kSetCosMask;
  uint32_t attempts = 1;  // total write attempts made (including the first)
  bool recovered = true;
};

// Reconciliation found backend state diverged from the controller's
// bookkeeping. For mask drift, expected/actual are capacity masks; for
// association drift (`association` = true), they are COS ids and `core`
// names the drifted core.
struct MaskDriftEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  uint8_t cos = 0;
  uint32_t expected = 0;
  uint32_t actual = 0;
  bool association = false;
  uint16_t core = 0;
  bool repaired = true;  // re-program succeeded; false leaves drift in place
};

// Collect Statistics rejected an interval's counter delta as implausible;
// the sample was quarantined (not folded into EWMAs, phase detection, or
// performance tables).
struct CounterAnomalyEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  CounterAnomalyKind kind = CounterAnomalyKind::kGarbage;
  uint32_t streak = 1;  // consecutive quarantined intervals for this tenant
};

// Why the hybrid-fidelity engine moved a tenant between the line-level
// cache model and the analytic fast path (src/sim/analytic_model.h).
enum class FidelityReason {
  kSteady,         // entered: phase steady, mask unchanged, decisions quiet
  kWarmup,         // line: no line-level model recorded yet
  kDecision,       // fell back: the controller decided something last tick
  kMaskChange,     // fell back: a capacity mask changed somewhere on the socket
  kChurn,          // fell back: tenant arrival/departure/workload swap
  kPhaseBoundary,  // fell back: the workload predicts a phase boundary soon
  kResample,       // scheduled line-level resample (model-confidence decay)
  kUnsteady,       // line: the phase detector or margins refused entry
  kForced,         // --fidelity=line|analytic overrode the switch logic
};

constexpr const char* FidelityReasonName(FidelityReason reason) {
  switch (reason) {
    case FidelityReason::kSteady:
      return "steady";
    case FidelityReason::kWarmup:
      return "warmup";
    case FidelityReason::kDecision:
      return "decision";
    case FidelityReason::kMaskChange:
      return "mask-change";
    case FidelityReason::kChurn:
      return "churn";
    case FidelityReason::kPhaseBoundary:
      return "phase-boundary";
    case FidelityReason::kResample:
      return "resample";
    case FidelityReason::kUnsteady:
      return "unsteady";
    case FidelityReason::kForced:
      return "forced";
  }
  return "?";
}

// The hybrid-fidelity engine switched a tenant between the line-level model
// and the analytic fast path. Emitted only when a run opts into
// --fidelity=analytic|hybrid; line-mode traces never contain these lines.
// Excluded from the decision-trace projection (ExtractDecisionTrace): which
// model produced the counters is not a controller decision.
struct FidelityEvent {
  uint64_t tick = 0;
  TenantId tenant = 0;
  bool analytic = false;  // true: entered the fast path; false: back to line
  FidelityReason reason = FidelityReason::kSteady;
};

// The controller switched between dynamic operation and the degraded
// static-baseline fallback (the paper's safety contract).
struct ModeChangeEvent {
  uint64_t tick = 0;
  bool degraded = false;  // true: entered degraded mode; false: recovered
  uint32_t consecutive_failures = 0;  // hard apply failures behind an entry
};

// A controller process restart: either a cold boot (no usable journal) or
// a journal-driven recovery. Emitted by the recovery path once per restart.
struct RestartEvent {
  uint64_t tick = 0;        // tick the restored controller resumes at
  bool cold_boot = false;   // true: no journal state, booted empty
  bool degraded = false;    // restored into degraded mode
  uint64_t journal_records = 0;  // good records scanned during replay
  uint64_t torn_records = 0;     // torn/corrupt records skipped
  uint32_t tenants = 0;          // tenants restored from the journal
};

// Outcome of reconciling restored state against the live backend.
struct RecoveryEvent {
  uint64_t tick = 0;
  uint32_t adopted = 0;    // COSes whose hardware state matched and was kept
  uint32_t redone = 0;     // COSes re-programmed to the journaled intent
  uint32_t divergent = 0;  // tenants sent through the reclaim path
  uint64_t recovery_ticks = 0;  // ticks until the first clean apply (0 = at once)
  bool converged = true;        // backend fully reconciled at emit time
};

// Receiver interface. Default-empty handlers: a sink overrides only the
// events it cares about. Handlers run synchronously on the control loop —
// keep them cheap (buffer, don't block).
class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void OnTick(const TickEvent& event) { (void)event; }
  virtual void OnPhaseChange(const PhaseChangeEvent& event) { (void)event; }
  virtual void OnCategoryChange(const CategoryChangeEvent& event) { (void)event; }
  virtual void OnAllocation(const AllocationEvent& event) { (void)event; }
  virtual void OnBackendFault(const BackendFaultEvent& event) { (void)event; }
  virtual void OnMaskDrift(const MaskDriftEvent& event) { (void)event; }
  virtual void OnCounterAnomaly(const CounterAnomalyEvent& event) { (void)event; }
  virtual void OnFidelity(const FidelityEvent& event) { (void)event; }
  virtual void OnModeChange(const ModeChangeEvent& event) { (void)event; }
  virtual void OnRestart(const RestartEvent& event) { (void)event; }
  virtual void OnRecovery(const RecoveryEvent& event) { (void)event; }
};

// Fan-out sink: forwards every event to each registered sink in
// registration order. Sinks are borrowed and must outlive the fanout.
class EventFanout : public EventSink {
 public:
  void AddSink(EventSink* sink) { sinks_.push_back(sink); }
  size_t num_sinks() const { return sinks_.size(); }

  void OnTick(const TickEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnTick(event);
  }
  void OnPhaseChange(const PhaseChangeEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnPhaseChange(event);
  }
  void OnCategoryChange(const CategoryChangeEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnCategoryChange(event);
  }
  void OnAllocation(const AllocationEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnAllocation(event);
  }
  void OnBackendFault(const BackendFaultEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnBackendFault(event);
  }
  void OnMaskDrift(const MaskDriftEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnMaskDrift(event);
  }
  void OnCounterAnomaly(const CounterAnomalyEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnCounterAnomaly(event);
  }
  void OnFidelity(const FidelityEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnFidelity(event);
  }
  void OnModeChange(const ModeChangeEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnModeChange(event);
  }
  void OnRestart(const RestartEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnRestart(event);
  }
  void OnRecovery(const RecoveryEvent& event) override {
    for (EventSink* sink : sinks_) sink->OnRecovery(event);
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace dcat

#endif  // SRC_TELEMETRY_EVENTS_H_
