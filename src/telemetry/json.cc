#include "src/telemetry/json.h"

#include <cstdio>
#include <cstdlib>

namespace dcat {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (need_comma_) {
    out_ << ',';
  }
  need_comma_ = true;
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ << '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ << '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ << '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ << ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  Comma();
  out_ << '"' << JsonEscape(name) << "\":";
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& value) {
  Comma();
  out_ << '"' << JsonEscape(value) << '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) { return Value(std::string(value)); }

JsonWriter& JsonWriter::Value(double value) {
  Comma();
  // %.17g round-trips every double; trim the common integral case.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  Comma();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  Comma();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  Comma();
  out_ << (value ? "true" : "false");
  return *this;
}

namespace {

// Hand-rolled recursive-descent over the flat-object grammar.
class FlatParser {
 public:
  explicit FlatParser(const std::string& text) : text_(text) {}

  bool Parse(std::map<std::string, JsonValue>* out) {
    SkipSpace();
    if (!Consume('{')) {
      return false;
    }
    SkipSpace();
    if (Consume('}')) {
      return AtEnd();
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (!Consume(':')) {
        return false;
      }
      SkipSpace();
      JsonValue value;
      if (!ParseScalar(&value)) {
        return false;
      }
      (*out)[key] = std::move(value);
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return AtEnd();
      }
      return false;
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // Traces only escape control characters; anything wider would
          // need UTF-8 encoding this parser does not attempt.
          if (code > 0x7f) {
            return false;
          }
          *out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseScalar(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return ConsumeWord("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return ConsumeWord("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ConsumeWord("null");
    }
    if (c == '{' || c == '[') {
      return false;  // flat objects only
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ' ' && text_[pos_] != '\t' && text_[pos_] != '\r' &&
           text_[pos_] != '\n') {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->num = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseFlatJsonObject(const std::string& text, std::map<std::string, JsonValue>* out) {
  out->clear();
  return FlatParser(text).Parse(out);
}

}  // namespace dcat
