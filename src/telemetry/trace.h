// Machine-readable decision traces over the telemetry event stream.
//
// JsonlTraceWriter serializes every event as one JSON object per line
// (JSONL), the format `dcatd --trace=FILE` emits:
//
//   {"type":"phase_change","tick":1,"tenant":1,"phase":0,...}
//   {"type":"category_change","tick":1,"tenant":1,"from":"Donor","to":"Reclaim"}
//   {"type":"allocation","tick":1,"tenant":1,"reason":"reclaim",...}
//   {"type":"tick","tick":1,"tenant":1,"category":"Reclaim","ways":3,...}
//
// DecisionLog accumulates TickEvents and renders the legacy CSV table —
// the old DcatController::LogToCsv is now exactly this exporter. The
// reader half (ParseTraceLine / ReadTrace) parses a trace back into typed
// records so tests can round-trip and tools can post-process.
#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/telemetry/events.h"

namespace dcat {

// Streams events as JSONL to an ostream (borrowed; must outlive the sink).
// Lines are flushed per event: a trace of a crashed daemon stays readable
// up to the last completed decision.
class JsonlTraceWriter : public EventSink {
 public:
  explicit JsonlTraceWriter(std::ostream* out) : out_(out) {}

  void OnTick(const TickEvent& event) override;
  void OnPhaseChange(const PhaseChangeEvent& event) override;
  void OnCategoryChange(const CategoryChangeEvent& event) override;
  void OnAllocation(const AllocationEvent& event) override;
  void OnBackendFault(const BackendFaultEvent& event) override;
  void OnMaskDrift(const MaskDriftEvent& event) override;
  void OnCounterAnomaly(const CounterAnomalyEvent& event) override;
  void OnFidelity(const FidelityEvent& event) override;
  void OnModeChange(const ModeChangeEvent& event) override;
  void OnRestart(const RestartEvent& event) override;
  void OnRecovery(const RecoveryEvent& event) override;

  uint64_t lines_written() const { return lines_; }

 private:
  std::ostream* out_;
  uint64_t lines_ = 0;
};

// In-memory decision log: the per-tenant-per-tick rows plus the CSV
// rendering for offline analysis/audit.
class DecisionLog : public EventSink {
 public:
  void OnTick(const TickEvent& event) override { rows_.push_back(event); }

  const std::vector<TickEvent>& rows() const { return rows_; }
  void Clear() { rows_.clear(); }

  // "tick,tenant,category,ways,ipc,norm_ipc,llc_miss_rate,phase_changed".
  std::string ToCsv() const;

 private:
  std::vector<TickEvent> rows_;
};

// A parsed trace line: exactly one of the optionals is set.
struct TraceEvent {
  std::string type;  // "tick" | "phase_change" | "category_change" | "allocation"
                     // | "backend_fault" | "mask_drift" | "counter_anomaly"
                     // | "fidelity" | "mode_change" | "restart" | "recovery"
  std::optional<TickEvent> tick;
  std::optional<PhaseChangeEvent> phase_change;
  std::optional<CategoryChangeEvent> category_change;
  std::optional<AllocationEvent> allocation;
  std::optional<BackendFaultEvent> backend_fault;
  std::optional<MaskDriftEvent> mask_drift;
  std::optional<CounterAnomalyEvent> counter_anomaly;
  std::optional<FidelityEvent> fidelity;
  std::optional<ModeChangeEvent> mode_change;
  std::optional<RestartEvent> restart;
  std::optional<RecoveryEvent> recovery;
};

// Parses one JSONL trace line; nullopt on malformed input or unknown type.
std::optional<TraceEvent> ParseTraceLine(const std::string& line);

// Reads a whole trace; stops and returns nullopt on the first bad line
// (line numbers start at 1; *error_line is set when provided).
std::optional<std::vector<TraceEvent>> ReadTrace(std::istream& in,
                                                  size_t* error_line = nullptr);

// Name <-> enum helpers used by the trace round trip.
std::optional<Category> CategoryFromName(const std::string& name);
std::optional<AllocationReason> AllocationReasonFromName(const std::string& name);
std::optional<BackendOp> BackendOpFromName(const std::string& name);
std::optional<CounterAnomalyKind> CounterAnomalyKindFromName(const std::string& name);
std::optional<FidelityReason> FidelityReasonFromName(const std::string& name);

// Integer-only projection of a JSONL trace: the controller's *decisions*
// (tick category/ways/phase_changed, phase indices, category moves,
// allocations, mode/fault/drift/anomaly/restart/recovery records) with every
// floating-point observable (ipc, norm_ipc, llc_miss_rate, signature) and
// every fidelity line dropped. Two runs are decision-equivalent exactly when
// their projections are byte-identical — this is the contract the hybrid
// fidelity engine is validated against (`dcat_fuzz --fidelity-diff`).
// Unparseable lines are kept verbatim so they can never hide a divergence.
std::string ExtractDecisionTrace(const std::string& jsonl_trace);

}  // namespace dcat

#endif  // SRC_TELEMETRY_TRACE_H_
