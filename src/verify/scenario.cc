#include "src/verify/scenario.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "src/cluster/host.h"
#include "src/common/rng.h"
#include "src/faults/faulty_fs.h"
#include "src/pqos/mask.h"
#include "src/pqos/resctrl_pqos.h"
#include "src/telemetry/trace.h"
#include "src/workloads/factory.h"
#include "src/workloads/phased.h"

namespace dcat {
namespace {

namespace fs = std::filesystem;

// Workload pool the fuzzer draws from: receivers (MLR, cache-hungry SPEC),
// streamers (MLOAD, lbm/libquantum), donors (lookbusy, idle, small-WSS
// SPEC), an application model, and a phase-churning composite.
const char* const kWorkloadPool[] = {
    "mlr:4M",     "mlr:8M",    "mlr:12M",       "mlr:16M",   "mload:30M",
    "mload:60M",  "lookbusy",  "lookbusy",      "idle",      "redis",
    "spec:omnetpp", "spec:mcf", "spec:lbm",     "spec:libquantum",
    "spec:povray",  "phased-mlr", "phased-mload",
};

struct MachineLimits {
  uint32_t total_ways;
  uint16_t num_cores;
  size_t max_tenants;  // COS limit: tenants + 1 < 16
};

MachineLimits LimitsFor(const std::string& machine) {
  if (machine == "xeon-d") {
    return {12, 8, 14};
  }
  return {20, 18, 14};
}

}  // namespace

std::unique_ptr<Workload> MakeScenarioWorkload(const std::string& spec, uint64_t seed) {
  constexpr uint64_t kPhaseInstructions = 12'000'000;
  if (spec == "phased-mlr") {
    auto phased = std::make_unique<PhasedWorkload>("phased-mlr", /*loop=*/true);
    phased->AddPhase(MakeWorkload("mlr:6M", seed), kPhaseInstructions);
    phased->AddPhase(MakeWorkload("lookbusy", seed + 1), kPhaseInstructions);
    return phased;
  }
  if (spec == "phased-mload") {
    auto phased = std::make_unique<PhasedWorkload>("phased-mload", /*loop=*/true);
    phased->AddPhase(MakeWorkload("mload:30M", seed), kPhaseInstructions);
    phased->AddPhase(MakeWorkload("lookbusy", seed + 1), kPhaseInstructions);
    return phased;
  }
  return MakeWorkload(spec, seed);
}

uint64_t WorkloadSeed(const Scenario& scenario, TenantId id) {
  // Distinct, deterministic, never 1 (Host would override 1 with its own
  // default) and never 0.
  return scenario.seed * 1000003ULL + static_cast<uint64_t>(id) * 7919ULL + 13;
}

std::string Scenario::Describe() const {
  std::ostringstream out;
  out << "seed=" << seed << " machine=" << machine << " intervals=" << intervals
      << " tenants=[";
  for (size_t i = 0; i < initial.size(); ++i) {
    if (i > 0) {
      out << " ";
    }
    out << initial[i].id << ":" << initial[i].workload << "/" << initial[i].baseline_ways;
  }
  out << "]";
  if (!churn.empty()) {
    out << " churn=[";
    for (size_t i = 0; i < churn.size(); ++i) {
      if (i > 0) {
        out << " ";
      }
      if (churn[i].swap) {
        out << "@" << churn[i].interval << " ~" << churn[i].tenant.id << ":"
            << churn[i].tenant.workload;
      } else if (churn[i].add) {
        out << "@" << churn[i].interval << " +" << churn[i].tenant.id << ":"
            << churn[i].tenant.workload << "/" << churn[i].tenant.baseline_ways;
      } else {
        out << "@" << churn[i].interval << " -" << churn[i].remove_id;
      }
    }
    out << "]";
  }
  out << " cfg={miss=" << dcat.llc_miss_rate_thr << " imp=" << dcat.ipc_improvement_thr
      << " phase=" << dcat.phase_change_thr << " greedy=" << (dcat.greedy_exploration ? 1 : 0)
      << " shrink=" << dcat.donor_shrink_fraction << " stream=" << dcat.streaming_multiplier
      << "}";
  return out.str();
}

Scenario RandomScenario(uint64_t seed) {
  // Decorrelate the scenario stream from the workload seeds.
  Rng rng(seed ^ 0xd0a7f022ULL);
  Scenario scenario;
  scenario.seed = seed;
  scenario.machine = rng.Chance(0.3) ? "xeon-d" : "xeon-e5";
  const MachineLimits limits = LimitsFor(scenario.machine);
  scenario.intervals = 18 + static_cast<uint32_t>(rng.Below(18));  // 18..35

  // Config perturbations around the paper's defaults (§3, Figs. 8/9).
  scenario.dcat.llc_miss_rate_thr = 0.01 + rng.NextDouble() * 0.05;
  scenario.dcat.ipc_improvement_thr = 0.03 + rng.NextDouble() * 0.07;
  scenario.dcat.phase_change_thr = 0.05 + rng.NextDouble() * 0.15;
  scenario.dcat.greedy_exploration = rng.Chance(0.7);
  scenario.dcat.donor_shrink_fraction = 0.3 + rng.NextDouble() * 0.7;
  scenario.dcat.streaming_multiplier = 2 + static_cast<uint32_t>(rng.Below(3));
  scenario.dcat.llc_ref_per_kilo_instruction_thr = 0.5 + rng.NextDouble() * 1.5;

  const size_t max_vms_by_cores = limits.num_cores / 2;  // 2 vcpus per VM
  const size_t max_initial = std::min<size_t>({6, max_vms_by_cores, limits.max_tenants});
  const size_t want = 2 + rng.Below(max_initial - 1);  // 2..max_initial

  // Simulated admission state, kept valid at every point in time so the
  // controller's admission control (Σ baselines ≤ ways, core and COS
  // limits) can never abort a generated scenario.
  uint32_t ways_used = 0;
  size_t active_vms = 0;
  std::map<TenantId, uint32_t> active;  // id -> baseline ways
  TenantId next_id = 1;

  auto try_make_tenant = [&](TenantSetup* out) {
    const uint32_t max_baseline = std::min<uint32_t>(4, limits.total_ways - ways_used);
    if (max_baseline < 1 || active_vms >= max_vms_by_cores ||
        active.size() >= limits.max_tenants) {
      return false;
    }
    out->id = next_id++;
    out->workload = kWorkloadPool[rng.Below(std::size(kWorkloadPool))];
    out->baseline_ways = 1 + static_cast<uint32_t>(rng.Below(max_baseline));
    ways_used += out->baseline_ways;
    ++active_vms;
    active[out->id] = out->baseline_ways;
    return true;
  };

  for (size_t i = 0; i < want; ++i) {
    TenantSetup tenant;
    if (try_make_tenant(&tenant)) {
      scenario.initial.push_back(tenant);
    }
  }

  // Arrival/departure churn at a few interior intervals.
  const size_t churn_count = rng.Below(4);  // 0..3
  std::vector<uint32_t> when;
  for (size_t i = 0; i < churn_count; ++i) {
    when.push_back(3 + static_cast<uint32_t>(rng.Below(scenario.intervals - 6)));
  }
  std::sort(when.begin(), when.end());
  for (const uint32_t interval : when) {
    const bool remove = active.size() > 1 && rng.Chance(0.5);
    if (remove) {
      // Pick a deterministic victim among the currently active tenants.
      auto it = active.begin();
      std::advance(it, static_cast<long>(rng.Below(active.size())));
      ChurnEvent event;
      event.interval = interval;
      event.add = false;
      event.remove_id = it->first;
      ways_used -= it->second;
      --active_vms;
      active.erase(it);
      scenario.churn.push_back(event);
    } else {
      ChurnEvent event;
      event.interval = interval;
      event.add = true;
      if (try_make_tenant(&event.tenant)) {
        scenario.churn.push_back(event);
      }
    }
  }

  // Workload swaps: a tenant replaces its job in place. When an
  // add/remove already landed somewhere, the swap rides the SAME interval,
  // so a capacity-mask change (admission/evict reshuffles COS masks) and a
  // workload phase change hit the controller in one tick — previously the
  // generator could never produce that interleaving. Draws are appended
  // after all existing ones, so the scenario a given seed produced before
  // this generator existed is a prefix of what it produces now.
  if (!active.empty() && rng.Chance(0.4)) {
    ChurnEvent event;
    event.swap = true;
    event.interval = scenario.churn.empty()
                         ? 3 + static_cast<uint32_t>(rng.Below(scenario.intervals - 6))
                         : scenario.churn.back().interval;
    auto it = active.begin();
    std::advance(it, static_cast<long>(rng.Below(active.size())));
    event.tenant.id = it->first;
    event.tenant.workload = kWorkloadPool[rng.Below(std::size(kWorkloadPool))];
    scenario.churn.push_back(event);
  }
  return scenario;
}

Scenario Fig10Scenario() {
  Scenario scenario;
  scenario.seed = 4242;
  scenario.machine = "xeon-e5";
  scenario.intervals = 30;
  scenario.initial.push_back(TenantSetup{.id = 1, .workload = "mlr:8M", .baseline_ways = 3});
  for (TenantId id = 2; id <= 6; ++id) {
    scenario.initial.push_back(
        TenantSetup{.id = id, .workload = "lookbusy", .baseline_ways = 3});
  }
  return scenario;
}

namespace {

// Shadow backends for the differential mask check: every mask the live
// SimPqos was programmed with is replayed through a second SimPqos and a
// fake-tree ResctrlPqos; all three must agree at every interval.
//
// With fs chaos enabled, a FaultyFs sits under the shadow resctrl. A
// replayed write that fails under chaos scopes its COS as an *attributed*
// divergence (retried on later Syncs) instead of a finding; the Settle()
// pass runs after the fault window closes, re-applies everything, and
// re-reads every schemata file straight from disk — only divergence that
// survives a clean tree is reported.
class BackendDifferential {
 public:
  BackendDifferential(const SocketConfig& socket_config, uint64_t seed,
                      std::vector<Violation>* violations, bool fs_chaos = false,
                      FaultPlan fs_plan = FaultPlan())
      : shadow_socket_(socket_config),
        shadow_sim_(&shadow_socket_),
        violations_(violations),
        fs_chaos_(fs_chaos),
        prev_masks_(socket_config.num_cos, kUnseen) {
    static std::atomic<uint64_t> counter{0};
    root_ = fs::temp_directory_path() /
            ("dcat_verify_" + std::to_string(::getpid()) + "_" + std::to_string(seed) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    fs::remove_all(root_, ec);
    fs::create_directories(root_ / "info" / "L3", ec);
    const uint32_t full = MakeWayMask(0, shadow_socket_.num_ways());
    WriteFile(root_ / "info" / "L3" / "cbm_mask", MaskToHex(full) + "\n");
    WriteFile(root_ / "info" / "L3" / "num_closids",
              std::to_string(shadow_socket_.num_cos()) + "\n");
    WriteFile(root_ / "schemata", "L3:0=" + MaskToHex(full) + "\n");
    WriteFile(root_ / "cpus_list", "0-" + std::to_string(socket_config.num_cores - 1) + "\n");
    if (fs_chaos_) {
      // Hash paths relative to the root so the fault schedule depends only
      // on (seed, profile), never on the temp-dir name.
      faulty_fs_ = std::make_unique<FaultyFs>(DefaultFileIo(), std::move(fs_plan),
                                              root_.string() + "/");
    }
    shadow_resctrl_ = std::make_unique<ResctrlPqos>(root_.string(), socket_config.num_cores,
                                                    faulty_fs_.get());
    resctrl_ok_ = shadow_resctrl_->Initialize();
    if (!resctrl_ok_) {
      violations_->push_back(Violation{
          .tick = 0, .tenant = 0, .invariant = kCheckBackendDivergence,
          .detail = "fake resctrl tree failed to initialize at " + root_.string()});
    }
  }

  ~BackendDifferential() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  // Applies the live backend's mask changes to both shadows, then compares
  // all three mask states for every COS touched so far. COS scoped to an
  // injected fault are retried here and excluded from the comparison until
  // a write lands.
  void Sync(const CatController& live, uint64_t tick) {
    if (!resctrl_ok_) {
      return;
    }
    for (uint8_t cos = 1; cos < shadow_socket_.num_cos(); ++cos) {
      const uint32_t mask = live.GetCosMask(cos);
      if (mask == prev_masks_[cos] && pending_.count(cos) == 0) {
        continue;
      }
      prev_masks_[cos] = mask;
      const PqosStatus sim_status = shadow_sim_.SetCosMask(cos, mask);
      const PqosStatus res_status = shadow_resctrl_->SetCosMask(cos, mask);
      if (res_status == PqosStatus::kOk) {
        pending_.erase(cos);
      } else if (fs_chaos_) {
        // Attributed to the fault plane: the write failed loudly, the
        // backend rolled the node back, and the next Sync retries it.
        pending_.insert(cos);
        ++scoped_divergences_;
      }
      if (sim_status != PqosStatus::kOk ||
          (res_status != PqosStatus::kOk && !fs_chaos_)) {
        std::ostringstream detail;
        detail << "SetCosMask(COS " << static_cast<int>(cos) << ", 0x" << MaskToHex(mask)
               << ") -> sim " << PqosStatusName(sim_status) << ", resctrl "
               << PqosStatusName(res_status);
        violations_->push_back(Violation{.tick = tick, .tenant = 0,
                                         .invariant = kCheckBackendDivergence,
                                         .detail = detail.str()});
      }
    }
    CompareMasks(live, tick, /*include_pending=*/false);
    if (faulty_fs_ != nullptr) {
      faulty_fs_->AdvanceTick();
    }
  }

  // Fault-free convergence pass for fs-chaos runs: advance past the fault
  // window, re-apply every mask, then require (a) all three backends agree
  // on every COS and (b) every schemata file on disk parses back to exactly
  // the mask the shadow resctrl believes. Anything left is real divergence.
  void Settle(const CatController& live, uint64_t tick) {
    if (!resctrl_ok_) {
      return;
    }
    if (faulty_fs_ != nullptr) {
      faulty_fs_->AdvanceTick();
    }
    for (uint8_t cos = 1; cos < shadow_socket_.num_cos(); ++cos) {
      if (prev_masks_[cos] == kUnseen && pending_.count(cos) == 0) {
        continue;
      }
      const uint32_t mask = live.GetCosMask(cos);
      prev_masks_[cos] = mask;
      (void)shadow_sim_.SetCosMask(cos, mask);
      if (shadow_resctrl_->SetCosMask(cos, mask) == PqosStatus::kOk) {
        pending_.erase(cos);
      }
    }
    if (!pending_.empty()) {
      violations_->push_back(Violation{
          .tick = tick, .tenant = 0, .invariant = kCheckBackendDivergence,
          .detail = "fs-chaos settle: " + std::to_string(pending_.size()) +
                    " COS still failing writes on a fault-free tree"});
    }
    CompareMasks(live, tick, /*include_pending=*/true);
    // Tree read-back: the file contents are the ground truth the caches
    // must match (the acceptance bar for torn-write handling).
    for (uint8_t cos = 0; cos < shadow_socket_.num_cos(); ++cos) {
      if (cos != 0 && prev_masks_[cos] == kUnseen) {
        continue;
      }
      std::string text;
      if (DefaultFileIo()->Read(shadow_resctrl_->GroupDir(cos) + "/schemata", &text) !=
          FileIoStatus::kOk) {
        violations_->push_back(Violation{
            .tick = tick, .tenant = 0, .invariant = kCheckBackendDivergence,
            .detail = "fs-chaos settle: unreadable schemata for COS " + std::to_string(cos)});
        continue;
      }
      const uint32_t tree_mask = ParseSchemataL3(text);
      if (tree_mask != shadow_resctrl_->GetCosMask(cos)) {
        std::ostringstream detail;
        detail << "fs-chaos settle: COS " << static_cast<int>(cos) << " tree has 0x"
               << MaskToHex(tree_mask) << " but cache holds 0x"
               << MaskToHex(shadow_resctrl_->GetCosMask(cos));
        violations_->push_back(Violation{.tick = tick, .tenant = 0,
                                         .invariant = kCheckBackendDivergence,
                                         .detail = detail.str()});
      }
    }
  }

  uint64_t faults_injected() const {
    return faulty_fs_ != nullptr ? faulty_fs_->injected_total() : 0;
  }
  uint64_t scoped_divergences() const { return scoped_divergences_; }

 private:
  static constexpr uint32_t kUnseen = 0xffffffffu;

  static void WriteFile(const fs::path& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }

  // First "L3:0=<hex>" line of a schemata text, or 0.
  static uint32_t ParseSchemataL3(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("L3:0=", 0) == 0) {
        return ParseMaskHex(line.substr(5)).value_or(0);
      }
    }
    return 0;
  }

  void CompareMasks(const CatController& live, uint64_t tick, bool include_pending) {
    for (uint8_t cos = 1; cos < shadow_socket_.num_cos(); ++cos) {
      if (prev_masks_[cos] == kUnseen) {
        continue;
      }
      if (!include_pending && pending_.count(cos) != 0) {
        continue;  // scoped to an injected fault; retried next Sync
      }
      const uint32_t live_mask = live.GetCosMask(cos);
      const uint32_t sim_mask = shadow_sim_.GetCosMask(cos);
      const uint32_t res_mask = shadow_resctrl_->GetCosMask(cos);
      if (sim_mask != res_mask || sim_mask != live_mask) {
        std::ostringstream detail;
        detail << "COS " << static_cast<int>(cos) << " mask state diverged: live 0x"
               << MaskToHex(live_mask) << ", shadow sim 0x" << MaskToHex(sim_mask)
               << ", fake resctrl 0x" << MaskToHex(res_mask);
        violations_->push_back(Violation{.tick = tick, .tenant = 0,
                                         .invariant = kCheckBackendDivergence,
                                         .detail = detail.str()});
      }
    }
  }

  Socket shadow_socket_;
  SimPqos shadow_sim_;
  std::unique_ptr<FaultyFs> faulty_fs_;
  std::unique_ptr<ResctrlPqos> shadow_resctrl_;
  std::vector<Violation>* violations_;
  bool fs_chaos_ = false;
  std::vector<uint32_t> prev_masks_;
  std::set<uint8_t> pending_;  // COS with a fault-scoped failed write
  uint64_t scoped_divergences_ = 0;
  fs::path root_;
  bool resctrl_ok_ = false;
};

}  // namespace

ScenarioResult RunScenario(const Scenario& scenario, const RunOptions& options) {
  HostConfig host_config;
  host_config.socket =
      scenario.machine == "xeon-d" ? SocketConfig::XeonD() : SocketConfig::XeonE5();
  host_config.mode = ManagerMode::kDcat;
  host_config.dcat = scenario.dcat;
  host_config.dcat.policy = options.policy;
  host_config.cycles_per_interval = options.cycles_per_interval;
  host_config.inject_faults = options.inject_faults;
  host_config.fault_seed = options.fault_seed;
  host_config.fault_profile = options.fault_profile;
  // Faults stop at the end of the scenario proper so the settle window can
  // prove the controller heals once the backend recovers.
  host_config.fault_active_ticks = options.inject_faults ? scenario.intervals : 0;
  host_config.fidelity = options.fidelity;
  Host host(host_config);

  std::ostringstream trace_out;
  JsonlTraceWriter writer(&trace_out);

  InvariantOptions checker_options;
  checker_options.total_ways = host.socket().num_ways();
  checker_options.min_ways = host_config.dcat.min_ways;
  checker_options.ipc_improvement_thr = host_config.dcat.ipc_improvement_thr;
  InvariantChecker checker(checker_options);
  checker.AttachController(host.dcat(), &host.pqos());
  checker.set_metrics(&host.dcat()->metrics());

  host.AddEventSink(&writer);
  host.AddEventSink(&checker);

  ScenarioResult result;

  auto add_tenant = [&](const TenantSetup& tenant) {
    // A faulted backend can reject the admission writes; a refused tenant
    // simply never joins (and must not be registered with the checker, or
    // it would be reported as missing from every interval).
    Vm* vm = host.TryAddVm(VmConfig{.id = tenant.id,
                                    .name = tenant.workload,
                                    .baseline_ways = tenant.baseline_ways,
                                    .seed = WorkloadSeed(scenario, tenant.id)},
                           MakeScenarioWorkload(tenant.workload, WorkloadSeed(scenario, tenant.id)));
    if (vm != nullptr) {
      checker.RegisterTenant(tenant.id, tenant.baseline_ways);
    }
  };
  for (const TenantSetup& tenant : scenario.initial) {
    add_tenant(tenant);
  }

  std::unique_ptr<BackendDifferential> differential;
  if (options.check_backend_differential || options.inject_fs_faults) {
    FaultPlan fs_plan;
    if (options.inject_fs_faults) {
      FaultProfile profile =
          FaultProfileByName(options.fs_fault_profile).value_or(FsMixedProfile());
      // The settle pass runs after the scenario proper; cap the fault window
      // so it sees a clean tree.
      profile.active_ticks = scenario.intervals;
      fs_plan = FaultPlan(options.fs_fault_seed, profile);
    }
    differential = std::make_unique<BackendDifferential>(
        host_config.socket, scenario.seed, &result.violations, options.inject_fs_faults,
        fs_plan);
    differential->Sync(host.pqos(), 0);
  }

  size_t next_churn = 0;
  for (uint32_t interval = 0; interval < scenario.intervals; ++interval) {
    while (next_churn < scenario.churn.size() &&
           scenario.churn[next_churn].interval == interval) {
      const ChurnEvent& event = scenario.churn[next_churn];
      if (event.swap) {
        // Offset seed: the swapped-in job must not replay the original's
        // access stream even when the spec string happens to match.
        host.SwapVmWorkload(event.tenant.id,
                            MakeScenarioWorkload(
                                event.tenant.workload,
                                WorkloadSeed(scenario, event.tenant.id) ^ 0x5a5aULL));
      } else if (event.add) {
        add_tenant(event.tenant);
      } else {
        host.RemoveVm(event.remove_id);
      }
      ++next_churn;
    }
    host.Step();
    if (differential != nullptr) {
      differential->Sync(host.pqos(), host.intervals());
    }
  }
  if (options.inject_fs_faults && differential != nullptr) {
    differential->Settle(host.pqos(), host.intervals());
    result.fs_faults_injected = differential->faults_injected();
    result.fs_scoped_divergences = differential->scoped_divergences();
  }
  if (options.inject_faults) {
    // Quiescent settle window: the fault plan is past its active ticks, so
    // every remaining interval is clean. Reconciliation must repair any
    // outstanding drift and the controller must leave degraded mode.
    for (uint32_t i = 0; i < options.settle_intervals; ++i) {
      host.Step();
    }
    if (host.dcat()->degraded()) {
      result.violations.push_back(
          Violation{.tick = host.intervals(), .tenant = 0, .invariant = kCheckDegradedStuck,
                    .detail = "controller still in degraded mode after " +
                              std::to_string(options.settle_intervals) +
                              " fault-free settle intervals"});
    }
  }
  checker.Finish();

  result.violations.insert(result.violations.end(), checker.violations().begin(),
                           checker.violations().end());
  result.trace = trace_out.str();
  result.ticks = checker.ticks_checked();
  result.invariant_violations_total =
      host.dcat()->metrics().counter("invariant_violations_total").value();
  for (uint16_t c = 0; c < host.socket().num_cores(); ++c) {
    result.accesses += host.socket().core(c).counters().l1_references;
  }
  if (host.fidelity() != nullptr) {
    result.analytic_coverage = host.fidelity()->coverage();
  }
  result.metrics = host.dcat()->metrics();
  return result;
}

std::string DescribeTraceDivergence(const std::string& first, const std::string& second) {
  if (first == second) {
    return "";
  }
  std::istringstream a(first);
  std::istringstream b(second);
  std::string line_a;
  std::string line_b;
  size_t line_number = 0;
  while (true) {
    ++line_number;
    const bool got_a = static_cast<bool>(std::getline(a, line_a));
    const bool got_b = static_cast<bool>(std::getline(b, line_b));
    if (!got_a && !got_b) {
      return "traces differ but no diverging line found";
    }
    if (!got_a || !got_b || line_a != line_b) {
      std::ostringstream out;
      out << "first divergence at line " << line_number << ":\n  run1: "
          << (got_a ? line_a : "<eof>") << "\n  run2: " << (got_b ? line_b : "<eof>");
      return out.str();
    }
  }
}

bool CheckTraceDeterminism(const Scenario& scenario, const RunOptions& options,
                           std::string* detail) {
  RunOptions run_options = options;
  run_options.check_backend_differential = false;  // no effect on the trace
  run_options.inject_fs_faults = false;            // shadow-only, same reason
  const ScenarioResult first = RunScenario(scenario, run_options);
  const ScenarioResult second = RunScenario(scenario, run_options);
  const std::string divergence = DescribeTraceDivergence(first.trace, second.trace);
  if (divergence.empty()) {
    return true;
  }
  if (detail != nullptr) {
    *detail = divergence;
  }
  return false;
}

ScenarioResult RunFig10Golden() {
  RunOptions options;
  options.policy = "max-fairness";
  options.cycles_per_interval = 20e6;  // matches the dcatd demo
  options.check_backend_differential = false;
  return RunScenario(Fig10Scenario(), options);
}

}  // namespace dcat
