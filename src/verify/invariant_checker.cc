#include "src/verify/invariant_checker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "src/pqos/mask.h"

namespace dcat {
namespace {

// Memory backstop for pathological runs: the metrics counter keeps the true
// total, but the stored list stops growing here.
constexpr size_t kMaxStoredViolations = 10'000;

}  // namespace

InvariantChecker::InvariantChecker(InvariantOptions options) : options_(options) {}

void InvariantChecker::RegisterTenant(TenantId id, uint32_t baseline_ways) {
  TenantTrack& track = Track(id);
  track.baseline_ways = baseline_ways;
  track.active = true;
  track.admit_tick = group_open_ ? group_tick_ : 0;
}

namespace {

// Adapter: the production ControllerView over a live DcatController.
class DcatControllerView : public ControllerView {
 public:
  explicit DcatControllerView(const DcatController* controller) : controller_(controller) {}
  bool HasTenant(TenantId id) const override { return controller_->HasTenant(id); }
  TenantSnapshot GetTenant(TenantId id) const override { return controller_->Snapshot(id); }
  ControllerSnapshot GetController() const override { return controller_->Snapshot(); }

 private:
  const DcatController* controller_;
};

}  // namespace

void InvariantChecker::AttachController(const DcatController* controller,
                                        const CatController* cat) {
  owned_view_ = std::make_unique<DcatControllerView>(controller);
  view_ = owned_view_.get();
  cat_ = cat;
}

void InvariantChecker::AttachView(const ControllerView* view, const CatController* cat) {
  owned_view_.reset();
  view_ = view;
  cat_ = cat;
}

void InvariantChecker::AddViolation(uint64_t tick, TenantId tenant, const char* invariant,
                                    std::string detail) {
  if (metrics_ != nullptr) {
    metrics_->counter("invariant_violations_total").Increment();
    metrics_->counter(std::string("invariant_violations.") + invariant).Increment();
  }
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(
        Violation{.tick = tick, .tenant = tenant, .invariant = invariant,
                  .detail = std::move(detail)});
  }
}

size_t InvariantChecker::ExpectedRows() const {
  size_t expected = 0;
  for (const auto& [id, track] : tenants_) {
    if (track.active && track.admit_tick < group_tick_) {
      ++expected;
    }
  }
  return expected;
}

void InvariantChecker::BeginGroup(uint64_t tick) {
  if (group_open_ && !group_finalized_) {
    FinalizeGroup();
  }
  group_open_ = true;
  group_finalized_ = false;
  group_tick_ = tick;
  group_rows_.clear();
  hard_fault_this_group_ = false;
  for (auto& [id, track] : tenants_) {
    track.phase_changed_this_group = false;
    track.anomaly_this_group = false;
  }
}

void InvariantChecker::FinalizeGroup() {
  group_finalized_ = true;
  if (group_rows_.empty()) {
    // Lifecycle-only group (admissions between control intervals): nothing
    // interval-wide to audit.
    return;
  }
  ++ticks_checked_;

  // Way conservation: the allocations in effect must fit the socket. When
  // the controller snapshot (same tick) shows several tenants on one COS —
  // a clustering policy — the shared ways count once, not per tenant.
  uint64_t total_assigned = 0;
  for (const TickEvent& row : group_rows_) {
    total_assigned += row.ways;
  }
  if (view_ != nullptr) {
    const ControllerSnapshot snap = view_->GetController();
    if (snap.tick == group_tick_) {
      bool shared_cos = false;
      std::map<uint8_t, uint64_t> per_cos;
      for (const TenantSnapshot& tenant : snap.tenants) {
        const auto [it, inserted] = per_cos.emplace(tenant.cos, tenant.ways);
        shared_cos = shared_cos || !inserted;
      }
      if (shared_cos) {
        total_assigned = 0;
        for (const auto& [cos, ways] : per_cos) {
          total_assigned += ways;
        }
      }
    }
  }
  if (total_assigned > options_.total_ways) {
    std::ostringstream detail;
    detail << "sum of assigned ways " << total_assigned << " exceeds socket ways "
           << options_.total_ways;
    AddViolation(group_tick_, 0, kInvWayConservation, detail.str());
  }

  // Every tenant admitted before this interval must have reported a row —
  // a silently dropped tenant is an unaudited tenant.
  for (const auto& [id, track] : tenants_) {
    if (!track.active || track.admit_tick >= group_tick_) {
      continue;
    }
    const bool seen = std::any_of(group_rows_.begin(), group_rows_.end(),
                                  [id = id](const TickEvent& row) { return row.tenant == id; });
    if (!seen) {
      AddViolation(group_tick_, id, kInvMissingTick,
                   "active tenant missing from the interval's tick rows");
    }
  }

  CheckControllerState();
}

void InvariantChecker::CheckControllerState() {
  if (view_ == nullptr) {
    return;
  }
  // While the backend is refusing or losing writes the controller's
  // bookkeeping intentionally lags the hardware (transactional apply rolls
  // back, reconciliation re-programs next interval): comparing the two mid
  // -outage would report the fault itself, not a controller bug. The event
  // stream already carries the fault; skip the agreement audit this tick.
  const bool audit_masks = !hard_fault_this_group_;
  const ControllerSnapshot snap = view_->GetController();
  if (snap.tick != group_tick_) {
    // The controller moved on (lazily finalized group); its state no longer
    // describes this interval, so mask/table audits would be meaningless.
    return;
  }
  const uint32_t socket_mask = MakeWayMask(0, options_.total_ways);
  uint32_t seen_union = 0;
  std::map<uint8_t, uint32_t> audited_cos;  // intentional sharing: one COS, one audit
  for (const TenantSnapshot& tenant : snap.tenants) {
    if (cat_ != nullptr && audit_masks) {
      const uint32_t mask = cat_->GetCosMask(tenant.cos);
      std::ostringstream where;
      where << "COS " << static_cast<int>(tenant.cos) << " mask 0x" << MaskToHex(mask);
      if (const auto it = audited_cos.find(tenant.cos); it != audited_cos.end()) {
        // Tenants deliberately sharing a COS (a clustering policy) are not
        // an isolation breach — but each must still agree with the shared
        // mask's width, or its bookkeeping lies about what it runs on.
        if (static_cast<uint32_t>(MaskWays(it->second)) != tenant.ways) {
          std::ostringstream detail;
          detail << where.str() << " holds " << MaskWays(it->second)
                 << " ways but the controller says " << tenant.ways;
          AddViolation(group_tick_, tenant.id, kInvMaskShape, detail.str());
        }
      } else {
        audited_cos.emplace(tenant.cos, mask);
        if (mask == 0 || !IsContiguousMask(mask)) {
          AddViolation(group_tick_, tenant.id, kInvMaskShape,
                       where.str() + " is empty or non-contiguous");
          continue;
        }
        if ((mask & ~socket_mask) != 0) {
          AddViolation(group_tick_, tenant.id, kInvMaskShape,
                       where.str() + " reaches beyond the socket's ways");
        }
        if (static_cast<uint32_t>(MaskWays(mask)) != tenant.ways) {
          std::ostringstream detail;
          detail << where.str() << " holds " << MaskWays(mask)
                 << " ways but the controller says " << tenant.ways;
          AddViolation(group_tick_, tenant.id, kInvMaskShape, detail.str());
        }
        // Unintended overlap: this COS's mask intersecting a *different*
        // COS's mask still breaks isolation and stays a violation.
        if ((mask & seen_union) != 0) {
          AddViolation(group_tick_, tenant.id, kInvMaskOverlap,
                       where.str() + " overlaps another tenant's mask");
        }
        seen_union |= mask;
      }
    }

    // Performance-table sanity: entries must be positive, finite, and for
    // sizes the socket can actually grant.
    for (const auto& [ways, value] : tenant.table.Entries()) {
      if (!(value > 0.0) || !std::isfinite(value)) {
        std::ostringstream detail;
        detail << "table entry at " << ways << " ways has non-positive/non-finite value "
               << value;
        AddViolation(group_tick_, tenant.id, kInvTableConsistency, detail.str());
      }
      if (ways < options_.min_ways || ways > options_.total_ways) {
        std::ostringstream detail;
        detail << "table entry at " << ways << " ways is outside the grantable range ["
               << options_.min_ways << ", " << options_.total_ways << "]";
        AddViolation(group_tick_, tenant.id, kInvTableConsistency, detail.str());
      }
    }
  }
}

void InvariantChecker::CheckRow(const TickEvent& row) {
  TenantTrack& track = Track(row.tenant);

  if (row.ways < options_.min_ways) {
    std::ostringstream detail;
    detail << "tenant holds " << row.ways << " ways, below the CAT floor of "
           << options_.min_ways;
    AddViolation(row.tick, row.tenant, kInvMinAllocation, detail.str());
  }

  // A condemned Streaming tenant is a special Donor pinned at the minimum
  // until a phase change releases it (§3.4). A backend that refused this
  // interval's apply can leave a fresh condemnation above the pin for one
  // tick — the controller's retry/reconcile path owns that window.
  if (row.category == Category::kStreaming && row.ways != options_.min_ways &&
      !hard_fault_this_group_ && !degraded_) {
    std::ostringstream detail;
    detail << "Streaming tenant holds " << row.ways << " ways instead of the pinned minimum "
           << options_.min_ways;
    AddViolation(row.tick, row.tenant, kInvStreamingPinned, detail.str());
  }

  // Reclaim deadline: a tenant below its contract whose normalized IPC has
  // sunk below the controller's own guarantee-enforcement trigger must not
  // be left to suffer (the baseline guarantee, §3).
  const bool suffering =
      track.baseline_ways > 0 && row.ways < track.baseline_ways && row.norm_ipc > 0.0 &&
      row.norm_ipc < 1.0 - 2.0 * options_.ipc_improvement_thr && !row.phase_changed &&
      (row.category == Category::kDonor || row.category == Category::kKeeper);
  if (track.anomaly_this_group || hard_fault_this_group_ || degraded_) {
    // Pause, not reset: quarantined counters carry no IPC evidence either
    // way, and a backend that refuses writes cannot serve a reclaim no
    // matter what the controller decides (it is already retrying). The
    // streak resumes from its held value once the interval is clean.
  } else if (row.category == Category::kReclaim || !suffering) {
    track.suffering_streak = 0;
  } else {
    ++track.suffering_streak;
    if (track.suffering_streak > options_.reclaim_deadline_ticks) {
      std::ostringstream detail;
      detail << "tenant below contract (" << row.ways << " < " << track.baseline_ways
             << " ways) with normalized IPC " << row.norm_ipc << " for "
             << track.suffering_streak << " ticks without a reclaim (deadline "
             << options_.reclaim_deadline_ticks << ")";
      AddViolation(row.tick, row.tenant, kInvReclaimDeadline, detail.str());
      track.suffering_streak = 0;
    }
  }

  // Table consistency: the measurement surfaced at tick T ran at the ways
  // decided at T-1, and the controller folds exactly this normalized IPC
  // into the table entry for that size by EWMA (or leaves it untouched on
  // an idle/baseline-measuring interval). Either way the post-update entry
  // must lie between the pre-update entry — cached from the previous
  // tick's snapshot — and the sample. A phase change swaps the whole
  // table, so those rows only refresh the cache.
  if (view_ != nullptr && view_->HasTenant(row.tenant)) {
    const TenantSnapshot snap = view_->GetTenant(row.tenant);
    if (track.has_prev_ways && track.has_cached_entry && !row.phase_changed &&
        snap.baseline_valid) {
      const auto entry = snap.table.Get(track.prev_ways);
      if (entry.has_value()) {
        const double lo = std::min(track.cached_entry, row.norm_ipc);
        const double hi = std::max(track.cached_entry, row.norm_ipc);
        const double slack = options_.table_update_slack * std::max(1.0, hi);
        if (*entry < lo - slack || *entry > hi + slack) {
          std::ostringstream detail;
          detail << "table entry at " << track.prev_ways << " ways is " << *entry
                 << " outside the EWMA interval [" << lo << ", " << hi
                 << "] of the previous entry " << track.cached_entry
                 << " and this interval's normalized IPC " << row.norm_ipc;
          AddViolation(row.tick, row.tenant, kInvTableConsistency, detail.str());
        }
      }
    }
    // Cache the entry for the size the *next* interval runs at (this row's
    // post-allocation ways).
    const auto next_entry = snap.table.Get(row.ways);
    track.has_cached_entry = next_entry.has_value();
    track.cached_entry = next_entry.value_or(0.0);
  }

  track.prev_ways = row.ways;
  track.has_prev_ways = true;
}

void InvariantChecker::OnTick(const TickEvent& event) {
  if (!group_open_ || event.tick > group_tick_) {
    BeginGroup(event.tick);
  }
  group_rows_.push_back(event);
  CheckRow(event);
  if (!group_finalized_ && group_rows_.size() >= ExpectedRows() && ExpectedRows() > 0) {
    // All expected rows are in: the controller's interval is complete and
    // its state is final — audit now, while masks still describe this tick.
    FinalizeGroup();
  }
}

void InvariantChecker::OnPhaseChange(const PhaseChangeEvent& event) {
  if (!group_open_ || event.tick > group_tick_) {
    BeginGroup(event.tick);
  }
  Track(event.tenant).phase_changed_this_group = true;
}

void InvariantChecker::OnCategoryChange(const CategoryChangeEvent& event) {
  if (!group_open_ || event.tick > group_tick_) {
    BeginGroup(event.tick);
  }
}

void InvariantChecker::OnAllocation(const AllocationEvent& event) {
  if (!group_open_ || event.tick > group_tick_) {
    BeginGroup(event.tick);
  }
  TenantTrack& track = Track(event.tenant);
  switch (event.reason) {
    case AllocationReason::kAdmit:
      track.active = true;
      track.admit_tick = event.tick;
      track.suffering_streak = 0;
      track.last_direction = 0;
      track.flip_ticks.clear();
      track.has_prev_ways = false;
      return;
    case AllocationReason::kEvict:
      track.active = false;
      track.suffering_streak = 0;
      track.last_direction = 0;
      track.flip_ticks.clear();
      track.has_prev_ways = false;
      return;
    case AllocationReason::kReclaim: {
      if (track.phase_changed_this_group) {
        // A phase change legitimately resets the donate/reclaim dance.
        track.last_direction = 0;
        break;
      }
      if (track.last_direction > 0) {
        track.flip_ticks.push_back(event.tick);
      }
      track.last_direction = -1;
      break;
    }
    case AllocationReason::kDonate: {
      if (track.last_direction < 0) {
        track.flip_ticks.push_back(event.tick);
      }
      track.last_direction = 1;
      break;
    }
    case AllocationReason::kShrinkForReclaim:
    case AllocationReason::kGrowFromPool:
    case AllocationReason::kGrowDenied:
    case AllocationReason::kRebalance:
      break;
    case AllocationReason::kDegradedBaseline:
      // The static-baseline fallback is neither a donation nor a reclaim;
      // it must not feed the oscillation detector, and entering/leaving it
      // resets the dance like a phase change does.
      track.last_direction = 0;
      break;
  }

  // A between-interval adjustment (the group is already audited — this is
  // an admission-time re-layout): the next interval runs at this size, so
  // the measurement pairing for table consistency must follow it.
  if (group_finalized_ && track.has_prev_ways) {
    track.prev_ways = event.to_ways;
    track.has_cached_entry = false;  // the cache was for the old size
  }

  // Any non-eviction allocation must respect the CAT floor.
  if (event.to_ways < options_.min_ways) {
    std::ostringstream detail;
    detail << AllocationReasonName(event.reason) << " left the tenant at " << event.to_ways
           << " ways, below the CAT floor of " << options_.min_ways;
    AddViolation(event.tick, event.tenant, kInvMinAllocation, detail.str());
  }

  // Oscillation: prune the sliding window, then count direction flips.
  while (!track.flip_ticks.empty() &&
         track.flip_ticks.front() + options_.flip_window_ticks <= event.tick) {
    track.flip_ticks.pop_front();
  }
  if (track.flip_ticks.size() > options_.max_flips_per_window) {
    std::ostringstream detail;
    detail << track.flip_ticks.size() << " donate<->reclaim flips within "
           << options_.flip_window_ticks << " ticks (limit " << options_.max_flips_per_window
           << ")";
    AddViolation(event.tick, event.tenant, kInvOscillation, detail.str());
    track.flip_ticks.clear();
  }
}

void InvariantChecker::OnBackendFault(const BackendFaultEvent& event) {
  if (!group_open_ || event.tick > group_tick_) {
    BeginGroup(event.tick);
  }
  if (!event.recovered) {
    hard_fault_this_group_ = true;
  }
}

void InvariantChecker::OnMaskDrift(const MaskDriftEvent& event) {
  if (!group_open_ || event.tick > group_tick_) {
    BeginGroup(event.tick);
  }
  if (!event.repaired) {
    hard_fault_this_group_ = true;
  }
}

void InvariantChecker::OnCounterAnomaly(const CounterAnomalyEvent& event) {
  if (!group_open_ || event.tick > group_tick_) {
    BeginGroup(event.tick);
  }
  Track(event.tenant).anomaly_this_group = true;
}

void InvariantChecker::OnModeChange(const ModeChangeEvent& event) {
  if (!group_open_ || event.tick > group_tick_) {
    BeginGroup(event.tick);
  }
  degraded_ = event.degraded;
}

void InvariantChecker::OnRestart(const RestartEvent& event) {
  // Do NOT finalize the open group: its audit would read the attached
  // controller, and that object died with the crashed process.
  group_open_ = false;
  group_finalized_ = false;
  group_rows_.clear();
  hard_fault_this_group_ = false;
  degraded_ = event.degraded;
  view_ = nullptr;
  owned_view_.reset();
  cat_ = nullptr;
  for (auto& [id, track] : tenants_) {
    track.suffering_streak = 0;
    track.last_direction = 0;
    track.flip_ticks.clear();
    track.phase_changed_this_group = false;
    track.anomaly_this_group = false;
    track.has_prev_ways = false;
    track.has_cached_entry = false;
  }
}

void InvariantChecker::Finish() {
  if (group_open_ && !group_finalized_) {
    FinalizeGroup();
  }
}

std::string InvariantChecker::Report(size_t max_items) const {
  std::ostringstream out;
  if (violations_.empty()) {
    out << "invariants: clean (" << ticks_checked_ << " ticks audited)\n";
    return out.str();
  }
  out << "invariants: " << violations_.size() << " violation(s) over " << ticks_checked_
      << " ticks\n";
  const size_t shown = std::min(max_items, violations_.size());
  for (size_t i = 0; i < shown; ++i) {
    const Violation& v = violations_[i];
    out << "  [" << v.invariant << "] tick " << v.tick;
    if (v.tenant != 0) {
      out << " tenant " << v.tenant;
    }
    out << ": " << v.detail << "\n";
  }
  if (shown < violations_.size()) {
    out << "  ... " << (violations_.size() - shown) << " more\n";
  }
  return out.str();
}

}  // namespace dcat
