// Deterministic controller scenarios: random tenant mixes for fuzzing and
// the canonical Fig. 10 mix for golden-trace regression.
//
// A Scenario is a complete, serializable description of one host run —
// machine, controller config perturbation, tenant mix, arrival/departure
// churn — derived entirely from a seed, so any fuzz finding replays from
// the seed alone. RunScenario executes the full host+controller loop with
// an InvariantChecker riding the telemetry fanout and the JSONL trace
// captured in memory; optional extras check that the SimPqos and fake-tree
// ResctrlPqos backends agree on every programmed mask, and
// CheckTraceDeterminism proves the same seed yields a byte-identical trace.
#ifndef SRC_VERIFY_SCENARIO_H_
#define SRC_VERIFY_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/sim/analytic_model.h"
#include "src/telemetry/metrics.h"
#include "src/verify/invariant_checker.h"
#include "src/workloads/workload.h"

namespace dcat {

// Harness-level finding keys (reported as Violation::invariant alongside
// the checker's own keys).
inline constexpr char kCheckBackendDivergence[] = "backend-divergence";
inline constexpr char kCheckTraceDeterminism[] = "trace-nondeterminism";
// Chaos runs only: the controller was still in degraded mode after the
// fault schedule went quiet and the settle window elapsed — self-healing
// failed to re-enter dynamic mode.
inline constexpr char kCheckDegradedStuck[] = "degraded-stuck";

struct TenantSetup {
  TenantId id = 0;
  std::string workload;  // factory spec, or the scenario-local "phased-*"
  uint32_t baseline_ways = 1;
};

struct ChurnEvent {
  uint32_t interval = 0;  // fires before Step() of this interval (0-based)
  bool add = false;       // true: admit `tenant`; false: evict `remove_id`
  // Workload swap: tenant `tenant.id` replaces its job with
  // `tenant.workload` in place (same contract, no admission). Takes
  // precedence over `add`. Generated paired with an add/remove at the same
  // interval when one exists, so a capacity-mask change and a workload
  // phase change land in the same tick — the interleaving the hybrid
  // fidelity engine must treat as one churn event.
  bool swap = false;
  TenantSetup tenant;
  TenantId remove_id = 0;
};

struct Scenario {
  uint64_t seed = 0;
  std::string machine = "xeon-e5";  // "xeon-e5" | "xeon-d"
  DcatConfig dcat;                  // perturbed thresholds; policy set per run
  uint32_t intervals = 20;
  std::vector<TenantSetup> initial;
  std::vector<ChurnEvent> churn;  // sorted by interval

  // One-line human description (printed by dcat_fuzz on a finding).
  std::string Describe() const;
};

// Expands `seed` into a full scenario: machine, 2..6 tenants drawn from the
// MLR/MLOAD/lookbusy/phased/SPEC-proxy pool, churn, and config
// perturbations. Same seed, same scenario — always.
Scenario RandomScenario(uint64_t seed);

// The paper's Fig. 10 mix: one MLR-8M receiver among five lookbusy donors,
// baseline 3 ways each on the Xeon E5 socket. Basis of the golden trace.
Scenario Fig10Scenario();

// Builds a workload from a scenario spec: the factory grammar plus the
// scenario-local "phased-*" composites. Shared with the crash harness so a
// crashed re-run reconstructs the identical tenant mix.
std::unique_ptr<Workload> MakeScenarioWorkload(const std::string& spec, uint64_t seed);

// Deterministic per-tenant workload seed (never 0 or 1).
uint64_t WorkloadSeed(const Scenario& scenario, TenantId id);

struct RunOptions {
  // PolicyRegistry name (canonical or legacy spelling).
  std::string policy = "max-fairness";
  // Simulated cycles per control interval; smaller = faster fuzzing. The
  // controller consumes rates only, so dilation changes no decision logic.
  double cycles_per_interval = 1e6;
  // Replay every programmed mask through a second SimPqos and a fake-tree
  // ResctrlPqos and require identical mask states (writes a temp dir).
  bool check_backend_differential = false;
  // Chaos mode: interpose a FaultyPqos between the controller and the sim
  // backend for the scenario's intervals, then run `settle_intervals` more
  // fault-free intervals and require the controller to have healed (out of
  // degraded mode, backend reconciled). Off by default: a fault-free run is
  // byte-identical to one without these fields.
  bool inject_faults = false;
  uint64_t fault_seed = 0;
  std::string fault_profile = "mixed";  // see FaultProfileByName
  uint32_t settle_intervals = 10;
  // File-I/O chaos: run the fake-tree resctrl differential with a FaultyFs
  // interposed under the shadow ResctrlPqos (implies the differential).
  // Write failures under chaos scope their COS as an expected (attributed)
  // divergence instead of a finding; after the scenario a fault-free settle
  // pass re-applies every mask and re-reads every schemata file from the
  // tree — any residual disagreement is reported as
  // kCheckBackendDivergence. The live controller trace is untouched: the
  // chaos lives entirely in the shadow replica.
  bool inject_fs_faults = false;
  uint64_t fs_fault_seed = 0;
  std::string fs_fault_profile = "fs-mixed";  // fs-* names in FaultProfileByName
  // Simulation fidelity (src/sim/analytic_model.h). kHybrid must produce a
  // decision trace (ExtractDecisionTrace) byte-identical to kLine; the
  // full trace additionally carries the fidelity-transition lines. The
  // host silently stays line-level for chaos/crash runs.
  FidelityConfig fidelity;
};

struct ScenarioResult {
  std::vector<Violation> violations;  // checker findings + harness findings
  std::string trace;                  // full JSONL decision trace
  uint64_t ticks = 0;                 // intervals audited
  uint64_t invariant_violations_total = 0;  // metrics counter after the run
  // Simulated work executed and hybrid fast-path coverage — the fleet layer
  // aggregates these across shards for its throughput accounting.
  uint64_t accesses = 0;           // Σ per-core L1 references after the run
  double analytic_coverage = 0.0;  // 0..1; stays 0 for line-level runs
  // File-I/O chaos accounting (inject_fs_faults runs only): faults the
  // FaultyFs injected into the shadow resctrl, and how many replayed writes
  // failed under chaos and were scoped to the fault rather than reported.
  uint64_t fs_faults_injected = 0;
  uint64_t fs_scoped_divergences = 0;
  // Copy of the controller's metrics registry at the end of the run (the
  // fleet layer sums counters across hosts into one registry).
  MetricsRegistry metrics;
  bool ok() const { return violations.empty(); }
};

// Runs the scenario under the given policy with the invariant checker
// attached. Deterministic: the trace depends only on (scenario, options).
ScenarioResult RunScenario(const Scenario& scenario, const RunOptions& options);

// Runs the scenario twice and byte-compares the JSONL traces. Returns true
// when identical; otherwise fills *detail with the first diverging line.
bool CheckTraceDeterminism(const Scenario& scenario, const RunOptions& options,
                           std::string* detail);

// Human description of where two traces first diverge (for reports when a
// caller already holds both traces). Empty string when they are identical.
std::string DescribeTraceDivergence(const std::string& first, const std::string& second);

// The pinned golden-trace run: Fig10Scenario under max-fairness with fixed
// run options, shared by `dcat_fuzz --write-golden` and the regression test.
ScenarioResult RunFig10Golden();

}  // namespace dcat

#endif  // SRC_VERIFY_SCENARIO_H_
