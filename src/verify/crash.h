// Crash-restart harness: kill the controller at a chosen point, recover it
// from the write-ahead journal, and prove the splice is seamless.
//
// A crash run executes a scenario exactly like RunScenario, but at one
// controller tick the "process" dies — at the tick boundary, mid-apply
// (the N-th backend write of the tick throws), or mid-journal-append (the
// decision record is torn at a byte offset). The harness then destroys the
// controller, rebuilds it through RecoverController from the surviving
// journal bytes, and finishes the scenario.
//
// Two properties are asserted:
//   * The invariant checker stays clean across the splice — every audited
//     interval, before and after the crash, satisfies the controller's
//     safety claims.
//   * Fault-free runs converge: the crashed run's trace, spliced at the
//     crash (segment 1 truncated at the crashed tick, restart/recovery
//     bookkeeping lines dropped), is byte-identical to the uninterrupted
//     run's trace under the same filter. A crash costs at most the crashed
//     tick itself (mid-apply kills the tick's output on both sides; a torn
//     journal replays the tick and loses nothing).
#ifndef SRC_VERIFY_CRASH_H_
#define SRC_VERIFY_CRASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/recovery/recovery.h"
#include "src/verify/scenario.h"

namespace dcat {

// Harness-level finding keys (reported alongside the checker's own).
inline constexpr char kCheckCrashDivergence[] = "crash-divergence";
inline constexpr char kCheckCrashRecovery[] = "crash-recovery";

enum class CrashMode {
  kBoundary,     // between two control intervals (cleanest cut)
  kMidApply,     // the crash_write-th backend write of the tick throws
  kTornJournal,  // the tick's decision record is cut at torn_keep_bytes
};

const char* CrashModeName(CrashMode mode);

struct CrashRunOptions {
  std::string policy = "max-fairness";
  double cycles_per_interval = 1e6;
  CrashMode mode = CrashMode::kBoundary;
  // Controller tick (1-based, trace numbering) whose interval hosts the
  // crash; clamped to [2, scenario.intervals] by the runner.
  uint64_t crash_tick = 5;
  // kMidApply: which backend write of the tick throws (1-based). A tick
  // with fewer writes simply never crashes (result.crashed = false).
  uint64_t crash_write = 1;
  // kTornJournal: bytes of the decision frame that reach storage before
  // the crash (0 = nothing lands, the previous record stays the tail).
  size_t torn_keep_bytes = 6;
  // Chaos composition: also fault-inject the backend (RunOptions
  // semantics). Trace convergence is only asserted on fault-free runs —
  // under chaos the reference run sees a different fault schedule around
  // the splice, so only the invariants are required to hold.
  bool inject_faults = false;
  uint64_t fault_seed = 0;
  std::string fault_profile = "mixed";
  uint32_t settle_intervals = 10;
  // Reuse a precomputed uninterrupted trace (same scenario + options)
  // instead of re-running it — lets a sweep over crash points pay for the
  // reference once. Borrowed; ignored when null or under chaos.
  const std::string* reference_trace = nullptr;
};

struct CrashRunResult {
  std::vector<Violation> violations;  // checker + harness findings
  std::string trace;                  // spliced, filtered trace of the crashed run
  std::string reference_trace;        // uninterrupted trace, same filter applied
  RecoveryReport report;              // from the restart (valid when crashed)
  uint64_t ticks = 0;                 // intervals audited by the checker
  bool crashed = false;               // the armed crash actually fired
  bool ok() const { return violations.empty(); }
};

// Runs the scenario with one crash-restart per the options. Deterministic.
CrashRunResult RunCrashScenario(const Scenario& scenario, const CrashRunOptions& options);

// Produces the uninterrupted trace a sweep can feed back via
// CrashRunOptions::reference_trace (RunScenario under matching options).
std::string UninterruptedTrace(const Scenario& scenario, const CrashRunOptions& options);

}  // namespace dcat

#endif  // SRC_VERIFY_CRASH_H_
