// Invariant-checking sink over the controller's telemetry stream.
//
// The controller's safety claims (DESIGN §6, §10) are machine-checkable
// from the decision events it already publishes: way conservation, the
// one-way floor, contiguous CAT masks, timely reclaim of a suffering
// under-contract tenant, no donate/reclaim oscillation, Streaming pinned
// at the minimum, and performance-table entries consistent with observed
// samples. InvariantChecker implements EventSink, so it rides the same
// fanout as the trace writers: attach it to any run — unit test, dcatd
// session, fuzz scenario — and every tick is audited as it happens.
//
// Event-only invariants need nothing beyond the stream plus the tenant
// contracts (RegisterTenant, or automatic via an attached controller).
// Deep checks — COS mask states and table consistency — activate when
// AttachController provides the controller and its CAT backend.
#ifndef SRC_VERIFY_INVARIANT_CHECKER_H_
#define SRC_VERIFY_INVARIANT_CHECKER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dcat_controller.h"
#include "src/pqos/pqos.h"
#include "src/telemetry/events.h"
#include "src/telemetry/metrics.h"

namespace dcat {

struct InvariantOptions {
  // Socket-wide way budget (CatController::NumWays of the audited socket).
  uint32_t total_ways = 20;
  // The CAT floor: no active tenant may ever hold fewer ways.
  uint32_t min_ways = 1;
  // Mirror of DcatConfig::ipc_improvement_thr; the reclaim deadline arms
  // when normalized IPC sinks below 1 - 2x this threshold (the
  // controller's own guarantee-enforcement trigger).
  double ipc_improvement_thr = 0.05;
  // A non-Streaming tenant below contracted ways whose normalized IPC
  // stays below the trigger must be reclaimed within this many
  // consecutive ticks.
  uint32_t reclaim_deadline_ticks = 3;
  // Donate<->reclaim oscillation: more than this many direction flips
  // (reclaims not explained by a phase change, following a donation, and
  // vice versa) within `flip_window_ticks` is a violation.
  uint32_t max_flips_per_window = 4;
  uint32_t flip_window_ticks = 40;
  // Table consistency: the table updates by EWMA, so after tick T the entry
  // for the ways the interval ran at must lie between the pre-update entry
  // (read from the previous tick's snapshot) and the fresh sample — any
  // convex-combination update passes, a corrupted entry cannot. This is the
  // tolerance beyond that interval, covering float rounding.
  double table_update_slack = 1e-6;
};

// One invariant failure. `invariant` is a stable kebab-case key so tests
// and the fuzzer can select by kind; `detail` is the human explanation.
struct Violation {
  uint64_t tick = 0;
  TenantId tenant = 0;  // 0 for socket-wide findings
  std::string invariant;
  std::string detail;
};

// Stable invariant keys (the `Violation::invariant` values).
inline constexpr char kInvWayConservation[] = "way-conservation";
inline constexpr char kInvMinAllocation[] = "min-allocation";
inline constexpr char kInvMissingTick[] = "missing-tick-row";
inline constexpr char kInvMaskShape[] = "mask-shape";
inline constexpr char kInvMaskOverlap[] = "mask-overlap";
inline constexpr char kInvReclaimDeadline[] = "reclaim-deadline";
inline constexpr char kInvOscillation[] = "donate-reclaim-oscillation";
inline constexpr char kInvStreamingPinned[] = "streaming-pinned";
inline constexpr char kInvTableConsistency[] = "table-consistency";

// Read-only view of controller state for the deep checks. Production code
// attaches a DcatController (adapted internally); tests attach a fake that
// serves corrupted snapshots to prove each deep invariant actually fires.
class ControllerView {
 public:
  virtual ~ControllerView() = default;
  virtual bool HasTenant(TenantId id) const = 0;
  virtual TenantSnapshot GetTenant(TenantId id) const = 0;
  virtual ControllerSnapshot GetController() const = 0;
};

class InvariantChecker : public EventSink {
 public:
  explicit InvariantChecker(InvariantOptions options);

  // Declares a tenant's contract. Harnesses that attach a controller can
  // skip this: contracts are pulled from snapshots at tick boundaries.
  void RegisterTenant(TenantId id, uint32_t baseline_ways);

  // Enables the deep checks (COS masks, performance tables). Both are
  // borrowed and must outlive the checker's event feed.
  void AttachController(const DcatController* controller, const CatController* cat);

  // Same, through the view seam (both borrowed). `cat` may be null: mask
  // audits are skipped, snapshot-based checks still run.
  void AttachView(const ControllerView* view, const CatController* cat);

  // Violations additionally bump `invariant_violations_total` here
  // (borrowed). Typically the controller's own registry, so
  // `dcatd --metrics` surfaces findings next to the control-loop counters.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // EventSink. Tick rows arrive last within a control interval, so the
  // checker audits interval T as soon as the final expected row of T
  // lands (controller state is final at that point).
  void OnTick(const TickEvent& event) override;
  void OnPhaseChange(const PhaseChangeEvent& event) override;
  void OnCategoryChange(const CategoryChangeEvent& event) override;
  void OnAllocation(const AllocationEvent& event) override;
  // Fault-stream awareness: an unrecovered backend fault or unrepaired
  // drift marks the interval as backend-degraded, which pauses the audits
  // that presume a cooperating backend (mask agreement, reclaim deadline);
  // a counter anomaly pauses the per-tenant suffering clock (its IPC
  // evidence is quarantined, not trustworthy in either direction).
  void OnBackendFault(const BackendFaultEvent& event) override;
  void OnMaskDrift(const MaskDriftEvent& event) override;
  void OnCounterAnomaly(const CounterAnomalyEvent& event) override;
  void OnModeChange(const ModeChangeEvent& event) override;
  // Controller crash-restart: the interval the crash cut short was never
  // completed by the controller, so the open group is discarded unaudited
  // (its rows describe a decision that never fully landed), all cross-tick
  // bookkeeping that chains through controller state resets, and — because
  // the controller object the deep checks were attached to died with the
  // process — the view is detached. Re-attach after recovery to resume
  // deep audits; event-only invariants continue either way.
  void OnRestart(const RestartEvent& event) override;

  // Audits the final (possibly incomplete) interval; call once when the
  // run ends.
  void Finish();

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t ticks_checked() const { return ticks_checked_; }

  // Multi-line human rendering of up to `max_items` violations.
  std::string Report(size_t max_items = 10) const;

 private:
  struct TenantTrack {
    uint32_t baseline_ways = 0;
    bool active = false;
    uint64_t admit_tick = 0;
    // Reclaim-deadline bookkeeping.
    uint32_t suffering_streak = 0;
    // Oscillation bookkeeping: +1 after a donate, -1 after a non-phase
    // reclaim, 0 before either.
    int last_direction = 0;
    std::deque<uint64_t> flip_ticks;
    bool phase_changed_this_group = false;
    // A counter anomaly was quarantined this interval: the tenant's IPC
    // row is a zeroed placeholder, so the suffering clock holds its value.
    bool anomaly_this_group = false;
    // Table-consistency pairing: the measurement surfaced at tick T was
    // taken at the allocation decided at T-1.
    uint32_t prev_ways = 0;
    bool has_prev_ways = false;
    // The table entry at `prev_ways` as of the previous tick's snapshot —
    // the pre-update value the EWMA bound is checked against.
    double cached_entry = 0.0;
    bool has_cached_entry = false;
  };

  TenantTrack& Track(TenantId id) { return tenants_[id]; }
  void AddViolation(uint64_t tick, TenantId tenant, const char* invariant,
                    std::string detail);
  // Called when an event for a tick beyond the current group arrives.
  void BeginGroup(uint64_t tick);
  // Full audit of the completed group (way sums, masks, tables).
  void FinalizeGroup();
  void CheckRow(const TickEvent& row);
  void CheckControllerState();
  size_t ExpectedRows() const;

  InvariantOptions options_;
  const ControllerView* view_ = nullptr;
  std::unique_ptr<ControllerView> owned_view_;  // adapter from AttachController
  const CatController* cat_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;

  std::map<TenantId, TenantTrack> tenants_;
  std::vector<TickEvent> group_rows_;  // rows of the in-flight interval
  uint64_t group_tick_ = 0;
  bool group_open_ = false;
  bool group_finalized_ = false;
  // The backend refused or lost state this interval (unrecovered write
  // fault / unrepaired drift): controller-vs-backend agreement checks are
  // meaningless until reconciliation succeeds.
  bool hard_fault_this_group_ = false;
  // Mirrors the controller's degraded/dynamic mode from ModeChange events.
  bool degraded_ = false;
  uint64_t ticks_checked_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace dcat

#endif  // SRC_VERIFY_INVARIANT_CHECKER_H_
