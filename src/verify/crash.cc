#include "src/verify/crash.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "src/cluster/host.h"
#include "src/faults/crash.h"
#include "src/faults/faulty_journal.h"
#include "src/telemetry/json.h"
#include "src/telemetry/trace.h"

namespace dcat {
namespace {

// Drops the lines a crash legitimately costs, leaving the comparable core:
//   * restart/recovery bookkeeping lines (they exist only in crashed runs);
//   * lines with tick >= max_tick_exclusive (0 = keep all) — truncates the
//     crashed segment at the interval the crash cut short;
//   * lines with tick == drop_tick (0 = none) — excludes the crashed tick
//     from both runs when its output is unrecoverable (mid-apply).
std::string FilterTrace(const std::string& trace, uint64_t max_tick_exclusive,
                        uint64_t drop_tick) {
  std::istringstream in(trace);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::map<std::string, JsonValue> fields;
    if (ParseFlatJsonObject(line, &fields)) {
      const auto type = fields.find("type");
      if (type != fields.end() && type->second.kind == JsonValue::Kind::kString &&
          (type->second.str == "restart" || type->second.str == "recovery")) {
        continue;
      }
      const auto tick_field = fields.find("tick");
      if (tick_field != fields.end() && tick_field->second.kind == JsonValue::Kind::kNumber) {
        const uint64_t tick = static_cast<uint64_t>(tick_field->second.num);
        if (max_tick_exclusive != 0 && tick >= max_tick_exclusive) {
          continue;
        }
        if (drop_tick != 0 && tick == drop_tick) {
          continue;
        }
      }
    }
    out << line << '\n';
  }
  return out.str();
}

HostConfig MakeHostConfig(const Scenario& scenario, const CrashRunOptions& options) {
  HostConfig host_config;
  host_config.socket =
      scenario.machine == "xeon-d" ? SocketConfig::XeonD() : SocketConfig::XeonE5();
  host_config.mode = ManagerMode::kDcat;
  host_config.dcat = scenario.dcat;
  host_config.dcat.policy = options.policy;
  host_config.cycles_per_interval = options.cycles_per_interval;
  host_config.inject_faults = options.inject_faults;
  host_config.fault_seed = options.fault_seed;
  host_config.fault_profile = options.fault_profile;
  host_config.fault_active_ticks = options.inject_faults ? scenario.intervals : 0;
  return host_config;
}

}  // namespace

const char* CrashModeName(CrashMode mode) {
  switch (mode) {
    case CrashMode::kBoundary:
      return "boundary";
    case CrashMode::kMidApply:
      return "mid-apply";
    case CrashMode::kTornJournal:
      return "torn-journal";
  }
  return "?";
}

std::string UninterruptedTrace(const Scenario& scenario, const CrashRunOptions& options) {
  RunOptions run_options;
  run_options.policy = options.policy;
  run_options.cycles_per_interval = options.cycles_per_interval;
  run_options.check_backend_differential = false;
  run_options.inject_faults = options.inject_faults;
  run_options.fault_seed = options.fault_seed;
  run_options.fault_profile = options.fault_profile;
  run_options.settle_intervals = options.settle_intervals;
  return RunScenario(scenario, run_options).trace;
}

CrashRunResult RunCrashScenario(const Scenario& scenario, const CrashRunOptions& options) {
  CrashRunResult result;

  const uint64_t crash_tick =
      std::max<uint64_t>(2, std::min<uint64_t>(options.crash_tick, scenario.intervals));

  MemoryJournalStorage inner_storage;
  FaultyJournalStorage storage(&inner_storage);
  HostConfig host_config = MakeHostConfig(scenario, options);
  host_config.journal_storage = &storage;
  host_config.enable_crash_points = options.mode == CrashMode::kMidApply;
  Host host(host_config);

  // One trace writer per controller lifetime: segment 1 until the crash,
  // segment 2 from the restart on. The splice drops what the crash cost.
  std::ostringstream segment1;
  std::ostringstream segment2;
  JsonlTraceWriter writer1(&segment1);
  JsonlTraceWriter writer2(&segment2);

  InvariantOptions checker_options;
  checker_options.total_ways = host.socket().num_ways();
  checker_options.min_ways = host_config.dcat.min_ways;
  checker_options.ipc_improvement_thr = host_config.dcat.ipc_improvement_thr;
  InvariantChecker checker(checker_options);
  checker.AttachController(host.dcat(), &host.pqos());
  checker.set_metrics(&host.dcat()->metrics());
  host.AddEventSink(&writer1);
  host.AddEventSink(&checker);

  auto add_tenant = [&](const TenantSetup& tenant) {
    Vm* vm = host.TryAddVm(
        VmConfig{.id = tenant.id,
                 .name = tenant.workload,
                 .baseline_ways = tenant.baseline_ways,
                 .seed = WorkloadSeed(scenario, tenant.id)},
        MakeScenarioWorkload(tenant.workload, WorkloadSeed(scenario, tenant.id)));
    if (vm != nullptr) {
      checker.RegisterTenant(tenant.id, tenant.baseline_ways);
    }
  };
  for (const TenantSetup& tenant : scenario.initial) {
    add_tenant(tenant);
  }

  auto restart = [&]() {
    // The RestartEvent resets the checker and detaches its (now dangling)
    // controller view; re-attach the recovered controller afterwards.
    result.report = host.RestartManager({&writer2, &checker});
    checker.AttachController(host.dcat(), &host.pqos());
    checker.set_metrics(&host.dcat()->metrics());
  };

  const uint32_t total_intervals =
      scenario.intervals + (options.inject_faults ? options.settle_intervals : 0);
  size_t next_churn = 0;
  for (uint32_t interval = 0; interval < total_intervals; ++interval) {
    const uint64_t tick = interval + 1;  // the controller tick this Step runs

    if (tick == crash_tick && options.mode == CrashMode::kBoundary) {
      // Between intervals: the previous tick's decision record is the
      // journal's last word, and the backend holds its applied state.
      host.CrashManager();
      restart();
      result.crashed = true;
    }

    while (next_churn < scenario.churn.size() &&
           scenario.churn[next_churn].interval == interval) {
      const ChurnEvent& event = scenario.churn[next_churn];
      if (event.swap) {
        // Same seed offset as RunScenario: crashed re-runs must rebuild
        // the identical swapped-in workload.
        host.SwapVmWorkload(event.tenant.id,
                            MakeScenarioWorkload(
                                event.tenant.workload,
                                WorkloadSeed(scenario, event.tenant.id) ^ 0x5a5aULL));
      } else if (event.add) {
        add_tenant(event.tenant);
      } else {
        host.RemoveVm(event.remove_id);
      }
      ++next_churn;
    }

    if (tick == crash_tick && !result.crashed) {
      if (options.mode == CrashMode::kMidApply) {
        host.crasher()->Arm(options.crash_write);
      } else if (options.mode == CrashMode::kTornJournal) {
        storage.CrashDuringAppend(options.torn_keep_bytes);
      }
    }
    try {
      host.Step();
    } catch (const CrashPointHit&) {
      result.crashed = true;
      host.CrashManager();
      restart();
      if (options.mode == CrashMode::kTornJournal) {
        // The journal lost the tick's decision record, so recovery restored
        // the end of the previous tick — but the VMs already executed this
        // interval. Replay the manager's tick over it: the cumulative
        // counters yield the same deltas the dead controller sampled.
        host.RetickAfterRecovery();
      }
      // Mid-apply needs no retick: the decision record survived, recovery
      // rolled the interrupted intent forward, and the controller already
      // stands at the end of the crashed tick.
    }
    if (tick == crash_tick && !result.crashed) {
      // The armed crash never fired (the tick performed fewer backend
      // writes, or compaction rewrote instead of appending): disarm and
      // let the run finish uninterrupted.
      if (options.mode == CrashMode::kMidApply) {
        host.crasher()->Arm(0);
      } else if (options.mode == CrashMode::kTornJournal) {
        storage.Disarm();
      }
    }
  }

  if (options.inject_faults && host.dcat()->degraded()) {
    result.violations.push_back(
        Violation{.tick = host.intervals(), .tenant = 0, .invariant = kCheckDegradedStuck,
                  .detail = "controller still in degraded mode after " +
                            std::to_string(options.settle_intervals) +
                            " fault-free settle intervals"});
  }
  checker.Finish();
  result.violations.insert(result.violations.end(), checker.violations().begin(),
                           checker.violations().end());
  result.ticks = checker.ticks_checked();

  if (result.crashed && result.report.outcome != RecoveryOutcome::kRecovered) {
    result.violations.push_back(Violation{
        .tick = crash_tick, .tenant = 0, .invariant = kCheckCrashRecovery,
        .detail = std::string("expected recovery from the journal, got ") +
                  (result.report.outcome == RecoveryOutcome::kColdBoot ? "a cold boot"
                                                                       : "an error: ") +
                  result.report.error});
  }

  // Splice: segment 1 truncated at the crashed tick, bookkeeping lines
  // dropped; mid-apply additionally excludes the crashed tick everywhere
  // (its post-apply rows died with the process and are not replayed).
  const uint64_t drop_tick =
      result.crashed && options.mode == CrashMode::kMidApply ? crash_tick : 0;
  if (result.crashed) {
    result.trace = FilterTrace(segment1.str(), crash_tick, drop_tick) +
                   FilterTrace(segment2.str(), 0, drop_tick);
  } else {
    result.trace = FilterTrace(segment1.str(), 0, 0);
  }

  if (!options.inject_faults) {
    const std::string reference =
        options.reference_trace != nullptr ? *options.reference_trace
                                           : UninterruptedTrace(scenario, options);
    result.reference_trace = FilterTrace(reference, 0, drop_tick);
    const std::string divergence =
        DescribeTraceDivergence(result.trace, result.reference_trace);
    if (!divergence.empty()) {
      result.violations.push_back(Violation{
          .tick = crash_tick, .tenant = 0, .invariant = kCheckCrashDivergence,
          .detail = std::string(CrashModeName(options.mode)) + " crash at tick " +
                    std::to_string(crash_tick) + ": " + divergence});
    }
  }
  return result;
}

}  // namespace dcat
