// Loading and saving DcatConfig as key=value text.
//
// The daemon's thresholds are deployment-specific ("all these thresholds
// are configurable depending on the needs of users", §3.2), so dcatd
// accepts a config file:
//
//     # dcat.conf
//     llc_miss_rate_thr = 0.03
//     ipc_improvement_thr = 0.05
//     policy = max-performance
//     interval_seconds = 1.0
//
// Unknown keys are errors (catching typos beats silently ignoring them);
// omitted keys keep their defaults. '#' starts a comment.
#ifndef SRC_CORE_CONFIG_IO_H_
#define SRC_CORE_CONFIG_IO_H_

#include <optional>
#include <string>

#include "src/core/config.h"

namespace dcat {

struct ConfigParseResult {
  bool ok = false;
  DcatConfig config;
  // Human-readable description of the first problem when !ok.
  std::string error;
};

// Parses config text (file contents). Starts from defaults.
ConfigParseResult ParseDcatConfig(const std::string& text);

// Reads and parses a config file; error mentions the path on I/O failure.
ConfigParseResult LoadDcatConfig(const std::string& path);

// Serializes every field, suitable for round-tripping and documentation.
std::string FormatDcatConfig(const DcatConfig& config);

}  // namespace dcat

#endif  // SRC_CORE_CONFIG_IO_H_
