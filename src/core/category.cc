#include "src/core/category.h"

namespace dcat {

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kReclaim:
      return "Reclaim";
    case Category::kKeeper:
      return "Keeper";
    case Category::kDonor:
      return "Donor";
    case Category::kReceiver:
      return "Receiver";
    case Category::kStreaming:
      return "Streaming";
    case Category::kUnknown:
      return "Unknown";
  }
  return "?";
}

}  // namespace dcat
