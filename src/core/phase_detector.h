// Phase-change detection (§3.3 of the paper).
//
// dCat keys a workload's phase on its memory accesses per retired
// instruction (l1_ref / ret_ins): the metric depends only on the program's
// instruction mix, not on how much cache it has (verified by Fig. 5), so it
// stays valid while dCat itself changes the allocation. A relative change
// larger than the threshold (10% by default) is a phase change and
// invalidates the baseline IPC.
#ifndef SRC_CORE_PHASE_DETECTOR_H_
#define SRC_CORE_PHASE_DETECTOR_H_

#include <cstdint>

#include "src/core/config.h"
#include "src/core/metrics.h"

namespace dcat {

class PhaseDetector {
 public:
  explicit PhaseDetector(const DcatConfig& config)
      : threshold_(config.phase_change_thr),
        idle_epsilon_(config.idle_mem_per_ins_epsilon),
        min_instructions_(config.min_instructions_per_interval) {}

  // Feeds one interval sample; returns true when it belongs to a different
  // phase than the previous one. The first sample always reports a change
  // (the workload "starts"). The current phase signature is retained for
  // PhaseBook lookups.
  bool Update(const WorkloadSample& sample);

  double signature() const { return signature_; }
  bool idle() const { return idle_; }

  // Steadiness view for the hybrid-fidelity engine (src/sim/analytic_model.h):
  // how many consecutive Update() calls returned "no change", and how far the
  // most recent sample sat from the retained signature (relative, same units
  // as phase_change_thr). Both reset to zero on a phase change. Pure
  // observers: they never influence Update()'s verdicts, and they are not
  // part of the crash-recovery State (a restored controller conservatively
  // restarts its steady streak, which only delays fast-path entry).
  uint64_t steady_intervals() const { return steady_intervals_; }
  double last_relative_delta() const { return last_relative_delta_; }

  // Crash-recovery restore: the detector's whole mutable state, exported
  // bit-exactly and re-imported so a restored detector classifies the next
  // sample exactly as the original would have.
  struct State {
    bool has_signature = false;
    bool idle = true;
    double signature = 0.0;
  };
  State Export() const { return State{has_signature_, idle_, signature_}; }
  void Restore(const State& state) {
    has_signature_ = state.has_signature;
    idle_ = state.idle;
    signature_ = state.signature;
    steady_intervals_ = 0;  // restored detectors re-earn their steady streak
    last_relative_delta_ = 0.0;
  }

 private:
  // An interval with almost no instructions, or almost no memory accesses
  // per instruction, is the idle phase.
  bool IsIdle(const WorkloadSample& sample) const;

  double threshold_;
  double idle_epsilon_;
  uint64_t min_instructions_;
  bool has_signature_ = false;
  bool idle_ = true;
  double signature_ = 0.0;
  uint64_t steady_intervals_ = 0;
  double last_relative_delta_ = 0.0;
};

}  // namespace dcat

#endif  // SRC_CORE_PHASE_DETECTOR_H_
