// Persistent controller state and the decision-journal hook.
//
// The crash-recovery subsystem (src/recovery/) needs a value-type image of
// everything the DcatController must remember across a process death:
// contracts, COS/group assignments, categories and allocations, the
// phase books and performance tables, quarantine and degraded-mode
// bookkeeping. `ControllerPersistentState` is that image —
// `DcatController::ExportState()` produces it, `ImportState()` restores it
// bit-exactly (doubles round-trip by bit pattern through the codec), so a
// restored controller makes byte-identical decisions to one that never
// died.
//
// `ControllerJournal` is the write-ahead hook: the controller calls
// `OnDecision` with its full state and the tick's allocation intent
// *before* touching the backend, and `OnContractChange` after every
// successful admission/eviction. A journal implementation (JournalWriter
// in src/recovery/) persists these; the controller itself never blocks on
// journal durability — a lost journal only costs recovery fidelity, never
// availability.
#ifndef SRC_CORE_CONTROLLER_STATE_H_
#define SRC_CORE_CONTROLLER_STATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/category.h"
#include "src/core/manager.h"
#include "src/sim/perf_counters.h"

namespace dcat {

// One phase record of a tenant's PhaseBook, flattened for serialization.
struct PersistentPhaseRecord {
  double signature = 0.0;
  double baseline_ipc = 0.0;
  bool baseline_valid = false;
  // PerformanceTable entries, increasing ways order.
  std::vector<std::pair<uint32_t, double>> table;
};

// Everything one tenant's TenantState must carry across a restart. Scratch
// fields (this tick's sample, quarantine flag, …) are deliberately absent:
// they are recomputed every tick.
struct PersistentTenant {
  TenantSpec spec;
  uint8_t cos = 0;
  uint32_t group = 0;
  Category category = Category::kDonor;
  uint32_t ways = 1;
  uint32_t mask = 0;
  PerfCounterBlock last_counters;
  // PhaseDetector internals.
  bool detector_has_signature = false;
  bool detector_idle = true;
  double detector_signature = 0.0;
  // PhaseBook, flattened. phase_index indexes into `phases`.
  std::vector<PersistentPhaseRecord> phases;
  uint64_t phase_index = 0;
  bool has_phase = false;
  bool measuring_baseline = false;
  double last_ipc = 0.0;
  bool has_last_ipc = false;
  uint32_t prev_interval_ways = 0;
  bool grow_denied = false;
  uint32_t anomaly_streak = 0;
  bool prev_active = false;
  uint64_t last_mbm = 0;
};

// Full controller image at one instant (end of a tick, or mid-tick just
// before an apply).
struct ControllerPersistentState {
  uint64_t tick = 0;
  std::string policy;  // canonical PolicyRegistry name; must match config
  bool degraded = false;
  uint32_t consecutive_apply_failures = 0;
  uint32_t degraded_clean_ticks = 0;
  // First tick at which the backoff allows another apply attempt (0 = no
  // backoff pending).
  uint64_t next_apply_tick = 0;
  std::vector<uint16_t> orphaned_cores;
  std::vector<uint32_t> cos_acked_mask;  // clustered mode only (else empty)
  uint32_t next_group_id = 0;
  std::vector<PersistentTenant> tenants;
};

// What the controller was about to program when a decision record was
// written: per-tenant way targets and (clustered mode) COS-sharing groups,
// in the same order as ControllerPersistentState::tenants.
struct DecisionIntent {
  bool degraded = false;
  std::vector<uint32_t> targets;
  std::vector<uint32_t> groups;
};

// Write-ahead journal hook. All calls are fire-and-forget from the
// controller's perspective; implementations own durability and must not
// throw.
class ControllerJournal {
 public:
  virtual ~ControllerJournal() = default;

  // A tenant was admitted or evicted; `state` is the post-change image.
  virtual void OnContractChange(const ControllerPersistentState& state) = 0;

  // Called immediately before the controller programs `intent` into the
  // backend; `state` is the pre-apply image (tick already advanced).
  virtual void OnDecision(const ControllerPersistentState& state,
                          const DecisionIntent& intent) = 0;

  // Recovery finished reconciling; `state` is the adopted image. A journal
  // typically compacts to a fresh snapshot here. Default: ignore.
  virtual void OnRecovered(const ControllerPersistentState& state) { (void)state; }
};

}  // namespace dcat

#endif  // SRC_CORE_CONTROLLER_STATE_H_
