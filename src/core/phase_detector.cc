#include "src/core/phase_detector.h"

#include <cmath>

namespace dcat {

bool PhaseDetector::IsIdle(const WorkloadSample& sample) const {
  return sample.instructions() < min_instructions_ ||
         sample.mem_per_instruction() < idle_epsilon_;
}

bool PhaseDetector::Update(const WorkloadSample& sample) {
  const bool now_idle = IsIdle(sample);
  const double now_signature = now_idle ? 0.0 : sample.mem_per_instruction();

  if (!has_signature_) {
    has_signature_ = true;
    idle_ = now_idle;
    signature_ = now_signature;
    steady_intervals_ = 0;
    last_relative_delta_ = 0.0;
    return true;
  }

  bool changed = false;
  double relative_delta = 0.0;
  if (now_idle != idle_) {
    changed = true;
    relative_delta = 1.0;  // idle flips are maximal phase movement
  } else if (!now_idle) {
    const double reference = std::max(signature_, now_signature);
    if (reference > 0.0) {
      relative_delta = std::abs(now_signature - signature_) / reference;
    }
    changed = relative_delta > threshold_;
  }

  if (changed) {
    idle_ = now_idle;
    signature_ = now_signature;
    steady_intervals_ = 0;
  } else {
    if (!now_idle) {
      // Light smoothing keeps the signature representative of the phase
      // without drifting across a genuine change (those reset above).
      signature_ = 0.9 * signature_ + 0.1 * now_signature;
    }
    ++steady_intervals_;
  }
  last_relative_delta_ = relative_delta;
  return changed;
}

}  // namespace dcat
