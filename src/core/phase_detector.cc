#include "src/core/phase_detector.h"

#include <cmath>

namespace dcat {

bool PhaseDetector::IsIdle(const WorkloadSample& sample) const {
  return sample.instructions() < min_instructions_ ||
         sample.mem_per_instruction() < idle_epsilon_;
}

bool PhaseDetector::Update(const WorkloadSample& sample) {
  const bool now_idle = IsIdle(sample);
  const double now_signature = now_idle ? 0.0 : sample.mem_per_instruction();

  if (!has_signature_) {
    has_signature_ = true;
    idle_ = now_idle;
    signature_ = now_signature;
    return true;
  }

  bool changed = false;
  if (now_idle != idle_) {
    changed = true;
  } else if (!now_idle) {
    const double reference = std::max(signature_, now_signature);
    changed = reference > 0.0 && std::abs(now_signature - signature_) > threshold_ * reference;
  }

  if (changed) {
    idle_ = now_idle;
    signature_ = now_signature;
  } else if (!now_idle) {
    // Light smoothing keeps the signature representative of the phase
    // without drifting across a genuine change (those reset above).
    signature_ = 0.9 * signature_ + 0.1 * now_signature;
  }
  return changed;
}

}  // namespace dcat
