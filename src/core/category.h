// Workload categories of the dCat state machine (Fig. 6 of the paper).
//
// Header-only (including CategoryName) so the telemetry layer can render
// categories without linking the controller library.
#ifndef SRC_CORE_CATEGORY_H_
#define SRC_CORE_CATEGORY_H_

namespace dcat {

enum class Category {
  // Phase change detected: the workload must return to its baseline state
  // before re-evaluation. Highest allocation priority.
  kReclaim,
  // Would suffer with less cache but does not benefit from more.
  kKeeper,
  // Neither suffers from less nor benefits from more; gives ways back.
  kDonor,
  // Benefits from more cache (and suffers from less); still growing.
  kReceiver,
  // Heavy misses with no reuse (cyclic pattern); a special Donor pinned at
  // the minimum allocation.
  kStreaming,
  // Not yet distinguishable: needs a size comparison. Grows with priority
  // over Receivers so streaming workloads are unmasked quickly.
  kUnknown,
};

constexpr const char* CategoryName(Category category) {
  switch (category) {
    case Category::kReclaim:
      return "Reclaim";
    case Category::kKeeper:
      return "Keeper";
    case Category::kDonor:
      return "Donor";
    case Category::kReceiver:
      return "Receiver";
    case Category::kStreaming:
      return "Streaming";
    case Category::kUnknown:
      return "Unknown";
  }
  return "?";
}

}  // namespace dcat

#endif  // SRC_CORE_CATEGORY_H_
