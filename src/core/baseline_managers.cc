#include "src/core/baseline_managers.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/pqos/mask.h"

namespace dcat {

SharedCacheManager::SharedCacheManager(CatController* cat) : cat_(cat) {}

AdmitStatus SharedCacheManager::AddTenant(const TenantSpec& spec) {
  for (size_t i = 0; i < spec.cores.size(); ++i) {
    if (cat_->AssociateCore(spec.cores[i], 0) != PqosStatus::kOk) {
      std::fprintf(stderr, "SharedCacheManager: bad core %u\n", spec.cores[i]);
      // Unwind: cores were already in COS 0 before admission, so prior
      // successful writes are no-ops; nothing to roll back.
      return AdmitStatus::kBackendError;
    }
  }
  return AdmitStatus::kOk;
}

uint32_t SharedCacheManager::TenantWays(TenantId id) const {
  (void)id;
  return cat_->NumWays();
}

StaticCatManager::StaticCatManager(CatController* cat) : cat_(cat) {}

AdmitStatus StaticCatManager::AddTenant(const TenantSpec& spec) {
  // First-fit reuse of freed segments, else bump-allocate fresh ways.
  // Bookkeeping (next_way_, segment lists) commits only after every backend
  // write is acknowledged: a rejected admission leaves the manager exactly
  // as it was.
  Segment segment;
  bool from_free_list = false;
  const auto fit = std::find_if(
      free_segments_.begin(), free_segments_.end(),
      [&spec](const Segment& s) { return s.ways >= spec.baseline_ways; });
  if (fit != free_segments_.end()) {
    segment = *fit;
    segment.ways = spec.baseline_ways;  // a larger hole stays fragmented
    from_free_list = true;
  } else {
    if (next_way_ + spec.baseline_ways > cat_->NumWays()) {
      std::fprintf(stderr, "StaticCatManager: LLC ways oversubscribed\n");
      return AdmitStatus::kOversubscribed;
    }
    segment.first_way = next_way_;
    segment.ways = spec.baseline_ways;
    // Lowest COS not held by a live tenant or parked with a free segment
    // (COS 0 stays the unmanaged default).
    segment.cos = 0;
    for (uint8_t candidate = 1; candidate < cat_->NumCos(); ++candidate) {
      const bool live =
          std::any_of(segments_.begin(), segments_.end(),
                      [candidate](const auto& kv) { return kv.second.cos == candidate; });
      const bool parked =
          std::any_of(free_segments_.begin(), free_segments_.end(),
                      [candidate](const Segment& s) { return s.cos == candidate; });
      if (!live && !parked) {
        segment.cos = candidate;
        break;
      }
    }
    if (segment.cos == 0) {
      std::fprintf(stderr, "StaticCatManager: out of COS entries\n");
      return AdmitStatus::kNoFreeCos;
    }
  }

  const uint32_t mask = MakeWayMask(segment.first_way, segment.ways);
  if (cat_->SetCosMask(segment.cos, mask) != PqosStatus::kOk) {
    std::fprintf(stderr, "StaticCatManager: SetCosMask failed\n");
    return AdmitStatus::kBackendError;
  }
  for (size_t i = 0; i < spec.cores.size(); ++i) {
    if (cat_->AssociateCore(spec.cores[i], segment.cos) != PqosStatus::kOk) {
      std::fprintf(stderr, "StaticCatManager: bad core %u\n", spec.cores[i]);
      // Unwind the cores already moved into the new COS.
      for (size_t j = 0; j < i; ++j) {
        cat_->AssociateCore(spec.cores[j], 0);
      }
      return AdmitStatus::kBackendError;
    }
  }
  if (from_free_list) {
    free_segments_.erase(std::find_if(free_segments_.begin(), free_segments_.end(),
                                      [&segment](const Segment& s) {
                                        return s.first_way == segment.first_way &&
                                               s.cos == segment.cos;
                                      }));
  } else {
    next_way_ += spec.baseline_ways;
  }
  segments_[spec.id] = segment;
  return AdmitStatus::kOk;
}

void StaticCatManager::RemoveTenant(TenantId id) {
  const auto it = segments_.find(id);
  if (it == segments_.end()) {
    return;
  }
  free_segments_.push_back(it->second);
  segments_.erase(it);
}

uint32_t StaticCatManager::TenantWays(TenantId id) const {
  if (auto it = segments_.find(id); it != segments_.end()) {
    return it->second.ways;
  }
  return 0;
}

}  // namespace dcat
