// The per-phase performance table (§3.5, Table 1 of the paper).
//
// For each workload phase, dCat memoizes the normalized IPC (relative to
// the baseline allocation) observed at every cache size it has tried. The
// table serves three purposes:
//   1. Fast path: when a phase recurs, jump straight to the preferred
//      allocation instead of re-discovering one way per interval (Fig. 12).
//   2. Max-performance allocation: the DP over tables that maximizes
//      total normalized IPC (§3.5's worked example).
//   3. Oscillation damping: a Keeper does not re-explore a size the table
//      already shows to be unprofitable.
#ifndef SRC_CORE_PERFORMANCE_TABLE_H_
#define SRC_CORE_PERFORMANCE_TABLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dcat {

class PerformanceTable {
 public:
  // Records an observation of `norm_ipc` at `ways`. Repeated observations
  // are blended with an EWMA (alpha 0.5) to ride out measurement noise.
  void Record(uint32_t ways, double norm_ipc);

  std::optional<double> Get(uint32_t ways) const;
  bool Has(uint32_t ways) const { return entries_.count(ways) > 0; }
  size_t size() const { return entries_.size(); }
  void Clear() {
    entries_.clear();
    error_band_.clear();
  }

  // Crash-recovery restore: installs entries verbatim, bypassing the EWMA
  // blend so a journal round-trip reproduces the table bit-exactly. Error
  // bands are observational (not journaled) and restart empty.
  void RestoreEntries(const std::vector<std::pair<uint32_t, double>>& entries) {
    entries_.clear();
    error_band_.clear();
    for (const auto& [ways, norm_ipc] : entries) {
      entries_[ways] = norm_ipc;
    }
  }

  // Miss-ratio-curve evaluation for the hybrid-fidelity engine: normalized
  // IPC at `ways`, linearly interpolated between the nearest measured sizes
  // (clamped to the measured range). nullopt on an empty table.
  std::optional<double> EvaluateNormIpc(double ways) const;

  // The table's own error estimate at `ways`: the magnitude of the last
  // EWMA correction Record() applied there. Converges toward zero while the
  // phase is steady; jumps when the workload stops matching the model. Zero
  // for sizes measured at most once.
  double ErrorBand(uint32_t ways) const;
  // Largest error band across all measured sizes (0 when empty).
  double MaxErrorBand() const;

  // Smallest measured allocation after which no larger measured allocation
  // improves normalized IPC by at least `improvement_thr` (relative).
  // Table 1's "preferred" mark. nullopt when empty.
  std::optional<uint32_t> PreferredWays(double improvement_thr) const;

  // Relative IPC improvement of `to_ways` over `from_ways` when both are
  // measured; nullopt otherwise.
  std::optional<double> Improvement(uint32_t from_ways, uint32_t to_ways) const;

  // Measured (ways, norm_ipc) pairs in increasing-ways order, for the
  // max-performance DP.
  std::vector<std::pair<uint32_t, double>> Entries() const;

  std::string ToString() const;

 private:
  std::map<uint32_t, double> entries_;
  std::map<uint32_t, double> error_band_;  // |last EWMA correction| per size
};

// Phase-indexed store of performance tables and baselines.
//
// Phases are identified by their memory-accesses-per-instruction signature
// (§3.3); two signatures within the phase-change tolerance are the same
// phase. The book is how Fig. 12's "same phase seen again" lookup works.
class PhaseBook {
 public:
  struct PhaseRecord {
    double signature = 0.0;
    double baseline_ipc = 0.0;
    bool baseline_valid = false;
    PerformanceTable table;
  };

  explicit PhaseBook(double tolerance) : tolerance_(tolerance) {}

  // Finds the record whose signature matches within the tolerance, or
  // creates one. Never invalidates previously returned indices.
  size_t FindOrCreate(double signature);

  // Finds without creating; npos (== SIZE_MAX) when absent.
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t Find(double signature) const;

  PhaseRecord& record(size_t index) { return records_.at(index); }
  const PhaseRecord& record(size_t index) const { return records_.at(index); }
  size_t size() const { return records_.size(); }

  // Crash-recovery restore: appends a record verbatim, bypassing the
  // tolerance match so a restored book is structurally identical to the
  // original (indices and all). Returns the new record's index.
  size_t AppendRecord(PhaseRecord record) {
    records_.push_back(std::move(record));
    return records_.size() - 1;
  }

 private:
  bool Matches(double a, double b) const;

  double tolerance_;
  std::vector<PhaseRecord> records_;
};

}  // namespace dcat

#endif  // SRC_CORE_PERFORMANCE_TABLE_H_
