#include "src/core/config_io.h"

#include <fstream>
#include <sstream>

#include "src/common/strings.h"
#include "src/policies/registry.h"

namespace dcat {
namespace {

bool ParseUint(const std::string& value, uint64_t* out) { return ParseUint64(value, out); }

}  // namespace

ConfigParseResult ParseDcatConfig(const std::string& text) {
  ConfigParseResult result;
  result.config = DcatConfig{};
  int line_number = 0;
  auto fail = [&result, &line_number](const std::string& message) {
    result.ok = false;
    result.error = "line " + std::to_string(line_number) + ": " + message;
  };

  for (std::string line : Split(text, '\n')) {
    ++line_number;
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    const auto [raw_key, raw_value] = SplitFirst(line, '=');
    if (line.find('=') == std::string::npos) {
      fail("expected key = value, got '" + line + "'");
      return result;
    }
    const std::string key = Trim(raw_key);
    const std::string value = Trim(raw_value);

    DcatConfig& c = result.config;
    double d = 0.0;
    uint64_t u = 0;
    if (key == "llc_ref_per_kilo_instruction_thr" && ParseDouble(value, &d)) {
      c.llc_ref_per_kilo_instruction_thr = d;
    } else if (key == "llc_miss_rate_thr" && ParseDouble(value, &d)) {
      c.llc_miss_rate_thr = d;
    } else if (key == "ipc_improvement_thr" && ParseDouble(value, &d)) {
      c.ipc_improvement_thr = d;
    } else if (key == "greedy_exploration") {
      if (value == "true" || value == "1") {
        c.greedy_exploration = true;
      } else if (value == "false" || value == "0") {
        c.greedy_exploration = false;
      } else {
        fail("greedy_exploration must be true/false");
        return result;
      }
    } else if (key == "exploration_gain_floor" && ParseDouble(value, &d)) {
      c.exploration_gain_floor = d;
    } else if (key == "phase_change_thr" && ParseDouble(value, &d)) {
      c.phase_change_thr = d;
    } else if (key == "idle_mem_per_ins_epsilon" && ParseDouble(value, &d)) {
      c.idle_mem_per_ins_epsilon = d;
    } else if (key == "min_instructions_per_interval" && ParseUint(value, &u)) {
      c.min_instructions_per_interval = u;
    } else if (key == "policy") {
      const std::string canonical = PolicyRegistry::CanonicalName(value);
      if (!PolicyRegistry::Global().Known(canonical)) {
        fail("unknown policy '" + value +
             "' (registered: " + PolicyRegistry::Global().NamesList() + ")");
        return result;
      }
      c.policy = canonical;
    } else if (key == "streaming_multiplier" && ParseUint(value, &u)) {
      c.streaming_multiplier = static_cast<uint32_t>(u);
    } else if (key == "min_ways" && ParseUint(value, &u)) {
      c.min_ways = static_cast<uint32_t>(u);
    } else if (key == "donor_shrink_fraction" && ParseDouble(value, &d)) {
      c.donor_shrink_fraction = d;
    } else if (key == "interval_seconds" && ParseDouble(value, &d)) {
      c.interval_seconds = d;
    } else if (key == "batch_mask_apply") {
      if (value == "true" || value == "1") {
        c.batch_mask_apply = true;
      } else if (value == "false" || value == "0") {
        c.batch_mask_apply = false;
      } else {
        fail("batch_mask_apply must be true/false");
        return result;
      }
    } else if (key == "max_write_retries" && ParseUint(value, &u)) {
      c.max_write_retries = static_cast<uint32_t>(u);
    } else if (key == "degraded_after_failures" && ParseUint(value, &u)) {
      c.degraded_after_failures = static_cast<uint32_t>(u);
    } else if (key == "degraded_recovery_ticks" && ParseUint(value, &u)) {
      c.degraded_recovery_ticks = static_cast<uint32_t>(u);
    } else if (key == "counter_sanity_max_ipc" && ParseDouble(value, &d)) {
      c.counter_sanity_max_ipc = d;
    } else if (key == "retry_base_ticks" && ParseUint(value, &u)) {
      c.retry_base_ticks = static_cast<uint32_t>(u);
    } else if (key == "retry_max_ticks" && ParseUint(value, &u)) {
      c.retry_max_ticks = static_cast<uint32_t>(u);
    } else {
      fail("unknown key or bad value: '" + key + "' = '" + value + "'");
      return result;
    }
  }

  // Sanity limits: a clearly broken config should not boot the daemon.
  const DcatConfig& c = result.config;
  if (c.llc_miss_rate_thr <= 0.0 || c.llc_miss_rate_thr > 1.0) {
    result.error = "llc_miss_rate_thr must be in (0, 1]";
    return result;
  }
  if (c.ipc_improvement_thr <= 0.0 || c.ipc_improvement_thr > 1.0) {
    result.error = "ipc_improvement_thr must be in (0, 1]";
    return result;
  }
  if (c.phase_change_thr <= 0.0 || c.phase_change_thr > 1.0) {
    result.error = "phase_change_thr must be in (0, 1]";
    return result;
  }
  if (c.streaming_multiplier < 1) {
    result.error = "streaming_multiplier must be >= 1";
    return result;
  }
  if (c.min_ways < 1) {
    result.error = "min_ways must be >= 1 (CAT cannot express empty masks)";
    return result;
  }
  if (c.interval_seconds <= 0.0) {
    result.error = "interval_seconds must be positive";
    return result;
  }
  if (c.degraded_after_failures < 1) {
    result.error = "degraded_after_failures must be >= 1";
    return result;
  }
  if (c.degraded_recovery_ticks < 1) {
    result.error = "degraded_recovery_ticks must be >= 1";
    return result;
  }
  if (c.counter_sanity_max_ipc <= 0.0) {
    result.error = "counter_sanity_max_ipc must be positive";
    return result;
  }
  if (c.retry_base_ticks < 1) {
    result.error = "retry_base_ticks must be >= 1";
    return result;
  }
  if (c.retry_max_ticks < c.retry_base_ticks) {
    result.error = "retry_max_ticks must be >= retry_base_ticks";
    return result;
  }
  result.ok = true;
  return result;
}

ConfigParseResult LoadDcatConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ConfigParseResult result;
    result.error = "cannot open config file '" + path + "'";
    return result;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ConfigParseResult result = ParseDcatConfig(text);
  if (!result.ok) {
    result.error = path + ": " + result.error;
  }
  return result;
}

std::string FormatDcatConfig(const DcatConfig& config) {
  std::ostringstream out;
  out << "llc_ref_per_kilo_instruction_thr = " << config.llc_ref_per_kilo_instruction_thr
      << "\n";
  out << "llc_miss_rate_thr = " << config.llc_miss_rate_thr << "\n";
  out << "ipc_improvement_thr = " << config.ipc_improvement_thr << "\n";
  out << "greedy_exploration = " << (config.greedy_exploration ? "true" : "false") << "\n";
  out << "exploration_gain_floor = " << config.exploration_gain_floor << "\n";
  out << "phase_change_thr = " << config.phase_change_thr << "\n";
  out << "idle_mem_per_ins_epsilon = " << config.idle_mem_per_ins_epsilon << "\n";
  out << "min_instructions_per_interval = " << config.min_instructions_per_interval << "\n";
  out << "policy = " << config.policy << "\n";
  out << "streaming_multiplier = " << config.streaming_multiplier << "\n";
  out << "min_ways = " << config.min_ways << "\n";
  out << "donor_shrink_fraction = " << config.donor_shrink_fraction << "\n";
  out << "interval_seconds = " << config.interval_seconds << "\n";
  out << "batch_mask_apply = " << (config.batch_mask_apply ? "true" : "false") << "\n";
  out << "max_write_retries = " << config.max_write_retries << "\n";
  out << "degraded_after_failures = " << config.degraded_after_failures << "\n";
  out << "degraded_recovery_ticks = " << config.degraded_recovery_ticks << "\n";
  out << "counter_sanity_max_ipc = " << config.counter_sanity_max_ipc << "\n";
  out << "retry_base_ticks = " << config.retry_base_ticks << "\n";
  out << "retry_max_ticks = " << config.retry_max_ticks << "\n";
  return out.str();
}

}  // namespace dcat
