#include "src/core/dcat_controller.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "src/common/log.h"

namespace dcat {

const char* AllocationPolicyName(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kMaxFairness:
      return "max-fairness";
    case AllocationPolicy::kMaxPerformance:
      return "max-performance";
  }
  return "?";
}

DcatController::DcatController(CatController* cat, const MonitoringProvider* monitor,
                               DcatConfig config)
    : cat_(cat), monitor_(monitor), config_(config) {}

void DcatController::AddTenant(const TenantSpec& spec) {
  if (tenants_.size() + 1 >= cat_->NumCos()) {
    std::fprintf(stderr, "DcatController: tenant count exceeds COS limit (%u)\n",
                 cat_->NumCos());
    std::abort();
  }
  uint32_t baseline_total = spec.baseline_ways;
  for (const TenantState& t : tenants_) {
    baseline_total += t.spec.baseline_ways;
  }
  if (baseline_total > cat_->NumWays()) {
    std::fprintf(stderr, "DcatController: baseline ways oversubscribed (%u > %u)\n",
                 baseline_total, cat_->NumWays());
    std::abort();
  }
  if (spec.baseline_ways < config_.min_ways) {
    std::fprintf(stderr, "DcatController: baseline below minimum allocation\n");
    std::abort();
  }

  // Recycle the lowest unused COS (COS 0 stays the unmanaged default).
  uint8_t cos = 0;
  for (uint8_t candidate = 1; candidate < cat_->NumCos(); ++candidate) {
    const bool in_use = std::any_of(tenants_.begin(), tenants_.end(),
                                    [candidate](const TenantState& t) {
                                      return t.cos == candidate;
                                    });
    if (!in_use) {
      cos = candidate;
      break;
    }
  }
  if (cos == 0) {
    std::fprintf(stderr, "DcatController: no free COS for tenant %u\n", spec.id);
    std::abort();
  }

  TenantState state{.spec = spec,
                    .cos = cos,
                    .category = Category::kDonor,
                    .ways = config_.min_ways,
                    .detector = PhaseDetector(config_),
                    .book = PhaseBook(config_.phase_change_thr)};
  // Initialize the counter snapshot so the first delta is sane.
  PerfCounterBlock sum;
  for (uint16_t core : spec.cores) {
    sum += monitor_->ReadCounters(core);
  }
  state.last_counters = sum;

  for (uint16_t core : spec.cores) {
    if (cat_->AssociateCore(core, state.cos) != PqosStatus::kOk) {
      std::fprintf(stderr, "DcatController: AssociateCore(%u) failed\n", core);
      std::abort();
    }
  }
  tenants_.push_back(std::move(state));
  // Re-layout masks for the new tenant set, keeping current allocations.
  // When grown tenants already fill the socket there is no room for the
  // newcomer's minimum allocation: shrink the largest over-baseline surplus
  // first — contracted minimums outrank opportunistic growth. Σ baselines
  // <= total ways (checked above), so shrinking to baselines always fits.
  std::vector<uint32_t> targets;
  targets.reserve(tenants_.size());
  uint32_t used = 0;
  for (const TenantState& t : tenants_) {
    targets.push_back(t.ways);
    used += t.ways;
  }
  const std::vector<uint32_t> before = targets;
  while (used > cat_->NumWays()) {
    size_t victim = tenants_.size();
    uint32_t best_surplus = 0;
    for (size_t i = 0; i + 1 < tenants_.size(); ++i) {  // newcomer is last, exempt
      const uint32_t floor =
          std::max(std::min(tenants_[i].spec.baseline_ways, targets[i]), config_.min_ways);
      const uint32_t surplus = targets[i] > floor ? targets[i] - floor : 0;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        victim = i;
      }
    }
    if (victim == tenants_.size()) {
      std::fprintf(stderr, "DcatController: no room for tenant %u's minimum allocation\n",
                   spec.id);
      std::abort();
    }
    --targets[victim];
    --used;
  }
  ApplyMasks(targets);
  for (size_t i = 0; i + 1 < tenants_.size(); ++i) {
    if (targets[i] != before[i]) {
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = tenants_[i].spec.id,
                                          .reason = AllocationReason::kShrinkForReclaim,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter("controller.alloc.shrink-for-reclaim").Increment();
    }
  }
  sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                      .tenant = spec.id,
                                      .reason = AllocationReason::kAdmit,
                                      .from_ways = 0,
                                      .to_ways = config_.min_ways});
  metrics_.counter("controller.admissions").Increment();
}

bool DcatController::HasTenant(TenantId id) const {
  return std::any_of(tenants_.begin(), tenants_.end(),
                     [id](const TenantState& t) { return t.spec.id == id; });
}

void DcatController::RemoveTenant(TenantId id) {
  const auto it = std::find_if(tenants_.begin(), tenants_.end(),
                               [id](const TenantState& t) { return t.spec.id == id; });
  if (it == tenants_.end()) {
    return;
  }
  const uint32_t released_ways = it->ways;
  // Return the cores to the unmanaged class; the departed tenant's lines
  // are evicted naturally by the ways' next owners.
  for (uint16_t core : it->spec.cores) {
    cat_->AssociateCore(core, 0);
  }
  tenants_.erase(it);
  // Re-layout the survivors; the freed ways join the pool implicitly.
  std::vector<uint32_t> targets;
  targets.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    targets.push_back(t.ways);
  }
  ApplyMasks(targets);
  sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                      .tenant = id,
                                      .reason = AllocationReason::kEvict,
                                      .from_ways = released_ways,
                                      .to_ways = 0});
  metrics_.counter("controller.evictions").Increment();
}

DcatController::TenantState& DcatController::FindTenant(TenantId id) {
  for (TenantState& t : tenants_) {
    if (t.spec.id == id) {
      return t;
    }
  }
  std::fprintf(stderr, "DcatController: unknown tenant %u\n", id);
  std::abort();
}

const DcatController::TenantState& DcatController::FindTenant(TenantId id) const {
  return const_cast<DcatController*>(this)->FindTenant(id);
}

// --- Step 2: Collect Statistics ---

WorkloadSample DcatController::CollectSample(TenantState& tenant) {
  PerfCounterBlock sum;
  for (uint16_t core : tenant.spec.cores) {
    sum += monitor_->ReadCounters(core);
  }
  WorkloadSample sample;
  sample.delta = sum - tenant.last_counters;
  tenant.last_counters = sum;
  return sample;
}

// --- Step 3: Detect Phase Change ---

void DcatController::DetectPhase(TenantState& tenant) {
  tenant.phase_changed = tenant.detector.Update(tenant.sample);
  if (!tenant.phase_changed) {
    return;
  }
  // A new phase invalidates the baseline comparison: Reclaim (§3.4,
  // "Reclaim is applied immediately once there is a phase change").
  tenant.category = Category::kReclaim;
  const double signature = tenant.detector.signature();
  const bool known_phase = tenant.book.Find(signature) != PhaseBook::kNotFound;
  tenant.phase_index = tenant.book.FindOrCreate(signature);
  tenant.has_phase = true;
  tenant.has_last_ipc = false;
  tenant.grow_denied = false;
  tenant.measuring_baseline = false;
  sinks_.OnPhaseChange(PhaseChangeEvent{.tick = tick_,
                                        .tenant = tenant.spec.id,
                                        .phase_index = tenant.phase_index,
                                        .signature = signature,
                                        .known_phase = known_phase});
  metrics_.counter("controller.phase_changes").Increment();
  metrics_.counter("tenant." + std::to_string(tenant.spec.id) + ".phase_changes").Increment();
}

// --- Step 1 (Get Baseline) + performance table maintenance ---

void DcatController::UpdateBaselineAndTable(TenantState& tenant) {
  if (!tenant.has_phase || tenant.phase_changed || tenant.detector.idle()) {
    return;
  }
  PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
  if (tenant.measuring_baseline) {
    // This interval ran at baseline ways: it defines the phase baseline.
    phase.baseline_ipc = tenant.sample.ipc();
    phase.baseline_valid = phase.baseline_ipc > 0.0;
    tenant.measuring_baseline = false;
  }
  if (phase.baseline_valid && phase.baseline_ipc > 0.0) {
    phase.table.Record(tenant.ways, tenant.sample.ipc() / phase.baseline_ipc);
  }
}

// --- Step 4: Categorize Workloads (Fig. 6) ---

void DcatController::Categorize(TenantState& tenant) {
  if (tenant.phase_changed) {
    return;  // stays Reclaim; allocation handles it below
  }
  const WorkloadSample& s = tenant.sample;
  const double ref_rate = s.llc_refs_per_kilo_instruction();
  const bool idle_or_low_llc =
      tenant.detector.idle() || ref_rate <= config_.llc_ref_per_kilo_instruction_thr;
  const double miss_rate = s.llc_miss_rate();
  const double imp = (tenant.has_last_ipc && tenant.last_ipc > 0.0)
                         ? (s.ipc() - tenant.last_ipc) / tenant.last_ipc
                         : 0.0;

  // Guarantee enforcement (§3: dCat must "never impact the performance of
  // the workloads" relative to their reserved allocation). A tenant that
  // donated ways below its contract but turns out to suffer for it — e.g.
  // conflict misses appear only after the shrink — is reclaimed right away.
  if (tenant.has_phase && !tenant.detector.idle() &&
      (tenant.category == Category::kDonor || tenant.category == Category::kKeeper) &&
      tenant.ways < tenant.spec.baseline_ways) {
    const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
    if (phase.baseline_valid && phase.baseline_ipc > 0.0 &&
        s.ipc() / phase.baseline_ipc < 1.0 - 2.0 * config_.ipc_improvement_thr) {
      tenant.category = Category::kReclaim;
      if (!tenant.detector.idle() && s.ipc() > 0.0) {
        tenant.last_ipc = s.ipc();
        tenant.has_last_ipc = true;
      }
      return;
    }
  }

  switch (tenant.category) {
    case Category::kReclaim: {
      // The interval after a reclaim: baseline was (re-)measured by
      // UpdateBaselineAndTable; resume normal operation as Keeper.
      tenant.category = Category::kKeeper;
      [[fallthrough]];
    }
    case Category::kKeeper: {
      if (idle_or_low_llc) {
        // Low LLC traffic usually means the tenant cannot be hurt by
        // donating — but a few workloads (small working sets that straddle
        // the L2) depend on the little LLC they use. If the table proves
        // the minimum allocation costs real performance, keep the ways.
        const auto at_min = CurrentPhase(tenant).table.Get(config_.min_ways);
        if (tenant.detector.idle() || !at_min.has_value() ||
            *at_min >= 1.0 - 2.0 * config_.ipc_improvement_thr) {
          tenant.category = Category::kDonor;
        }
        break;
      }
      if (miss_rate > config_.llc_miss_rate_thr) {
        // Might benefit from growth — unless the performance table already
        // shows saturation. Two sources of evidence: a measured entry for
        // ways+1 (direct), or the slope of the last measured step (a
        // Receiver that just stopped at `ways` leaves a flat step behind
        // and must not immediately re-explore).
        const PerformanceTable& table = CurrentPhase(tenant).table;
        // Greedy exploration lowers the bar for re-exploration to the gain
        // floor (shallow curves stay worth walking); paper-faithful mode
        // requires the full improvement threshold.
        const double bar = config_.greedy_exploration ? config_.exploration_gain_floor
                                                      : config_.ipc_improvement_thr;
        bool profitable = true;
        if (const auto up = table.Improvement(tenant.ways, tenant.ways + 1); up.has_value()) {
          profitable = *up >= bar;
        } else if (const auto last = table.Improvement(tenant.ways - 1, tenant.ways);
                   last.has_value()) {
          profitable = *last >= bar;
        }
        if (profitable) {
          tenant.category = Category::kUnknown;
        }
        break;
      }
      if (miss_rate < config_.donor_shrink_fraction * config_.llc_miss_rate_thr &&
          tenant.ways > config_.min_ways) {
        // High LLC use but (almost) no misses: gradually donate — unless the
        // table already proved the next size down costs real performance
        // (conflict misses can appear only after a shrink, so the first
        // donation is exploratory but is never repeated).
        const PerformanceTable& table = CurrentPhase(tenant).table;
        const auto down = table.Improvement(tenant.ways, tenant.ways - 1);
        if (!down.has_value() || *down > -config_.ipc_improvement_thr) {
          tenant.category = Category::kDonor;
        }
      }
      break;
    }
    case Category::kDonor: {
      if (!idle_or_low_llc && miss_rate > config_.llc_miss_rate_thr) {
        // Misses became non-trivial: stop donating (paper: "until the LLC
        // miss rate becomes non-trivial (hence labeled as Keeper)").
        tenant.category = Category::kKeeper;
      }
      break;
    }
    case Category::kUnknown: {
      if (miss_rate < config_.llc_miss_rate_thr && !idle_or_low_llc) {
        tenant.category = Category::kKeeper;  // current size suffices
        break;
      }
      if (idle_or_low_llc) {
        tenant.category = Category::kDonor;
        break;
      }
      const bool grew = tenant.ways > tenant.prev_interval_ways;
      const uint32_t streaming_ways =
          tenant.spec.baseline_ways * config_.streaming_multiplier;
      // A workload that has accumulated a real gain over its baseline IPC is
      // by definition reusing the cache — never condemn it as Streaming even
      // if individual steps fall under the threshold.
      const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
      const double cumulative_norm =
          (phase.baseline_valid && phase.baseline_ipc > 0.0) ? s.ipc() / phase.baseline_ipc : 1.0;
      const bool no_reuse_evidence =
          cumulative_norm < 1.0 + config_.exploration_gain_floor;
      if (grew && tenant.has_last_ipc) {
        if (imp >= config_.ipc_improvement_thr) {
          tenant.category = Category::kReceiver;
        } else if (no_reuse_evidence) {
          if (tenant.ways >= streaming_ways) {
            // Grew all the way to the streaming threshold without any
            // accumulated benefit: cyclic access pattern, no reuse.
            tenant.category = Category::kStreaming;
          }
          // Not yet at the threshold: keep exploring to unmask it.
        } else if (!config_.greedy_exploration ||
                   imp < config_.exploration_gain_floor) {
          // The workload demonstrably benefits from cache but this step was
          // below the (effective) bar: stop and keep what it has.
          tenant.category = Category::kKeeper;
        }
        // Greedy exploration with a step in [floor, thr): keep growing.
        break;
      }
      if (!grew && tenant.grow_denied && no_reuse_evidence) {
        // The pool is dry, so the size comparison cannot continue. Condemn
        // only on actual evidence: the last measured growth step was flat
        // (the paper's MLOAD releasing everything "when all available
        // cache are consumed"). A workload whose table still shows a
        // rising slope keeps waiting for capacity instead.
        const PerformanceTable& table = CurrentPhase(tenant).table;
        const auto slope = table.Improvement(tenant.ways - 1, tenant.ways);
        if (slope.has_value() && *slope < config_.ipc_improvement_thr) {
          tenant.category = Category::kStreaming;
        }
      }
      break;
    }
    case Category::kReceiver: {
      if (idle_or_low_llc) {
        tenant.category = Category::kDonor;
        break;
      }
      const bool grew = tenant.ways > tenant.prev_interval_ways;
      if (miss_rate < config_.llc_miss_rate_thr ||
          (grew && tenant.has_last_ipc && imp < config_.ipc_improvement_thr)) {
        tenant.category = Category::kKeeper;  // stop growing (§3.4)
      }
      break;
    }
    case Category::kStreaming: {
      // Only a phase change releases a Streaming workload.
      break;
    }
  }

  if (!tenant.detector.idle() && s.ipc() > 0.0) {
    tenant.last_ipc = s.ipc();
    tenant.has_last_ipc = true;
  }
}

// --- Step 5: Allocate Cache ---

void DcatController::AllocateAndApply() {
  const uint32_t total = cat_->NumWays();
  const size_t n = tenants_.size();
  std::vector<uint32_t> targets(n, 0);
  std::vector<uint32_t> before(n, 0);
  std::vector<std::optional<AllocationReason>> reason(n);
  for (size_t i = 0; i < n; ++i) {
    before[i] = tenants_[i].ways;
  }

  // Pass 1: fixed demands.
  for (size_t i = 0; i < n; ++i) {
    TenantState& t = tenants_[i];
    t.grow_denied = false;
    switch (t.category) {
      case Category::kReclaim: {
        if (t.detector.idle()) {
          // Phase change into idleness: nothing to reclaim for.
          t.category = Category::kDonor;
          targets[i] = config_.min_ways;
          reason[i] = AllocationReason::kDonate;
          break;
        }
        const PhaseBook::PhaseRecord& phase = CurrentPhase(t);
        const auto preferred =
            phase.baseline_valid ? phase.table.PreferredWays(config_.ipc_improvement_thr)
                                 : std::nullopt;
        if (preferred.has_value()) {
          // Fig. 12 fast path: the phase was seen before — jump straight to
          // its preferred allocation (never below baseline: the guarantee
          // must hold even if the table is stale).
          targets[i] = std::max(*preferred, t.spec.baseline_ways);
          t.category = Category::kKeeper;
        } else {
          targets[i] = t.spec.baseline_ways;
          t.measuring_baseline = true;
          // Category stays Reclaim for one interval; Categorize moves it to
          // Keeper after the baseline measurement lands.
        }
        reason[i] = AllocationReason::kReclaim;
        metrics_.counter("controller.reclaims").Increment();
        break;
      }
      case Category::kDonor:
        if (t.detector.idle() ||
            t.sample.llc_refs_per_kilo_instruction() <=
                config_.llc_ref_per_kilo_instruction_thr) {
          targets[i] = config_.min_ways;  // idle donor: release everything
        } else {
          targets[i] = std::max(t.ways > 0 ? t.ways - 1 : 0, config_.min_ways);  // gradual
        }
        reason[i] = AllocationReason::kDonate;
        break;
      case Category::kStreaming:
        targets[i] = config_.min_ways;
        reason[i] = AllocationReason::kDonate;
        break;
      case Category::kKeeper:
      case Category::kUnknown:
      case Category::kReceiver:
        targets[i] = std::max(t.ways, config_.min_ways);
        break;
    }
  }

  // Pass 2: make reclaim demands fit. Σ baselines <= total ways (admission
  // control), so shrinking over-baseline tenants always suffices.
  auto used = [&targets]() {
    uint32_t sum = 0;
    for (uint32_t w : targets) {
      sum += w;
    }
    return sum;
  };
  while (used() > total) {
    // Shrink the non-reclaiming tenant with the largest surplus over its
    // baseline by one way.
    size_t victim = n;
    uint32_t best_surplus = 0;
    for (size_t i = 0; i < n; ++i) {
      if (tenants_[i].category == Category::kReclaim) {
        continue;
      }
      const uint32_t floor =
          std::max(std::min(tenants_[i].spec.baseline_ways, targets[i]), config_.min_ways);
      const uint32_t surplus = targets[i] > floor ? targets[i] - floor : 0;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        victim = i;
      }
    }
    if (victim == n) {
      // No surplus anywhere: shrink over-baseline reclaims... cannot happen
      // with admission control; guard against config bugs.
      std::fprintf(stderr, "DcatController: cannot satisfy reclaim demands\n");
      std::abort();
    }
    --targets[victim];
    reason[victim] = AllocationReason::kShrinkForReclaim;
  }

  // Pass 3: growth. Unknowns have priority over Receivers (§3.5: identify
  // streaming workloads sooner); within a class, round-robin one way at a
  // time (the max-fairness rule; also the discovery mode of max-perf).
  uint32_t pool = total - used();
  for (Category cls : {Category::kUnknown, Category::kReceiver}) {
    for (size_t i = 0; i < n && pool > 0; ++i) {
      TenantState& t = tenants_[i];
      if (t.category != cls || t.measuring_baseline) {
        continue;
      }
      // Only grow once the phase baseline is established.
      if (!t.has_phase || !CurrentPhase(t).baseline_valid) {
        continue;
      }
      ++targets[i];
      --pool;
      reason[i] = AllocationReason::kGrowFromPool;
    }
    // Anyone in this class who wanted a way but got none?
    for (size_t i = 0; i < n; ++i) {
      TenantState& t = tenants_[i];
      if (t.category == cls && !t.measuring_baseline && targets[i] <= t.ways && pool == 0) {
        t.grow_denied = true;
      }
    }
  }

  // Pass 4: max-performance rebalancing once discovery has populated the
  // tables and the pool is exhausted.
  if (config_.policy == AllocationPolicy::kMaxPerformance && pool == 0) {
    const std::vector<uint32_t> before_rebalance = targets;
    MaxPerformanceRebalance(targets);
    for (size_t i = 0; i < n; ++i) {
      if (targets[i] != before_rebalance[i]) {
        reason[i] = AllocationReason::kRebalance;
      }
    }
  }

  ApplyMasks(targets);
  metrics_.gauge("controller.pool_ways").Set(static_cast<double>(total - used()));

  // Publish the decisions: every change carries its reason; a denied grow
  // is published even though the allocation itself did not move.
  for (size_t i = 0; i < n; ++i) {
    const TenantState& t = tenants_[i];
    if (targets[i] != before[i]) {
      const AllocationReason r = reason[i].value_or(
          targets[i] > before[i] ? AllocationReason::kGrowFromPool : AllocationReason::kDonate);
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .reason = r,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter(std::string("controller.alloc.") + AllocationReasonName(r)).Increment();
    }
    if (t.grow_denied) {
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .reason = AllocationReason::kGrowDenied,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter("controller.alloc.grow-denied").Increment();
    }
  }
}

void DcatController::MaxPerformanceRebalance(std::vector<uint32_t>& targets) {
  // Candidates: tenants with a valid baseline and at least two measured
  // table entries, currently in a stable or growing state. Their combined
  // ways are redistributed to maximize predicted total normalized IPC.
  std::vector<size_t> candidate_index;
  std::vector<TableChoices> choices;
  uint32_t budget = 0;
  double current_value = 0.0;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    TenantState& t = tenants_[i];
    if (t.category != Category::kKeeper && t.category != Category::kReceiver) {
      continue;
    }
    if (!t.has_phase) {
      continue;
    }
    const PhaseBook::PhaseRecord& phase = CurrentPhase(t);
    if (!phase.baseline_valid || phase.table.size() < 2) {
      continue;
    }
    // Still exploring: the current target has no measurement yet, so the
    // solver would "optimize" it away to the best measured size and undo
    // the exploration every other tick. Wait for the sample.
    if (!phase.table.Has(targets[i])) {
      return;
    }
    TableChoices c;
    for (const auto& [ways, value] : phase.table.Entries()) {
      // Never offer sizes below the contracted baseline: the guarantee
      // outranks total-throughput optimization.
      if (ways >= t.spec.baseline_ways) {
        c.options.emplace_back(ways, value);
      }
    }
    if (c.options.size() < 2) {
      continue;
    }
    candidate_index.push_back(i);
    choices.push_back(std::move(c));
    budget += targets[i];
    const auto at_current = phase.table.Get(targets[i]);
    current_value += at_current.value_or(1.0);
  }
  if (candidate_index.size() < 2) {
    return;
  }
  const std::vector<uint32_t> solution = SolveMaxPerformance(choices, budget);
  if (solution.empty()) {
    return;
  }
  double solution_value = 0.0;
  for (size_t k = 0; k < solution.size(); ++k) {
    const auto v = CurrentPhase(tenants_[candidate_index[k]]).table.Get(solution[k]);
    solution_value += v.value_or(0.0);
  }
  // Only move ways for a predicted net win (epsilon guards thrash).
  if (solution_value <= current_value + 1e-6) {
    return;
  }
  for (size_t k = 0; k < solution.size(); ++k) {
    targets[candidate_index[k]] = solution[k];
  }
  DCAT_LOG(kDebug) << "max-perf rebalance: predicted " << current_value << " -> "
                   << solution_value;
}

void DcatController::ApplyMasks(const std::vector<uint32_t>& targets) {
  const std::vector<uint32_t> masks = LayoutMasks(targets, cat_->NumWays());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    TenantState& t = tenants_[i];
    t.ways = targets[i];
    if (cat_->SetCosMask(t.cos, masks[i]) != PqosStatus::kOk) {
      std::fprintf(stderr, "DcatController: SetCosMask failed for tenant %u\n", t.spec.id);
      std::abort();
    }
  }
}

void DcatController::Tick() {
  ++tick_;
  for (TenantState& t : tenants_) {
    t.category_at_tick_start = t.category;
    t.sample = CollectSample(t);
    DetectPhase(t);
    UpdateBaselineAndTable(t);
    Categorize(t);
    t.prev_interval_ways = t.ways;
  }
  const auto alloc_start = std::chrono::steady_clock::now();
  AllocateAndApply();
  const double alloc_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - alloc_start)
          .count();
  EmitTickEventsAndMetrics();
  metrics_.histogram("controller.allocate_latency_us", {1.0, 10.0, 100.0, 1000.0, 10000.0})
      .Observe(alloc_us);
}

void DcatController::EmitTickEventsAndMetrics() {
  // Category transitions cover the whole interval: detector-driven moves to
  // Reclaim, the Fig. 6 machine, and allocation-time fixups alike.
  for (const TenantState& t : tenants_) {
    if (t.category != t.category_at_tick_start) {
      sinks_.OnCategoryChange(CategoryChangeEvent{.tick = tick_,
                                                  .tenant = t.spec.id,
                                                  .from = t.category_at_tick_start,
                                                  .to = t.category});
    }
  }
  size_t category_counts[6] = {};
  for (const TenantState& t : tenants_) {
    TickEvent entry;
    entry.tick = tick_;
    entry.tenant = t.spec.id;
    entry.category = t.category;
    entry.ways = t.ways;
    entry.ipc = t.sample.ipc();
    entry.norm_ipc = NormalizedIpc(t);
    entry.llc_miss_rate = t.sample.llc_miss_rate();
    entry.phase_changed = t.phase_changed;
    sinks_.OnTick(entry);
    if (logging_) {
      decision_log_.OnTick(entry);
    }
    ++category_counts[static_cast<size_t>(t.category)];
  }
  metrics_.counter("controller.ticks").Increment();
  metrics_.gauge("controller.tenants").Set(static_cast<double>(tenants_.size()));
  for (const Category c : {Category::kReclaim, Category::kKeeper, Category::kDonor,
                           Category::kReceiver, Category::kStreaming, Category::kUnknown}) {
    metrics_.gauge(std::string("controller.category.") + CategoryName(c))
        .Set(static_cast<double>(category_counts[static_cast<size_t>(c)]));
  }
}

double DcatController::NormalizedIpc(const TenantState& tenant) const {
  if (!tenant.has_phase) {
    return 0.0;
  }
  const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
  if (!phase.baseline_valid || phase.baseline_ipc <= 0.0) {
    return 0.0;
  }
  return tenant.sample.ipc() / phase.baseline_ipc;
}

TenantSnapshot DcatController::MakeSnapshot(const TenantState& tenant) const {
  TenantSnapshot s;
  s.id = tenant.spec.id;
  s.name = tenant.spec.name;
  s.category = tenant.category;
  s.cos = tenant.cos;
  s.ways = tenant.ways;
  s.baseline_ways = tenant.spec.baseline_ways;
  s.ipc = tenant.sample.ipc();
  s.norm_ipc = NormalizedIpc(tenant);
  s.llc_miss_rate = tenant.sample.llc_miss_rate();
  s.phase_changed = tenant.phase_changed;
  s.has_phase = tenant.has_phase;
  s.grow_denied = tenant.grow_denied;
  if (tenant.has_phase) {
    const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
    s.baseline_valid = phase.baseline_valid;
    s.baseline_ipc = phase.baseline_ipc;
    s.table = phase.table;
  }
  return s;
}

TenantSnapshot DcatController::Snapshot(TenantId id) const {
  return MakeSnapshot(FindTenant(id));
}

ControllerSnapshot DcatController::Snapshot() const {
  ControllerSnapshot s;
  s.tick = tick_;
  s.policy = config_.policy;
  s.total_ways = cat_->NumWays();
  s.tenants.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    s.tenants.push_back(MakeSnapshot(t));
    s.allocated_ways += t.ways;
  }
  s.pool_ways = s.total_ways > s.allocated_ways ? s.total_ways - s.allocated_ways : 0;
  return s;
}

uint32_t DcatController::TenantWays(TenantId id) const { return FindTenant(id).ways; }

Category DcatController::TenantCategory(TenantId id) const { return FindTenant(id).category; }

uint32_t DcatController::TenantBaselineWays(TenantId id) const {
  return FindTenant(id).spec.baseline_ways;
}

double DcatController::TenantNormalizedIpc(TenantId id) const {
  return NormalizedIpc(FindTenant(id));
}

const PerformanceTable& DcatController::TenantTable(TenantId id) const {
  return CurrentPhase(FindTenant(id)).table;
}

}  // namespace dcat
